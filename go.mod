module hbtree

go 1.23
