// Package epoch is the generation-stamped snapshot registry behind the
// serving layer: one monotonic epoch counter over a refcounted *vector*
// of payload snapshots plus a routing-metadata value that travels with
// the vector. Both the single-tree Server and the key-space sharded
// ShardedServer publish through a Registry, which is what makes two
// previously separate ideas expressible with one mechanism:
//
//   - Per-slot publication (Publish): a batch update swaps one shard's
//     tree; unaffected slots are shared with the predecessor state by
//     reference, so the swap costs O(T) pointer copies, not O(data).
//   - Whole-vector transition (Transition): a rebalance installs a new
//     split-key table and a new set of shard trees as ONE atomic epoch
//     step; a reader pinning before the step sees the complete old
//     world, a reader pinning after sees the complete new one, and no
//     reader ever observes a torn mixture of the two.
//
// Readers pin the registry's current state with a single atomic
// reference (RCU-style acquire/recheck/retry): the pin covers the whole
// vector, so an atomic cross-shard cut costs exactly what a single-slot
// read does. Payload lifetime is per-snapshot: a snapshot is released
// (its release hook runs, closing the tree and freeing its device
// replica) when the last *state* referencing it has drained, so a slot
// carried unchanged across many epochs is only released once the final
// epoch that holds it retires.
package epoch

import (
	"sync"
	"sync/atomic"
)

// snap wraps one payload slot. states counts how many registry states
// reference it — slots shared across epochs by Publish carry the same
// snap. The release hook runs exactly once, when the last referencing
// state drains.
type snap[T any] struct {
	val     T
	states  atomic.Int32
	release func(T)
	once    sync.Once
}

func (sn *snap[T]) unref() {
	if sn.states.Add(-1) == 0 {
		sn.once.Do(func() {
			if sn.release != nil {
				sn.release(sn.val)
			}
		})
	}
}

// state is one published generation: an epoch stamp, the snapshot
// vector, and the metadata value (e.g. a split-key table) that must be
// observed atomically with it. refs starts at 1 (the registry's
// publication reference); every pin adds one. The publication reference
// is dropped only after retired is set, so a drainer observing zero
// always observes retired too — the invariant the release path leans
// on. A racing Pin can still push refs through zero transiently (add,
// recheck, drop), so the drain itself is once-guarded.
type state[T, M any] struct {
	epoch   uint64
	snaps   []*snap[T]
	meta    M
	refs    atomic.Int64
	retired atomic.Bool
	once    sync.Once
}

func (st *state[T, M]) unref() {
	if st.refs.Add(-1) == 0 && st.retired.Load() {
		st.once.Do(func() {
			for _, sn := range st.snaps {
				sn.unref()
			}
		})
	}
}

// Registry is the generation-stamped snapshot registry. Readers Pin the
// current state without blocking; writers Publish one slot or
// Transition the whole vector under the registry's publisher mutex.
// The zero value is not usable; construct with New.
type Registry[T, M any] struct {
	cur     atomic.Pointer[state[T, M]]
	mu      sync.Mutex // serialises Publish/Transition/Close
	release func(T)
	closed  bool
}

// New creates a registry over the initial snapshot vector and metadata,
// at epoch 1. release, if non-nil, runs once per payload when its last
// referencing state drains (for serve: *core.Tree.Close, freeing the
// device replica).
func New[T, M any](vals []T, meta M, release func(T)) *Registry[T, M] {
	r := &Registry[T, M]{release: release}
	st := &state[T, M]{epoch: 1, snaps: make([]*snap[T], len(vals)), meta: meta}
	for i, v := range vals {
		sn := &snap[T]{val: v, release: release}
		sn.states.Store(1)
		st.snaps[i] = sn
	}
	st.refs.Store(1)
	r.cur.Store(st)
	return r
}

// Pin takes a reference on the current state — the whole snapshot
// vector plus its metadata, as one atomic cut — and returns it. The
// acquire/recheck loop guarantees the returned state was the published
// one at some instant at or after the call began. The caller must
// Unpin exactly once; the pin is a value (no allocation on the read
// path).
func (r *Registry[T, M]) Pin() Pin[T, M] {
	for {
		st := r.cur.Load()
		st.refs.Add(1)
		if r.cur.Load() == st {
			return Pin[T, M]{st: st}
		}
		// A publisher swapped between the load and the reference; drop
		// it and retry on the successor.
		st.unref()
	}
}

// Pin is a held reference to one state. The zero Pin is inert: Unpin on
// it is a no-op and Valid reports false — serve uses that as the
// locked-mode (no registry) marker.
type Pin[T, M any] struct {
	st *state[T, M]
}

// Valid reports whether the pin holds a state.
func (p Pin[T, M]) Valid() bool { return p.st != nil }

// Epoch returns the pinned state's generation stamp.
func (p Pin[T, M]) Epoch() uint64 { return p.st.epoch }

// Len returns the pinned vector's slot count.
func (p Pin[T, M]) Len() int { return len(p.st.snaps) }

// Get returns the payload in slot i of the pinned vector.
func (p Pin[T, M]) Get(i int) T { return p.st.snaps[i].val }

// Meta returns the metadata published with the pinned vector.
func (p Pin[T, M]) Meta() M { return p.st.meta }

// Unpin drops the reference. On the zero Pin it is a no-op.
func (p Pin[T, M]) Unpin() {
	if p.st != nil {
		p.st.unref()
	}
}

// Epoch returns the current generation stamp.
func (r *Registry[T, M]) Epoch() uint64 { return r.cur.Load().epoch }

// Len returns the current vector's slot count.
func (r *Registry[T, M]) Len() int { return len(r.cur.Load().snaps) }

// Current returns the payload in slot i of the current state without
// pinning it. Like Server.Tree, callers bypass the read contract: use
// only while no publisher runs.
func (r *Registry[T, M]) Current(i int) T { return r.cur.Load().snaps[i].val }

// Meta returns the current state's metadata without pinning it.
func (r *Registry[T, M]) Meta() M { return r.cur.Load().meta }

// Publish installs val in slot i as a new epoch, carrying every other
// slot and the metadata over from the predecessor by reference.
// In-flight pins of the predecessor finish on it undisturbed; the
// replaced payload is released when its last referencing state drains.
func (r *Registry[T, M]) Publish(i int, val T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	next := &state[T, M]{
		epoch: old.epoch + 1,
		snaps: make([]*snap[T], len(old.snaps)),
		meta:  old.meta,
	}
	for j, sn := range old.snaps {
		if j == i {
			fresh := &snap[T]{val: val, release: r.release}
			fresh.states.Store(1)
			next.snaps[j] = fresh
			continue
		}
		sn.states.Add(1)
		next.snaps[j] = sn
	}
	next.refs.Store(1)
	r.swap(old, next)
}

// Slot describes one slot of a Transition's successor vector: either a
// fresh payload or a slot kept (shared by reference) from the
// predecessor.
type Slot[T any] struct {
	keep int // predecessor slot index, or -1 for a fresh payload
	val  T
}

// NewSlot is a Transition slot holding a fresh payload.
func NewSlot[T any](val T) Slot[T] { return Slot[T]{keep: -1, val: val} }

// KeepSlot is a Transition slot carried over from predecessor slot i.
func KeepSlot[T any](i int) Slot[T] { return Slot[T]{keep: i} }

// Transition installs a whole successor vector and its metadata as one
// epoch step — the rebalance primitive. Kept slots share their snap
// with the predecessor (their payload is NOT released by the
// transition); predecessor slots not kept are released when the old
// state drains. The successor may have a different length than the
// predecessor — that is how shards split and merge.
func (r *Registry[T, M]) Transition(slots []Slot[T], meta M) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	next := &state[T, M]{
		epoch: old.epoch + 1,
		snaps: make([]*snap[T], len(slots)),
		meta:  meta,
	}
	for j, sl := range slots {
		if sl.keep >= 0 {
			sn := old.snaps[sl.keep]
			sn.states.Add(1)
			next.snaps[j] = sn
			continue
		}
		fresh := &snap[T]{val: sl.val, release: r.release}
		fresh.states.Store(1)
		next.snaps[j] = fresh
	}
	next.refs.Store(1)
	r.swap(old, next)
}

// SetMeta republishes the current vector unchanged under new metadata
// (a new epoch with every slot kept).
func (r *Registry[T, M]) SetMeta(meta M) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.cur.Load()
	next := &state[T, M]{
		epoch: old.epoch + 1,
		snaps: make([]*snap[T], len(old.snaps)),
		meta:  meta,
	}
	for j, sn := range old.snaps {
		sn.states.Add(1)
		next.snaps[j] = sn
	}
	next.refs.Store(1)
	r.swap(old, next)
}

// swap publishes next and retires old. Callers hold r.mu.
func (r *Registry[T, M]) swap(old, next *state[T, M]) {
	r.cur.Store(next)
	old.retired.Store(true)
	old.unref()
}

// Close retires the current state: its payloads are released once every
// pin drains. Pins taken after Close race with the release and must not
// happen — the same "only while nothing else uses it" contract the
// serving layer's Close documents. Close is idempotent.
func (r *Registry[T, M]) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	cur := r.cur.Load()
	cur.retired.Store(true)
	cur.unref()
}
