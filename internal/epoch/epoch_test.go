package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

// tracker counts releases per payload value.
type tracker struct {
	mu       sync.Mutex
	released map[int]int
}

func newTracker() *tracker { return &tracker{released: make(map[int]int)} }

func (tr *tracker) release(v int) {
	tr.mu.Lock()
	tr.released[v]++
	tr.mu.Unlock()
}

func (tr *tracker) count(v int) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.released[v]
}

func TestPublishSharesUntouchedSlots(t *testing.T) {
	tr := newTracker()
	r := New([]int{10, 20, 30}, "m0", tr.release)
	if r.Epoch() != 1 || r.Len() != 3 {
		t.Fatalf("fresh registry epoch=%d len=%d", r.Epoch(), r.Len())
	}

	old := r.Pin()
	r.Publish(1, 21)
	if r.Epoch() != 2 {
		t.Fatalf("epoch after publish = %d, want 2", r.Epoch())
	}

	cur := r.Pin()
	if got := cur.Get(1); got != 21 {
		t.Fatalf("current slot 1 = %d, want 21", got)
	}
	if got := old.Get(1); got != 20 {
		t.Fatalf("pinned old slot 1 = %d, want 20", got)
	}
	if cur.Meta() != "m0" {
		t.Fatalf("publish dropped meta: %q", cur.Meta())
	}
	// Slot 0 is shared by reference across the epochs.
	if old.Get(0) != cur.Get(0) {
		t.Fatal("untouched slot not shared across publish")
	}

	// The replaced payload is released only when the old state drains.
	if tr.count(20) != 0 {
		t.Fatal("payload released while a pin held it")
	}
	old.Unpin()
	if tr.count(20) != 1 {
		t.Fatalf("replaced payload released %d times, want 1", tr.count(20))
	}
	if tr.count(10) != 0 || tr.count(30) != 0 {
		t.Fatal("shared slot released by the old state's drain")
	}
	cur.Unpin()
}

func TestTransitionSplitsAndMerges(t *testing.T) {
	tr := newTracker()
	r := New([]int{100, 200}, 2, tr.release)

	old := r.Pin()
	// Split slot 1 into two fresh payloads; keep slot 0.
	r.Transition([]Slot[int]{KeepSlot[int](0), NewSlot(201), NewSlot(202)}, 3)
	cur := r.Pin()
	if cur.Len() != 3 || cur.Meta() != 3 || cur.Epoch() != 2 {
		t.Fatalf("post-split state: len=%d meta=%d epoch=%d", cur.Len(), cur.Meta(), cur.Epoch())
	}
	if cur.Get(0) != 100 || cur.Get(1) != 201 || cur.Get(2) != 202 {
		t.Fatalf("post-split vector: %d %d %d", cur.Get(0), cur.Get(1), cur.Get(2))
	}
	// The old pin still sees the complete pre-split world.
	if old.Len() != 2 || old.Get(1) != 200 || old.Meta() != 2 {
		t.Fatal("old pin torn by transition")
	}
	old.Unpin()
	if tr.count(200) != 1 || tr.count(100) != 0 {
		t.Fatalf("post-drain releases: 200=%d 100=%d", tr.count(200), tr.count(100))
	}

	// Merge the two fresh slots back into one.
	r.Transition([]Slot[int]{KeepSlot[int](0), NewSlot(240)}, 2)
	cur.Unpin()
	if tr.count(201) != 1 || tr.count(202) != 1 {
		t.Fatalf("merged-away slots not released: 201=%d 202=%d", tr.count(201), tr.count(202))
	}
	r.Close()
	if tr.count(100) != 1 || tr.count(240) != 1 {
		t.Fatalf("close releases: 100=%d 240=%d", tr.count(100), tr.count(240))
	}
	r.Close() // idempotent
	if tr.count(100) != 1 {
		t.Fatal("double Close released twice")
	}
}

func TestSetMetaKeepsVector(t *testing.T) {
	tr := newTracker()
	r := New([]int{7}, "a", tr.release)
	r.SetMeta("b")
	p := r.Pin()
	if p.Meta() != "b" || p.Get(0) != 7 || p.Epoch() != 2 {
		t.Fatalf("SetMeta state: meta=%q v=%d epoch=%d", p.Meta(), p.Get(0), p.Epoch())
	}
	p.Unpin()
	if tr.count(7) != 0 {
		t.Fatal("SetMeta released a kept slot")
	}
	r.Close()
}

func TestZeroPinInert(t *testing.T) {
	var p Pin[int, string]
	if p.Valid() {
		t.Fatal("zero pin reports valid")
	}
	p.Unpin() // must not panic
}

// TestConcurrentPinsObserveAtomicStates hammers Pin against racing
// Publish and Transition calls. Payloads are stamped with the epoch
// that wrote them and the meta carries the epoch of the last
// whole-vector Transition, so every correctly pinned state satisfies
// meta <= slot value <= epoch in all slots — a torn mixture of
// generations breaks the sandwich. Release hooks must fire exactly once
// per payload.
func TestConcurrentPinsObserveAtomicStates(t *testing.T) {
	const slots = 4
	var released, created atomic.Int64
	vals := make([]uint64, slots)
	for i := range vals {
		vals[i] = 1 // epoch 1 payload in every slot
	}
	created.Add(slots)
	r := New(vals, uint64(1), func(uint64) { released.Add(1) })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := r.Pin()
				e := p.Epoch()
				if e < last {
					t.Errorf("epoch went backwards: %d -> %d", last, e)
					p.Unpin()
					return
				}
				last = e
				m := p.Meta()
				if m > e {
					t.Errorf("meta %d ahead of epoch %d", m, e)
					p.Unpin()
					return
				}
				for i := 0; i < p.Len(); i++ {
					if v := p.Get(i); v > e || v < m {
						t.Errorf("slot %d payload %d outside [%d,%d]", i, v, m, e)
						p.Unpin()
						return
					}
				}
				p.Unpin()
			}
		}()
	}

	for e := uint64(2); e < 600; e++ {
		if e%50 == 0 {
			// Whole-vector transition: every slot fresh, stamped e,
			// meta stamped e in the same atomic step.
			sl := make([]Slot[uint64], slots)
			for i := range sl {
				sl[i] = NewSlot(e)
				created.Add(1)
			}
			r.Transition(sl, e)
			continue
		}
		r.Publish(int(e)%slots, e)
		created.Add(1)
	}
	close(stop)
	wg.Wait()
	r.Close()
	if got, want := released.Load(), created.Load(); got != want {
		t.Fatalf("released %d payloads, created %d", got, want)
	}
}
