package simd

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"hbtree/internal/keys"
)

// lowerBound is the reference implementation all kernels must match.
func lowerBound[K keys.Key](line []K, q K) int {
	return sort.Search(len(line), func(i int) bool { return q <= line[i] })
}

func sortedLine64(r *rand.Rand, n int) []uint64 {
	line := make([]uint64, n)
	for i := range line {
		line[i] = r.Uint64() % 1000
	}
	sort.Slice(line, func(i, j int) bool { return line[i] < line[j] })
	return line
}

func sortedLine32(r *rand.Rand, n int) []uint32 {
	line := make([]uint32, n)
	for i := range line {
		line[i] = r.Uint32() % 1000
	}
	sort.Slice(line, func(i, j int) bool { return line[i] < line[j] })
	return line
}

func TestKernelsMatchLowerBound64(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		line := sortedLine64(r, 8)
		q := r.Uint64() % 1100
		want := lowerBound(line, q)
		if got := SearchSequential(line, q); got != want {
			t.Fatalf("sequential(%v, %d) = %d, want %d", line, q, got, want)
		}
		if got := SearchLinear(line, q); got != want {
			t.Fatalf("linear(%v, %d) = %d, want %d", line, q, got, want)
		}
		if got := SearchHier8(line, q); got != want {
			t.Fatalf("hier8(%v, %d) = %d, want %d", line, q, got, want)
		}
		var arr [8]uint64
		copy(arr[:], line)
		if got := SearchLinear8x64(&arr, q); got != want {
			t.Fatalf("linear8x64(%v, %d) = %d, want %d", line, q, got, want)
		}
	}
}

func TestKernelsMatchLowerBound32(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		line := sortedLine32(r, 16)
		q := r.Uint32() % 1100
		want := lowerBound(line, q)
		if got := SearchSequential(line, q); got != want {
			t.Fatalf("sequential(%v, %d) = %d, want %d", line, q, got, want)
		}
		if got := SearchLinear(line, q); got != want {
			t.Fatalf("linear(%v, %d) = %d, want %d", line, q, got, want)
		}
		if got := SearchHier16(line, q); got != want {
			t.Fatalf("hier16(%v, %d) = %d, want %d", line, q, got, want)
		}
	}
}

// TestKernelsQuick property-tests all kernels against the reference on
// arbitrary sorted 8-key lines and queries.
func TestKernelsQuick(t *testing.T) {
	f := func(raw [8]uint64, q uint64) bool {
		line := append([]uint64(nil), raw[:]...)
		sort.Slice(line, func(i, j int) bool { return line[i] < line[j] })
		want := lowerBound(line, q)
		return SearchSequential(line, q) == want &&
			SearchLinear(line, q) == want &&
			SearchHier8(line, q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsQuick32(t *testing.T) {
	f := func(raw [16]uint32, q uint32) bool {
		line := append([]uint32(nil), raw[:]...)
		sort.Slice(line, func(i, j int) bool { return line[i] < line[j] })
		want := lowerBound(line, q)
		return SearchSequential(line, q) == want &&
			SearchLinear(line, q) == want &&
			SearchHier16(line, q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchDispatch(t *testing.T) {
	line := []uint64{1, 3, 5, 7, 9, 11, 13, 15}
	for _, a := range []Algorithm{Sequential, Linear, Hierarchical} {
		for q := uint64(0); q <= 16; q++ {
			want := lowerBound(line, q)
			if got := Search(a, line, q); got != want {
				t.Fatalf("%v: Search(%d) = %d, want %d", a, q, got, want)
			}
		}
	}
}

func TestSearchHierarchicalFallback(t *testing.T) {
	// Non-standard line lengths fall back to the linear kernel.
	line := []uint64{2, 4, 6, 8}
	for q := uint64(0); q <= 9; q++ {
		if got, want := SearchHierarchical(line, q), lowerBound(line, q); got != want {
			t.Fatalf("fallback Search(%d) = %d, want %d", q, got, want)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	cases := map[Algorithm]string{
		Sequential:    "sequential",
		Linear:        "linear-SIMD",
		Hierarchical:  "hierarchical-SIMD",
		Algorithm(42): "unknown",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestSearchPairsLine(t *testing.T) {
	maxK := keys.Max[uint64]()
	// Line with 3 real pairs and one empty slot.
	line := []uint64{10, 100, 20, 200, 30, 300, maxK, 0}
	if i, found := SearchPairsLine(line, 20); !found || i != 1 {
		t.Fatalf("SearchPairsLine(20) = (%d,%v)", i, found)
	}
	if i, found := SearchPairsLine(line, 15); found || i != 1 {
		t.Fatalf("SearchPairsLine(15) = (%d,%v), want (1,false)", i, found)
	}
	if i, found := SearchPairsLine(line, 31); found || i != 3 {
		t.Fatalf("SearchPairsLine(31) = (%d,%v), want (3,false)", i, found)
	}
	if _, found := SearchPairsLine(line, 5); found {
		t.Fatal("SearchPairsLine(5) found nonexistent key")
	}
}

func TestSearchEmptyAndBounds(t *testing.T) {
	if got := SearchSequential([]uint64{}, 5); got != 0 {
		t.Fatalf("empty sequential = %d", got)
	}
	if got := SearchLinear([]uint64{}, 5); got != 0 {
		t.Fatalf("empty linear = %d", got)
	}
	// Query above all keys returns len(line).
	line := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := SearchLinear(line, 100); got != 8 {
		t.Fatalf("above-all linear = %d", got)
	}
	if got := SearchHier8(line, 100); got != 8 {
		t.Fatalf("above-all hier = %d", got)
	}
}

func BenchmarkNodeSearch64(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	line := sortedLine64(r, 8)
	qs := make([]uint64, 1024)
	for i := range qs {
		qs[i] = r.Uint64() % 1100
	}
	for _, alg := range []Algorithm{Sequential, Linear, Hierarchical} {
		b.Run(alg.String(), func(b *testing.B) {
			s := 0
			for i := 0; i < b.N; i++ {
				s += Search(alg, line, qs[i&1023])
			}
			sinkInt = s
		})
	}
}

var sinkInt int
