// Package simd implements the paper's in-node search kernels
// (Section 4.2 and Appendix A) as branch-free, lane-parallel Go code.
//
// The original implementation uses Intel AVX/AVX2 intrinsics
// (_mm256_cmpgt_epi64 + movemask + popcount, Snippets 1 and 2). Go has no
// intrinsics, so each kernel here performs the identical algorithm with
// the identical lane structure — fixed-width groups of comparisons whose
// boolean results are reduced with a popcount — which both preserves the
// result semantics exactly and lets the cost model charge SIMD-width-aware
// per-node costs. Three algorithms are provided, matching the paper's
// evaluation (Figure 8):
//
//   - Sequential: plain scan, the paper's baseline.
//   - Linear: two full-width compare+popcount passes over the line
//     (Snippet 1); control-dependency free.
//   - Hierarchical: compare boundary keys first, then one sub-range
//     (Snippet 2); fewer loads, one data-dependent step.
//
// All kernels compute the lower bound: the minimum index i such that
// q <= line[i]. Inner nodes keep their trailing slots at keys.Max, so for
// tree traversal the result is always a valid child index.
package simd

import "hbtree/internal/keys"

// Algorithm selects the in-node search kernel.
type Algorithm int

// Available kernels. The zero value is the hierarchical search, the
// paper's fastest kernel (Figure 8) and hence the default configuration.
const (
	Hierarchical Algorithm = iota // hierarchical AVX-style search (Snippet 2)
	Linear                        // linear AVX-style search (Snippet 1)
	Sequential                    // scalar scan (baseline in Fig. 8)
)

// String returns the kernel name as used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case Sequential:
		return "sequential"
	case Linear:
		return "linear-SIMD"
	case Hierarchical:
		return "hierarchical-SIMD"
	}
	return "unknown"
}

// lt returns 1 if a < b, else 0, without a branch.
func lt[K keys.Key](a, b K) int {
	if a < b {
		return 1
	}
	return 0
}

// SearchSequential returns the minimum i in [0, len(line)] such that
// q <= line[i]; len(line) if q is greater than every element.
func SearchSequential[K keys.Key](line []K, q K) int {
	for i, k := range line {
		if q <= k {
			return i
		}
	}
	return len(line)
}

// SearchLinear implements the linear AVX search of Snippet 1 generalised
// to any line length: the line is consumed in SIMD-register-sized lanes
// (four 64-bit or eight 32-bit keys per 256-bit register) and each lane's
// greater-than mask is popcounted into the running child index. The
// result is branch-free with respect to the data.
func SearchLinear[K keys.Key](line []K, q K) int {
	lanes := laneWidth[K]()
	k := 0
	i := 0
	for ; i+lanes <= len(line); i += lanes {
		// One emulated 256-bit compare + movemask + popcount.
		c := 0
		for j := 0; j < lanes; j++ {
			c += lt(line[i+j], q) // cmpgt(query, key): key < query
		}
		k += c
	}
	for ; i < len(line); i++ {
		k += lt(line[i], q)
	}
	return k
}

// laneWidth returns how many K values one 256-bit AVX register holds.
func laneWidth[K keys.Key]() int { return 256 / 8 / keys.Size[K]() }

// SearchLinear8x64 is the fixed-shape 64-bit kernel for one full cache
// line of eight keys — the exact shape of Snippet 1.
func SearchLinear8x64(line *[8]uint64, q uint64) int {
	k := lt(line[0], q) + lt(line[1], q) + lt(line[2], q) + lt(line[3], q)
	k += lt(line[4], q) + lt(line[5], q) + lt(line[6], q) + lt(line[7], q)
	return k
}

// SearchHier8 implements the hierarchical search of Snippet 2 on an
// 8-key line (64-bit tree nodes): the boundary keys at positions 2 and 5
// split the line into three parts; a second two-key compare finishes
// within the selected part.
func SearchHier8[K keys.Key](line []K, q K) int {
	_ = line[7]
	k := 3 * (lt(line[2], q) + lt(line[5], q))
	k += lt(line[k], q) + lt(line[k+1], q)
	return k
}

// SearchHier16 is the 32-bit-tree hierarchical variant (Figure 3(c)):
// one 8-lane compare against the five boundary keys at positions
// 2, 5, 8, 11 and 14 splits the 16-key line into parts of three, then a
// two-key compare finishes within the selected part (the last part has
// only one in-range key, so its second compare is skipped).
func SearchHier16[K keys.Key](line []K, q K) int {
	_ = line[15]
	base := 3 * (lt(line[2], q) + lt(line[5], q) + lt(line[8], q) + lt(line[11], q) + lt(line[14], q))
	c := lt(line[base], q)
	if base < 15 {
		c += lt(line[base+1], q)
	}
	return base + c
}

// SearchHierarchical dispatches to the fixed-shape hierarchical kernel
// for 8- or 16-key lines and falls back to the linear kernel for other
// lengths (hierarchical blocking is only defined for full lines).
func SearchHierarchical[K keys.Key](line []K, q K) int {
	switch len(line) {
	case 8:
		return SearchHier8(line, q)
	case 16:
		return SearchHier16(line, q)
	default:
		return SearchLinear(line, q)
	}
}

// Search runs the selected kernel on the line.
func Search[K keys.Key](a Algorithm, line []K, q K) int {
	switch a {
	case Linear:
		return SearchLinear(line, q)
	case Hierarchical:
		return SearchHierarchical(line, q)
	default:
		return SearchSequential(line, q)
	}
}

// SearchPairsLine searches one leaf cache line of interleaved key-value
// pairs [k0 v0 k1 v1 ...] and returns the pair index of the first key
// >= q and whether that key equals q. Empty slots hold keys.Max, so the
// scan needs no size field (Section 4.1).
func SearchPairsLine[K keys.Key](line []K, q K) (idx int, found bool) {
	n := len(line) / 2
	for i := 0; i < n; i++ {
		if k := line[2*i]; q <= k {
			return i, k == q
		}
	}
	return n, false
}
