package keys

import (
	"math"
	"sort"
	"testing"
)

func TestMax(t *testing.T) {
	if Max[uint32]() != math.MaxUint32 {
		t.Fatalf("Max[uint32] = %d", Max[uint32]())
	}
	if Max[uint64]() != math.MaxUint64 {
		t.Fatalf("Max[uint64] = %d", Max[uint64]())
	}
}

func TestSizeAndPerLine(t *testing.T) {
	if Size[uint32]() != 4 || Size[uint64]() != 8 {
		t.Fatalf("Size = %d/%d", Size[uint32](), Size[uint64]())
	}
	if PerLine[uint32]() != 16 || PerLine[uint64]() != 8 {
		t.Fatalf("PerLine = %d/%d", PerLine[uint32](), PerLine[uint64]())
	}
}

func TestByKeySort(t *testing.T) {
	p := ByKey[uint64]{{Key: 3}, {Key: 1}, {Key: 2}}
	sort.Sort(p)
	for i := 0; i < len(p); i++ {
		if p[i].Key != uint64(i+1) {
			t.Fatalf("sorted[%d].Key = %d", i, p[i].Key)
		}
	}
}
