// Package keys defines the key/value domain shared by every tree in the
// repository. The paper develops 64-bit and 32-bit variants of each tree;
// here both are instantiations of one generic implementation over the Key
// constraint.
package keys

// Key is the constraint satisfied by the two key widths evaluated in the
// paper. Values have the same width as keys (Section 3: S is "the size of
// a variable (a key or a value)").
type Key interface {
	~uint32 | ~uint64
}

// Max returns the maximum representable value of K (2^n - 1). The paper
// reserves it as the sentinel stored in empty node slots so node search
// needs no size field (Section 4.1), which means Max itself is not a
// legal user key.
func Max[K Key]() K {
	var k K
	k--
	return k
}

// Size returns the size of K in bytes (the paper's S).
func Size[K Key]() int {
	var k K
	switch any(k).(type) {
	case uint32:
		return 4
	default:
		return 8
	}
}

// PerLine returns how many K values fit in one 64-byte cache line:
// 8 for 64-bit keys, 16 for 32-bit keys.
func PerLine[K Key]() int { return LineBytes / Size[K]() }

// LineBytes is the cache-line size assumed throughout the paper.
const LineBytes = 64

// Pair is one key-value tuple stored in a leaf.
type Pair[K Key] struct {
	Key   K
	Value K
}

// ByKey implements sorting of pairs by key.
type ByKey[K Key] []Pair[K]

func (p ByKey[K]) Len() int           { return len(p) }
func (p ByKey[K]) Less(i, j int) bool { return p[i].Key < p[j].Key }
func (p ByKey[K]) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
