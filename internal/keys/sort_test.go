package keys

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSortWithPerm cross-checks the specialised parallel-array sort
// against the standard library on adversarial shapes: random,
// presorted, reversed, all-equal, and duplicate-heavy slices, at sizes
// straddling the insertion-sort cutoff. perm must be a permutation that
// maps every sorted slot back to the key's original position.
func TestSortWithPerm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := map[string]func(n int) []uint64{
		"random": func(n int) []uint64 {
			ks := make([]uint64, n)
			for i := range ks {
				ks[i] = rng.Uint64()
			}
			return ks
		},
		"sorted": func(n int) []uint64 {
			ks := make([]uint64, n)
			for i := range ks {
				ks[i] = uint64(i)
			}
			return ks
		},
		"reversed": func(n int) []uint64 {
			ks := make([]uint64, n)
			for i := range ks {
				ks[i] = uint64(n - i)
			}
			return ks
		},
		"allequal": func(n int) []uint64 {
			ks := make([]uint64, n)
			for i := range ks {
				ks[i] = 7
			}
			return ks
		},
		"dupheavy": func(n int) []uint64 {
			ks := make([]uint64, n)
			for i := range ks {
				ks[i] = uint64(rng.Intn(4))
			}
			return ks
		},
	}
	for name, g := range gen {
		for _, n := range []int{0, 1, 2, 15, 16, 17, 256, 1024} {
			orig := g(n)
			ks := append([]uint64(nil), orig...)
			perm := make([]int32, n)
			for i := range perm {
				perm[i] = int32(i)
			}
			SortWithPerm(ks, perm)
			if !sort.SliceIsSorted(ks, func(a, b int) bool { return ks[a] < ks[b] }) {
				t.Fatalf("%s/n=%d: not sorted", name, n)
			}
			seen := make([]bool, n)
			for i, p := range perm {
				if seen[p] {
					t.Fatalf("%s/n=%d: perm[%d]=%d repeated", name, n, i, p)
				}
				seen[p] = true
				if orig[p] != ks[i] {
					t.Fatalf("%s/n=%d: slot %d holds %d but perm points at original %d",
						name, n, i, ks[i], orig[p])
				}
			}
		}
	}
}
