package keys

// SortWithPerm sorts ks ascending in place, applying every exchange to
// perm as well, so perm[i] ends up holding the original position of the
// key now at slot i. It exists because the serving hot path sorts every
// coalesced window before the shared-descent search: a type-specialised
// quicksort over the parallel arrays runs several times faster than
// sort.Sort's interface dispatch and allocates nothing. The three-way
// partition keeps duplicate-heavy windows (a hot key hammered by many
// clients) linear instead of quadratic. The sort is not stable; callers
// that fold duplicates treat equal keys as interchangeable.
func SortWithPerm[K Key](ks []K, perm []int32) {
	for len(ks) > 16 {
		lt, gt := partition3(ks, perm)
		// Recurse into the smaller side, iterate on the larger: the
		// stack stays O(log n) even on adversarial inputs.
		if lt < len(ks)-gt {
			SortWithPerm(ks[:lt], perm[:lt])
			ks, perm = ks[gt:], perm[gt:]
		} else {
			SortWithPerm(ks[gt:], perm[gt:])
			ks, perm = ks[:lt], perm[:lt]
		}
	}
	// Insertion sort for short runs and partition leftovers.
	for i := 1; i < len(ks); i++ {
		k, p := ks[i], perm[i]
		j := i - 1
		for j >= 0 && ks[j] > k {
			ks[j+1], perm[j+1] = ks[j], perm[j]
			j--
		}
		ks[j+1], perm[j+1] = k, p
	}
}

// partition3 performs a Dutch-national-flag partition of (ks, perm)
// around a median-of-three pivot: on return ks[:lt] < pivot,
// ks[lt:gt] == pivot and ks[gt:] > pivot.
func partition3[K Key](ks []K, perm []int32) (lt, gt int) {
	n := len(ks)
	m := n / 2
	// Median of first, middle and last picks a sane pivot on sorted,
	// reversed and random inputs alike.
	if ks[m] < ks[0] {
		ks[0], ks[m] = ks[m], ks[0]
		perm[0], perm[m] = perm[m], perm[0]
	}
	if ks[n-1] < ks[0] {
		ks[0], ks[n-1] = ks[n-1], ks[0]
		perm[0], perm[n-1] = perm[n-1], perm[0]
	}
	if ks[n-1] < ks[m] {
		ks[m], ks[n-1] = ks[n-1], ks[m]
		perm[m], perm[n-1] = perm[n-1], perm[m]
	}
	pivot := ks[m]
	lt, gt = 0, n
	for i := 0; i < gt; {
		switch {
		case ks[i] < pivot:
			ks[i], ks[lt] = ks[lt], ks[i]
			perm[i], perm[lt] = perm[lt], perm[i]
			lt++
			i++
		case ks[i] > pivot:
			gt--
			ks[i], ks[gt] = ks[gt], ks[i]
			perm[i], perm[gt] = perm[gt], perm[i]
		default:
			i++
		}
	}
	return lt, gt
}
