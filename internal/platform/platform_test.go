package platform

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"M1", "m1", "M2", "m2"} {
		m, ok := ByName(name)
		if !ok || m.Name == "" {
			t.Fatalf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("M3"); ok {
		t.Fatal("unknown machine resolved")
	}
}

func TestMachineInvariants(t *testing.T) {
	for _, m := range []Machine{M1(), M2()} {
		cpu, gpu := m.CPU, m.GPU
		if cpu.Threads < cpu.Cores || cpu.Cores <= 0 {
			t.Fatalf("%s: core/thread counts wrong", m.Name)
		}
		if cpu.LatMem <= cpu.LatLLC {
			t.Fatalf("%s: DRAM not slower than LLC", m.Name)
		}
		if cpu.Walk4K <= cpu.Walk1G {
			t.Fatalf("%s: 4K page walk should cost more than 1G (5 vs 3 accesses)", m.Name)
		}
		if !(cpu.CostHierSIMD <= cpu.CostLinearSIMD && cpu.CostLinearSIMD < cpu.CostSeqSearch) {
			t.Fatalf("%s: node-search cost ordering wrong", m.Name)
		}
		if cpu.TLB1GEntries != 4 {
			t.Fatalf("%s: the paper's 4-entry 1G TLB constraint lost", m.Name)
		}
		if gpu.MemBWBytes <= cpu.MemBWBytes {
			t.Fatalf("%s: GPU must out-bandwidth the CPU (the paper's premise)", m.Name)
		}
		if gpu.MemBytes != 3<<30 {
			t.Fatalf("%s: GTX 780/770M carry 3 GiB", m.Name)
		}
		if gpu.KernelBWEfficiency <= 0 || gpu.KernelBWEfficiency > 1 {
			t.Fatalf("%s: kernel efficiency out of range", m.Name)
		}
	}
	m1, m2 := M1(), M2()
	if m1.GPU.MemBWBytes <= m2.GPU.MemBWBytes {
		t.Fatal("M1's GTX 780 should out-bandwidth M2's 770M")
	}
	if m1.CPU.Threads <= m2.CPU.Threads {
		t.Fatal("M1's Xeon has more threads than M2's mobile i7")
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := M1().GPU
	// 12 SMX x 64 warps x 32 threads / 8 threads-per-query = 3072
	// concurrent queries for the 64-bit tree (Section 5.3).
	if got := g.ConcurrentQueries(8); got != 3072 {
		t.Fatalf("ConcurrentQueries(8) = %d", got)
	}
	if got := g.ConcurrentQueries(16); got != 1536 {
		t.Fatalf("ConcurrentQueries(16) = %d", got)
	}
	if got := g.ConcurrentQueries(0); got != g.SMs*g.MaxWarpsPerSM*32 {
		t.Fatalf("ConcurrentQueries(0) = %d", got)
	}
}
