// Package platform defines the calibrated hardware models for the two
// evaluation machines of the paper:
//
//	M1: Intel Xeon E5-2665 + Nvidia GeForce GTX 780   (Section 6.1)
//	M2: Intel Core i7-4800MQ + Nvidia GeForce GTX 770M
//
// The constants come from vendor datasheets and from the paper's own
// measurements (e.g. the optimal software-pipeline depth of 16, the 16K
// bucket size). The performance model in internal/core combines these
// constants with functionally measured event counts (cache-line touches,
// LLC misses, TLB walks, PCIe bytes, GPU memory transactions) to produce
// virtual-time throughput and latency figures.
package platform

import "hbtree/internal/vclock"

// CPU describes the host processor and its memory system.
type CPU struct {
	Name       string
	Cores      int     // physical cores
	Threads    int     // hardware threads used for batch lookups
	ClockGHz   float64 // nominal clock
	HasAVX2    bool    // M1 (Sandy Bridge EP) lacks AVX2; M2 (Haswell) has it
	SIMDBits   int     // vector register width in bits
	LLCBytes   int64   // last-level cache capacity
	LLCWays    int     // LLC associativity (for the cache simulator)
	MemBWBytes float64 // sustained memory bandwidth, bytes/second

	// Latencies for one 64-byte line access by level of the hierarchy.
	LatLLC vclock.Duration // hit in LLC
	LatMem vclock.Duration // miss to DRAM

	// TLB model (per hardware thread).
	TLB4KEntries int             // 4 KiB-page TLB entries (unified L2 sized)
	TLB1GEntries int             // 1 GiB-page TLB entries ("only four entries", Sec. 4.1)
	Walk4K       vclock.Duration // page-walk penalty, 4 KiB page (5 accesses)
	Walk1G       vclock.Duration // page-walk penalty, 1 GiB page (3 accesses)

	// Per-node compute cost of one in-node search, by algorithm, and the
	// per-query batch scheduling overhead of the lookup loop. These are
	// the calibration constants of the CPU cost model (see model.go).
	CostSeqSearch   vclock.Duration // sequential scan of one 64 B line
	CostLinearSIMD  vclock.Duration // linear AVX search (Snippet 1)
	CostHierSIMD    vclock.Duration // hierarchical AVX search (Snippet 2)
	CostQuerycommon vclock.Duration // per-query dispatch/bookkeeping overhead

	// MLPNoSWP is the memory-level parallelism the out-of-order core
	// reaches without software pipelining (overlapped misses); MLPMax is
	// the hardware ceiling (line-fill buffers) that software pipelining
	// can exploit.
	MLPNoSWP int
	MLPMax   int

	// CostHybridSched is the extra per-query CPU overhead of the hybrid
	// search path: bucket management, intermediate-result handling and
	// GPU coordination. The paper identifies CPU "scheduling and
	// searching leaf nodes" as the implicit HB+-tree's bound.
	CostHybridSched vclock.Duration

	// RebuildPerPair is the CPU cost per key-value pair of bulk tree
	// (re)construction, covering shuffle/merge/write work beyond raw
	// memory bandwidth.
	RebuildPerPair vclock.Duration
}

// GPU describes the discrete accelerator and its interconnect.
type GPU struct {
	Name          string
	SMs           int     // streaming multiprocessors
	MaxWarpsPerSM int     // resident warps per SM
	ClockGHz      float64 // core clock
	MemBytes      int64   // device memory capacity
	MemBWBytes    float64 // device memory bandwidth, bytes/second
	MemLatency    vclock.Duration

	PCIeBWBytes float64         // effective host<->device copy bandwidth
	TInit       vclock.Duration // per-transfer initialisation cost (T_init, Sec. 5.4)
	KInit       vclock.Duration // kernel-launch initialisation cost (K_init)

	// CostWarpStep is the compute cost for one warp to execute one
	// parallel node-search step (compare + flag + vote, Snippet 3).
	CostWarpStep vclock.Duration

	// TInitAsync is the initiation cost of one queued asynchronous copy
	// (cudaMemcpyAsync enqueued on a busy stream), much cheaper than the
	// full T_init of an isolated blocking transfer. The synchronized
	// update method's per-node transfers pay this cost (Section 5.6).
	TInitAsync vclock.Duration

	// KernelBWEfficiency is the fraction of peak device-memory bandwidth
	// a pointer-chasing tree-search kernel sustains (random 64-byte
	// coalesced accesses never reach peak). Calibrated per card.
	KernelBWEfficiency float64
}

// Machine is one complete evaluation platform.
type Machine struct {
	Name string
	CPU  CPU
	GPU  GPU
}

// ConcurrentQueries reports how many queries the GPU resolves
// concurrently for a given number of threads dedicated per query
// (Section 5.3: GPU_Threads / T).
func (g GPU) ConcurrentQueries(threadsPerQuery int) int {
	if threadsPerQuery <= 0 {
		threadsPerQuery = 1
	}
	return g.SMs * g.MaxWarpsPerSM * 32 / threadsPerQuery
}

// M1 returns the primary evaluation machine: Xeon E5-2665 (8C/16T Sandy
// Bridge EP, 20 MiB LLC, 4×DDR3-1600) with a GeForce GTX 780 (12 SMX,
// 3 GiB GDDR5 at 288.4 GB/s) on PCIe 3.0 x16.
func M1() Machine {
	return Machine{
		Name: "M1",
		CPU: CPU{
			Name:            "Intel Xeon E5-2665",
			Cores:           8,
			Threads:         16,
			ClockGHz:        2.4,
			HasAVX2:         false, // Sandy Bridge EP: AVX only
			SIMDBits:        256,
			LLCBytes:        20 << 20,
			LLCWays:         20,
			MemBWBytes:      51.2e9,
			LatLLC:          12 * vclock.Nanosecond,
			LatMem:          85 * vclock.Nanosecond,
			TLB4KEntries:    64,
			TLB1GEntries:    4,
			Walk4K:          60 * vclock.Nanosecond,
			Walk1G:          25 * vclock.Nanosecond,
			CostSeqSearch:   14 * vclock.Nanosecond,
			CostLinearSIMD:  7 * vclock.Nanosecond,
			CostHierSIMD:    6 * vclock.Nanosecond,
			CostQuerycommon: 25 * vclock.Nanosecond,
			MLPNoSWP:        1,
			MLPMax:          6,
			CostHybridSched: 20 * vclock.Nanosecond,
			RebuildPerPair:  2 * vclock.Nanosecond,
		},
		GPU: GPU{
			Name:               "Nvidia GeForce GTX 780",
			SMs:                12,
			MaxWarpsPerSM:      64,
			ClockGHz:           0.863,
			MemBytes:           3 << 30,
			MemBWBytes:         288.4e9,
			MemLatency:         400 * vclock.Nanosecond,
			PCIeBWBytes:        12.0e9,
			TInit:              10 * vclock.Microsecond,
			KInit:              5 * vclock.Microsecond,
			CostWarpStep:       25 * vclock.Nanosecond,
			TInitAsync:         320 * vclock.Nanosecond,
			KernelBWEfficiency: 0.85,
		},
	}
}

// M2 returns the secondary (mobile) machine: Core i7-4800MQ (4C/8T
// Haswell with AVX2, 6 MiB LLC, 2×DDR3-1600) with a GeForce GTX 770M
// (5 SMX, 3 GiB at 96.1 GB/s).
func M2() Machine {
	return Machine{
		Name: "M2",
		CPU: CPU{
			Name:            "Intel Core i7-4800MQ",
			Cores:           4,
			Threads:         8,
			ClockGHz:        2.7,
			HasAVX2:         true,
			SIMDBits:        256,
			LLCBytes:        6 << 20,
			LLCWays:         12,
			MemBWBytes:      25.6e9,
			LatLLC:          11 * vclock.Nanosecond,
			LatMem:          80 * vclock.Nanosecond,
			TLB4KEntries:    64,
			TLB1GEntries:    4,
			Walk4K:          55 * vclock.Nanosecond,
			Walk1G:          22 * vclock.Nanosecond,
			CostSeqSearch:   12 * vclock.Nanosecond,
			CostLinearSIMD:  6 * vclock.Nanosecond,
			CostHierSIMD:    5 * vclock.Nanosecond,
			CostQuerycommon: 25 * vclock.Nanosecond,
			MLPNoSWP:        1,
			MLPMax:          6,
			CostHybridSched: 24 * vclock.Nanosecond,
			RebuildPerPair:  2 * vclock.Nanosecond,
		},
		GPU: GPU{
			Name:               "Nvidia GeForce GTX 770M",
			SMs:                5,
			MaxWarpsPerSM:      64,
			ClockGHz:           0.706,
			MemBytes:           3 << 30,
			MemBWBytes:         96.1e9,
			MemLatency:         450 * vclock.Nanosecond,
			PCIeBWBytes:        10.0e9,
			TInit:              11 * vclock.Microsecond,
			KInit:              60 * vclock.Microsecond,
			CostWarpStep:       32 * vclock.Nanosecond,
			TInitAsync:         400 * vclock.Nanosecond,
			KernelBWEfficiency: 0.45,
		},
	}
}

// ByName returns the machine with the given name ("M1" or "M2").
func ByName(name string) (Machine, bool) {
	switch name {
	case "M1", "m1":
		return M1(), true
	case "M2", "m2":
		return M2(), true
	}
	return Machine{}, false
}
