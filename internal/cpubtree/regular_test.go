package cpubtree

import (
	"sort"
	"testing"
	"testing/quick"

	"hbtree/internal/keys"
	"hbtree/internal/simd"
	"hbtree/internal/workload"
)

func buildRegular64(t testing.TB, n int, cfg Config) (*RegularTree[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tr, err := BuildRegular(pairs, cfg)
	if err != nil {
		t.Fatalf("BuildRegular: %v", err)
	}
	return tr, pairs
}

// checkInvariants verifies the regular tree's structural invariants by a
// full walk: sorted leaf chain matching the expected pair set, correct
// pair count, index lines consistent with separators, parent pointers
// and child counts consistent.
func checkInvariants(t *testing.T, tr *RegularTree[uint64], want []keys.Pair[uint64]) {
	t.Helper()
	// Leaf chain yields all pairs in order.
	var got []keys.Pair[uint64]
	for b := tr.headLeaf; b != nilRef; b = tr.leafMeta[b].next {
		np := int(tr.leafMeta[b].npairs)
		data := tr.leafPairs(b)
		for i := 0; i < np; i++ {
			got = append(got, keys.Pair[uint64]{Key: data[2*i], Value: data[2*i+1]})
		}
		// Packed region sorted; padding all MAX.
		for i := 1; i < np; i++ {
			if data[2*(i-1)] >= data[2*i] {
				t.Fatalf("leaf %d not sorted at %d", b, i)
			}
		}
		for i := np; i < tr.leafCap; i++ {
			if data[2*i] != keys.Max[uint64]() {
				t.Fatalf("leaf %d padding slot %d = %d", b, i, data[2*i])
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("walk found %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("walk[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tr.NumPairs() != len(want) {
		t.Fatalf("NumPairs = %d, want %d", tr.NumPairs(), len(want))
	}
	// Index lines mirror separators.
	checkNode := func(pool []uint64, idx int32) {
		il := tr.indexLine(pool, idx)
		ks := tr.nodeKeys(pool, idx)
		for s := 0; s < tr.kpl; s++ {
			if il[s] != ks[s*tr.kpl+tr.kpl-1] {
				t.Fatalf("index line slot %d inconsistent on node %d", s, idx)
			}
		}
		// Separators non-decreasing with MAX padding.
		for c := 1; c < tr.fanout; c++ {
			if ks[c-1] > ks[c] {
				t.Fatalf("separators not sorted on node %d at %d", idx, c)
			}
		}
	}
	// Walk all reachable nodes breadth-first from the root.
	if tr.height >= 2 {
		level := []int32{tr.root}
		for h := tr.height; h >= 2; h-- {
			var next []int32
			for _, u := range level {
				checkNode(tr.upper, u)
				n := int(tr.upperMeta[u].nchild)
				if n < 1 || n > tr.fanout {
					t.Fatalf("upper node %d nchild=%d", u, n)
				}
				rs := tr.nodeRefs(tr.upper, u)
				for j := 0; j < n; j++ {
					c := int32(rs[j])
					if h > 2 {
						if tr.upperMeta[c].parent != u {
							t.Fatalf("upper child %d parent != %d", c, u)
						}
					} else {
						if tr.lastMeta[c].parent != u {
							t.Fatalf("last child %d parent != %d", c, u)
						}
					}
					next = append(next, c)
				}
			}
			level = next
		}
		for _, b := range level {
			checkNode(tr.last, b)
		}
	} else {
		checkNode(tr.last, tr.root)
	}
}

func TestRegularLookupAllKeys(t *testing.T) {
	for _, n := range []int{1, 5, 255, 256, 257, 5000, 200000} {
		tr, pairs := buildRegular64(t, n, Config{})
		for _, p := range pairs {
			v, ok := tr.Lookup(p.Key)
			if !ok || v != p.Value {
				t.Fatalf("n=%d: Lookup(%d) = (%d,%v), want (%d,true)", n, p.Key, v, ok, p.Value)
			}
		}
		checkInvariants(t, tr, pairs)
	}
}

func TestRegular32Bit(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 30000, 8)
	tr, err := BuildRegular(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fanout() != 256 {
		t.Fatalf("32-bit fanout = %d, want 256", tr.Fanout())
	}
	if tr.LeafCapacity() != 2048 {
		t.Fatalf("32-bit leaf capacity = %d, want 2048", tr.LeafCapacity())
	}
	for i := 0; i < len(pairs); i += 3 {
		if v, ok := tr.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
			t.Fatalf("32-bit Lookup(%d) failed", pairs[i].Key)
		}
	}
}

func TestRegularGeometry(t *testing.T) {
	tr, _ := buildRegular64(t, 100000, Config{})
	if tr.Fanout() != 64 {
		t.Fatalf("fanout = %d, want 64", tr.Fanout())
	}
	if tr.LeafCapacity() != 256 {
		t.Fatalf("leaf capacity = %d, want 256", tr.LeafCapacity())
	}
	// S_I = 1088 bytes = 17 cache lines (Figure 2c).
	if got := tr.nodeSlots * keys.Size[uint64](); got != 1088 {
		t.Fatalf("inner node bytes = %d, want 1088", got)
	}
	st := tr.Stats()
	if st.LinesPerQuery != 3*tr.Height() {
		t.Fatalf("LinesPerQuery = %d, want %d", st.LinesPerQuery, 3*tr.Height())
	}
}

func TestRegularLookupMisses(t *testing.T) {
	tr, pairs := buildRegular64(t, 10000, Config{})
	present := make(map[uint64]bool, len(pairs))
	for _, p := range pairs {
		present[p.Key] = true
	}
	r := workload.NewRNG(3)
	for i := 0; i < 5000; i++ {
		q := r.Uint64()
		if q == keys.Max[uint64]() || present[q] {
			continue
		}
		if _, ok := tr.Lookup(q); ok {
			t.Fatalf("found nonexistent key %d", q)
		}
	}
}

func TestRegularBatchMatchesSingle(t *testing.T) {
	tr, pairs := buildRegular64(t, 50000, Config{Threads: 4})
	qs := workload.SearchInput(pairs, len(pairs), 1)
	vals := make([]uint64, len(qs))
	fnd := make([]bool, len(qs))
	tr.LookupBatch(qs, vals, fnd)
	for i, q := range qs {
		if !fnd[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("batch lookup %d of key %d wrong", i, q)
		}
	}
}

func TestRegularRangeQuery(t *testing.T) {
	tr, pairs := buildRegular64(t, 20000, Config{})
	r := workload.NewRNG(5)
	for iter := 0; iter < 200; iter++ {
		start := r.Intn(len(pairs))
		count := 1 + r.Intn(64)
		out := tr.RangeQuery(pairs[start].Key, count, nil)
		wantN := count
		if start+count > len(pairs) {
			wantN = len(pairs) - start
		}
		if len(out) != wantN {
			t.Fatalf("range: got %d, want %d", len(out), wantN)
		}
		for j, p := range out {
			if p != pairs[start+j] {
				t.Fatalf("range[%d] = %+v, want %+v", j, p, pairs[start+j])
			}
		}
	}
}

func TestRegularInsertLookup(t *testing.T) {
	tr, pairs := buildRegular64(t, 5000, Config{LeafFill: 0.7})
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	r := workload.NewRNG(10)
	for i := 0; i < 8000; i++ {
		k := r.Uint64()
		if k == keys.Max[uint64]() {
			continue
		}
		v := workload.ValueFor(k)
		if _, err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	want := make([]keys.Pair[uint64], 0, len(oracle))
	for k, v := range oracle {
		want = append(want, keys.Pair[uint64]{Key: k, Value: v})
	}
	sort.Sort(keys.ByKey[uint64](want))
	checkInvariants(t, tr, want)
	for k, v := range oracle {
		if got, ok := tr.Lookup(k); !ok || got != v {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
}

func TestRegularInsertOverwrite(t *testing.T) {
	tr, pairs := buildRegular64(t, 100, Config{})
	n := tr.NumPairs()
	if _, err := tr.Insert(pairs[0].Key, 777); err != nil {
		t.Fatal(err)
	}
	if tr.NumPairs() != n {
		t.Fatalf("overwrite changed NumPairs to %d", tr.NumPairs())
	}
	if v, _ := tr.Lookup(pairs[0].Key); v != 777 {
		t.Fatalf("overwrite not visible: %d", v)
	}
}

func TestRegularInsertSentinelRejected(t *testing.T) {
	tr, _ := buildRegular64(t, 10, Config{})
	if _, err := tr.Insert(keys.Max[uint64](), 1); err == nil {
		t.Fatal("sentinel insert accepted")
	}
}

func TestRegularInsertSplitsGrowHeight(t *testing.T) {
	// Sequential inserts into full leaves force splits up the tree.
	pairs := workload.Dataset[uint64](workload.Uniform, 64, 3)
	tr, err := BuildRegular(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h0 := tr.Height()
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	r := workload.NewRNG(44)
	for i := 0; i < 200000; i++ {
		k := r.Uint64()
		if k == keys.Max[uint64]() {
			continue
		}
		v := workload.ValueFor(k)
		tr.Insert(k, v)
		oracle[k] = v
	}
	if tr.Height() <= h0 {
		t.Fatalf("height did not grow: %d -> %d", h0, tr.Height())
	}
	want := make([]keys.Pair[uint64], 0, len(oracle))
	for k, v := range oracle {
		want = append(want, keys.Pair[uint64]{Key: k, Value: v})
	}
	sort.Sort(keys.ByKey[uint64](want))
	checkInvariants(t, tr, want)
}

func TestRegularDelete(t *testing.T) {
	tr, pairs := buildRegular64(t, 5000, Config{})
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	r := workload.NewRNG(12)
	deleted := 0
	for i := 0; i < 3000; i++ {
		k := pairs[r.Intn(len(pairs))].Key
		found, _ := tr.Delete(k)
		if _, want := oracle[k]; want != found {
			t.Fatalf("Delete(%d) found=%v, want %v", k, found, want)
		}
		if found {
			delete(oracle, k)
			deleted++
		}
	}
	if deleted == 0 {
		t.Fatal("no deletions executed")
	}
	want := make([]keys.Pair[uint64], 0, len(oracle))
	for k, v := range oracle {
		want = append(want, keys.Pair[uint64]{Key: k, Value: v})
	}
	sort.Sort(keys.ByKey[uint64](want))
	checkInvariants(t, tr, want)
}

func TestRegularDeleteAllThenReinsert(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 3000, 77)
	tr, err := BuildRegular(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if found, _ := tr.Delete(p.Key); !found {
			t.Fatalf("Delete(%d) missed", p.Key)
		}
	}
	if tr.NumPairs() != 0 {
		t.Fatalf("NumPairs = %d after deleting all", tr.NumPairs())
	}
	for _, p := range pairs {
		if _, ok := tr.Lookup(p.Key); ok {
			t.Fatalf("deleted key %d still found", p.Key)
		}
	}
	// The tree must remain usable.
	for _, p := range pairs[:500] {
		if _, err := tr.Insert(p.Key, p.Value); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr, pairs[:500])
}

func TestRegularApplyBatchParallel(t *testing.T) {
	tr, pairs := buildRegular64(t, 30000, Config{LeafFill: 0.8})
	ops := workload.UpdateBatch(pairs, 20000, 0.3, 55)
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	cops := make([]Op[uint64], len(ops))
	for i, op := range ops {
		cops[i] = Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
		if op.Delete {
			delete(oracle, op.Pair.Key)
		} else {
			oracle[op.Pair.Key] = op.Pair.Value
		}
	}
	res := tr.ApplyBatchParallel(cops, 4)
	if res.Applied == 0 {
		t.Fatal("no ops applied")
	}
	want := make([]keys.Pair[uint64], 0, len(oracle))
	for k, v := range oracle {
		want = append(want, keys.Pair[uint64]{Key: k, Value: v})
	}
	sort.Sort(keys.ByKey[uint64](want))
	checkInvariants(t, tr, want)
	if len(res.DirtyLast) == 0 {
		t.Fatal("no dirty nodes reported")
	}
}

func TestRegularApplyBatchSequentialMatchesParallel(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 10000, 4)
	ops := workload.UpdateBatch(pairs, 5000, 0.4, 66)
	cops := make([]Op[uint64], len(ops))
	for i, op := range ops {
		cops[i] = Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
	}
	t1, _ := BuildRegular(pairs, Config{LeafFill: 0.9})
	t2, _ := BuildRegular(pairs, Config{LeafFill: 0.9})
	t1.ApplyBatchSequential(cops)
	t2.ApplyBatchParallel(cops, 8)
	if t1.NumPairs() != t2.NumPairs() {
		t.Fatalf("NumPairs diverge: %d vs %d", t1.NumPairs(), t2.NumPairs())
	}
	// Both trees must contain exactly the same data.
	out1 := t1.RangeQuery(0, t1.NumPairs()+10, nil)
	out2 := t2.RangeQuery(0, t2.NumPairs()+10, nil)
	if len(out1) != len(out2) {
		t.Fatalf("range sizes diverge: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("content diverges at %d: %+v vs %+v", i, out1[i], out2[i])
		}
	}
}

func TestRegularMixedBatch(t *testing.T) {
	tr, pairs := buildRegular64(t, 20000, Config{LeafFill: 0.8})
	r := workload.NewRNG(31)
	ops := make([]MixedOp[uint64], 10000)
	for i := range ops {
		switch r.Intn(3) {
		case 0:
			p := pairs[r.Intn(len(pairs))]
			ops[i] = MixedOp[uint64]{Kind: MixedSearch, Key: p.Key}
		case 1:
			k := r.Uint64()
			if k == keys.Max[uint64]() {
				k--
			}
			ops[i] = MixedOp[uint64]{Kind: MixedInsert, Key: k, Value: workload.ValueFor(k)}
		default:
			ops[i] = MixedOp[uint64]{Kind: MixedDelete, Key: pairs[r.Intn(len(pairs))].Key}
		}
	}
	res := tr.MixedBatch(ops, 4)
	// Searches for keys that were present at batch start and never
	// deleted must succeed with the correct value.
	deletedKeys := make(map[uint64]bool)
	for _, op := range ops {
		if op.Kind == MixedDelete {
			deletedKeys[op.Key] = true
		}
	}
	for i, op := range ops {
		if op.Kind == MixedSearch && !deletedKeys[op.Key] {
			if !res.Found[i] || res.Values[i] != workload.ValueFor(op.Key) {
				t.Fatalf("mixed search %d for key %d failed", i, op.Key)
			}
		}
	}
}

// TestRegularQuickUpdates property-tests random update sequences against
// a map oracle.
func TestRegularQuickUpdates(t *testing.T) {
	f := func(seed uint64) bool {
		pairs := workload.Dataset[uint64](workload.Uniform, 500, seed)
		tr, err := BuildRegular(pairs, Config{LeafFill: 0.6})
		if err != nil {
			return false
		}
		oracle := make(map[uint64]uint64)
		for _, p := range pairs {
			oracle[p.Key] = p.Value
		}
		r := workload.NewRNG(seed ^ 0xabcd)
		for i := 0; i < 2000; i++ {
			if r.Intn(3) == 0 {
				k := pairs[r.Intn(len(pairs))].Key
				tr.Delete(k)
				delete(oracle, k)
			} else {
				k := r.Uint64()
				if k == keys.Max[uint64]() {
					continue
				}
				tr.Insert(k, k+1)
				oracle[k] = k + 1
			}
		}
		for k, v := range oracle {
			if got, ok := tr.Lookup(k); !ok || got != v {
				return false
			}
		}
		return tr.NumPairs() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularNodeSearchAlgorithms(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 6)
	for _, alg := range []simd.Algorithm{simd.Sequential, simd.Linear, simd.Hierarchical} {
		tr, err := BuildRegular(pairs, Config{NodeSearch: alg})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(pairs); i += 17 {
			if v, ok := tr.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
				t.Fatalf("%v: Lookup(%d) failed", alg, pairs[i].Key)
			}
		}
	}
}

func TestRegularLeafFillBounds(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 10000, 2)
	for _, fill := range []float64{0.3, 0.5, 1.0} {
		tr, err := BuildRegular(pairs, Config{LeafFill: fill})
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, tr, pairs)
	}
}
