package cpubtree

import (
	"hbtree/internal/keys"
)

// Gapped delta leaves: the in-place batch-apply path that kills the
// clone-on-write amplification of the snapshot serving layer. A bulk
// load with LeafFill < 1 leaves slack pair slots at the tail of every
// big leaf; this file turns that slack into a per-leaf append-only
// delta region so a small batch can be applied without copying the
// tree.
//
// Layout. A big leaf's pairs stay packed and sorted in [0, npairs); the
// delta region starts at the first cache-line boundary past the base
// pairs (deltaStart) and holds up to deltaCap append-only (key, value)
// entries, newest last. A delete is an appended entry whose bit in the
// leafMeta.tomb mask is set — a tombstone shadowing the key below it.
// Line alignment matters: readers pinned on an older epoch probe base
// lines with SIMD line loads, and a delta entry sharing a line with
// base pairs would tear those loads. Line 0 is always base-reserved so
// an empty leaf's probes never touch delta state. The mask bounds
// deltaCap at 64 entries.
//
// Epoch discipline. ForkDelta produces a view that shares every node
// pool with its parent and deep-copies only the per-leaf metadata
// (npairs/ndelta/tomb/nlive — a few int32s per leaf). The fork appends
// delta entries into leafData slots at indices >= every ancestor's
// ndelta: addresses no pinned reader of an older epoch ever loads,
// because each epoch's reads are bounded by its own leafMeta snapshot.
// A slot is therefore never reused while an epoch that could see it is
// pinned, and publication through the epoch registry's atomic swap
// orders the appends before any new-epoch read. Everything structural —
// splits, merges, base-region shifts — is forbidden on a fork
// (sharedPools guards panic) and falls back to the clone-and-swap path,
// whose Clone() first compacts every delta into the base region.

// deltaStart returns the first pair slot of the delta region for a leaf
// holding np base pairs: the next leaf-line boundary, with line 0
// always reserved for the base region.
func (t *RegularTree[K]) deltaStart(np int) int {
	lines := (np + t.ppl - 1) / t.ppl
	if lines < 1 {
		lines = 1
	}
	return lines * t.ppl
}

// deltaCap returns how many delta entries fit behind np base pairs
// (bounded by the 64-bit tombstone mask).
func (t *RegularTree[K]) deltaCap(np int) int {
	c := t.leafCap - t.deltaStart(np)
	if c > 64 {
		c = 64
	}
	if c < 0 {
		c = 0
	}
	return c
}

// DeltaLeaves reports how many big leaves currently carry uncompacted
// delta entries.
func (t *RegularTree[K]) DeltaLeaves() int { return t.deltaLeaves }

// Shared reports whether this tree is a delta fork sharing node pools
// with its ancestors (structural mutation is forbidden on it).
func (t *RegularTree[K]) Shared() bool { return t.sharedPools }

// ensurePrivate guards every mutation that shifts base pairs or changes
// tree structure: running one on a fork would corrupt the pools other
// epochs still read.
func (t *RegularTree[K]) ensurePrivate() {
	if t.sharedPools {
		panic("cpubtree: structural mutation on a delta fork; Clone() first")
	}
}

// deltaLookup resolves q against leaf b's delta region, newest entry
// first (the latest append for a key wins). ok reports whether the key
// has a delta entry at all; tombstoned reports a delete shadow.
func (t *RegularTree[K]) deltaLookup(b int32, m *leafMeta, q K) (v K, tombstoned, ok bool) {
	ds := t.deltaStart(int(m.npairs))
	data := t.leafPairs(b)
	for j := int(m.ndelta) - 1; j >= 0; j-- {
		if data[2*(ds+j)] == q {
			return data[2*(ds+j)+1], m.tomb&(1<<uint(j)) != 0, true
		}
	}
	return 0, false, false
}

// Per-op plan actions.
const (
	actSkip      uint8 = iota // reserved key; not applied, not counted
	actInsert                 // append; net live +1
	actOverwrite              // append shadowing an existing value
	actDelete                 // append tombstone; net live -1
	actNotFound               // delete of an absent key; no append
)

// DeltaPlan is the reusable classification scratch of PlanDelta. A plan
// is valid for exactly the (tree, ops) pair it was computed from and is
// consumed by ApplyPlannedDelta on a fork of that tree.
type DeltaPlan[K keys.Key] struct {
	leaves []int32 // target leaf per op
	acts   []uint8 // action per op
	prev   []int32 // previous pending op on the same leaf (batch-local chain)

	heads map[int32]int32 // leaf -> index of its newest pending op

	dirty    []int32 // distinct leaves the batch appends to
	applied  int
	notFound int
}

// PlanDelta classifies ops against t per target leaf and reports
// whether the whole batch fits the existing gaps: every touched leaf
// must absorb its appends within deltaCap and keep at least one live
// pair. Any violation fails the whole batch (the caller falls back to
// clone-and-swap); a feasible plan never triggers structural change.
// The plan only reads t; it does not mutate it.
func (t *RegularTree[K]) PlanDelta(ops []Op[K], p *DeltaPlan[K]) bool {
	if cap(p.leaves) < len(ops) {
		p.leaves = make([]int32, len(ops))
		p.acts = make([]uint8, len(ops))
		p.prev = make([]int32, len(ops))
	}
	p.leaves = p.leaves[:len(ops)]
	p.acts = p.acts[:len(ops)]
	p.prev = p.prev[:len(ops)]
	if p.heads == nil {
		p.heads = make(map[int32]int32)
	} else {
		clear(p.heads)
	}
	p.dirty = p.dirty[:0]
	p.applied, p.notFound = 0, 0

	// Per-leaf pending-append and live-delta accounting, chained off the
	// heads map so one pass suffices.
	type leafAcc struct {
		pend int32
		live int32
	}
	accs := make(map[int32]*leafAcc, 16)

	maxK := keys.Max[K]()
	for i, op := range ops {
		if op.Key == maxK {
			if op.Delete {
				p.acts[i] = actNotFound
				p.notFound++
			} else {
				p.acts[i] = actSkip
			}
			p.leaves[i] = nilRef
			p.prev[i] = nilRef
			continue
		}
		b := t.descendUpper(op.Key)
		p.leaves[i] = b

		// Presence: newest pending append in this batch wins, then the
		// tree's own delta region, then the packed base.
		present := false
		decided := false
		head, chained := p.heads[b]
		for j := head; chained && j != nilRef; j = p.prev[j] {
			if ops[j].Key == op.Key {
				present = p.acts[j] != actDelete
				decided = true
				break
			}
		}
		if !decided {
			m := &t.leafMeta[b]
			if m.ndelta > 0 {
				if _, tomb, ok := t.deltaLookup(b, m, op.Key); ok {
					present = !tomb
					decided = true
				}
			}
			if !decided {
				present = t.contains(b, op.Key)
			}
		}

		if op.Delete && !present {
			p.acts[i] = actNotFound
			p.prev[i] = nilRef
			p.notFound++
			continue
		}

		acc := accs[b]
		if acc == nil {
			acc = &leafAcc{}
			accs[b] = acc
			p.dirty = append(p.dirty, b)
		}
		m := &t.leafMeta[b]
		if int(m.ndelta)+int(acc.pend)+1 > t.deltaCap(int(m.npairs)) {
			return false // gap exhausted: whole batch takes the clone path
		}
		switch {
		case op.Delete:
			p.acts[i] = actDelete
			acc.live--
			if int(m.npairs)+int(m.nlive)+int(acc.live) <= 0 {
				return false // leaf would empty: structural, clone path
			}
		case present:
			p.acts[i] = actOverwrite
		default:
			p.acts[i] = actInsert
			acc.live++
		}
		acc.pend++
		p.applied++
		if chained {
			p.prev[i] = head
		} else {
			p.prev[i] = nilRef
		}
		p.heads[b] = int32(i)
	}
	return true
}

// ForkDelta returns a view of t that shares every node pool (upper,
// last, leaf data, free lists) and deep-copies only the per-leaf
// metadata, so ApplyPlannedDelta can publish new per-leaf slot counts
// without disturbing readers of t. The fork refuses structural
// mutation; Clone() it to obtain a private tree.
func (t *RegularTree[K]) ForkDelta() *RegularTree[K] {
	c := *t
	c.leafMeta = append([]leafMeta(nil), t.leafMeta...)
	c.sharedPools = true
	return &c
}

// ApplyPlannedDelta applies a batch classified by PlanDelta to t — a
// fork of the tree the plan was computed from. Every op appends into
// its leaf's delta region at slots past the parent's ndelta, so readers
// of any ancestor epoch keep seeing their exact pre-batch images. The
// inner pools are untouched: no separator, node or device state
// changes.
func (t *RegularTree[K]) ApplyPlannedDelta(ops []Op[K], p *DeltaPlan[K]) BatchResult {
	var res BatchResult
	for i, op := range ops {
		switch p.acts[i] {
		case actSkip:
			continue
		case actNotFound:
			res.NotFound++
			continue
		}
		b := p.leaves[i]
		m := &t.leafMeta[b]
		j := int(m.ndelta)
		pos := t.deltaStart(int(m.npairs)) + j
		data := t.leafPairs(b)
		data[2*pos] = op.Key
		data[2*pos+1] = op.Value
		switch p.acts[i] {
		case actDelete:
			m.tomb |= 1 << uint(j)
			m.nlive--
			t.numPairs--
		case actInsert:
			m.nlive++
			t.numPairs++
		}
		if j == 0 {
			t.deltaLeaves++
		}
		m.ndelta = int32(j + 1)
		res.Applied++
	}
	res.DirtyLast = append(res.DirtyLast, p.dirty...)
	return res
}

// leafScan is one leaf's delta region deduplicated (newest entry per
// key wins) and sorted ascending — the merge input for ordered scans
// and compaction. Tombstoned keys are kept with tomb set so the merge
// can suppress the shadowed base pair.
type leafScan[K keys.Key] struct {
	keys [64]K
	vals [64]K
	tomb [64]bool
	n    int
}

// buildLeafScan fills s from leaf b's delta region.
func (t *RegularTree[K]) buildLeafScan(b int32, s *leafScan[K]) {
	m := &t.leafMeta[b]
	s.n = 0
	ds := t.deltaStart(int(m.npairs))
	data := t.leafPairs(b)
	for j := int(m.ndelta) - 1; j >= 0; j-- {
		k := data[2*(ds+j)]
		dup := false
		for x := 0; x < s.n; x++ {
			if s.keys[x] == k {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.keys[s.n] = k
		s.vals[s.n] = data[2*(ds+j)+1]
		s.tomb[s.n] = m.tomb&(1<<uint(j)) != 0
		s.n++
	}
	for i := 1; i < s.n; i++ {
		k, v, tb := s.keys[i], s.vals[i], s.tomb[i]
		j := i - 1
		for j >= 0 && s.keys[j] > k {
			s.keys[j+1], s.vals[j+1], s.tomb[j+1] = s.keys[j], s.vals[j], s.tomb[j]
			j--
		}
		s.keys[j+1], s.vals[j+1], s.tomb[j+1] = k, v, tb
	}
}

// compactDeltas merges every leaf's delta region into its base pairs.
// Only called on a private deep copy (from Clone): compaction shifts
// base pairs and refreshes separators, which a shared fork must never
// do. A compacted leaf always fits: base + delta <= leafCap by the
// deltaCap bound, so compaction never splits.
func (t *RegularTree[K]) compactDeltas() {
	if t.deltaLeaves == 0 {
		return
	}
	t.ensurePrivate()
	var s leafScan[K]
	scratch := make([]K, 0, 2*t.leafCap)
	maxK := keys.Max[K]()
	for b := int32(0); int(b) < len(t.leafMeta); b++ {
		m := &t.leafMeta[b]
		if m.ndelta == 0 {
			continue
		}
		t.buildLeafScan(b, &s)
		np := int(m.npairs)
		ds := t.deltaStart(np)
		data := t.leafPairs(b)
		merged := scratch[:0]
		bi, di := 0, 0
		for bi < np || di < s.n {
			haveB, haveD := bi < np, di < s.n
			if haveD && (!haveB || s.keys[di] <= data[2*bi]) {
				if haveB && s.keys[di] == data[2*bi] {
					bi++
				}
				if !s.tomb[di] {
					merged = append(merged, s.keys[di], s.vals[di])
				}
				di++
				continue
			}
			merged = append(merged, data[2*bi], data[2*bi+1])
			bi++
		}
		out := len(merged) / 2
		copy(data, merged)
		clearTo := ds + int(m.ndelta)
		for pos := out; pos < clearTo; pos++ {
			data[2*pos] = maxK
			data[2*pos+1] = 0
		}
		m.npairs = int32(out)
		m.ndelta, m.tomb, m.nlive = 0, 0, 0
		t.refreshLastKeys(b)
	}
	t.deltaLeaves = 0
}
