package cpubtree

import (
	"bytes"
	"fmt"
	"testing"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// Property test (ISSUE PR-6 satellite): a serialised tree image loaded
// back equals its source key-for-key, across randomized tree shapes,
// key distributions and mutation histories — including the leaf-group
// boundary cases the snapshot writer must survive: a tree emptied by
// deletes, a single pair, and exactly-full leaves (LeafFill 1.0).

// collect walks a cursor from the bottom of the key space.
func collect[K keys.Key](seek func(K) Cursor[K]) []keys.Pair[K] {
	var out []keys.Pair[K]
	var zero K
	cur := seek(zero)
	for {
		p, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// assertEqualPairs compares two pair sequences key-for-key.
func assertEqualPairs[K keys.Key](t *testing.T, label string, want, got []keys.Pair[K]) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs loaded, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func roundTripRegular(t *testing.T, label string, tr *RegularTree[uint64]) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("%s: WriteTo: %v", label, err)
	}
	rt, err := ReadRegular[uint64](&buf, Config{})
	if err != nil {
		t.Fatalf("%s: ReadRegular: %v", label, err)
	}
	if rt.NumPairs() != tr.NumPairs() {
		t.Fatalf("%s: NumPairs %d, want %d", label, rt.NumPairs(), tr.NumPairs())
	}
	assertEqualPairs(t, label, collect(tr.Seek), collect(rt.Seek))
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	distros := []workload.Distribution{workload.Uniform, workload.Normal, workload.Gamma, workload.Zipf}
	for seed := uint64(1); seed <= 8; seed++ {
		r := workload.NewRNG(seed * 977)
		n := 1 + r.Intn(60000)
		d := distros[r.Intn(len(distros))]
		if d == workload.Zipf && n > 2000 {
			// Zipf(alpha=2) concentrates so hard that drawing tens of
			// thousands of DISTINCT keys regenerates nearly every batch;
			// small n exercises the shape without the quadratic dedup.
			n = 1 + n%2000
		}
		fill := []float64{0, 0.55, 0.8, 1.0}[r.Intn(4)] // 0 = default; 1.0 = exactly-full leaves
		label := fmt.Sprintf("seed=%d n=%d dist=%v fill=%.2f", seed, n, d, fill)

		pairs := workload.Dataset[uint64](d, n, seed)
		tr, err := BuildRegular(pairs, Config{LeafFill: fill})
		if err != nil {
			t.Fatalf("%s: build: %v", label, err)
		}
		// Random mutation history so splits, merges, free lists and
		// leaf-chain unlinks shape the pools.
		muts := r.Intn(2 * len(pairs))
		for i := 0; i < muts; i++ {
			if r.Intn(3) == 0 && len(pairs) > 0 {
				tr.Delete(pairs[r.Intn(len(pairs))].Key)
			} else {
				k := r.Uint64() % (keys.Max[uint64]() - 1)
				tr.Insert(k, workload.ValueFor(k))
			}
		}
		roundTripRegular(t, label, tr)

		// The implicit variant round-trips the same source.
		impl, err := BuildImplicit(pairs, Config{})
		if err != nil {
			t.Fatalf("%s: build implicit: %v", label, err)
		}
		var buf bytes.Buffer
		if _, err := impl.WriteTo(&buf); err != nil {
			t.Fatalf("%s: implicit WriteTo: %v", label, err)
		}
		ri, err := ReadImplicit[uint64](&buf, Config{})
		if err != nil {
			t.Fatalf("%s: ReadImplicit: %v", label, err)
		}
		assertEqualPairs(t, label+" (implicit)", collect(impl.Seek), collect(ri.Seek))
	}
}

func TestSnapshotRoundTripBoundaryShapes(t *testing.T) {
	// Single pair: the smallest buildable tree.
	one := []keys.Pair[uint64]{{Key: 42, Value: 7}}
	tr, err := BuildRegular(one, Config{})
	if err != nil {
		t.Fatal(err)
	}
	roundTripRegular(t, "single pair", tr)

	// Emptied tree: every key deleted, so the image carries only free
	// lists and an empty leaf chain — the empty-shard shape.
	pairs := workload.Dataset[uint64](workload.Uniform, 500, 3)
	tr, err = BuildRegular(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if found, _ := tr.Delete(p.Key); !found {
			t.Fatalf("delete %d: not found", p.Key)
		}
	}
	if tr.NumPairs() != 0 {
		t.Fatalf("tree not emptied: %d pairs", tr.NumPairs())
	}
	roundTripRegular(t, "emptied tree", tr)
	// And the emptied round-trip remains usable.
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	rt, err := ReadRegular[uint64](&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Insert(9, 9); err != nil {
		t.Fatalf("insert into loaded empty tree: %v", err)
	}
	if v, ok := rt.Lookup(9); !ok || v != 9 {
		t.Fatalf("lookup after refill: (%d, %v)", v, ok)
	}

	// Exactly-full leaves: LeafFill 1.0 packs every leaf line to
	// capacity, so group boundaries sit exactly on line edges.
	for _, n := range []int{64, 1024, 4096, 4097} {
		pairs := workload.Dataset[uint64](workload.Uniform, n, uint64(n))
		tr, err := BuildRegular(pairs, Config{LeafFill: 1.0})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		roundTripRegular(t, fmt.Sprintf("full leaves n=%d", n), tr)
	}
}
