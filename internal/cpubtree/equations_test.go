package cpubtree

import (
	"math"
	"testing"

	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/workload"
)

// This file checks the paper's analytic space and height equations
// (Equations 1 and 2, Section 4.1) against the built trees.

// TestEquation1RegularSpace: I_space = N / (P_L (F_I - 1)) * S_I and
// L_space = N / P_L * S_L for a full tree. Our builder's big leaves make
// P_L effectively 256 pairs per leaf unit; the last-level inner pool is
// the dominant I-segment term the equation models.
func TestEquation1RegularSpace(t *testing.T) {
	n := 1 << 18 // multiple of 256: full big leaves
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tr, err := BuildRegular(pairs, Config{LeafFill: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()

	// Leaf space: exactly one big leaf per 256 pairs, 64 lines of data.
	wantLeaf := int64(n) / 256 * 64 * keys.LineBytes
	if st.LeafBytes != wantLeaf {
		t.Fatalf("LeafBytes = %d, want %d", st.LeafBytes, wantLeaf)
	}

	// Inner space: n/256 last-level nodes of S_I=1088 bytes, plus upper
	// levels that add at most 1/(F_I-1) on top.
	lastBytes := int64(n) / 256 * 1088
	if st.InnerBytes < lastBytes || st.InnerBytes > lastBytes+lastBytes/63+2*1088 {
		t.Fatalf("InnerBytes = %d outside [%d, %d]", st.InnerBytes, lastBytes, lastBytes+lastBytes/63+2*1088)
	}
}

// TestEquation2RegularHeight: the regular tree's height obeys
// ceil(log_32(N/4+1)) <= H <= floor(log_16((N/2+1)/2)) + 1 in the
// paper's half-full-to-full range; our bulk load is full (fanout 64,
// 256-pair leaves), so H <= ceil(log_64(N/256)) + 1.
func TestEquation2RegularHeight(t *testing.T) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		pairs := workload.Dataset[uint64](workload.Uniform, n, 7)
		tr, err := BuildRegular(pairs, Config{LeafFill: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		upper := int(math.Ceil(math.Log(float64(n)/256)/math.Log(64))) + 1
		if upper < 1 {
			upper = 1
		}
		if tr.Height() > upper {
			t.Fatalf("n=%d: height %d exceeds full-tree bound %d", n, tr.Height(), upper)
		}
		// And the paper's lower bound with its P_L=4 line-granularity
		// accounting.
		lower := int(math.Ceil(math.Log(float64(n)/4+1) / math.Log(32)))
		if tr.Height() > lower+2 {
			t.Fatalf("n=%d: height %d far above Eq.2 lower bound %d", n, tr.Height(), lower)
		}
	}
}

// TestRegular32BitUpdates exercises the full update machinery on the
// 32-bit variant (fanout 256, 2048-pair big leaves).
func TestRegular32BitUpdates(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 30000, 3)
	tr, err := BuildRegular(pairs, Config{LeafFill: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint32]uint32)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	r := workload.NewRNG(5)
	for i := 0; i < 20000; i++ {
		if r.Intn(3) == 0 {
			k := pairs[r.Intn(len(pairs))].Key
			tr.Delete(k)
			delete(oracle, k)
		} else {
			k := r.Uint32()
			if k == keys.Max[uint32]() {
				continue
			}
			if _, err := tr.Insert(k, k+1); err != nil {
				t.Fatal(err)
			}
			oracle[k] = k + 1
		}
	}
	if tr.NumPairs() != len(oracle) {
		t.Fatalf("NumPairs %d != oracle %d", tr.NumPairs(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := tr.Lookup(k); !ok || got != v {
			t.Fatalf("Lookup(%d) = (%d,%v), want %d", k, got, ok, v)
		}
	}
}

// TestImplicitInstrumentedLineCount: the instrumented lookup touches
// exactly LinesPerQuery lines per query — the invariant connecting the
// functional simulation to the cost model.
func TestImplicitInstrumentedLineCount(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 9)
	tr, err := BuildImplicit(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	counter := &countToucher{}
	qs := workload.SearchInput(pairs, 1000, 3)
	for _, q := range qs {
		tr.LookupInstrumented(q, counter)
	}
	want := int64(len(qs) * tr.Stats().LinesPerQuery)
	if counter.n != want {
		t.Fatalf("touched %d lines, want %d", counter.n, want)
	}
}

// TestRegularInstrumentedLineCount: 3 lines per upper node, 2 at the
// last level, 1 leaf line = 3H lines per query.
func TestRegularInstrumentedLineCount(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 200000, 9)
	tr, err := BuildRegular(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	counter := &countToucher{}
	qs := workload.SearchInput(pairs, 1000, 3)
	for _, q := range qs {
		tr.LookupInstrumented(q, counter)
	}
	want := int64(len(qs) * tr.Stats().LinesPerQuery)
	if counter.n != want {
		t.Fatalf("touched %d lines, want %d", counter.n, want)
	}
}

type countToucher struct{ n int64 }

func (c *countToucher) Touch(int64, mem.PageKind) { c.n++ }
