package cpubtree

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hbtree/internal/keys"
	"hbtree/internal/simd"
)

// Op is one entry of a batch-update workload: an insert/overwrite of
// (Key, Value) or a delete of Key.
type Op[K keys.Key] struct {
	Key    K
	Value  K
	Delete bool
}

// ErrSentinelKey is returned when a caller tries to store the reserved
// MAX key.
var ErrSentinelKey = fmt.Errorf("cpubtree: key MAX is reserved as sentinel")

// Insert stores (k, v), overwriting the value if k already exists. It
// reports whether the operation changed the tree structure (a leaf or
// inner-node split), which the HB+-tree uses to decide how much of the
// I-segment must be re-synchronised to the GPU.
func (t *RegularTree[K]) Insert(k, v K) (structural bool, err error) {
	t.ensurePrivate()
	if k == keys.Max[K]() {
		return false, ErrSentinelKey
	}
	b, _ := t.SearchToLeaf(k)
	had := t.contains(b, k)
	if t.leafInsert(b, k, v) {
		if !had {
			t.numPairs++
		}
		return false, nil
	}
	// Leaf full: split, then insert into the correct half.
	nb := t.splitLeaf(b)
	if k > t.leafMaxKey(b) {
		b = nb
	}
	if !t.leafInsert(b, k, v) {
		panic("cpubtree: insert failed after leaf split")
	}
	t.numPairs++
	return true, nil
}

// Delete removes k. It reports whether the key was found and whether the
// removal changed the tree structure (an emptied leaf was unlinked).
func (t *RegularTree[K]) Delete(k K) (found, structural bool) {
	t.ensurePrivate()
	b, c := t.SearchToLeaf(k)
	found, emptied := t.leafDelete(b, c, k)
	if !found {
		return false, false
	}
	t.numPairs--
	if emptied {
		t.removeLeaf(b)
		return true, true
	}
	return true, false
}

// leafMaxKey returns the largest stored key of big leaf b (the leaf must
// be non-empty).
func (t *RegularTree[K]) leafMaxKey(b int32) K {
	np := int(t.leafMeta[b].npairs)
	return t.leafPairs(b)[2*(np-1)]
}

// leafInsert inserts (k, v) into big leaf b, shifting the packed tail.
// It reports false when the leaf is full (a split is required); an
// overwrite of an existing key always succeeds.
func (t *RegularTree[K]) leafInsert(b int32, k, v K) bool {
	data := t.leafPairs(b)
	np := int(t.leafMeta[b].npairs)
	pos := sort.Search(np, func(i int) bool { return data[2*i] >= k })
	if pos < np && data[2*pos] == k {
		data[2*pos+1] = v
		return true
	}
	if np == t.leafCap {
		return false
	}
	copy(data[2*(pos+1):2*(np+1)], data[2*pos:2*np])
	data[2*pos] = k
	data[2*pos+1] = v
	t.leafMeta[b].npairs = int32(np + 1)
	t.refreshLastKeys(b)
	return true
}

// leafDelete removes k from big leaf b (the lookup already located leaf
// line c). It reports whether k was present and whether the leaf became
// empty.
func (t *RegularTree[K]) leafDelete(b int32, c int, k K) (found, emptied bool) {
	line := t.leafLine(b, c)
	i, ok := simd.SearchPairsLine(line, k)
	if !ok {
		return false, false
	}
	pos := c*t.ppl + i
	data := t.leafPairs(b)
	np := int(t.leafMeta[b].npairs)
	copy(data[2*pos:2*(np-1)], data[2*(pos+1):2*np])
	data[2*(np-1)] = keys.Max[K]()
	data[2*(np-1)+1] = 0
	np--
	t.leafMeta[b].npairs = int32(np)
	if np == 0 {
		return true, true
	}
	t.refreshLastKeys(b)
	return true, false
}

// splitLeaf splits big leaf b, moving the upper half of its pairs into a
// fresh leaf that is linked after b and registered with b's parent. It
// returns the new leaf's index.
func (t *RegularTree[K]) splitLeaf(b int32) int32 {
	nb := t.allocLast()
	np := int(t.leafMeta[b].npairs)
	lo := np / 2
	src := t.leafPairs(b)
	dst := t.leafPairs(nb)
	copy(dst, src[2*lo:2*np])
	maxK := keys.Max[K]()
	for i := lo; i < np; i++ {
		src[2*i] = maxK
		src[2*i+1] = 0
	}
	t.leafMeta[b].npairs = int32(lo)
	t.leafMeta[nb].npairs = int32(np - lo)

	// Sibling chain.
	nxt := t.leafMeta[b].next
	t.leafMeta[nb].next = nxt
	t.leafMeta[nb].prev = b
	t.leafMeta[b].next = nb
	if nxt != nilRef {
		t.leafMeta[nxt].prev = nb
	} else {
		t.tailLeaf = nb
	}

	t.refreshLastKeys(b)
	t.refreshLastKeys(nb)
	t.insertIntoParent(b, nb, t.leafMaxKey(b), true)
	return nb
}

// setParent updates the parent pointer of a child living in the last or
// upper pool.
func (t *RegularTree[K]) setParent(child int32, childInLast bool, p int32) {
	if childInLast {
		t.lastMeta[child].parent = p
	} else {
		t.upperMeta[child].parent = p
	}
}

func (t *RegularTree[K]) parentOf(child int32, childInLast bool) int32 {
	if childInLast {
		return t.lastMeta[child].parent
	}
	return t.upperMeta[child].parent
}

// childPos finds the position of child within upper node u by scanning
// its reference slots (at most F_I entries, three cache lines' worth).
func (t *RegularTree[K]) childPos(u, child int32) int {
	rs := t.nodeRefs(t.upper, u)
	n := int(t.upperMeta[u].nchild)
	for j := 0; j < n; j++ {
		if int32(rs[j]) == child {
			return j
		}
	}
	panic("cpubtree: child not found in parent")
}

// insertIntoParent registers right as the new sibling following left
// after a split. leftMax is left's new subtree maximum; right inherits
// left's old separator. childInLast says which pool the siblings live in.
func (t *RegularTree[K]) insertIntoParent(left, right int32, leftMax K, childInLast bool) {
	p := t.parentOf(left, childInLast)
	if p == nilRef {
		// left was the root: grow the tree by one level.
		nr := t.allocUpper()
		ks := t.nodeKeys(t.upper, nr)
		rs := t.nodeRefs(t.upper, nr)
		ks[0] = leftMax
		rs[0] = K(left)
		rs[1] = K(right)
		t.upperMeta[nr].nchild = 2
		t.refreshIndexLine(t.upper, nr)
		t.setParent(left, childInLast, nr)
		t.setParent(right, childInLast, nr)
		t.root = nr
		t.height++
		return
	}
	if int(t.upperMeta[p].nchild) == t.fanout {
		t.splitUpper(p, childInLast)
		p = t.parentOf(left, childInLast) // may have moved to the new half
	}
	n := int(t.upperMeta[p].nchild)
	pos := t.childPos(p, left)
	ks := t.nodeKeys(t.upper, p)
	rs := t.nodeRefs(t.upper, p)
	// Shift separators (slots 0..n-2 are real; slot n-1 is the MAX
	// catch-all that now becomes a real separator slot) and references.
	for j := n - 1; j > pos; j-- {
		ks[j] = ks[j-1]
	}
	ks[pos] = leftMax
	for j := n; j > pos+1; j-- {
		rs[j] = rs[j-1]
	}
	rs[pos+1] = K(right)
	t.upperMeta[p].nchild = int32(n + 1)
	t.refreshIndexLine(t.upper, p)
	t.setParent(right, childInLast, p)
}

// splitUpper splits a full upper node, moving its upper half of children
// into a fresh node. grandchildrenInLast says which pool u's children
// live in (needed to fix their parent pointers).
func (t *RegularTree[K]) splitUpper(u int32, grandchildrenInLast bool) {
	n := int(t.upperMeta[u].nchild)
	lo := n / 2
	nu := t.allocUpper()
	ks := t.nodeKeys(t.upper, u)
	rs := t.nodeRefs(t.upper, u)
	nks := t.nodeKeys(t.upper, nu)
	nrs := t.nodeRefs(t.upper, nu)

	// u keeps children 0..lo-1; its new last-child slot (lo-1) becomes
	// the MAX catch-all and the displaced separator becomes u's subtree
	// maximum reported to the parent.
	leftMax := ks[lo-1]
	maxK := keys.Max[K]()
	copy(nks[:n-lo], ks[lo:n]) // separators lo..n-2 plus the old MAX slot
	copy(nrs[:n-lo], rs[lo:n])
	for j := lo - 1; j < n; j++ {
		ks[j] = maxK
	}
	for j := lo; j < n; j++ {
		rs[j] = 0
	}
	t.upperMeta[u].nchild = int32(lo)
	t.upperMeta[nu].nchild = int32(n - lo)
	for j := 0; j < n-lo; j++ {
		t.setParent(int32(nrs[j]), grandchildrenInLast, nu)
	}
	t.refreshIndexLine(t.upper, u)
	t.refreshIndexLine(t.upper, nu)
	t.insertIntoParent(u, nu, leftMax, false)
}

// removeLeaf unlinks an emptied big leaf from the sibling chain and its
// parent, freeing the paired last-level node. The final leaf of the tree
// is never removed so that lookups always have a valid root path.
func (t *RegularTree[K]) removeLeaf(b int32) {
	p := t.lastMeta[b].parent
	if p == nilRef {
		// b's node is the root (height 1): keep the empty leaf.
		t.refreshLastKeys(b)
		return
	}
	prev, next := t.leafMeta[b].prev, t.leafMeta[b].next
	if prev != nilRef {
		t.leafMeta[prev].next = next
	} else {
		t.headLeaf = next
	}
	if next != nilRef {
		t.leafMeta[next].prev = prev
	} else {
		t.tailLeaf = prev
	}
	t.freeLast = append(t.freeLast, b)
	t.removeChild(p, b, true)
}

// removeChild deletes child from upper node u, cascading upwards when u
// empties and collapsing the root when it has a single child left.
func (t *RegularTree[K]) removeChild(u, child int32, childInLast bool) {
	n := int(t.upperMeta[u].nchild)
	pos := t.childPos(u, child)
	ks := t.nodeKeys(t.upper, u)
	rs := t.nodeRefs(t.upper, u)
	// Drop separator pos (the boundary after the removed child) and the
	// child's reference; the MAX catch-all moves down one slot.
	for j := pos; j < n-2; j++ {
		ks[j] = ks[j+1]
	}
	if n >= 2 {
		ks[n-2] = keys.Max[K]()
	}
	for j := pos; j < n-1; j++ {
		rs[j] = rs[j+1]
	}
	rs[n-1] = 0
	n--
	t.upperMeta[u].nchild = int32(n)
	t.refreshIndexLine(t.upper, u)

	if n == 0 {
		p := t.upperMeta[u].parent
		t.freeUpper = append(t.freeUpper, u)
		if p != nilRef {
			t.removeChild(p, u, false)
		}
		return
	}
	if u == t.root && n == 1 && t.height >= 2 {
		// Collapse the root.
		c := int32(rs[0])
		t.root = c
		t.height--
		t.setParent(c, t.height == 1, nilRef)
		t.freeUpper = append(t.freeUpper, u)
	}
}

// BatchResult summarises one batch-update execution for the HB+-tree's
// I-segment synchronisation logic (Section 5.6).
type BatchResult struct {
	Applied      int     // operations applied
	NotFound     int     // deletes whose key was absent
	Structural   int     // operations that required splits/merges
	DirtyLast    []int32 // last-level nodes modified in place
	UpperChanged bool    // upper levels changed (structural phase ran)
}

// updateGroupSize is the group granularity of the asynchronous parallel
// update method ("processed in groups of size 16K", Section 5.6).
const updateGroupSize = 16 * 1024

// lockStripes is the size of the striped lock table guarding last-level
// inner nodes during parallel updates.
const lockStripes = 256

// ApplyBatchParallel executes a batch of update operations with the
// paper's asynchronous parallel method (Section 5.6): worker threads
// resolve each query down to its last-level inner node, take that node's
// lock and apply the modification when no split or merge is needed; the
// remaining structural queries are executed afterwards by a single
// thread. The result lists every modified last-level node so the caller
// can re-synchronise the GPU replica.
func (t *RegularTree[K]) ApplyBatchParallel(ops []Op[K], threads int) BatchResult {
	t.ensurePrivate()
	if threads <= 0 {
		threads = t.cfg.Threads
	}
	var res BatchResult
	dirty := make(map[int32]struct{})
	for start := 0; start < len(ops); start += updateGroupSize {
		end := start + updateGroupSize
		if end > len(ops) {
			end = len(ops)
		}
		t.applyGroup(ops[start:end], threads, &res, dirty)
	}
	res.DirtyLast = make([]int32, 0, len(dirty))
	for b := range dirty {
		res.DirtyLast = append(res.DirtyLast, b)
	}
	sort.Slice(res.DirtyLast, func(i, j int) bool { return res.DirtyLast[i] < res.DirtyLast[j] })
	return res
}

func (t *RegularTree[K]) applyGroup(ops []Op[K], threads int, res *BatchResult, dirty map[int32]struct{}) {
	var locks [lockStripes]sync.Mutex
	var cursor atomic.Int64
	var pending []Op[K] // structural leftovers
	var pendingMu sync.Mutex
	workerDirty := make([][]int32, threads)
	var np atomic.Int64 // numPairs delta from the parallel phase
	var notFound atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if int(i) >= len(ops) {
					return
				}
				op := ops[i]
				// Descend the (immutable, this phase) upper levels.
				b := t.descendUpper(op.Key)
				lk := &locks[int(b)&(lockStripes-1)]
				lk.Lock()
				switch {
				case op.Delete:
					c := t.searchNode(t.last, b, op.Key)
					found, emptied := t.leafDelete(b, c, op.Key)
					switch {
					case !found:
						notFound.Add(1)
					case emptied:
						// Leaf would empty: undo is unnecessary (the
						// leaf is already empty) but unlinking is
						// structural; defer it.
						np.Add(-1)
						workerDirty[w] = append(workerDirty[w], b)
						pendingMu.Lock()
						pending = append(pending, Op[K]{Key: op.Key, Delete: true, Value: K(b)})
						pendingMu.Unlock()
					default:
						np.Add(-1)
						workerDirty[w] = append(workerDirty[w], b)
					}
				default:
					had := t.contains(b, op.Key)
					if t.leafInsert(b, op.Key, op.Value) {
						if !had {
							np.Add(1)
						}
						workerDirty[w] = append(workerDirty[w], b)
					} else {
						// Full leaf: split needed, defer to the
						// single-threaded structural phase.
						pendingMu.Lock()
						pending = append(pending, op)
						pendingMu.Unlock()
					}
				}
				lk.Unlock()
			}
		}(w)
	}
	wg.Wait()

	t.numPairs += int(np.Load())
	res.NotFound += int(notFound.Load())
	res.Applied += len(ops) - len(pending) - int(notFound.Load())
	for _, d := range workerDirty {
		for _, b := range d {
			dirty[b] = struct{}{}
		}
	}

	// Structural phase: single-threaded, as in the paper ("the remaining
	// unresolved queries are processed subsequently using a single
	// thread").
	freed := make(map[int32]struct{})
	for _, op := range pending {
		if op.Delete {
			// The pair itself was already removed in the parallel
			// phase; unlink the emptied leaf unless a concurrent
			// insert refilled it or another delete already freed it.
			b := int32(op.Value)
			res.Applied++
			if _, done := freed[b]; done || t.leafMeta[b].npairs != 0 {
				continue
			}
			freed[b] = struct{}{}
			t.removeLeaf(b)
			res.Structural++
			res.UpperChanged = true
			continue
		}
		structural, err := t.Insert(op.Key, op.Value)
		if err != nil {
			continue
		}
		res.Applied++
		if structural {
			res.Structural++
			res.UpperChanged = true
		}
	}
}

// descendUpper walks the upper levels only, returning the last-level
// node for q. Upper nodes are immutable during the parallel phase, so
// this needs no locks.
func (t *RegularTree[K]) descendUpper(q K) int32 {
	idx := t.root
	for h := t.height; h >= 2; h-- {
		c := t.searchNode(t.upper, idx, q)
		idx = int32(t.nodeRefs(t.upper, idx)[c])
	}
	return idx
}

// contains reports whether big leaf b currently stores k.
func (t *RegularTree[K]) contains(b int32, k K) bool {
	data := t.leafPairs(b)
	np := int(t.leafMeta[b].npairs)
	pos := sort.Search(np, func(i int) bool { return data[2*i] >= k })
	return pos < np && data[2*pos] == k
}

// ApplyBatchSequential executes a batch with a single thread, the
// baseline of Figure 13(a).
func (t *RegularTree[K]) ApplyBatchSequential(ops []Op[K]) BatchResult {
	t.ensurePrivate()
	var res BatchResult
	dirty := make(map[int32]struct{})
	for _, op := range ops {
		if op.Delete {
			b := t.descendUpper(op.Key)
			found, structural := t.Delete(op.Key)
			if !found {
				res.NotFound++
				continue
			}
			res.Applied++
			if structural {
				res.Structural++
				res.UpperChanged = true
			} else {
				dirty[b] = struct{}{}
			}
			continue
		}
		b := t.descendUpper(op.Key)
		structural, err := t.Insert(op.Key, op.Value)
		if err != nil {
			continue
		}
		res.Applied++
		if structural {
			res.Structural++
			res.UpperChanged = true
		} else {
			dirty[b] = struct{}{}
		}
	}
	for b := range dirty {
		res.DirtyLast = append(res.DirtyLast, b)
	}
	sort.Slice(res.DirtyLast, func(i, j int) bool { return res.DirtyLast[i] < res.DirtyLast[j] })
	return res
}
