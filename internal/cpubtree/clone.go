package cpubtree

import "hbtree/internal/keys"

// Snapshot cloning for the serving layer's RCU-style reader/writer
// split: a batch update clones the current tree, mutates the clone, and
// publishes it atomically, so in-flight readers keep traversing the old
// version untouched. Clones deep-copy every mutable pool; the Config
// (including the simulated address-space allocator) and the segment
// descriptors are shared, since a snapshot is a logical sibling of the
// same index, not a second index.

// Clone returns a deep copy of the tree. The copy shares no mutable
// state with the original: updates applied to one are invisible to the
// other.
func (t *ImplicitTree[K]) Clone() *ImplicitTree[K] {
	c := *t
	c.levelNodes = append([]int(nil), t.levelNodes...)
	c.levelOff = append([]int(nil), t.levelOff...)
	c.inner = append([]K(nil), t.inner...)
	c.leaves = append([]K(nil), t.leaves...)
	return &c
}

// Clone returns a deep copy of the tree. The copy shares no mutable
// state with the original: updates applied to one are invisible to the
// other. Cloning a tree that carries gapped delta entries (delta.go)
// compacts them into the base pairs, so a clone is always a plain
// packed tree ready for structural mutation — this is the
// clone-fallback entry point of the in-place update path.
func (t *RegularTree[K]) Clone() *RegularTree[K] {
	c := *t
	c.upper = append([]K(nil), t.upper...)
	c.upperMeta = append([]nodeMeta(nil), t.upperMeta...)
	c.last = append([]K(nil), t.last...)
	c.lastMeta = append([]nodeMeta(nil), t.lastMeta...)
	c.leafData = append([]K(nil), t.leafData...)
	c.leafMeta = append([]leafMeta(nil), t.leafMeta...)
	c.freeLast = append([]int32(nil), t.freeLast...)
	c.freeUpper = append([]int32(nil), t.freeUpper...)
	c.sharedPools = false
	c.compactDeltas()
	return &c
}

// CloneFootprint reports what one Clone() of this tree copies: the
// pooled node count (upper + last-level/leaf pairs) and the total bytes
// of the copied pools — the clone-on-write amplification the in-place
// delta path avoids.
func (t *RegularTree[K]) CloneFootprint() (nodes int, bytes int64) {
	sz := int64(keys.Size[K]())
	nodes = len(t.upperMeta) + len(t.lastMeta)
	bytes = (int64(len(t.upper)) + int64(len(t.last)) + int64(len(t.leafData))) * sz
	bytes += int64(len(t.upperMeta))*8 + int64(len(t.lastMeta))*8 + int64(len(t.leafMeta))*28
	bytes += (int64(len(t.freeLast)) + int64(len(t.freeUpper))) * 4
	return nodes, bytes
}
