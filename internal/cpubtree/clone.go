package cpubtree

// Snapshot cloning for the serving layer's RCU-style reader/writer
// split: a batch update clones the current tree, mutates the clone, and
// publishes it atomically, so in-flight readers keep traversing the old
// version untouched. Clones deep-copy every mutable pool; the Config
// (including the simulated address-space allocator) and the segment
// descriptors are shared, since a snapshot is a logical sibling of the
// same index, not a second index.

// Clone returns a deep copy of the tree. The copy shares no mutable
// state with the original: updates applied to one are invisible to the
// other.
func (t *ImplicitTree[K]) Clone() *ImplicitTree[K] {
	c := *t
	c.levelNodes = append([]int(nil), t.levelNodes...)
	c.levelOff = append([]int(nil), t.levelOff...)
	c.inner = append([]K(nil), t.inner...)
	c.leaves = append([]K(nil), t.leaves...)
	return &c
}

// Clone returns a deep copy of the tree. The copy shares no mutable
// state with the original: updates applied to one are invisible to the
// other.
func (t *RegularTree[K]) Clone() *RegularTree[K] {
	c := *t
	c.upper = append([]K(nil), t.upper...)
	c.upperMeta = append([]nodeMeta(nil), t.upperMeta...)
	c.last = append([]K(nil), t.last...)
	c.lastMeta = append([]nodeMeta(nil), t.lastMeta...)
	c.leafData = append([]K(nil), t.leafData...)
	c.leafMeta = append([]leafMeta(nil), t.leafMeta...)
	c.freeLast = append([]int32(nil), t.freeLast...)
	c.freeUpper = append([]int32(nil), t.freeUpper...)
	return &c
}
