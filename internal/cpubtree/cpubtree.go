// Package cpubtree implements the paper's CPU-optimized B+-trees
// (Section 4): the implicit (pointer-free, breadth-first array) variant
// and the regular (pointered) variant, both in 64-bit and 32-bit key
// versions via generics.
//
// The three optimisations of Section 4 are all present:
//
//  1. SIMD-enabled node search (internal/simd) with the sequential,
//     linear and hierarchical kernels of Figure 3;
//  2. cache blocking — every node is built from 64-byte lines, the
//     regular tree's inner nodes carry an index line so a node search
//     touches 3 lines instead of 17, and leaves are packed into big
//     256-entry nodes for range-query locality;
//  3. huge-page awareness — the I-segment and L-segment are allocated
//     from the simulated memory subsystem (internal/mem) with
//     configurable page kinds, reproducing the three configurations of
//     Figure 7.
//
// Batch lookups apply software pipelining (Algorithm 2) with a
// configurable pipeline depth (16 is the paper's optimum) and fan out
// across goroutines, standing in for the OpenMP thread pool.
package cpubtree

import (
	"runtime"
	"sync"

	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/simd"
)

// DefaultPipelineDepth is the software-pipeline length that performed
// best in the paper's experiments (Section 4.2).
const DefaultPipelineDepth = 16

// Config controls tree construction.
type Config struct {
	// Fanout overrides the inner-node fanout of the implicit tree:
	// keys-per-line+1 (9 or 17) for the CPU-optimized tree,
	// keys-per-line (8 or 16) for the HB+-tree I-segment whose last key
	// is pinned to MAX (Section 5.2). Zero selects the CPU-optimized
	// default. The regular tree ignores it (its fanout is fixed by the
	// node geometry).
	Fanout int

	// RootWidths widens the top levels of the implicit tree, root first:
	// entry l is the key-slot width (and fanout) of level l, which must
	// be a multiple of the keys-per-line count (a wide node spans several
	// cache lines) and at most 64 slots; zero entries and levels past the
	// slice keep the base Fanout geometry. The policy is stored, not the
	// concrete heights, so Rebuild re-derives a valid layout at any data
	// size. The regular tree ignores it.
	RootWidths []int

	// NodeSearch selects the in-node search kernel.
	NodeSearch simd.Algorithm

	// PipelineDepth is the software-pipeline length for batch lookups;
	// zero selects DefaultPipelineDepth, negative disables pipelining.
	PipelineDepth int

	// Threads is the number of worker goroutines for batch operations;
	// zero selects GOMAXPROCS.
	Threads int

	// ISegPages / LSegPages choose the page kind backing each segment
	// (the three configurations of Figure 7). The default (zero values)
	// is 4 KiB pages for both.
	ISegPages mem.PageKind
	LSegPages mem.PageKind

	// Alloc is the simulated address-space allocator; nil allocates a
	// private one.
	Alloc *mem.Allocator

	// LeafFill is the bulk-load fill factor of the regular tree's big
	// leaves in (0, 1]; zero selects 1.0 (full, the paper's assumption
	// for the search experiments). Update-heavy experiments use lower
	// values to leave slack.
	LeafFill float64
}

func (c *Config) fillDefaults() {
	if c.PipelineDepth == 0 {
		c.PipelineDepth = DefaultPipelineDepth
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Alloc == nil {
		c.Alloc = mem.NewAllocator()
	}
	if c.LeafFill <= 0 || c.LeafFill > 1 {
		c.LeafFill = 1.0
	}
}

// Stats summarises a tree's geometry for the cost model and the space
// equations of the paper (Equation 1).
type Stats struct {
	NumPairs   int
	Height     int   // H: height of root, leaves at height 0
	InnerBytes int64 // I_space
	LeafBytes  int64 // L_space
	// LinesPerQuery is the number of cache-line touches of one point
	// lookup: H+1 for the implicit tree, 3H for the regular tree
	// (Section 4.1).
	LinesPerQuery int
}

// runsInline reports whether a batch of n items executes on the calling
// goroutine (too small to be worth fanning out). Callers on the serving
// fast path test this before constructing the parallelFor closure, so
// small batches stay allocation-free.
func runsInline(n, workers int) bool {
	return workers <= 1 || n < 2*1024
}

// parallelFor splits n items across workers goroutines, invoking
// fn(start, end) per contiguous chunk.
func parallelFor(n, workers int, fn func(start, end int)) {
	if runsInline(n, workers) {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		if start >= n {
			break
		}
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// maxKeyOf returns the largest real key of a run of pairs, or MAX when
// the run is empty.
func maxKeyOf[K keys.Key](pairs []keys.Pair[K]) K {
	if len(pairs) == 0 {
		return keys.Max[K]()
	}
	return pairs[len(pairs)-1].Key
}
