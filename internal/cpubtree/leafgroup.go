package cpubtree

import (
	"hbtree/internal/keys"
)

// This file supports the GPU-assisted update path (the paper's first
// future-work direction, Section 7: "this could be further improved by
// employing GPU cycles in support of parallel update query execution").
// The GPU pre-resolves each update's target big leaf by running the
// regular search kernel over the I-segment replica; the CPU then applies
// each leaf's operations as a group, skipping the inner-node descent
// entirely. ApplyOpsToLeaf is that group application: it handles splits
// locally by tracking the separators that partition the original leaf's
// key range.

// ApplyOpsToLeaf applies a key-sorted group of operations that all
// target big leaf b (as resolved against the pre-update tree). Splits
// triggered inside the group are handled locally: the group's keys can
// only fall into b or the leaves split off from b's range.
func (t *RegularTree[K]) ApplyOpsToLeaf(b int32, ops []Op[K]) BatchResult {
	t.ensurePrivate()
	var res BatchResult
	maxK := keys.Max[K]()

	// The leaves carved from b's original range, each with the
	// separator bounding it from above (fixed at split time; MAX for
	// the rightmost). Ascending by range.
	type carve struct {
		leaf int32
		sep  K // keys <= sep belong to this leaf
	}
	carves := []carve{{leaf: b, sep: maxK}}
	dirty := make(map[int32]struct{})

	target := func(k K) int {
		for i, c := range carves {
			if k <= c.sep {
				return i
			}
		}
		return len(carves) - 1
	}

	for _, op := range ops {
		if op.Key == maxK {
			continue
		}
		ci := target(op.Key)
		lf := carves[ci].leaf
		if lf == nilRef {
			// The carve's leaf was emptied and unlinked earlier in this
			// group; the tree has rerouted its range to a neighbour
			// outside the group's carve set, so resolve by descent.
			lf = t.descendUpper(op.Key)
			carves[ci].leaf = lf
		}
		if op.Delete {
			c := t.searchNode(t.last, lf, op.Key)
			found, emptied := t.leafDelete(lf, c, op.Key)
			if !found {
				res.NotFound++
				continue
			}
			t.numPairs--
			res.Applied++
			if emptied {
				rootLeaf := t.lastMeta[lf].parent == nilRef
				t.removeLeaf(lf)
				res.Structural++
				res.UpperChanged = true
				delete(dirty, lf)
				switch {
				case len(carves) > 1 && ci < len(carves)-1:
					// Fold into the next carve: removeChild reroutes the
					// dead range to the next sibling, which is exactly
					// the adjacent carve split off from the same leaf.
					carves = append(carves[:ci], carves[ci+1:]...)
				case len(carves) > 1:
					// Rightmost carve: the range reroutes to the
					// previous sibling (the last-child slot becomes the
					// MAX catch-all).
					carves[ci-1].sep = carves[ci].sep
					carves = carves[:ci]
				case rootLeaf:
					// removeLeaf keeps the root's only leaf (emptied in
					// place); later keys still belong to it.
					carves[0].leaf = lf
				default:
					// The group's only leaf was unlinked and freed; the
					// tree rerouted its range to a neighbour outside the
					// carve set. Invalidate so later ops re-descend.
					carves[0].leaf = nilRef
				}
			} else {
				dirty[lf] = struct{}{}
			}
			continue
		}

		had := t.contains(lf, op.Key)
		if t.leafInsert(lf, op.Key, op.Value) {
			if !had {
				t.numPairs++
			}
			res.Applied++
			dirty[lf] = struct{}{}
			continue
		}
		// Full: split locally and retry in the correct half.
		nb := t.splitLeaf(lf)
		splitKey := t.leafMaxKey(lf)
		upper := carves[ci].sep
		carves[ci].sep = splitKey
		rest := append([]carve{}, carves[ci+1:]...)
		carves = append(append(carves[:ci+1], carve{leaf: nb, sep: upper}), rest...)
		res.Structural++
		res.UpperChanged = true
		if op.Key > splitKey {
			lf = nb
		}
		if !t.leafInsert(lf, op.Key, op.Value) {
			panic("cpubtree: insert failed after local split")
		}
		t.numPairs++
		res.Applied++
		dirty[lf] = struct{}{}
	}

	for lf := range dirty {
		res.DirtyLast = append(res.DirtyLast, lf)
	}
	return res
}
