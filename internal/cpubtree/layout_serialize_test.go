package cpubtree

import (
	"bytes"
	"testing"

	"hbtree/internal/workload"
)

// TestTunedImplicitRoundTrip: a tuned-layout implicit tree survives
// WriteTo/ReadImplicit with its full per-level geometry — widths,
// fanouts, slot offsets — and the RootWidths policy, so a Rebuild of
// the loaded tree re-derives a tuned layout instead of silently going
// uniform. Re-serialising the loaded tree must reproduce the image
// byte for byte.
func TestTunedImplicitRoundTrip(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 60000, 42)
	tr, err := BuildImplicit(pairs, Config{Fanout: 8, RootWidths: []int{16, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.UniformLayout() {
		t.Fatal("RootWidths produced a uniform tree; test is vacuous")
	}
	var buf bytes.Buffer
	written, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
	}
	image := append([]byte(nil), buf.Bytes()...)

	// The base fanout is caller policy (core.Load passes it down from
	// Options); only the per-level width table travels in the image.
	rt, err := ReadImplicit[uint64](&buf, Config{Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rt.UniformLayout() {
		t.Fatal("loaded tree lost its tuned layout")
	}
	if rt.Height() != tr.Height() || rt.Stats() != tr.Stats() {
		t.Fatalf("geometry diverges: %+v vs %+v", rt.Stats(), tr.Stats())
	}
	wg, rg := tr.LevelGeometry(), rt.LevelGeometry()
	if len(wg) != len(rg) {
		t.Fatalf("level count diverges: %d vs %d", len(wg), len(rg))
	}
	for d := range wg {
		if wg[d] != rg[d] {
			t.Fatalf("level %d geometry diverges: %+v vs %+v", d, wg[d], rg[d])
		}
	}
	// The reconstructed RootWidths policy must rebuild the same shape.
	reb, err := BuildImplicit(pairs, rt.Config())
	if err != nil {
		t.Fatal(err)
	}
	if reb.Height() != tr.Height() {
		t.Fatalf("rebuild from loaded config got height %d, want %d", reb.Height(), tr.Height())
	}
	for d, g := range reb.LevelGeometry() {
		if g != wg[d] {
			t.Fatalf("rebuild level %d geometry %+v, want %+v", d, g, wg[d])
		}
	}

	// Lookups and inner search agree with the original.
	for i := 0; i < len(pairs); i += 1 + len(pairs)/500 {
		p := pairs[i]
		if v, ok := rt.Lookup(p.Key); !ok || v != p.Value {
			t.Fatalf("loaded tuned tree Lookup(%d) failed", p.Key)
		}
		if rt.SearchInner(p.Key) != tr.SearchInner(p.Key) {
			t.Fatalf("loaded tuned tree SearchInner(%d) diverges", p.Key)
		}
	}

	// Round-tripping is idempotent at the byte level.
	var buf2 bytes.Buffer
	if _, err := rt.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(image, buf2.Bytes()) {
		t.Fatal("re-serialised tuned image differs from the original")
	}
}

// TestUniformImageHasNoLayoutTable: a uniform tree must keep the
// historical serialised format — no sentinel, no per-level table — so
// images written before the layout engine and after it are
// byte-compatible in both directions. The tuned image for the same
// data is necessarily longer (it carries the geometry table).
func TestUniformImageHasNoLayoutTable(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 20000, 7)
	uni, err := BuildImplicit(pairs, Config{Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	// RootWidths of all zeros is the base geometry: still uniform, and
	// the image must be identical to the plain build's.
	zeros, err := BuildImplicit(pairs, Config{Fanout: 8, RootWidths: []int{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	var ub, zb bytes.Buffer
	if _, err := uni.WriteTo(&ub); err != nil {
		t.Fatal(err)
	}
	if _, err := zeros.WriteTo(&zb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ub.Bytes(), zb.Bytes()) {
		t.Fatal("zero RootWidths changed the uniform serialised image")
	}
	rt, err := ReadImplicit[uint64](bytes.NewReader(ub.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rt.UniformLayout() || rt.Config().RootWidths != nil {
		t.Fatalf("uniform image loaded as tuned: widths %v", rt.Config().RootWidths)
	}
}
