package cpubtree

import (
	"sync"
	"sync/atomic"

	"hbtree/internal/keys"
	"hbtree/internal/simd"
)

// This file implements batch lookups with software pipelining
// (Section 4.2, Algorithm 2). Each worker thread loads a group of P
// queries and advances all of them one tree level at a time: when a
// query's next node would stall on memory, the thread is already issuing
// the accesses of the other P-1 queries, overlapping computation with
// data fetching exactly as the paper's prefetch-enabled loop does. The
// paper found P = 16 optimal; Figure 20 sweeps it.

// LookupBatch resolves queries[i] into values[i]/found[i] using all
// configured worker threads and the configured software-pipeline depth.
func (t *ImplicitTree[K]) LookupBatch(queries []K, values []K, found []bool) {
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		t.lookupPipelined(queries[s:e], values[s:e], found[s:e])
	})
}

// lookupPipelined is the single-thread software-pipelined lookup loop.
func (t *ImplicitTree[K]) lookupPipelined(qs []K, vals []K, fnd []bool) {
	p := t.cfg.PipelineDepth
	if p <= 1 {
		for i, q := range qs {
			vals[i], fnd[i] = t.Lookup(q)
		}
		return
	}
	node := make([]int, p)
	for start := 0; start < len(qs); start += p {
		end := start + p
		if end > len(qs) {
			end = len(qs)
		}
		grp := qs[start:end]
		n := len(grp)
		for i := 0; i < n; i++ {
			node[i] = 0
		}
		// Advance the whole group one level per step (Algorithm 2); in
		// hardware the next node line is prefetched while the other
		// group members are processed.
		for d := 0; d < t.height; d++ {
			f := t.levelFanout[d]
			for i := 0; i < n; i++ {
				j := simd.Search(t.cfg.NodeSearch, t.node(d, node[i]), grp[i])
				node[i] = node[i]*f + j
			}
		}
		for i := 0; i < n; i++ {
			l := node[i]
			if l >= t.numLeaves {
				l = t.numLeaves - 1
			}
			vals[start+i], fnd[start+i] = t.SearchLeafLine(l, grp[i])
		}
	}
}

// SearchInnerBatch resolves the inner-level traversal for a batch of
// queries, writing the target leaf line index per query. This is the
// work the HB+-tree runs on the GPU; the CPU-only evaluation of
// Figure 19 runs it here.
func (t *ImplicitTree[K]) SearchInnerBatch(queries []K, lines []int32) {
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		for i := s; i < e; i++ {
			lines[i] = int32(t.SearchInner(queries[i]))
		}
	})
}

// SearchLeavesBatch finishes lookups whose inner traversal already
// produced leaf line indices — the CPU stage of the hybrid search
// (Section 5.4, step 4). It is software-pipelined over the L-segment.
func (t *ImplicitTree[K]) SearchLeavesBatch(queries []K, lines []int32, values []K, found []bool) {
	// Small batches run inline without constructing the fan-out closure,
	// keeping the steady-state serving pipeline allocation-free.
	if runsInline(len(queries), t.cfg.Threads) {
		t.searchLeavesRange(queries, lines, values, found, 0, len(queries))
		return
	}
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		t.searchLeavesRange(queries, lines, values, found, s, e)
	})
}

func (t *ImplicitTree[K]) searchLeavesRange(queries []K, lines []int32, values []K, found []bool, s, e int) {
	for i := s; i < e; i++ {
		values[i], found[i] = t.SearchLeafLine(int(lines[i]), queries[i])
	}
}

// SearchLeavesBatchSorted is SearchLeavesBatch for a sorted batch, whose
// leaf line indices arrive non-decreasing: it returns the number of
// distinct leaf lines touched, which the cost model charges instead of
// one line per query — adjacent sorted queries landing in the same line
// find it already resident. Results are identical to SearchLeavesBatch.
func (t *ImplicitTree[K]) SearchLeavesBatchSorted(queries []K, lines []int32, values []K, found []bool) int {
	if runsInline(len(queries), t.cfg.Threads) {
		return t.searchLeavesSortedRange(queries, lines, values, found, 0, len(queries))
	}
	var distinct atomic.Int64
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		distinct.Add(int64(t.searchLeavesSortedRange(queries, lines, values, found, s, e)))
	})
	return int(distinct.Load())
}

func (t *ImplicitTree[K]) searchLeavesSortedRange(queries []K, lines []int32, values []K, found []bool, s, e int) int {
	distinct := 0
	prev := int32(-1)
	for i := s; i < e; i++ {
		if lines[i] != prev {
			distinct++
			prev = lines[i]
		}
		values[i], found[i] = t.SearchLeafLine(int(lines[i]), queries[i])
	}
	return distinct
}

// LeafRef identifies one leaf cache line of the regular tree: big leaf
// index plus line within it. It is the intermediate result the GPU
// returns to the CPU for the regular HB+-tree.
type LeafRef struct {
	Leaf int32
	Line int32
}

// LookupBatch resolves queries[i] into values[i]/found[i] using all
// configured worker threads and software pipelining.
func (t *RegularTree[K]) LookupBatch(queries []K, values []K, found []bool) {
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		t.lookupPipelined(queries[s:e], values[s:e], found[s:e])
	})
}

func (t *RegularTree[K]) lookupPipelined(qs []K, vals []K, fnd []bool) {
	p := t.cfg.PipelineDepth
	if p <= 1 {
		for i, q := range qs {
			vals[i], fnd[i] = t.Lookup(q)
		}
		return
	}
	node := make([]int32, p)
	for start := 0; start < len(qs); start += p {
		end := start + p
		if end > len(qs) {
			end = len(qs)
		}
		grp := qs[start:end]
		n := len(grp)
		for i := 0; i < n; i++ {
			node[i] = t.root
		}
		for h := t.height; h >= 2; h-- {
			for i := 0; i < n; i++ {
				c := t.searchNode(t.upper, node[i], grp[i])
				node[i] = int32(t.nodeRefs(t.upper, node[i])[c])
			}
		}
		for i := 0; i < n; i++ {
			c := t.searchNode(t.last, node[i], grp[i])
			vals[start+i], fnd[start+i] = t.SearchLeafLine(node[i], c, grp[i])
		}
	}
}

// SearchInnerBatch resolves the inner-level traversal for a batch,
// producing the leaf reference per query (the GPU's work share).
func (t *RegularTree[K]) SearchInnerBatch(queries []K, refs []LeafRef) {
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		for i := s; i < e; i++ {
			b, c := t.SearchToLeaf(queries[i])
			refs[i] = LeafRef{Leaf: b, Line: int32(c)}
		}
	})
}

// SearchLeavesBatch finishes lookups from leaf references (the CPU stage
// of the hybrid search).
func (t *RegularTree[K]) SearchLeavesBatch(queries []K, refs []LeafRef, values []K, found []bool) {
	// As with the implicit variant, small batches avoid the fan-out
	// closure so steady-state serving stays allocation-free.
	if runsInline(len(queries), t.cfg.Threads) {
		t.searchLeavesRange(queries, refs, values, found, 0, len(queries))
		return
	}
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		t.searchLeavesRange(queries, refs, values, found, s, e)
	})
}

func (t *RegularTree[K]) searchLeavesRange(queries []K, refs []LeafRef, values []K, found []bool, s, e int) {
	for i := s; i < e; i++ {
		values[i], found[i] = t.SearchLeafLine(refs[i].Leaf, int(refs[i].Line), queries[i])
	}
}

// SearchLeavesBatchSorted is SearchLeavesBatch for a sorted batch: the
// (leaf, line) references arrive grouped, and the returned distinct
// count is what the shared cost model charges for the leaf stage's
// memory traffic. Results are identical to SearchLeavesBatch.
func (t *RegularTree[K]) SearchLeavesBatchSorted(queries []K, refs []LeafRef, values []K, found []bool) int {
	if runsInline(len(queries), t.cfg.Threads) {
		return t.searchLeavesSortedRange(queries, refs, values, found, 0, len(queries))
	}
	var distinct atomic.Int64
	parallelFor(len(queries), t.cfg.Threads, func(s, e int) {
		distinct.Add(int64(t.searchLeavesSortedRange(queries, refs, values, found, s, e)))
	})
	return int(distinct.Load())
}

func (t *RegularTree[K]) searchLeavesSortedRange(queries []K, refs []LeafRef, values []K, found []bool, s, e int) int {
	distinct := 0
	prev := LeafRef{Leaf: -1, Line: -1}
	for i := s; i < e; i++ {
		if refs[i] != prev {
			distinct++
			prev = refs[i]
		}
		values[i], found[i] = t.SearchLeafLine(refs[i].Leaf, int(refs[i].Line), queries[i])
	}
	return distinct
}

// MixedKind distinguishes the operations of a mixed search/update batch
// (Appendix B.3).
type MixedKind uint8

// Mixed-batch operation kinds.
const (
	MixedSearch MixedKind = iota
	MixedInsert
	MixedDelete
)

// MixedOp is one operation of a concurrent search/update batch.
type MixedOp[K keys.Key] struct {
	Kind  MixedKind
	Key   K
	Value K
}

// MixedResult reports the outcome of a mixed batch.
type MixedResult[K keys.Key] struct {
	Values     []K
	Found      []bool
	Structural int
	DirtyLast  []int32
}

// MixedBatch executes searches and updates concurrently with the
// asynchronous locking scheme of Section 5.6: every operation descends
// the (structurally frozen) upper levels lock-free, then takes the
// striped mutex of its last-level node before touching the node or its
// big leaf. Structural leftovers run single-threaded at the end, as in
// ApplyBatchParallel. This is the executor evaluated in Figure 21, where
// "the execution of buckets with 100% search queries ... is not as fast
// as our previously evaluated lookup methods ... due to the mutex
// locking and synchronization overhead".
func (t *RegularTree[K]) MixedBatch(ops []MixedOp[K], threads int) MixedResult[K] {
	t.ensurePrivate()
	if threads <= 0 {
		threads = t.cfg.Threads
	}
	res := MixedResult[K]{
		Values: make([]K, len(ops)),
		Found:  make([]bool, len(ops)),
	}
	var locks [lockStripes]sync.Mutex
	var cursor atomic.Int64
	var pendingMu sync.Mutex
	type pendingOp struct {
		op   MixedOp[K]
		leaf int32
	}
	var pending []pendingOp
	dirtyCh := make([][]int32, threads)
	var np atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if int(i) >= len(ops) {
					return
				}
				op := ops[i]
				b := t.descendUpper(op.Key)
				lk := &locks[int(b)&(lockStripes-1)]
				lk.Lock()
				switch op.Kind {
				case MixedSearch:
					c := t.searchNode(t.last, b, op.Key)
					res.Values[i], res.Found[i] = t.SearchLeafLine(b, int(c), op.Key)
				case MixedInsert:
					had := t.contains(b, op.Key)
					if t.leafInsert(b, op.Key, op.Value) {
						if !had {
							np.Add(1)
						}
						dirtyCh[w] = append(dirtyCh[w], b)
					} else {
						pendingMu.Lock()
						pending = append(pending, pendingOp{op: op, leaf: b})
						pendingMu.Unlock()
					}
				case MixedDelete:
					c := t.searchNode(t.last, b, op.Key)
					found, emptied := t.leafDelete(b, c, op.Key)
					res.Found[i] = found
					if found {
						np.Add(-1)
						dirtyCh[w] = append(dirtyCh[w], b)
						if emptied {
							pendingMu.Lock()
							pending = append(pending, pendingOp{op: op, leaf: b})
							pendingMu.Unlock()
						}
					}
				}
				lk.Unlock()
			}
		}(w)
	}
	wg.Wait()

	t.numPairs += int(np.Load())
	dirty := make(map[int32]struct{})
	for _, d := range dirtyCh {
		for _, b := range d {
			dirty[b] = struct{}{}
		}
	}

	freed := make(map[int32]struct{})
	for _, p := range pending {
		switch p.op.Kind {
		case MixedInsert:
			structural, err := t.Insert(p.op.Key, p.op.Value)
			if err == nil && structural {
				res.Structural++
			}
		case MixedDelete:
			if _, done := freed[p.leaf]; done || t.leafMeta[p.leaf].npairs != 0 {
				continue
			}
			freed[p.leaf] = struct{}{}
			t.removeLeaf(p.leaf)
			res.Structural++
		}
	}
	for b := range dirty {
		res.DirtyLast = append(res.DirtyLast, b)
	}
	return res
}
