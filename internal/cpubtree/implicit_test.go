package cpubtree

import (
	"math"
	"testing"
	"testing/quick"

	"hbtree/internal/keys"
	"hbtree/internal/simd"
	"hbtree/internal/workload"
)

func buildImplicit64(t testing.TB, n int, cfg Config) (*ImplicitTree[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tr, err := BuildImplicit(pairs, cfg)
	if err != nil {
		t.Fatalf("BuildImplicit: %v", err)
	}
	return tr, pairs
}

func TestImplicitLookupAllKeys(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 36, 37, 1000, 20000} {
		tr, pairs := buildImplicit64(t, n, Config{})
		for _, p := range pairs {
			v, ok := tr.Lookup(p.Key)
			if !ok || v != p.Value {
				t.Fatalf("n=%d: Lookup(%d) = (%d,%v), want (%d,true)", n, p.Key, v, ok, p.Value)
			}
		}
	}
}

func TestImplicitLookupMisses(t *testing.T) {
	tr, pairs := buildImplicit64(t, 5000, Config{})
	present := make(map[uint64]bool, len(pairs))
	for _, p := range pairs {
		present[p.Key] = true
	}
	r := workload.NewRNG(7)
	for i := 0; i < 5000; i++ {
		q := r.Uint64()
		if q == keys.Max[uint64]() || present[q] {
			continue
		}
		if _, ok := tr.Lookup(q); ok {
			t.Fatalf("Lookup(%d) found a key not in the dataset", q)
		}
	}
	// Boundary queries.
	if _, ok := tr.Lookup(0); present[0] != ok {
		t.Fatal("Lookup(0) mismatch")
	}
}

func TestImplicitFanoutVariants(t *testing.T) {
	// The CPU-optimized fanout (9) and the HB+ fanout (8) must both
	// produce correct trees (Section 5.2).
	for _, fanout := range []int{8, 9, 2, 5} {
		pairs := workload.Dataset[uint64](workload.Uniform, 3000, 11)
		tr, err := BuildImplicit(pairs, Config{Fanout: fanout})
		if err != nil {
			t.Fatalf("fanout %d: %v", fanout, err)
		}
		if tr.Fanout() != fanout {
			t.Fatalf("Fanout() = %d, want %d", tr.Fanout(), fanout)
		}
		for _, p := range pairs {
			if v, ok := tr.Lookup(p.Key); !ok || v != p.Value {
				t.Fatalf("fanout %d: Lookup(%d) failed", fanout, p.Key)
			}
		}
	}
}

func TestImplicit32Bit(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 10000, 5)
	for _, fanout := range []int{0, 16} { // 0 -> default 17
		tr, err := BuildImplicit(pairs, Config{Fanout: fanout})
		if err != nil {
			t.Fatalf("BuildImplicit32: %v", err)
		}
		for _, p := range pairs {
			if v, ok := tr.Lookup(p.Key); !ok || v != p.Value {
				t.Fatalf("32-bit Lookup(%d) failed", p.Key)
			}
		}
	}
}

func TestImplicitHeightBound(t *testing.T) {
	// H = ceil(log_9(N/4 + 1)) for the 64-bit CPU-optimized tree
	// (Section 4.1); our builder may use one less level when the last
	// line is partially filled, and never more.
	for _, n := range []int{8, 100, 5000, 200000} {
		tr, _ := buildImplicit64(t, n, Config{})
		want := int(math.Ceil(math.Log(float64(n)/4+1) / math.Log(9)))
		if want < 1 {
			want = 1
		}
		if tr.Height() > want {
			t.Fatalf("n=%d: height %d exceeds paper bound %d", n, tr.Height(), want)
		}
		if tr.Height() < want-1 {
			t.Fatalf("n=%d: height %d far below paper bound %d", n, tr.Height(), want)
		}
	}
}

func TestImplicitSpaceEquation(t *testing.T) {
	// L_space = N / P_L * S_L (Equation 1) for a full tree.
	n := 4096 // multiple of P_L=4: tree exactly full at the leaf level
	tr, _ := buildImplicit64(t, n, Config{})
	st := tr.Stats()
	wantLeaf := int64(n) / 4 * 64
	if st.LeafBytes != wantLeaf {
		t.Fatalf("LeafBytes = %d, want %d", st.LeafBytes, wantLeaf)
	}
	if st.LinesPerQuery != tr.Height()+1 {
		t.Fatalf("LinesPerQuery = %d, want H+1 = %d", st.LinesPerQuery, tr.Height()+1)
	}
}

func TestImplicitBatchMatchesSingle(t *testing.T) {
	tr, pairs := buildImplicit64(t, 30000, Config{Threads: 4})
	qs := workload.SearchInput(pairs, len(pairs), 9)
	vals := make([]uint64, len(qs))
	fnd := make([]bool, len(qs))
	tr.LookupBatch(qs, vals, fnd)
	for i, q := range qs {
		v, ok := tr.Lookup(q)
		if ok != fnd[i] || v != vals[i] {
			t.Fatalf("batch[%d] (%d,%v) != single (%d,%v)", i, vals[i], fnd[i], v, ok)
		}
	}
}

func TestImplicitPipelineDepths(t *testing.T) {
	tr, pairs := buildImplicit64(t, 5000, Config{})
	qs := workload.SearchInput(pairs, 2000, 3)
	want := make([]uint64, len(qs))
	for i, q := range qs {
		want[i], _ = tr.Lookup(q)
	}
	for _, p := range []int{-1, 1, 2, 7, 16, 32} {
		cfg := tr.Config()
		cfg.PipelineDepth = p
		tr2, err := BuildImplicit(pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]uint64, len(qs))
		fnd := make([]bool, len(qs))
		tr2.lookupPipelined(qs, vals, fnd)
		for i := range qs {
			if !fnd[i] || vals[i] != want[i] {
				t.Fatalf("pipeline depth %d: query %d wrong", p, i)
			}
		}
	}
}

func TestImplicitNodeSearchAlgorithms(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 8000, 17)
	for _, alg := range []simd.Algorithm{simd.Sequential, simd.Linear, simd.Hierarchical} {
		tr, err := BuildImplicit(pairs, Config{NodeSearch: alg})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(pairs); i += 7 {
			if v, ok := tr.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
				t.Fatalf("%v: Lookup(%d) failed", alg, pairs[i].Key)
			}
		}
	}
}

func TestImplicitRangeQuery(t *testing.T) {
	tr, pairs := buildImplicit64(t, 10000, Config{})
	r := workload.NewRNG(21)
	for iter := 0; iter < 200; iter++ {
		start := r.Intn(len(pairs))
		count := 1 + r.Intn(40)
		out := tr.RangeQuery(pairs[start].Key, count, nil)
		wantN := count
		if start+count > len(pairs) {
			wantN = len(pairs) - start
		}
		if len(out) != wantN {
			t.Fatalf("range(%d,%d): got %d results, want %d", start, count, len(out), wantN)
		}
		for j, p := range out {
			if p != pairs[start+j] {
				t.Fatalf("range result %d = %+v, want %+v", j, p, pairs[start+j])
			}
		}
	}
	// Range starting between keys begins at the successor.
	out := tr.RangeQuery(pairs[10].Key+1, 3, nil)
	if len(out) == 0 || out[0] != pairs[11] {
		t.Fatalf("between-keys range start = %+v, want %+v", out, pairs[11])
	}
}

func TestImplicitRebuild(t *testing.T) {
	tr, _ := buildImplicit64(t, 4000, Config{})
	pairs2 := workload.Dataset[uint64](workload.Uniform, 6000, 99)
	if err := tr.Rebuild(pairs2); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs2 {
		if v, ok := tr.Lookup(p.Key); !ok || v != p.Value {
			t.Fatalf("post-rebuild Lookup(%d) failed", p.Key)
		}
	}
}

func TestImplicitBuildErrors(t *testing.T) {
	if _, err := BuildImplicit[uint64](nil, Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	dup := []keys.Pair[uint64]{{Key: 1}, {Key: 1}}
	if _, err := BuildImplicit(dup, Config{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	unsorted := []keys.Pair[uint64]{{Key: 2}, {Key: 1}}
	if _, err := BuildImplicit(unsorted, Config{}); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	sentinel := []keys.Pair[uint64]{{Key: keys.Max[uint64]()}}
	if _, err := BuildImplicit(sentinel, Config{}); err == nil {
		t.Fatal("sentinel key accepted")
	}
	if _, err := BuildImplicit([]keys.Pair[uint64]{{Key: 1}}, Config{Fanout: 1}); err == nil {
		t.Fatal("fanout 1 accepted")
	}
	if _, err := BuildImplicit([]keys.Pair[uint64]{{Key: 1}}, Config{Fanout: 10}); err == nil {
		t.Fatal("fanout > kpn+1 accepted")
	}
}

// TestImplicitQuickLookup property-tests lookups against a map oracle on
// arbitrary key sets.
func TestImplicitQuickLookup(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n)%2000 + 1
		pairs := workload.Dataset[uint64](workload.Uniform, size, seed)
		tr, err := BuildImplicit(pairs, Config{})
		if err != nil {
			return false
		}
		oracle := make(map[uint64]uint64, size)
		for _, p := range pairs {
			oracle[p.Key] = p.Value
		}
		r := workload.NewRNG(seed ^ 0xfeed)
		for i := 0; i < 200; i++ {
			var q uint64
			if i%2 == 0 {
				q = pairs[r.Intn(size)].Key
			} else {
				q = r.Uint64()
				if q == keys.Max[uint64]() {
					q--
				}
			}
			v, ok := tr.Lookup(q)
			wv, wok := oracle[q]
			if ok != wok || (ok && v != wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitSearchInnerFrom(t *testing.T) {
	tr, pairs := buildImplicit64(t, 20000, Config{})
	for i := 0; i < len(pairs); i += 13 {
		q := pairs[i].Key
		full := tr.SearchInner(q)
		// Resuming from the root must agree with the full search.
		if got := tr.SearchInnerFrom(q, 0, 0); got != full {
			t.Fatalf("SearchInnerFrom(root) = %d, want %d", got, full)
		}
		// Resuming from depth 1 must agree: recompute the level-1 node.
		if tr.Height() >= 2 {
			j := simd.Search(tr.cfg.NodeSearch, tr.node(0, 0), q)
			if got := tr.SearchInnerFrom(q, 1, j); got != full {
				t.Fatalf("SearchInnerFrom(1,%d) = %d, want %d", j, got, full)
			}
		}
	}
}
