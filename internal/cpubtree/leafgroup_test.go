package cpubtree

import (
	"sort"
	"testing"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// groupByLeaf resolves each op's target leaf on the current tree and
// returns ops bucketed per leaf, in key order.
func groupByLeaf(t *RegularTree[uint64], ops []Op[uint64]) map[int32][]Op[uint64] {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
	groups := map[int32][]Op[uint64]{}
	for _, op := range ops {
		b, _ := t.SearchToLeaf(op.Key)
		groups[b] = append(groups[b], op)
	}
	return groups
}

func TestApplyOpsToLeafBasic(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 5000, 1)
	tr, err := BuildRegular(pairs, Config{LeafFill: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	ops := make([]Op[uint64], 0, 3000)
	wl := workload.UpdateBatch(pairs, 3000, 0.4, 3)
	for _, op := range wl {
		ops = append(ops, Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete})
		if op.Delete {
			delete(oracle, op.Pair.Key)
		} else {
			oracle[op.Pair.Key] = op.Pair.Value
		}
	}
	for leaf, group := range groupByLeaf(tr, ops) {
		tr.ApplyOpsToLeaf(leaf, group)
	}
	if tr.NumPairs() != len(oracle) {
		t.Fatalf("NumPairs %d != %d", tr.NumPairs(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := tr.Lookup(k); !ok || got != v {
			t.Fatalf("Lookup(%d) = (%d,%v), want %d", k, got, ok, v)
		}
	}
}

func TestApplyOpsToLeafRepeatedSplits(t *testing.T) {
	// One group inserting many keys into a single full leaf's range
	// forces cascading local splits.
	base := make([]keys.Pair[uint64], 256)
	for i := range base {
		base[i] = keys.Pair[uint64]{Key: uint64(i+1) * 1000, Value: uint64(i)}
	}
	tr, err := BuildRegular(base, Config{LeafFill: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := tr.SearchToLeaf(base[0].Key)
	var group []Op[uint64]
	for i := 0; i < 1000; i++ {
		group = append(group, Op[uint64]{Key: uint64(i+1)*1000 + 1, Value: uint64(i)})
	}
	sort.Slice(group, func(i, j int) bool { return group[i].Key < group[j].Key })
	res := tr.ApplyOpsToLeaf(leaf, group)
	if res.Structural == 0 {
		t.Fatal("no splits happened")
	}
	if res.Applied != len(group) {
		t.Fatalf("applied %d of %d", res.Applied, len(group))
	}
	for _, op := range group {
		if v, ok := tr.Lookup(op.Key); !ok || v != op.Value {
			t.Fatalf("key %d missing after splits", op.Key)
		}
	}
	for _, p := range base {
		if v, ok := tr.Lookup(p.Key); !ok || v != p.Value {
			t.Fatalf("original key %d lost", p.Key)
		}
	}
}

func TestApplyOpsToLeafEmptiesLeaf(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 2000, 7)
	tr, err := BuildRegular(pairs, Config{LeafFill: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Delete every key of the first leaf in one group.
	leaf, _ := tr.SearchToLeaf(pairs[0].Key)
	var group []Op[uint64]
	for _, p := range pairs {
		if b, _ := tr.SearchToLeaf(p.Key); b == leaf {
			group = append(group, Op[uint64]{Key: p.Key, Delete: true})
		}
	}
	res := tr.ApplyOpsToLeaf(leaf, group)
	if res.Applied != len(group) {
		t.Fatalf("applied %d of %d", res.Applied, len(group))
	}
	for _, op := range group {
		if _, ok := tr.Lookup(op.Key); ok {
			t.Fatalf("key %d survived group delete", op.Key)
		}
	}
	// Remaining keys intact.
	for _, p := range pairs {
		if b, _ := tr.SearchToLeaf(p.Key); b == leaf {
			continue
		}
	}
	total := tr.RangeQuery(0, len(pairs), nil)
	if len(total)+len(group) != len(pairs) {
		t.Fatalf("tree holds %d pairs, want %d", len(total), len(pairs)-len(group))
	}
}

func TestApplyOpsToLeafOverwriteAndSentinel(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1000, 9)
	tr, err := BuildRegular(pairs, Config{LeafFill: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := tr.SearchToLeaf(pairs[0].Key)
	group := []Op[uint64]{
		{Key: pairs[0].Key, Value: 777},     // overwrite
		{Key: keys.Max[uint64](), Value: 1}, // sentinel: skipped
	}
	sort.Slice(group, func(i, j int) bool { return group[i].Key < group[j].Key })
	res := tr.ApplyOpsToLeaf(leaf, group)
	if res.Applied != 1 {
		t.Fatalf("applied %d", res.Applied)
	}
	if v, _ := tr.Lookup(pairs[0].Key); v != 777 {
		t.Fatal("overwrite not applied")
	}
	if tr.NumPairs() != len(pairs) {
		t.Fatalf("overwrite changed count to %d", tr.NumPairs())
	}
	// Empty group is a no-op.
	res = tr.ApplyOpsToLeaf(leaf, nil)
	if res.Applied != 0 || res.Structural != 0 {
		t.Fatalf("empty group did something: %+v", res)
	}
}

// TestApplyOpsToLeafDeleteAllThenInsert regression-tests the case where
// a group empties its (only) leaf partway through and later inserts keys
// into the same routed range: the inserts must land in a reachable leaf,
// not the freed one. Only the rightmost leaf can receive in-contract
// inserts above all its deleted keys (its routing upper bound is MAX),
// so the test targets it.
func TestApplyOpsToLeafDeleteAllThenInsert(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 4000, 21)
	tr, err := BuildRegular(pairs, Config{LeafFill: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	maxKey := pairs[len(pairs)-1].Key
	leaf, _ := tr.SearchToLeaf(maxKey) // rightmost leaf
	var group []Op[uint64]
	var rangeKeys []uint64
	for _, p := range pairs {
		if b, _ := tr.SearchToLeaf(p.Key); b == leaf {
			group = append(group, Op[uint64]{Key: p.Key, Delete: true})
			rangeKeys = append(rangeKeys, p.Key)
		}
	}
	// Inserts strictly above every deleted key: they still route to the
	// rightmost leaf, and in key order they execute after the leaf has
	// been emptied and unlinked.
	var inserted []uint64
	for i := 0; i < 64; i++ {
		k := maxKey + 1 + uint64(i)
		inserted = append(inserted, k)
		group = append(group, Op[uint64]{Key: k, Value: k * 2})
	}
	sort.Slice(group, func(i, j int) bool { return group[i].Key < group[j].Key })
	res := tr.ApplyOpsToLeaf(leaf, group)
	if res.Applied != len(group) {
		t.Fatalf("applied %d of %d (notfound %d)", res.Applied, len(group), res.NotFound)
	}
	for _, k := range rangeKeys {
		if _, ok := tr.Lookup(k); ok {
			t.Fatalf("deleted key %d still present", k)
		}
	}
	for _, k := range inserted {
		if v, ok := tr.Lookup(k); !ok || v != k*2 {
			t.Fatalf("re-inserted key %d missing or wrong (%d,%v)", k, v, ok)
		}
	}
	// The tree remains structurally sound for unrelated operations.
	if _, err := tr.Insert(123456789, 1); err != nil {
		t.Fatal(err)
	}
	out := tr.RangeQuery(0, tr.NumPairs()+1, nil)
	if len(out) != tr.NumPairs() {
		t.Fatalf("walk found %d of %d", len(out), tr.NumPairs())
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("order violated")
		}
	}
}
