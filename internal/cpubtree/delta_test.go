package cpubtree

import (
	"bytes"
	"math/rand"
	"testing"

	"hbtree/internal/keys"
)

// Property suite for the gapped delta leaves (delta.go): an in-place
// planned apply must be observationally identical — lookups, ordered
// scans, range queries, serialized image — to the clone-and-swap
// oracle, over random op mixes of inserts, overwrites, deletes,
// duplicates and missing keys, for both key widths. The epoch contract
// is checked too: a fork's parent keeps answering with its exact
// pre-batch values.

func buildDeltaTree[K keys.Key](t *testing.T, n int, fill float64) (*RegularTree[K], []keys.Pair[K]) {
	t.Helper()
	pairs := make([]keys.Pair[K], n)
	for i := range pairs {
		pairs[i] = keys.Pair[K]{Key: K(10 + 10*i), Value: K(i + 1)}
	}
	tr, err := BuildRegular(pairs, Config{LeafFill: fill})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tr, pairs
}

// randomDeltaOps draws a batch biased to stay within gap capacity:
// overwrites and near-miss keys around the loaded range, with a
// delete/insert mix.
func randomDeltaOps[K keys.Key](rng *rand.Rand, pairs []keys.Pair[K], n int) []Op[K] {
	ops := make([]Op[K], n)
	for i := range ops {
		var k K
		switch rng.Intn(4) {
		case 0: // existing key (overwrite or delete hit)
			k = pairs[rng.Intn(len(pairs))].Key
		case 1: // missing key inside the range (insert or delete miss)
			k = pairs[rng.Intn(len(pairs))].Key + K(1+rng.Intn(9))
		case 2: // duplicate pressure: small hot set
			k = pairs[rng.Intn(8)].Key
		default: // below or above the loaded range
			if rng.Intn(2) == 0 {
				k = K(rng.Intn(10))
			} else {
				k = pairs[len(pairs)-1].Key + K(1+rng.Intn(50))
			}
		}
		ops[i] = Op[K]{Key: k, Value: K(rng.Intn(1 << 20)), Delete: rng.Intn(3) == 0}
	}
	return ops
}

// treeFingerprint collects every observable read surface of the tree.
func treeFingerprint[K keys.Key](t *RegularTree[K], probes []K) (lookups []K, found []bool, scan, rq []keys.Pair[K], n int) {
	lookups = make([]K, len(probes))
	found = make([]bool, len(probes))
	for i, q := range probes {
		lookups[i], found[i] = t.Lookup(q)
	}
	cur := t.Seek(0)
	for {
		p, ok := cur.Next()
		if !ok {
			break
		}
		scan = append(scan, p)
	}
	var mid K
	if len(scan) > 0 {
		mid = scan[len(scan)/2].Key
	}
	rq = t.RangeQuery(mid, len(scan)/2+3, nil)
	return lookups, found, scan, rq, t.NumPairs()
}

func comparePairSlices[K keys.Key](t *testing.T, what string, got, want []keys.Pair[K]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, oracle %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v, oracle %v", what, i, got[i], want[i])
		}
	}
}

func runDeltaOracleRound[K keys.Key](t *testing.T, tr *RegularTree[K], pairs []keys.Pair[K], rng *rand.Rand, batch int) *RegularTree[K] {
	t.Helper()
	ops := randomDeltaOps(rng, pairs, batch)

	var plan DeltaPlan[K]
	if !tr.PlanDelta(ops, &plan) {
		// Gap exhausted: the clone fallback is the covered path; compact
		// and retry the plan once on the fresh clone.
		tr = tr.Clone()
		if !tr.PlanDelta(ops, &plan) {
			cl := tr.Clone()
			cl.ApplyBatchSequential(ops)
			return cl
		}
	}

	oracle := tr.Clone()
	oracle.ApplyBatchSequential(ops)

	fork := tr.ForkDelta()
	res := fork.ApplyPlannedDelta(ops, &plan)
	if res.Structural != 0 {
		t.Fatalf("in-place apply reported structural change")
	}

	probes := make([]K, 0, 3*len(ops))
	maxK := keys.Max[K]()
	for _, op := range ops {
		for _, q := range []K{op.Key, op.Key + 1, op.Key - 1} {
			if q != maxK { // MAX is the reserved sentinel: lookups of it are undefined
				probes = append(probes, q)
			}
		}
	}
	for i := 0; i < 64; i++ {
		probes = append(probes, pairs[rng.Intn(len(pairs))].Key)
	}

	gl, gf, gs, gr, gn := treeFingerprint(fork, probes)
	wl, wf, ws, wr, wn := treeFingerprint(oracle, probes)
	for i := range probes {
		if gf[i] != wf[i] || (gf[i] && gl[i] != wl[i]) {
			t.Fatalf("lookup %v: (%v,%v), oracle (%v,%v)", probes[i], gl[i], gf[i], wl[i], wf[i])
		}
	}
	comparePairSlices(t, "scan", gs, ws)
	comparePairSlices(t, "range", gr, wr)
	if gn != wn {
		t.Fatalf("NumPairs %d, oracle %d", gn, wn)
	}

	// Compaction equivalence: a clone of the fork must serialize to the
	// same image as the oracle.
	var got, want bytes.Buffer
	if _, err := fork.WriteTo(&got); err != nil {
		t.Fatalf("fork WriteTo: %v", err)
	}
	if _, err := oracle.WriteTo(&want); err != nil {
		t.Fatalf("oracle WriteTo: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("compacted image differs from oracle image (%d vs %d bytes)", got.Len(), want.Len())
	}
	return fork
}

func testDeltaOracle[K keys.Key](t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	tr, pairs := buildDeltaTree[K](t, 3000, 0.8)

	// Pre-batch view preservation: fingerprint the parent, apply a chain
	// of in-place batches on forks, re-fingerprint the parent.
	probes := make([]K, 200)
	for i := range probes {
		probes[i] = pairs[rng.Intn(len(pairs))].Key + K(rng.Intn(3))
	}
	pl, pf, ps, pr, pn := treeFingerprint(tr, probes)

	cur := tr
	for round := 0; round < 8; round++ {
		cur = runDeltaOracleRound(t, cur, pairs, rng, 64)
	}

	gl, gf, gs, gr, gn := treeFingerprint(tr, probes)
	for i := range probes {
		if gf[i] != pf[i] || gl[i] != pl[i] {
			t.Fatalf("parent epoch changed at probe %v after in-place applies", probes[i])
		}
	}
	comparePairSlices(t, "parent scan", gs, ps)
	comparePairSlices(t, "parent range", gr, pr)
	if gn != pn {
		t.Fatalf("parent NumPairs changed: %d -> %d", pn, gn)
	}
}

func TestDeltaApplyMatchesCloneOracleUint64(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		testDeltaOracle[uint64](t, seed)
	}
}

func TestDeltaApplyMatchesCloneOracleUint32(t *testing.T) {
	for seed := int64(100); seed <= 103; seed++ {
		testDeltaOracle[uint32](t, seed)
	}
}

// TestDeltaPlanRejectsOverflow pins the clone-fallback triggers: a
// batch overflowing a leaf's gap capacity, and a batch that would empty
// a leaf, must both fail the plan.
func TestDeltaPlanRejectsOverflow(t *testing.T) {
	tr, pairs := buildDeltaTree[uint64](t, 3000, 1.0) // full leaves: zero gap
	var plan DeltaPlan[uint64]
	ops := []Op[uint64]{{Key: pairs[0].Key + 1, Value: 7}}
	if tr.PlanDelta(ops, &plan) {
		t.Fatalf("plan accepted an insert into a gapless tree")
	}
	// Overwrites need a slot too.
	ops[0] = Op[uint64]{Key: pairs[0].Key, Value: 7}
	if tr.PlanDelta(ops, &plan) {
		t.Fatalf("plan accepted an overwrite into a gapless tree")
	}

	tr2, pairs2 := buildDeltaTree[uint64](t, 40, 0.5)
	// Delete every pair of the first leaf: would empty it.
	dels := make([]Op[uint64], 0, len(pairs2))
	for _, p := range pairs2 {
		dels = append(dels, Op[uint64]{Key: p.Key, Delete: true})
	}
	if tr2.PlanDelta(dels, &plan) {
		t.Fatalf("plan accepted emptying every leaf")
	}
	// Deleting one key of a multi-pair tree is fine.
	if !tr2.PlanDelta(dels[:1], &plan) {
		t.Fatalf("plan rejected a single in-gap delete")
	}
}

// TestDeltaForkGuards pins the sharedPools discipline: structural
// mutation on a fork panics, and Clone() clears the guard.
func TestDeltaForkGuards(t *testing.T) {
	tr, _ := buildDeltaTree[uint64](t, 500, 0.8)
	fork := tr.ForkDelta()
	if !fork.Shared() {
		t.Fatalf("fork not marked shared")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Insert on a fork did not panic")
			}
		}()
		_, _ = fork.Insert(1, 1)
	}()
	cl := fork.Clone()
	if cl.Shared() {
		t.Fatalf("clone of fork still marked shared")
	}
	if _, err := cl.Insert(1, 1); err != nil {
		t.Fatalf("insert on clone: %v", err)
	}
}

// TestDeltaSerializeRoundTrip pins that a delta-bearing tree's image
// loads back to the same contents.
func TestDeltaSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr, pairs := buildDeltaTree[uint64](t, 2000, 0.8)
	ops := randomDeltaOps(rng, pairs, 48)
	var plan DeltaPlan[uint64]
	if !tr.PlanDelta(ops, &plan) {
		t.Fatalf("plan rejected a small batch on a gapped tree")
	}
	fork := tr.ForkDelta()
	fork.ApplyPlannedDelta(ops, &plan)

	var buf bytes.Buffer
	if _, err := fork.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadRegular[uint64](bytes.NewReader(buf.Bytes()), Config{})
	if err != nil {
		t.Fatalf("ReadRegular: %v", err)
	}
	if back.NumPairs() != fork.NumPairs() {
		t.Fatalf("round trip NumPairs %d != %d", back.NumPairs(), fork.NumPairs())
	}
	cur, bcur := fork.Seek(0), back.Seek(0)
	for {
		p1, ok1 := cur.Next()
		p2, ok2 := bcur.Next()
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("round trip scan diverges: (%v,%v) vs (%v,%v)", p1, ok1, p2, ok2)
		}
		if !ok1 {
			break
		}
	}
}
