package cpubtree

import (
	"fmt"

	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/simd"
)

// RegularTree is the paper's regular (pointered) B+-tree with the
// cache-blocked node layout of Section 4.1 / Figure 2(c,d):
//
//   - Inner nodes span 1+2*kpl cache lines (17 for 64-bit keys): one
//     index line whose slot s holds the maximum key of key line s
//     (I_s = K_{8s}), kpl key lines (F_I = kpl^2 = 64 separators) and kpl
//     reference lines. A node search touches only three lines: index
//     line, one key line, one reference line.
//   - Node fragmentation: the hot fragment (index/key/ref lines) lives in
//     a pooled array addressed by node index; the cold fragment (child
//     count, parent, siblings) lives in a parallel metadata pool sharing
//     the same index, so it never pollutes the search path.
//   - Big leaves: 64 small leaf lines (4 pairs each for 64-bit) plus an
//     info line are packed into one 256-entry big leaf. Last-level inner
//     nodes and big leaves are allocated from paired pools sharing the
//     same index, so the lookup retrieves the target leaf cache line
//     directly from the last inner node's index and search result.
//
// Empty key slots hold MAX so node search needs no size field; the slot
// of a node's last child also stays MAX, making it the catch-all for
// queries above every separator.
type RegularTree[K keys.Key] struct {
	cfg Config

	kpl       int // keys per line (8 / 16)
	fanout    int // F_I = kpl^2 (64 / 256)
	ppl       int // pairs per leaf line (4 / 8)
	leafCap   int // pairs per big leaf (256 / 2048)
	nodeSlots int // K slots per inner node: kpl*(1+2*kpl)
	leafSlots int // K slots per big leaf: fanout*kpl

	height   int // H: levels of inner nodes; leaves at height 0, last-level inner at height 1
	root     int32
	numPairs int

	upper     []K // inner nodes at height >= 2
	upperMeta []nodeMeta
	last      []K // last-level inner nodes (height 1), index-paired with big leaves
	lastMeta  []nodeMeta
	leafData  []K // big leaves: packed interleaved pairs
	leafMeta  []leafMeta

	freeLast  []int32
	freeUpper []int32

	headLeaf, tailLeaf int32 // leaf-chain ends for ordered scans

	// sharedPools marks a delta fork (ForkDelta): the node pools belong
	// to the ancestor chain and structural mutation must panic.
	// deltaLeaves counts big leaves with uncompacted delta entries;
	// Clone() compacts and resets it.
	sharedPools bool
	deltaLeaves int

	upperSeg, lastSeg, leafSeg mem.Segment
}

// nodeMeta is the cold fragment of an inner node (Section 4.1's node
// fragmentation): size and parent/sibling references kept off the search
// path in a pool sharing the node's index.
type nodeMeta struct {
	nchild int32
	parent int32 // index into the upper pool; -1 for the root
}

// leafMeta is the big leaf's info line: pair count and sibling links for
// the sorted leaf chain, plus the gapped-delta state (delta.go): ndelta
// append-only entries behind the base pairs, a tombstone bitmask over
// them, and the net live-pair adjustment they carry. The delta fields
// are per-epoch — ForkDelta deep-copies this slice — which is what lets
// an in-place batch publish new slot counts while older epochs keep
// their own.
type leafMeta struct {
	npairs int32
	next   int32
	prev   int32

	ndelta int32  // delta entries appended behind the base pairs
	nlive  int32  // net live-pair delta: live(b) = npairs + nlive
	tomb   uint64 // bit j set: delta entry j is a tombstone
}

const nilRef = int32(-1)

// BuildRegular bulk-loads a regular tree from sorted, distinct pairs.
func BuildRegular[K keys.Key](pairs []keys.Pair[K], cfg Config) (*RegularTree[K], error) {
	cfg.fillDefaults()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("cpubtree: empty dataset")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			return nil, fmt.Errorf("cpubtree: pairs not sorted/distinct at %d", i)
		}
	}
	if pairs[len(pairs)-1].Key == keys.Max[K]() {
		return nil, fmt.Errorf("cpubtree: key MAX is reserved as sentinel")
	}

	kpl := keys.PerLine[K]()
	t := &RegularTree[K]{
		cfg:       cfg,
		kpl:       kpl,
		fanout:    kpl * kpl,
		ppl:       kpl / 2,
		nodeSlots: kpl * (1 + 2*kpl),
	}
	t.leafCap = t.fanout * t.ppl
	t.leafSlots = t.fanout * t.kpl
	t.bulkLoad(pairs)

	sz := int64(keys.Size[K]())
	t.upperSeg = cfg.Alloc.Alloc(int64(len(t.upper))*sz, cfg.ISegPages)
	t.lastSeg = cfg.Alloc.Alloc(int64(len(t.last))*sz, cfg.ISegPages)
	t.leafSeg = cfg.Alloc.Alloc(int64(len(t.leafData))*sz, cfg.LSegPages)
	return t, nil
}

// --- node accessors -------------------------------------------------

// indexLine returns the index line of node idx in pool.
func (t *RegularTree[K]) indexLine(pool []K, idx int32) []K {
	off := int(idx) * t.nodeSlots
	return pool[off : off+t.kpl]
}

// keyLine returns key line s of node idx.
func (t *RegularTree[K]) keyLine(pool []K, idx int32, s int) []K {
	off := int(idx)*t.nodeSlots + t.kpl + s*t.kpl
	return pool[off : off+t.kpl]
}

// nodeKeys returns the full separator array (fanout slots) of node idx.
func (t *RegularTree[K]) nodeKeys(pool []K, idx int32) []K {
	off := int(idx)*t.nodeSlots + t.kpl
	return pool[off : off+t.fanout]
}

// nodeRefs returns the full reference array (fanout slots) of node idx.
func (t *RegularTree[K]) nodeRefs(pool []K, idx int32) []K {
	off := int(idx)*t.nodeSlots + t.kpl + t.fanout
	return pool[off : off+t.fanout]
}

// leafLine returns line c of big leaf b as interleaved pairs.
func (t *RegularTree[K]) leafLine(b int32, c int) []K {
	off := int(b)*t.leafSlots + c*t.kpl
	return t.leafData[off : off+t.kpl]
}

// leafPairs returns the packed pair array (all slots) of big leaf b.
func (t *RegularTree[K]) leafPairs(b int32) []K {
	off := int(b) * t.leafSlots
	return t.leafData[off : off+t.leafSlots]
}

// refreshIndexLine recomputes the index line from the separator array:
// slot s mirrors the last key of key line s.
func (t *RegularTree[K]) refreshIndexLine(pool []K, idx int32) {
	il := t.indexLine(pool, idx)
	ks := t.nodeKeys(pool, idx)
	for s := 0; s < t.kpl; s++ {
		il[s] = ks[s*t.kpl+t.kpl-1]
	}
}

// refreshLastKeys recomputes the separator array of last-level node b
// from its big leaf's packed pairs: slot c carries the maximum key of
// leaf line c for every line except the last in use, whose slot (and all
// later ones) stays MAX.
func (t *RegularTree[K]) refreshLastKeys(b int32) {
	maxK := keys.Max[K]()
	ks := t.nodeKeys(t.last, b)
	np := int(t.leafMeta[b].npairs)
	used := (np + t.ppl - 1) / t.ppl
	if used < 1 {
		used = 1
	}
	data := t.leafPairs(b)
	for c := 0; c < t.fanout; c++ {
		if c < used-1 {
			ks[c] = data[2*((c+1)*t.ppl-1)]
		} else {
			ks[c] = maxK
		}
	}
	t.lastMeta[b].nchild = int32(used)
	t.refreshIndexLine(t.last, b)
}

// --- allocation -----------------------------------------------------

func (t *RegularTree[K]) allocLast() int32 {
	if n := len(t.freeLast); n > 0 {
		idx := t.freeLast[n-1]
		t.freeLast = t.freeLast[:n-1]
		t.clearNode(t.last, idx)
		t.clearLeaf(idx)
		return idx
	}
	idx := int32(len(t.lastMeta))
	t.last = append(t.last, make([]K, t.nodeSlots)...)
	t.lastMeta = append(t.lastMeta, nodeMeta{parent: nilRef})
	t.leafData = append(t.leafData, make([]K, t.leafSlots)...)
	t.leafMeta = append(t.leafMeta, leafMeta{next: nilRef, prev: nilRef})
	t.clearNode(t.last, idx)
	t.clearLeaf(idx)
	return idx
}

func (t *RegularTree[K]) allocUpper() int32 {
	if n := len(t.freeUpper); n > 0 {
		idx := t.freeUpper[n-1]
		t.freeUpper = t.freeUpper[:n-1]
		t.clearNode(t.upper, idx)
		t.upperMeta[idx] = nodeMeta{parent: nilRef}
		return idx
	}
	idx := int32(len(t.upperMeta))
	t.upper = append(t.upper, make([]K, t.nodeSlots)...)
	t.upperMeta = append(t.upperMeta, nodeMeta{parent: nilRef})
	t.clearNode(t.upper, idx)
	return idx
}

func (t *RegularTree[K]) clearNode(pool []K, idx int32) {
	maxK := keys.Max[K]()
	off := int(idx) * t.nodeSlots
	node := pool[off : off+t.nodeSlots]
	for i := 0; i < t.kpl+t.fanout; i++ { // index line + key lines
		node[i] = maxK
	}
	for i := t.kpl + t.fanout; i < t.nodeSlots; i++ { // ref lines
		node[i] = 0
	}
}

func (t *RegularTree[K]) clearLeaf(b int32) {
	maxK := keys.Max[K]()
	data := t.leafPairs(b)
	for i := 0; i < len(data); i += 2 {
		data[i] = maxK
		data[i+1] = 0
	}
	t.leafMeta[b] = leafMeta{next: nilRef, prev: nilRef}
	t.lastMeta[b] = nodeMeta{parent: nilRef, nchild: 1}
}

// --- bulk load ------------------------------------------------------

func (t *RegularTree[K]) bulkLoad(pairs []keys.Pair[K]) {
	t.numPairs = len(pairs)

	perLeaf := int(float64(t.leafCap) * t.cfg.LeafFill)
	if perLeaf < 1 {
		perLeaf = 1
	}
	if perLeaf > t.leafCap {
		perLeaf = t.leafCap
	}
	numLeaves := (len(pairs) + perLeaf - 1) / perLeaf

	// Big leaves plus their paired last-level nodes.
	children := make([]int32, 0, numLeaves)
	childMax := make([]K, 0, numLeaves)
	var prev int32 = nilRef
	for l := 0; l < numLeaves; l++ {
		b := t.allocLast()
		start := l * perLeaf
		end := start + perLeaf
		if end > len(pairs) {
			end = len(pairs)
		}
		data := t.leafPairs(b)
		for j, p := range pairs[start:end] {
			data[2*j] = p.Key
			data[2*j+1] = p.Value
		}
		t.leafMeta[b].npairs = int32(end - start)
		t.leafMeta[b].prev = prev
		if prev != nilRef {
			t.leafMeta[prev].next = b
		} else {
			t.headLeaf = b
		}
		prev = b
		t.refreshLastKeys(b)
		children = append(children, b)
		childMax = append(childMax, pairs[end-1].Key)
	}
	t.tailLeaf = prev

	// Upper levels.
	perNode := int(float64(t.fanout) * t.cfg.LeafFill)
	if perNode < 2 {
		perNode = 2
	}
	if perNode > t.fanout {
		perNode = t.fanout
	}
	t.height = 1
	childrenInLast := true // children currently in the last-level pool?
	for len(children) > 1 {
		n := (len(children) + perNode - 1) / perNode
		nextChildren := make([]int32, 0, n)
		nextMax := make([]K, 0, n)
		for i := 0; i < n; i++ {
			u := t.allocUpper()
			first := i * perNode
			nch := len(children) - first
			if nch > perNode {
				nch = perNode
			}
			ks := t.nodeKeys(t.upper, u)
			rs := t.nodeRefs(t.upper, u)
			for j := 0; j < nch; j++ {
				c := children[first+j]
				rs[j] = K(c)
				if j < nch-1 {
					ks[j] = childMax[first+j]
				}
				if childrenInLast {
					t.lastMeta[c].parent = u
				} else {
					t.upperMeta[c].parent = u
				}
			}
			t.upperMeta[u].nchild = int32(nch)
			t.refreshIndexLine(t.upper, u)
			nextChildren = append(nextChildren, u)
			nextMax = append(nextMax, childMax[first+nch-1])
		}
		children, childMax = nextChildren, nextMax
		childrenInLast = false
		t.height++
	}
	t.root = children[0]
}

// --- search ---------------------------------------------------------

// searchNode performs the three-phase node search of Section 5.3: index
// line, selected key line, selected reference slot. It returns the child
// position c within the node.
func (t *RegularTree[K]) searchNode(pool []K, idx int32, q K) int {
	s := simd.Search(t.cfg.NodeSearch, t.indexLine(pool, idx), q)
	if s >= t.kpl {
		s = t.kpl - 1 // cannot happen: the last index slot is MAX
	}
	u := simd.Search(t.cfg.NodeSearch, t.keyLine(pool, idx, s), q)
	if u >= t.kpl {
		u = t.kpl - 1
	}
	return s*t.kpl + u
}

// SearchToLeaf traverses every inner level and returns the big leaf and
// the leaf cache line that bound q. This is the portion of a lookup the
// HB+-tree offloads to the GPU.
func (t *RegularTree[K]) SearchToLeaf(q K) (leaf int32, line int) {
	idx := t.root
	for h := t.height; h >= 2; h-- {
		c := t.searchNode(t.upper, idx, q)
		idx = int32(t.nodeRefs(t.upper, idx)[c])
	}
	return idx, t.searchNode(t.last, idx, q)
}

// SearchToLeafFrom resumes the descent at a node of the given height
// (load-balanced HB+-tree, Section 5.5).
func (t *RegularTree[K]) SearchToLeafFrom(q K, height int, nodeIdx int32) (leaf int32, line int) {
	idx := nodeIdx
	for h := height; h >= 2; h-- {
		c := t.searchNode(t.upper, idx, q)
		idx = int32(t.nodeRefs(t.upper, idx)[c])
	}
	return idx, t.searchNode(t.last, idx, q)
}

// SearchLeafLine finishes a lookup within line c of big leaf b. The
// leaf's delta region is consulted first — the newest append for a key
// wins, and a tombstone is a definitive miss — before the base line's
// SIMD probe.
func (t *RegularTree[K]) SearchLeafLine(b int32, c int, q K) (K, bool) {
	if m := &t.leafMeta[b]; m.ndelta > 0 {
		if v, tomb, ok := t.deltaLookup(b, m, q); ok {
			if tomb {
				return 0, false
			}
			return v, true
		}
	}
	line := t.leafLine(b, c)
	i, found := simd.SearchPairsLine(line, q)
	if !found {
		return 0, false
	}
	return line[2*i+1], true
}

// Lookup finds the value stored under q.
func (t *RegularTree[K]) Lookup(q K) (K, bool) {
	b, c := t.SearchToLeaf(q)
	return t.SearchLeafLine(b, c, q)
}

// LookupInstrumented performs a lookup reporting each cache-line touch
// (three per upper node, two per last-level node, one leaf line) to the
// memory-hierarchy simulator.
func (t *RegularTree[K]) LookupInstrumented(q K, h mem.Toucher) (K, bool) {
	sz := int64(keys.Size[K]())
	lineB := int64(keys.LineBytes)
	idx := t.root
	for lvl := t.height; lvl >= 2; lvl-- {
		base := t.upperSeg.Addr(int64(idx) * int64(t.nodeSlots) * sz)
		h.Touch(base, t.upperSeg.Kind) // index line
		s := simd.Search(t.cfg.NodeSearch, t.indexLine(t.upper, idx), q)
		if s >= t.kpl {
			s = t.kpl - 1
		}
		h.Touch(base+int64(1+s)*lineB, t.upperSeg.Kind) // key line
		u := simd.Search(t.cfg.NodeSearch, t.keyLine(t.upper, idx, s), q)
		if u >= t.kpl {
			u = t.kpl - 1
		}
		h.Touch(base+int64(1+t.kpl+s)*lineB, t.upperSeg.Kind) // ref line
		idx = int32(t.nodeRefs(t.upper, idx)[s*t.kpl+u])
	}
	base := t.lastSeg.Addr(int64(idx) * int64(t.nodeSlots) * sz)
	h.Touch(base, t.lastSeg.Kind)
	s := simd.Search(t.cfg.NodeSearch, t.indexLine(t.last, idx), q)
	if s >= t.kpl {
		s = t.kpl - 1
	}
	h.Touch(base+int64(1+s)*lineB, t.lastSeg.Kind)
	u := simd.Search(t.cfg.NodeSearch, t.keyLine(t.last, idx, s), q)
	if u >= t.kpl {
		u = t.kpl - 1
	}
	c := s*t.kpl + u
	h.Touch(t.leafSeg.Addr((int64(idx)*int64(t.leafSlots)+int64(c*t.kpl))*sz), t.leafSeg.Kind)
	return t.SearchLeafLine(idx, c, q)
}

// RangeQuery returns up to count pairs with key >= start in key order,
// scanning the packed big leaves through the sibling chain. Leaves
// carrying delta entries are merged on the fly (delta.go), so the scan
// stays globally ordered with tombstones suppressed.
func (t *RegularTree[K]) RangeQuery(start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	b, c := t.SearchToLeaf(start)
	return t.rangeFrom(b, c, start, count, out)
}

// rangeFrom is the shared leaf-chain walk of RangeQuery and
// RangeFromRef, starting at leaf line c of big leaf b.
func (t *RegularTree[K]) rangeFrom(b int32, c int, start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	i, _ := simd.SearchPairsLine(t.leafLine(b, c), start)
	pos := c*t.ppl + i
	first := true
	var s leafScan[K]
	for b != nilRef && len(out) < count {
		m := &t.leafMeta[b]
		np := int(m.npairs)
		data := t.leafPairs(b)
		if m.ndelta == 0 {
			for ; pos < np && len(out) < count; pos++ {
				out = append(out, keys.Pair[K]{Key: data[2*pos], Value: data[2*pos+1]})
			}
		} else {
			t.buildLeafScan(b, &s)
			di := 0
			if first {
				for di < s.n && s.keys[di] < start {
					di++
				}
			}
			for len(out) < count && (pos < np || di < s.n) {
				haveB, haveD := pos < np, di < s.n
				if haveD && (!haveB || s.keys[di] <= data[2*pos]) {
					if haveB && s.keys[di] == data[2*pos] {
						pos++
					}
					if !s.tomb[di] {
						out = append(out, keys.Pair[K]{Key: s.keys[di], Value: s.vals[di]})
					}
					di++
					continue
				}
				out = append(out, keys.Pair[K]{Key: data[2*pos], Value: data[2*pos+1]})
				pos++
			}
			if pos < np || di < s.n {
				return out // count reached mid-leaf
			}
		}
		b = m.next
		pos = 0
		first = false
	}
	return out
}

// Stats reports the tree geometry.
func (t *RegularTree[K]) Stats() Stats {
	sz := int64(keys.Size[K]())
	return Stats{
		NumPairs:      t.numPairs,
		Height:        t.height,
		InnerBytes:    (int64(len(t.upper)) + int64(len(t.last))) * sz,
		LeafBytes:     int64(len(t.leafData)) * sz,
		LinesPerQuery: 3 * t.height,
	}
}

// Height returns H (leaves at height 0, last-level inner nodes at 1).
func (t *RegularTree[K]) Height() int { return t.height }

// Fanout returns F_I of the inner nodes.
func (t *RegularTree[K]) Fanout() int { return t.fanout }

// NumPairs returns the number of stored pairs.
func (t *RegularTree[K]) NumPairs() int { return t.numPairs }

// LeafCapacity returns the pair capacity of one big leaf.
func (t *RegularTree[K]) LeafCapacity() int { return t.leafCap }

// InnerArrays exposes the raw inner pools (the I-segment mirrored to GPU
// memory) together with the node geometry.
func (t *RegularTree[K]) InnerArrays() (upper, last []K, root int32, height, nodeSlots, kpl int) {
	return t.upper, t.last, t.root, t.height, t.nodeSlots, t.kpl
}

// Config returns the build configuration.
func (t *RegularTree[K]) Config() Config { return t.cfg }

// Root returns the root node index and whether it lives in the upper
// pool (height >= 2) or the last-level pool.
func (t *RegularTree[K]) Root() (idx int32, inUpper bool) { return t.root, t.height >= 2 }

// LevelNodeCounts returns the number of inner nodes at each level, root
// first; the last entry is the last-level node count. The cost model
// uses these to size the cache-resident prefix of the I-segment.
func (t *RegularTree[K]) LevelNodeCounts() []int {
	counts := make([]int, t.height)
	if t.height == 1 {
		counts[0] = 1
		return counts
	}
	level := []int32{t.root}
	for h := t.height; h >= 2; h-- {
		counts[t.height-h] = len(level)
		next := make([]int32, 0, len(level)*t.fanout)
		for _, u := range level {
			rs := t.nodeRefs(t.upper, u)
			n := int(t.upperMeta[u].nchild)
			for j := 0; j < n; j++ {
				next = append(next, int32(rs[j]))
			}
		}
		level = next
	}
	counts[t.height-1] = len(level)
	return counts
}

// WalkToHeight descends from the root until reaching a node of the given
// height (>= 1) and returns its index — in the upper pool for heights
// >= 2, in the last-level pool for height 1. It is the CPU's share of a
// load-balanced lookup (Section 5.5).
func (t *RegularTree[K]) WalkToHeight(q K, stopHeight int) int32 {
	if stopHeight < 1 {
		stopHeight = 1
	}
	idx := t.root
	for h := t.height; h > stopHeight && h >= 2; h-- {
		c := t.searchNode(t.upper, idx, q)
		idx = int32(t.nodeRefs(t.upper, idx)[c])
	}
	return idx
}

// Segments returns the simulated address ranges of the upper-inner,
// last-level-inner and leaf pools (for memory-hierarchy instrumentation).
func (t *RegularTree[K]) Segments() (upperSeg, lastSeg, leafSeg mem.Segment) {
	return t.upperSeg, t.lastSeg, t.leafSeg
}

// LookupScanAblation performs a lookup that ignores the index line and
// scans the node's full separator array instead — the ablation baseline
// quantifying the three-line node search of Figure 2(c). Only benchmarks
// use it.
func (t *RegularTree[K]) LookupScanAblation(q K) (K, bool) {
	idx := t.root
	for h := t.height; h >= 2; h-- {
		c := simd.SearchLinear(t.nodeKeys(t.upper, idx), q)
		if c >= t.fanout {
			c = t.fanout - 1
		}
		idx = int32(t.nodeRefs(t.upper, idx)[c])
	}
	c := simd.SearchLinear(t.nodeKeys(t.last, idx), q)
	if c >= t.fanout {
		c = t.fanout - 1
	}
	return t.SearchLeafLine(idx, c, q)
}

// RangeFromRef scans up to count pairs with key >= start beginning at
// leaf line c of big leaf b (as resolved by a GPU inner traversal),
// without touching the I-segment — the CPU stage of a hybrid range
// query.
func (t *RegularTree[K]) RangeFromRef(b int32, c int, start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	if b < 0 || int(b) >= len(t.leafMeta) || c < 0 || c >= t.fanout {
		return out
	}
	return t.rangeFrom(b, c, start, count, out)
}
