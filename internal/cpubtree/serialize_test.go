package cpubtree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"hbtree/internal/workload"
)

func TestImplicitRoundTrip(t *testing.T) {
	for _, n := range []int{1, 37, 5000, 100000} {
		pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
		tr, err := BuildImplicit(pairs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		written, err := tr.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if written != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", written, buf.Len())
		}
		rt, err := ReadImplicit[uint64](&buf, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Height() != tr.Height() || rt.Stats() != tr.Stats() {
			t.Fatalf("geometry diverges: %+v vs %+v", rt.Stats(), tr.Stats())
		}
		for i := 0; i < len(pairs); i += 1 + len(pairs)/500 {
			p := pairs[i]
			if v, ok := rt.Lookup(p.Key); !ok || v != p.Value {
				t.Fatalf("n=%d: loaded tree Lookup(%d) failed", n, p.Key)
			}
		}
	}
}

func TestImplicitRoundTrip32(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 20000, 7)
	tr, err := BuildImplicit(pairs, Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadImplicit[uint32](&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Fanout() != 16 {
		t.Fatalf("fanout %d", rt.Fanout())
	}
	for _, p := range pairs[:500] {
		if v, ok := rt.Lookup(p.Key); !ok || v != p.Value {
			t.Fatalf("Lookup(%d) failed", p.Key)
		}
	}
}

func TestRegularRoundTripAfterUpdates(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 30000, 3)
	tr, err := BuildRegular(pairs, Config{LeafFill: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate so free lists, splits and unlinks are all exercised.
	r := workload.NewRNG(9)
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	for i := 0; i < 20000; i++ {
		if r.Intn(3) == 0 {
			k := pairs[r.Intn(len(pairs))].Key
			tr.Delete(k)
			delete(oracle, k)
		} else {
			k := r.Uint64()
			if k == ^uint64(0) {
				continue
			}
			tr.Insert(k, k^7)
			oracle[k] = k ^ 7
		}
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadRegular[uint64](&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumPairs() != len(oracle) {
		t.Fatalf("NumPairs %d != %d", rt.NumPairs(), len(oracle))
	}
	for k, v := range oracle {
		if got, ok := rt.Lookup(k); !ok || got != v {
			t.Fatalf("loaded Lookup(%d) = (%d,%v), want %d", k, got, ok, v)
		}
	}
	// The loaded tree must remain updatable (free lists intact).
	if _, err := rt.Insert(12345, 1); err != nil {
		t.Fatal(err)
	}
	if found, _ := rt.Delete(12345); !found {
		t.Fatal("post-load delete failed")
	}
	// Range scans use the restored leaf chain.
	out := rt.RangeQuery(0, 100, nil)
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatal("restored leaf chain out of order")
		}
	}
}

func TestSerializeErrors(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1000, 1)
	impl, _ := BuildImplicit(pairs, Config{})
	reg, _ := BuildRegular(pairs, Config{})
	var ibuf, rbuf bytes.Buffer
	if _, err := impl.WriteTo(&ibuf); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.WriteTo(&rbuf); err != nil {
		t.Fatal(err)
	}

	// Wrong kind.
	if _, err := ReadRegular[uint64](bytes.NewReader(ibuf.Bytes()), Config{}); err == nil {
		t.Fatal("implicit image accepted as regular")
	}
	if _, err := ReadImplicit[uint64](bytes.NewReader(rbuf.Bytes()), Config{}); err == nil {
		t.Fatal("regular image accepted as implicit")
	}
	// Wrong width.
	if _, err := ReadImplicit[uint32](bytes.NewReader(ibuf.Bytes()), Config{}); err == nil {
		t.Fatal("64-bit image accepted as 32-bit")
	}
	// Bad magic.
	bad := append([]byte("NOPE"), ibuf.Bytes()[4:]...)
	if _, err := ReadImplicit[uint64](bytes.NewReader(bad), Config{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
	// Truncations at every strategic boundary.
	for _, cut := range []int{0, 3, 6, 20, ibuf.Len() / 2, ibuf.Len() - 4} {
		if _, err := ReadImplicit[uint64](bytes.NewReader(ibuf.Bytes()[:cut]), Config{}); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for _, cut := range []int{6, 40, rbuf.Len() / 2, rbuf.Len() - 4} {
		if _, err := ReadRegular[uint64](bytes.NewReader(rbuf.Bytes()[:cut]), Config{}); err == nil {
			t.Fatalf("regular truncation at %d accepted", cut)
		}
	}
	// Corrupt geometry: absurd fanout.
	img := append([]byte(nil), ibuf.Bytes()...)
	img[6] = 0xFF // low byte of fanout
	if _, err := ReadImplicit[uint64](bytes.NewReader(img), Config{}); err == nil {
		t.Fatal("corrupt fanout accepted")
	}
}

// TestSerializeTypedErrors pins the decode error taxonomy: format
// violations surface ErrCorruptImage, short reads ErrTruncatedImage,
// and the two never blur — the distinction the durability layer's
// recovery reporting relies on.
func TestSerializeTypedErrors(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 2000, 11)
	impl, _ := BuildImplicit(pairs, Config{})
	reg, _ := BuildRegular(pairs, Config{})
	var ibuf, rbuf bytes.Buffer
	impl.WriteTo(&ibuf)
	reg.WriteTo(&rbuf)

	wantCorrupt := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, ErrCorruptImage) {
			t.Fatalf("%s: err %v, want ErrCorruptImage", what, err)
		}
		if errors.Is(err, ErrTruncatedImage) {
			t.Fatalf("%s: corrupt error also matches truncated: %v", what, err)
		}
	}
	wantTruncated := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, ErrTruncatedImage) {
			t.Fatalf("%s: err %v, want ErrTruncatedImage", what, err)
		}
		if errors.Is(err, ErrCorruptImage) {
			t.Fatalf("%s: truncated error also matches corrupt: %v", what, err)
		}
	}

	// Corruptions.
	bad := append([]byte("NOPE"), ibuf.Bytes()[4:]...)
	_, err := ReadImplicit[uint64](bytes.NewReader(bad), Config{})
	wantCorrupt("bad magic", err)
	_, err = ReadRegular[uint64](bytes.NewReader(ibuf.Bytes()), Config{})
	wantCorrupt("wrong kind", err)
	_, err = ReadImplicit[uint32](bytes.NewReader(ibuf.Bytes()), Config{})
	wantCorrupt("wrong width", err)

	img := append([]byte(nil), ibuf.Bytes()...)
	img[6] = 0xFF
	_, err = ReadImplicit[uint64](bytes.NewReader(img), Config{})
	wantCorrupt("absurd fanout", err)

	img = append([]byte(nil), ibuf.Bytes()...)
	binary.LittleEndian.PutUint64(img[len(img)-8:], 0xdeadbeef) // end marker
	_, err = ReadImplicit[uint64](bytes.NewReader(img), Config{})
	wantCorrupt("bad end marker", err)

	// Regular-tree link corruption: point the root far outside its pool.
	img = append([]byte(nil), rbuf.Bytes()...)
	binary.LittleEndian.PutUint64(img[6+16:6+24], 1<<30) // root field
	_, err = ReadRegular[uint64](bytes.NewReader(img), Config{})
	wantCorrupt("root outside pool", err)

	// Regular-tree link corruption: break the leaf chain head.
	img = append([]byte(nil), rbuf.Bytes()...)
	binary.LittleEndian.PutUint64(img[6+24:6+32], 1<<30) // headLeaf field
	_, err = ReadRegular[uint64](bytes.NewReader(img), Config{})
	wantCorrupt("leaf chain endpoint outside pool", err)

	// Short reads: every strategic truncation is typed as truncated, not
	// corrupt (the header itself excepted — 0 bytes has no format to
	// violate, it is just short).
	for _, cut := range []int{0, 3, 6, 20, ibuf.Len() / 2, ibuf.Len() - 4} {
		_, err := ReadImplicit[uint64](bytes.NewReader(ibuf.Bytes()[:cut]), Config{})
		wantTruncated("implicit truncation", err)
	}
	for _, cut := range []int{6, 40, rbuf.Len() / 2, rbuf.Len() - 4} {
		_, err := ReadRegular[uint64](bytes.NewReader(rbuf.Bytes()[:cut]), Config{})
		wantTruncated("regular truncation", err)
	}
}
