package cpubtree

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hbtree/internal/keys"
)

// Serialization of built trees: a versioned little-endian binary image
// so an index bulk-loaded once (the expensive phase of Figure 15) can be
// persisted and re-opened without reconstruction. The format stores the
// exact in-memory node pools; loading re-registers the segments with a
// fresh simulated allocator.
//
// Decode failures are typed: ErrCorruptImage for bytes that violate the
// format (bad magic, impossible geometry, inconsistent pools),
// ErrTruncatedImage for an image that ends mid-field — the distinction
// the durability layer surfaces, since a truncated snapshot points at an
// interrupted write while a corrupt one points at storage damage.

// ErrCorruptImage reports a tree image whose bytes violate the format:
// wrong magic, kind or key width, impossible geometry, or node pools
// inconsistent with their metadata.
var ErrCorruptImage = errors.New("cpubtree: corrupt tree image")

// ErrTruncatedImage reports a tree image that ends before the encoding
// is complete (a short read mid-field or a missing end marker).
var ErrTruncatedImage = errors.New("cpubtree: truncated tree image")

// corruptf wraps ErrCorruptImage with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorruptImage}, args...)...)
}

// readErr classifies a raw decode I/O error: EOF mid-structure is a
// truncated image; anything else passes through as the I/O failure it
// is.
func readErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncatedImage, err)
	}
	return err
}

// Format identifiers.
const (
	serialMagic    = "HBT1"
	kindImplicit   = byte(1)
	kindRegular    = byte(2)
	serialEndCheck = uint64(0x454E445F48425421) // "END_HBT!"
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader[K keys.Key](w io.Writer, kind byte) error {
	if _, err := io.WriteString(w, serialMagic); err != nil {
		return err
	}
	bits := byte(keys.Size[K]() * 8)
	_, err := w.Write([]byte{kind, bits})
	return err
}

func readHeader[K keys.Key](r io.Reader, wantKind byte) error {
	buf := make([]byte, 6)
	if _, err := io.ReadFull(r, buf); err != nil {
		return readErr(err)
	}
	if string(buf[:4]) != serialMagic {
		return corruptf("bad magic %q", buf[:4])
	}
	if buf[4] != wantKind {
		return corruptf("tree kind %d, want %d", buf[4], wantKind)
	}
	if bits := byte(keys.Size[K]() * 8); buf[5] != bits {
		return corruptf("key width %d bits, want %d", buf[5], bits)
	}
	return nil
}

func writeInts(w io.Writer, vs ...uint64) error {
	return binary.Write(w, binary.LittleEndian, vs)
}

func readInts(r io.Reader, vs ...*uint64) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return readErr(err)
		}
	}
	return nil
}

func writeSliceK[K keys.Key](w io.Writer, s []K) error {
	if err := writeInts(w, uint64(len(s))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, s)
}

func readSliceK[K keys.Key](r io.Reader, limit uint64) ([]K, error) {
	var n uint64
	if err := readInts(r, &n); err != nil {
		return nil, err
	}
	if n > limit {
		return nil, corruptf("slice length %d exceeds limit %d", n, limit)
	}
	s := make([]K, n)
	if err := binary.Read(r, binary.LittleEndian, s); err != nil {
		return nil, readErr(err)
	}
	return s, nil
}

// sliceLimit bounds on-disk slice lengths to catch corrupt images before
// huge allocations.
const sliceLimit = 1 << 34

// WriteTo serialises the implicit tree; it returns the bytes written.
func (t *ImplicitTree[K]) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader[K](bw, kindImplicit); err != nil {
		return cw.n, err
	}
	if t.UniformLayout() {
		if err := writeInts(bw, uint64(t.fanout), uint64(t.numPairs), uint64(t.numLeaves), uint64(t.height)); err != nil {
			return cw.n, err
		}
	} else {
		// Tuned layouts write a fanout=0 sentinel (invalid as a real
		// fanout, so old readers reject rather than misread the image)
		// followed by the base fanout and the per-level geometry table.
		// Uniform trees take the branch above and stay byte-identical to
		// the historical format.
		if err := writeInts(bw, 0, uint64(t.numPairs), uint64(t.numLeaves), uint64(t.height), uint64(t.fanout)); err != nil {
			return cw.n, err
		}
		for d := 0; d < t.height; d++ {
			if err := writeInts(bw, uint64(t.levelKpn[d]), uint64(t.levelFanout[d])); err != nil {
				return cw.n, err
			}
		}
	}
	lv := make([]uint64, t.height)
	for i, n := range t.levelNodes {
		lv[i] = uint64(n)
	}
	if err := binary.Write(bw, binary.LittleEndian, lv); err != nil {
		return cw.n, err
	}
	if err := writeSliceK(bw, t.inner); err != nil {
		return cw.n, err
	}
	if err := writeSliceK(bw, t.leaves); err != nil {
		return cw.n, err
	}
	if err := writeInts(bw, serialEndCheck); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadImplicit deserialises an implicit tree written by WriteTo,
// registering fresh simulated segments per cfg's page configuration.
func ReadImplicit[K keys.Key](r io.Reader, cfg Config) (*ImplicitTree[K], error) {
	cfg.fillDefaults()
	br := bufio.NewReader(r)
	if err := readHeader[K](br, kindImplicit); err != nil {
		return nil, err
	}
	var fanout, numPairs, numLeaves, height uint64
	if err := readInts(br, &fanout, &numPairs, &numLeaves, &height); err != nil {
		return nil, err
	}
	kpn := keys.PerLine[K]()
	tuned := fanout == 0 // sentinel: per-level geometry table follows
	if tuned {
		if err := readInts(br, &fanout); err != nil {
			return nil, err
		}
	}
	if fanout < 2 || fanout > uint64(kpn+1) || height == 0 || height > 64 {
		return nil, corruptf("implicit geometry (fanout %d, height %d)", fanout, height)
	}
	if numPairs > sliceLimit || numLeaves > sliceLimit || numPairs > numLeaves*uint64(kpn) {
		return nil, corruptf("implicit geometry (%d pairs in %d leaf lines)", numPairs, numLeaves)
	}
	t := &ImplicitTree[K]{
		cfg:       cfg,
		kpn:       kpn,
		fanout:    int(fanout),
		pairsLine: kpn / 2,
		numPairs:  int(numPairs),
		numLeaves: int(numLeaves),
		height:    int(height),
	}
	t.levelKpn = make([]int, height)
	t.levelFanout = make([]int, height)
	for i := range t.levelKpn {
		t.levelKpn[i], t.levelFanout[i] = kpn, int(fanout)
	}
	if tuned {
		var widths []int
		for i := 0; i < int(height); i++ {
			var lk, lf uint64
			if err := readInts(br, &lk, &lf); err != nil {
				return nil, err
			}
			if lk < uint64(kpn) || lk%uint64(kpn) != 0 || lk > maxImplicitWidth || lf < 2 || lf > lk+1 {
				return nil, corruptf("implicit level %d geometry (kpn %d, fanout %d)", i, lk, lf)
			}
			t.levelKpn[i], t.levelFanout[i] = int(lk), int(lf)
			if int(lk) != kpn || int(lf) != int(fanout) {
				for len(widths) < i {
					widths = append(widths, 0) // base geometry for this level
				}
				widths = append(widths, int(lk))
			}
		}
		// Preserve the layout policy so a Rebuild of the loaded tree
		// re-derives a tuned layout rather than silently going uniform.
		t.cfg.RootWidths = widths
	}
	lv := make([]uint64, height)
	if err := binary.Read(br, binary.LittleEndian, lv); err != nil {
		return nil, readErr(err)
	}
	t.levelNodes = make([]int, height)
	t.levelOff = make([]int, height)
	t.levelSlot = make([]int, height)
	total, slots := uint64(0), uint64(0)
	for i, n := range lv {
		t.levelOff[i] = int(total)
		t.levelSlot[i] = int(slots)
		t.levelNodes[i] = int(n)
		total += n
		slots += n * uint64(t.levelKpn[i])
		if n == 0 || slots > sliceLimit {
			return nil, corruptf("implicit level %d holds %d nodes (total %d)", i, n, total)
		}
	}
	var err error
	if t.inner, err = readSliceK[K](br, sliceLimit); err != nil {
		return nil, err
	}
	if t.leaves, err = readSliceK[K](br, sliceLimit); err != nil {
		return nil, err
	}
	if uint64(len(t.inner)) != slots {
		return nil, corruptf("inner array %d keys for %d nodes", len(t.inner), total)
	}
	if len(t.leaves) != t.numLeaves*kpn {
		return nil, corruptf("leaf array %d keys for %d lines", len(t.leaves), t.numLeaves)
	}
	var end uint64
	if err := readInts(br, &end); err != nil {
		return nil, err
	}
	if end != serialEndCheck {
		return nil, corruptf("bad end marker %#x", end)
	}
	sz := int64(keys.Size[K]())
	t.iseg = cfg.Alloc.Alloc(int64(len(t.inner))*sz, cfg.ISegPages)
	t.lseg = cfg.Alloc.Alloc(int64(len(t.leaves))*sz, cfg.LSegPages)
	return t, nil
}

// WriteTo serialises the regular tree (node pools, metadata, free lists
// and the leaf chain); it returns the bytes written.
func (t *RegularTree[K]) WriteTo(w io.Writer) (int64, error) {
	if t.deltaLeaves > 0 {
		// The image format stores packed leaves only: compact the delta
		// regions on a private copy first. The clone has no deltas, so
		// this recurses at most once.
		return t.Clone().WriteTo(w)
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := writeHeader[K](bw, kindRegular); err != nil {
		return cw.n, err
	}
	if err := writeInts(bw,
		uint64(t.numPairs), uint64(t.height), uint64(uint32(t.root)),
		uint64(uint32(t.headLeaf)), uint64(uint32(t.tailLeaf))); err != nil {
		return cw.n, err
	}
	if err := writeSliceK(bw, t.upper); err != nil {
		return cw.n, err
	}
	if err := writeSliceK(bw, t.last); err != nil {
		return cw.n, err
	}
	if err := writeSliceK(bw, t.leafData); err != nil {
		return cw.n, err
	}
	writeMeta := func(ms []nodeMeta) error {
		if err := writeInts(bw, uint64(len(ms))); err != nil {
			return err
		}
		for _, m := range ms {
			if err := binary.Write(bw, binary.LittleEndian, []int32{m.nchild, m.parent}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeMeta(t.upperMeta); err != nil {
		return cw.n, err
	}
	if err := writeMeta(t.lastMeta); err != nil {
		return cw.n, err
	}
	if err := writeInts(bw, uint64(len(t.leafMeta))); err != nil {
		return cw.n, err
	}
	for _, m := range t.leafMeta {
		if err := binary.Write(bw, binary.LittleEndian, []int32{m.npairs, m.next, m.prev}); err != nil {
			return cw.n, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.freeUpper))); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.freeUpper); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.freeLast))); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.freeLast); err != nil {
		return cw.n, err
	}
	if err := writeInts(bw, serialEndCheck); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadRegular deserialises a regular tree written by WriteTo.
func ReadRegular[K keys.Key](r io.Reader, cfg Config) (*RegularTree[K], error) {
	cfg.fillDefaults()
	br := bufio.NewReader(r)
	if err := readHeader[K](br, kindRegular); err != nil {
		return nil, err
	}
	var numPairs, height, root, head, tail uint64
	if err := readInts(br, &numPairs, &height, &root, &head, &tail); err != nil {
		return nil, err
	}
	if height == 0 || height > 16 {
		return nil, corruptf("regular geometry (height %d)", height)
	}
	if numPairs > sliceLimit {
		return nil, corruptf("regular geometry (%d pairs)", numPairs)
	}
	kpl := keys.PerLine[K]()
	t := &RegularTree[K]{
		cfg:       cfg,
		kpl:       kpl,
		fanout:    kpl * kpl,
		ppl:       kpl / 2,
		nodeSlots: kpl * (1 + 2*kpl),
		numPairs:  int(numPairs),
		height:    int(height),
		root:      int32(uint32(root)),
		headLeaf:  int32(uint32(head)),
		tailLeaf:  int32(uint32(tail)),
	}
	t.leafCap = t.fanout * t.ppl
	t.leafSlots = t.fanout * t.kpl
	var err error
	if t.upper, err = readSliceK[K](br, sliceLimit); err != nil {
		return nil, err
	}
	if t.last, err = readSliceK[K](br, sliceLimit); err != nil {
		return nil, err
	}
	if t.leafData, err = readSliceK[K](br, sliceLimit); err != nil {
		return nil, err
	}
	readMeta := func() ([]nodeMeta, error) {
		var n uint64
		if err := readInts(br, &n); err != nil {
			return nil, err
		}
		if n > sliceLimit {
			return nil, corruptf("meta length %d", n)
		}
		ms := make([]nodeMeta, n)
		for i := range ms {
			var v [2]int32
			if err := binary.Read(br, binary.LittleEndian, v[:]); err != nil {
				return nil, readErr(err)
			}
			ms[i] = nodeMeta{nchild: v[0], parent: v[1]}
		}
		return ms, nil
	}
	if t.upperMeta, err = readMeta(); err != nil {
		return nil, err
	}
	if t.lastMeta, err = readMeta(); err != nil {
		return nil, err
	}
	var nLeafMeta uint64
	if err := readInts(br, &nLeafMeta); err != nil {
		return nil, err
	}
	if nLeafMeta > sliceLimit {
		return nil, corruptf("leaf meta length %d", nLeafMeta)
	}
	t.leafMeta = make([]leafMeta, nLeafMeta)
	for i := range t.leafMeta {
		var v [3]int32
		if err := binary.Read(br, binary.LittleEndian, v[:]); err != nil {
			return nil, readErr(err)
		}
		t.leafMeta[i] = leafMeta{npairs: v[0], next: v[1], prev: v[2]}
	}
	readFree := func() ([]int32, error) {
		var n uint64
		if err := readInts(br, &n); err != nil {
			return nil, err
		}
		if n > sliceLimit {
			return nil, corruptf("free list length %d", n)
		}
		fs := make([]int32, n)
		if err := binary.Read(br, binary.LittleEndian, fs); err != nil {
			return nil, readErr(err)
		}
		return fs, nil
	}
	if t.freeUpper, err = readFree(); err != nil {
		return nil, err
	}
	if t.freeLast, err = readFree(); err != nil {
		return nil, err
	}
	var end uint64
	if err := readInts(br, &end); err != nil {
		return nil, err
	}
	if end != serialEndCheck {
		return nil, corruptf("bad end marker %#x", end)
	}
	// Structural sanity before first use.
	if len(t.upper)%t.nodeSlots != 0 || len(t.last)%t.nodeSlots != 0 {
		return nil, corruptf("pool sizes not node-aligned (%d/%d keys, %d slots per node)",
			len(t.upper), len(t.last), t.nodeSlots)
	}
	if len(t.upperMeta) != len(t.upper)/t.nodeSlots {
		return nil, corruptf("upper metadata %d entries for %d nodes", len(t.upperMeta), len(t.upper)/t.nodeSlots)
	}
	if len(t.lastMeta) != len(t.last)/t.nodeSlots || len(t.leafMeta) != len(t.lastMeta) {
		return nil, corruptf("last metadata %d / leaf metadata %d for %d nodes",
			len(t.lastMeta), len(t.leafMeta), len(t.last)/t.nodeSlots)
	}
	if len(t.leafData) != len(t.leafMeta)*t.leafSlots {
		return nil, corruptf("leaf data %d keys for %d leaf groups", len(t.leafData), len(t.leafMeta))
	}
	// Link sanity: the root must index the pool its height implies, the
	// leaf chain endpoints must be real leaf groups, and every meta link
	// must stay inside its pool — a corrupt image must fail here, not as
	// an index panic on first use.
	nUpper, nLast := int32(len(t.upperMeta)), int32(len(t.lastMeta))
	rootPool := nUpper
	if t.height < 2 {
		rootPool = nLast
	}
	if t.root < 0 || t.root >= rootPool {
		return nil, corruptf("root %d outside its pool of %d nodes", t.root, rootPool)
	}
	if t.headLeaf < 0 || t.headLeaf >= nLast || t.tailLeaf < 0 || t.tailLeaf >= nLast {
		return nil, corruptf("leaf chain endpoints %d..%d outside %d leaf groups", t.headLeaf, t.tailLeaf, nLast)
	}
	for i, m := range t.upperMeta {
		if m.nchild < 0 || int(m.nchild) > t.fanout || m.parent < -1 || m.parent >= nUpper {
			return nil, corruptf("upper node %d meta (nchild %d, parent %d)", i, m.nchild, m.parent)
		}
	}
	for i, m := range t.lastMeta {
		if m.nchild < 0 || int(m.nchild) > t.fanout || m.parent < -1 || m.parent >= nUpper {
			return nil, corruptf("last node %d meta (nchild %d, parent %d)", i, m.nchild, m.parent)
		}
	}
	for i, m := range t.leafMeta {
		if m.npairs < 0 || int(m.npairs) > t.leafCap || m.next < -1 || m.next >= nLast || m.prev < -1 || m.prev >= nLast {
			return nil, corruptf("leaf group %d meta (npairs %d, next %d, prev %d)", i, m.npairs, m.next, m.prev)
		}
	}
	for i, fi := range t.freeUpper {
		if fi < 0 || fi >= nUpper {
			return nil, corruptf("free upper entry %d = %d outside %d nodes", i, fi, nUpper)
		}
	}
	for i, fi := range t.freeLast {
		if fi < 0 || fi >= nLast {
			return nil, corruptf("free last entry %d = %d outside %d nodes", i, fi, nLast)
		}
	}
	sz := int64(keys.Size[K]())
	t.upperSeg = cfg.Alloc.Alloc(int64(len(t.upper))*sz, cfg.ISegPages)
	t.lastSeg = cfg.Alloc.Alloc(int64(len(t.last))*sz, cfg.ISegPages)
	t.leafSeg = cfg.Alloc.Alloc(int64(len(t.leafData))*sz, cfg.LSegPages)
	return t, nil
}
