package cpubtree

import (
	"hbtree/internal/keys"
	"hbtree/internal/simd"
)

// Cursor is a forward iterator over a tree's pairs in key order. Both
// tree organisations provide one; the HB+-tree and the public API expose
// them for streaming scans whose extent is not known up front (unlike
// RangeQuery's fixed count).
//
// A cursor is a read-only view: using it concurrently with updates is
// not supported (the paper's use cases separate lookup and bulk-update
// phases).
type Cursor[K keys.Key] interface {
	// Next returns the next pair, or ok=false when the scan is done.
	Next() (p keys.Pair[K], ok bool)
}

// implicitCursor walks the implicit tree's sequential leaf lines.
type implicitCursor[K keys.Key] struct {
	t    *ImplicitTree[K]
	line int
	idx  int
}

// Seek returns a cursor positioned at the first key >= start.
func (t *ImplicitTree[K]) Seek(start K) Cursor[K] {
	l := t.SearchInner(start)
	i, _ := simd.SearchPairsLine(t.leafLine(l), start)
	return &implicitCursor[K]{t: t, line: l, idx: i}
}

// Next implements Cursor.
func (c *implicitCursor[K]) Next() (keys.Pair[K], bool) {
	maxK := keys.Max[K]()
	for c.line < c.t.numLeaves {
		line := c.t.leafLine(c.line)
		for c.idx < c.t.pairsLine {
			k := line[2*c.idx]
			if k == maxK {
				// Padding: the data ends here.
				c.line = c.t.numLeaves
				return keys.Pair[K]{}, false
			}
			p := keys.Pair[K]{Key: k, Value: line[2*c.idx+1]}
			c.idx++
			return p, true
		}
		c.line++
		c.idx = 0
	}
	return keys.Pair[K]{}, false
}

// regularCursor walks the regular tree's big-leaf chain, merging each
// leaf's delta region (delta.go) into the packed base pairs on the fly
// so the stream stays sorted with tombstones suppressed.
type regularCursor[K keys.Key] struct {
	t    *RegularTree[K]
	leaf int32
	pos  int // next base pair position

	scan     leafScan[K] // merged delta view of scanLeaf
	di       int         // next delta entry in scan
	scanLeaf int32       // leaf scan was built for; nilRef when none
}

// Seek returns a cursor positioned at the first key >= start.
func (t *RegularTree[K]) Seek(start K) Cursor[K] {
	b, c := t.SearchToLeaf(start)
	i, _ := simd.SearchPairsLine(t.leafLine(b, c), start)
	cur := &regularCursor[K]{t: t, leaf: b, pos: c*t.ppl + i, scanLeaf: nilRef}
	if t.leafMeta[b].ndelta > 0 {
		t.buildLeafScan(b, &cur.scan)
		cur.scanLeaf = b
		for cur.di < cur.scan.n && cur.scan.keys[cur.di] < start {
			cur.di++
		}
	}
	return cur
}

// Next implements Cursor.
func (c *regularCursor[K]) Next() (keys.Pair[K], bool) {
	t := c.t
	for c.leaf != nilRef {
		m := &t.leafMeta[c.leaf]
		np := int(m.npairs)
		if m.ndelta == 0 {
			if c.pos < np {
				data := t.leafPairs(c.leaf)
				p := keys.Pair[K]{Key: data[2*c.pos], Value: data[2*c.pos+1]}
				c.pos++
				return p, true
			}
		} else {
			if c.scanLeaf != c.leaf {
				t.buildLeafScan(c.leaf, &c.scan)
				c.scanLeaf = c.leaf
				c.di = 0
			}
			data := t.leafPairs(c.leaf)
			for c.pos < np || c.di < c.scan.n {
				haveB, haveD := c.pos < np, c.di < c.scan.n
				if haveD && (!haveB || c.scan.keys[c.di] <= data[2*c.pos]) {
					if haveB && c.scan.keys[c.di] == data[2*c.pos] {
						c.pos++
					}
					j := c.di
					c.di++
					if c.scan.tomb[j] {
						continue
					}
					return keys.Pair[K]{Key: c.scan.keys[j], Value: c.scan.vals[j]}, true
				}
				p := keys.Pair[K]{Key: data[2*c.pos], Value: data[2*c.pos+1]}
				c.pos++
				return p, true
			}
		}
		c.leaf = m.next
		c.pos = 0
	}
	return keys.Pair[K]{}, false
}
