package cpubtree

import (
	"hbtree/internal/keys"
	"hbtree/internal/simd"
)

// Cursor is a forward iterator over a tree's pairs in key order. Both
// tree organisations provide one; the HB+-tree and the public API expose
// them for streaming scans whose extent is not known up front (unlike
// RangeQuery's fixed count).
//
// A cursor is a read-only view: using it concurrently with updates is
// not supported (the paper's use cases separate lookup and bulk-update
// phases).
type Cursor[K keys.Key] interface {
	// Next returns the next pair, or ok=false when the scan is done.
	Next() (p keys.Pair[K], ok bool)
}

// implicitCursor walks the implicit tree's sequential leaf lines.
type implicitCursor[K keys.Key] struct {
	t    *ImplicitTree[K]
	line int
	idx  int
}

// Seek returns a cursor positioned at the first key >= start.
func (t *ImplicitTree[K]) Seek(start K) Cursor[K] {
	l := t.SearchInner(start)
	i, _ := simd.SearchPairsLine(t.leafLine(l), start)
	return &implicitCursor[K]{t: t, line: l, idx: i}
}

// Next implements Cursor.
func (c *implicitCursor[K]) Next() (keys.Pair[K], bool) {
	maxK := keys.Max[K]()
	for c.line < c.t.numLeaves {
		line := c.t.leafLine(c.line)
		for c.idx < c.t.pairsLine {
			k := line[2*c.idx]
			if k == maxK {
				// Padding: the data ends here.
				c.line = c.t.numLeaves
				return keys.Pair[K]{}, false
			}
			p := keys.Pair[K]{Key: k, Value: line[2*c.idx+1]}
			c.idx++
			return p, true
		}
		c.line++
		c.idx = 0
	}
	return keys.Pair[K]{}, false
}

// regularCursor walks the regular tree's big-leaf chain.
type regularCursor[K keys.Key] struct {
	t    *RegularTree[K]
	leaf int32
	pos  int
}

// Seek returns a cursor positioned at the first key >= start.
func (t *RegularTree[K]) Seek(start K) Cursor[K] {
	b, c := t.SearchToLeaf(start)
	i, _ := simd.SearchPairsLine(t.leafLine(b, c), start)
	return &regularCursor[K]{t: t, leaf: b, pos: c*t.ppl + i}
}

// Next implements Cursor.
func (c *regularCursor[K]) Next() (keys.Pair[K], bool) {
	for c.leaf != nilRef {
		np := int(c.t.leafMeta[c.leaf].npairs)
		if c.pos < np {
			data := c.t.leafPairs(c.leaf)
			p := keys.Pair[K]{Key: data[2*c.pos], Value: data[2*c.pos+1]}
			c.pos++
			return p, true
		}
		c.leaf = c.t.leafMeta[c.leaf].next
		c.pos = 0
	}
	return keys.Pair[K]{}, false
}
