package cpubtree

import (
	"fmt"

	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/simd"
)

// ImplicitTree is the paper's implicit B+-tree (Sections 3 and 4.1):
// nodes are arranged breadth-first in one array, child locations are
// computed rather than stored, and every inner and leaf node occupies
// exactly one 64-byte cache line. The CPU-optimized configuration packs
// eight 64-bit keys per inner node (fanout 9); the HB+-tree I-segment
// configuration reduces the fanout to 8 and pins the node's last key to
// MAX so that one warp of eight GPU threads covers node search and data
// access with the same shape (Section 5.2).
//
// The structure is static: updates rebuild the whole tree (Section 5.6).
type ImplicitTree[K keys.Key] struct {
	cfg Config

	kpn        int // key slots per inner node (one line: 8 or 16)
	fanout     int // children per inner node
	pairsLine  int // key-value pairs per leaf line (4 or 8)
	numPairs   int
	numLeaves  int // leaf lines
	height     int // H: number of inner levels; leaves at height 0
	levelNodes []int
	levelOff   []int // offset (in nodes) of each level, root first

	inner  []K // all inner nodes, breadth first, kpn keys each
	leaves []K // leaf lines, interleaved [k0 v0 k1 v1 ...]

	iseg mem.Segment
	lseg mem.Segment
}

// BuildImplicit bulk-loads an implicit tree from sorted, distinct pairs.
func BuildImplicit[K keys.Key](pairs []keys.Pair[K], cfg Config) (*ImplicitTree[K], error) {
	cfg.fillDefaults()
	kpn := keys.PerLine[K]()
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = kpn + 1 // CPU-optimized default: 9 (64-bit) / 17 (32-bit)
	}
	if fanout < 2 || fanout > kpn+1 {
		return nil, fmt.Errorf("cpubtree: implicit fanout %d out of range [2, %d]", fanout, kpn+1)
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("cpubtree: empty dataset")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			return nil, fmt.Errorf("cpubtree: pairs not sorted/distinct at %d", i)
		}
	}
	if pairs[len(pairs)-1].Key == keys.Max[K]() {
		return nil, fmt.Errorf("cpubtree: key MAX is reserved as sentinel")
	}

	t := &ImplicitTree[K]{
		cfg:       cfg,
		kpn:       kpn,
		fanout:    fanout,
		pairsLine: kpn / 2,
		numPairs:  len(pairs),
	}
	t.build(pairs)
	t.iseg = cfg.Alloc.Alloc(int64(len(t.inner))*int64(keys.Size[K]()), cfg.ISegPages)
	t.lseg = cfg.Alloc.Alloc(int64(len(t.leaves))*int64(keys.Size[K]()), cfg.LSegPages)
	return t, nil
}

// build fills the leaf lines and the breadth-first inner levels.
func (t *ImplicitTree[K]) build(pairs []keys.Pair[K]) {
	maxK := keys.Max[K]()
	t.numLeaves = (len(pairs) + t.pairsLine - 1) / t.pairsLine

	// Leaf lines, packed densely and padded with the MAX sentinel.
	t.leaves = make([]K, t.numLeaves*t.kpn)
	for i := range t.leaves {
		t.leaves[i] = maxK
	}
	lineMax := make([]K, t.numLeaves)
	for l := 0; l < t.numLeaves; l++ {
		start := l * t.pairsLine
		end := start + t.pairsLine
		if end > len(pairs) {
			end = len(pairs)
		}
		for j, p := range pairs[start:end] {
			t.leaves[l*t.kpn+2*j] = p.Key
			t.leaves[l*t.kpn+2*j+1] = p.Value
		}
		lineMax[l] = maxKeyOf(pairs[start:end])
	}

	// Inner levels, bottom-up. Level l has ceil(prev/fanout) nodes; the
	// keys of node i are the subtree maxima of its children, MAX for
	// absent children. The loop stops at a single root node; a dataset
	// small enough to fit one leaf line still gets one inner level so
	// that search code is uniform.
	type level struct {
		nodes []K
		maxes []K
	}
	var levels []level
	childMax := lineMax
	for {
		n := (len(childMax) + t.fanout - 1) / t.fanout
		if n < 1 {
			n = 1
		}
		lv := level{nodes: make([]K, n*t.kpn), maxes: make([]K, n)}
		for i := range lv.nodes {
			lv.nodes[i] = maxK
		}
		for i := 0; i < n; i++ {
			first := i * t.fanout
			nch := len(childMax) - first
			if nch > t.fanout {
				nch = t.fanout
			}
			// Slot j holds the separator between children j and j+1 —
			// the subtree maximum of child j. The last child needs no
			// separator: with a full fanout-(kpn+1) node it is reached
			// by exceeding all kpn keys, otherwise its slot stays MAX
			// (the paper pins trailing slots, including K_8 of the
			// fanout-8 HB+ nodes, to the maximum value).
			for j := 0; j < nch-1; j++ {
				lv.nodes[i*t.kpn+j] = childMax[first+j]
			}
			lv.maxes[i] = childMax[first+nch-1]
		}
		levels = append(levels, lv)
		childMax = lv.maxes
		if n == 1 {
			break
		}
	}

	// Concatenate root-first.
	t.height = len(levels)
	t.levelNodes = make([]int, t.height)
	t.levelOff = make([]int, t.height)
	total := 0
	for d := 0; d < t.height; d++ {
		lv := levels[t.height-1-d] // root first
		t.levelOff[d] = total
		t.levelNodes[d] = len(lv.nodes) / t.kpn
		total += t.levelNodes[d]
	}
	t.inner = make([]K, total*t.kpn)
	for d := 0; d < t.height; d++ {
		copy(t.inner[t.levelOff[d]*t.kpn:], levels[t.height-1-d].nodes)
	}
}

// node returns the key line of node i at level d (root is level 0).
func (t *ImplicitTree[K]) node(d, i int) []K {
	off := (t.levelOff[d] + i) * t.kpn
	return t.inner[off : off+t.kpn]
}

// leafLine returns leaf line l as interleaved pairs.
func (t *ImplicitTree[K]) leafLine(l int) []K {
	return t.leaves[l*t.kpn : (l+1)*t.kpn]
}

// SearchInner traverses the inner levels only and returns the leaf line
// index holding the lower bound of q. This is the part of the lookup the
// HB+-tree offloads to the GPU.
func (t *ImplicitTree[K]) SearchInner(q K) int {
	idx := 0
	for d := 0; d < t.height; d++ {
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.fanout + j
	}
	if idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	return idx
}

// SearchInnerFrom resumes inner traversal at (level, nodeIdx); used by
// the load-balanced HB+-tree where the CPU walks the top D levels and the
// GPU continues (Section 5.5).
func (t *ImplicitTree[K]) SearchInnerFrom(q K, level, nodeIdx int) int {
	idx := nodeIdx
	for d := level; d < t.height; d++ {
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.fanout + j
	}
	if idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	return idx
}

// SearchLeafLine finishes a lookup in leaf line l.
func (t *ImplicitTree[K]) SearchLeafLine(l int, q K) (K, bool) {
	line := t.leafLine(l)
	i, found := simd.SearchPairsLine(line, q)
	if !found {
		return 0, false
	}
	return line[2*i+1], true
}

// Lookup finds the value stored under q.
func (t *ImplicitTree[K]) Lookup(q K) (K, bool) {
	return t.SearchLeafLine(t.SearchInner(q), q)
}

// LookupInstrumented performs a lookup while reporting every cache-line
// touch to the memory-hierarchy simulator (the PAPI-style measurement of
// Figure 7).
func (t *ImplicitTree[K]) LookupInstrumented(q K, h mem.Toucher) (K, bool) {
	sz := int64(keys.Size[K]())
	idx := 0
	for d := 0; d < t.height; d++ {
		h.Touch(t.iseg.Addr(int64(t.levelOff[d]+idx)*int64(t.kpn)*sz), t.iseg.Kind)
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.fanout + j
	}
	if idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	h.Touch(t.lseg.Addr(int64(idx)*int64(t.kpn)*sz), t.lseg.Kind)
	return t.SearchLeafLine(idx, q)
}

// RangeQuery returns up to count pairs with key >= start, in key order.
// Leaf lines are contiguous, so the scan is sequential (Section 3).
func (t *ImplicitTree[K]) RangeQuery(start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	maxK := keys.Max[K]()
	l := t.SearchInner(start)
	line := t.leafLine(l)
	i, _ := simd.SearchPairsLine(line, start)
	for len(out) < count {
		for ; i < t.pairsLine; i++ {
			k := line[2*i]
			if k == maxK {
				return out // padding: end of data
			}
			out = append(out, keys.Pair[K]{Key: k, Value: line[2*i+1]})
			if len(out) == count {
				return out
			}
		}
		l++
		if l >= t.numLeaves {
			return out
		}
		line = t.leafLine(l)
		i = 0
	}
	return out
}

// Rebuild replaces the tree contents with a new sorted dataset — the
// implicit tree's only update mechanism (Section 5.6). Segments are
// reallocated, matching the paper's full reconstruction.
func (t *ImplicitTree[K]) Rebuild(pairs []keys.Pair[K]) error {
	nt, err := BuildImplicit(pairs, t.cfg)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}

// Stats reports the tree geometry (Equations 1 and 2 inputs).
func (t *ImplicitTree[K]) Stats() Stats {
	return Stats{
		NumPairs:      t.numPairs,
		Height:        t.height,
		InnerBytes:    int64(len(t.inner)) * int64(keys.Size[K]()),
		LeafBytes:     int64(len(t.leaves)) * int64(keys.Size[K]()),
		LinesPerQuery: t.height + 1,
	}
}

// Height returns H, the height of the root (leaves at height zero).
func (t *ImplicitTree[K]) Height() int { return t.height }

// Fanout returns the inner-node fanout.
func (t *ImplicitTree[K]) Fanout() int { return t.fanout }

// NumLeafLines returns the number of leaf cache lines.
func (t *ImplicitTree[K]) NumLeafLines() int { return t.numLeaves }

// LevelNodes returns the node count of level d (root is level 0).
func (t *ImplicitTree[K]) LevelNodes(d int) int { return t.levelNodes[d] }

// InnerArray exposes the raw breadth-first I-segment together with the
// per-level node offsets; the HB+-tree mirrors exactly these bytes into
// GPU memory (Figure 4).
func (t *ImplicitTree[K]) InnerArray() (inner []K, levelOff []int, kpn, fanout int) {
	return t.inner, t.levelOff, t.kpn, t.fanout
}

// Segments returns the simulated address ranges of the I- and L-segment.
func (t *ImplicitTree[K]) Segments() (iseg, lseg mem.Segment) { return t.iseg, t.lseg }

// Config returns the build configuration.
func (t *ImplicitTree[K]) Config() Config { return t.cfg }

// WalkToLevel traverses the top `depth` inner levels for q and returns
// the node index at that level — the intermediate state the
// load-balanced HB+-tree hands from CPU to GPU (Section 5.5). depth 0
// returns the root index; depth >= Height returns the leaf line index.
func (t *ImplicitTree[K]) WalkToLevel(q K, depth int) int {
	if depth > t.height {
		depth = t.height
	}
	idx := 0
	for d := 0; d < depth; d++ {
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.fanout + j
	}
	if depth == t.height && idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	return idx
}

// RangeFromLine scans up to count pairs with key >= start beginning at
// leaf line l (as resolved by a GPU inner traversal), without touching
// the I-segment — the CPU stage of a hybrid range query.
func (t *ImplicitTree[K]) RangeFromLine(l int, start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	maxK := keys.Max[K]()
	if l < 0 || l >= t.numLeaves {
		return out
	}
	line := t.leafLine(l)
	i, _ := simd.SearchPairsLine(line, start)
	for len(out) < count {
		for ; i < t.pairsLine; i++ {
			k := line[2*i]
			if k == maxK {
				return out
			}
			out = append(out, keys.Pair[K]{Key: k, Value: line[2*i+1]})
			if len(out) == count {
				return out
			}
		}
		l++
		if l >= t.numLeaves {
			return out
		}
		line = t.leafLine(l)
		i = 0
	}
	return out
}
