package cpubtree

import (
	"fmt"

	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/simd"
)

// ImplicitTree is the paper's implicit B+-tree (Sections 3 and 4.1):
// nodes are arranged breadth-first in one array, child locations are
// computed rather than stored, and every inner and leaf node occupies
// exactly one 64-byte cache line. The CPU-optimized configuration packs
// eight 64-bit keys per inner node (fanout 9); the HB+-tree I-segment
// configuration reduces the fanout to 8 and pins the node's last key to
// MAX so that one warp of eight GPU threads covers node search and data
// access with the same shape (Section 5.2).
//
// The structure is static: updates rebuild the whole tree (Section 5.6).
type ImplicitTree[K keys.Key] struct {
	cfg Config

	kpn        int // base key slots per inner node (one line: 8 or 16)
	fanout     int // base children per inner node
	pairsLine  int // key-value pairs per leaf line (4 or 8)
	numPairs   int
	numLeaves  int // leaf lines
	height     int // H: number of inner levels; leaves at height 0
	levelNodes []int
	levelOff   []int // offset (in nodes of the base width) of each level, root first

	// Per-level layout, root first. For a uniform tree every entry
	// repeats the base kpn/fanout; Config.RootWidths widens the top
	// levels into multi-line nodes, shortening the tree.
	levelKpn    []int // key slots per node at each level
	levelFanout []int // children per node at each level
	levelSlot   []int // first key slot of each level within inner

	inner  []K // all inner nodes, breadth first, levelKpn[d] keys each
	leaves []K // leaf lines, interleaved [k0 v0 k1 v1 ...]

	iseg mem.Segment
	lseg mem.Segment
}

// maxImplicitWidth caps a level's node width in key slots; it mirrors
// the GPU kernels' warp-search bound (gpusim.MaxNodeWidth), which
// cpubtree cannot import without an inverted dependency.
const maxImplicitWidth = 64

// BuildImplicit bulk-loads an implicit tree from sorted, distinct pairs.
func BuildImplicit[K keys.Key](pairs []keys.Pair[K], cfg Config) (*ImplicitTree[K], error) {
	cfg.fillDefaults()
	kpn := keys.PerLine[K]()
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = kpn + 1 // CPU-optimized default: 9 (64-bit) / 17 (32-bit)
	}
	if fanout < 2 || fanout > kpn+1 {
		return nil, fmt.Errorf("cpubtree: implicit fanout %d out of range [2, %d]", fanout, kpn+1)
	}
	for i, w := range cfg.RootWidths {
		if w == 0 {
			continue // base geometry for this level
		}
		if w < kpn || w%kpn != 0 || w > maxImplicitWidth {
			return nil, fmt.Errorf("cpubtree: root width %d at level %d must be a multiple of %d in [%d, %d]", w, i, kpn, kpn, maxImplicitWidth)
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("cpubtree: empty dataset")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			return nil, fmt.Errorf("cpubtree: pairs not sorted/distinct at %d", i)
		}
	}
	if pairs[len(pairs)-1].Key == keys.Max[K]() {
		return nil, fmt.Errorf("cpubtree: key MAX is reserved as sentinel")
	}

	t := &ImplicitTree[K]{
		cfg:       cfg,
		kpn:       kpn,
		fanout:    fanout,
		pairsLine: kpn / 2,
		numPairs:  len(pairs),
	}
	t.build(pairs)
	t.iseg = cfg.Alloc.Alloc(int64(len(t.inner))*int64(keys.Size[K]()), cfg.ISegPages)
	t.lseg = cfg.Alloc.Alloc(int64(len(t.leaves))*int64(keys.Size[K]()), cfg.LSegPages)
	return t, nil
}

// build fills the leaf lines and the breadth-first inner levels.
func (t *ImplicitTree[K]) build(pairs []keys.Pair[K]) {
	maxK := keys.Max[K]()
	t.numLeaves = (len(pairs) + t.pairsLine - 1) / t.pairsLine

	// Leaf lines, packed densely and padded with the MAX sentinel.
	t.leaves = make([]K, t.numLeaves*t.kpn)
	for i := range t.leaves {
		t.leaves[i] = maxK
	}
	lineMax := make([]K, t.numLeaves)
	for l := 0; l < t.numLeaves; l++ {
		start := l * t.pairsLine
		end := start + t.pairsLine
		if end > len(pairs) {
			end = len(pairs)
		}
		for j, p := range pairs[start:end] {
			t.leaves[l*t.kpn+2*j] = p.Key
			t.leaves[l*t.kpn+2*j+1] = p.Value
		}
		lineMax[l] = maxKeyOf(pairs[start:end])
	}

	// Per-level geometry, root first. The height is the smallest H whose
	// per-level fanouts multiply to at least the leaf count — for uniform
	// fanouts this reproduces the classic bottom-up repeated-ceil count
	// (by ceil(ceil(a/b)/c) = ceil(a/(b*c))), so uniform trees are
	// byte-identical to the historical layout. A dataset small enough to
	// fit one leaf line still gets one inner level so that search code is
	// uniform. Config.RootWidths overrides the top levels' width/fanout.
	levelGeom := func(l int) (kpn, fanout int) {
		if l < len(t.cfg.RootWidths) && t.cfg.RootWidths[l] > 0 {
			w := t.cfg.RootWidths[l]
			return w, w
		}
		return t.kpn, t.fanout
	}
	t.height = 1
	for {
		cap := 1
		for l := 0; l < t.height && cap < t.numLeaves; l++ {
			_, f := levelGeom(l)
			cap *= f
		}
		if cap >= t.numLeaves {
			break
		}
		t.height++
	}
	t.levelKpn = make([]int, t.height)
	t.levelFanout = make([]int, t.height)
	t.levelNodes = make([]int, t.height)
	for l := 0; l < t.height; l++ {
		t.levelKpn[l], t.levelFanout[l] = levelGeom(l)
	}
	// Node counts bottom-up: level l packs level l+1 (or the leaves)
	// fanout-of-l at a time; the height choice guarantees one root node.
	n := t.numLeaves
	for l := t.height - 1; l >= 0; l-- {
		n = (n + t.levelFanout[l] - 1) / t.levelFanout[l]
		t.levelNodes[l] = n
	}

	// Inner levels, bottom-up. The keys of node i are the subtree maxima
	// of its children, MAX for absent children.
	type level struct {
		nodes []K
		maxes []K
	}
	levels := make([]level, t.height)
	childMax := lineMax
	for l := t.height - 1; l >= 0; l-- {
		kpn, fanout := t.levelKpn[l], t.levelFanout[l]
		n := t.levelNodes[l]
		lv := level{nodes: make([]K, n*kpn), maxes: make([]K, n)}
		for i := range lv.nodes {
			lv.nodes[i] = maxK
		}
		for i := 0; i < n; i++ {
			first := i * fanout
			nch := len(childMax) - first
			if nch > fanout {
				nch = fanout
			}
			// Slot j holds the separator between children j and j+1 —
			// the subtree maximum of child j. The last child needs no
			// separator: with a full fanout-(kpn+1) node it is reached
			// by exceeding all kpn keys, otherwise its slot stays MAX
			// (the paper pins trailing slots, including K_8 of the
			// fanout-8 HB+ nodes, to the maximum value).
			for j := 0; j < nch-1; j++ {
				lv.nodes[i*kpn+j] = childMax[first+j]
			}
			lv.maxes[i] = childMax[first+nch-1]
		}
		levels[l] = lv
		childMax = lv.maxes
	}

	// Concatenate root-first.
	t.levelOff = make([]int, t.height)
	t.levelSlot = make([]int, t.height)
	totalNodes, totalSlots := 0, 0
	for d := 0; d < t.height; d++ {
		t.levelOff[d] = totalNodes
		t.levelSlot[d] = totalSlots
		totalNodes += t.levelNodes[d]
		totalSlots += t.levelNodes[d] * t.levelKpn[d]
	}
	t.inner = make([]K, totalSlots)
	for d := 0; d < t.height; d++ {
		copy(t.inner[t.levelSlot[d]:], levels[d].nodes)
	}
}

// node returns the key slots of node i at level d (root is level 0).
func (t *ImplicitTree[K]) node(d, i int) []K {
	kpn := t.levelKpn[d]
	off := t.levelSlot[d] + i*kpn
	return t.inner[off : off+kpn]
}

// leafLine returns leaf line l as interleaved pairs.
func (t *ImplicitTree[K]) leafLine(l int) []K {
	return t.leaves[l*t.kpn : (l+1)*t.kpn]
}

// SearchInner traverses the inner levels only and returns the leaf line
// index holding the lower bound of q. This is the part of the lookup the
// HB+-tree offloads to the GPU.
func (t *ImplicitTree[K]) SearchInner(q K) int {
	idx := 0
	for d := 0; d < t.height; d++ {
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.levelFanout[d] + j
	}
	if idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	return idx
}

// SearchInnerFrom resumes inner traversal at (level, nodeIdx); used by
// the load-balanced HB+-tree where the CPU walks the top D levels and the
// GPU continues (Section 5.5).
func (t *ImplicitTree[K]) SearchInnerFrom(q K, level, nodeIdx int) int {
	idx := nodeIdx
	for d := level; d < t.height; d++ {
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.levelFanout[d] + j
	}
	if idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	return idx
}

// SearchLeafLine finishes a lookup in leaf line l.
func (t *ImplicitTree[K]) SearchLeafLine(l int, q K) (K, bool) {
	line := t.leafLine(l)
	i, found := simd.SearchPairsLine(line, q)
	if !found {
		return 0, false
	}
	return line[2*i+1], true
}

// Lookup finds the value stored under q.
func (t *ImplicitTree[K]) Lookup(q K) (K, bool) {
	return t.SearchLeafLine(t.SearchInner(q), q)
}

// LookupInstrumented performs a lookup while reporting every cache-line
// touch to the memory-hierarchy simulator (the PAPI-style measurement of
// Figure 7).
func (t *ImplicitTree[K]) LookupInstrumented(q K, h mem.Toucher) (K, bool) {
	sz := int64(keys.Size[K]())
	idx := 0
	for d := 0; d < t.height; d++ {
		// One touch per cache line of the node: wide tuned nodes span
		// several lines, uniform nodes exactly one.
		slot := int64(t.levelSlot[d] + idx*t.levelKpn[d])
		for ln := 0; ln < t.levelKpn[d]; ln += t.kpn {
			h.Touch(t.iseg.Addr((slot+int64(ln))*sz), t.iseg.Kind)
		}
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.levelFanout[d] + j
	}
	if idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	h.Touch(t.lseg.Addr(int64(idx)*int64(t.kpn)*sz), t.lseg.Kind)
	return t.SearchLeafLine(idx, q)
}

// RangeQuery returns up to count pairs with key >= start, in key order.
// Leaf lines are contiguous, so the scan is sequential (Section 3).
func (t *ImplicitTree[K]) RangeQuery(start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	maxK := keys.Max[K]()
	l := t.SearchInner(start)
	line := t.leafLine(l)
	i, _ := simd.SearchPairsLine(line, start)
	for len(out) < count {
		for ; i < t.pairsLine; i++ {
			k := line[2*i]
			if k == maxK {
				return out // padding: end of data
			}
			out = append(out, keys.Pair[K]{Key: k, Value: line[2*i+1]})
			if len(out) == count {
				return out
			}
		}
		l++
		if l >= t.numLeaves {
			return out
		}
		line = t.leafLine(l)
		i = 0
	}
	return out
}

// Rebuild replaces the tree contents with a new sorted dataset — the
// implicit tree's only update mechanism (Section 5.6). Segments are
// reallocated, matching the paper's full reconstruction.
func (t *ImplicitTree[K]) Rebuild(pairs []keys.Pair[K]) error {
	nt, err := BuildImplicit(pairs, t.cfg)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}

// Stats reports the tree geometry (Equations 1 and 2 inputs).
func (t *ImplicitTree[K]) Stats() Stats {
	return Stats{
		NumPairs:      t.numPairs,
		Height:        t.height,
		InnerBytes:    int64(len(t.inner)) * int64(keys.Size[K]()),
		LeafBytes:     int64(len(t.leaves)) * int64(keys.Size[K]()),
		LinesPerQuery: t.height + 1,
	}
}

// Height returns H, the height of the root (leaves at height zero).
func (t *ImplicitTree[K]) Height() int { return t.height }

// Fanout returns the inner-node fanout.
func (t *ImplicitTree[K]) Fanout() int { return t.fanout }

// NumLeafLines returns the number of leaf cache lines.
func (t *ImplicitTree[K]) NumLeafLines() int { return t.numLeaves }

// LevelNodes returns the node count of level d (root is level 0).
func (t *ImplicitTree[K]) LevelNodes(d int) int { return t.levelNodes[d] }

// InnerArray exposes the raw breadth-first I-segment together with the
// per-level node offsets and the base geometry; the HB+-tree mirrors
// exactly these bytes into GPU memory (Figure 4). Tuned trees must also
// consult LevelGeometry — the node offsets alone cannot address levels
// whose width differs from the base.
func (t *ImplicitTree[K]) InnerArray() (inner []K, levelOff []int, kpn, fanout int) {
	return t.inner, t.levelOff, t.kpn, t.fanout
}

// LevelGeomEntry describes one inner level's node geometry, root first.
type LevelGeomEntry struct {
	Nodes  int // node count
	Kpn    int // key slots per node
	Fanout int // children per node
	Slot   int // first key slot of the level within the inner array
}

// LevelGeometry returns the per-level layout table the device descriptor
// is built from. The slice is freshly allocated; callers may keep it.
func (t *ImplicitTree[K]) LevelGeometry() []LevelGeomEntry {
	g := make([]LevelGeomEntry, t.height)
	for d := 0; d < t.height; d++ {
		g[d] = LevelGeomEntry{
			Nodes:  t.levelNodes[d],
			Kpn:    t.levelKpn[d],
			Fanout: t.levelFanout[d],
			Slot:   t.levelSlot[d],
		}
	}
	return g
}

// UniformLayout reports whether every level uses the base geometry — the
// compatibility invariant under which the device descriptor, the
// serialized image and the transaction accounting are byte-identical to
// the historical uniform code.
func (t *ImplicitTree[K]) UniformLayout() bool {
	for d := 0; d < t.height; d++ {
		if t.levelKpn[d] != t.kpn || t.levelFanout[d] != t.fanout {
			return false
		}
	}
	return true
}

// LevelWidths returns the per-level key-slot widths, root first.
func (t *ImplicitTree[K]) LevelWidths() []int {
	return append([]int(nil), t.levelKpn...)
}

// Segments returns the simulated address ranges of the I- and L-segment.
func (t *ImplicitTree[K]) Segments() (iseg, lseg mem.Segment) { return t.iseg, t.lseg }

// Config returns the build configuration.
func (t *ImplicitTree[K]) Config() Config { return t.cfg }

// WalkToLevel traverses the top `depth` inner levels for q and returns
// the node index at that level — the intermediate state the
// load-balanced HB+-tree hands from CPU to GPU (Section 5.5). depth 0
// returns the root index; depth >= Height returns the leaf line index.
func (t *ImplicitTree[K]) WalkToLevel(q K, depth int) int {
	if depth > t.height {
		depth = t.height
	}
	idx := 0
	for d := 0; d < depth; d++ {
		j := simd.Search(t.cfg.NodeSearch, t.node(d, idx), q)
		idx = idx*t.levelFanout[d] + j
	}
	if depth == t.height && idx >= t.numLeaves {
		idx = t.numLeaves - 1
	}
	return idx
}

// RangeFromLine scans up to count pairs with key >= start beginning at
// leaf line l (as resolved by a GPU inner traversal), without touching
// the I-segment — the CPU stage of a hybrid range query.
func (t *ImplicitTree[K]) RangeFromLine(l int, start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	maxK := keys.Max[K]()
	if l < 0 || l >= t.numLeaves {
		return out
	}
	line := t.leafLine(l)
	i, _ := simd.SearchPairsLine(line, start)
	for len(out) < count {
		for ; i < t.pairsLine; i++ {
			k := line[2*i]
			if k == maxK {
				return out
			}
			out = append(out, keys.Pair[K]{Key: k, Value: line[2*i+1]})
			if len(out) == count {
				return out
			}
		}
		l++
		if l >= t.numLeaves {
			return out
		}
		line = t.leafLine(l)
		i = 0
	}
	return out
}
