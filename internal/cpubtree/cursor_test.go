package cpubtree

import (
	"testing"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

func drain[K keys.Key](c Cursor[K], limit int) []keys.Pair[K] {
	var out []keys.Pair[K]
	for len(out) < limit {
		p, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

func TestCursorFullScan(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 10000, 42)
	impl, err := BuildImplicit(pairs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := BuildRegular(pairs, Config{LeafFill: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]Cursor[uint64]{
		"implicit": impl.Seek(0),
		"regular":  reg.Seek(0),
	} {
		got := drain(c, len(pairs)+10)
		if len(got) != len(pairs) {
			t.Fatalf("%s: scanned %d of %d", name, len(got), len(pairs))
		}
		for i := range got {
			if got[i] != pairs[i] {
				t.Fatalf("%s: scan[%d] = %+v, want %+v", name, i, got[i], pairs[i])
			}
		}
		// Exhausted cursor stays exhausted.
		if _, ok := c.Next(); ok {
			t.Fatalf("%s: cursor resurrected", name)
		}
	}
}

func TestCursorSeekMidAndBetween(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 5000, 7)
	impl, _ := BuildImplicit(pairs, Config{})
	reg, _ := BuildRegular(pairs, Config{})
	for name, seek := range map[string]func(uint64) Cursor[uint64]{
		"implicit": impl.Seek,
		"regular":  reg.Seek,
	} {
		// Exact key.
		got := drain(seek(pairs[1234].Key), 3)
		if len(got) != 3 || got[0] != pairs[1234] || got[2] != pairs[1236] {
			t.Fatalf("%s: exact seek wrong: %+v", name, got)
		}
		// Between keys: starts at the successor.
		got = drain(seek(pairs[77].Key+1), 1)
		if len(got) != 1 || got[0] != pairs[78] {
			t.Fatalf("%s: between-keys seek wrong: %+v", name, got)
		}
		// Past the end: empty.
		if got := drain(seek(pairs[len(pairs)-1].Key+1), 1); len(got) != 0 {
			t.Fatalf("%s: past-end seek returned %+v", name, got)
		}
	}
}

func TestCursorAfterUpdates(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 3000, 3)
	tr, _ := BuildRegular(pairs, Config{LeafFill: 0.6})
	// Delete every third key, insert a few new ones.
	expect := make([]keys.Pair[uint64], 0, len(pairs))
	for i, p := range pairs {
		if i%3 == 0 {
			tr.Delete(p.Key)
			continue
		}
		expect = append(expect, p)
	}
	got := drain(tr.Seek(0), len(pairs))
	if len(got) != len(expect) {
		t.Fatalf("scan %d of %d after deletes", len(got), len(expect))
	}
	for i := range got {
		if got[i] != expect[i] {
			t.Fatalf("post-update scan diverges at %d", i)
		}
	}
}
