// Package model is the calibrated CPU cost model shared by the HB+-tree
// core and the experiment harness. It converts per-query event counts —
// cache-line touches split into LLC hits and DRAM misses, TLB-walk time,
// in-node search operations — into virtual durations using the platform
// constants, reproducing the performance regimes the paper identifies:
// compute-bound for cache-resident trees, memory-latency-bound without
// software pipelining, and memory-bandwidth-bound at scale.
package model

import (
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
)

// MissProfile is the expected per-query cache behaviour: how many
// cache-line touches hit the LLC and how many go to DRAM.
type MissProfile struct {
	Hit  float64
	Miss float64
}

// Lines returns the total line touches per query.
func (m MissProfile) Lines() float64 { return m.Hit + m.Miss }

// Add combines two profiles.
func (m MissProfile) Add(o MissProfile) MissProfile {
	return MissProfile{Hit: m.Hit + o.Hit, Miss: m.Miss + o.Miss}
}

// MissBytes returns the DRAM traffic per query in bytes.
func (m MissProfile) MissBytes() float64 { return m.Miss * 64 }

// ProfileLevels estimates the miss profile of one lookup from per-level
// footprints: levels are cached root-first until the LLC budget is
// spent, with the boundary level partially resident. levelBytes[i] is
// the level's total footprint; levelLines[i] is how many cache-line
// touches a query spends there.
func ProfileLevels(levelBytes []int64, levelLines []float64, llcBytes int64) MissProfile {
	var p MissProfile
	remaining := llcBytes
	for i, b := range levelBytes {
		lines := levelLines[i]
		if b <= 0 {
			p.Hit += lines
			continue
		}
		frac := float64(remaining) / float64(b)
		if frac > 1 {
			frac = 1
		}
		if frac < 0 {
			frac = 0
		}
		p.Hit += lines * frac
		p.Miss += lines * (1 - frac)
		remaining -= b
		if remaining < 0 {
			remaining = 0
		}
	}
	return p
}

// AlgoCost returns the per-node compute cost of one in-node search for
// the chosen kernel (Figure 8's three algorithms).
func AlgoCost(cpu platform.CPU, a simd.Algorithm) vclock.Duration {
	switch a {
	case simd.Linear:
		return cpu.CostLinearSIMD
	case simd.Hierarchical:
		return cpu.CostHierSIMD
	default:
		return cpu.CostSeqSearch
	}
}

// PerQuery converts a lookup's event counts into a per-query duration on
// one hardware thread:
//
//	compute = common dispatch + nodeSearches * kernel cost + extra
//	memory  = (Miss*LatMem + Hit*LatLLC + walk) / overlap
//
// where overlap is the memory-level parallelism: MLPNoSWP without
// software pipelining, min(swDepth, MLPMax) with it. This shape yields
// the paper's software-pipelining gain of roughly 2-2.5x saturating at
// depth 16 (Figures 8 and 20).
func PerQuery(cpu platform.CPU, algo simd.Algorithm, nodeSearches float64, p MissProfile, walk vclock.Duration, swDepth int, extra vclock.Duration) vclock.Duration {
	compute := cpu.CostQuerycommon + vclock.Duration(nodeSearches*float64(AlgoCost(cpu, algo))) + extra
	overlap := float64(cpu.MLPNoSWP)
	if swDepth > 1 {
		overlap = float64(swDepth)
		if overlap > float64(cpu.MLPMax) {
			overlap = float64(cpu.MLPMax)
		}
	}
	if overlap < 1 {
		overlap = 1
	}
	mem := (vclock.Duration(p.Miss)*cpu.LatMem + vclock.Duration(p.Hit)*cpu.LatLLC + walk) / vclock.Duration(overlap)
	return compute + mem
}

// BatchDuration is the duration of a batch of n lookups across the
// machine's hardware threads, bounded below by the memory-bandwidth
// roofline — the paper's "bounded by the memory bandwidth" regime for
// trees beyond the LLC.
func BatchDuration(cpu platform.CPU, n int, perQuery vclock.Duration, missBytes float64, threads int) vclock.Duration {
	if threads <= 0 {
		threads = cpu.Threads
	}
	tThreads := vclock.Duration(float64(n) * float64(perQuery) / float64(threads))
	tBW := vclock.Duration(float64(n) * missBytes / cpu.MemBWBytes * 1e9)
	return vclock.Max(tThreads, tBW)
}

// Throughput converts a batch duration into queries per second.
func Throughput(n int, d vclock.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
