package model

import "math"

// This file is the layout tuner: it costs candidate per-level node
// widths for the implicit I-segment so the core can pick wide multi-line
// nodes near the root (probed once per sorted batch, so their extra
// lines amortise across the batch while shortening the tree) and packed
// one-line nodes near the leaves (probed nearly once per query, where
// every extra line is paid in full). The cost is the expected
// probe-weighted line count of one shared-descent batch — exactly the
// transaction count the sorted kernels report — so "the tuner's metric"
// and "the CI gate's metric" are the same number.

// lineBytes is the coalesced transaction size shared with keys.LineBytes
// (restated here to keep the model dependency-free).
const lineBytes = 64

// maxTunedLevels bounds how many root-side levels TuneWidths may widen;
// deeper levels hold too many distinct nodes per batch for wide lines to
// ever pay off.
const maxTunedLevels = 3

// maxLayoutWidth caps a level's key-slot width, mirroring the GPU
// kernels' warp-search bound (gpusim.MaxNodeWidth).
const maxLayoutWidth = 64

// ExpectedDistinct returns the expected number of distinct nodes a
// sorted batch of `batch` independent uniform queries probes at a level
// of `nodes` nodes: n*(1-(1-1/n)^B). This is the per-level transaction
// count of the shared-descent kernel, which pays one probe per distinct
// node and nothing for followers.
func ExpectedDistinct(nodes, batch int) float64 {
	if nodes <= 0 || batch <= 0 {
		return 0
	}
	if nodes == 1 {
		return 1
	}
	n := float64(nodes)
	return n * (1 - math.Pow(1-1/n, float64(batch)))
}

// ImplicitLayout derives the per-level geometry of an implicit tree over
// numLeaves leaf lines for a candidate RootWidths assignment (entry l
// widens level l to that many key slots and children; zero entries and
// levels past the slice use the base geometry). It mirrors
// cpubtree.BuildImplicit's height rule — the smallest height whose
// per-level fanouts multiply to at least the leaf count — so the costed
// candidate and the built tree always agree.
func ImplicitLayout(numLeaves int, widths []int, baseKpn, baseFanout int) (nodes, kpns, fanouts []int) {
	geom := func(l int) (kpn, fanout int) {
		if l < len(widths) && widths[l] > 0 {
			return widths[l], widths[l]
		}
		return baseKpn, baseFanout
	}
	h := 1
	for {
		cp := 1
		for l := 0; l < h && cp < numLeaves; l++ {
			_, f := geom(l)
			cp *= f
		}
		if cp >= numLeaves {
			break
		}
		h++
	}
	nodes = make([]int, h)
	kpns = make([]int, h)
	fanouts = make([]int, h)
	n := numLeaves
	for l := h - 1; l >= 0; l-- {
		kpns[l], fanouts[l] = geom(l)
		n = (n + fanouts[l] - 1) / fanouts[l]
		nodes[l] = n
	}
	return nodes, kpns, fanouts
}

// LayoutLineCost returns the expected probe-weighted line count of one
// shared-descent batch over the given per-level geometry: each level
// contributes its expected distinct probes times the lines per node
// (kpn/baseKpn). For a uniform layout this is the classic per-batch
// distinct-node count.
func LayoutLineCost(nodes, kpns []int, baseKpn, batch int) float64 {
	var c float64
	for l := range nodes {
		c += ExpectedDistinct(nodes[l], batch) * float64(kpns[l]/baseKpn)
	}
	return c
}

// layoutLevelBytes returns each level's total footprint in bytes.
func layoutLevelBytes(nodes, kpns []int, baseKpn int) []int64 {
	b := make([]int64, len(nodes))
	for l := range nodes {
		b[l] = int64(nodes[l]) * int64(kpns[l]/baseKpn) * lineBytes
	}
	return b
}

// TuneWidths searches candidate root widths for an implicit tree of
// numLeaves leaf lines serving sorted batches of the given size, and
// returns the RootWidths assignment minimising the expected
// probe-weighted line count per batch — nil when the uniform layout is
// already optimal (in particular for batch <= 1, where every extra line
// of a wide node is paid per query). A tuned candidate is accepted only
// if it strictly beats uniform on line cost without deepening the tree,
// so switching layouts can never lose on both metrics the CI gate
// checks.
func TuneWidths(numLeaves, baseKpn, baseFanout, batch int) []int {
	uNodes, uKpns, _ := ImplicitLayout(numLeaves, nil, baseKpn, baseFanout)
	bestCost := LayoutLineCost(uNodes, uKpns, baseKpn, batch)
	uniformHeight := len(uNodes)
	var best []int

	// Candidate widths per level: base, or a power-of-two multiple of the
	// line width up to the warp-search cap.
	cands := []int{0}
	for w := 2 * baseKpn; w <= maxLayoutWidth; w *= 2 {
		cands = append(cands, w)
	}
	var walk func(prefix []int, level int)
	walk = func(prefix []int, level int) {
		for _, w := range cands {
			trial := append(append([]int(nil), prefix...), w)
			if w != 0 {
				nodes, kpns, _ := ImplicitLayout(numLeaves, trial, baseKpn, baseFanout)
				if len(nodes) <= uniformHeight {
					if c := LayoutLineCost(nodes, kpns, baseKpn, batch); c < bestCost {
						bestCost, best = c, trial
					}
				}
			}
			if level+1 < maxTunedLevels {
				walk(trial, level+1)
			}
		}
	}
	walk(nil, 0)
	// Trim trailing base entries so the policy is canonical.
	for len(best) > 0 && best[len(best)-1] == 0 {
		best = best[:len(best)-1]
	}
	return best
}

// LayoutAdvice turns an observed per-level probe histogram (the
// SearchStats.LevelProbes counters: device transactions per level, root
// first, accumulated over many batches) into a recommended RootWidths
// assignment for the current tree. The histogram calibrates the
// effective batch size — the root level is probed exactly once per
// batch, so the deepest level's probes-per-batch approximate the
// distinct keys a batch carries — and the candidate from TuneWidths is
// then screened through ProfileLevels: a layout whose expected DRAM
// misses per query exceed the uniform layout's is rejected, keeping the
// widened root levels cache-resident. nil means "stay uniform".
func LayoutAdvice(levelProbes []int64, levelKpn []int, numLeaves, baseKpn, baseFanout int, llcBytes int64) []int {
	if len(levelProbes) == 0 || levelProbes[0] <= 0 {
		return nil
	}
	rootLines := int64(1)
	if len(levelKpn) > 0 && levelKpn[0] > baseKpn {
		rootLines = int64(levelKpn[0] / baseKpn)
	}
	batches := float64(levelProbes[0]) / float64(rootLines)
	if batches <= 0 {
		return nil
	}
	batch := 1.0
	for l, p := range levelProbes {
		lines := 1.0
		if l < len(levelKpn) && levelKpn[l] > baseKpn {
			lines = float64(levelKpn[l] / baseKpn)
		}
		if d := float64(p) / lines / batches; d > batch {
			batch = d
		}
	}
	widths := TuneWidths(numLeaves, baseKpn, baseFanout, int(math.Ceil(batch)))
	if widths == nil {
		return nil
	}
	tNodes, tKpns, _ := ImplicitLayout(numLeaves, widths, baseKpn, baseFanout)
	uNodes, uKpns, _ := ImplicitLayout(numLeaves, nil, baseKpn, baseFanout)
	perLevel := func(n int) []float64 {
		ls := make([]float64, n)
		for i := range ls {
			ls[i] = 1
		}
		return ls
	}
	tuned := ProfileLevels(layoutLevelBytes(tNodes, tKpns, baseKpn), perLevel(len(tNodes)), llcBytes)
	uniform := ProfileLevels(layoutLevelBytes(uNodes, uKpns, baseKpn), perLevel(len(uNodes)), llcBytes)
	if tuned.Miss > uniform.Miss {
		return nil
	}
	return widths
}
