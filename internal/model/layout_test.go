package model

import (
	"math"
	"testing"
)

func TestExpectedDistinct(t *testing.T) {
	// Degenerate inputs cost nothing.
	if ExpectedDistinct(0, 256) != 0 || ExpectedDistinct(100, 0) != 0 || ExpectedDistinct(-1, 5) != 0 {
		t.Fatal("degenerate inputs should cost 0")
	}
	// A single node is probed exactly once per batch.
	if ExpectedDistinct(1, 1000) != 1 {
		t.Fatal("single node must cost exactly 1")
	}
	// One query touches exactly one node.
	if got := ExpectedDistinct(500, 1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("one query = %v distinct nodes, want 1", got)
	}
	// Monotone in batch size, bounded by the node count.
	prev := 0.0
	for _, b := range []int{1, 4, 16, 64, 256, 1024, 1 << 20} {
		d := ExpectedDistinct(64, b)
		if d < prev || d > 64 {
			t.Fatalf("ExpectedDistinct(64, %d) = %v not monotone in [0, 64]", b, d)
		}
		prev = d
	}
	// A huge batch saturates the level.
	if d := ExpectedDistinct(64, 1<<20); d < 63.999 {
		t.Fatalf("saturated level = %v, want ~64", d)
	}
}

func TestImplicitLayoutMirrorsHeightRule(t *testing.T) {
	// Uniform fanout-8 over 16384 leaves: 8^5 >= 16384 > 8^4, height 5.
	nodes, kpns, fanouts := ImplicitLayout(16384, nil, 8, 8)
	if len(nodes) != 5 {
		t.Fatalf("uniform height %d, want 5", len(nodes))
	}
	if nodes[0] != 1 {
		t.Fatalf("root level has %d nodes", nodes[0])
	}
	for l := range nodes {
		if kpns[l] != 8 || fanouts[l] != 8 {
			t.Fatalf("uniform level %d geometry %d/%d", l, kpns[l], fanouts[l])
		}
	}
	// Widening the root to 32 removes a level: 32*8^3 = 16384.
	nodes, kpns, _ = ImplicitLayout(16384, []int{32}, 8, 8)
	if len(nodes) != 4 {
		t.Fatalf("tuned height %d, want 4", len(nodes))
	}
	if kpns[0] != 32 || nodes[0] != 1 {
		t.Fatalf("tuned root geometry: %d nodes × %d slots", nodes[0], kpns[0])
	}
	// Bottom-up node counts must cover the leaves at every level.
	_, _, fanouts = ImplicitLayout(16384, []int{32}, 8, 8)
	cover := 1
	for l := range fanouts {
		cover *= fanouts[l]
	}
	if cover < 16384 {
		t.Fatalf("tuned fanouts %v cover only %d leaves", fanouts, cover)
	}
}

func TestTuneWidthsPointLookupsStayUniform(t *testing.T) {
	// At batch 1 every line of a wide node is paid per query, so the
	// tuner must never widen.
	for _, leaves := range []int{100, 16384, 1 << 20} {
		if w := TuneWidths(leaves, 8, 8, 1); w != nil {
			t.Fatalf("batch 1, %d leaves: tuner widened to %v", leaves, w)
		}
	}
}

func TestTuneWidthsNeverDeepens(t *testing.T) {
	for _, leaves := range []int{1000, 16384, 65536, 1 << 18} {
		for _, batch := range []int{16, 256, 1024} {
			w := TuneWidths(leaves, 8, 8, batch)
			uN, uK, _ := ImplicitLayout(leaves, nil, 8, 8)
			tN, tK, _ := ImplicitLayout(leaves, w, 8, 8)
			if len(tN) > len(uN) {
				t.Fatalf("leaves %d batch %d: tuned %v deepens %d -> %d", leaves, batch, w, len(uN), len(tN))
			}
			tc := LayoutLineCost(tN, tK, 8, batch)
			uc := LayoutLineCost(uN, uK, 8, batch)
			if w != nil && tc >= uc {
				t.Fatalf("leaves %d batch %d: tuned %v cost %v not below uniform %v", leaves, batch, w, tc, uc)
			}
		}
	}
}

func TestTuneWidthsKnownWin(t *testing.T) {
	// The gate-test configuration: 16384 leaf lines, window 256. Widening
	// level 1 to 32 slots collapses height 5 to 4 at a strict line win
	// (~435.5 vs ~439.5 expected lines per batch).
	w := TuneWidths(16384, 8, 8, 256)
	if w == nil {
		t.Fatal("tuner found no win at 16384 leaves, batch 256")
	}
	wide := false
	for _, x := range w {
		if x > 8 {
			wide = true
		}
	}
	if !wide {
		t.Fatalf("tuned widths %v contain no wide level", w)
	}
	// Canonical form: no trailing base entries.
	if len(w) > 0 && w[len(w)-1] == 0 {
		t.Fatalf("tuned widths %v not canonical", w)
	}
}

// The ProfileLevels edge cases the layout advisor leans on: zero-byte
// levels (an empty or metadata-only level must count as a pure hit and
// not consume budget), a budget exhausted mid-level (partial residency,
// then all-miss below), and empty input.
func TestProfileLevelsZeroByteLevels(t *testing.T) {
	// A zero-footprint level between two real ones: its lines are hits
	// and the budget flows through untouched.
	p := ProfileLevels([]int64{64, 0, 64}, []float64{1, 1, 1}, 64)
	if math.Abs(p.Hit-2) > 1e-9 || math.Abs(p.Miss-1) > 1e-9 {
		t.Fatalf("zero-byte level profile = %+v, want 2 hits / 1 miss", p)
	}
	// All levels zero-footprint: everything hits.
	p = ProfileLevels([]int64{0, 0}, []float64{1, 3}, 0)
	if p.Hit != 4 || p.Miss != 0 {
		t.Fatalf("all-zero profile = %+v", p)
	}
}

func TestProfileLevelsBudgetExhaustedMidLevel(t *testing.T) {
	// 256-byte level against a 64-byte budget: a quarter resident.
	p := ProfileLevels([]int64{256, 64}, []float64{1, 1}, 64)
	if math.Abs(p.Hit-0.25) > 1e-9 || math.Abs(p.Miss-1.75) > 1e-9 {
		t.Fatalf("mid-level exhaustion profile = %+v, want 0.25 hit / 1.75 miss", p)
	}
	// Once spent, deeper levels are pure misses even if small.
	p = ProfileLevels([]int64{128, 1}, []float64{1, 5}, 128)
	if math.Abs(p.Hit-1) > 1e-9 || math.Abs(p.Miss-5) > 1e-9 {
		t.Fatalf("post-exhaustion profile = %+v, want 1 hit / 5 miss", p)
	}
}

func TestProfileLevelsEmptyInput(t *testing.T) {
	p := ProfileLevels(nil, nil, 1<<20)
	if p.Hit != 0 || p.Miss != 0 || p.Lines() != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
}

func TestLayoutAdviceNoSignalStaysUniform(t *testing.T) {
	// No histogram, or a histogram with no root probes, gives no advice.
	if w := LayoutAdvice(nil, []int{8, 8, 8}, 16384, 8, 8, 1<<20); w != nil {
		t.Fatalf("empty histogram advised %v", w)
	}
	if w := LayoutAdvice([]int64{0, 0, 0}, []int{8, 8, 8}, 16384, 8, 8, 1<<20); w != nil {
		t.Fatalf("zero histogram advised %v", w)
	}
}

func TestLayoutAdviceRecommendsForBatchedTraffic(t *testing.T) {
	// A uniform height-5 tree over 16384 leaves serving 256-query
	// batches: root probed once per batch, deepest level ~saturated.
	uN, _, _ := ImplicitLayout(16384, nil, 8, 8)
	batches := int64(1000)
	probes := make([]int64, len(uN))
	kpn := make([]int, len(uN))
	for l := range uN {
		kpn[l] = 8
		probes[l] = int64(float64(batches) * ExpectedDistinct(uN[l], 256))
	}
	w := LayoutAdvice(probes, kpn, 16384, 8, 8, 25<<20)
	if w == nil {
		t.Fatal("batched traffic histogram produced no advice")
	}
	wide := false
	for _, x := range w {
		if x > 8 {
			wide = true
		}
	}
	if !wide {
		t.Fatalf("advice %v contains no wide level", w)
	}

	// The same tree serving point lookups (every level probed once per
	// "batch" of 1) must get no advice.
	for l := range probes {
		probes[l] = batches
	}
	if w := LayoutAdvice(probes, kpn, 16384, 8, 8, 25<<20); w != nil {
		t.Fatalf("point-lookup histogram advised %v", w)
	}
}

func TestLayoutAdviceRejectsCacheBusting(t *testing.T) {
	// With an LLC too small to hold even the uniform upper levels, the
	// miss screen must reject any widening that adds misses. A zero
	// budget makes every line a miss for both layouts, so advice is
	// allowed only if the tuned tree's per-query line count (its height)
	// does not exceed uniform's — which TuneWidths already guarantees;
	// the screen must simply not crash and stay consistent.
	uN, _, _ := ImplicitLayout(16384, nil, 8, 8)
	probes := make([]int64, len(uN))
	kpn := make([]int, len(uN))
	for l := range uN {
		kpn[l] = 8
		probes[l] = int64(1000 * ExpectedDistinct(uN[l], 256))
	}
	w := LayoutAdvice(probes, kpn, 16384, 8, 8, 0)
	if w != nil {
		tN, _, _ := ImplicitLayout(16384, w, 8, 8)
		if len(tN) > len(uN) {
			t.Fatalf("zero-LLC advice %v deepens the tree", w)
		}
	}
}
