package model

import (
	"testing"
	"testing/quick"

	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
)

func TestProfileLevelsAllCached(t *testing.T) {
	p := ProfileLevels([]int64{1024, 2048}, []float64{1, 1}, 1<<20)
	if p.Miss != 0 || p.Hit != 2 {
		t.Fatalf("all-cached profile: %+v", p)
	}
}

func TestProfileLevelsNothingCached(t *testing.T) {
	p := ProfileLevels([]int64{1 << 30}, []float64{3}, 0)
	if p.Hit != 0 || p.Miss != 3 {
		t.Fatalf("uncached profile: %+v", p)
	}
}

func TestProfileLevelsPartialBoundary(t *testing.T) {
	// LLC covers the first level plus half of the second.
	p := ProfileLevels([]int64{512, 1024}, []float64{1, 1}, 1024)
	if p.Hit != 1.5 || p.Miss != 0.5 {
		t.Fatalf("boundary profile: %+v", p)
	}
}

func TestProfileMonotoneInLLC(t *testing.T) {
	f := func(sizes [4]uint16) bool {
		lb := make([]int64, 4)
		ll := make([]float64, 4)
		for i, s := range sizes {
			lb[i] = int64(s) + 1
			ll[i] = 1
		}
		prev := -1.0
		for llc := int64(0); llc < 300000; llc += 30000 {
			p := ProfileLevels(lb, ll, llc)
			if prev >= 0 && p.Hit < prev-1e-9 {
				return false
			}
			if p.Hit+p.Miss < 3.999 || p.Hit+p.Miss > 4.001 {
				return false
			}
			prev = p.Hit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgoCostOrdering(t *testing.T) {
	cpu := platform.M1().CPU
	if !(AlgoCost(cpu, simd.Hierarchical) <= AlgoCost(cpu, simd.Linear) &&
		AlgoCost(cpu, simd.Linear) < AlgoCost(cpu, simd.Sequential)) {
		t.Fatal("kernel cost ordering violated")
	}
}

func TestPerQueryPipeliningGain(t *testing.T) {
	// Software pipelining must give roughly the paper's 2x-2.5x gain on
	// a memory-bound profile (Figure 8: 108%-152% improvement).
	cpu := platform.M1().CPU
	p := MissProfile{Hit: 5, Miss: 4}
	noSWP := PerQuery(cpu, simd.Hierarchical, 9, p, 0, 1, 0)
	swp := PerQuery(cpu, simd.Hierarchical, 9, p, 0, 16, 0)
	gain := float64(noSWP) / float64(swp)
	if gain < 1.7 || gain > 4.2 {
		t.Fatalf("pipelining gain %.2f outside the paper's regime", gain)
	}
	// Depth beyond MLPMax must not help further.
	if PerQuery(cpu, simd.Hierarchical, 9, p, 0, 32, 0) != swp {
		t.Fatal("pipelining beyond MLPMax changed cost")
	}
}

func TestPerQueryWalkAddsCost(t *testing.T) {
	cpu := platform.M1().CPU
	p := MissProfile{Hit: 2, Miss: 2}
	base := PerQuery(cpu, simd.Linear, 4, p, 0, 16, 0)
	walked := PerQuery(cpu, simd.Linear, 4, p, 300*vclock.Nanosecond, 16, 0)
	if walked <= base {
		t.Fatal("TLB walk cost ignored")
	}
}

func TestBatchDurationRooflines(t *testing.T) {
	cpu := platform.M1().CPU
	// Compute-bound: tiny miss traffic, duration set by threads.
	d1 := BatchDuration(cpu, 1<<20, 100*vclock.Nanosecond, 0, 16)
	want := vclock.Duration(float64(1<<20) * 100 / 16)
	if d1 != want {
		t.Fatalf("thread bound: %v want %v", d1, want)
	}
	// Bandwidth-bound: enormous miss traffic dominates.
	d2 := BatchDuration(cpu, 1<<20, 1*vclock.Nanosecond, 64*20, cpu.Threads)
	bw := vclock.Duration(float64(1<<20) * 64 * 20 / cpu.MemBWBytes * 1e9)
	if d2 != bw {
		t.Fatalf("bw bound: %v want %v", d2, bw)
	}
}

func TestThroughput(t *testing.T) {
	if Throughput(1000, vclock.Millisecond) != 1e6 {
		t.Fatal("throughput conversion wrong")
	}
	if Throughput(1000, 0) != 0 {
		t.Fatal("zero duration should yield zero")
	}
}

func TestMissProfileHelpers(t *testing.T) {
	a := MissProfile{Hit: 1, Miss: 2}
	b := MissProfile{Hit: 3, Miss: 4}
	c := a.Add(b)
	if c.Hit != 4 || c.Miss != 6 || c.Lines() != 10 || c.MissBytes() != 6*64 {
		t.Fatalf("helpers wrong: %+v", c)
	}
}
