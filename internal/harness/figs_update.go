package harness

import (
	"fmt"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

func init() {
	register("fig13", "Regular HB+-tree update methods and I-segment sync (Sec. 6.3, Fig. 13)", runFig13)
	register("fig14", "Update method vs batch size crossover (Sec. 6.3, Fig. 14)", runFig14)
	register("fig15", "Implicit HB+-tree update cost breakdown (Sec. 6.3, Fig. 15)", runFig15)
	register("fig21", "Concurrent search/update queries (App. B.3, Fig. 21)", runFig21)
}

// makeOps converts a workload update batch into tree operations.
func makeOps(pairs []keys.Pair[uint64], n int, deleteFrac float64, seed uint64) []cpubtree.Op[uint64] {
	wl := workload.UpdateBatch(pairs, n, deleteFrac, seed)
	ops := make([]cpubtree.Op[uint64], len(wl))
	for i, op := range wl {
		ops[i] = cpubtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
	}
	return ops
}

func runFig13(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	thr := Table{
		ID:    "fig13a",
		Title: "regular HB+-tree update throughput by method (MUPS; async excludes the I-segment transfer, as in the paper)",
		Note:  "paper: async multi-threaded ~3x async single-threaded; synchronized methods stay transfer-bound, parallelism adds ~30%",
		Cols:  []string{"size", "async-1T", "async-MT", "sync-1T", "sync-MT"},
	}
	sync := Table{
		ID:    "fig13b",
		Title: "I-segment synchronisation (full transfer) time by tree size",
		Cols:  []string{"size", "I-seg bytes", "transfer (ms)"},
	}
	batch := 16 * 1024
	if cfg.Quick {
		batch = 4 * 1024
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		row := []string{fmtSize(n)}
		for _, method := range []core.UpdateMethod{core.AsyncSingle, core.AsyncParallel, core.Synchronized, core.SynchronizedMT} {
			tr, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Regular, LeafFill: 0.85})
			if err != nil {
				return nil, err
			}
			st, err := tr.Update(makeOps(pairs, batch, 0.3, cfg.Seed+9), method)
			if err != nil {
				return nil, err
			}
			if err := tr.VerifyReplica(); err != nil {
				return nil, fmt.Errorf("fig13 %v: %w", method, err)
			}
			row = append(row, fmtF(st.ThroughputUPS()/1e6, 2))
			if method == core.AsyncSingle {
				sync.AddRow(fmtSize(n), fmtSize(int(tr.BuildStats().ISegBytes)),
					fmtF(tr.BuildStats().ISegXfer.Seconds()*1e3, 3))
			}
			tr.Close()
		}
		// Reorder: the table lists async-1T, async-MT, sync-1T, sync-MT.
		thr.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	return []Table{thr, sync}, nil
}

func runFig14(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "fig14",
		Title: fmt.Sprintf("batch update time by method, %s tuples (ms, including I-segment synchronisation)", fmtSize(n)),
		Note:  "synchronized wins for small batches; asynchronous amortises the full I-segment transfer over large ones (paper's crossover: 64K-128K on a 64M tree)",
		Cols:  []string{"batch", "sync (ms)", "async (ms)", "winner"},
	}
	batches := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	if cfg.Quick {
		batches = []int{1 << 9, 1 << 12, 1 << 15}
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	for _, b := range batches {
		var times [2]float64
		for i, method := range []core.UpdateMethod{core.Synchronized, core.AsyncParallel} {
			tr, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Regular, LeafFill: 0.85})
			if err != nil {
				return nil, err
			}
			st, err := tr.Update(makeOps(pairs, b, 0.0, cfg.Seed+uint64(b)), method)
			if err != nil {
				return nil, err
			}
			times[i] = st.Total().Seconds() * 1e3
			tr.Close()
		}
		winner := "sync"
		if times[1] < times[0] {
			winner = "async"
		}
		t.AddRow(fmtSize(b), fmtF(times[0], 2), fmtF(times[1], 2), winner)
	}
	return []Table{t}, nil
}

func runFig15(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	t := Table{
		ID:    "fig15",
		Title: "implicit HB+-tree update: full rebuild phases",
		Note:  "the I-segment transfer adds only a few percent over pure reconstruction (paper: 3-7%)",
		Cols:  []string{"size", "L-seg build (ms)", "I-seg build (ms)", "I-seg transfer (ms)", "transfer share"},
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		tr, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Implicit})
		if err != nil {
			return nil, err
		}
		// Rebuild with a refreshed dataset, as a batch update would.
		pairs2 := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed+1)
		st, err := tr.Rebuild(pairs2)
		if err != nil {
			return nil, err
		}
		if err := tr.VerifyReplica(); err != nil {
			return nil, err
		}
		share := st.SyncTime.Seconds() / st.Total().Seconds() * 100
		t.AddRow(fmtSize(n),
			fmtF(st.LSegBuild.Seconds()*1e3, 2),
			fmtF(st.ISegBuild.Seconds()*1e3, 2),
			fmtF(st.SyncTime.Seconds()*1e3, 2),
			fmtF(share, 1)+"%")
		tr.Close()
	}
	return []Table{t}, nil
}

func runFig21(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "fig21",
		Title: fmt.Sprintf("concurrent search/update batches, %s tuples (MOPS)", fmtSize(n)),
		Note:  "synchronized throughput decays faster with the update ratio (per-node transfer latency); even pure searches pay the locking overhead",
		Cols:  []string{"update ratio", "async", "sync"},
	}
	batch := 32 * 1024
	if cfg.Quick {
		batch = 8 * 1024
	}
	for _, ratioPct := range []int{0, 25, 50, 75, 100} {
		var ops []cpubtree.MixedOp[uint64]
		row := []string{fmt.Sprintf("%d%%", ratioPct)}
		for _, method := range []core.UpdateMethod{core.AsyncParallel, core.Synchronized} {
			pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
			tr, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Regular, LeafFill: 0.85})
			if err != nil {
				return nil, err
			}
			r := workload.NewRNG(cfg.Seed + uint64(ratioPct))
			ops = ops[:0]
			for i := 0; i < batch; i++ {
				if r.Intn(100) < ratioPct {
					k := r.Uint64()
					if k == keys.Max[uint64]() {
						k--
					}
					ops = append(ops, cpubtree.MixedOp[uint64]{Kind: cpubtree.MixedInsert, Key: k, Value: workload.ValueFor(k)})
				} else {
					ops = append(ops, cpubtree.MixedOp[uint64]{Kind: cpubtree.MixedSearch, Key: pairs[r.Intn(len(pairs))].Key})
				}
			}
			res, st, err := tr.MixedBatch(ops, method)
			if err != nil {
				return nil, err
			}
			// Functional spot-check on searches.
			for i, op := range ops {
				if op.Kind == cpubtree.MixedSearch && !res.Found[i] {
					return nil, fmt.Errorf("fig21: search of existing key %d missed", op.Key)
				}
			}
			row = append(row, fmtF(float64(batch)/st.HostTime.Seconds()/1e6, 2))
			tr.Close()
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}
