// Package harness regenerates every table and figure of the paper's
// evaluation (Figures 7-21, Sections 6 and Appendix B). Each experiment
// is a registered runner that builds the required trees, executes the
// workload functionally (verifying results), evaluates the calibrated
// cost model on the virtual clock, and emits the same rows/series the
// paper plots. The cmd/hbbench tool and the repository's benchmark suite
// both drive this package.
//
// Dataset sizes are scaled relative to the paper's 8M-1B sweep (the
// mechanisms — LLC overflow, GPU-memory pressure, bucket pipelining —
// are triggered by the platform model's capacity constants, which stay
// at paper-scale values), and every run reports the sizes used.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config parameterises an experiment run.
type Config struct {
	// Machine selects the platform model: "M1" (default) or "M2".
	// Individual experiments override it where the paper prescribes a
	// machine (Figure 8 and 18 use M2).
	Machine string

	// Sizes are the dataset sizes (tuples) to sweep; nil selects the
	// default scaled sweep.
	Sizes []int

	// Queries is the number of search queries issued per measurement;
	// zero selects a default.
	Queries int

	// Seed makes the run reproducible.
	Seed uint64

	// Quick shrinks sizes and query counts for use inside `go test`.
	Quick bool
}

func (c Config) fill() Config {
	if c.Machine == "" {
		c.Machine = "M1"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Sizes) == 0 {
		if c.Quick {
			c.Sizes = []int{1 << 17, 1 << 19}
		} else {
			c.Sizes = []int{1 << 20, 1 << 21, 1 << 22, 1 << 23, 1 << 24}
		}
	}
	if c.Queries == 0 {
		if c.Quick {
			c.Queries = 1 << 16
		} else {
			c.Queries = 1 << 19
		}
	}
	return c
}

// Table is one figure's data: named columns and formatted rows.
type Table struct {
	ID    string
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  %s\n", t.Note)
	}
	width := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(width) {
				w = width[i]
			}
			parts[i] = fmt.Sprintf("%*s", w, c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Cols)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Runner produces the tables of one experiment.
type Runner func(Config) ([]Table, error)

// experiment couples a runner with its description.
type experiment struct {
	id    string
	title string
	run   Runner
}

var registry []experiment

// register adds an experiment; called from the figure files' init.
func register(id, title string, run Runner) {
	registry = append(registry, experiment{id: id, title: title, run: run})
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the experiment's title.
func Describe(id string) (string, bool) {
	for _, e := range registry {
		if e.id == id {
			return e.title, true
		}
	}
	return "", false
}

// Run executes one experiment by id.
func Run(id string, cfg Config) ([]Table, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(cfg.fill())
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, IDs())
}

// RunAll executes every experiment, writing tables to w as they finish.
func RunAll(cfg Config, w io.Writer) error {
	ids := IDs()
	for _, id := range ids {
		start := time.Now()
		tables, err := Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for i := range tables {
			tables[i].Fprint(w)
		}
		fmt.Fprintf(w, "  [%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// --- formatting helpers ---------------------------------------------

func fmtMQPS(qps float64) string { return fmt.Sprintf("%.1f", qps/1e6) }

func fmtSize(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// WriteCSV emits the table as RFC-4180 CSV with a leading comment row
// carrying the id/title, for piping results into plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.ID, t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Cols); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
