package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickCfg is a small configuration that keeps every experiment fast
// enough for the test suite while still exercising its full code path.
func quickCfg() Config {
	// Sizes must push the leaf segment well past the modelled 20 MiB LLC
	// so the memory-bound regimes of the paper appear (4M pairs = 64 MiB,
	// 8M pairs = 128 MiB of leaves — the paper's smallest tree is 8M);
	// queries cover 16 buckets so bucket pipelines reach steady state.
	return Config{Quick: true, Sizes: []int{1 << 22, 1 << 23}, Queries: 1 << 18}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext-framework", "ext-update",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"fig5-6", "fig7", "fig8", "fig9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range got {
		if _, ok := Describe(id); !ok {
			t.Fatalf("no description for %s", id)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Fatal("described unknown experiment")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// runFig runs one experiment and returns its tables, failing the test on
// error or empty output.
func runFig(t *testing.T, id string) []Table {
	t.Helper()
	if testing.Short() {
		// The figure regenerations take minutes under the race detector;
		// the full (non -short) suite covers them.
		t.Skip("figure regeneration skipped in -short mode")
	}
	tables, err := Run(id, quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 || len(tb.Cols) == 0 {
			t.Fatalf("%s/%s: empty table", id, tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Cols) {
				t.Fatalf("%s/%s: row width %d != %d cols", id, tb.ID, len(r), len(tb.Cols))
			}
		}
		var buf bytes.Buffer
		tb.Fprint(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Fatalf("%s: Fprint lost the table id", id)
		}
	}
	return tables
}

// cell parses a numeric table cell (stripping trailing x/%).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig7Shapes(t *testing.T) {
	tables := runFig(t, "fig7")
	misses, thr := tables[0], tables[1]
	for _, r := range misses.Rows {
		all4K := cell(t, r[1])
		huge := cell(t, r[2])
		full := cell(t, r[3])
		if all4K < huge || huge < full {
			t.Fatalf("TLB miss ordering violated: %v", r)
		}
		// Huge-paged I-segment bounds misses to ~1 per query (Sec. 4.1).
		if huge > 1.05 {
			t.Fatalf("1G/4K misses %v exceed one per query", huge)
		}
	}
	last := misses.Rows[len(misses.Rows)-1]
	first := misses.Rows[0]
	if cell(t, last[1]) <= cell(t, first[1]) {
		t.Fatalf("4K/4K misses do not grow with tree size: %v vs %v", first[1], last[1])
	}
	for _, r := range thr.Rows {
		if cell(t, r[3]) < cell(t, r[1]) {
			t.Fatalf("1G/1G should not be slower than 4K/4K: %v", r)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	tb := runFig(t, "fig8")[0]
	for _, r := range tb.Rows {
		noSWP, seq, lin, hier := cell(t, r[1]), cell(t, r[2]), cell(t, r[3]), cell(t, r[4])
		if seq <= noSWP {
			t.Fatalf("software pipelining gained nothing: %v", r)
		}
		gain := seq / noSWP
		if gain < 1.5 || gain > 3.5 {
			t.Fatalf("SWP gain %.2f outside the paper's regime", gain)
		}
		if !(hier >= lin && lin >= seq) {
			t.Fatalf("node search ordering violated: %v", r)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	tb := runFig(t, "fig9")[0]
	for _, r := range tb.Rows {
		ratio := cell(t, r[3])
		if ratio < 1.0 || ratio > 2.0 {
			t.Fatalf("B+/FAST ratio %.2f implausible (paper ~1.3x)", ratio)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	tb := runFig(t, "fig10")[0]
	for _, r := range tb.Rows {
		seq, pipe, db := cell(t, r[1]), cell(t, r[2]), cell(t, r[3])
		if !(db >= pipe && pipe >= seq) {
			t.Fatalf("strategy ordering violated: %v", r)
		}
		if db < 1.5*seq {
			t.Fatalf("double-buffering gain too small: %v", r)
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	tables := runFig(t, "fig11")
	thr, lat := tables[0], tables[1]
	// Throughput grows (or holds) with bucket size; latency grows.
	for c := 1; c <= 2; c++ {
		if cell(t, thr.Rows[len(thr.Rows)-1][c]) < cell(t, thr.Rows[0][c])*0.95 {
			t.Fatalf("column %d: throughput fell with bucket size", c)
		}
		if cell(t, lat.Rows[len(lat.Rows)-1][c]) <= cell(t, lat.Rows[0][c]) {
			t.Fatalf("column %d: latency did not grow with bucket size", c)
		}
	}
}

func TestFig12Shapes(t *testing.T) {
	tb := runFig(t, "fig12")[0]
	if tb.Rows[0][0] != "Uniform" || cell(t, tb.Rows[0][1]) != 1.0 {
		t.Fatalf("baseline row wrong: %v", tb.Rows[0])
	}
	var zipf float64
	for _, r := range tb.Rows {
		if r[0] == "Zipf" {
			zipf = cell(t, r[1])
		}
	}
	if zipf < 1.2 {
		t.Fatalf("Zipf gain %.2fx too small (paper: up to 2.2x)", zipf)
	}
}

func TestFig13Shapes(t *testing.T) {
	tables := runFig(t, "fig13")
	thr := tables[0]
	for _, r := range thr.Rows {
		a1, amt := cell(t, r[1]), cell(t, r[2])
		if amt <= a1 {
			t.Fatalf("async-MT not faster than async-1T: %v", r)
		}
		if amt > 4.5*a1 {
			t.Fatalf("async speedup %.1f exceeds the paper's ~3x regime", amt/a1)
		}
		s1, smt := cell(t, r[3]), cell(t, r[4])
		if smt < s1 {
			t.Fatalf("sync-MT slower than sync-1T: %v", r)
		}
	}
}

func TestFig14Shapes(t *testing.T) {
	tb := runFig(t, "fig14")[0]
	if tb.Rows[0][3] != "sync" {
		t.Fatalf("smallest batch should favour sync: %v", tb.Rows[0])
	}
	if tb.Rows[len(tb.Rows)-1][3] != "async" {
		t.Fatalf("largest batch should favour async: %v", tb.Rows[len(tb.Rows)-1])
	}
}

func TestFig15Shapes(t *testing.T) {
	tb := runFig(t, "fig15")[0]
	for _, r := range tb.Rows {
		share := cell(t, r[4])
		if share <= 0 || share > 25 {
			t.Fatalf("I-seg transfer share %.1f%% implausible (paper: 3-7%%)", share)
		}
	}
}

func TestFig16Shapes(t *testing.T) {
	tables := runFig(t, "fig16")
	t64 := tables[0]
	for _, r := range t64.Rows {
		gain := cell(t, r[5])
		if gain < 1.0 {
			t.Fatalf("HB+ slower than CPU on M1: %v", r)
		}
	}
	// The gain grows (or holds) as the tree outgrows the LLC.
	if cell(t, t64.Rows[len(t64.Rows)-1][5]) < cell(t, t64.Rows[0][5])*0.9 {
		t.Fatalf("HB+/CPU gain shrank with size")
	}
	lat := tables[2]
	for _, r := range lat.Rows {
		if cell(t, r[4]) < 5 {
			t.Fatalf("hybrid latency ratio %v too small (paper ~67x)", r[4])
		}
	}
}

func TestFig17Shapes(t *testing.T) {
	tb := runFig(t, "fig17")[0]
	first := cell(t, tb.Rows[0][5])
	last := cell(t, tb.Rows[len(tb.Rows)-1][5])
	if last >= first {
		t.Fatalf("HB+ range advantage should decay with selectivity: %v -> %v", first, last)
	}
}

func TestFig18Shapes(t *testing.T) {
	tb := runFig(t, "fig18")[0]
	for _, r := range tb.Rows {
		cpu, noLB, lb := cell(t, r[2]), cell(t, r[3]), cell(t, r[4])
		if lb < noLB {
			t.Fatalf("load balancing made things worse: %v", r)
		}
		_ = cpu
	}
	// At the largest size the unbalanced tree should trail the CPU tree
	// (the paper's -25% observation) while the balanced one recovers.
	last := tb.Rows[len(tb.Rows)-1]
	if cell(t, last[3]) >= cell(t, last[2]) {
		t.Fatalf("no-LB HB+ should trail CPU-opt on M2 at scale: %v", last)
	}
	if cell(t, last[4]) <= cell(t, last[3]) {
		t.Fatalf("balanced HB+ should beat unbalanced: %v", last)
	}
}

func TestFig19Shapes(t *testing.T) {
	tb := runFig(t, "fig19")[0]
	for _, r := range tb.Rows {
		if cell(t, r[2]) > cell(t, r[1])*1.02 {
			t.Fatalf("HB+ CPU-only should not beat the CPU-optimized tree: %v", r)
		}
	}
}

func TestFig20Shapes(t *testing.T) {
	tb := runFig(t, "fig20")[0]
	// Throughput grows to depth 16 then flattens; latency keeps rising.
	var d16, d32, d1 float64
	var lat1, lat16 float64
	for _, r := range tb.Rows {
		switch r[0] {
		case "1":
			d1, lat1 = cell(t, r[1]), cell(t, r[2])
		case "16":
			d16, lat16 = cell(t, r[1]), cell(t, r[2])
		case "32":
			d32 = cell(t, r[1])
		}
	}
	if d16 <= d1 || d32 > d16*1.05 {
		t.Fatalf("pipelining throughput shape wrong: 1=%v 16=%v 32=%v", d1, d16, d32)
	}
	if lat16 <= lat1 {
		t.Fatalf("latency did not grow with depth: %v vs %v", lat1, lat16)
	}
}

func TestFig21Shapes(t *testing.T) {
	tb := runFig(t, "fig21")[0]
	// Sync decays at least as fast as async as the update ratio grows.
	firstAsync, firstSync := cell(t, tb.Rows[0][1]), cell(t, tb.Rows[0][2])
	lastAsync, lastSync := cell(t, tb.Rows[len(tb.Rows)-1][1]), cell(t, tb.Rows[len(tb.Rows)-1][2])
	if lastSync/firstSync > lastAsync/firstAsync*1.05 {
		t.Fatalf("sync should decay faster: async %v->%v, sync %v->%v",
			firstAsync, lastAsync, firstSync, lastSync)
	}
}

func TestTraceShapes(t *testing.T) {
	tables := runFig(t, "fig5-6")
	if len(tables) != 3 {
		t.Fatalf("expected 3 strategy charts, got %d", len(tables))
	}
	for _, tb := range tables {
		joined := ""
		for _, r := range tb.Rows {
			joined += r[0] + "\n"
		}
		for _, res := range []string{"CPU", "PCIeH2D", "GPU", "PCIeD2H"} {
			if !strings.Contains(joined, res) {
				t.Fatalf("%s: missing %s lane", tb.ID, res)
			}
		}
		if !strings.Contains(joined, "#") {
			t.Fatalf("%s: no occupancy drawn", tb.ID)
		}
	}
}

func TestExtUpdateShapes(t *testing.T) {
	tb := runFig(t, "ext-update")[0]
	for _, r := range tb.Rows {
		if cell(t, r[3]) <= 1.0 {
			t.Fatalf("GPU-assisted updates not faster: %v", r)
		}
	}
}

func TestExtFrameworkShapes(t *testing.T) {
	tb := runFig(t, "ext-framework")[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("expected two indices, got %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if cell(t, r[1]) <= 0 {
			t.Fatalf("no throughput for %v", r)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is too slow for -short mode")
	}
	var buf bytes.Buffer
	cfg := Config{Quick: true, Sizes: []int{1 << 14}, Queries: 1 << 14}
	if err := RunAll(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := Table{ID: "x", Title: "ti,tle", Cols: []string{"a", "b"}}
	tb.AddRow("1", "2,3")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# x") || !strings.Contains(out, `"2,3"`) {
		t.Fatalf("csv output wrong: %q", out)
	}
}
