package harness

// Kill-and-restart durability acceptance (ISSUE PR-6 tentpole): build
// the real hbserve binary, storm it with writes over TCP, SIGKILL it
// mid-storm, restart it on the same data dir, and assert the durability
// contract from the client's chair:
//
//   - zero lost acked writes: every PUT/DEL the client saw OK for is in
//     the recovered state with its acked value;
//   - no phantom state: the recovered state holds nothing outside the
//     seeded dataset and the submitted writes — un-acked submissions MAY
//     appear (they were WAL-appended before the ack was cut off) but
//     never with a value the client did not send;
//   - recovery is bulk load + tail replay: the PERSIST stats of the
//     restarted server must show the snapshot bulk load, and across the
//     seeded runs the WAL tail replay must actually fire — the proof is
//     the recovery counters, not timing.
//
// Each run uses a seeded kill schedule (ack-count threshold drawn from
// the run seed) so failures reproduce.

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hbtree"
)

const (
	durabilityRuns      = 20
	durabilityRunsShort = 4
	durDatasetN         = 20000
	durDatasetSeed      = 42
	// putBase starts the storm's key range far above the seeded
	// dataset's plausible density so phantom checks are unambiguous.
	putBase = uint64(1) << 40
)

var listenRE = regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)

// buildHBServe compiles cmd/hbserve once per test into dir.
func buildHBServe(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "hbserve")
	cmd := exec.Command("go", "build", "-o", bin, "hbtree/cmd/hbserve")
	cmd.Dir = "../.." // module root; tests run in internal/harness
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build hbserve: %v\n%s", err, out)
	}
	return bin
}

// child is one hbserve process plus its captured stderr.
type child struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
	mu     sync.Mutex
}

// startChild launches hbserve on an ephemeral port and waits for its
// "listening on" line.
func startChild(t *testing.T, bin, dataDir string, extra ...string) *child {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-variant", "regular",
		"-n", fmt.Sprint(durDatasetN),
		"-seed", fmt.Sprint(durDatasetSeed),
		"-data-dir", dataDir,
		"-fsync-interval", "500us",
	}, extra...)
	c := &child{cmd: exec.Command(bin, args...), stderr: &bytes.Buffer{}}
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	c.cmd.Stderr = pw
	if err := c.cmd.Start(); err != nil {
		t.Fatalf("start hbserve: %v", err)
	}
	pw.Close()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			line := sc.Text()
			c.mu.Lock()
			c.stderr.WriteString(line)
			c.stderr.WriteByte('\n')
			c.mu.Unlock()
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case c.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		c.kill()
		t.Fatalf("hbserve did not come up; stderr:\n%s", c.log())
	}
	return c
}

func (c *child) log() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stderr.String()
}

func (c *child) kill() {
	c.cmd.Process.Signal(syscall.SIGKILL)
	c.cmd.Wait()
}

// dial opens one protocol connection to the child.
func (c *child) dial(t *testing.T) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		t.Fatalf("dial %s: %v", c.addr, err)
	}
	return conn, bufio.NewReader(conn)
}

// ask sends one line and returns the trimmed single-line reply.
func ask(conn net.Conn, r *bufio.Reader, line string) (string, error) {
	if _, err := fmt.Fprintln(conn, line); err != nil {
		return "", err
	}
	resp, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp), nil
}

// ackLog is a writer connection's record of what the server acked.
type ackLog struct {
	ackedPut  map[uint64]uint64 // key -> last value the server acked
	ackedDel  map[uint64]bool   // dataset keys whose DEL was acked
	submitted map[uint64]uint64 // every PUT sent, acked or not
	delSent   map[uint64]bool   // every DEL sent, acked or not
}

// storm writes PUTs (and, on lane 0, DELs of dataset keys) until the
// connection dies under the SIGKILL; everything read as OK before the
// cut is recorded as acked.
func storm(c *child, t *testing.T, lane int, pairs []hbtree.Pair[uint64], acks *atomic.Int64) *ackLog {
	t.Helper()
	al := &ackLog{
		ackedPut:  make(map[uint64]uint64),
		ackedDel:  make(map[uint64]bool),
		submitted: make(map[uint64]uint64),
		delSent:   make(map[uint64]bool),
	}
	conn, r := c.dial(t)
	defer conn.Close()
	base := putBase + uint64(lane)<<32
	for i := uint64(0); ; i++ {
		if lane == 0 && i%8 == 3 {
			// Interleave deletes of seeded dataset keys.
			k := pairs[int(i)%len(pairs)].Key
			al.delSent[k] = true
			resp, err := ask(conn, r, fmt.Sprintf("DEL %d", k))
			if err != nil {
				return al // the kill landed
			}
			if resp == "OK" || resp == "NOTFOUND" {
				al.ackedDel[k] = true
				acks.Add(1)
			}
			continue
		}
		k, v := base+i, i*2+uint64(lane)+1
		al.submitted[k] = v
		resp, err := ask(conn, r, fmt.Sprintf("PUT %d %d", k, v))
		if err != nil {
			return al
		}
		if resp == "OK" {
			al.ackedPut[k] = v
			acks.Add(1)
		}
	}
}

// runKillRestart performs one seeded kill-and-restart cycle and returns
// the restarted server's replayed-record count.
func runKillRestart(t *testing.T, bin string, runSeed int64, pairs []hbtree.Pair[uint64]) int {
	t.Helper()
	rng := rand.New(rand.NewSource(runSeed))
	dataDir := filepath.Join(t.TempDir(), "data")
	killAfter := int64(100 + rng.Intn(900)) // acks before the SIGKILL
	extra := []string{"-shards", fmt.Sprint(1 + rng.Intn(3))}
	if rng.Intn(3) == 0 {
		// Let background snapshots race the kill on some runs.
		extra = append(extra, "-snapshot-every", "200ms")
	}

	c := startChild(t, bin, dataDir, extra...)
	var acks atomic.Int64
	const lanes = 4
	logs := make([]*ackLog, lanes)
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			logs[lane] = storm(c, t, lane, pairs, &acks)
		}(lane)
	}
	// The seeded kill schedule: SIGKILL the instant the acked-write
	// count crosses the threshold (bounded by a hard deadline so a
	// stalled storm cannot hang the run).
	deadline := time.Now().Add(30 * time.Second)
	for acks.Load() < killAfter && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	c.kill()
	wg.Wait()
	if got := acks.Load(); got < killAfter {
		t.Fatalf("run %d: storm stalled at %d acks (wanted %d before the kill)", runSeed, got, killAfter)
	}

	// Restart on the same data dir and interrogate the recovery.
	rc := startChild(t, bin, dataDir, extra...)
	defer rc.kill()
	conn, r := rc.dial(t)
	defer conn.Close()

	persist, err := ask(conn, r, "PERSIST")
	if err != nil {
		t.Fatalf("run %d: PERSIST: %v", runSeed, err)
	}
	stats := parseKV(persist)
	if stats["recovered"] != "true" {
		t.Fatalf("run %d: restart did not recover: %s", runSeed, persist)
	}
	var bulk, replayed int
	fmt.Sscan(stats["bulkloaded"], &bulk)
	fmt.Sscan(stats["replayed"], &replayed)
	if bulk <= 0 {
		t.Fatalf("run %d: recovery bulk-loaded nothing: %s", runSeed, persist)
	}

	get := func(k uint64) (uint64, bool) {
		resp, err := ask(conn, r, fmt.Sprintf("GET %d", k))
		if err != nil {
			t.Fatalf("run %d: GET: %v", runSeed, err)
		}
		if resp == "NOTFOUND" {
			return 0, false
		}
		var v uint64
		if _, err := fmt.Sscanf(resp, "VALUE %d", &v); err != nil {
			t.Fatalf("run %d: GET reply %q", runSeed, resp)
		}
		return v, true
	}

	// Zero lost acked writes; no value the client never sent.
	for _, al := range logs {
		for k, v := range al.ackedPut {
			got, ok := get(k)
			if !ok {
				t.Fatalf("run %d: acked PUT %d=%d lost", runSeed, k, v)
			}
			if got != v {
				if sub, wasSub := al.submitted[k]; !wasSub || got != sub {
					t.Fatalf("run %d: key %d recovered as %d, acked %d", runSeed, k, got, v)
				}
			}
		}
		for k := range al.ackedDel {
			if v, ok := get(k); ok {
				t.Fatalf("run %d: acked DEL of %d lost (value %d back)", runSeed, k, v)
			}
		}
		// Un-acked submissions may appear — but only with the submitted
		// value (the in-flight record was either fully replayed or torn
		// off; never mangled).
		for k, v := range al.submitted {
			if _, acked := al.ackedPut[k]; acked {
				continue
			}
			if got, ok := get(k); ok && got != v {
				t.Fatalf("run %d: un-acked key %d recovered as %d, submitted %d", runSeed, k, got, v)
			}
		}
	}
	// No phantom state: keys nobody ever wrote are absent.
	for lane := 0; lane < lanes; lane++ {
		probe := putBase + uint64(lane)<<32 + uint64(len(logs[lane].submitted)) + 1000
		if v, ok := get(probe); ok {
			t.Fatalf("run %d: phantom key %d=%d appeared", runSeed, probe, v)
		}
	}
	// Untouched dataset keys survive with their original values.
	deleted := make(map[uint64]bool)
	for _, al := range logs {
		for k := range al.delSent {
			deleted[k] = true
		}
	}
	checked := 0
	for i := 0; i < len(pairs) && checked < 50; i += 97 {
		p := pairs[i]
		if deleted[p.Key] {
			continue
		}
		checked++
		if v, ok := get(p.Key); !ok || v != p.Value {
			t.Fatalf("run %d: dataset key %d recovered as (%d,%v), want %d", runSeed, p.Key, v, ok, p.Value)
		}
	}
	return replayed
}

// parseKV splits "NAME k=v k=v ..." into a map.
func parseKV(line string) map[string]string {
	out := make(map[string]string)
	for _, f := range strings.Fields(line) {
		if i := strings.IndexByte(f, '='); i > 0 {
			out[f[:i]] = f[i+1:]
		}
	}
	return out
}

func TestKillRestartDurability(t *testing.T) {
	if testing.Short() && os.Getenv("DURABILITY_FULL") == "" {
		t.Log("-short: running the reduced seeded schedule")
	}
	bin := buildHBServe(t, t.TempDir())
	pairs := hbtree.GeneratePairs[uint64](durDatasetN, durDatasetSeed)

	runs := durabilityRuns
	if testing.Short() {
		runs = durabilityRunsShort
	}
	totalReplayed := 0
	for i := 0; i < runs; i++ {
		seed := int64(1000 + i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			totalReplayed += runKillRestart(t, bin, seed, pairs)
		})
	}
	// The contract is proven by recovery stats, not timing: across the
	// seeded schedule the WAL tail replay must actually have fired.
	if totalReplayed == 0 {
		t.Fatalf("no run replayed a WAL tail — every kill landed on a clean snapshot, the schedule is not exercising recovery")
	}
	t.Logf("replayed %d WAL records across %d kill-and-restart runs", totalReplayed, runs)
}
