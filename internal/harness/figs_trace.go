package harness

import (
	"fmt"
	"strings"

	"hbtree/internal/core"
	"hbtree/internal/platform"
	"hbtree/internal/vclock"
	"hbtree/internal/workload"
)

func init() {
	register("fig5-6", "Pipeline timelines: sequential vs pipelined vs double-buffered (Sec. 5.4, Figs. 5-6)", runTrace)
}

// runTrace reproduces the paper's pipelining diagrams: for each bucket
// handling strategy it runs a short batch with timeline recording on and
// renders the resource occupancy as an ASCII Gantt chart — the overlap
// of H2D, kernel, D2H and CPU stages across buckets is Figures 5 and 6.
func runTrace(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[0]
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	qs := workload.SearchInput(pairs, 4*core.DefaultBucketSize, cfg.Seed+1)

	var tables []Table
	for _, s := range []core.Strategy{core.Sequential, core.Pipelined, core.DoubleBuffered} {
		tr, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Implicit, Strategy: s})
		if err != nil {
			return nil, err
		}
		tr.SetTrace(true)
		vals, fnd, stats, err := tr.LookupBatch(qs)
		if err != nil {
			return nil, err
		}
		if err := verifyHits(qs, vals, fnd); err != nil {
			return nil, fmt.Errorf("fig5-6 %v: %w", s, err)
		}
		tl := tr.LastTrace()
		if tl == nil {
			return nil, fmt.Errorf("fig5-6: no trace recorded")
		}
		chart := vclock.Gantt{Width: 96}.RenderString(tl)
		t := Table{
			ID: "fig5-6/" + s.String(),
			Title: fmt.Sprintf("%s bucket handling: 4 buckets of 16K, %.1f MQPS (digits mark bucket starts)",
				s.String(), stats.ThroughputQPS/1e6),
			Cols: []string{"resource occupancy over virtual time"},
		}
		for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
			t.AddRow(line)
		}
		tables = append(tables, t)
		tr.Close()
	}
	return tables, nil
}
