package harness

import (
	"fmt"

	"hbtree/internal/core"
	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

func init() {
	register("fig18", "Load balancing on a CPU-strong platform, machine M2 (Sec. 6.5, Fig. 18)", runFig18)
}

func runFig18(cfg Config) ([]Table, error) {
	m := platform.M2() // the experiment's point is M2's weak GPU
	t := Table{
		ID:    "fig18",
		Title: "load balancing on M2 (MQPS)",
		Note:  "paper: without balancing HB+ runs ~25% below the CPU-optimized tree; the discovery algorithm recovers +65% over unbalanced, beating the CPU tree",
		Cols:  []string{"size", "variant", "CPU-opt", "HB+ no-LB", "HB+ LB", "D", "R", "LB vs CPU"},
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		qs := workload.SearchInput(pairs, cfg.Queries, cfg.Seed+1)
		for _, v := range []core.Variant{core.Implicit, core.Regular} {
			cpuQPS, _, err := cpuOptThroughput(pairs, m.CPU, v == core.Regular, cfg.Queries)
			if err != nil {
				return nil, err
			}
			noLB, err := core.Build(pairs, core.Options{Machine: m, Variant: v, Strategy: core.DoubleBuffered})
			if err != nil {
				return nil, err
			}
			_, _, noLBStats, err := noLB.LookupBatch(qs)
			if err != nil {
				return nil, err
			}
			noLB.Close()

			lb, err := core.Build(pairs, core.Options{Machine: m, Variant: v, Strategy: core.DoubleBuffered, LoadBalance: true})
			if err != nil {
				return nil, err
			}
			bal := lb.Discover()
			vals, fnd, lbStats, err := lb.LookupBatch(qs)
			if err != nil {
				return nil, err
			}
			if err := verifyHits(qs, vals, fnd); err != nil {
				return nil, fmt.Errorf("fig18 %v: %w", v, err)
			}
			lb.Close()

			t.AddRow(fmtSize(n), v.String(),
				fmtMQPS(cpuQPS),
				fmtMQPS(noLBStats.ThroughputQPS),
				fmtMQPS(lbStats.ThroughputQPS),
				fmt.Sprintf("%d", bal.D), fmtF(bal.R, 2),
				fmtF((lbStats.ThroughputQPS/cpuQPS-1)*100, 0)+"%")
		}
	}
	return []Table{t}, nil
}
