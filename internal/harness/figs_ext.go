package harness

import (
	"fmt"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/csstree"
	"hbtree/internal/hybrid"
	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

// The paper's Section 7 names two future-work directions; both are
// implemented in this repository and evaluated here as extension
// experiments (they have no figure in the paper).

func init() {
	register("ext-update", "Extension: GPU-assisted batch updates (paper future work 1, Sec. 7)", runExtUpdate)
	register("ext-framework", "Extension: generic leaf-stored hybrid framework (paper future work 2, Sec. 7)", runExtFramework)
}

func runExtUpdate(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "ext-update",
		Title: fmt.Sprintf("GPU-assisted update resolution vs conventional async, %s tuples", fmtSize(n)),
		Note:  "the GPU resolves each update's target leaf over the I-segment replica; the CPU applies leaf groups without re-descending the tree",
		Cols:  []string{"batch", "async host (ms)", "gpu-assist host (ms)", "speedup"},
	}
	batches := []int{1 << 13, 1 << 15, 1 << 17}
	if cfg.Quick {
		batches = []int{1 << 12, 1 << 14}
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	for _, b := range batches {
		ops := makeOps(pairs, b, 0.2, cfg.Seed+uint64(b))
		conv, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Regular, LeafFill: 0.85})
		if err != nil {
			return nil, err
		}
		cst, err := conv.Update(ops, core.AsyncParallel)
		if err != nil {
			return nil, err
		}
		conv.Close()
		gpu, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Regular, LeafFill: 0.85})
		if err != nil {
			return nil, err
		}
		gst, err := gpu.UpdateGPUAssisted(ops)
		if err != nil {
			return nil, err
		}
		if err := gpu.VerifyReplica(); err != nil {
			return nil, fmt.Errorf("ext-update: %w", err)
		}
		gpu.Close()
		t.AddRow(fmtSize(b),
			fmtF(cst.HostTime.Seconds()*1e3, 2),
			fmtF(gst.HostTime.Seconds()*1e3, 2),
			fmtF(cst.HostTime.Seconds()/gst.HostTime.Seconds(), 2)+"x")
	}
	return []Table{t}, nil
}

func runExtFramework(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "ext-framework",
		Title: fmt.Sprintf("generic hybrid engine over different leaf-stored trees, %s tuples (MQPS)", fmtSize(n)),
		Note:  "the same engine searches any index exposing a directory image + leaf function; CSS-tree was never supported by the original system",
		Cols:  []string{"index", "MQPS", "latency (us)", "GPU MB moved"},
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	qs := workload.SearchInput(pairs, cfg.Queries, cfg.Seed+3)

	bplus, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 8})
	if err != nil {
		return nil, err
	}
	css, err := csstree.Build(pairs, 0)
	if err != nil {
		return nil, err
	}
	indices := []struct {
		name string
		idx  hybrid.Index[uint64]
	}{
		{"implicit B+-tree", hybrid.WrapBPlus(bplus)},
		{"CSS-tree", hybrid.WrapCSS(css)},
	}
	for _, entry := range indices {
		e, err := hybrid.NewEngine(entry.idx, hybrid.Options{Machine: m})
		if err != nil {
			return nil, err
		}
		vals, found, stats, err := e.LookupBatch(qs)
		if err != nil {
			e.Close()
			return nil, err
		}
		for i, q := range qs {
			if !found[i] || vals[i] != workload.ValueFor(q) {
				e.Close()
				return nil, fmt.Errorf("ext-framework: %s query %d wrong", entry.name, i)
			}
		}
		c := e.Device().Counters()
		t.AddRow(entry.name, fmtMQPS(stats.ThroughputQPS),
			fmtF(stats.AvgLatency.Micros(), 1),
			fmtF(float64(c.BytesH2D+c.BytesD2H)/(1<<20), 1))
		e.Close()
	}
	return []Table{t}, nil
}
