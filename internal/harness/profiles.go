package harness

import (
	"hbtree/internal/cpubtree"
	"hbtree/internal/fast"
	"hbtree/internal/keys"
	"hbtree/internal/model"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
)

// This file models the CPU-optimized baselines' performance: miss
// profiles derived from tree geometry (the cache-resident prefix of the
// level footprints) fed into the shared cost model. The HB+-tree's own
// model lives in internal/core; these cover the standalone CPU trees and
// FAST, which the core does not wrap.

// implicitProfile returns the per-query miss profile and in-node search
// count of a CPU-optimized implicit tree.
func implicitProfile[K keys.Key](t *cpubtree.ImplicitTree[K], cpu platform.CPU) (model.MissProfile, float64) {
	h := t.Height()
	st := t.Stats()
	geom := t.LevelGeometry()
	bytes := make([]int64, h+1)
	lines := make([]float64, h+1)
	for d := 0; d < h; d++ {
		ln := int64(geom[d].Kpn / keys.PerLine[K]())
		bytes[d] = int64(geom[d].Nodes) * ln * keys.LineBytes
		lines[d] = float64(ln)
	}
	bytes[h] = st.LeafBytes
	lines[h] = 1
	return model.ProfileLevels(bytes, lines, cpu.LLCBytes), float64(h + 1)
}

// regularProfile returns the per-query miss profile and in-node search
// count of a CPU-optimized regular tree (3 line touches per upper node,
// 2 at the last level, 1 in the leaf).
func regularProfile[K keys.Key](t *cpubtree.RegularTree[K], cpu platform.CPU) (model.MissProfile, float64) {
	counts := t.LevelNodeCounts()
	st := t.Stats()
	nodeBytes := int64((1 + 2*keys.PerLine[K]()) * keys.LineBytes)
	h := len(counts)
	bytes := make([]int64, h+1)
	lines := make([]float64, h+1)
	for d := 0; d < h; d++ {
		bytes[d] = int64(counts[d]) * nodeBytes
		if d == h-1 {
			lines[d] = 2
		} else {
			lines[d] = 3
		}
	}
	bytes[h] = st.LeafBytes
	lines[h] = 1
	return model.ProfileLevels(bytes, lines, cpu.LLCBytes), 2*float64(h) - 1
}

// fastProfile returns the miss profile and per-query block-search count
// of a FAST tree: one line per cache-line-block level plus the sorted
// pair-array probe.
func fastProfile[K keys.Key](t *fast.Tree[K], cpu platform.CPU) (model.MissProfile, float64) {
	st := t.Stats()
	bytes := append(append([]int64{}, st.LevelBytes...), t.PairBytes())
	lines := make([]float64, len(bytes))
	for i := range lines {
		lines[i] = 1
	}
	return model.ProfileLevels(bytes, lines, cpu.LLCBytes), float64(st.BlockLevels)
}

// cpuTreeThroughput models the batch lookup throughput of a standalone
// CPU tree from its profile, with optional TLB-walk overhead per query.
func cpuTreeThroughput(cpu platform.CPU, algo simd.Algorithm, searches float64, p model.MissProfile, walk vclock.Duration, swDepth, n int) float64 {
	pq := model.PerQuery(cpu, algo, searches, p, walk, swDepth, 0)
	d := model.BatchDuration(cpu, n, pq, p.MissBytes(), cpu.Threads)
	return model.Throughput(n, d)
}

// rangeThroughput models range-query throughput: an inner traversal
// (innerSearches node searches over the inner profile) followed by
// ceil(matches/pairsPerLine) leaf-line touches, all on the CPU; for the
// HB+-tree the inner traversal runs on the GPU and the caller passes the
// GPU bucket bound separately.
func rangeProfile(inner model.MissProfile, leafMissFrac float64, matches, pairsPerLine int) model.MissProfile {
	leafLines := float64((matches + pairsPerLine - 1) / pairsPerLine)
	return inner.Add(model.MissProfile{
		Hit:  leafLines * (1 - leafMissFrac),
		Miss: leafLines * leafMissFrac,
	})
}
