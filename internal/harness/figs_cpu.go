package harness

import (
	"fmt"

	"hbtree/internal/cpubtree"
	"hbtree/internal/fast"
	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/model"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
	"hbtree/internal/workload"
)

func init() {
	register("fig7", "Memory page configuration: TLB misses and throughput (Sec. 6.2, Fig. 7)", runFig7)
	register("fig8", "Software pipelining and node-search algorithms (Sec. 6.2, Fig. 8)", runFig8)
	register("fig9", "FAST vs implicit CPU-optimized B+-tree (Sec. 6.2, Fig. 9)", runFig9)
	register("fig19", "HB+-tree lookup using CPU only (App. B.1, Fig. 19)", runFig19)
	register("fig20", "Software-pipeline length sweep (App. B.2, Fig. 20)", runFig20)
}

// pageConfig is one of the three configurations of Figure 7.
type pageConfig struct {
	name string
	iseg mem.PageKind
	lseg mem.PageKind
}

var pageConfigs = []pageConfig{
	{"4K/4K", mem.Page4K, mem.Page4K},
	{"1G/4K", mem.Page1G, mem.Page4K},
	{"1G/1G", mem.Page1G, mem.Page1G},
}

// measureImplicit replays single-threaded instrumented lookups through
// a fresh memory-hierarchy simulator (the PAPI substitute), returning
// the average TLB misses and walk time per query plus the LLC miss
// fraction. A warm-up pass fills the TLB and cache first, as hardware
// counters are read on a warmed system.
func measureImplicit[K keys.Key](t *cpubtree.ImplicitTree[K], cpu platform.CPU, qs []K) (missesPerQ float64, walk vclock.Duration, llcMissFrac float64) {
	h := mem.NewHierarchy(cpu.TLB4KEntries, cpu.TLB1GEntries, cpu.LLCBytes, cpu.LLCWays)
	warm := len(qs) / 4
	for _, q := range qs[:warm] {
		t.LookupInstrumented(q, h)
	}
	h.ResetCounters()
	for _, q := range qs[warm:] {
		t.LookupInstrumented(q, h)
	}
	n := float64(len(qs) - warm)
	c := h.Count
	missesPerQ = float64(c.TLBMisses()) / n
	walk = (vclock.Duration(c.TLBMiss4K)*cpu.Walk4K + vclock.Duration(c.TLBMiss1G)*cpu.Walk1G) / vclock.Duration(n)
	llcMissFrac = float64(c.LLCMisses) / float64(c.Lines)
	return
}

func measureRegular[K keys.Key](t *cpubtree.RegularTree[K], cpu platform.CPU, qs []K) (missesPerQ float64, walk vclock.Duration) {
	h := mem.NewHierarchy(cpu.TLB4KEntries, cpu.TLB1GEntries, cpu.LLCBytes, cpu.LLCWays)
	warm := len(qs) / 4
	for _, q := range qs[:warm] {
		t.LookupInstrumented(q, h)
	}
	h.ResetCounters()
	for _, q := range qs[warm:] {
		t.LookupInstrumented(q, h)
	}
	n := float64(len(qs) - warm)
	c := h.Count
	missesPerQ = float64(c.TLBMisses()) / n
	walk = (vclock.Duration(c.TLBMiss4K)*cpu.Walk4K + vclock.Duration(c.TLBMiss1G)*cpu.Walk1G) / vclock.Duration(n)
	return
}

func runFig7(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	cpu := m.CPU
	misses := Table{
		ID:    "fig7a",
		Title: "average TLB misses per query (single-threaded, instrumented)",
		Note:  "paper's >4GB rise of the 1G/1G configuration needs paper-scale trees; at scaled sizes it stays at ~0 misses, matching the paper's small-tree regime",
		Cols:  []string{"size", "impl 4K/4K", "impl 1G/4K", "impl 1G/1G", "reg 4K/4K", "reg 1G/4K", "reg 1G/1G"},
	}
	thr := Table{
		ID:    "fig7b",
		Title: "lookup throughput by page configuration (MQPS, implicit tree)",
		Cols:  []string{"size", "4K/4K", "1G/4K", "1G/1G"},
	}
	sample := cfg.Queries
	if sample > 20000 {
		sample = 20000
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		qs := workload.SearchInput(pairs, sample, cfg.Seed+1)
		missRow := []string{fmtSize(n)}
		thrRow := []string{fmtSize(n)}
		var implCells, regCells []string
		for _, pc := range pageConfigs {
			it, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{ISegPages: pc.iseg, LSegPages: pc.lseg})
			if err != nil {
				return nil, err
			}
			tm, walk, _ := measureImplicit(it, cpu, qs)
			implCells = append(implCells, fmtF(tm, 3))
			p, searches := implicitProfile(it, cpu)
			qps := cpuTreeThroughput(cpu, simd.Hierarchical, searches, p, walk, cpubtree.DefaultPipelineDepth, cfg.Queries)
			thrRow = append(thrRow, fmtMQPS(qps))

			rt, err := cpubtree.BuildRegular(pairs, cpubtree.Config{ISegPages: pc.iseg, LSegPages: pc.lseg})
			if err != nil {
				return nil, err
			}
			rm, _ := measureRegular(rt, cpu, qs)
			regCells = append(regCells, fmtF(rm, 3))
		}
		missRow = append(missRow, implCells...)
		missRow = append(missRow, regCells...)
		misses.AddRow(missRow...)
		thr.AddRow(thrRow...)
	}
	return []Table{misses, thr}, nil
}

func runFig8(cfg Config) ([]Table, error) {
	m := platform.M2() // the paper runs this experiment on M2 (AVX2)
	cpu := m.CPU
	t := Table{
		ID:    "fig8",
		Title: "node search algorithms and software pipelining, machine M2 (MQPS)",
		Note:  "software pipelining raises throughput ~2-2.5x (paper: 108-152%) and SIMD's edge shrinks as trees outgrow the LLC",
		Cols:  []string{"size", "seq noSWP", "seq", "linear-SIMD", "hier-SIMD", "SWP gain"},
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		it, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
		if err != nil {
			return nil, err
		}
		p, searches := implicitProfile(it, cpu)
		noSWP := cpuTreeThroughput(cpu, simd.Sequential, searches, p, 0, 1, cfg.Queries)
		seq := cpuTreeThroughput(cpu, simd.Sequential, searches, p, 0, 16, cfg.Queries)
		lin := cpuTreeThroughput(cpu, simd.Linear, searches, p, 0, 16, cfg.Queries)
		hier := cpuTreeThroughput(cpu, simd.Hierarchical, searches, p, 0, 16, cfg.Queries)
		// Functional spot-check: all three kernels agree.
		qs := workload.SearchInput(pairs, 2048, cfg.Seed+2)
		for _, q := range qs {
			v, ok := it.Lookup(q)
			if !ok || v != workload.ValueFor(q) {
				return nil, fmt.Errorf("fig8: lookup of %d failed", q)
			}
		}
		t.AddRow(fmtSize(n), fmtMQPS(noSWP), fmtMQPS(seq), fmtMQPS(lin), fmtMQPS(hier),
			fmtF(seq/noSWP, 2)+"x")
	}
	return []Table{t}, nil
}

func runFig9(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	cpu := m.CPU
	t := Table{
		ID:    "fig9",
		Title: "FAST vs implicit CPU-optimized B+-tree (MQPS)",
		Note:  "the paper's implicit B+-tree reaches ~1.3x FAST on average",
		Cols:  []string{"size", "FAST", "B+ implicit", "B+/FAST"},
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		ft, err := fast.Build(pairs, 0)
		if err != nil {
			return nil, err
		}
		it, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
		if err != nil {
			return nil, err
		}
		fp, fsearch := fastProfile(ft, cpu)
		ip, isearch := implicitProfile(it, cpu)
		fq := cpuTreeThroughput(cpu, simd.Linear, fsearch, fp, 0, 16, cfg.Queries)
		iq := cpuTreeThroughput(cpu, simd.Hierarchical, isearch, ip, 0, 16, cfg.Queries)
		// Functional spot-check: both trees agree with the dataset.
		qs := workload.SearchInput(pairs, 2048, cfg.Seed+3)
		for _, q := range qs {
			fv, fok := ft.Lookup(q)
			iv, iok := it.Lookup(q)
			if !fok || !iok || fv != iv {
				return nil, fmt.Errorf("fig9: FAST and B+ disagree on key %d", q)
			}
		}
		t.AddRow(fmtSize(n), fmtMQPS(fq), fmtMQPS(iq), fmtF(iq/fq, 2)+"x")
	}
	return []Table{t}, nil
}

func runFig19(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	cpu := m.CPU
	t := Table{
		ID:    "fig19",
		Title: "lookup in HB+-tree using CPU only vs CPU-optimized trees (MQPS)",
		Note:  "the implicit HB+-tree pays for its reduced fanout (8 vs 9); regular versions share node structures and perform identically",
		Cols:  []string{"size", "CPU-opt impl", "HB+ impl (CPU)", "regular (both)"},
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
		opt, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
		if err != nil {
			return nil, err
		}
		hb, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 8})
		if err != nil {
			return nil, err
		}
		reg, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
		if err != nil {
			return nil, err
		}
		po, so := implicitProfile(opt, cpu)
		ph, sh := implicitProfile(hb, cpu)
		pr, sr := regularProfile(reg, cpu)
		qOpt := cpuTreeThroughput(cpu, simd.Hierarchical, so, po, 0, 16, cfg.Queries)
		qHB := cpuTreeThroughput(cpu, simd.Hierarchical, sh, ph, 0, 16, cfg.Queries)
		qReg := cpuTreeThroughput(cpu, simd.Hierarchical, sr, pr, 0, 16, cfg.Queries)
		t.AddRow(fmtSize(n), fmtMQPS(qOpt), fmtMQPS(qHB), fmtMQPS(qReg))
	}
	return []Table{t}, nil
}

func runFig20(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	cpu := m.CPU
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "fig20",
		Title: fmt.Sprintf("software-pipeline length sweep, %s tuples", fmtSize(n)),
		Note:  "throughput saturates near depth 16 while group latency keeps growing (paper: 2.5x throughput, 6x latency at 16)",
		Cols:  []string{"depth", "MQPS", "latency (us)", "vs depth 1"},
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	it, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
	if err != nil {
		return nil, err
	}
	p, searches := implicitProfile(it, cpu)
	base := 0.0
	for _, depth := range []int{1, 2, 4, 8, 16, 32} {
		pq := model.PerQuery(cpu, simd.Hierarchical, searches, p, 0, depth, 0)
		d := model.BatchDuration(cpu, cfg.Queries, pq, p.MissBytes(), cpu.Threads)
		qps := model.Throughput(cfg.Queries, d)
		lat := pq * vclock.Duration(depth) // a group of `depth` queries completes together
		if depth == 1 {
			base = qps
		}
		// Functional check at this depth.
		c := it.Config()
		c.PipelineDepth = depth
		tr, err := cpubtree.BuildImplicit(pairs[:min(len(pairs), 1<<16)], c)
		if err != nil {
			return nil, err
		}
		qs := workload.SearchInput(pairs[:min(len(pairs), 1<<16)], 1024, cfg.Seed+4)
		vals := make([]uint64, len(qs))
		fnd := make([]bool, len(qs))
		tr.LookupBatch(qs, vals, fnd)
		for i := range qs {
			if !fnd[i] {
				return nil, fmt.Errorf("fig20: depth %d lookup failed", depth)
			}
		}
		t.AddRow(fmt.Sprintf("%d", depth), fmtMQPS(qps), fmtF(lat.Micros(), 2), fmtF(qps/base, 2)+"x")
	}
	return []Table{t}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
