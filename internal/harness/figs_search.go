package harness

import (
	"fmt"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/mem"
	"hbtree/internal/model"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
	"hbtree/internal/workload"
)

func init() {
	register("fig10", "Bucket handling strategies (Sec. 6.3, Fig. 10)", runFig10)
	register("fig11", "Bucket size sweep: throughput and latency (Sec. 6.3, Fig. 11)", runFig11)
	register("fig12", "Impact of skewed data (Sec. 6.3, Fig. 12)", runFig12)
	register("fig16", "HB+-tree vs CPU-optimized B+-tree (Sec. 6.4, Fig. 16)", runFig16)
	register("fig17", "Range query throughput (Sec. 6.4, Fig. 17)", runFig17)
}

// buildHB builds an HB+-tree over the dataset with the given options.
func buildHB(pairs []keys.Pair[uint64], opt core.Options) (*core.Tree[uint64], error) {
	return core.Build(pairs, opt)
}

func runFig10(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "fig10",
		Title: fmt.Sprintf("bucket handling strategies, %s tuples (MQPS)", fmtSize(n)),
		Note:  "paper: pipelining +56% (implicit) / +20% (regular); double buffering +110% over sequential",
		Cols:  []string{"variant", "sequential", "pipelined", "double-buffered", "DB gain"},
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	qs := workload.SearchInput(pairs, cfg.Queries, cfg.Seed+1)
	for _, v := range []core.Variant{core.Implicit, core.Regular} {
		var thr [3]float64
		for i, s := range []core.Strategy{core.Sequential, core.Pipelined, core.DoubleBuffered} {
			tr, err := buildHB(pairs, core.Options{Machine: m, Variant: v, Strategy: s})
			if err != nil {
				return nil, err
			}
			vals, fnd, stats, err := tr.LookupBatch(qs)
			if err != nil {
				return nil, err
			}
			if err := verifyHits(qs, vals, fnd); err != nil {
				return nil, fmt.Errorf("fig10 %v/%v: %w", v, s, err)
			}
			thr[i] = stats.ThroughputQPS
			tr.Close()
		}
		t.AddRow(v.String(), fmtMQPS(thr[0]), fmtMQPS(thr[1]), fmtMQPS(thr[2]),
			fmtF((thr[2]/thr[0]-1)*100, 0)+"%")
	}
	return []Table{t}, nil
}

func verifyHits(qs, vals []uint64, fnd []bool) error {
	for i, q := range qs {
		if !fnd[i] || vals[i] != workload.ValueFor(q) {
			return fmt.Errorf("query %d (key %d) returned (%d,%v)", i, q, vals[i], fnd[i])
		}
	}
	return nil
}

func runFig11(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	thr := Table{
		ID:    "fig11a",
		Title: fmt.Sprintf("bucket size sweep, %s tuples: throughput (MQPS)", fmtSize(n)),
		Cols:  []string{"bucket", "implicit", "regular"},
	}
	lat := Table{
		ID:    "fig11b",
		Title: "bucket size sweep: average latency (ms)",
		Note:  "larger buckets amortise T_init/K_init but raise latency; the paper settles on 16K",
		Cols:  []string{"bucket", "implicit", "regular"},
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	for _, bs := range []int{8 << 10, 16 << 10, 32 << 10, 64 << 10} {
		// Enough buckets for the pipeline to reach steady state.
		nq := cfg.Queries
		if nq < 16*bs {
			nq = 16 * bs
		}
		qs := workload.SearchInput(pairs, nq, cfg.Seed+1)
		row := []string{fmtSize(bs)}
		latRow := []string{fmtSize(bs)}
		for _, v := range []core.Variant{core.Implicit, core.Regular} {
			tr, err := buildHB(pairs, core.Options{Machine: m, Variant: v, Strategy: core.DoubleBuffered, BucketSize: bs})
			if err != nil {
				return nil, err
			}
			_, _, stats, err := tr.LookupBatch(qs)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtMQPS(stats.ThroughputQPS))
			latRow = append(latRow, fmtF(stats.AvgLatency.Seconds()*1e3, 3))
			tr.Close()
		}
		thr.AddRow(row...)
		lat.AddRow(latRow...)
	}
	return []Table{thr, lat}, nil
}

// leafMissUnderDistribution simulates the LLC behaviour of the CPU leaf
// stage under a query distribution: leaf-line addresses stream through
// the machine's cache model and the resulting miss fraction feeds the
// HB+-tree's cost model (the measurement behind Figure 12's skew gain).
func leafMissUnderDistribution(tr *core.Tree[uint64], cpu platform.CPU, qs []uint64) float64 {
	cache := mem.NewCache(cpu.LLCBytes, cpu.LLCWays)
	misses, total := 0, 0
	touch := func(addr int64) {
		total++
		if !cache.Touch(addr) {
			misses++
		}
	}
	if impl := tr.Implicit(); impl != nil {
		_, lseg := impl.Segments()
		for _, q := range qs {
			l := impl.SearchInner(q)
			touch(lseg.Addr(int64(l) * keys.LineBytes))
		}
	} else {
		reg := tr.Regular()
		_, _, leafSeg := reg.Segments()
		_, _, _, _, _, kpl := reg.InnerArrays()
		lineBytes := int64(kpl * keys.Size[uint64]())
		for _, q := range qs {
			b, c := reg.SearchToLeaf(q)
			touch(leafSeg.Addr(int64(b)*int64(reg.Fanout())*lineBytes + int64(c)*lineBytes))
		}
	}
	if total == 0 {
		return 1
	}
	return float64(misses) / float64(total)
}

func runFig12(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "fig12",
		Title: fmt.Sprintf("query distributions, %s tuples (throughput normalised to Uniform)", fmtSize(n)),
		Note:  "skew concentrates leaf accesses, raising the cache hit rate; the paper sees <=1.1x for Normal/Gamma and up to 2.2x for Zipf",
		Cols:  []string{"distribution", "implicit", "regular"},
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	sample := cfg.Queries
	if sample > 1<<17 {
		sample = 1 << 17
	}
	var base [2]float64
	rows := make([][]string, 0, 4)
	for _, d := range []workload.Distribution{workload.Uniform, workload.Normal, workload.Gamma, workload.Zipf} {
		qs := workload.SkewedQueries[uint64](d, sample, cfg.Seed+7)
		row := []string{d.String()}
		for vi, v := range []core.Variant{core.Implicit, core.Regular} {
			tr, err := buildHB(pairs, core.Options{Machine: m, Variant: v, Strategy: core.DoubleBuffered})
			if err != nil {
				return nil, err
			}
			frac := leafMissUnderDistribution(tr, m.CPU, qs)
			tr.SetLeafMissOverride(frac)
			_, _, stats, err := tr.LookupBatch(qs)
			if err != nil {
				return nil, err
			}
			if d == workload.Uniform {
				base[vi] = stats.ThroughputQPS
			}
			row = append(row, fmtF(stats.ThroughputQPS/base[vi], 2)+"x")
			tr.Close()
		}
		rows = append(rows, row)
	}
	t.Rows = rows
	return []Table{t}, nil
}

// cpuOptThroughput models the CPU-optimized baseline throughput for one
// variant at one size.
func cpuOptThroughput[K keys.Key](pairs []keys.Pair[K], cpu platform.CPU, regular bool, nQueries int) (float64, vclock.Duration, error) {
	if regular {
		rt, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
		if err != nil {
			return 0, 0, err
		}
		p, searches := regularProfile(rt, cpu)
		pq := model.PerQuery(cpu, simd.Hierarchical, searches, p, 0, 16, 0)
		d := model.BatchDuration(cpu, nQueries, pq, p.MissBytes(), cpu.Threads)
		return model.Throughput(nQueries, d), pq * 16, nil
	}
	it, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
	if err != nil {
		return 0, 0, err
	}
	p, searches := implicitProfile(it, cpu)
	pq := model.PerQuery(cpu, simd.Hierarchical, searches, p, 0, 16, 0)
	d := model.BatchDuration(cpu, nQueries, pq, p.MissBytes(), cpu.Threads)
	return model.Throughput(nQueries, d), pq * 16, nil
}

func fig16For[K keys.Key](cfg Config, m platform.Machine, bits int) (Table, Table, error) {
	thr := Table{
		ID:    fmt.Sprintf("fig16-%dbit", bits),
		Title: fmt.Sprintf("search throughput, %d-bit keys (MQPS)", bits),
		Note:  "paper: HB+ implicit ~flat (CPU-bound leaf stage), CPU trees decline with size; average HB+/CPU gain 2.4x (64-bit) / 2.1x (32-bit)",
		Cols:  []string{"size", "CPU impl", "CPU reg", "HB+ impl", "HB+ reg", "HB+/CPU"},
	}
	lat := Table{
		ID:    fmt.Sprintf("fig16c-%dbit", bits),
		Title: fmt.Sprintf("average query latency, %d-bit keys", bits),
		Note:  "the hybrid path needs ~2^14 in-flight queries vs 2^8 on the CPU; the paper measures ~67x higher latency, <=0.25ms",
		Cols:  []string{"size", "CPU (us)", "HB+ impl (us)", "HB+ reg (us)", "ratio"},
	}
	for _, n := range cfg.Sizes {
		pairs := workload.Dataset[K](workload.Uniform, n, cfg.Seed)
		cpuImpl, cpuLat, err := cpuOptThroughput(pairs, m.CPU, false, cfg.Queries)
		if err != nil {
			return thr, lat, err
		}
		cpuReg, _, err := cpuOptThroughput(pairs, m.CPU, true, cfg.Queries)
		if err != nil {
			return thr, lat, err
		}
		qs := workload.SearchInput(pairs, cfg.Queries, cfg.Seed+2)
		var hbThr [2]float64
		var hbLat [2]vclock.Duration
		for vi, v := range []core.Variant{core.Implicit, core.Regular} {
			tr, err := core.Build(pairs, core.Options{Machine: m, Variant: v, Strategy: core.DoubleBuffered})
			if err != nil {
				return thr, lat, err
			}
			vals, fnd, stats, err := tr.LookupBatch(qs)
			if err != nil {
				return thr, lat, err
			}
			for i, q := range qs {
				if !fnd[i] || vals[i] != workload.ValueFor(q) {
					return thr, lat, fmt.Errorf("fig16: %v lookup of %v failed", v, q)
				}
			}
			hbThr[vi] = stats.ThroughputQPS
			hbLat[vi] = stats.AvgLatency
			tr.Close()
		}
		gain := hbThr[0] / cpuImpl
		thr.AddRow(fmtSize(n), fmtMQPS(cpuImpl), fmtMQPS(cpuReg), fmtMQPS(hbThr[0]), fmtMQPS(hbThr[1]),
			fmtF(gain, 2)+"x")
		lat.AddRow(fmtSize(n), fmtF(cpuLat.Micros(), 2), fmtF(hbLat[0].Micros(), 1), fmtF(hbLat[1].Micros(), 1),
			fmtF(float64(hbLat[0])/float64(cpuLat), 0)+"x")
	}
	return thr, lat, nil
}

func runFig16(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	t64, l64, err := fig16For[uint64](cfg, m, 64)
	if err != nil {
		return nil, err
	}
	t32, _, err := fig16For[uint32](cfg, m, 32)
	if err != nil {
		return nil, err
	}
	return []Table{t64, t32, l64}, nil
}

func runFig17(cfg Config) ([]Table, error) {
	m, _ := platform.ByName(cfg.Machine)
	cpu := m.CPU
	n := cfg.Sizes[len(cfg.Sizes)-1]
	t := Table{
		ID:    "fig17",
		Title: fmt.Sprintf("range query throughput, %s tuples (MQPS)", fmtSize(n)),
		Note:  "the HB+ advantage decays with selectivity: leaf scanning is CPU work (paper: >80% faster up to 8 matches, 22% at 32)",
		Cols:  []string{"matches", "CPU impl", "CPU reg", "HB+ impl", "HB+ reg", "HB+ adv"},
	}
	pairs := workload.Dataset[uint64](workload.Uniform, n, cfg.Seed)
	impl, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{})
	if err != nil {
		return nil, err
	}
	reg, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		return nil, err
	}
	hbImpl, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Implicit})
	if err != nil {
		return nil, err
	}
	defer hbImpl.Close()
	hbReg, err := core.Build(pairs, core.Options{Machine: m, Variant: core.Regular})
	if err != nil {
		return nil, err
	}
	defer hbReg.Close()

	pI, sI := implicitProfile(impl, cpu)
	pR, sR := regularProfile(reg, cpu)
	leafMiss := 1.0
	if float64(impl.Stats().LeafBytes) < float64(cpu.LLCBytes) {
		leafMiss = 0
	}
	const ppl = 4 // pairs per leaf line, 64-bit

	for _, matches := range []int{1, 2, 4, 8, 16, 32} {
		// CPU-optimized trees: full inner traversal plus the leaf scan.
		rpI := rangeProfile(model.MissProfile{Hit: pI.Hit, Miss: pI.Miss - 1}, leafMiss, matches, ppl)
		rpR := rangeProfile(model.MissProfile{Hit: pR.Hit, Miss: pR.Miss - 1}, leafMiss, matches, ppl)
		pqI := model.PerQuery(cpu, simd.Hierarchical, sI, rpI, 0, 16, 0)
		pqR := model.PerQuery(cpu, simd.Hierarchical, sR, rpR, 0, 16, 0)
		cI := model.Throughput(cfg.Queries, model.BatchDuration(cpu, cfg.Queries, pqI, rpI.MissBytes(), cpu.Threads))
		cR := model.Throughput(cfg.Queries, model.BatchDuration(cpu, cfg.Queries, pqR, rpR.MissBytes(), cpu.Threads))

		// HB+: GPU does the inner traversal; the CPU scans leaf lines.
		hI := hybridRangeThroughput(hbImpl, matches, ppl, leafMiss, cfg.Queries)
		hR := hybridRangeThroughput(hbReg, matches, ppl, leafMiss, cfg.Queries)

		// Functional check: the hybrid batch range path (GPU-resolved
		// start leaves) agrees with the CPU path on both variants.
		rqs := workload.RangeQueries(pairs, 64, matches, cfg.Seed+uint64(matches))
		starts := make([]uint64, len(rqs))
		for i, rq := range rqs {
			starts[i] = rq.Start
		}
		outImpl, _, err := hbImpl.RangeQueryBatch(starts, matches)
		if err != nil {
			return nil, err
		}
		outReg, _, err := hbReg.RangeQueryBatch(starts, matches)
		if err != nil {
			return nil, err
		}
		for qi, rq := range rqs {
			if len(outImpl[qi]) != rq.Count {
				return nil, fmt.Errorf("fig17: range(%d) returned %d of %d", rq.Start, len(outImpl[qi]), rq.Count)
			}
			cpuOut := hbImpl.RangeQuery(rq.Start, rq.Count, nil)
			for i := range cpuOut {
				if outImpl[qi][i] != cpuOut[i] || outReg[qi][i] != cpuOut[i] {
					return nil, fmt.Errorf("fig17: hybrid and CPU ranges diverge")
				}
			}
		}
		adv := (hI/cI - 1) * 100
		t.AddRow(fmt.Sprintf("%d", matches), fmtMQPS(cI), fmtMQPS(cR), fmtMQPS(hI), fmtMQPS(hR),
			fmtF(adv, 0)+"%")
	}
	return []Table{t}, nil
}

// hybridRangeThroughput bounds the HB+-tree's range throughput by the
// slower of the GPU inner-traversal stage and the CPU leaf-scan stage.
func hybridRangeThroughput(tr *core.Tree[uint64], matches, ppl int, leafMiss float64, nQueries int) float64 {
	opt := tr.Options()
	cpu := opt.Machine.CPU
	m := opt.BucketSize
	leafLines := float64((matches + ppl - 1) / ppl)
	p := model.MissProfile{Hit: leafLines * (1 - leafMiss), Miss: leafLines * leafMiss}
	// The leaf scan walks contiguous lines, the same streaming code the
	// CPU tree uses, so both overlap misses at the pipelined MLP.
	scanOverlap := vclock.Duration(cpu.MLPMax)
	mem := (vclock.Duration(p.Miss)*cpu.LatMem + vclock.Duration(p.Hit)*cpu.LatLLC) / scanOverlap
	pq := cpu.CostHybridSched + vclock.Duration(leafLines*float64(model.AlgoCost(cpu, opt.NodeSearch))) + mem
	t4 := model.BatchDuration(cpu, m, pq, p.MissBytes(), opt.Threads)
	t2 := tr.GPUStageDuration(m)
	period := vclock.Max(t2, t4)
	return model.Throughput(m, period) * 0.98 // pipeline fill overhead
}
