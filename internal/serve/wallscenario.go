package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
)

// Wall-clock overload scenarios (DESIGN §11): traffic shapes where a
// statically tuned admission window is wrong for most of the run —
// a flash crowd (step arrival spike), a diurnal swell (slow sinusoid),
// and a hot-key migration (the popular key range jumps shards mid-run).
// Each run is split into three equal named phases and latency is
// accounted per phase, because a single whole-run p99 hides exactly the
// window the scenarios exist to expose. Clients honour shed retry-after
// hints by backing off, so the drivers measure the protocol loop
// (admission → typed shed → client backoff), not just the server.

// Scenario kinds.
const (
	ScenarioFlash    = "flash"     // step ×PeakFactor arrival spike in the middle third
	ScenarioDiurnal  = "diurnal"   // sinusoidal arrival swell peaking mid-run
	ScenarioHotShift = "hot-shift" // hot key quarter migrates across the key space mid-run
)

// ScenarioOptions configures one overload scenario run.
type ScenarioOptions struct {
	// Kind selects the traffic shape (ScenarioFlash default).
	Kind string

	// BaseClients is the steady-state client count (2 default);
	// PeakFactor scales it during the spike / at the sinusoid's peak
	// (8 default). The hot-shift scenario runs a constant 2×BaseClients.
	BaseClients int
	PeakFactor  int

	// Depth is the per-client pipeline depth (128 default).
	Depth int

	// Duration is the whole run, split into three equal phases
	// (1.5s default).
	Duration time.Duration

	// Locked selects the locked baseline backend; Shards > 1 the
	// sharded one; the default is the snapshot server.
	Locked bool
	Shards int

	// Coalescer shape: MaxBatch (256), Window (200µs) and QueueShards
	// (Options.Shards, 1 default so batch formation and admission are
	// deterministic per run).
	MaxBatch    int
	Window      time.Duration
	QueueShards int

	// Admission: MaxPending is the window ceiling (4096 default);
	// TargetP99 turns on the adaptive controller with MinPending as its
	// floor. TargetP99 zero is the static arm — a fixed MaxPending
	// window in fail-fast mode, today's tuning. The A/B comparison runs
	// the same scenario twice varying only these.
	MaxPending int
	MinPending int
	TargetP99  time.Duration

	// FlushStall is the serialized per-flush stall (Options.FlushStall):
	// it pins the coalescer's capacity at MaxBatch/FlushStall requests
	// per second, which makes overload scenarios reproducible across
	// hosts instead of a function of how fast the tree searches.
	FlushStall time.Duration

	// Unsorted selects the plain batch path (Options.Unsorted).
	Unsorted bool

	// UpdateFrac routes this fraction of operations to the update pump
	// (requires the regular tree variant); UpdateBatch is the pump's
	// batch size (1024 default). The hot-shift scenario defaults
	// UpdateFrac to 0.2 — migration without writes is just a read skew.
	UpdateFrac  float64
	UpdateBatch int

	// Seed makes the client streams reproducible: two runs with the
	// same options and seed offer identical traffic.
	Seed int64

	// CancelAt, when positive, hard-stops the run at that offset — the
	// coalescer is closed while clients still have requests in flight
	// (the mid-spike shutdown drill). The result carries Cancelled and
	// whatever was measured up to the stop.
	CancelAt time.Duration
}

func (o *ScenarioOptions) fillDefaults() {
	if o.Kind == "" {
		o.Kind = ScenarioFlash
	}
	if o.BaseClients <= 0 {
		o.BaseClients = 2
	}
	if o.PeakFactor <= 1 {
		o.PeakFactor = 8
	}
	if o.Depth <= 0 {
		o.Depth = 128
	}
	if o.Duration <= 0 {
		o.Duration = 1500 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Window <= 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.QueueShards <= 0 {
		o.QueueShards = 1
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	if o.UpdateBatch <= 0 {
		o.UpdateBatch = 1024
	}
	if o.Kind == ScenarioHotShift && o.UpdateFrac == 0 {
		o.UpdateFrac = 0.2
	}
}

// phaseNames returns the three phase labels for a scenario kind.
func phaseNames(kind string) [3]string {
	switch kind {
	case ScenarioDiurnal:
		return [3]string{"ramp-up", "peak", "ramp-down"}
	case ScenarioHotShift:
		return [3]string{"pre-shift", "shift", "settled"}
	default:
		return [3]string{"pre-spike", "spike", "recovery"}
	}
}

// PhaseStats is one phase's slice of a scenario run.
type PhaseStats struct {
	Name    string
	Lookups int64 // admitted lookups completed (sampled for latency)
	Shed    int64 // requests shed by admission during the phase
	Updates int64 // update operations pumped during the phase

	P50, P95, P99 time.Duration // latency of admitted lookups
}

// ScenarioResult is one scenario run's measurement: per-phase latency
// rows plus run totals and the admission controller's excursion.
type ScenarioResult struct {
	Kind   string
	Phases []PhaseStats

	Lookups int64
	Updates int64
	Shed    int64
	Batches int64
	Elapsed time.Duration
	MQPS    float64 // admitted lookups per second, millions

	// Controller telemetry: the target (0 = static arm), the admission
	// window's observed excursion over the run (sampled at 2ms) and its
	// final value, and the shed rate at the end of the run.
	TargetP99                      time.Duration
	AdmitMin, AdmitMax, AdmitFinal int
	ShedRate                       float64

	// Cancelled reports a CancelAt hard stop: the run ended by closing
	// the coalescer mid-flight and the totals cover only the span up to
	// the stop.
	Cancelled bool
}

func (r ScenarioResult) String() string {
	s := fmt.Sprintf("%s: %.2f MQPS (%d lookups, %d shed, %d updates in %v), window %d..%d (final %d), target %v",
		r.Kind, r.MQPS, r.Lookups, r.Shed, r.Updates, r.Elapsed.Round(time.Millisecond),
		r.AdmitMin, r.AdmitMax, r.AdmitFinal, r.TargetP99)
	for _, ph := range r.Phases {
		s += fmt.Sprintf("\n  %-10s %9d lookups %9d shed  p50 %-9v p95 %-9v p99 %v",
			ph.Name, ph.Lookups, ph.Shed,
			ph.P50.Round(time.Microsecond), ph.P95.Round(time.Microsecond), ph.P99.Round(time.Microsecond))
	}
	if r.Cancelled {
		s += "\n  (cancelled mid-run)"
	}
	return s
}

// maxPhaseSamples bounds each client's per-phase latency record.
const maxPhaseSamples = 1 << 15

// RunWallScenario builds a backend from pairs (locked, snapshot or
// sharded, exactly as RunWall) and drives it with the scenario's
// arrival shape for opt.Duration, returning per-phase latency rows.
// Identical options and seed replay identical offered traffic, so a
// static-vs-adaptive A/B differs only in admission.
func RunWallScenario[K keys.Key](pairs []keys.Pair[K], treeOpt core.Options, opt ScenarioOptions) (ScenarioResult, error) {
	opt.fillDefaults()
	if opt.UpdateFrac > 0 && treeOpt.Variant != core.Regular {
		return ScenarioResult{}, fmt.Errorf("serve: scenario with updates requires the regular variant")
	}
	if opt.Locked && opt.Shards > 1 {
		return ScenarioResult{}, fmt.Errorf("serve: Locked and Shards are mutually exclusive")
	}
	switch opt.Kind {
	case ScenarioFlash, ScenarioDiurnal, ScenarioHotShift:
	default:
		return ScenarioResult{}, fmt.Errorf("serve: unknown scenario kind %q", opt.Kind)
	}
	if opt.UpdateFrac > 0 && treeOpt.LeafFill == 0 {
		treeOpt.LeafFill = 0.875
	}

	coOpt := Options{
		MaxBatch: opt.MaxBatch, Window: opt.Window, Shards: opt.QueueShards,
		MaxPending: opt.MaxPending, MinPending: opt.MinPending,
		TargetP99: opt.TargetP99, FlushStall: opt.FlushStall,
		Unsorted: opt.Unsorted,
		// The static arm sheds too: scenarios measure the overload
		// protocol, and backpressure against an arrival spike just
		// parks every client on a full window.
		Shed: true,
	}
	var backend wallBackend[K]
	var co wallCoalescer[K]
	if opt.Shards > 1 {
		s, err := BuildSharded(pairs, treeOpt, opt.Shards)
		if err != nil {
			return ScenarioResult{}, err
		}
		backend = s
		co = s.Coalesce(coOpt)
	} else {
		tree, err := core.Build(pairs, treeOpt)
		if err != nil {
			return ScenarioResult{}, err
		}
		defer tree.Close()
		var srv *Server[K]
		if opt.Locked {
			srv = NewLockedServer(tree)
		} else {
			srv = NewServer(tree)
		}
		backend = srv
		co = NewCoalescer[K](srv, coOpt)
	}
	defer backend.Close()
	var closeOnce sync.Once
	closeCo := func() { closeOnce.Do(co.Close) }
	defer closeCo()

	total := opt.Duration
	phase := func(el time.Duration) int {
		p := int(3 * el / total)
		if p > 2 {
			p = 2
		}
		if p < 0 {
			p = 0
		}
		return p
	}
	// active returns how many of the client goroutines offer load at
	// offset el; the rest idle. Total goroutines cover the maximum.
	peakClients := opt.BaseClients * opt.PeakFactor
	if opt.Kind == ScenarioHotShift {
		peakClients = 2 * opt.BaseClients
	}
	active := func(el time.Duration) int {
		switch opt.Kind {
		case ScenarioDiurnal:
			x := math.Sin(math.Pi * float64(el) / float64(total))
			n := opt.BaseClients + int(math.Round(float64((opt.PeakFactor-1)*opt.BaseClients)*x*x))
			if n > peakClients {
				n = peakClients
			}
			return n
		case ScenarioHotShift:
			return peakClients
		default: // flash: step spike in the middle third
			if phase(el) == 1 {
				return peakClients
			}
			return opt.BaseClients
		}
	}
	// pick returns the key index a client draws at offset el: uniform,
	// except hot-shift where 80% of draws target the hot quarter —
	// which jumps from the bottom of the key space to the top when the
	// shift phase begins.
	pick := func(rng *rand.Rand, el time.Duration) int {
		if opt.Kind != ScenarioHotShift || rng.Float64() >= 0.8 {
			return rng.Intn(len(pairs))
		}
		q := max(1, len(pairs)/4)
		if phase(el) == 0 {
			return rng.Intn(q)
		}
		return len(pairs) - 1 - rng.Intn(q)
	}

	// Update pump: same discipline as RunWall, spans fed to the
	// admission controller.
	var updateErr error
	updates := make(chan cpubtree.Op[K], 4*opt.UpdateBatch)
	pumpDone := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		batch := make([]cpubtree.Op[K], 0, opt.UpdateBatch)
		flush := func() {
			if len(batch) == 0 || updateErr != nil {
				batch = batch[:0]
				return
			}
			w0 := time.Now()
			_, err := backend.Update(batch, core.AsyncParallel)
			co.NoteSpan(time.Since(w0))
			if err != nil {
				updateErr = err
			}
			batch = batch[:0]
		}
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case op := <-updates:
				batch = append(batch, op)
				if len(batch) >= opt.UpdateBatch {
					flush()
				}
			case <-ticker.C:
				flush()
			case <-pumpDone:
				for {
					select {
					case op := <-updates:
						batch = append(batch, op)
					default:
						flush()
						return
					}
				}
			}
		}
	}()

	type clientStats struct {
		lookups [3]int64
		shed    [3]int64
		updates [3]int64
		lats    [3][]time.Duration
		err     error
	}
	type inflight struct {
		ch <-chan Result[K]
		t0 time.Time
		ph int
	}
	stats := make([]clientStats, peakClients)
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < peakClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			for i := range st.lats {
				st.lats[i] = make([]time.Duration, 0, maxPhaseSamples)
			}
			rng := rand.New(rand.NewSource(opt.Seed + int64(c)*0x9E3779B9 + 1))
			ring := make([]inflight, opt.Depth)
			var head, n int
			drain := func() bool {
				fl := ring[head]
				head = (head + 1) % opt.Depth
				n--
				res := <-fl.ch
				if res.Err != nil {
					if errors.Is(res.Err, ErrOverloaded) {
						st.shed[fl.ph]++
						var oe *OverloadError
						if errors.As(res.Err, &oe) && oe.RetryAfter > 0 {
							time.Sleep(min(oe.RetryAfter, 10*time.Millisecond))
						}
						return true
					}
					if errors.Is(res.Err, ErrClosed) {
						// The CancelAt hard stop closed the coalescer
						// under us: not a failure, just the end.
						return false
					}
					st.err = res.Err
					return false
				}
				st.lookups[fl.ph]++
				if len(st.lats[fl.ph]) < cap(st.lats[fl.ph]) {
					st.lats[fl.ph] = append(st.lats[fl.ph], time.Since(fl.t0))
				}
				return true
			}
			for !stop.Load() {
				el := time.Since(start)
				if el >= total {
					break
				}
				ph := phase(el)
				if c >= active(el) {
					// Off-shift: finish what is in flight, then idle.
					for n > 0 {
						if !drain() {
							return
						}
					}
					time.Sleep(200 * time.Microsecond)
					continue
				}
				p := pairs[pick(rng, el)]
				if opt.UpdateFrac > 0 && rng.Float64() < opt.UpdateFrac {
					select {
					case updates <- cpubtree.Op[K]{Key: p.Key, Value: p.Value + 1}:
						st.updates[ph]++
					case <-time.After(10 * time.Millisecond):
						// A saturated pump is overload on the write
						// side; drop rather than park the client.
					}
					continue
				}
				if n == opt.Depth && !drain() {
					return
				}
				ring[(head+n)%opt.Depth] = inflight{ch: co.Submit(p.Key), t0: time.Now(), ph: ph}
				n++
			}
			for n > 0 {
				if !drain() {
					return
				}
			}
		}(c)
	}

	// Admission-window sampler: the controller's excursion is the
	// scenario's second headline (did it shrink into the spike and
	// recover after?).
	admitMin, admitMax := co.AdmitWindow(), co.AdmitWindow()
	samplerDone := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w := co.AdmitWindow()
				if w < admitMin {
					admitMin = w
				}
				if w > admitMax {
					admitMax = w
				}
			case <-samplerDone:
				return
			}
		}
	}()

	cancelled := false
	if opt.CancelAt > 0 && opt.CancelAt < total {
		time.Sleep(opt.CancelAt)
		cancelled = true
		stop.Store(true)
		// The drill: close the coalescer while clients still hold
		// in-flight requests. Pending requests must fail with ErrClosed
		// and every client must unwind — no drain-path deadlock.
		closeCo()
	} else {
		time.Sleep(total)
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(pumpDone)
	pumpWG.Wait()
	close(samplerDone)
	samplerWG.Wait()
	if updateErr != nil {
		return ScenarioResult{}, updateErr
	}

	res := ScenarioResult{
		Kind:       opt.Kind,
		Elapsed:    elapsed,
		TargetP99:  opt.TargetP99,
		AdmitMin:   admitMin,
		AdmitMax:   admitMax,
		AdmitFinal: co.AdmitWindow(),
		ShedRate:   co.ShedRate(),
		Batches:    co.Batches(),
		Cancelled:  cancelled,
	}
	names := phaseNames(opt.Kind)
	var lats [3][]time.Duration
	for i := range stats {
		st := &stats[i]
		if st.err != nil {
			return ScenarioResult{}, st.err
		}
		for ph := 0; ph < 3; ph++ {
			lats[ph] = append(lats[ph], st.lats[ph]...)
		}
	}
	for ph := 0; ph < 3; ph++ {
		p := PhaseStats{Name: names[ph]}
		for i := range stats {
			p.Lookups += stats[i].lookups[ph]
			p.Shed += stats[i].shed[ph]
			p.Updates += stats[i].updates[ph]
		}
		p.P50, p.P95, p.P99 = percentiles(lats[ph])
		res.Phases = append(res.Phases, p)
		res.Lookups += p.Lookups
		res.Shed += p.Shed
		res.Updates += p.Updates
	}
	res.MQPS = float64(res.Lookups) / elapsed.Seconds() / 1e6
	return res, nil
}
