package serve

import (
	"strings"
	"testing"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// newShardedServer builds a small sharded server for tests.
func newShardedServer(t testing.TB, variant core.Variant, n, shards int) (*ShardedServer[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	s, err := BuildSharded(pairs, core.Options{Variant: variant, BucketSize: 64}, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, pairs
}

// TestShardedRouting: every key routes to the shard whose range holds
// it, and the shard layout covers all pairs without overlap.
func TestShardedRouting(t *testing.T) {
	s, pairs := newShardedServer(t, core.Implicit, 1<<12, 4)
	if s.Shards() != 4 || len(s.Bounds()) != 3 {
		t.Fatalf("layout: %d shards, %d bounds", s.Shards(), len(s.Bounds()))
	}
	if s.NumPairs() != len(pairs) {
		t.Fatalf("NumPairs = %d, want %d", s.NumPairs(), len(pairs))
	}
	bounds := s.Bounds()
	for _, p := range pairs {
		i := s.route(p.Key)
		if i > 0 && p.Key < bounds[i-1] {
			t.Fatalf("key %d routed to shard %d below its bound %d", p.Key, i, bounds[i-1])
		}
		if i < len(bounds) && p.Key >= bounds[i] {
			t.Fatalf("key %d routed to shard %d at/above next bound %d", p.Key, i, bounds[i])
		}
	}
	// Boundary keys themselves belong to the upper shard.
	for i, b := range bounds {
		if got := s.route(b); got != i+1 {
			t.Fatalf("route(bound %d) = %d, want %d", b, got, i+1)
		}
		if got := s.route(b - 1); got != i {
			t.Fatalf("route(bound-1) = %d, want %d", got, i)
		}
	}
}

// TestShardedReadPaths: point, batch, range and scan reads through the
// sharded server agree with the source data, including range/scan
// stitches that cross shard boundaries.
func TestShardedReadPaths(t *testing.T) {
	s, pairs := newShardedServer(t, core.Implicit, 1<<12, 4)

	for _, i := range []int{0, 512, 1024, 2048, 4095} {
		if v, ok := s.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
			t.Fatalf("Lookup(pairs[%d]) = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := s.Lookup(pairs[0].Key + 1); ok {
		t.Fatal("lookup of absent key reported found")
	}

	// Batch lookup spanning all four shards, results in query order.
	queries := make([]uint64, 0, 256)
	for i := 0; i < 256; i++ {
		queries = append(queries, pairs[(i*53)%len(pairs)].Key)
	}
	values, found, stats, err := s.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if !found[i] || values[i] != workload.ValueFor(q) {
			t.Fatalf("batch[%d] = (%d, %v)", i, values[i], found[i])
		}
	}
	if stats.Queries != len(queries) {
		t.Fatalf("stats.Queries = %d, want %d", stats.Queries, len(queries))
	}
	if stats.SimTime <= 0 || stats.ThroughputQPS <= 0 {
		t.Fatalf("stats not aggregated: %+v", stats)
	}

	// Range and scan stitches starting in each shard, each crossing at
	// least one boundary (count spans a quarter of the key space plus
	// slack). pairs is sorted, so the expected window is a plain slice.
	for _, start := range []int{0, 1000, 2000, 3000} {
		count := 1200
		want := pairs[start:min(start+count, len(pairs))]
		rq := s.RangeQuery(pairs[start].Key, count)
		if len(rq) != len(want) {
			t.Fatalf("RangeQuery(start=%d) len = %d, want %d", start, len(rq), len(want))
		}
		for i := range want {
			if rq[i] != want[i] {
				t.Fatalf("RangeQuery(start=%d)[%d] = %v, want %v", start, i, rq[i], want[i])
			}
		}
		sc := s.Scan(pairs[start].Key, count)
		if len(sc) != len(rq) {
			t.Fatalf("Scan len %d != RangeQuery len %d", len(sc), len(rq))
		}
		for i := range rq {
			if sc[i] != rq[i] {
				t.Fatalf("Scan[%d] = %v disagrees with RangeQuery %v", i, sc[i], rq[i])
			}
		}
	}
	// A range past the end of the key space is just truncated.
	if rq := s.RangeQuery(pairs[len(pairs)-2].Key, 100); len(rq) != 2 {
		t.Fatalf("tail RangeQuery len = %d, want 2", len(rq))
	}
}

// TestShardedUpdate: ops split across shards apply concurrently, stay
// visible, and merge their stats (counts summed, times as makespan).
func TestShardedUpdate(t *testing.T) {
	s, pairs := newShardedServer(t, core.Regular, 1<<12, 4)

	ops := make([]cpubtree.Op[uint64], 0, 400)
	for i := 0; i < 400; i++ {
		p := pairs[(i*41)%len(pairs)]
		ops = append(ops, cpubtree.Op[uint64]{Key: p.Key, Value: p.Value + 7})
	}
	st, err := s.Update(ops, core.AsyncParallel)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != len(ops) {
		t.Fatalf("stats.Ops = %d, want %d", st.Ops, len(ops))
	}
	if st.HostTime <= 0 {
		t.Fatalf("stats.HostTime = %v, want > 0", st.HostTime)
	}
	for i := 0; i < 400; i++ {
		p := pairs[(i*41)%len(pairs)]
		if v, ok := s.Lookup(p.Key); !ok || v != p.Value+7 {
			t.Fatalf("after update Lookup(%d) = (%d, %v)", p.Key, v, ok)
		}
	}
	// Each touched shard published a new version.
	if swaps := s.Swaps(); swaps != 4 {
		t.Fatalf("swaps = %d, want 4 (one per shard)", swaps)
	}
	// Same-key ops keep submission order: last write wins.
	k := pairs[99].Key
	if _, err := s.Update([]cpubtree.Op[uint64]{
		{Key: k, Value: 1}, {Key: k, Value: 2}, {Key: k, Value: 3},
	}, core.AsyncParallel); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Lookup(k); !ok || v != 3 {
		t.Fatalf("last-write-wins violated: (%d, %v)", v, ok)
	}
	// An update touching one shard swaps only that shard.
	before := s.ShardMetrics()
	if _, err := s.Update([]cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 5}}, core.AsyncParallel); err != nil {
		t.Fatal(err)
	}
	after := s.ShardMetrics()
	touched := s.route(pairs[0].Key)
	for i := range after {
		want := before[i].Swaps
		if i == touched {
			want++
		}
		if after[i].Swaps != want {
			t.Fatalf("shard %d swaps = %d, want %d", i, after[i].Swaps, want)
		}
	}
}

// TestShardedRebuild: a full rebuild partitions the replacement by the
// fixed bounds and runs per shard; a replacement that would empty a
// shard is rejected rather than crashing the shard's builder.
func TestShardedRebuild(t *testing.T) {
	s, pairs := newShardedServer(t, core.Implicit, 1<<12, 4)

	repl := make([]keys.Pair[uint64], len(pairs))
	for i, p := range pairs {
		repl[i] = keys.Pair[uint64]{Key: p.Key, Value: p.Value + 1000}
	}
	if _, err := s.Rebuild(repl); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2000, 4095} {
		if v, ok := s.Lookup(repl[i].Key); !ok || v != repl[i].Value {
			t.Fatalf("after rebuild Lookup = (%d, %v)", v, ok)
		}
	}
	if swaps := s.Swaps(); swaps != 4 {
		t.Fatalf("swaps after rebuild = %d, want 4", swaps)
	}

	// Dropping every key below the last bound would empty three shards.
	lastBound := s.Bounds()[len(s.Bounds())-1]
	var tail []keys.Pair[uint64]
	for _, p := range repl {
		if p.Key >= lastBound {
			tail = append(tail, p)
		}
	}
	if _, err := s.Rebuild(tail); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("rebuild emptying shards: err = %v, want empty-shard error", err)
	}
	// The failed rebuild left the published versions untouched.
	if v, ok := s.Lookup(repl[0].Key); !ok || v != repl[0].Value {
		t.Fatalf("state disturbed by rejected rebuild: (%d, %v)", v, ok)
	}
}

// TestShardedAggregates: Stats, Metrics and Describe merge per-shard
// state coherently.
func TestShardedAggregates(t *testing.T) {
	s, pairs := newShardedServer(t, core.Implicit, 1<<12, 4)

	s.Lookup(pairs[0].Key)
	s.Lookup(pairs[4000].Key)
	st := s.Stats()
	if st.NumPairs != len(pairs) {
		t.Fatalf("Stats.NumPairs = %d", st.NumPairs)
	}
	if st.InnerBytes == 0 || st.LeafBytes == 0 || st.Height == 0 {
		t.Fatalf("Stats not aggregated: %+v", st)
	}
	m := s.Metrics()
	if m.Lookups != 2 {
		t.Fatalf("Metrics.Lookups = %d, want 2", m.Lookups)
	}
	per := s.ShardMetrics()
	var sum int64
	for _, pm := range per {
		sum += pm.Lookups
	}
	if sum != 2 {
		t.Fatalf("per-shard lookups sum = %d, want 2", sum)
	}
	if len(s.ShardStats()) != 4 {
		t.Fatalf("ShardStats len = %d", len(s.ShardStats()))
	}
	if d := s.Describe(); !strings.Contains(d, "shard 3") {
		t.Fatalf("Describe missing shard sections: %q", d[:80])
	}
	s.ResetMetrics()
	if m := s.Metrics(); m.Lookups != 0 {
		t.Fatalf("Lookups after reset = %d", m.Lookups)
	}
	if s.Options().BucketSize != 64 {
		t.Fatalf("Options.BucketSize = %d", s.Options().BucketSize)
	}
	if s.PointLookupCost() <= 0 {
		t.Fatal("PointLookupCost not positive")
	}
	if s.DeviceCounters().BytesH2D == 0 {
		t.Fatal("no device traffic recorded")
	}
}

// TestShardedClose: Close drains the pumps and is idempotent; writes
// after Close fail with ErrClosed instead of hanging or panicking.
func TestShardedClose(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<10, 42)
	s, err := BuildSharded(pairs, core.Options{Variant: core.Regular, BucketSize: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update([]cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 9}}, core.AsyncParallel); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, err := s.Update([]cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 9}}, core.AsyncParallel); err != ErrClosed {
		t.Fatalf("Update after Close: err = %v, want ErrClosed", err)
	}
	if _, err := s.Rebuild(pairs); err != ErrClosed {
		t.Fatalf("Rebuild after Close: err = %v, want ErrClosed", err)
	}
}

// TestShardedBuildErrors: degenerate configurations fail cleanly.
func TestShardedBuildErrors(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 2, 42)
	if _, err := BuildSharded(pairs, core.Options{BucketSize: 64}, 4); err == nil {
		t.Fatal("building 4 shards from 2 pairs succeeded")
	}
}

// TestNewShardedServerFromTree: resharding an existing tree preserves
// its contents and shares its simulated device.
func TestNewShardedServerFromTree(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<11, 42)
	tree, err := core.Build(pairs, core.Options{BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	s, err := NewShardedServer(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumPairs() != len(pairs) {
		t.Fatalf("NumPairs = %d", s.NumPairs())
	}
	for _, i := range []int{0, 1024, 2047} {
		if v, ok := s.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
			t.Fatalf("Lookup(pairs[%d]) = (%d, %v)", i, v, ok)
		}
	}
}

// TestShardedCoalescer: coalesced lookups route to per-shard coalescer
// groups and return correct results from every shard.
func TestShardedCoalescer(t *testing.T) {
	s, pairs := newShardedServer(t, core.Implicit, 1<<12, 4)
	co := s.Coalesce(Options{MaxBatch: 16})
	defer co.Close()

	for i := 0; i < 512; i++ {
		p := pairs[(i*29)%len(pairs)]
		v, found, err := co.Lookup(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != p.Value {
			t.Fatalf("coalesced Lookup(%d) = (%d, %v)", p.Key, v, found)
		}
	}
	if co.Batches() == 0 || co.Queries() != 512 {
		t.Fatalf("coalescer counters: %d batches, %d queries", co.Batches(), co.Queries())
	}
	res := <-co.Submit(pairs[1].Key)
	if res.Err != nil || !res.Found || res.Value != pairs[1].Value {
		t.Fatalf("Submit result = %+v", res)
	}
}
