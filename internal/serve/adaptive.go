package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Adaptive admission (DESIGN §11): a closed-loop controller that holds
// the coalescer's per-request latency near Options.TargetP99 by
// resizing the pending-token window online instead of trusting a
// statically tuned MaxPending. The measured signal is the flush span —
// first enqueue to result delivery, which is exactly the latency the
// oldest request of the batch observed and, by Little's law, tracks
// window/capacity as flush cost shifts with batch size, device
// contention and update mix. Spans from the write path (update pumps)
// feed the same loop through NoteSpan, so a clone-heavy update phase
// shrinks the read window before read tail latency blows past the
// target.

// OverloadError is the typed shed error: it satisfies
// errors.Is(err, ErrOverloaded) for existing callers and carries the
// retry-after hint derived from the current window drain time and shed
// rate, so external clients can back off proportionally instead of
// hammering a saturated window.
type OverloadError struct {
	// RetryAfter is the suggested wait before retrying: the estimated
	// time for the current admission window to drain, inflated by the
	// backlog of concurrently shed requests that will be retrying too.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: coalescer overloaded (retry after %v)", e.RetryAfter)
}

// Unwrap keeps errors.Is(err, ErrOverloaded) true for every wrapped
// shed, static or adaptive.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// OverloadMetrics is the admission-control view of a coalescer: the
// cumulative shed counters, the windowed shed rate, and the controller
// state (static coalescers report their fixed window and a zero
// target).
type OverloadMetrics struct {
	Shed         int64         // requests refused with ErrOverloaded (cumulative)
	DegradedShed int64         // of those, refused by the degraded clamp
	ShedRate     float64       // sheds/sec over the last second
	AdmitWindow  int           // current per-queue admission window
	TargetP99    time.Duration // controller target (0 = static admission)
	RetryAfter   time.Duration // hint currently attached to sheds
}

// rateBuckets x rateBucketNs make up the shed-rate measurement window:
// eight 125ms buckets covering the last second.
const (
	rateBuckets  = 8
	rateBucketNs = int64(time.Second) / rateBuckets
)

// rateTracker is a bucketed ring counting events per 125ms bucket; the
// sum of live buckets is the events/sec over the last second. It is
// touched only on the shed path and at metrics reads, so a mutex is
// fine.
type rateTracker struct {
	mu     sync.Mutex
	counts [rateBuckets]int64
	bucket [rateBuckets]int64 // which absolute bucket each slot holds
}

func (r *rateTracker) note(nowNs int64) {
	b := nowNs / rateBucketNs
	i := int(b % rateBuckets)
	r.mu.Lock()
	if r.bucket[i] != b {
		r.bucket[i] = b
		r.counts[i] = 0
	}
	r.counts[i]++
	r.mu.Unlock()
}

// perSecond returns the event rate over the trailing second (the
// current partial bucket included).
func (r *rateTracker) perSecond(nowNs int64) float64 {
	b := nowNs / rateBucketNs
	var n int64
	r.mu.Lock()
	for i := 0; i < rateBuckets; i++ {
		if b-r.bucket[i] < rateBuckets {
			n += r.counts[i]
		}
	}
	r.mu.Unlock()
	return float64(n)
}

// controller is the AIMD window governor. Flush spans feed note(); on a
// step interval the worst span since the last step is compared against
// the target: above target the window shrinks multiplicatively (×3/4),
// below half the target it grows additively, and inside the
// [target/2, target] deadband it holds — which is what keeps the loop
// from oscillating once it has found the capacity point. The window is
// clamped to [minW, maxW] and starts at maxW: admission is optimistic
// and the first overloaded step pulls it down within stepNs.
type controller struct {
	target int64 // ns, the latency target
	minW   int64 // floor (resolved Options.MinPending)
	maxW   int64 // ceiling (Options.MaxPending)
	stepNs int64 // step interval
	incr   int64 // additive increase per step

	window   atomic.Int64 // current per-queue admission window
	ewma     atomic.Int64 // smoothed flush span, ns (alpha 1/8)
	peak     atomic.Int64 // worst span since the last step
	lastStep atomic.Int64 // unix ns of the last step
	steps    atomic.Int64 // steps taken (introspection/tests)
}

func newController(opt Options) *controller {
	ctl := &controller{
		target: opt.TargetP99.Nanoseconds(),
		minW:   int64(opt.MinPending),
		maxW:   int64(opt.MaxPending),
	}
	// Step at a quarter of the target so a latency excursion is
	// answered well inside one target period, bounded to [2ms, 50ms]
	// so microsecond targets do not spin and second-scale targets
	// still react.
	ctl.stepNs = ctl.target / 4
	if ctl.stepNs < int64(2*time.Millisecond) {
		ctl.stepNs = int64(2 * time.Millisecond)
	}
	if ctl.stepNs > int64(50*time.Millisecond) {
		ctl.stepNs = int64(50 * time.Millisecond)
	}
	// Additive increase reaches the ceiling from the floor in ~64
	// steps — a few hundred ms at the default cadence, the probe-up
	// timescale after a shed episode ends.
	ctl.incr = ctl.maxW / 64
	if ctl.incr < 1 {
		ctl.incr = 1
	}
	ctl.window.Store(ctl.maxW)
	return ctl
}

// note records one span observation.
func (ctl *controller) note(spanNs int64) {
	for {
		old := ctl.ewma.Load()
		nw := old + (spanNs-old)/8
		if old == 0 {
			nw = spanNs
		}
		if ctl.ewma.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		p := ctl.peak.Load()
		if spanNs <= p || ctl.peak.CompareAndSwap(p, spanNs) {
			break
		}
	}
}

// maybeStep runs one AIMD step if the step interval has elapsed,
// returning whether it did. Steps ride the flush path (no dedicated
// goroutine): whichever flusher crosses the interval first wins the
// CAS and adjusts the window for everyone.
func (ctl *controller) maybeStep(nowNs int64) bool {
	last := ctl.lastStep.Load()
	if nowNs-last < ctl.stepNs || !ctl.lastStep.CompareAndSwap(last, nowNs) {
		return false
	}
	peak := ctl.peak.Swap(0)
	if peak == 0 {
		// No flush completed since the last step: hold rather than
		// probe blind.
		return true
	}
	w := ctl.window.Load()
	switch {
	case peak > ctl.target:
		w = w * 3 / 4
	case peak*2 < ctl.target:
		w += ctl.incr
	}
	if w < ctl.minW {
		w = ctl.minW
	}
	if w > ctl.maxW {
		w = ctl.maxW
	}
	ctl.window.Store(w)
	ctl.steps.Add(1)
	return true
}

// noteSpan feeds one span into the controller and refreshes the cached
// overload error when a step fires.
func (c *Coalescer[K]) noteSpan(d time.Duration) {
	now := time.Now().UnixNano()
	c.ctl.note(d.Nanoseconds())
	if c.ctl.maybeStep(now) {
		c.refreshOverload(now)
	}
}

// noteFlushSpan records a completed flush's first-enqueue-to-delivery
// span. Zero t0 (adaptive off, or a batch that filled on its very
// first request before the timestamp was armed) is skipped.
func (c *Coalescer[K]) noteFlushSpan(t0 time.Time) {
	if c.ctl == nil || t0.IsZero() {
		return
	}
	c.noteSpan(time.Since(t0))
}

// refreshOverload recomputes the retry-after hint and publishes a fresh
// immutable OverloadError for the shed path to hand out without
// allocating per request. The hint is the window drain estimate (the
// smoothed flush span, floored at one coalescing window) inflated by
// the shed backlog: every window's worth of requests shed in the last
// second is one more drain period a retrier will queue behind.
func (c *Coalescer[K]) refreshOverload(nowNs int64) {
	drain := c.ctl.ewma.Load()
	if w := c.opt.Window.Nanoseconds(); drain < w {
		drain = w
	}
	wnd := c.ctl.window.Load()
	if wnd < 1 {
		wnd = 1
	}
	backlog := 1 + c.shedRate.perSecond(nowNs)*(float64(drain)/float64(time.Second))/float64(wnd)
	if backlog > 8 {
		backlog = 8
	}
	ra := time.Duration(float64(drain) * backlog)
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	if ra > time.Second {
		ra = time.Second
	}
	c.overload.Store(&OverloadError{RetryAfter: ra})
}

// noteShed counts one shed into the windowed rate tracker.
func (c *Coalescer[K]) noteShed() {
	c.shedRate.note(time.Now().UnixNano())
}

// overloadErr returns the current cached typed shed error.
func (c *Coalescer[K]) overloadErr() error { return c.overload.Load() }

// AdmitWindow returns the current per-queue admission window: the
// controller's live value under adaptive admission, Options.MaxPending
// otherwise (0 = unbounded).
func (c *Coalescer[K]) AdmitWindow() int {
	if c.ctl != nil {
		return int(c.ctl.window.Load())
	}
	return c.opt.MaxPending
}

// ShedRate returns the sheds/sec over the last second.
func (c *Coalescer[K]) ShedRate() float64 {
	return c.shedRate.perSecond(time.Now().UnixNano())
}

// TargetP99 returns the configured latency target (0 = static
// admission).
func (c *Coalescer[K]) TargetP99() time.Duration { return c.opt.TargetP99 }

// RetryAfter returns the hint currently attached to shed responses.
func (c *Coalescer[K]) RetryAfter() time.Duration {
	return c.overload.Load().RetryAfter
}

// NoteSpan feeds an externally measured span into the admission
// controller — the hook the update pumps and serving shells use so
// write-path latency shifts move the read window too. A no-op on a
// static coalescer.
func (c *Coalescer[K]) NoteSpan(d time.Duration) {
	if c.ctl == nil || d <= 0 {
		return
	}
	c.noteSpan(d)
}

// OverloadMetrics returns the admission-control snapshot.
func (c *Coalescer[K]) OverloadMetrics() OverloadMetrics {
	return OverloadMetrics{
		Shed:         c.Shed(),
		DegradedShed: c.DegradedShed(),
		ShedRate:     c.ShedRate(),
		AdmitWindow:  c.AdmitWindow(),
		TargetP99:    c.opt.TargetP99,
		RetryAfter:   c.RetryAfter(),
	}
}

// setWindowForTest forces the controller's window (tests only: lets a
// convergence test start from the floor instead of the optimistic
// ceiling).
func (c *Coalescer[K]) setWindowForTest(w int) {
	if c.ctl != nil {
		c.ctl.window.Store(int64(w))
	}
}
