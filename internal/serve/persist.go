package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/epoch"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/wal"
)

// Durable persistence (DESIGN §8). A Durable wraps the serving layer's
// write path with per-partition write-ahead logs and epoch-aligned
// snapshots so acked writes survive a crash:
//
//   - Every update batch is appended to the WAL — routed to fixed
//     partitions by key, CRC32C-framed, covered by a group-commit
//     fsync — BEFORE it is applied and acked. An OK the client saw is
//     on disk.
//   - A snapshot pins ONE registry epoch (the same atomic cross-shard
//     cut ScanConsistent uses), serialises every shard tree through
//     cpubtree's image format, and commits a manifest naming the cut
//     and the per-partition WAL floors it covers. Sealed log segments
//     below the floor are deleted.
//   - Recovery bulk-loads the manifest's tree images bottom-up (the
//     node pools are restored directly — no per-batch replay of the
//     data that was already indexed) and then replays only each
//     partition's WAL tail past its floor, in order.
//
// WAL partitions are fixed at first boot and routed by key hash, NOT by
// the dynamic shard layout: a rebalance moves shard boundaries but
// never changes which log a key's writes land in, so split/merge needs
// no log migration. Each rebalance appends a barrier record to every
// partition (the manifest barrier of the layout change); replay treats
// barriers as counted no-ops because routing is layout-independent.
//
// Replay past the floor is idempotent: floors are conservative (the
// contiguous prefix of appended records whose apply had completed when
// the cut was taken), so a tail record may already be reflected in the
// snapshot — reapplying an insert overwrites with the same value and
// reapplying a delete finds nothing, and per-partition order preserves
// last-write-wins for same-key sequences.

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dir is the data directory (created if missing): WAL partitions
	// under wal/, snapshot images under snap-<epoch>/, manifests and
	// the CURRENT pointer at the root.
	Dir string
	// FsyncInterval is the WAL group-commit window; zero fsyncs every
	// append inline.
	FsyncInterval time.Duration
	// SnapshotEvery starts a background snapshotter at this period;
	// zero disables it (snapshots happen only via Snapshot calls and on
	// Close).
	SnapshotEvery time.Duration
	// Partitions is the WAL partition count at first boot; zero picks
	// the shard count. Ignored on recovery — the manifest's count wins
	// (partitioning is fixed for the life of the data dir).
	Partitions int
}

// RecoveryStats reports what a recovery did — the acceptance harness
// asserts bulk load + tail replay through these, not timing.
type RecoveryStats struct {
	Recovered       bool   // a committed manifest was found and loaded
	SnapshotEpoch   uint64 // manifest epoch the images were cut at
	TableGen        uint64 // split-key table generation at the cut
	Shards          int    // shard trees bulk-loaded
	BulkLoadedPairs int    // pairs restored via image bulk load
	ReplayedRecords int    // WAL tail records applied
	ReplayedOps     int    // ops within those records
	Barriers        int    // rebalance barrier records crossed
	TornTails       int    // partitions whose final record was torn
}

// PersistMetrics is a snapshot of a Durable's counters.
type PersistMetrics struct {
	Appends       int64  // WAL records appended
	AppendedOps   int64  // ops inside those records
	Syncs         int64  // fsync calls across partitions
	WalBytes      int64  // WAL bytes appended
	Partitions    int    // WAL partition count
	Segments      int    // live WAL segment files
	Truncated     int64  // WAL segments reclaimed by snapshots
	Snapshots     int64  // snapshots committed
	SnapshotSkips int64  // snapshot passes skipped (epoch unchanged)
	LastSnapshot  uint64 // last committed snapshot epoch
	Barriers      int64  // rebalance barrier records written
	SnapFailures  int64  // snapshot attempts that failed
}

// applier is the write surface a Durable fronts: both Server and
// ShardedServer satisfy it.
type applier[K keys.Key] interface {
	Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error)
	UpdateCtx(ctx context.Context, ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error)
}

// floorTracker tracks the contiguous prefix of WAL records whose apply
// has completed: seqs are marked as their batches finish (possibly out
// of order — per-shard writers overlap) and the floor advances while
// the next seq is present. The floor is what a snapshot may safely
// declare covered.
type floorTracker struct {
	mu    sync.Mutex
	floor uint64
	done  map[uint64]struct{}
}

func newFloorTracker(floor uint64) *floorTracker {
	return &floorTracker{floor: floor, done: make(map[uint64]struct{})}
}

func (t *floorTracker) mark(seq uint64) {
	t.mu.Lock()
	if seq > t.floor {
		t.done[seq] = struct{}{}
		for {
			if _, ok := t.done[t.floor+1]; !ok {
				break
			}
			delete(t.done, t.floor+1)
			t.floor++
		}
	}
	t.mu.Unlock()
}

func (t *floorTracker) get() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.floor
}

// Durable fronts a Server or ShardedServer with the WAL + snapshot
// discipline. Reads go straight to the wrapped server (durability does
// not tax the read path); writes MUST go through the Durable or they
// will not survive a crash.
type Durable[K keys.Key] struct {
	dir     string
	walDir  string
	keyBits byte

	app     applier[K]
	single  *Server[K]        // nil in sharded mode
	sharded *ShardedServer[K] // nil in single mode

	logs   []*wal.Log
	floors []*floorTracker

	snapMu        sync.Mutex // one snapshot at a time
	appendedOps   atomic.Int64
	snapshots     atomic.Int64
	snapSkips     atomic.Int64
	snapFailures  atomic.Int64
	barriers      atomic.Int64
	lastSnapEpoch atomic.Uint64

	recovery RecoveryStats

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// OpenDurable opens (or creates) the durable serving stack in
// dopt.Dir. When the directory holds a committed snapshot, the shard
// trees are bulk-loaded from its images, the serving layout (shard
// count, bounds) is restored from the manifest — `shards` is ignored —
// and each WAL partition's tail past the manifest floor is replayed.
// Otherwise seed() provides the initial sorted pairs, the server is
// built fresh (sharded when shards > 1), and an initial snapshot is
// committed so every later boot recovers.
//
// The wrapped server is reachable via Server/Sharded for reads; all
// writes must flow through the Durable.
func OpenDurable[K keys.Key](dopt DurableOptions, opt core.Options, shards int, seed func() ([]keys.Pair[K], error)) (*Durable[K], error) {
	if dopt.Dir == "" {
		return nil, fmt.Errorf("serve: durable: empty data dir")
	}
	if err := os.MkdirAll(dopt.Dir, 0o755); err != nil {
		return nil, err
	}
	d := &Durable[K]{
		dir:     dopt.Dir,
		walDir:  filepath.Join(dopt.Dir, "wal"),
		keyBits: byte(keys.Size[K]() * 8),
	}

	m, found, err := wal.ReadCurrentManifest(dopt.Dir)
	if err != nil {
		return nil, err
	}
	if found {
		if err := d.recover(m, opt, dopt); err != nil {
			return nil, err
		}
	} else {
		if err := d.bootstrap(opt, dopt, shards, seed); err != nil {
			return nil, err
		}
	}

	if d.sharded != nil {
		d.sharded.SetLayoutHook(d.onLayoutChange)
	}
	if dopt.SnapshotEvery > 0 {
		d.stop = make(chan struct{})
		d.wg.Add(1)
		go d.snapshotLoop(dopt.SnapshotEvery)
	}
	return d, nil
}

// recover rebuilds the serving stack from a committed manifest: bulk
// tree loads, layout restoration, WAL-tail replay.
func (d *Durable[K]) recover(m *wal.Manifest, opt core.Options, dopt DurableOptions) error {
	if m.KeyBits != d.keyBits {
		return fmt.Errorf("serve: durable: manifest key width %d bits, serving %d", m.KeyBits, d.keyBits)
	}
	var trees []*core.Tree[K]
	fail := func(err error) error {
		for _, t := range trees {
			t.Close()
		}
		return err
	}
	pairs := 0
	for i, rel := range m.Trees {
		f, err := os.Open(filepath.Join(d.dir, rel))
		if err != nil {
			return fail(fmt.Errorf("serve: durable: open shard image %d: %w", i, err))
		}
		t, err := core.Load[K](f, opt)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("serve: durable: bulk-load shard %d: %w", i, err))
		}
		if opt.Device == nil {
			opt.Device = t.Device() // all shards share one simulated card
		}
		trees = append(trees, t)
		pairs += t.NumPairs()
	}
	if m.Pairs != pairs {
		return fail(fmt.Errorf("serve: durable: manifest says %d pairs, images hold %d", m.Pairs, pairs))
	}
	if len(trees) == 1 {
		d.single = NewServer(trees[0])
		d.app = d.single
	} else {
		bounds := make([]K, len(m.Bounds))
		for i, b := range m.Bounds {
			bounds[i] = K(b)
		}
		d.sharded = newShardedFromTrees(trees, bounds, opt, m.TableGen)
		d.app = d.sharded
	}
	d.recovery = RecoveryStats{
		Recovered:       true,
		SnapshotEpoch:   m.Epoch,
		TableGen:        m.TableGen,
		Shards:          len(trees),
		BulkLoadedPairs: pairs,
	}
	d.lastSnapEpoch.Store(0) // force the next snapshot even at epoch parity

	// Replay each partition's tail past the manifest floor, then open
	// the logs for appending (Open truncates any torn final record the
	// scan reported — its append was never acked).
	d.floors = make([]*floorTracker, m.Partitions)
	for i := 0; i < m.Partitions; i++ {
		res, err := wal.Scan(d.walDir, i, d.keyBits, m.Floors[i])
		if err != nil {
			return fmt.Errorf("serve: durable: scan wal partition %d: %w", i, err)
		}
		if res.TornTail {
			d.recovery.TornTails++
		}
		for _, rec := range res.Records {
			if err := d.replayRecord(rec); err != nil {
				return fmt.Errorf("serve: durable: replay partition %d seq %d: %w", i, rec.Seq, err)
			}
		}
		d.floors[i] = newFloorTracker(res.NextSeq - 1)
	}
	return d.openLogs(m.Partitions, dopt.FsyncInterval)
}

// replayRecord applies one recovered WAL record through the server's
// normal (non-logging) write path.
func (d *Durable[K]) replayRecord(rec wal.Record) error {
	if len(rec.Payload) == 0 {
		return fmt.Errorf("%w: empty payload", wal.ErrCorrupt)
	}
	switch rec.Payload[0] {
	case wal.RecOps:
		ops, method, err := wal.DecodeOps[K](rec.Payload)
		if err != nil {
			return err
		}
		if _, err := d.app.Update(ops, core.UpdateMethod(method)); err != nil {
			return err
		}
		d.recovery.ReplayedRecords++
		d.recovery.ReplayedOps += len(ops)
	case wal.RecBarrier:
		if _, err := wal.DecodeBarrier(rec.Payload); err != nil {
			return err
		}
		d.recovery.Barriers++
		d.recovery.ReplayedRecords++
	default:
		return fmt.Errorf("%w: unknown record type %d", wal.ErrCorrupt, rec.Payload[0])
	}
	return nil
}

// bootstrap builds the serving stack fresh from seed data and commits
// the initial snapshot, so every subsequent boot takes the recovery
// path.
func (d *Durable[K]) bootstrap(opt core.Options, dopt DurableOptions, shards int, seed func() ([]keys.Pair[K], error)) error {
	pairs, err := seed()
	if err != nil {
		return err
	}
	if shards > 1 {
		s, err := BuildSharded(pairs, opt, shards)
		if err != nil {
			return err
		}
		d.sharded = s
		d.app = s
	} else {
		t, err := core.Build(pairs, opt)
		if err != nil {
			return err
		}
		d.single = NewServer(t)
		d.app = d.single
	}
	p := dopt.Partitions
	if p <= 0 {
		p = max(shards, 1)
	}
	d.floors = make([]*floorTracker, p)
	for i := range d.floors {
		d.floors[i] = newFloorTracker(0)
	}
	if err := d.openLogs(p, dopt.FsyncInterval); err != nil {
		return err
	}
	if _, err := d.Snapshot(); err != nil {
		return fmt.Errorf("serve: durable: initial snapshot: %w", err)
	}
	return nil
}

func (d *Durable[K]) openLogs(partitions int, fsyncInterval time.Duration) error {
	d.logs = make([]*wal.Log, partitions)
	for i := range d.logs {
		l, err := wal.Open(d.walDir, i, d.keyBits, wal.Options{FsyncInterval: fsyncInterval})
		if err != nil {
			for _, prev := range d.logs[:i] {
				prev.Close()
			}
			return fmt.Errorf("serve: durable: open wal partition %d: %w", i, err)
		}
		d.logs[i] = l
	}
	return nil
}

// Server returns the wrapped single-tree server (nil in sharded mode).
// Reads route through the wrapped servers directly — a Coalescer over
// Server() or Sharded().Coalesce takes the sorted shared-descent flush
// path exactly as on a non-durable deployment; durability only
// intercepts writes.
func (d *Durable[K]) Server() *Server[K] { return d.single }

// Device returns the simulated device all wrapped shard trees share.
func (d *Durable[K]) Device() *gpusim.Device {
	var p epoch.Pin[*core.Tree[K], shardMeta[K]]
	if d.sharded != nil {
		p = d.sharded.reg.Pin()
	} else {
		p = d.single.reg.Pin()
	}
	defer p.Unpin()
	return p.Get(0).Device()
}

// Sharded returns the wrapped sharded server (nil in single mode).
func (d *Durable[K]) Sharded() *ShardedServer[K] { return d.sharded }

// Recovery returns what recovery did at open (zero value on a fresh
// boot).
func (d *Durable[K]) Recovery() RecoveryStats { return d.recovery }

// partition routes a key to its WAL partition: a fixed key-hash
// assignment, independent of the dynamic shard layout.
func (d *Durable[K]) partition(k K) int {
	return int(uint64(k) % uint64(len(d.logs)))
}

// Update logs ops to the WAL (routed by key, durable before return)
// and then applies them through the wrapped server. The ack discipline
// is write-ahead: a batch is applied — and thus ackable — only after
// its log append's group commit completed. A batch whose append failed
// is not applied at all.
func (d *Durable[K]) Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	return d.UpdateCtx(context.Background(), ops, method)
}

// UpdateCtx is Update with the caller deadline applied to the apply
// phase (writer-slot waits). The WAL append itself is not abandoned on
// ctx expiry — it is bounded by the group-commit window, and tearing a
// record out of a shared flush is not possible.
func (d *Durable[K]) UpdateCtx(ctx context.Context, ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	if len(ops) == 0 {
		return d.app.UpdateCtx(ctx, ops, method)
	}
	type pend struct {
		part int
		seq  uint64
	}
	var pends []pend
	if len(ops) == 1 || len(d.logs) == 1 {
		// Fast path (the PUT/DEL serving case): one partition, one
		// record.
		part := 0
		if len(d.logs) > 1 {
			part = d.partition(ops[0].Key)
		}
		seq, err := d.logs[part].Append(wal.AppendOps(nil, ops, byte(method)))
		if err != nil {
			return core.UpdateStats{}, fmt.Errorf("serve: durable: wal append: %w", err)
		}
		pends = []pend{{part, seq}}
	} else {
		groups := make([][]cpubtree.Op[K], len(d.logs))
		for _, op := range ops {
			i := d.partition(op.Key)
			groups[i] = append(groups[i], op)
		}
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			seq, err := d.logs[i].Append(wal.AppendOps(nil, g, byte(method)))
			if err != nil {
				// Partitions already appended will be replayed after a
				// crash even though this batch is not acked — the "may
				// appear" half of the contract, same as a crash between
				// append and ack. Mark them applied-equivalent so the
				// floor never stalls on a batch that was never applied.
				for _, p := range pends {
					d.floors[p.part].mark(p.seq)
				}
				return core.UpdateStats{}, fmt.Errorf("serve: durable: wal append: %w", err)
			}
			pends = append(pends, pend{i, seq})
		}
	}
	d.appendedOps.Add(int64(len(ops)))
	stats, err := d.app.UpdateCtx(ctx, ops, method)
	// Mark the appended records complete whether the apply succeeded or
	// was abandoned: a failed apply means the batch was never acked, so
	// a snapshot floor past it drops it legitimately — while a stalled
	// floor would pin every later segment forever.
	for _, p := range pends {
		d.floors[p.part].mark(p.seq)
	}
	return stats, err
}

// onLayoutChange is the rebalance hook: it appends a barrier record to
// every WAL partition, marking the layout transition in the log stream.
func (d *Durable[K]) onLayoutChange(gen uint64, shards int) {
	payload := wal.AppendBarrier(nil, wal.Barrier{Gen: gen, Shards: uint32(shards)})
	for i, l := range d.logs {
		seq, err := l.Append(payload)
		if err != nil {
			continue // sticky log error; the next update surfaces it
		}
		d.floors[i].mark(seq) // barriers are applied by definition
		d.barriers.Add(1)
	}
}

// Snapshot writes one epoch-aligned snapshot: every shard tree under a
// single pinned registry epoch (an atomic cross-shard cut), a committed
// manifest, and WAL truncation below the covered floors. It returns the
// committed epoch. A pass whose epoch equals the last committed one is
// skipped (nothing new to cover).
func (d *Durable[K]) Snapshot() (uint64, error) {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()

	// Floors first, pin second: every record at or below the floor had
	// fully applied — and therefore published — before the pin, so the
	// pinned images contain it. Records between floor and pin replay
	// idempotently.
	floors := make([]uint64, len(d.logs))
	for i, ft := range d.floors {
		floors[i] = ft.get()
	}

	var (
		p      epoch.Pin[*core.Tree[K], shardMeta[K]]
		trees  []*core.Tree[K]
		bounds []uint64
		gen    uint64
	)
	if d.sharded != nil {
		p = d.sharded.reg.Pin()
		m := p.Meta()
		gen = m.gen
		for i := 0; i < p.Len(); i++ {
			trees = append(trees, p.Get(i))
		}
		for _, b := range m.bounds {
			bounds = append(bounds, uint64(b))
		}
	} else {
		p = d.single.reg.Pin()
		trees = append(trees, p.Get(0))
	}
	defer p.Unpin()
	ep := p.Epoch()
	if ep == d.lastSnapEpoch.Load() {
		d.snapSkips.Add(1)
		return ep, nil
	}

	snapDir := filepath.Join(d.dir, wal.SnapDir(ep))
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		d.snapFailures.Add(1)
		return 0, err
	}
	man := &wal.Manifest{
		Epoch:      ep,
		TableGen:   gen,
		KeyBits:    d.keyBits,
		Bounds:     bounds,
		Partitions: len(d.logs),
		Floors:     floors,
	}
	for i, t := range trees {
		rel := filepath.Join(wal.SnapDir(ep), fmt.Sprintf("shard-%03d.tree", i))
		if err := writeTreeImage(filepath.Join(d.dir, rel), t); err != nil {
			d.snapFailures.Add(1)
			return 0, fmt.Errorf("serve: durable: snapshot shard %d: %w", i, err)
		}
		man.Trees = append(man.Trees, rel)
		man.Pairs += t.NumPairs()
	}
	if err := wal.WriteManifest(d.dir, man); err != nil {
		d.snapFailures.Add(1)
		return 0, fmt.Errorf("serve: durable: commit manifest: %w", err)
	}
	d.lastSnapEpoch.Store(ep)
	d.snapshots.Add(1)

	// The snapshot is committed; reclaim what it superseded. Rotate
	// seals each active segment so truncation operates on whole files.
	for i, l := range d.logs {
		if err := l.Rotate(); err != nil {
			continue
		}
		l.TruncateBelow(floors[i] + 1)
	}
	wal.SweepSnapshots(d.dir, ep)
	return ep, nil
}

// writeTreeImage serialises one tree to path and fsyncs it.
func writeTreeImage[K keys.Key](path string, t *core.Tree[K]) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// snapshotLoop is the background snapshotter.
func (d *Durable[K]) snapshotLoop(every time.Duration) {
	defer d.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			d.Snapshot() // failures are counted; the next tick retries
		}
	}
}

// Metrics returns the persistence counters.
func (d *Durable[K]) Metrics() PersistMetrics {
	m := PersistMetrics{
		AppendedOps:   d.appendedOps.Load(),
		Partitions:    len(d.logs),
		Snapshots:     d.snapshots.Load(),
		SnapshotSkips: d.snapSkips.Load(),
		LastSnapshot:  d.lastSnapEpoch.Load(),
		Barriers:      d.barriers.Load(),
		SnapFailures:  d.snapFailures.Load(),
	}
	for _, l := range d.logs {
		st := l.Stats()
		m.Appends += st.Appends
		m.Syncs += st.Syncs
		m.WalBytes += st.Bytes
		m.Segments += st.Segments
		m.Truncated += st.Truncated
	}
	return m
}

// Close stops the background snapshotter, commits a final snapshot (a
// graceful shutdown restarts with zero replay), and closes the logs.
// The wrapped server is NOT closed — the serving layer owns it.
func (d *Durable[K]) Close() error {
	d.closeOnce.Do(func() {
		if d.stop != nil {
			close(d.stop)
			d.wg.Wait()
		}
		if _, err := d.Snapshot(); err != nil {
			d.closeErr = err
		}
		for _, l := range d.logs {
			if err := l.Close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
	})
	return d.closeErr
}
