package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/workload"
)

// TestSplitAndMergeShards: manual split and merge each install a new
// layout as one epoch transition — key set intact, every lookup still
// correct, aggregate metrics continuous across the retired shard, and
// the epoch/table generation advanced.
func TestSplitAndMergeShards(t *testing.T) {
	s, pairs := newShardedServer(t, core.Regular, 1<<12, 4)

	// Touch shard 1 with some updates so continuity of the aggregate
	// Updates counter across its retirement is observable.
	ops := make([]cpubtree.Op[uint64], 0, 32)
	for i := 0; i < 32; i++ {
		p := pairs[len(pairs)/4+i]
		ops = append(ops, cpubtree.Op[uint64]{Key: p.Key, Value: p.Value})
	}
	if _, err := s.Update(ops, core.Synchronized); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics()
	epochBefore := s.Epoch()

	if err := s.SplitShard(1); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 5 || len(s.Bounds()) != 4 {
		t.Fatalf("post-split layout: %d shards, %d bounds", s.Shards(), len(s.Bounds()))
	}
	bounds := s.Bounds()
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			t.Fatalf("bounds not strictly increasing: %v", bounds)
		}
	}
	if s.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance across split: %d -> %d", epochBefore, s.Epoch())
	}
	if s.NumPairs() != len(pairs) {
		t.Fatalf("split changed pair count: %d, want %d", s.NumPairs(), len(pairs))
	}
	after := s.Metrics()
	if after.Updates != before.Updates || after.Swaps != before.Swaps {
		t.Fatalf("metrics discontinuous across split: updates %d->%d swaps %d->%d",
			before.Updates, after.Updates, before.Swaps, after.Swaps)
	}
	rb := s.RebalanceStats()
	if rb.Splits != 1 || rb.Rebalances != 1 || rb.TableGen != 2 || rb.Shards != 5 {
		t.Fatalf("rebalance stats after split: %+v", rb)
	}

	if err := s.MergeShards(1); err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 4 || len(s.Bounds()) != 3 {
		t.Fatalf("post-merge layout: %d shards, %d bounds", s.Shards(), len(s.Bounds()))
	}
	rb = s.RebalanceStats()
	if rb.Merges != 1 || rb.Rebalances != 2 || rb.TableGen != 3 {
		t.Fatalf("rebalance stats after merge: %+v", rb)
	}

	for i := 0; i < len(pairs); i += 7 {
		p := pairs[i]
		if v, ok := s.Lookup(p.Key); !ok || v != p.Value {
			t.Fatalf("post-rebalance Lookup(%d) = (%d,%v), want %d", p.Key, v, ok, p.Value)
		}
	}
	sc := s.ScanConsistent(0, len(pairs))
	if len(sc) != len(pairs) {
		t.Fatalf("consistent scan len %d, want %d", len(sc), len(pairs))
	}
	for i, p := range sc {
		if p != pairs[i] {
			t.Fatalf("consistent scan[%d] = %v, want %v", i, p, pairs[i])
		}
	}
	// Writes keep landing on the post-rebalance layout.
	if _, err := s.Update([]cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 777}}, core.Synchronized); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Lookup(pairs[0].Key); !ok || v != 777 {
		t.Fatalf("post-rebalance write invisible: (%d,%v)", v, ok)
	}
}

// TestSplitErrors: out-of-range indexes are rejected and the layout is
// untouched.
func TestSplitErrors(t *testing.T) {
	s, _ := newShardedServer(t, core.Regular, 1<<10, 2)
	if err := s.SplitShard(2); err == nil {
		t.Fatal("split of missing shard succeeded")
	}
	if err := s.MergeShards(1); err == nil {
		t.Fatal("merge past the last shard succeeded")
	}
	if s.Shards() != 2 || s.RebalanceStats().Rebalances != 0 {
		t.Fatalf("failed rebalance mutated layout: %+v", s.RebalanceStats())
	}
}

// TestCheckRebalanceDetector: the window detector splits a hot shard
// once its update share crosses HotFraction, and merges a cold adjacent
// pair once their combined share drops below ColdFraction.
func TestCheckRebalanceDetector(t *testing.T) {
	s, pairs := newShardedServer(t, core.Regular, 1<<12, 4)
	hotKey := pairs[len(pairs)-1].Key
	hot := s.route(hotKey)

	opt := RebalanceOptions{MinOps: 64, HotFraction: 0.5, ColdFraction: -1, Interval: time.Hour}
	if act, err := s.CheckRebalance(opt); err != nil || act != "" {
		t.Fatalf("first pass acted: %q, %v", act, err)
	}
	// 128 updates, all to the hottest shard: share 1.0.
	ops := make([]cpubtree.Op[uint64], 128)
	for i := range ops {
		p := pairs[len(pairs)-1-i%32]
		ops[i] = cpubtree.Op[uint64]{Key: p.Key, Value: p.Value}
	}
	if _, err := s.Update(ops, core.Synchronized); err != nil {
		t.Fatal(err)
	}
	act, err := s.CheckRebalance(opt)
	if err != nil || act == "" {
		t.Fatalf("hot window did not split: %q, %v", act, err)
	}
	if s.Shards() != 5 || s.RebalanceStats().Splits != 1 {
		t.Fatalf("post-detector layout: %d shards, %+v", s.Shards(), s.RebalanceStats())
	}

	// Merge detection: traffic on the upper shards only leaves the
	// bottom adjacent pair cold.
	mopt := RebalanceOptions{MinOps: 64, HotFraction: 0.99, ColdFraction: 0.2, Interval: time.Hour}
	if act, err := s.CheckRebalance(mopt); err != nil || act != "" {
		t.Fatalf("window re-base acted: %q, %v", act, err)
	}
	mid := len(pairs) / 2
	ops = ops[:0]
	for i := 0; i < 192; i++ {
		p := pairs[mid+(i*37)%(len(pairs)-mid)]
		ops = append(ops, cpubtree.Op[uint64]{Key: p.Key, Value: p.Value})
	}
	if _, err := s.Update(ops, core.Synchronized); err != nil {
		t.Fatal(err)
	}
	act, err = s.CheckRebalance(mopt)
	if err != nil || act == "" {
		t.Fatalf("cold window did not merge: %q, %v", act, err)
	}
	if s.Shards() != 4 || s.RebalanceStats().Merges != 1 {
		t.Fatalf("post-merge layout: %d shards, %+v", s.Shards(), s.RebalanceStats())
	}
	_ = hot
}

// TestScanConsistentOracleUnderRebalance is the torn-cut oracle, run
// under -race by the race CI lane. A writer serialises acked writes
// left-to-right: it writes v to a key in the lowest shard, waits for
// the ack, then writes v to a key in the highest shard — so at every
// real-time instant value(hi) <= value(lo). A cross-shard cut that is
// NOT atomic can catch the high key's new value together with the low
// key's old one (the plain Scan stitch reads the low shard first);
// ScanConsistent pins one epoch for the whole stitch and must never
// observe that inversion, even while forced split/merge cycles replace
// the layout underneath it. The scan must also stay gap- and
// duplicate-free: the key set is constant, so every cut returns exactly
// the initial keys in strict order.
func TestScanConsistentOracleUnderRebalance(t *testing.T) {
	s, pairs := newShardedServer(t, core.Regular, 1<<12, 4)
	kLo := pairs[0].Key
	kHi := pairs[len(pairs)-1].Key
	const base = uint64(1) << 40

	// Establish the invariant before readers start.
	for _, k := range []uint64{kLo, kHi} {
		if _, err := s.Update([]cpubtree.Op[uint64]{{Key: k, Value: base}}, core.Synchronized); err != nil {
			t.Fatal(err)
		}
	}

	// The forcer drives termination: writers and readers run until it
	// has completed a fixed number of split/merge cycles, so the test is
	// immune to scheduling starvation on small GOMAXPROCS.
	done := make(chan struct{})
	finished := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	var wg sync.WaitGroup
	errc := make(chan string, 8)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Writer: value(hi) trails value(lo) by construction.
	var lastAcked uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := base + 1; !finished(); v++ {
			if _, err := s.Update([]cpubtree.Op[uint64]{{Key: kLo, Value: v}}, core.Synchronized); err != nil {
				report("writer lo: %v", err)
				return
			}
			if _, err := s.Update([]cpubtree.Op[uint64]{{Key: kHi, Value: v}}, core.Synchronized); err != nil {
				report("writer hi: %v", err)
				return
			}
			lastAcked = v
		}
	}()

	// Rebalance forcer: split and re-merge the bottom shard in a loop,
	// so cuts constantly straddle layout transitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := s.SplitShard(0); err != nil {
				report("split: %v", err)
				return
			}
			if err := s.MergeShards(0); err != nil {
				report("merge: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !finished() {
				cut := s.ScanConsistent(0, len(pairs)+8)
				if len(cut) != len(pairs) {
					report("cut has %d pairs, want %d", len(cut), len(pairs))
					return
				}
				var vLo, vHi uint64
				for i, p := range cut {
					if p.Key != pairs[i].Key {
						report("cut[%d] key %d, want %d (gap or duplicate)", i, p.Key, pairs[i].Key)
						return
					}
					switch p.Key {
					case kLo:
						vLo = p.Value
					case kHi:
						vHi = p.Value
					}
				}
				if vHi > vLo {
					report("torn cut: value(hi)=%d > value(lo)=%d", vHi, vLo)
					return
				}
			}
		}()
	}

	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	// Zero lost acked writes across all the rebalances.
	if v, ok := s.Lookup(kLo); !ok || v < lastAcked {
		t.Fatalf("acked write lost on lo: (%d,%v), last acked %d", v, ok, lastAcked)
	}
	if v, ok := s.Lookup(kHi); !ok || v < lastAcked {
		t.Fatalf("acked write lost on hi: (%d,%v), last acked %d", v, ok, lastAcked)
	}
	if s.RebalanceStats().Rebalances == 0 {
		t.Fatal("oracle ran without any rebalance")
	}
}

// TestRebalanceSmokeSkewed is the acceptance smoke: a 90/10 skewed
// update stream triggers the background rebalancer, the split completes
// online with zero lost acked writes and no request hang, and the
// post-rebalance per-shard update spread is measurably better than the
// pre-rebalance one. The CI scaling lane runs it at GOMAXPROCS=4.
func TestRebalanceSmokeSkewed(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<13, 42)
	s, err := BuildSharded(pairs, core.Options{Variant: core.Regular, BucketSize: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	hotPool := pairs[:len(pairs)/4] // initial shard 0's range
	acked := make(map[uint64]uint64)
	rng := uint64(1)
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }
	skewedBatch := func(n int, tag uint64) []cpubtree.Op[uint64] {
		ops := make([]cpubtree.Op[uint64], n)
		for i := range ops {
			var p = pairs[next()%uint64(len(pairs))]
			if next()%10 < 9 { // 90% hot
				p = hotPool[next()%uint64(len(hotPool))]
			}
			ops[i] = cpubtree.Op[uint64]{Key: p.Key, Value: tag}
		}
		return ops
	}
	drive := func(batches int, tag uint64) {
		for b := 0; b < batches; b++ {
			ops := skewedBatch(16, tag)
			if _, err := s.Update(ops, core.Synchronized); err != nil {
				t.Fatalf("skewed update: %v", err)
			}
			for _, op := range ops {
				acked[op.Key] = op.Value
			}
		}
	}
	// spread routes one synthetic window of the skewed stream through
	// the CURRENT split-key table and returns the hottest shard's share
	// — a deterministic measure of how the layout divides the skew,
	// independent of which shard servers happened to exist mid-window.
	spread := func() (maxShare float64) {
		probe := uint64(12345)
		pnext := func() uint64 { probe = probe*6364136223846793005 + 1442695040888963407; return probe >> 33 }
		counts := make([]int64, s.Shards())
		const window = 4096
		for i := 0; i < window; i++ {
			p := pairs[pnext()%uint64(len(pairs))]
			if pnext()%10 < 9 {
				p = hotPool[pnext()%uint64(len(hotPool))]
			}
			if idx := s.route(p.Key); idx < len(counts) {
				counts[idx]++
			}
		}
		for _, c := range counts {
			if share := float64(c) / float64(window); share > maxShare {
				maxShare = share
			}
		}
		return maxShare
	}

	// Pre-rebalance: the initial equal-cut table sends ~90% of the
	// stream to one shard.
	preMax := spread()
	if preMax < 0.8 {
		t.Fatalf("skew generator too weak: hottest share %.2f", preMax)
	}
	drive(64, 1)

	s.StartRebalancer(RebalanceOptions{
		MinOps: 512, HotFraction: 0.6, ColdFraction: -1,
		MaxShards: 8, Interval: time.Millisecond,
	})
	waitUntil := time.Now().Add(10 * time.Second)
	for s.RebalanceStats().Splits == 0 {
		if time.Now().After(waitUntil) {
			t.Fatalf("rebalancer never split under skew: %+v", s.RebalanceStats())
		}
		drive(8, 2)
	}

	// Drain one more acked round through the post-rebalance layout, then
	// measure how the new table divides the same skewed stream: the hot
	// range now spans at least two shards.
	drive(64, 3)
	postMax := spread()
	if postMax > preMax-0.15 {
		t.Fatalf("split did not improve spread: pre %.2f, post %.2f (stats %+v)",
			preMax, postMax, s.RebalanceStats())
	}

	// Zero lost acked writes, served without a hang.
	for k, v := range acked {
		if got, ok := s.Lookup(k); !ok || got != v {
			t.Fatalf("acked write lost: key %d = (%d,%v), want %d", k, got, ok, v)
		}
	}
	if s.NumPairs() != len(pairs) {
		t.Fatalf("rebalance changed pair count: %d, want %d", s.NumPairs(), len(pairs))
	}
}
