package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
)

// Wall-clock measurement of the serving layer. Unlike the rest of the
// reproduction, which accounts performance on the paper's virtual
// clock, this driver measures what the ROADMAP's north star asks for —
// real throughput and latency of the serving pipeline on the machine it
// runs on: C client goroutines issue point lookups through a Coalescer
// while a fraction of their operations are routed to an update pump
// that batches them (the paper's batch-update design, Section 5.6) and
// applies each batch through Server.Update. Two configurations are
// comparable: the locked baseline (PR-1 discipline: one RWMutex, one
// coalescer queue) and the fast path (snapshot reads, sharded
// coalescer, allocation-free batches).

// WallOptions configures one wall-clock serving run.
type WallOptions struct {
	// Clients is the number of concurrent client goroutines (8 default).
	Clients int

	// Duration is the measurement length (1s default).
	Duration time.Duration

	// UpdateFrac routes this fraction of client operations to the
	// update pump (e.g. 0.1 for a 10% update mix). Requires the
	// regular tree variant when non-zero.
	UpdateFrac float64

	// Locked selects the baseline: NewLockedServer plus a single-shard
	// coalescer — the PR-1 serving discipline. The default is the fast
	// path: snapshot server plus a GOMAXPROCS-sharded coalescer.
	Locked bool

	// Shards, when above 1, selects the key-space sharded configuration:
	// a ShardedServer over that many trees with per-shard update pumps
	// and a per-shard coalescer group. Mutually exclusive with Locked.
	Shards int

	// MaxPending and Shed configure coalescer admission control (see
	// Options); zero MaxPending leaves the windows unbounded.
	MaxPending int
	Shed       bool

	// TargetP99 turns on adaptive admission (Options.TargetP99): the
	// coalescer resizes its window online to hold this latency target
	// and sheds the excess with retry hints, which the wall clients
	// honour by backing off. Zero keeps static admission.
	TargetP99 time.Duration

	// MinPending is the adaptive window's floor (Options.MinPending).
	MinPending int

	// FlushStall is the serialized per-flush stall (Options.FlushStall):
	// a deterministic capacity model for overload experiments.
	FlushStall time.Duration

	// Unsorted makes coalescer flushes take the plain batch path instead
	// of the default sorted shared-descent one — the A/B baseline for
	// measuring what presorting, duplicate folding and level-wise probe
	// sharing buy in wall-clock terms.
	Unsorted bool

	// UniformLayout builds the tree with the classic one-line-per-node
	// geometry instead of the default cost-model-tuned per-level layout
	// (wide multi-line nodes near the root, sized for the coalescer's
	// MaxBatch) — the A/B baseline for the layout engine. Implicit
	// variant only; the regular tree has no tuned layout.
	UniformLayout bool

	// MaxBatch and Window configure the coalescer (1024 and 200µs
	// defaults: wall-clock serving wants smaller flush quanta than the
	// 16K virtual-clock bucket).
	MaxBatch int
	Window   time.Duration

	// Depth is the number of lookups each client keeps in flight (512
	// default). Pipelined submission is what makes coalescing effective
	// in wall-clock terms: with one blocking request per client, every
	// batch waits out the deadline window half-empty.
	Depth int

	// UpdateBatch is the update pump's batch size (4096 default).
	UpdateBatch int

	// NoDeltaLeaves disables the in-place gapped-leaf update path, so
	// every batch takes the clone-and-swap route — the A/B baseline for
	// measuring what the delta leaves buy in wall-clock terms. Both arms
	// build with the same leaf fill (see RunWall), so the layout is
	// identical and only the apply path differs.
	NoDeltaLeaves bool

	// UpdateSkew, when positive, draws this fraction of the update
	// operations from the hottest quarter of the key space (the lowest
	// keys) instead of uniformly — the skewed write stream that
	// concentrates load on one shard. With Rebalance set, this is the
	// pressure the online rebalancer relieves.
	UpdateSkew float64

	// Rebalance, when non-nil, starts the background rebalancer on the
	// sharded server with these options (requires Shards > 1): the
	// detector watches per-shard update shares and splits hot shards /
	// merges cold neighbours online while the run is serving.
	Rebalance *RebalanceOptions

	// RebuildEvery, when non-zero, rebuilds the whole tree from the
	// original pairs on this period (implicit variant only). This is the
	// reader-stall stress: under the locked baseline every rebuild
	// blocks all lookups for its full duration; under snapshot reads the
	// replacement is built aside and swapped in.
	RebuildEvery time.Duration
}

func (o *WallOptions) fillDefaults() {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.Window <= 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.Depth <= 0 {
		o.Depth = 512
	}
	if o.UpdateBatch <= 0 {
		o.UpdateBatch = 4096
	}
}

// WallResult is one wall-clock serving measurement.
type WallResult struct {
	Lookups int64         // point lookups served
	Updates int64         // update operations pumped
	Elapsed time.Duration // measured span

	MQPS float64 // Lookups / Elapsed, in millions/s

	P50, P95, P99 time.Duration // lookup latency percentiles

	// AllocsPerLookup is the process-wide heap allocation count over the
	// measured span divided by the lookups served — the serving path's
	// steady state should hold this near zero (pooled batches, pooled
	// scratch, grow-once sorted staging).
	AllocsPerLookup float64

	// Folded counts duplicate keys folded into an already-occupied batch
	// slot by sorted flushes; NodeProbes/ProbesSaved are the
	// shared-descent kernel's accounting summed over the run (all three
	// zero on the unsorted baseline).
	Folded      int64
	NodeProbes  int64
	ProbesSaved int64

	// Layout names the inner-node geometry the run was built with
	// ("uniform" or "tuned"); LevelWidths is the realised per-level
	// key-slot table (root first) and LineBytes the probe-weighted
	// device-line traffic of the run (NodeProbes × the 64-byte line) —
	// the layout A/B's second metric next to MQPS.
	Layout      string
	LevelWidths []int
	LineBytes   int64

	// DuringWriteP50/P99 are percentiles over lookups issued while a
	// write (update batch or rebuild) was executing — the reader-stall
	// measure: under the locked baseline these queue behind the writer;
	// under snapshot reads they proceed against the old version.
	// DuringWriteSamples counts them: a locked server admits almost no
	// reads inside a write span (clients stall before they can even
	// submit), so a high sample count is itself the signature of
	// non-blocking reads.
	DuringWriteP50     time.Duration
	DuringWriteP99     time.Duration
	DuringWriteSamples int

	// WriteTime is the total wall time spent inside write spans.
	WriteTime time.Duration

	// UpdateMQPS is the sustained update throughput: Updates / Elapsed,
	// in millions/s. The write-path A/B headline number.
	UpdateMQPS float64

	// Write-path amplification accounting (DESIGN §10): batches the
	// pump landed in place on gapped-leaf forks vs batches that fell
	// back to clone-and-swap, and the clone path's host copy footprint.
	InPlaceBatches int64
	CloneFallbacks int64
	ClonedNodes    int64
	ClonedBytes    int64

	// Overload accounting: requests shed by admission control over the
	// run, the shed rate at the end of the run, the admission window at
	// the end of the run (summed across queues on a sharded coalescer),
	// and the configured latency target (0 = static admission). Shed
	// requests are not lookups and record no latency sample; wall
	// clients back off by each shed's retry-after hint.
	Shed        int64
	ShedRate    float64
	AdmitWindow int
	TargetP99   time.Duration

	Batches  int64 // coalescer batches flushed
	Swaps    int64 // snapshot publications (0 for the locked baseline)
	Rebuilds int64 // full rebuilds executed (RebuildEvery runs)

	// Shards is the shard count of the sharded configuration at the end
	// of the run (0 otherwise); ShardSwaps and ShardUpdates are the
	// per-shard snapshot publications and applied update batches,
	// index-aligned with the ascending key ranges of the final layout.
	Shards       int
	ShardSwaps   []int64
	ShardUpdates []int64

	// Rebalances/Splits/Merges count the online shard-layout transitions
	// the background rebalancer performed during the run (Rebalance
	// runs only); Epoch is the final registry epoch.
	Rebalances, Splits, Merges int64
	Epoch                      uint64
}

func (r WallResult) String() string {
	s := fmt.Sprintf("%.2f MQPS (%d lookups, %d updates in %v), p50 %v p95 %v p99 %v, during-write p50 %v p99 %v (%d samples over %v of writes), %d batches, %d swaps",
		r.MQPS, r.Lookups, r.Updates, r.Elapsed.Round(time.Millisecond),
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.DuringWriteP50.Round(time.Microsecond), r.DuringWriteP99.Round(time.Microsecond),
		r.DuringWriteSamples, r.WriteTime.Round(time.Millisecond), r.Batches, r.Swaps)
	if r.Updates > 0 {
		s += fmt.Sprintf(", %.2f update MQPS (%d in-place, %d clone fallbacks, %d nodes / %s cloned)",
			r.UpdateMQPS, r.InPlaceBatches, r.CloneFallbacks, r.ClonedNodes, fmtBytes(r.ClonedBytes))
	}
	if r.Shed > 0 || r.TargetP99 > 0 {
		s += fmt.Sprintf(", shed %d (%.0f/s, window %d, target %v)",
			r.Shed, r.ShedRate, r.AdmitWindow, r.TargetP99)
	}
	if r.NodeProbes > 0 {
		s += fmt.Sprintf(", %d folded, probes %d (saved %d, %.1f%%)",
			r.Folded, r.NodeProbes, r.ProbesSaved,
			100*float64(r.ProbesSaved)/float64(r.NodeProbes+r.ProbesSaved))
	}
	if r.Layout == "tuned" {
		s += fmt.Sprintf(", tuned layout %v (%s probe lines)", r.LevelWidths, fmtBytes(r.LineBytes))
	}
	if r.Shards > 0 {
		s += fmt.Sprintf(", %d shards (swaps %v)", r.Shards, r.ShardSwaps)
	}
	if r.Rebalances > 0 {
		s += fmt.Sprintf(", %d rebalances (%d splits, %d merges, epoch %d)",
			r.Rebalances, r.Splits, r.Merges, r.Epoch)
	}
	return s
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// maxWallSamples caps the per-client latency record so a long run's
// sample storage stays bounded; throughput counters are exact.
const maxWallSamples = 1 << 17

// wallBackend is the write/lifecycle surface RunWall drives: the
// single-tree Server and the ShardedServer both satisfy it.
type wallBackend[K keys.Key] interface {
	Update([]cpubtree.Op[K], core.UpdateMethod) (core.UpdateStats, error)
	Rebuild([]keys.Pair[K]) (core.UpdateStats, error)
	SetDeltaLeaves(on bool)
	Swaps() int64
	Close()
}

// wallCoalescer is the lookup surface RunWall drives: the Coalescer and
// the ShardedCoalescer both satisfy it.
type wallCoalescer[K keys.Key] interface {
	Submit(K) <-chan Result[K]
	Batches() int64
	Folded() int64
	Shed() int64
	ShedRate() float64
	AdmitWindow() int
	NoteSpan(time.Duration)
	Close()
}

// RunWall builds a tree (or, with opt.Shards > 1, a sharded set of
// trees) from pairs and drives it with opt's client mix for
// opt.Duration of wall-clock time.
func RunWall[K keys.Key](pairs []keys.Pair[K], treeOpt core.Options, opt WallOptions) (WallResult, error) {
	opt.fillDefaults()
	if opt.UpdateFrac > 0 && treeOpt.Variant != core.Regular {
		return WallResult{}, fmt.Errorf("serve: wall run with updates requires the regular variant")
	}
	if opt.RebuildEvery > 0 && treeOpt.Variant != core.Implicit {
		return WallResult{}, fmt.Errorf("serve: wall run with rebuilds requires the implicit variant")
	}
	if opt.Locked && opt.Shards > 1 {
		return WallResult{}, fmt.Errorf("serve: Locked and Shards are mutually exclusive")
	}
	if opt.Rebalance != nil && opt.Shards <= 1 {
		return WallResult{}, fmt.Errorf("serve: Rebalance requires a sharded configuration (Shards > 1)")
	}
	if treeOpt.Variant == core.Implicit && !opt.UniformLayout && !opt.Unsorted {
		// Default to the cost-model-tuned layout, sized for the flush
		// quantum the coalescer will present. Unsorted runs stay uniform:
		// without the shared descent every query pays a wide root node's
		// full line count, which the tuner's batch model would never pick.
		treeOpt.Layout = core.LayoutTuned
		treeOpt.LayoutBatch = opt.MaxBatch
	}
	if opt.UpdateFrac > 0 && treeOpt.LeafFill == 0 {
		// Write-heavy runs build with leaf slack so batches can land in
		// place. Applied to BOTH A/B arms (the -no-delta-leaves baseline
		// included): the layout must be identical for the comparison to
		// isolate the apply path.
		treeOpt.LeafFill = 0.875
	}

	coOpt := Options{MaxBatch: opt.MaxBatch, Window: opt.Window, MaxPending: opt.MaxPending, Shed: opt.Shed, Unsorted: opt.Unsorted,
		TargetP99: opt.TargetP99, MinPending: opt.MinPending, FlushStall: opt.FlushStall}
	var backend wallBackend[K]
	var co wallCoalescer[K]
	var sharded *ShardedServer[K]
	var metricsFn func() Metrics
	var levelWidths []int
	if opt.Shards > 1 {
		s, err := BuildSharded(pairs, treeOpt, opt.Shards)
		if err != nil {
			return WallResult{}, err
		}
		backend, sharded = s, s
		metricsFn = s.Metrics
		levelWidths = s.members()[0].Tree().LevelWidths()
		co = s.Coalesce(coOpt)
		if opt.Rebalance != nil {
			s.StartRebalancer(*opt.Rebalance)
		}
	} else {
		tree, err := core.Build(pairs, treeOpt)
		if err != nil {
			return WallResult{}, err
		}
		levelWidths = tree.LevelWidths()
		defer tree.Close()
		var srv *Server[K]
		if opt.Locked {
			srv = NewLockedServer(tree)
			coOpt.Shards = 1
		} else {
			srv = NewServer(tree)
		}
		backend = srv
		metricsFn = srv.Metrics
		co = NewCoalescer(srv, coOpt)
	}
	if opt.NoDeltaLeaves {
		backend.SetDeltaLeaves(false)
	}
	defer backend.Close()
	defer co.Close()

	// The update pump: clients hand write ops to a channel; one
	// goroutine forms batches of UpdateBatch (or whatever accumulated
	// in ~2ms) and applies each with one Server.Update — the paper's
	// batch-update discipline. writing is set for the span of each
	// batch so clients can tag lookups that overlapped a write.
	var writing atomic.Bool
	var updateErr error
	var rebuilds int64
	var writeNs int64
	updates := make(chan cpubtree.Op[K], 4*opt.UpdateBatch)
	pumpDone := make(chan struct{})
	var pumpWG sync.WaitGroup
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		// One backing array for the pump's whole life: flush() truncates
		// to len 0 and refills in place, so the steady-state pump
		// allocates nothing per batch.
		batch := make([]cpubtree.Op[K], 0, opt.UpdateBatch)
		var stale int
		flush := func() {
			stale = 0
			if len(batch) == 0 || updateErr != nil {
				batch = batch[:0]
				return
			}
			writing.Store(true)
			w0 := time.Now()
			_, err := backend.Update(batch, core.AsyncParallel)
			wd := time.Since(w0)
			writeNs += wd.Nanoseconds()
			writing.Store(false)
			// Feed the write span into adaptive admission (no-op when
			// static): a clone-heavy batch shrinks the read window.
			co.NoteSpan(wd)
			if err != nil {
				updateErr = err
			}
			batch = batch[:0]
		}
		// The straggler ticker bounds update latency when clients
		// trickle. Ticker flushes are gated on fill level: in snapshot
		// mode every flush pays a whole-tree clone, so flushing a
		// near-empty batch every tick would turn the swap rate into a
		// function of the tick rate instead of the update rate. A
		// quarter-full batch flushes immediately; anything smaller waits
		// up to four ticks (~40ms).
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		var rebuildC <-chan time.Time
		if opt.RebuildEvery > 0 {
			rt := time.NewTicker(opt.RebuildEvery)
			defer rt.Stop()
			rebuildC = rt.C
		}
		for {
			select {
			case op := <-updates:
				batch = append(batch, op)
				if len(batch) >= opt.UpdateBatch {
					flush()
				}
			case <-ticker.C:
				stale++
				if len(batch) >= opt.UpdateBatch/4 || stale >= 4 {
					flush()
				}
			case <-rebuildC:
				if updateErr != nil {
					continue
				}
				writing.Store(true)
				w0 := time.Now()
				_, err := backend.Rebuild(pairs)
				writeNs += time.Since(w0).Nanoseconds()
				writing.Store(false)
				if err != nil {
					updateErr = err
				}
				rebuilds++
			case <-pumpDone:
				for {
					select {
					case op := <-updates:
						batch = append(batch, op)
					default:
						flush()
						return
					}
				}
			}
		}
	}()

	type clientStats struct {
		lookups   int64
		updates   int64
		shed      int64
		lats      []time.Duration
		writeLats []time.Duration
		err       error
	}
	// inflight is one pipelined request awaiting its reply.
	type inflight struct {
		ch     <-chan Result[K]
		t0     time.Time
		during bool
	}
	stats := make([]clientStats, opt.Clients)
	var running atomic.Bool
	running.Store(true)
	var wg sync.WaitGroup
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for c := 0; c < opt.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			st.lats = make([]time.Duration, 0, maxWallSamples)
			st.writeLats = make([]time.Duration, 0, maxWallSamples/8)
			rng := rand.New(rand.NewSource(int64(c)*0x9E3779B9 + 1))
			// Ring of in-flight submissions: each client keeps Depth
			// lookups pipelined, so coalescer batches fill by size
			// instead of timing out half-empty.
			ring := make([]inflight, opt.Depth)
			var head, n int
			drain := func() bool {
				fl := ring[head]
				head = (head + 1) % opt.Depth
				n--
				res := <-fl.ch
				if res.Err != nil {
					// A shed is an overload signal, not a run failure:
					// count it and honour the retry-after hint (capped so
					// one conservative hint cannot idle a client for a
					// whole phase).
					if errors.Is(res.Err, ErrOverloaded) {
						st.shed++
						var oe *OverloadError
						if errors.As(res.Err, &oe) && oe.RetryAfter > 0 {
							time.Sleep(min(oe.RetryAfter, 20*time.Millisecond))
						}
						return true
					}
					st.err = res.Err
					return false
				}
				lat := time.Since(fl.t0)
				st.lookups++
				if len(st.lats) < cap(st.lats) {
					st.lats = append(st.lats, lat)
				}
				if fl.during && len(st.writeLats) < cap(st.writeLats) {
					st.writeLats = append(st.writeLats, lat)
				}
				return true
			}
			for running.Load() {
				p := pairs[rng.Intn(len(pairs))]
				if opt.UpdateFrac > 0 && rng.Float64() < opt.UpdateFrac {
					if opt.UpdateSkew > 0 && rng.Float64() < opt.UpdateSkew {
						p = pairs[rng.Intn(max(1, len(pairs)/4))]
					}
					// Blocking hand-off: client-perceived update cost is
					// the enqueue; the pump amortises the batch.
					updates <- cpubtree.Op[K]{Key: p.Key, Value: p.Value + 1}
					st.updates++
					continue
				}
				if n == opt.Depth && !drain() {
					return
				}
				ring[(head+n)%opt.Depth] = inflight{ch: co.Submit(p.Key), t0: time.Now(), during: writing.Load()}
				n++
			}
			for n > 0 {
				if !drain() {
					return
				}
			}
		}(c)
	}
	time.Sleep(opt.Duration)
	running.Store(false)
	wg.Wait()
	elapsed := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)
	close(pumpDone)
	pumpWG.Wait()
	if updateErr != nil {
		return WallResult{}, updateErr
	}

	var res WallResult
	res.Elapsed = elapsed
	var lats, writeLats []time.Duration
	for i := range stats {
		st := &stats[i]
		if st.err != nil {
			return WallResult{}, st.err
		}
		res.Lookups += st.lookups
		res.Updates += st.updates
		lats = append(lats, st.lats...)
		writeLats = append(writeLats, st.writeLats...)
	}
	res.MQPS = float64(res.Lookups) / elapsed.Seconds() / 1e6
	res.Shed = co.Shed()
	res.ShedRate = co.ShedRate()
	res.AdmitWindow = co.AdmitWindow()
	res.TargetP99 = opt.TargetP99
	res.P50, res.P95, res.P99 = percentiles(lats)
	res.DuringWriteP50, _, res.DuringWriteP99 = percentiles(writeLats)
	res.DuringWriteSamples = len(writeLats)
	res.WriteTime = time.Duration(writeNs)
	if res.Lookups > 0 {
		res.AllocsPerLookup = float64(ms1.Mallocs-ms0.Mallocs) / float64(res.Lookups)
	}
	res.UpdateMQPS = float64(res.Updates) / elapsed.Seconds() / 1e6
	res.Batches = co.Batches()
	res.Folded = co.Folded()
	m := metricsFn()
	res.NodeProbes = m.NodeProbes
	res.ProbesSaved = m.ProbesSaved
	res.Layout = treeOpt.Layout.String()
	res.LevelWidths = levelWidths
	res.LineBytes = m.NodeProbes * keys.LineBytes
	res.InPlaceBatches = m.InPlaceApplied
	res.CloneFallbacks = m.CloneFallbacks
	res.ClonedNodes = m.ClonedNodes
	res.ClonedBytes = m.ClonedBytes
	res.Swaps = backend.Swaps()
	res.Rebuilds = rebuilds
	if sharded != nil {
		res.Shards = sharded.Shards()
		for _, m := range sharded.ShardMetrics() {
			res.ShardSwaps = append(res.ShardSwaps, m.Swaps)
			res.ShardUpdates = append(res.ShardUpdates, m.Updates)
		}
		rs := sharded.RebalanceStats()
		res.Rebalances, res.Splits, res.Merges = rs.Rebalances, rs.Splits, rs.Merges
		res.Epoch = rs.Epoch
	}
	return res, nil
}

// percentiles returns the p50, p95 and p99 of the samples (0 when
// empty). The slice is sorted in place.
func percentiles(lats []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	slices.Sort(lats)
	return lats[len(lats)/2],
		lats[int(float64(len(lats)-1)*0.95)],
		lats[int(float64(len(lats)-1)*0.99)]
}
