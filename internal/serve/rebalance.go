package serve

import (
	"fmt"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/epoch"
	"hbtree/internal/keys"
)

// Online shard rebalancing (DESIGN §6). BuildSharded cuts the key space
// into equal runs of the INITIAL distribution; a skewed update stream
// then concentrates write work — and its O(shard) clone cost — on a few
// hot shards while cold shards idle. Rebalancing moves the split keys
// at runtime: a hot shard splits in two, a cold adjacent pair merges,
// each change installed as ONE epoch transition of the shared registry,
// so readers always observe either the old layout or the new one and
// never a mix.
//
// A rebalance step quiesces only the write plane: it takes the pump
// lock (excluding new dispatches), drains in-flight pump jobs with a
// barrier handshake, rebuilds the affected shards' trees from their
// quiesced versions, and transitions the registry — untouched shards
// carry their current version over by reference (epoch.KeepSlot), so
// the work is proportional to the shards being reshaped. Readers are
// never blocked: they pin epochs through the whole window, and in-flight
// reads on replaced shard servers finish on their pinned versions.
// Replaced servers' counters fold into the retired accumulator so
// aggregate metrics stay continuous; replacement servers start with
// fresh breakers carrying the recorded resilience policy.

// RebalanceOptions tunes the imbalance detector. The zero value is
// ready to use.
type RebalanceOptions struct {
	// HotFraction splits a shard once it absorbs more than this share
	// of the window's updates (and the layout is below MaxShards).
	// Default 0.5.
	HotFraction float64
	// ColdFraction merges an adjacent shard pair once their combined
	// share of the window's updates falls below this (and the layout is
	// above MinShards). Default 0.05; negative disables merging.
	ColdFraction float64
	// MinOps is the update volume a window must accumulate before the
	// detector acts — below it, shares are noise. Default 4096.
	MinOps int64
	// MaxShards caps splits; 0 means twice the shard count at decision
	// time. MinShards floors merges; 0 means 2.
	MaxShards int
	MinShards int
	// Interval is the background rebalancer's poll period. Default
	// 100ms.
	Interval time.Duration
}

func (o *RebalanceOptions) fill() {
	if o.HotFraction <= 0 {
		o.HotFraction = 0.5
	}
	if o.ColdFraction == 0 {
		o.ColdFraction = 0.05
	}
	if o.MinOps <= 0 {
		o.MinOps = 4096
	}
	if o.MinShards <= 0 {
		o.MinShards = 2
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
}

// RebalanceStats describes the rebalancing state: the registry epoch,
// the split-key table generation, and the decision counters.
type RebalanceStats struct {
	Epoch      uint64
	TableGen   uint64
	Shards     int
	Rebalances int64
	Splits     int64
	Merges     int64
	Last       string // human-readable description of the last action
}

// RebalanceStats returns the current rebalancing counters.
func (s *ShardedServer[K]) RebalanceStats() RebalanceStats {
	m := s.reg.Meta()
	st := RebalanceStats{
		Epoch:      s.reg.Epoch(),
		TableGen:   m.gen,
		Shards:     len(m.subs),
		Rebalances: s.rebalances.Load(),
		Splits:     s.splits.Load(),
		Merges:     s.merges.Load(),
	}
	if p := s.lastRb.Load(); p != nil {
		st.Last = *p
	}
	return st
}

func (s *ShardedServer[K]) noteRebalance(desc string) {
	s.rebalances.Add(1)
	s.lastRb.Store(&desc)
}

// StartRebalancer runs the imbalance detector on a background ticker
// until Close. Starting twice is a no-op; decisions and errors are
// reported through RebalanceStats.
func (s *ShardedServer[K]) StartRebalancer(opt RebalanceOptions) {
	opt.fill()
	s.rbMu.Lock()
	defer s.rbMu.Unlock()
	if s.rbStop != nil {
		return
	}
	s.rbStop = make(chan struct{})
	s.rbWG.Add(1)
	go func() {
		defer s.rbWG.Done()
		tick := time.NewTicker(opt.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.rbStop:
				return
			case <-tick.C:
				s.CheckRebalance(opt)
			}
		}
	}()
}

// CheckRebalance runs one detector pass: it compares each shard's
// update count against the last observation window and, once the window
// holds at least MinOps updates, splits the hottest shard past
// HotFraction or merges the coldest adjacent pair below ColdFraction —
// at most one action per pass. It returns a description of the action
// taken ("" for none).
func (s *ShardedServer[K]) CheckRebalance(opt RebalanceOptions) (string, error) {
	opt.fill()
	s.rbMu.Lock()
	defer s.rbMu.Unlock()
	m := s.reg.Meta()
	counts := make([]int64, len(m.subs))
	for i, sub := range m.subs {
		counts[i] = sub.updates.Load()
	}
	if m.gen != s.rbLastGen || len(counts) != len(s.rbLast) {
		// Layout changed (or first pass): restart the window.
		s.rbLastGen, s.rbLast = m.gen, counts
		return "", nil
	}
	var total int64
	deltas := make([]int64, len(counts))
	for i := range counts {
		deltas[i] = counts[i] - s.rbLast[i]
		total += deltas[i]
	}
	if total < opt.MinOps {
		// Keep accumulating the window.
		return "", nil
	}
	maxShards := opt.MaxShards
	if maxShards <= 0 {
		maxShards = 2 * len(counts)
	}
	hot, hotShare := -1, 0.0
	for i, d := range deltas {
		if share := float64(d) / float64(total); share > hotShare {
			hot, hotShare = i, share
		}
	}
	if hotShare > opt.HotFraction && len(counts) < maxShards {
		if err := s.splitShard(hot); err != nil {
			return "", err
		}
		s.restartWindow()
		return fmt.Sprintf("split shard %d (%.0f%% of %d updates)", hot, hotShare*100, total), nil
	}
	if opt.ColdFraction > 0 && len(counts) > opt.MinShards {
		cold, coldShare := -1, 1.1
		for i := 0; i+1 < len(deltas); i++ {
			if share := float64(deltas[i]+deltas[i+1]) / float64(total); share < coldShare {
				cold, coldShare = i, share
			}
		}
		if cold >= 0 && coldShare < opt.ColdFraction {
			if err := s.mergeShards(cold); err != nil {
				return "", err
			}
			s.restartWindow()
			return fmt.Sprintf("merged shards %d+%d (%.0f%% of %d updates)", cold, cold+1, coldShare*100, total), nil
		}
	}
	// Nothing actionable: slide the window so shares track recent
	// traffic rather than all history.
	s.rbLastGen, s.rbLast = m.gen, counts
	return "", nil
}

// restartWindow re-bases the detector window on the post-rebalance
// layout. Callers hold rbMu.
func (s *ShardedServer[K]) restartWindow() {
	m := s.reg.Meta()
	counts := make([]int64, len(m.subs))
	for i, sub := range m.subs {
		counts[i] = sub.updates.Load()
	}
	s.rbLastGen, s.rbLast = m.gen, counts
}

// SplitShard splits shard i at its median key into two shards,
// installed as one epoch transition. Readers are never blocked; the
// write plane is quiesced for the duration of materialising and
// rebuilding the one shard.
func (s *ShardedServer[K]) SplitShard(i int) error {
	s.rbMu.Lock()
	defer s.rbMu.Unlock()
	return s.splitShard(i)
}

// MergeShards merges shards i and i+1 into one, installed as one epoch
// transition.
func (s *ShardedServer[K]) MergeShards(i int) error {
	s.rbMu.Lock()
	defer s.rbMu.Unlock()
	return s.mergeShards(i)
}

// quiesceWrites takes the pump lock and drains in-flight pump jobs, so
// the shard trees are stable until the returned unlock runs. Callers
// hold rbMu. Returns ErrClosed after Close.
func (s *ShardedServer[K]) quiesceWrites() error {
	s.pumpMu.Lock()
	if s.closed {
		s.pumpMu.Unlock()
		return ErrClosed
	}
	// Barrier handshake: dispatches hand jobs to pumps under the read
	// lock we now exclude, so after one barrier job per pump drains,
	// every previously dispatched job has fully executed (the channels
	// are unbuffered — acceptance of the barrier means the pump finished
	// everything before it).
	done := make(chan shardDone, len(s.pumps))
	for _, ch := range s.pumps {
		ch <- shardJob[K]{barrier: true, done: done}
	}
	for range s.pumps {
		<-done
	}
	return nil
}

// splitShard is SplitShard's body; callers hold rbMu.
func (s *ShardedServer[K]) splitShard(i int) error {
	if err := s.quiesceWrites(); err != nil {
		return err
	}
	defer s.pumpMu.Unlock()
	m := s.reg.Meta()
	if i < 0 || i >= len(m.subs) {
		return fmt.Errorf("serve: split: no shard %d in a %d-shard layout", i, len(m.subs))
	}
	old := s.reg.Current(i)
	pairs := materialisePairs(old)
	if len(pairs) < 2 {
		return fmt.Errorf("serve: split: shard %d holds %d pairs, cannot split", i, len(pairs))
	}
	mid := len(pairs) / 2
	splitKey := pairs[mid].Key
	left, err := core.Build(pairs[:mid], s.opt)
	if err != nil {
		return fmt.Errorf("serve: split shard %d: %w", i, err)
	}
	right, err := core.Build(pairs[mid:], s.opt)
	if err != nil {
		left.Close()
		return fmt.Errorf("serve: split shard %d: %w", i, err)
	}

	// Shard j's lower bound is bounds[j-1]: inserting the split key at
	// index i makes it the new shard i+1's lower bound and shifts the
	// later bounds one slot up, exactly tracking the shifted shards.
	nb := make([]K, 0, len(m.bounds)+1)
	nb = append(nb, m.bounds[:i]...)
	nb = append(nb, splitKey)
	nb = append(nb, m.bounds[i:]...)

	ls := newShardMember(left, s.reg, i)
	rs := newShardMember(right, s.reg, i+1)
	s.applyPolicy(ls)
	s.applyPolicy(rs)
	ns := make([]*Server[K], 0, len(m.subs)+1)
	ns = append(ns, m.subs[:i]...)
	ns = append(ns, ls, rs)
	ns = append(ns, m.subs[i+1:]...)

	s.absorbRetired(m.subs[i])
	slots := make([]epoch.Slot[*core.Tree[K]], 0, len(ns))
	for j := 0; j < i; j++ {
		slots = append(slots, epoch.KeepSlot[*core.Tree[K]](j))
	}
	slots = append(slots, epoch.NewSlot(left), epoch.NewSlot(right))
	for j := i + 1; j < len(m.subs); j++ {
		slots = append(slots, epoch.KeepSlot[*core.Tree[K]](j))
	}
	s.reg.Transition(slots, shardMeta[K]{bounds: nb, subs: ns, gen: m.gen + 1})
	for j, sub := range ns {
		sub.slot.Store(int32(j))
	}
	s.resizePumps(len(ns))
	s.splits.Add(1)
	s.noteRebalance(fmt.Sprintf("split shard %d at %v (gen %d, %d shards)", i, splitKey, m.gen+1, len(ns)))
	// The write plane is still quiesced here, so the barrier the hook
	// logs lands between the last pre-layout record and the first
	// post-layout one in every WAL partition.
	s.notifyLayout(m.gen+1, len(ns))
	return nil
}

// mergeShards is MergeShards's body; callers hold rbMu.
func (s *ShardedServer[K]) mergeShards(i int) error {
	if err := s.quiesceWrites(); err != nil {
		return err
	}
	defer s.pumpMu.Unlock()
	m := s.reg.Meta()
	if i < 0 || i+1 >= len(m.subs) {
		return fmt.Errorf("serve: merge: no adjacent pair %d,%d in a %d-shard layout", i, i+1, len(m.subs))
	}
	lo := materialisePairs(s.reg.Current(i))
	pairs := append(lo, materialisePairs(s.reg.Current(i+1))...)
	merged, err := core.Build(pairs, s.opt)
	if err != nil {
		return fmt.Errorf("serve: merge shards %d+%d: %w", i, i+1, err)
	}

	// Dropping bounds[i] — the retiring boundary between i and i+1 —
	// extends shard i over both ranges.
	nb := make([]K, 0, len(m.bounds)-1)
	nb = append(nb, m.bounds[:i]...)
	nb = append(nb, m.bounds[i+1:]...)

	ms := newShardMember(merged, s.reg, i)
	s.applyPolicy(ms)
	ns := make([]*Server[K], 0, len(m.subs)-1)
	ns = append(ns, m.subs[:i]...)
	ns = append(ns, ms)
	ns = append(ns, m.subs[i+2:]...)

	s.absorbRetired(m.subs[i])
	s.absorbRetired(m.subs[i+1])
	slots := make([]epoch.Slot[*core.Tree[K]], 0, len(ns))
	for j := 0; j < i; j++ {
		slots = append(slots, epoch.KeepSlot[*core.Tree[K]](j))
	}
	slots = append(slots, epoch.NewSlot(merged))
	for j := i + 2; j < len(m.subs); j++ {
		slots = append(slots, epoch.KeepSlot[*core.Tree[K]](j))
	}
	s.reg.Transition(slots, shardMeta[K]{bounds: nb, subs: ns, gen: m.gen + 1})
	for j, sub := range ns {
		sub.slot.Store(int32(j))
	}
	s.resizePumps(len(ns))
	s.merges.Add(1)
	s.noteRebalance(fmt.Sprintf("merged shards %d+%d (gen %d, %d shards)", i, i+1, m.gen+1, len(ns)))
	s.notifyLayout(m.gen+1, len(ns))
	return nil
}

// resizePumps replaces the pump set to match a new shard count. Callers
// hold the pump write lock with the old pumps drained, so closing them
// and waiting is safe.
func (s *ShardedServer[K]) resizePumps(n int) {
	if n == len(s.pumps) {
		return
	}
	for _, ch := range s.pumps {
		close(ch)
	}
	s.pumpWG.Wait()
	s.pumps = make([]chan shardJob[K], n)
	for i := range s.pumps {
		s.pumps[i] = make(chan shardJob[K])
		s.pumpWG.Add(1)
		go s.pumpLoop(s.pumps[i])
	}
}

// shardUpdateCounts returns each current shard's applied-update count,
// the signal the detector windows (exposed for the skew benchmarks).
func (s *ShardedServer[K]) shardUpdateCounts() []int64 {
	subs := s.members()
	out := make([]int64, len(subs))
	for i, sub := range subs {
		out[i] = sub.updates.Load()
	}
	return out
}

// materialiseAll collects every shard's pairs in key order under one
// pinned epoch (used by tests and the bench harness to checkpoint the
// full key set).
func (s *ShardedServer[K]) materialiseAll() []keys.Pair[K] {
	p := s.reg.Pin()
	defer p.Unpin()
	var out []keys.Pair[K]
	for i := 0; i < p.Len(); i++ {
		out = append(out, materialisePairs(p.Get(i))...)
	}
	return out
}
