package serve

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// newTestServer builds a small tree and wraps it; the bucket size is
// kept tiny so batch boundaries are exercised.
func newTestServer(t testing.TB, variant core.Variant, n int) (*Server[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tree, err := core.Build(pairs, core.Options{Variant: variant, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return NewServer(tree), pairs
}

// TestLoneRequestFlushesAtDeadline: a single request must not starve
// waiting for companions — the window deadline flushes it.
func TestLoneRequestFlushesAtDeadline(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	window := 20 * time.Millisecond
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: window})
	defer c.Close()

	start := time.Now()
	v, found, err := c.Lookup(pairs[5].Key)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != pairs[5].Value {
		t.Fatalf("lone lookup = (%d, %v), want (%d, true)", v, found, pairs[5].Value)
	}
	if elapsed < window/2 {
		t.Fatalf("lone request flushed after %v, before the %v window could have fired", elapsed, window)
	}
	if c.Batches() != 1 || c.Queries() != 1 {
		t.Fatalf("batches=%d queries=%d, want 1/1", c.Batches(), c.Queries())
	}
}

// TestFullBatchFlushesImmediately: when MaxBatch requests are pending
// the batch must flush without waiting for the (deliberately enormous)
// window. Shards is pinned to 1 so the submissions deterministically
// fill one shard's batch.
func TestFullBatchFlushesImmediately(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	const maxBatch = 8
	c := NewCoalescer(srv, Options{MaxBatch: maxBatch, Window: time.Hour, Shards: 1})
	defer c.Close()

	chans := make([]<-chan Result[uint64], maxBatch)
	for i := range chans {
		chans[i] = c.Submit(pairs[i].Key)
	}
	deadline := time.After(10 * time.Second)
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !res.Found || res.Value != pairs[i].Value {
				t.Fatalf("request %d = (%d, %v), want (%d, true)", i, res.Value, res.Found, pairs[i].Value)
			}
		case <-deadline:
			t.Fatalf("request %d still pending: full batch did not flush before the window", i)
		}
	}
}

// TestCloseFailsPendingRequests: requests queued but not yet flushed
// when Close runs receive ErrClosed instead of hanging, and later
// submissions fail fast.
func TestCloseFailsPendingRequests(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: time.Hour})

	const pending = 3
	chans := make([]<-chan Result[uint64], pending)
	for i := range chans {
		chans[i] = c.Submit(pairs[i].Key)
	}
	// Give the flusher a moment to pull the requests into its batch so
	// the close-with-collected-batch path is exercised too.
	time.Sleep(5 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	for i, ch := range chans {
		select {
		case res := <-ch:
			if !errors.Is(res.Err, ErrClosed) {
				t.Fatalf("pending request %d: err = %v, want ErrClosed", i, res.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("pending request %d hung across Close", i)
		}
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
	if _, _, err := c.Lookup(pairs[0].Key); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close lookup err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	c.Close()
}

// TestCoalescerCorrectnessUnderLoad hammers the coalescer from many
// blocking clients and verifies every result, plus that coalescing
// actually happened (more queries than batches).
func TestCoalescerCorrectnessUnderLoad(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: 200 * time.Microsecond})
	defer c.Close()

	const clients = 8
	perClient := 200
	if testing.Short() {
		perClient = 50
	}
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		go func(w int) {
			for i := 0; i < perClient; i++ {
				p := pairs[(w*perClient+i*31)%len(pairs)]
				v, found, err := c.Lookup(p.Key)
				if err != nil {
					errc <- err
					return
				}
				if !found || v != p.Value {
					errc <- errors.New("wrong coalesced result")
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < clients; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	total := int64(clients * perClient)
	if c.Queries() != total {
		t.Fatalf("served %d queries, want %d", c.Queries(), total)
	}
	if c.Batches() >= total {
		t.Fatalf("no coalescing: %d batches for %d queries", c.Batches(), total)
	}
}

// TestMissingKeyThroughCoalescer: absent keys come back found=false.
func TestMissingKeyThroughCoalescer(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	c := NewCoalescer(srv, Options{MaxBatch: 4, Window: time.Millisecond})
	defer c.Close()
	// Dataset keys are uniform uint64; a small odd key is (nearly
	// surely) absent — verify against the source of truth first.
	probe := uint64(3)
	if _, ok := srv.Lookup(probe); ok {
		t.Skip("improbable: probe key present in dataset")
	}
	_, found, err := c.Lookup(probe)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("absent key reported found")
	}
	_ = pairs
}

// TestAdmissionShed: past MaxPending, shed mode fails fast with
// ErrOverloaded without queueing, and the window recovers once the
// pending batch flushes.
func TestAdmissionShed(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	// One queue, a window that never fires on its own, batches of 4: the
	// first 2 submissions sit in the forming batch holding both tokens.
	c := NewCoalescer(srv, Options{MaxBatch: 4, Window: time.Hour, Shards: 1, MaxPending: 2, Shed: true})
	defer c.Close()

	r1 := c.Submit(pairs[0].Key)
	r2 := c.Submit(pairs[1].Key)
	res := <-c.Submit(pairs[2].Key)
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("third submit err = %v, want ErrOverloaded", res.Err)
	}
	// Blocking Lookup sheds the same way.
	if _, _, err := c.Lookup(pairs[3].Key); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Lookup err = %v, want ErrOverloaded", err)
	}
	// The two admitted requests are still pending (tokens exhausted
	// below MaxBatch, window never fires); Close fails them with
	// ErrClosed. Token recovery during live serving is covered by
	// TestAdmissionShedRecovers.
	c.Close()
	for i, r := range []<-chan Result[uint64]{r1, r2} {
		if res := <-r; !errors.Is(res.Err, ErrClosed) {
			t.Fatalf("pending %d after Close: %+v", i, res)
		}
	}
}

// TestAdmissionShedRecovers: tokens return to the window when a batch
// flushes, so shedding stops once load drains.
func TestAdmissionShedRecovers(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	// MaxBatch == MaxPending == 1: every accepted request flushes inline
	// and releases its token before Lookup returns.
	c := NewCoalescer(srv, Options{MaxBatch: 1, Window: time.Hour, Shards: 1, MaxPending: 1, Shed: true})
	defer c.Close()
	for i := 0; i < 64; i++ {
		p := pairs[i%len(pairs)]
		v, found, err := c.Lookup(p.Key)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if !found || v != p.Value {
			t.Fatalf("lookup %d = (%d, %v)", i, v, found)
		}
	}
}

// TestAdmissionBackpressure: without Shed, a submitter past the bound
// blocks until the window drains, then completes normally.
func TestAdmissionBackpressure(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	// MaxBatch 2, MaxPending 2: two submissions fill the batch and flush
	// inline; a third issued while the first two are still undelivered
	// must wait, not fail. Batches here flush synchronously, so drive
	// the block from a goroutine against a long-window lone request.
	c := NewCoalescer(srv, Options{MaxBatch: 2, Window: 30 * time.Millisecond, Shards: 1, MaxPending: 1})
	defer c.Close()

	// First request takes the only token and waits for the deadline.
	r1 := c.Submit(pairs[0].Key)
	// Second submission must block in admission until the deadline
	// flush delivers r1 and releases the token — then proceed.
	start := time.Now()
	v, found, err := c.Lookup(pairs[1].Key)
	blocked := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != pairs[1].Value {
		t.Fatalf("backpressured lookup = (%d, %v)", v, found)
	}
	if blocked < 10*time.Millisecond {
		t.Fatalf("second lookup returned in %v; expected to block ~30ms behind the window", blocked)
	}
	if res := <-r1; res.Err != nil || !res.Found {
		t.Fatalf("first result = %+v", res)
	}
}

// TestAdmissionBoundsTailLatency is the admission-control acceptance
// criterion at the ROADMAP's pipeline depth: 8 clients × depth 512 =
// 4096 concurrent lookups hit a backend that has stalled — the locked
// server's writer mutex is held for the whole burst, the scenario that
// actually creates a deep in-flight window, since admission tokens only
// return when a flush delivers. (A healthy backend recycles tokens
// faster than clients can pile up, so depth alone never engages the
// bound.) Unbounded, every request queues behind the stall and the
// completion p99 is the stall length. With the window bounded and Shed
// on, at most MaxPending requests are ever in flight; the excess fails
// fast with ErrOverloaded instead of queueing, so the completion p99 —
// shed responses included, which is what a retrying client observes —
// stays flat instead of growing with depth. Backpressure mode bounds
// the same window by parking the excess in the caller (covered by
// TestAdmissionBackpressure); shedding is the mode that bounds p99.
func TestAdmissionBoundsTailLatency(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<10, 42)
	tree, err := core.Build(pairs, core.Options{Variant: core.Implicit, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	srv := NewLockedServer(tree)

	const (
		clients    = 8
		depth      = 512
		burst      = clients * depth
		stall      = 150 * time.Millisecond
		maxPending = 32
	)
	run := func(opt Options) (p99 time.Duration, sheds int64) {
		c := NewCoalescer(srv, opt)
		defer c.Close()
		// Stall the backend: flushes block on the read lock, so no
		// result is delivered (and no admission token released) until
		// the writer lock drops.
		srv.mu.Lock()
		lat := make([]time.Duration, burst)
		var shed atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				t0 := time.Now()
				_, _, err := c.Lookup(pairs[i%len(pairs)].Key)
				lat[i] = time.Since(t0)
				if errors.Is(err, ErrOverloaded) {
					shed.Add(1)
				} else if err != nil {
					t.Errorf("lookup %d: %v", i, err)
				}
			}(i)
		}
		close(start)
		time.Sleep(stall)
		srv.mu.Unlock()
		wg.Wait()
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat[burst*99/100], shed.Load()
	}

	unboundedP99, _ := run(Options{MaxBatch: 64, Window: time.Millisecond, Shards: 1})
	boundedP99, sheds := run(Options{MaxBatch: 64, Window: time.Millisecond, Shards: 1,
		MaxPending: maxPending, Shed: true})
	t.Logf("unbounded p99 %v; bounded p99 %v, %d of %d shed", unboundedP99, boundedP99, sheds, burst)

	if unboundedP99 < stall/2 {
		t.Fatalf("stall did not register: unbounded p99 %v against a %v stall", unboundedP99, stall)
	}
	if sheds < burst/2 {
		t.Errorf("admission never engaged: only %d of %d requests shed", sheds, burst)
	}
	// At most maxPending requests (0.8% of the burst) waited out the
	// stall; the 99th percentile must land in the fast shed/served group.
	if boundedP99 > unboundedP99/4 {
		t.Errorf("bounded p99 %v did not stay flat (unbounded %v)", boundedP99, unboundedP99)
	}
}

// TestAdmissionBackpressureUnblocksOnClose: a submitter blocked in
// admission is released by Close with ErrClosed instead of hanging.
func TestAdmissionBackpressureUnblocksOnClose(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	c := NewCoalescer(srv, Options{MaxBatch: 4, Window: time.Hour, Shards: 1, MaxPending: 1})

	r1 := c.Submit(pairs[0].Key) // holds the only token, never flushes
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.Lookup(pairs[1].Key)
		errc <- err
	}()
	// Give the goroutine time to block in admission, then close.
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked lookup err = %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked submitter not released by Close")
	}
	if res := <-r1; !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("pending result = %+v, want ErrClosed", res)
	}
}
