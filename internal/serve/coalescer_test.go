package serve

import (
	"errors"
	"testing"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// newTestServer builds a small tree and wraps it; the bucket size is
// kept tiny so batch boundaries are exercised.
func newTestServer(t testing.TB, variant core.Variant, n int) (*Server[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tree, err := core.Build(pairs, core.Options{Variant: variant, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return NewServer(tree), pairs
}

// TestLoneRequestFlushesAtDeadline: a single request must not starve
// waiting for companions — the window deadline flushes it.
func TestLoneRequestFlushesAtDeadline(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	window := 20 * time.Millisecond
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: window})
	defer c.Close()

	start := time.Now()
	v, found, err := c.Lookup(pairs[5].Key)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != pairs[5].Value {
		t.Fatalf("lone lookup = (%d, %v), want (%d, true)", v, found, pairs[5].Value)
	}
	if elapsed < window/2 {
		t.Fatalf("lone request flushed after %v, before the %v window could have fired", elapsed, window)
	}
	if c.Batches() != 1 || c.Queries() != 1 {
		t.Fatalf("batches=%d queries=%d, want 1/1", c.Batches(), c.Queries())
	}
}

// TestFullBatchFlushesImmediately: when MaxBatch requests are pending
// the batch must flush without waiting for the (deliberately enormous)
// window. Shards is pinned to 1 so the submissions deterministically
// fill one shard's batch.
func TestFullBatchFlushesImmediately(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	const maxBatch = 8
	c := NewCoalescer(srv, Options{MaxBatch: maxBatch, Window: time.Hour, Shards: 1})
	defer c.Close()

	chans := make([]<-chan Result[uint64], maxBatch)
	for i := range chans {
		chans[i] = c.Submit(pairs[i].Key)
	}
	deadline := time.After(10 * time.Second)
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !res.Found || res.Value != pairs[i].Value {
				t.Fatalf("request %d = (%d, %v), want (%d, true)", i, res.Value, res.Found, pairs[i].Value)
			}
		case <-deadline:
			t.Fatalf("request %d still pending: full batch did not flush before the window", i)
		}
	}
}

// TestCloseFailsPendingRequests: requests queued but not yet flushed
// when Close runs receive ErrClosed instead of hanging, and later
// submissions fail fast.
func TestCloseFailsPendingRequests(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: time.Hour})

	const pending = 3
	chans := make([]<-chan Result[uint64], pending)
	for i := range chans {
		chans[i] = c.Submit(pairs[i].Key)
	}
	// Give the flusher a moment to pull the requests into its batch so
	// the close-with-collected-batch path is exercised too.
	time.Sleep(5 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		c.Close()
		close(closed)
	}()
	for i, ch := range chans {
		select {
		case res := <-ch:
			if !errors.Is(res.Err, ErrClosed) {
				t.Fatalf("pending request %d: err = %v, want ErrClosed", i, res.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("pending request %d hung across Close", i)
		}
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
	if _, _, err := c.Lookup(pairs[0].Key); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close lookup err = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	c.Close()
}

// TestCoalescerCorrectnessUnderLoad hammers the coalescer from many
// blocking clients and verifies every result, plus that coalescing
// actually happened (more queries than batches).
func TestCoalescerCorrectnessUnderLoad(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: 200 * time.Microsecond})
	defer c.Close()

	const clients = 8
	perClient := 200
	if testing.Short() {
		perClient = 50
	}
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		go func(w int) {
			for i := 0; i < perClient; i++ {
				p := pairs[(w*perClient+i*31)%len(pairs)]
				v, found, err := c.Lookup(p.Key)
				if err != nil {
					errc <- err
					return
				}
				if !found || v != p.Value {
					errc <- errors.New("wrong coalesced result")
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < clients; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	total := int64(clients * perClient)
	if c.Queries() != total {
		t.Fatalf("served %d queries, want %d", c.Queries(), total)
	}
	if c.Batches() >= total {
		t.Fatalf("no coalescing: %d batches for %d queries", c.Batches(), total)
	}
}

// TestMissingKeyThroughCoalescer: absent keys come back found=false.
func TestMissingKeyThroughCoalescer(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	c := NewCoalescer(srv, Options{MaxBatch: 4, Window: time.Millisecond})
	defer c.Close()
	// Dataset keys are uniform uint64; a small odd key is (nearly
	// surely) absent — verify against the source of truth first.
	probe := uint64(3)
	if _, ok := srv.Lookup(probe); ok {
		t.Skip("improbable: probe key present in dataset")
	}
	_, found, err := c.Lookup(probe)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("absent key reported found")
	}
	_ = pairs
}
