//go:build race

package serve

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation allocates; allocation-count
// regression tests skip themselves under it.
const raceEnabled = true
