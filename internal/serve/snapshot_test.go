package serve

import (
	"sync"
	"testing"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
)

// TestSnapshotReaderSeesOldVersionToCompletion pins the published
// version as a reader would, runs a batch update that swaps in a
// successor, and verifies that (a) the pinned version still serves the
// pre-update values with a live device replica, and (b) its device
// memory is released only when the pinned reference drains.
func TestSnapshotReaderSeesOldVersionToCompletion(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	key := pairs[9].Key
	oldVal := pairs[9].Value

	tree0, sn := srv.acquire()
	if !sn.Valid() {
		t.Fatal("snapshot server returned a locked-mode pin")
	}

	if _, err := srv.Update([]cpubtree.Op[uint64]{{Key: key, Value: 4242}}, core.AsyncParallel); err != nil {
		t.Fatal(err)
	}
	if srv.Tree() == tree0 {
		t.Fatal("update did not publish a new version")
	}
	if srv.Swaps() != 1 {
		t.Fatalf("swaps = %d, want 1", srv.Swaps())
	}

	// The new version serves the update; the pinned old version still
	// serves the original value from a live (unreleased) replica.
	if v, ok := srv.Lookup(key); !ok || v != 4242 {
		t.Fatalf("new version lookup = (%d, %v), want (4242, true)", v, ok)
	}
	if v, ok := tree0.Lookup(key); !ok || v != oldVal {
		t.Fatalf("pinned version lookup = (%d, %v), want (%d, true)", v, ok, oldVal)
	}
	if err := tree0.VerifyReplica(); err != nil {
		t.Fatalf("pinned version's device replica released early: %v", err)
	}
	qs := []uint64{key, pairs[0].Key}
	values, found, _, err := tree0.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || values[0] != oldVal {
		t.Fatalf("pinned heterogeneous batch = (%d, %v), want (%d, true)", values[0], found[0], oldVal)
	}

	// Releasing the last reference frees the retired version's device
	// buffers: the shared device's occupancy drops.
	dev := tree0.Device()
	before := dev.MemUsed()
	srv.releaseRead(sn)
	after := dev.MemUsed()
	if after >= before {
		t.Fatalf("retired snapshot not released: device %d -> %d bytes", before, after)
	}
}

// TestSnapshotUpdateFailureKeepsVersion: a failed batch must not
// publish — the current version stays untouched (the atomicity the
// in-place locked path cannot offer).
func TestSnapshotUpdateFailureKeepsVersion(t *testing.T) {
	srv, _ := newTestServer(t, core.Implicit, 1<<10)
	tree0 := srv.Tree()
	// Update on the implicit variant is an error by contract.
	if _, err := srv.Update([]cpubtree.Op[uint64]{{Key: 1, Value: 1}}, core.AsyncParallel); err == nil {
		t.Fatal("implicit-variant Update unexpectedly succeeded")
	}
	if srv.Tree() != tree0 || srv.Swaps() != 0 {
		t.Fatal("failed update published a new version")
	}
}

// TestSnapshotRebuildPublishes: the implicit variant's rebuild swaps in
// a freshly built version; readers pinned across it finish on the old
// one.
func TestSnapshotRebuildPublishes(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	tree0, sn := srv.acquire()

	next := make([]keys.Pair[uint64], len(pairs))
	for i, p := range pairs {
		next[i] = keys.Pair[uint64]{Key: p.Key, Value: p.Value + 7}
	}
	if _, err := srv.Rebuild(next); err != nil {
		t.Fatal(err)
	}
	if srv.Tree() == tree0 {
		t.Fatal("rebuild did not publish a new version")
	}
	if v, ok := srv.Lookup(pairs[3].Key); !ok || v != pairs[3].Value+7 {
		t.Fatalf("rebuilt lookup = (%d, %v)", v, ok)
	}
	if v, ok := tree0.Lookup(pairs[3].Key); !ok || v != pairs[3].Value {
		t.Fatalf("pinned pre-rebuild lookup = (%d, %v)", v, ok)
	}
	srv.releaseRead(sn)
}

// TestSnapshotCloseWaitsForReaders: Server.Close with a pinned reader
// defers the device release until the reader drains.
func TestSnapshotCloseWaitsForReaders(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<10)
	tree0, sn := srv.acquire()
	dev := tree0.Device()
	before := dev.MemUsed()
	srv.Close()
	if dev.MemUsed() != before {
		t.Fatal("Close released the version while a reader was pinned")
	}
	if v, ok := tree0.Lookup(pairs[2].Key); !ok || v != pairs[2].Value {
		t.Fatalf("pinned lookup after Close = (%d, %v)", v, ok)
	}
	srv.releaseRead(sn)
	if dev.MemUsed() >= before {
		t.Fatal("version not released after the last reader drained")
	}
	srv.Close() // idempotent
}

// TestSnapshotConcurrentReadersAndWriters hammers the snapshot server
// with concurrent readers while a writer publishes swap-heavy update
// batches; each reader checks per-key generation monotonicity (the
// atomic-pointer publication order) and no reader ever blocks for the
// full duration of a write.
func TestSnapshotConcurrentReadersAndWriters(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	const readers = 4
	gens := uint64(6)
	if testing.Short() {
		gens = 3
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seen := make(map[uint64]uint64)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := pairs[(r*131+i*17)%len(pairs)]
				v, ok := srv.Lookup(p.Key)
				if !ok {
					t.Errorf("key %d disappeared", p.Key)
					return
				}
				off := v - p.Value
				if off > gens {
					t.Errorf("key %d: invalid generation offset %d", p.Key, off)
					return
				}
				if prev := seen[p.Key]; off < prev {
					t.Errorf("key %d: generation went backwards %d -> %d", p.Key, prev, off)
					return
				}
				seen[p.Key] = off
			}
		}(r)
	}

	// Swap-heavy writer: every generation is applied in many small
	// batches, each one a clone+publish.
	const chunk = 256
	for g := uint64(1); g <= gens; g++ {
		for start := 0; start < len(pairs); start += chunk {
			end := min(start+chunk, len(pairs))
			ops := make([]cpubtree.Op[uint64], 0, chunk)
			for _, p := range pairs[start:end] {
				ops = append(ops, cpubtree.Op[uint64]{Key: p.Key, Value: p.Value + g})
			}
			if _, err := srv.Update(ops, core.AsyncParallel); err != nil {
				t.Fatalf("update gen %d: %v", g, err)
			}
		}
	}
	close(done)
	wg.Wait()

	if srv.Swaps() == 0 {
		t.Fatal("no snapshot publications recorded")
	}
	if err := srv.Tree().VerifyReplica(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs[:64] {
		if v, ok := srv.Lookup(p.Key); !ok || v != p.Value+gens {
			t.Fatalf("final key %d = (%d, %v), want %d", p.Key, v, ok, p.Value+gens)
		}
	}
	srv.Close()
}
