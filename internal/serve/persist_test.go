package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/wal"
	"hbtree/internal/workload"
)

// crash abandons a Durable without the graceful-shutdown snapshot:
// the background snapshotter stops and the logs close (flushing what a
// real crash's page cache would usually have persisted anyway — every
// acked append was already fsynced), but NO manifest is written, so the
// next open must recover from the last committed snapshot plus the WAL
// tail. The wrapped server keeps running until closeBackend.
func (d *Durable[K]) crash() {
	if d.stop != nil {
		close(d.stop)
		d.wg.Wait()
	}
	for _, l := range d.logs {
		l.Close()
	}
}

// closeBackend closes whichever server the Durable wraps.
func (d *Durable[K]) closeBackend() {
	if d.sharded != nil {
		d.sharded.Close()
	} else if d.single != nil {
		d.single.Close()
	}
}

// scanAll reads every stored pair through the wrapped server.
func (d *Durable[K]) scanAll(limit int) []keys.Pair[K] {
	if d.sharded != nil {
		return d.sharded.ScanConsistent(0, limit)
	}
	return d.single.Scan(0, limit)
}

const durN = 2048

func durSeed() ([]keys.Pair[uint64], error) {
	return workload.Dataset[uint64](workload.Uniform, durN, 42), nil
}

func openDur(t *testing.T, dir string, shards int) *Durable[uint64] {
	t.Helper()
	d, err := OpenDurable(DurableOptions{Dir: dir}, core.Options{Variant: core.Regular, BucketSize: 64}, shards, durSeed)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return d
}

// applyOracle drives n update batches through d, maintaining the oracle
// map alongside; roughly one op in four is a delete.
func applyOracle(t *testing.T, d *Durable[uint64], oracle map[uint64]uint64, n int, seed uint64) {
	t.Helper()
	r := workload.NewRNG(seed)
	for i := 0; i < n; i++ {
		var ops []cpubtree.Op[uint64]
		for j := 0; j < 1+r.Intn(8); j++ {
			k := uint64(r.Intn(4 * durN))
			if r.Intn(4) == 0 {
				ops = append(ops, cpubtree.Op[uint64]{Key: k, Delete: true})
				delete(oracle, k)
			} else {
				v := r.Uint64()
				ops = append(ops, cpubtree.Op[uint64]{Key: k, Value: v})
				oracle[k] = v
			}
		}
		if _, err := d.Update(ops, core.Synchronized); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
}

// seedOracle returns the oracle for the fresh-boot seed data.
func seedOracle(t *testing.T) map[uint64]uint64 {
	t.Helper()
	pairs, _ := durSeed()
	oracle := make(map[uint64]uint64, len(pairs))
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	return oracle
}

// verifyOracle asserts the recovered server equals the oracle
// key-for-key.
func verifyOracle(t *testing.T, d *Durable[uint64], oracle map[uint64]uint64) {
	t.Helper()
	got := d.scanAll(len(oracle) + durN)
	if len(got) != len(oracle) {
		t.Fatalf("recovered %d pairs, oracle holds %d", len(got), len(oracle))
	}
	for _, p := range got {
		if v, ok := oracle[p.Key]; !ok || v != p.Value {
			t.Fatalf("recovered pair (%d,%d); oracle says (%d,%v)", p.Key, p.Value, v, ok)
		}
	}
}

func TestDurableFreshBootCommitsInitialSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir, 1)
	defer d.closeBackend()
	defer d.Close()
	if d.Recovery().Recovered {
		t.Fatal("fresh boot claims recovery")
	}
	m, ok, err := wal.ReadCurrentManifest(dir)
	if err != nil || !ok {
		t.Fatalf("no committed manifest after fresh boot: ok %v err %v", ok, err)
	}
	if m.Pairs != durN || m.Partitions != 1 {
		t.Fatalf("initial manifest: %d pairs, %d partitions", m.Pairs, m.Partitions)
	}
	pm := d.Metrics()
	if pm.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", pm.Snapshots)
	}
}

func TestDurableGracefulRestartNeedsNoReplay(t *testing.T) {
	dir := t.TempDir()
	oracle := seedOracle(t)
	d := openDur(t, dir, 1)
	applyOracle(t, d, oracle, 100, 7)
	if err := d.Close(); err != nil { // commits a final snapshot
		t.Fatalf("Close: %v", err)
	}
	d.closeBackend()

	d = openDur(t, dir, 1)
	defer d.closeBackend()
	defer d.Close()
	rs := d.Recovery()
	if !rs.Recovered {
		t.Fatal("reopen did not recover")
	}
	if rs.ReplayedRecords != 0 {
		t.Fatalf("graceful restart replayed %d records, want 0", rs.ReplayedRecords)
	}
	if rs.BulkLoadedPairs != len(oracle) {
		t.Fatalf("bulk-loaded %d pairs, want %d", rs.BulkLoadedPairs, len(oracle))
	}
	verifyOracle(t, d, oracle)
}

func TestDurableCrashReplaysTail(t *testing.T) {
	dir := t.TempDir()
	oracle := seedOracle(t)
	d := openDur(t, dir, 1)
	applyOracle(t, d, oracle, 200, 11)
	d.crash() // no final snapshot: the tail lives only in the WAL
	d.closeBackend()

	d = openDur(t, dir, 1)
	defer d.closeBackend()
	defer d.Close()
	rs := d.Recovery()
	if !rs.Recovered || rs.ReplayedRecords != 200 || rs.ReplayedOps == 0 {
		t.Fatalf("recovery stats: %+v (want 200 replayed records)", rs)
	}
	if rs.BulkLoadedPairs != durN {
		t.Fatalf("bulk-loaded %d pairs, want the %d seeded", rs.BulkLoadedPairs, durN)
	}
	verifyOracle(t, d, oracle)

	// Updates keep flowing after recovery and survive the next crash.
	applyOracle(t, d, oracle, 50, 13)
	d.crash()
	d.closeBackend()
	d = openDur(t, dir, 1)
	defer d.closeBackend()
	defer d.Close()
	verifyOracle(t, d, oracle)
}

func TestDurableShardedCrashRestoresLayoutAndData(t *testing.T) {
	dir := t.TempDir()
	oracle := seedOracle(t)
	d := openDur(t, dir, 4)
	if d.Sharded() == nil || d.Sharded().Shards() != 4 {
		t.Fatal("sharded durable did not build 4 shards")
	}
	applyOracle(t, d, oracle, 150, 17)
	d.crash()
	d.closeBackend()

	d = openDur(t, dir, 4)
	defer d.closeBackend()
	defer d.Close()
	rs := d.Recovery()
	if !rs.Recovered || rs.Shards != 4 {
		t.Fatalf("recovery stats: %+v", rs)
	}
	if rs.ReplayedRecords == 0 {
		t.Fatal("sharded crash recovery replayed nothing")
	}
	if got := d.Sharded().Shards(); got != 4 {
		t.Fatalf("recovered %d shards, want 4", got)
	}
	verifyOracle(t, d, oracle)
}

func TestDurableSnapshotCoversRebalancedLayout(t *testing.T) {
	dir := t.TempDir()
	oracle := seedOracle(t)
	d := openDur(t, dir, 3)
	applyOracle(t, d, oracle, 60, 19)
	if err := d.Sharded().SplitShard(1); err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	if d.Metrics().Barriers == 0 {
		t.Fatal("split wrote no barrier records")
	}
	applyOracle(t, d, oracle, 60, 23)
	if _, err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	d.crash()
	d.closeBackend()

	d = openDur(t, dir, 3)
	defer d.closeBackend()
	defer d.Close()
	rs := d.Recovery()
	if rs.Shards != 4 {
		t.Fatalf("snapshot after split restored %d shards, want 4", rs.Shards)
	}
	if rs.TableGen != 2 {
		t.Fatalf("restored table generation %d, want 2", rs.TableGen)
	}
	if rs.ReplayedRecords != 0 {
		t.Fatalf("post-snapshot crash replayed %d records", rs.ReplayedRecords)
	}
	if got := len(d.Sharded().Bounds()); got != 3 {
		t.Fatalf("recovered %d bounds, want 3", got)
	}
	verifyOracle(t, d, oracle)
}

func TestDurableBarrierCrossesRecovery(t *testing.T) {
	dir := t.TempDir()
	oracle := seedOracle(t)
	d := openDur(t, dir, 2)
	applyOracle(t, d, oracle, 40, 29)
	if err := d.Sharded().SplitShard(0); err != nil {
		t.Fatalf("SplitShard: %v", err)
	}
	applyOracle(t, d, oracle, 40, 31)
	d.crash() // manifest still has the pre-split layout
	d.closeBackend()

	d = openDur(t, dir, 2)
	defer d.closeBackend()
	defer d.Close()
	rs := d.Recovery()
	// The barrier was logged to every partition; replay crosses each.
	if rs.Barriers != 2 {
		t.Fatalf("recovery crossed %d barriers, want 2 (one per partition)", rs.Barriers)
	}
	// Layout reverts to the manifest's (the split itself was not yet
	// snapshotted — it is a serving-plane optimisation, not data).
	if rs.Shards != 2 {
		t.Fatalf("recovered %d shards, want the manifest's 2", rs.Shards)
	}
	verifyOracle(t, d, oracle)
}

func TestDurableWALTruncationAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	oracle := seedOracle(t)
	d := openDur(t, dir, 1)
	defer d.closeBackend()
	defer d.Close()
	applyOracle(t, d, oracle, 300, 37)
	if _, err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	applyOracle(t, d, oracle, 10, 41)
	if _, err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	pm := d.Metrics()
	if pm.Truncated == 0 {
		t.Fatalf("snapshots reclaimed no WAL segments: %+v", pm)
	}
	if pm.Segments > 2 {
		t.Fatalf("%d live segments after back-to-back snapshots", pm.Segments)
	}
}

// TestDurableCrashMatrix walks the crash points of the commit protocol
// (ISSUE satellite): for each, the acked state survives and un-acked
// artifacts are ignored or surface only as the documented "may appear"
// case.
func TestDurableCrashMatrix(t *testing.T) {
	type matrixCase struct {
		name string
		// sabotage mutates the on-disk state between crash and reopen,
		// returning an adjustment to the oracle and any extra assertion.
		sabotage func(t *testing.T, dir string, oracle map[uint64]uint64)
		check    func(t *testing.T, rs RecoveryStats)
	}
	cases := []matrixCase{
		{
			// Crash BEFORE the WAL append: the op is nowhere — not
			// logged, not applied, never acked. Recovery must not invent
			// it. (No sabotage: the victim op is simply never submitted.)
			name:     "before-wal-append",
			sabotage: func(t *testing.T, dir string, oracle map[uint64]uint64) {},
			check: func(t *testing.T, rs RecoveryStats) {
				if !rs.Recovered {
					t.Fatal("no recovery")
				}
			},
		},
		{
			// Crash AFTER the append but before apply/ack: the record is
			// durable, so recovery replays it — the documented "un-acked
			// write may appear" half of the contract.
			name: "after-append-before-ack",
			sabotage: func(t *testing.T, dir string, oracle map[uint64]uint64) {
				l, err := wal.Open(filepath.Join(dir, "wal"), 0, 64, wal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ops := []cpubtree.Op[uint64]{{Key: 99991, Value: 777}}
				if _, err := l.Append(wal.AppendOps(nil, ops, byte(core.Synchronized))); err != nil {
					t.Fatal(err)
				}
				l.Close()
				oracle[99991] = 777 // it WILL appear after replay
			},
			check: func(t *testing.T, rs RecoveryStats) {
				if rs.ReplayedRecords == 0 {
					t.Fatal("appended record not replayed")
				}
			},
		},
		{
			// Crash MID-SNAPSHOT: images and manifest of a newer epoch
			// exist but CURRENT was never updated (or the manifest is
			// half-written garbage). Recovery must ignore the wreck and
			// load the previous committed snapshot.
			name: "mid-snapshot",
			sabotage: func(t *testing.T, dir string, oracle map[uint64]uint64) {
				os.MkdirAll(filepath.Join(dir, wal.SnapDir(1<<40)), 0o755)
				os.WriteFile(filepath.Join(dir, wal.SnapDir(1<<40), "shard-000.tree"), []byte("half a tree"), 0o644)
				os.WriteFile(filepath.Join(dir, wal.ManifestPath(1<<40)), []byte("HBMF1 torn"), 0o644)
			},
			check: func(t *testing.T, rs RecoveryStats) {
				if rs.SnapshotEpoch >= 1<<40 {
					t.Fatalf("recovered from the half-written snapshot (epoch %d)", rs.SnapshotEpoch)
				}
			},
		},
		{
			// Crash MID-LOG-TRUNCATION: a sealed segment the snapshot
			// already covers survives on disk. Its records are at or
			// below the floor, so replay must skip them (idempotence) —
			// the live data must not double-apply or reorder.
			name: "mid-log-truncation",
			sabotage: func(t *testing.T, dir string, oracle map[uint64]uint64) {
				// Fabricate a below-floor segment: records 1..N of
				// partition 0 were covered by the initial snapshot in
				// this scenario's timeline; re-creating a sealed segment
				// holding an OLD conflicting write for a key the oracle
				// knows must be ignored by the floor.
				pd := filepath.Join(dir, "wal", "p000")
				entries, err := os.ReadDir(pd)
				if err != nil || len(entries) == 0 {
					t.Fatalf("no wal segments: %v", err)
				}
				// Duplicate the live segment under its own name in a tmp
				// then restore after... simpler: copy the existing segment
				// to a stale name BELOW its first seq is impossible without
				// breaking density — so instead verify idempotence by
				// replay-from-zero: force the floor down by rewriting the
				// manifest with floor 0. Every already-applied record
				// replays again over the bulk-loaded image.
				m, ok, err := wal.ReadCurrentManifest(dir)
				if err != nil || !ok {
					t.Fatalf("manifest: %v", err)
				}
				for i := range m.Floors {
					m.Floors[i] = 0
				}
				if err := wal.WriteManifest(dir, m); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, rs RecoveryStats) {
				if rs.ReplayedRecords == 0 {
					t.Fatal("floor-zero recovery replayed nothing")
				}
			},
		},
		{
			// Crash MID-REBALANCE-BARRIER: the process dies while the
			// barrier record is being appended — a torn record at the
			// tail of one partition. Recovery truncates it and reports
			// the torn tail; the layout change it marked was never
			// snapshotted, so nothing else changes.
			name: "mid-rebalance-barrier",
			sabotage: func(t *testing.T, dir string, oracle map[uint64]uint64) {
				pd := filepath.Join(dir, "wal", "p000")
				entries, err := os.ReadDir(pd)
				if err != nil || len(entries) == 0 {
					t.Fatalf("no wal segments: %v", err)
				}
				seg := filepath.Join(pd, entries[len(entries)-1].Name())
				f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				// A barrier frame cut mid-payload.
				frame := []byte{13, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, wal.RecBarrier, 1, 2}
				f.Write(frame)
				f.Close()
			},
			check: func(t *testing.T, rs RecoveryStats) {
				if rs.TornTails != 1 {
					t.Fatalf("torn tails = %d, want 1", rs.TornTails)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			oracle := seedOracle(t)
			d := openDur(t, dir, 1)
			applyOracle(t, d, oracle, 80, 43)
			d.crash()
			d.closeBackend()

			tc.sabotage(t, dir, oracle)

			d = openDur(t, dir, 1)
			defer d.closeBackend()
			defer d.Close()
			tc.check(t, d.Recovery())
			verifyOracle(t, d, oracle)
		})
	}
}

func TestDurableRejectsMismatchedKeyWidth(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir, 1)
	d.Close()
	d.closeBackend()
	_, err := OpenDurable(DurableOptions{Dir: dir}, core.Options{Variant: core.Regular}, 1,
		func() ([]keys.Pair[uint32], error) { return workload.Dataset[uint32](workload.Uniform, 64, 1), nil })
	if err == nil {
		t.Fatal("32-bit open over a 64-bit data dir succeeded")
	}
}

func TestDurableSnapshotSkipsUnchangedEpoch(t *testing.T) {
	dir := t.TempDir()
	d := openDur(t, dir, 1)
	defer d.closeBackend()
	defer d.Close()
	ep1, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := d.Snapshot()
	if err != nil || ep2 != ep1 {
		t.Fatalf("idle snapshot: epoch %d err %v", ep2, err)
	}
	if d.Metrics().SnapshotSkips == 0 {
		t.Fatal("idle snapshot pass not skipped")
	}
}

var errSeedBoom = errors.New("seed failed")

func TestDurableSeedErrorPropagates(t *testing.T) {
	_, err := OpenDurable(DurableOptions{Dir: t.TempDir()}, core.Options{Variant: core.Regular}, 1,
		func() ([]keys.Pair[uint64], error) { return nil, errSeedBoom })
	if !errors.Is(err, errSeedBoom) {
		t.Fatalf("err %v, want seed error", err)
	}
}
