package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hbtree/internal/core"
)

// Tests for the sorted shared-descent serving path: coalescer duplicate
// folding, the sorted flush oracle through the sharded backend, and the
// allocation gates at a large coalesce window.

// TestCoalescerFoldsDuplicateKeys: identical keys coalesced into one
// window occupy a single backend slot and the one result fans out to
// every waiter — including the found=false of a missing key.
func TestCoalescerFoldsDuplicateKeys(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	const maxBatch = 8
	c := NewCoalescer(srv, Options{MaxBatch: maxBatch, Window: time.Hour, Shards: 1})
	defer c.Close()

	missing := uint64(3)
	if _, ok := srv.Lookup(missing); ok {
		t.Skip("improbable: probe key present in dataset")
	}
	// 8 submissions, 4 distinct keys: p0 three times, p1 twice, missing
	// twice, p2 once. The full batch flushes immediately.
	keys := []uint64{pairs[0].Key, missing, pairs[1].Key, pairs[0].Key,
		missing, pairs[2].Key, pairs[1].Key, pairs[0].Key}
	want := map[uint64]uint64{pairs[0].Key: pairs[0].Value, pairs[1].Key: pairs[1].Value, pairs[2].Key: pairs[2].Value}

	chans := make([]<-chan Result[uint64], maxBatch)
	for i, k := range keys {
		chans[i] = c.Submit(k)
	}
	deadline := time.After(10 * time.Second)
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			wv, present := want[keys[i]]
			if res.Found != present || (present && res.Value != wv) {
				t.Fatalf("waiter %d (key %d) = (%d, %v), want (%d, %v)",
					i, keys[i], res.Value, res.Found, wv, present)
			}
		case <-deadline:
			t.Fatalf("waiter %d still pending", i)
		}
	}
	if got := c.Folded(); got != maxBatch-4 {
		t.Fatalf("Folded() = %d, want %d (8 submissions, 4 distinct keys)", got, maxBatch-4)
	}
	// The backend saw the deduplicated batch: the server's batched-query
	// counter counts unique slots, the coalescer's counts submissions.
	if srv.Metrics().BatchedQueries != 4 || c.Queries() != maxBatch {
		t.Fatalf("backend saw %d queries / coalescer %d, want 4 / %d",
			srv.Metrics().BatchedQueries, c.Queries(), maxBatch)
	}
}

// TestCoalescerUnsortedOptionDisablesFolding: the A/B baseline keeps
// the original submission order and never folds.
func TestCoalescerUnsortedOptionDisablesFolding(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	const maxBatch = 8
	c := NewCoalescer(srv, Options{MaxBatch: maxBatch, Window: time.Hour, Shards: 1, Unsorted: true})
	defer c.Close()

	chans := make([]<-chan Result[uint64], maxBatch)
	for i := range chans {
		chans[i] = c.Submit(pairs[i%3].Key) // plenty of duplicates
	}
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.Found || res.Value != pairs[i%3].Value {
			t.Fatalf("waiter %d = (%d, %v), want (%d, true)", i, res.Value, res.Found, pairs[i%3].Value)
		}
	}
	if c.Folded() != 0 {
		t.Fatalf("unsorted coalescer folded %d keys, want 0", c.Folded())
	}
	if srv.Metrics().BatchedQueries != maxBatch {
		t.Fatalf("unsorted backend saw %d queries, want %d", srv.Metrics().BatchedQueries, maxBatch)
	}
}

// TestSortedShardedBatchOracle is the -race oracle for the sorted flush
// through the sharded backend: concurrent goroutines push shuffled,
// duplicate- and miss-laden batches through both the sorted and the
// plain path of the same shardBackend and verify every slot against the
// dataset. The sorted path must agree with the oracle in the original
// (pre-sort) slot order regardless of input order.
func TestSortedShardedBatchOracle(t *testing.T) {
	s, pairs := newShardedServer(t, core.Regular, 1<<12, 4)
	be := shardBackend[uint64]{s: s}
	oracle := make(map[uint64]uint64, len(pairs))
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}

	workers, iters := 6, 30
	if testing.Short() {
		workers, iters = 3, 10
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			const n = 192
			qs := make([]uint64, n)
			values := make([]uint64, n)
			found := make([]bool, n)
			for it := 0; it < iters; it++ {
				for i := range qs {
					switch rng.Intn(4) {
					case 0: // miss (odd keys are absent from the even dataset space)
						qs[i] = rng.Uint64() | 1
					case 1: // duplicate of an earlier slot
						if i > 0 {
							qs[i] = qs[rng.Intn(i)]
							break
						}
						fallthrough
					default:
						qs[i] = pairs[rng.Intn(len(pairs))].Key
					}
				}
				var stats core.SearchStats
				var err error
				if it%2 == 0 {
					stats, err = be.LookupBatchSortedInto(qs, values, found)
					if err == nil && !stats.Sorted {
						t.Errorf("worker %d iter %d: sorted stats not flagged", w, it)
						return
					}
				} else {
					_, err = be.LookupBatchInto(qs, values, found)
				}
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, it, err)
					return
				}
				for i, k := range qs {
					wv, present := oracle[k]
					if found[i] != present || (present && values[i] != wv) {
						t.Errorf("worker %d iter %d slot %d: key %d = (%d, %v), oracle (%d, %v)",
							w, it, i, k, values[i], found[i], wv, present)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	m := s.Metrics()
	if m.NodeProbes <= 0 || m.ProbesSaved <= 0 {
		t.Fatalf("sorted sharded runs recorded no probe accounting: %+v", m)
	}
}

// TestSortedBatchWindow512AllocFree pins zero allocations per call on
// the sorted shared-descent batch at a large coalesce window: 512
// unsorted, duplicate-laden queries span 8 buckets of 64, engaging the
// per-bucket sort scratch, the dedup compaction and the double-buffered
// device worker — all of which must come from the pooled scratch after
// warm-up.
func TestSortedBatchWindow512AllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	for _, variant := range []core.Variant{core.Implicit, core.Regular} {
		t.Run(variant.String(), func(t *testing.T) {
			srv, pairs := newTestServer(t, variant, 1<<10)
			const n = 512
			queries := make([]uint64, n)
			values := make([]uint64, n)
			found := make([]bool, n)
			rng := rand.New(rand.NewSource(7))
			for i := range queries {
				if i > 0 && rng.Intn(8) == 0 {
					queries[i] = queries[i-1] // exact duplicate
				} else {
					queries[i] = pairs[rng.Intn(len(pairs))].Key
				}
			}
			// Warm the scratch pool (grow-once: the sorted stage sizes
			// itself to the bucket on first acquisition).
			if _, err := srv.LookupBatchSortedInto(queries, values, found); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := srv.LookupBatchSortedInto(queries, values, found); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("LookupBatchSortedInto allocates %.1f times per call at window 512, want 0", allocs)
			}
		})
	}
}

// TestCoalescedSortedWindow512AllocFree pins zero allocations per batch
// on the full coalesced sorted route at MaxBatch 512: pooled reply
// cells, the pending window's sort/perm/uref scratch, the dedup fold
// and the fan-out must all reuse pooled memory.
func TestCoalescedSortedWindow512AllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	const maxBatch = 512
	co := NewCoalescer(srv, Options{MaxBatch: maxBatch, Window: time.Hour, Shards: 1})
	defer co.Close()

	keys := make([]uint64, maxBatch)
	rng := rand.New(rand.NewSource(11))
	for i := range keys {
		if i > 0 && rng.Intn(8) == 0 {
			keys[i] = keys[i-1]
		} else {
			keys[i] = pairs[rng.Intn(len(pairs))].Key
		}
	}
	// Pipeline the window the way concurrent Lookup callers would:
	// pooled reply cells and the internal submit, so the measurement
	// covers the flush pipeline rather than Submit's by-design channel
	// allocation (its ownership transfers to the caller).
	replies := make([]chan Result[uint64], maxBatch)
	run := func() {
		for i, k := range keys {
			reply := co.replyPool.Get().(chan Result[uint64])
			replies[i] = reply
			if err := co.submit(k, reply); err != nil {
				t.Fatal(err)
			}
		}
		for i, ch := range replies {
			res := <-ch
			co.replyPool.Put(ch)
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !res.Found {
				t.Fatalf("waiter %d missed", i)
			}
		}
	}
	// Warm the reply, batch and scratch pools.
	run()
	run()
	allocs := testing.AllocsPerRun(20, run)
	// Budget: zero per batch; testing.AllocsPerRun rounds per run, and a
	// 512-slot batch gives plenty of headroom to detect any per-key leak.
	if allocs != 0 {
		t.Fatalf("coalesced sorted batch allocates %.1f times per 512-key window, want 0", allocs)
	}
	if co.Folded() == 0 {
		t.Fatal("duplicate-laden windows folded nothing")
	}
}
