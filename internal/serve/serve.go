// Package serve is the concurrency layer over the HB+-tree: it wraps a
// core.Tree behind an explicit reader/writer contract and coalesces
// point lookups arriving from many goroutines into the bucket-sized
// batches the heterogeneous search path is built for.
//
// The paper's throughput argument rests on batched lookups (Section
// 5.4): the four-step CPU-GPU search amortises the PCIe transfer and
// kernel-launch overheads over a bucket of M queries. A serving
// deployment, however, receives point requests from many concurrent
// connections, and core.Tree — like the paper's prototype — is written
// for one caller at a time when it mutates state. Server provides the
// locking contract: read operations (point, range and batch lookups,
// scans, stats) share the tree; batch updates and rebuilds exclude
// readers. Coalescer turns concurrent point lookups into LookupBatch
// calls under a size-or-deadline window, so the serving layer recovers
// the paper's batched throughput from a point-request workload.
//
// Virtual-time accounting follows requests through the layer: point
// lookups served individually are charged the modelled serial descent
// (core.Tree.PointLookupCost), while coalesced batches are charged the
// simulated makespan of their heterogeneous execution (SimTime), which
// is what makes the two serving disciplines comparable on the paper's
// calibrated clock.
package serve

import (
	"sync"
	"sync/atomic"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// Server wraps a core.Tree with a reader/writer contract: the read
// operations share the tree and may run concurrently; Update and
// Rebuild take the writer side and exclude all readers for the duration
// of the batch. The zero value is not usable; construct with NewServer.
type Server[K keys.Key] struct {
	mu   sync.RWMutex
	tree *core.Tree[K]

	pointCost vclock.Duration // modelled cost of one per-request lookup

	// Serving metrics (atomic: updated under the read lock).
	vtimeNs atomic.Int64 // accumulated virtual serving time, ns
	lookups atomic.Int64 // point lookups served individually
	batched atomic.Int64 // queries served through LookupBatch
	batches atomic.Int64 // LookupBatch calls
	updates atomic.Int64 // update/rebuild operations applied
}

// NewServer wraps t. Load-balance parameters are resolved eagerly when
// the balanced mode is enabled, so the first concurrent lookups never
// contend on discovery.
func NewServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	if t.Options().LoadBalance {
		if _, ok := t.Balance(); !ok {
			t.Discover()
		}
	}
	return &Server[K]{tree: t, pointCost: t.PointLookupCost()}
}

// Metrics is a snapshot of the serving counters.
type Metrics struct {
	Lookups        int64 // point lookups served individually
	BatchedQueries int64 // queries served through LookupBatch
	Batches        int64 // LookupBatch calls
	Updates        int64 // update/rebuild operations applied

	// VirtualTime is the accumulated virtual serving time: per-request
	// lookups charge the modelled serial descent, batches charge their
	// simulated makespan.
	VirtualTime vclock.Duration
}

// Metrics returns the current counter snapshot.
func (s *Server[K]) Metrics() Metrics {
	return Metrics{
		Lookups:        s.lookups.Load(),
		BatchedQueries: s.batched.Load(),
		Batches:        s.batches.Load(),
		Updates:        s.updates.Load(),
		VirtualTime:    vclock.Duration(s.vtimeNs.Load()),
	}
}

// ResetMetrics zeroes the serving counters (benchmark A/B phases).
func (s *Server[K]) ResetMetrics() {
	s.vtimeNs.Store(0)
	s.lookups.Store(0)
	s.batched.Store(0)
	s.batches.Store(0)
	s.updates.Store(0)
}

// VirtualTime returns the accumulated virtual serving time.
func (s *Server[K]) VirtualTime() vclock.Duration {
	return vclock.Duration(s.vtimeNs.Load())
}

func (s *Server[K]) addVirtual(d vclock.Duration) {
	if d > 0 {
		s.vtimeNs.Add(int64(d))
	}
}

// PointLookupCost returns the modelled virtual cost charged per
// individually served lookup.
func (s *Server[K]) PointLookupCost() vclock.Duration { return s.pointCost }

// Lookup resolves one query on the CPU path under the read lock. Each
// call is charged the full serial descent on the virtual clock — the
// per-request serving cost a Coalescer amortises away.
func (s *Server[K]) Lookup(q K) (K, bool) {
	s.mu.RLock()
	v, ok := s.tree.Lookup(q)
	s.mu.RUnlock()
	s.lookups.Add(1)
	s.addVirtual(s.pointCost)
	return v, ok
}

// LookupBatch runs the heterogeneous batch search under the read lock;
// concurrent batches share the device and keep isolated stats. The
// batch's simulated makespan is charged to the virtual clock.
func (s *Server[K]) LookupBatch(queries []K) ([]K, []bool, core.SearchStats, error) {
	s.mu.RLock()
	values, found, stats, err := s.tree.LookupBatch(queries)
	s.mu.RUnlock()
	if err == nil {
		s.batched.Add(int64(len(queries)))
		s.batches.Add(1)
		s.addVirtual(stats.SimTime)
	}
	return values, found, stats, err
}

// RangeQuery returns up to count pairs with key >= start under the read
// lock.
func (s *Server[K]) RangeQuery(start K, count int) []keys.Pair[K] {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.RangeQuery(start, count, nil)
}

// RangeQueryBatch runs the hybrid batched range search under the read
// lock, charging its simulated makespan.
func (s *Server[K]) RangeQueryBatch(starts []K, count int) ([][]keys.Pair[K], core.RangeStats, error) {
	s.mu.RLock()
	out, stats, err := s.tree.RangeQueryBatch(starts, count)
	s.mu.RUnlock()
	if err == nil {
		s.addVirtual(stats.SimTime)
	}
	return out, stats, err
}

// Scan collects up to count pairs starting at the first key >= start by
// walking a cursor under the read lock. Cursors must not outlive the
// lock, so the walk is materialised before returning.
func (s *Server[K]) Scan(start K, count int) []keys.Pair[K] {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]keys.Pair[K], 0, count)
	cur := s.tree.Seek(start)
	for len(out) < count {
		p, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// Update applies a batch of updates to the regular variant under the
// writer lock, excluding all readers until the device replica is
// synchronised again.
func (s *Server[K]) Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	s.mu.Lock()
	stats, err := s.tree.Update(ops, method)
	s.mu.Unlock()
	if err == nil {
		s.updates.Add(int64(len(ops)))
		s.addVirtual(stats.Total())
	}
	return stats, err
}

// Rebuild replaces the implicit variant's contents under the writer
// lock.
func (s *Server[K]) Rebuild(pairs []keys.Pair[K]) (core.UpdateStats, error) {
	s.mu.Lock()
	stats, err := s.tree.Rebuild(pairs)
	s.mu.Unlock()
	if err == nil {
		s.updates.Add(int64(len(pairs)))
		s.addVirtual(stats.Total())
	}
	return stats, err
}

// Stats reports the tree geometry under the read lock.
func (s *Server[K]) Stats() cpubtree.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Stats()
}

// Describe returns the tree's human-readable report under the read
// lock.
func (s *Server[K]) Describe() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Describe()
}

// NumPairs returns the stored pair count under the read lock.
func (s *Server[K]) NumPairs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.NumPairs()
}

// DeviceCounters snapshots the simulated GPU's hardware counters.
func (s *Server[K]) DeviceCounters() gpusim.Counters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Device().Counters()
}

// Options returns the wrapped tree's configuration.
func (s *Server[K]) Options() core.Options {
	return s.tree.Options()
}

// Tree exposes the wrapped tree. Callers bypass the reader/writer
// contract when touching it directly; do so only while nothing else
// uses the server.
func (s *Server[K]) Tree() *core.Tree[K] { return s.tree }

// Close releases the tree's device buffers under the writer lock.
func (s *Server[K]) Close() {
	s.mu.Lock()
	s.tree.Close()
	s.mu.Unlock()
}
