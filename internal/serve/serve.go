// Package serve is the concurrency layer over the HB+-tree: it wraps a
// core.Tree behind a reader/writer contract and coalesces point lookups
// arriving from many goroutines into the bucket-sized batches the
// heterogeneous search path is built for.
//
// The paper's throughput argument rests on batched lookups (Section
// 5.4): the four-step CPU-GPU search amortises the PCIe transfer and
// kernel-launch overheads over a bucket of M queries. A serving
// deployment, however, receives point requests from many concurrent
// connections, and core.Tree — like the paper's prototype — is written
// for one caller at a time when it mutates state. Server provides the
// contract; Coalescer turns concurrent point lookups into LookupBatch
// calls under a size-or-deadline window, so the serving layer recovers
// the paper's batched throughput from a point-request workload.
//
// # Snapshot reads and the epoch registry
//
// The default Server publishes tree versions through an epoch.Registry
// — the generation-stamped snapshot registry shared with ShardedServer.
// Read operations pin the registry's current state, run against it
// without blocking, and unpin; batch updates and rebuilds construct a
// successor tree aside — a clone patched with the batch, or a fresh
// build — and publish it as a new epoch. Readers that pinned the old
// epoch finish on it undisturbed; its device-resident I-segment replica
// is released when the last pin drains. This mirrors the paper's
// asynchronous update mode (Section 5.6) at the serving layer: the
// index remains searchable for the full duration of a batch update, at
// the cost of the clone/rebuild work and a transiently doubled
// I-segment footprint on the device.
//
// A standalone Server owns a one-slot registry; shard members of a
// ShardedServer share one registry whose vector holds every shard's
// tree and whose metadata carries the split-key table — which is what
// gives the sharded layer atomic cross-shard cuts and online
// rebalancing for free (see sharded.go and DESIGN §6). NewLockedServer
// retains the PR-1 discipline — one sync.RWMutex, writers excluding all
// readers — as the comparison baseline and for memory-constrained
// deployments.
//
// Virtual-time accounting follows requests through the layer: point
// lookups served individually are charged the modelled serial descent
// (core.Tree.PointLookupCost), while coalesced batches are charged the
// simulated makespan of their heterogeneous execution (SimTime), which
// is what makes the two serving disciplines comparable on the paper's
// calibrated clock.
package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"hbtree/internal/breaker"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/epoch"
	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// Server wraps a core.Tree with a reader/writer contract. In the
// default snapshot mode, read operations run against a pinned epoch of
// the snapshot registry and never block on writers; Update and Rebuild
// build a successor version aside and publish it as a new epoch. In
// locked mode (NewLockedServer), a sync.RWMutex is used instead and
// writers exclude all readers. The zero value is not usable; construct
// with NewServer or NewLockedServer.
type Server[K keys.Key] struct {
	locked bool

	// Locked mode: the PR-1 reader/writer lock over one tree.
	mu   sync.RWMutex
	tree *core.Tree[K]

	// Snapshot mode: the epoch registry holding the published versions
	// and this server's slot in its vector. A standalone server owns a
	// one-slot registry (ownReg); a shard member shares the
	// ShardedServer's registry, and its slot index is restamped when a
	// rebalance reorders the vector. The writer "mutex" is a capacity-1
	// channel so UpdateCtx/RebuildCtx can abandon the wait when the
	// caller's deadline expires.
	reg    *epoch.Registry[*core.Tree[K], shardMeta[K]]
	slot   atomic.Int32
	ownReg bool
	wsem   chan struct{}

	opt       core.Options
	pointCost vclock.Duration // modelled cost of one per-request lookup

	// In-place delta updates (DESIGN §10): batches whose footprint fits
	// the gapped leaves publish a shared-pool fork instead of a deep
	// clone. deltaOff disables the fast path (the -no-delta-leaves A/B
	// baseline); plan is writer-owned planning scratch (guarded by wsem)
	// so steady-state classification allocates nothing.
	deltaOff bool
	plan     cpubtree.DeltaPlan[K]

	// Resilience: the circuit breaker over GPU-sim faults and the
	// bounded-retry policy. The breaker lives here, not on the tree —
	// snapshot swaps replace trees but error history must survive them.
	brk   *breaker.Breaker
	retry RetryOptions

	// repairing single-flights the background replica repair (see
	// repair.go).
	repairing atomic.Bool

	// Serving metrics (atomic: updated outside the locks).
	vtimeNs     atomic.Int64 // accumulated virtual serving time, ns
	lookups     atomic.Int64 // point lookups served individually
	batched     atomic.Int64 // queries served through LookupBatch
	batches     atomic.Int64 // LookupBatch calls
	nodeProbes  atomic.Int64 // inner-node probes issued by sorted batches
	probesSaved atomic.Int64 // probes the shared descent avoided
	levelProbes [core.StatLevels]atomic.Int64 // kernel transactions per level, root first
	updates     atomic.Int64 // update/rebuild operations applied
	swaps       atomic.Int64 // snapshot publications (snapshot mode)
	gpuFaults   atomic.Int64 // injected device faults observed
	retries     atomic.Int64 // GPU-path retry attempts after a fault
	fbBatches   atomic.Int64 // batches answered by the CPU fallback
	fbQueries   atomic.Int64 // queries answered by the CPU fallback
	deadlines   atomic.Int64 // requests failed with ErrDeadlineExceeded
	repairs     atomic.Int64 // background replica repairs completed
	inplace     atomic.Int64 // batches applied in place (delta fast path)
	cloneFB     atomic.Int64 // batches that fell back to clone-and-swap
	clonedNodes atomic.Int64 // inner nodes copied by the clone path
	clonedBytes atomic.Int64 // host bytes copied by the clone path
}

// pin is the registry reference type every snapshot-mode read holds.
// Go has no generic type aliases, so the helper functions below spell
// the full instantiation once.
func zeroPin[K keys.Key]() epoch.Pin[*core.Tree[K], shardMeta[K]] {
	return epoch.Pin[*core.Tree[K], shardMeta[K]]{}
}

// NewServer wraps t in snapshot mode: reads never block on batch
// updates or rebuilds. Load-balance parameters are resolved eagerly
// when the balanced mode is enabled, so the first concurrent lookups
// never contend on discovery.
func NewServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	s := newServer(t)
	s.reg = epoch.New([]*core.Tree[K]{t}, shardMeta[K]{}, func(tr *core.Tree[K]) { tr.Close() })
	s.ownReg = true
	return s
}

// NewLockedServer wraps t behind the PR-1 sync.RWMutex contract:
// writers exclude all readers for the duration of a batch. It exists as
// the A/B baseline for the snapshot mode and for deployments that
// cannot afford a second I-segment replica during updates.
func NewLockedServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	s := newServer(t)
	s.locked = true
	s.tree = t
	return s
}

// newShardMember wraps t as one shard of a shared registry: the server
// reads and publishes through reg at the given slot and does not own
// the registry's lifetime (ShardedServer closes it once for all
// shards).
func newShardMember[K keys.Key](t *core.Tree[K], reg *epoch.Registry[*core.Tree[K], shardMeta[K]], slot int) *Server[K] {
	s := newServer(t)
	s.reg = reg
	s.slot.Store(int32(slot))
	return s
}

func newServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	if t.Options().LoadBalance {
		if _, ok := t.Balance(); !ok {
			t.Discover()
		}
	}
	attachEnvInjector(t.Device())
	var r RetryOptions
	r.fill()
	return &Server[K]{
		opt:       t.Options(),
		pointCost: t.PointLookupCost(),
		wsem:      make(chan struct{}, 1),
		brk:       breaker.New(breaker.Options{}),
		retry:     r,
	}
}

// attachEnvInjector wires the process-wide HBTREE_FAULT injector into a
// device that does not already carry one — the hook the CI fault lane
// uses to exercise every serving test under injected faults.
func attachEnvInjector(d *gpusim.Device) {
	if d.Injector() == nil {
		if in := fault.FromEnv(); in != nil {
			d.SetInjector(in)
		}
	}
}

// acquire pins the current tree version for one read operation. In
// snapshot mode the returned pin must be released with releaseRead; in
// locked mode the pin is the zero value (Valid() false) and the read
// lock is held until releaseRead.
//
// A shard member resolves its tree from the pinned state: the slot
// index is validated against the pinned metadata and, when a
// just-published rebalance has restamped it, the member locates itself
// in the pinned vector instead — so a read never mixes a new index
// with an old epoch. Acquiring on a shard server that a rebalance has
// replaced panics: retired members must not be used for new reads
// (ShardedServer's read paths resolve members through the pin, which
// makes that unreachable).
func (s *Server[K]) acquire() (*core.Tree[K], epoch.Pin[*core.Tree[K], shardMeta[K]]) {
	if s.locked {
		s.mu.RLock()
		return s.tree, zeroPin[K]()
	}
	tree, p, ok := s.pinCurrent()
	if !ok {
		panic("serve: read on a shard server replaced by rebalance")
	}
	return tree, p
}

// pinCurrent pins the registry and resolves this server's tree in the
// pinned state. ok is false — with nothing pinned — when the server is
// no longer part of the current state (replaced by a rebalance).
// Snapshot mode only.
func (s *Server[K]) pinCurrent() (*core.Tree[K], epoch.Pin[*core.Tree[K], shardMeta[K]], bool) {
	p := s.reg.Pin()
	m := p.Meta()
	if len(m.subs) == 0 {
		// Standalone registry: one slot, never restamped.
		return p.Get(0), p, true
	}
	if i := int(s.slot.Load()); i < len(m.subs) && m.subs[i] == s {
		return p.Get(i), p, true
	}
	// Slow path: the pin and the slot stamp straddle a rebalance —
	// locate this member in the pinned vector itself.
	for j, sub := range m.subs {
		if sub == s {
			return p.Get(j), p, true
		}
	}
	p.Unpin()
	return nil, zeroPin[K](), false
}

func (s *Server[K]) releaseRead(p epoch.Pin[*core.Tree[K], shardMeta[K]]) {
	if !p.Valid() {
		s.mu.RUnlock()
		return
	}
	p.Unpin()
}

// publish installs t as this server's slot in a new epoch. Callers hold
// the writer slot. In-flight readers of the old version finish on it;
// its device buffers are released when the last pin drains.
func (s *Server[K]) publish(t *core.Tree[K]) {
	s.reg.Publish(int(s.slot.Load()), t)
	s.swaps.Add(1)
}

// Metrics is a snapshot of the serving counters.
type Metrics struct {
	Lookups        int64 // point lookups served individually
	BatchedQueries int64 // queries served through LookupBatch
	Batches        int64 // LookupBatch calls
	Updates        int64 // update/rebuild operations applied
	Swaps          int64 // snapshot publications (snapshot mode only)

	// Shared-descent accounting (sorted batches only): inner-node probes
	// the kernel issued, and the probes run-sharing avoided relative to
	// one full descent per query.
	NodeProbes  int64
	ProbesSaved int64

	// LevelProbes breaks NodeProbes down by tree level (root first) —
	// the observed histogram core.Tree.LayoutAdvice consumes.
	LevelProbes [core.StatLevels]int64

	// Degraded-mode counters (see DESIGN §7).
	GPUFaults       int64         // injected device faults observed
	Retries         int64         // GPU-path retries after a fault
	FallbackBatches int64         // batches answered host-only
	FallbackQueries int64         // queries answered host-only
	Deadlines       int64         // requests failed with ErrDeadlineExceeded
	Repairs         int64         // background replica repairs completed
	BreakerTrips    int64         // closed/half-open -> open transitions
	BreakerState    breaker.State // current breaker state

	// Write-path amplification accounting (DESIGN §10): batches applied
	// in place on a gapped-leaf fork vs batches that fell back to the
	// clone-and-swap path, with the clone path's host copy footprint.
	InPlaceApplied int64
	CloneFallbacks int64
	ClonedNodes    int64
	ClonedBytes    int64

	// VirtualTime is the accumulated virtual serving time: per-request
	// lookups charge the modelled serial descent, batches charge their
	// simulated makespan.
	VirtualTime vclock.Duration
}

// Metrics returns the current counter snapshot.
func (s *Server[K]) Metrics() Metrics {
	m := Metrics{
		Lookups:         s.lookups.Load(),
		BatchedQueries:  s.batched.Load(),
		Batches:         s.batches.Load(),
		Updates:         s.updates.Load(),
		Swaps:           s.swaps.Load(),
		NodeProbes:      s.nodeProbes.Load(),
		ProbesSaved:     s.probesSaved.Load(),
		GPUFaults:       s.gpuFaults.Load(),
		Retries:         s.retries.Load(),
		FallbackBatches: s.fbBatches.Load(),
		FallbackQueries: s.fbQueries.Load(),
		Deadlines:       s.deadlines.Load(),
		Repairs:         s.repairs.Load(),
		InPlaceApplied:  s.inplace.Load(),
		CloneFallbacks:  s.cloneFB.Load(),
		ClonedNodes:     s.clonedNodes.Load(),
		ClonedBytes:     s.clonedBytes.Load(),
		BreakerTrips:    s.brk.Counters().Trips,
		BreakerState:    s.brk.State(),
		VirtualTime:     vclock.Duration(s.vtimeNs.Load()),
	}
	for i := range m.LevelProbes {
		m.LevelProbes[i] = s.levelProbes[i].Load()
	}
	return m
}

// ResetMetrics zeroes the serving counters (benchmark A/B phases). The
// breaker's state and trip history are left alone — they describe the
// device, not the measurement window.
func (s *Server[K]) ResetMetrics() {
	s.vtimeNs.Store(0)
	s.lookups.Store(0)
	s.batched.Store(0)
	s.batches.Store(0)
	s.nodeProbes.Store(0)
	s.probesSaved.Store(0)
	for i := range s.levelProbes {
		s.levelProbes[i].Store(0)
	}
	s.updates.Store(0)
	s.swaps.Store(0)
	s.gpuFaults.Store(0)
	s.retries.Store(0)
	s.fbBatches.Store(0)
	s.fbQueries.Store(0)
	s.deadlines.Store(0)
	s.repairs.Store(0)
	s.inplace.Store(0)
	s.cloneFB.Store(0)
	s.clonedNodes.Store(0)
	s.clonedBytes.Store(0)
}

// VirtualTime returns the accumulated virtual serving time.
func (s *Server[K]) VirtualTime() vclock.Duration {
	return vclock.Duration(s.vtimeNs.Load())
}

func (s *Server[K]) addVirtual(d vclock.Duration) {
	if d > 0 {
		s.vtimeNs.Add(int64(d))
	}
}

// PointLookupCost returns the modelled virtual cost charged per
// individually served lookup.
func (s *Server[K]) PointLookupCost() vclock.Duration { return s.pointCost }

// Swaps returns how many snapshot versions this server has published.
func (s *Server[K]) Swaps() int64 { return s.swaps.Load() }

// LevelWidths returns the current tree version's per-level key-slot
// widths (root first; nil for the regular variant) — the realised
// layout the STATS surface reports.
func (s *Server[K]) LevelWidths() []int {
	tree, p := s.acquire()
	w := tree.LevelWidths()
	s.releaseRead(p)
	return w
}

// LayoutAdvice recommends per-level root widths for the current tree
// from the probe histogram this server has accumulated (nil = stay
// uniform / not enough signal). It is advisory: the serving layer never
// relayouts online; operators feed it back as a build flag.
func (s *Server[K]) LayoutAdvice() []int {
	m := s.Metrics()
	tree, p := s.acquire()
	adv := tree.LayoutAdvice(m.LevelProbes[:])
	s.releaseRead(p)
	return adv
}

// Epoch returns the registry's current generation stamp (0 in locked
// mode, which has no registry).
func (s *Server[K]) Epoch() uint64 {
	if s.locked {
		return 0
	}
	return s.reg.Epoch()
}

// Degraded reports whether the server is in degraded mode: the breaker
// over the device is open and batches are answered by the CPU fallback.
// The Coalescer's fault-aware admission sheds earlier while this holds.
func (s *Server[K]) Degraded() bool { return s.brk.State() == breaker.Open }

// Lookup resolves one query on the CPU path against the current
// version. Each call is charged the full serial descent on the virtual
// clock — the per-request serving cost a Coalescer amortises away.
func (s *Server[K]) Lookup(q K) (K, bool) {
	tree, p := s.acquire()
	v, ok := s.lookupPinned(tree, q)
	s.releaseRead(p)
	return v, ok
}

// lookupPinned is the point-lookup body against an already-pinned
// tree: ShardedServer resolves the tree from its own pin and calls
// this, so shard reads never re-pin per member.
func (s *Server[K]) lookupPinned(tree *core.Tree[K], q K) (K, bool) {
	v, ok := tree.Lookup(q)
	s.lookups.Add(1)
	s.addVirtual(s.pointCost)
	return v, ok
}

// LookupBatch runs the heterogeneous batch search against the current
// version; concurrent batches share the device and keep isolated stats.
// The batch's simulated makespan is charged to the virtual clock.
// Injected device faults are retried with jittered backoff and, past
// the retry budget or with the breaker open, the batch is answered by
// the host-only search — callers see correct results either way.
func (s *Server[K]) LookupBatch(queries []K) ([]K, []bool, core.SearchStats, error) {
	values := make([]K, len(queries))
	found := make([]bool, len(queries))
	stats, err := s.LookupBatchInto(queries, values, found)
	if err != nil {
		return nil, nil, stats, err
	}
	return values, found, stats, nil
}

// LookupBatchInto is the allocation-free batch search: results land in
// the caller's slices (at least len(queries) long each) and the steady
// state allocates nothing — the path the Coalescer's flushers use. The
// same retry/fallback discipline as LookupBatch applies.
func (s *Server[K]) LookupBatchInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	tree, p := s.acquire()
	stats, err := s.lookupBatchPinned(tree, queries, values, found)
	s.releaseRead(p)
	return stats, err
}

// LookupBatchSortedInto is LookupBatchInto through the shared-descent
// batch search (core.Tree.LookupBatchSortedInto): results are identical
// and returned in caller order, with presorted duplicate-free batches —
// the Coalescer's steady state — resolved at one node probe per
// distinct node per level. The same retry/fallback discipline applies.
func (s *Server[K]) LookupBatchSortedInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	tree, p := s.acquire()
	stats, err := s.lookupBatchSortedPinned(tree, queries, values, found)
	s.releaseRead(p)
	return stats, err
}

// lookupBatchPinned is the batch-search body against an already-pinned
// tree, with the resilient retry/fallback discipline and this server's
// counters.
func (s *Server[K]) lookupBatchPinned(tree *core.Tree[K], queries []K, values []K, found []bool) (core.SearchStats, error) {
	stats, err := s.lookupBatchResilient(tree, queries, values, found, false)
	s.noteBatch(len(queries), stats, err)
	return stats, err
}

// lookupBatchSortedPinned is lookupBatchPinned through the
// shared-descent path.
func (s *Server[K]) lookupBatchSortedPinned(tree *core.Tree[K], queries []K, values []K, found []bool) (core.SearchStats, error) {
	stats, err := s.lookupBatchResilient(tree, queries, values, found, true)
	s.noteBatch(len(queries), stats, err)
	return stats, err
}

func (s *Server[K]) noteBatch(n int, stats core.SearchStats, err error) {
	if err != nil {
		return
	}
	s.batched.Add(int64(n))
	s.batches.Add(1)
	s.addVirtual(stats.SimTime)
	if stats.NodeProbes > 0 {
		s.nodeProbes.Add(stats.NodeProbes)
		s.probesSaved.Add(stats.ProbesSaved)
		for i, p := range stats.LevelProbes {
			if p != 0 {
				s.levelProbes[i].Add(p)
			}
		}
	}
}

// RangeQuery returns up to count pairs with key >= start against the
// current version.
func (s *Server[K]) RangeQuery(start K, count int) []keys.Pair[K] {
	tree, p := s.acquire()
	defer s.releaseRead(p)
	return tree.RangeQuery(start, count, nil)
}

// RangeQueryBatch runs the hybrid batched range search against the
// current version, charging its simulated makespan. Like LookupBatch
// it degrades to host-side range scans on injected device faults.
func (s *Server[K]) RangeQueryBatch(starts []K, count int) ([][]keys.Pair[K], core.RangeStats, error) {
	tree, p := s.acquire()
	out, stats, err := s.rangeBatchResilient(tree, starts, count)
	s.releaseRead(p)
	if err == nil {
		s.addVirtual(stats.SimTime)
	}
	return out, stats, err
}

// Scan collects up to count pairs starting at the first key >= start by
// walking a cursor against the current version. Cursors must not
// outlive the version pin, so the walk is materialised before
// returning.
func (s *Server[K]) Scan(start K, count int) []keys.Pair[K] {
	tree, p := s.acquire()
	defer s.releaseRead(p)
	return scanTree(tree, start, count, make([]keys.Pair[K], 0, count))
}

// scanTree materialises up to count pairs from a pinned tree's cursor
// into out — shared by Server.Scan and the sharded stitch loops.
func scanTree[K keys.Key](t *core.Tree[K], start K, count int, out []keys.Pair[K]) []keys.Pair[K] {
	cur := t.Seek(start)
	for len(out) < count {
		p, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// Update applies a batch of updates to the regular variant. In snapshot
// mode the batch executes on a clone of the current version and the
// patched clone is atomically published — readers proceed against the
// old version for the whole duration, and a failed batch leaves the
// published version untouched. In locked mode the update runs in place
// under the writer lock, excluding all readers.
//
// A batch whose host-side mutation succeeded but whose device re-sync
// faulted is still acknowledged: the (replica-stale) version is kept,
// reads on it degrade to the CPU path, and a background repair
// re-mirrors it (with heal-on-next-mirror as the fallback) — acked
// writes are never lost to an injected fault.
func (s *Server[K]) Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	return s.UpdateCtx(context.Background(), ops, method)
}

// UpdateCtx is Update with a caller deadline on the writer-serialisation
// wait: if ctx expires before the batch starts, ErrDeadlineExceeded is
// returned and the published version is untouched. A batch that has
// started is always run to completion (partial batches would lose acked
// writes).
func (s *Server[K]) UpdateCtx(ctx context.Context, ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	if s.locked {
		s.mu.Lock()
		stats, err := s.tree.Update(ops, method)
		err = s.ackStaleSync(s.tree, err)
		s.mu.Unlock()
		s.noteUpdate(len(ops), stats, err)
		return stats, err
	}
	if err := s.acquireWriter(ctx); err != nil {
		return core.UpdateStats{}, err
	}
	defer s.releaseWriter()
	cur := s.reg.Current(int(s.slot.Load()))

	// Fast path: a batch that fits the gapped leaves lands in place on a
	// shared-pool fork of the current epoch — no deep clone, no device
	// transfer. Readers pinned to older epochs keep their exact slot
	// images (the fork only appends to gap slots no published epoch
	// reads), so publication is the same epoch swap as the clone path.
	if !s.deltaOff {
		if fork, stats, ok := cur.ApplyDelta(ops, &s.plan); ok {
			s.publish(fork)
			s.inplace.Add(1)
			s.noteUpdate(len(ops), stats, nil)
			return stats, nil
		}
		if s.opt.Variant == core.Regular {
			// The batch needed structural work (split/merge or gap
			// overflow) — the clone path below is the fallback.
			s.cloneFB.Add(1)
		}
	}

	cn, cb := cur.CloneFootprint()
	clone, err := cur.Clone()
	if err != nil {
		return core.UpdateStats{}, err
	}
	stats, err := clone.Update(ops, method)
	err = s.ackStaleSync(clone, err)
	if err != nil {
		clone.Close()
		return stats, err
	}
	stats.ClonedNodes, stats.ClonedBytes = cn, cb
	s.clonedNodes.Add(int64(cn))
	s.clonedBytes.Add(cb)
	s.publish(clone)
	s.noteUpdate(len(ops), stats, err)
	return stats, nil
}

// SetDeltaLeaves toggles the in-place gapped-leaf fast path (on by
// default). Disabled, every batch takes the clone-and-swap path — the
// A/B baseline the wall benchmark's -no-delta-leaves flag selects. Not
// concurrency-safe with in-flight updates; set it before serving.
func (s *Server[K]) SetDeltaLeaves(on bool) { s.deltaOff = !on }

// Rebuild replaces the implicit variant's contents. In snapshot mode
// the replacement tree is built aside and atomically published; in
// locked mode the rebuild runs in place under the writer lock.
func (s *Server[K]) Rebuild(pairs []keys.Pair[K]) (core.UpdateStats, error) {
	return s.RebuildCtx(context.Background(), pairs)
}

// RebuildCtx is Rebuild with a caller deadline on the writer wait, with
// the same started-batches-complete semantics as UpdateCtx.
func (s *Server[K]) RebuildCtx(ctx context.Context, pairs []keys.Pair[K]) (core.UpdateStats, error) {
	if s.locked {
		s.mu.Lock()
		stats, err := s.tree.Rebuild(pairs)
		err = s.ackStaleSync(s.tree, err)
		s.mu.Unlock()
		s.noteUpdate(len(pairs), stats, err)
		return stats, err
	}
	if err := s.acquireWriter(ctx); err != nil {
		return core.UpdateStats{}, err
	}
	defer s.releaseWriter()
	nt, stats, err := s.reg.Current(int(s.slot.Load())).Rebuilt(pairs)
	if err != nil {
		return stats, err
	}
	err = s.ackStaleSync(nt, err)
	if err != nil {
		nt.Close()
		return stats, err
	}
	s.publish(nt)
	s.noteUpdate(len(pairs), stats, err)
	return stats, nil
}

// ackStaleSync classifies a batch-update error: an injected fault that
// left the tree replica-stale means the host mutation itself succeeded —
// the batch is acknowledged (nil), only the device image lags, and a
// background repair is kicked off to re-mirror it. Any other error is
// returned unchanged.
func (s *Server[K]) ackStaleSync(t *core.Tree[K], err error) error {
	if err == nil {
		return nil
	}
	if fault.Is(err) && t.ReplicaStale() {
		s.gpuFaults.Add(1)
		s.brk.Failure()
		s.maybeRepair()
		return nil
	}
	return err
}

// acquireWriter takes the writer slot, abandoning the wait when ctx
// expires first.
func (s *Server[K]) acquireWriter(ctx context.Context) error {
	select {
	case s.wsem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.wsem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.deadlines.Add(1)
		return ErrDeadlineExceeded
	}
}

func (s *Server[K]) releaseWriter() { <-s.wsem }

func (s *Server[K]) noteUpdate(ops int, stats core.UpdateStats, err error) {
	if err == nil {
		s.updates.Add(int64(ops))
		s.addVirtual(stats.Total())
	}
}

// Stats reports the tree geometry of the current version.
func (s *Server[K]) Stats() cpubtree.Stats {
	tree, p := s.acquire()
	defer s.releaseRead(p)
	return tree.Stats()
}

// Describe returns the current version's human-readable report.
func (s *Server[K]) Describe() string {
	tree, p := s.acquire()
	defer s.releaseRead(p)
	return tree.Describe()
}

// NumPairs returns the stored pair count of the current version.
func (s *Server[K]) NumPairs() int {
	tree, p := s.acquire()
	defer s.releaseRead(p)
	return tree.NumPairs()
}

// DeviceCounters snapshots the simulated GPU's hardware counters. The
// device is shared by every snapshot, so the counters span versions.
func (s *Server[K]) DeviceCounters() gpusim.Counters {
	tree, p := s.acquire()
	defer s.releaseRead(p)
	return tree.Device().Counters()
}

// Options returns the wrapped tree's configuration (fixed across
// snapshot versions).
func (s *Server[K]) Options() core.Options { return s.opt }

// Tree exposes the current version's tree. Callers bypass the
// reader/writer contract when touching it directly; do so only while
// nothing else uses the server.
func (s *Server[K]) Tree() *core.Tree[K] {
	if s.locked {
		return s.tree
	}
	return s.reg.Current(int(s.slot.Load()))
}

// Close releases the current version's device buffers. In snapshot
// mode, readers still pinning the version finish first — the buffers
// are released when the last pin drains. A shard member does not own
// its registry and must be closed through its ShardedServer; Close on
// it only quiesces the writer slot. Close is idempotent.
func (s *Server[K]) Close() {
	if s.locked {
		s.mu.Lock()
		s.tree.Close()
		s.mu.Unlock()
		return
	}
	s.wsem <- struct{}{}
	defer s.releaseWriter()
	if s.ownReg {
		s.reg.Close()
	}
}
