// Package serve is the concurrency layer over the HB+-tree: it wraps a
// core.Tree behind a reader/writer contract and coalesces point lookups
// arriving from many goroutines into the bucket-sized batches the
// heterogeneous search path is built for.
//
// The paper's throughput argument rests on batched lookups (Section
// 5.4): the four-step CPU-GPU search amortises the PCIe transfer and
// kernel-launch overheads over a bucket of M queries. A serving
// deployment, however, receives point requests from many concurrent
// connections, and core.Tree — like the paper's prototype — is written
// for one caller at a time when it mutates state. Server provides the
// contract; Coalescer turns concurrent point lookups into LookupBatch
// calls under a size-or-deadline window, so the serving layer recovers
// the paper's batched throughput from a point-request workload.
//
// # Snapshot reads
//
// The default Server publishes the tree behind an atomic pointer with
// reference-counted snapshots (RCU-style): read operations acquire the
// current snapshot, run against it without blocking, and release it;
// batch updates and rebuilds construct a successor tree aside — a
// clone patched with the batch, or a fresh build — and atomically swap
// it in. Readers that acquired the old snapshot finish on it
// undisturbed; its device-resident I-segment replica is released when
// the last such reader drains. This mirrors the paper's asynchronous
// update mode (Section 5.6) at the serving layer: the index remains
// searchable for the full duration of a batch update, at the cost of
// the clone/rebuild work and a transiently doubled I-segment footprint
// on the device. NewLockedServer retains the PR-1 discipline — one
// sync.RWMutex, writers excluding all readers — as the comparison
// baseline and for memory-constrained deployments.
//
// Virtual-time accounting follows requests through the layer: point
// lookups served individually are charged the modelled serial descent
// (core.Tree.PointLookupCost), while coalesced batches are charged the
// simulated makespan of their heterogeneous execution (SimTime), which
// is what makes the two serving disciplines comparable on the paper's
// calibrated clock.
package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"hbtree/internal/breaker"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// snapshot is one published version of the tree. refs starts at 1 (the
// server's publication reference); every reader adds one for the span
// of its operation. When the snapshot has been retired (superseded or
// the server closed) and the last reference drains, the tree's device
// buffers are released.
type snapshot[K keys.Key] struct {
	tree    *core.Tree[K]
	refs    atomic.Int64
	retired atomic.Bool
	once    sync.Once
}

func newSnapshot[K keys.Key](t *core.Tree[K]) *snapshot[K] {
	sn := &snapshot[K]{tree: t}
	sn.refs.Store(1)
	return sn
}

// release drops one reference; the snapshot's tree is closed when the
// count reaches zero after retirement. The server's own reference is
// dropped only after retired is set, so a reader observing zero always
// observes retired too.
func (sn *snapshot[K]) release() {
	if sn.refs.Add(-1) == 0 && sn.retired.Load() {
		sn.once.Do(sn.tree.Close)
	}
}

// Server wraps a core.Tree with a reader/writer contract. In the
// default snapshot mode, read operations run against an atomically
// published snapshot and never block on writers; Update and Rebuild
// build a successor version aside and swap it in. In locked mode
// (NewLockedServer), a sync.RWMutex is used instead and writers exclude
// all readers. The zero value is not usable; construct with NewServer
// or NewLockedServer.
type Server[K keys.Key] struct {
	locked bool

	// Locked mode: the PR-1 reader/writer lock over one tree.
	mu   sync.RWMutex
	tree *core.Tree[K]

	// Snapshot mode: the current version and the writer serialisation.
	// The writer "mutex" is a capacity-1 channel so UpdateCtx/RebuildCtx
	// can abandon the wait when the caller's deadline expires.
	cur  atomic.Pointer[snapshot[K]]
	wsem chan struct{}

	opt       core.Options
	pointCost vclock.Duration // modelled cost of one per-request lookup

	// Resilience: the circuit breaker over GPU-sim faults and the
	// bounded-retry policy. The breaker lives here, not on the tree —
	// snapshot swaps replace trees but error history must survive them.
	brk   *breaker.Breaker
	retry RetryOptions

	// Serving metrics (atomic: updated outside the locks).
	vtimeNs   atomic.Int64 // accumulated virtual serving time, ns
	lookups   atomic.Int64 // point lookups served individually
	batched   atomic.Int64 // queries served through LookupBatch
	batches   atomic.Int64 // LookupBatch calls
	updates   atomic.Int64 // update/rebuild operations applied
	swaps     atomic.Int64 // snapshot publications (snapshot mode)
	gpuFaults atomic.Int64 // injected device faults observed
	retries   atomic.Int64 // GPU-path retry attempts after a fault
	fbBatches atomic.Int64 // batches answered by the CPU fallback
	fbQueries atomic.Int64 // queries answered by the CPU fallback
	deadlines atomic.Int64 // requests failed with ErrDeadlineExceeded
}

// NewServer wraps t in snapshot mode: reads never block on batch
// updates or rebuilds. Load-balance parameters are resolved eagerly
// when the balanced mode is enabled, so the first concurrent lookups
// never contend on discovery.
func NewServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	s := newServer(t)
	s.cur.Store(newSnapshot(t))
	return s
}

// NewLockedServer wraps t behind the PR-1 sync.RWMutex contract:
// writers exclude all readers for the duration of a batch. It exists as
// the A/B baseline for the snapshot mode and for deployments that
// cannot afford a second I-segment replica during updates.
func NewLockedServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	s := newServer(t)
	s.locked = true
	s.tree = t
	return s
}

func newServer[K keys.Key](t *core.Tree[K]) *Server[K] {
	if t.Options().LoadBalance {
		if _, ok := t.Balance(); !ok {
			t.Discover()
		}
	}
	attachEnvInjector(t.Device())
	var r RetryOptions
	r.fill()
	return &Server[K]{
		opt:       t.Options(),
		pointCost: t.PointLookupCost(),
		wsem:      make(chan struct{}, 1),
		brk:       breaker.New(breaker.Options{}),
		retry:     r,
	}
}

// attachEnvInjector wires the process-wide HBTREE_FAULT injector into a
// device that does not already carry one — the hook the CI fault lane
// uses to exercise every serving test under injected faults.
func attachEnvInjector(d *gpusim.Device) {
	if d.Injector() == nil {
		if in := fault.FromEnv(); in != nil {
			d.SetInjector(in)
		}
	}
}

// acquire pins the current tree version for one read operation. In
// snapshot mode the returned snapshot must be released; in locked mode
// the snapshot is nil and the read lock is held until releaseRead.
func (s *Server[K]) acquire() (*core.Tree[K], *snapshot[K]) {
	if s.locked {
		s.mu.RLock()
		return s.tree, nil
	}
	for {
		sn := s.cur.Load()
		sn.refs.Add(1)
		if s.cur.Load() == sn {
			// Still the published version: the reference taken above
			// keeps it alive for the span of this read.
			return sn.tree, sn
		}
		// A writer swapped between the load and the reference; drop it
		// and retry on the new version.
		sn.release()
	}
}

func (s *Server[K]) releaseRead(sn *snapshot[K]) {
	if sn == nil {
		s.mu.RUnlock()
		return
	}
	sn.release()
}

// publish retires the current snapshot in favour of t. Callers hold
// wmu. In-flight readers of the old version finish on it; its device
// buffers are released when the last one drains.
func (s *Server[K]) publish(t *core.Tree[K]) {
	old := s.cur.Swap(newSnapshot(t))
	s.swaps.Add(1)
	old.retired.Store(true)
	old.release()
}

// Metrics is a snapshot of the serving counters.
type Metrics struct {
	Lookups        int64 // point lookups served individually
	BatchedQueries int64 // queries served through LookupBatch
	Batches        int64 // LookupBatch calls
	Updates        int64 // update/rebuild operations applied
	Swaps          int64 // snapshot publications (snapshot mode only)

	// Degraded-mode counters (see DESIGN §7).
	GPUFaults       int64         // injected device faults observed
	Retries         int64         // GPU-path retries after a fault
	FallbackBatches int64         // batches answered host-only
	FallbackQueries int64         // queries answered host-only
	Deadlines       int64         // requests failed with ErrDeadlineExceeded
	BreakerTrips    int64         // closed/half-open -> open transitions
	BreakerState    breaker.State // current breaker state

	// VirtualTime is the accumulated virtual serving time: per-request
	// lookups charge the modelled serial descent, batches charge their
	// simulated makespan.
	VirtualTime vclock.Duration
}

// Metrics returns the current counter snapshot.
func (s *Server[K]) Metrics() Metrics {
	return Metrics{
		Lookups:         s.lookups.Load(),
		BatchedQueries:  s.batched.Load(),
		Batches:         s.batches.Load(),
		Updates:         s.updates.Load(),
		Swaps:           s.swaps.Load(),
		GPUFaults:       s.gpuFaults.Load(),
		Retries:         s.retries.Load(),
		FallbackBatches: s.fbBatches.Load(),
		FallbackQueries: s.fbQueries.Load(),
		Deadlines:       s.deadlines.Load(),
		BreakerTrips:    s.brk.Counters().Trips,
		BreakerState:    s.brk.State(),
		VirtualTime:     vclock.Duration(s.vtimeNs.Load()),
	}
}

// ResetMetrics zeroes the serving counters (benchmark A/B phases). The
// breaker's state and trip history are left alone — they describe the
// device, not the measurement window.
func (s *Server[K]) ResetMetrics() {
	s.vtimeNs.Store(0)
	s.lookups.Store(0)
	s.batched.Store(0)
	s.batches.Store(0)
	s.updates.Store(0)
	s.swaps.Store(0)
	s.gpuFaults.Store(0)
	s.retries.Store(0)
	s.fbBatches.Store(0)
	s.fbQueries.Store(0)
	s.deadlines.Store(0)
}

// VirtualTime returns the accumulated virtual serving time.
func (s *Server[K]) VirtualTime() vclock.Duration {
	return vclock.Duration(s.vtimeNs.Load())
}

func (s *Server[K]) addVirtual(d vclock.Duration) {
	if d > 0 {
		s.vtimeNs.Add(int64(d))
	}
}

// PointLookupCost returns the modelled virtual cost charged per
// individually served lookup.
func (s *Server[K]) PointLookupCost() vclock.Duration { return s.pointCost }

// Swaps returns how many snapshot versions have been published.
func (s *Server[K]) Swaps() int64 { return s.swaps.Load() }

// Lookup resolves one query on the CPU path against the current
// version. Each call is charged the full serial descent on the virtual
// clock — the per-request serving cost a Coalescer amortises away.
func (s *Server[K]) Lookup(q K) (K, bool) {
	tree, sn := s.acquire()
	v, ok := tree.Lookup(q)
	s.releaseRead(sn)
	s.lookups.Add(1)
	s.addVirtual(s.pointCost)
	return v, ok
}

// LookupBatch runs the heterogeneous batch search against the current
// version; concurrent batches share the device and keep isolated stats.
// The batch's simulated makespan is charged to the virtual clock.
// Injected device faults are retried with jittered backoff and, past
// the retry budget or with the breaker open, the batch is answered by
// the host-only search — callers see correct results either way.
func (s *Server[K]) LookupBatch(queries []K) ([]K, []bool, core.SearchStats, error) {
	values := make([]K, len(queries))
	found := make([]bool, len(queries))
	stats, err := s.LookupBatchInto(queries, values, found)
	if err != nil {
		return nil, nil, stats, err
	}
	return values, found, stats, nil
}

// LookupBatchInto is the allocation-free batch search: results land in
// the caller's slices (at least len(queries) long each) and the steady
// state allocates nothing — the path the Coalescer's flushers use. The
// same retry/fallback discipline as LookupBatch applies.
func (s *Server[K]) LookupBatchInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	tree, sn := s.acquire()
	stats, err := s.lookupBatchResilient(tree, queries, values, found)
	s.releaseRead(sn)
	if err == nil {
		s.batched.Add(int64(len(queries)))
		s.batches.Add(1)
		s.addVirtual(stats.SimTime)
	}
	return stats, err
}

// RangeQuery returns up to count pairs with key >= start against the
// current version.
func (s *Server[K]) RangeQuery(start K, count int) []keys.Pair[K] {
	tree, sn := s.acquire()
	defer s.releaseRead(sn)
	return tree.RangeQuery(start, count, nil)
}

// RangeQueryBatch runs the hybrid batched range search against the
// current version, charging its simulated makespan. Like LookupBatch
// it degrades to host-side range scans on injected device faults.
func (s *Server[K]) RangeQueryBatch(starts []K, count int) ([][]keys.Pair[K], core.RangeStats, error) {
	tree, sn := s.acquire()
	out, stats, err := s.rangeBatchResilient(tree, starts, count)
	s.releaseRead(sn)
	if err == nil {
		s.addVirtual(stats.SimTime)
	}
	return out, stats, err
}

// Scan collects up to count pairs starting at the first key >= start by
// walking a cursor against the current version. Cursors must not
// outlive the version pin, so the walk is materialised before
// returning.
func (s *Server[K]) Scan(start K, count int) []keys.Pair[K] {
	tree, sn := s.acquire()
	defer s.releaseRead(sn)
	out := make([]keys.Pair[K], 0, count)
	cur := tree.Seek(start)
	for len(out) < count {
		p, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// Update applies a batch of updates to the regular variant. In snapshot
// mode the batch executes on a clone of the current version and the
// patched clone is atomically published — readers proceed against the
// old version for the whole duration, and a failed batch leaves the
// published version untouched. In locked mode the update runs in place
// under the writer lock, excluding all readers.
//
// A batch whose host-side mutation succeeded but whose device re-sync
// faulted is still acknowledged: the (replica-stale) version is kept,
// reads on it degrade to the CPU path, and a later successful mirror
// heals it — acked writes are never lost to an injected fault.
func (s *Server[K]) Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	return s.UpdateCtx(context.Background(), ops, method)
}

// UpdateCtx is Update with a caller deadline on the writer-serialisation
// wait: if ctx expires before the batch starts, ErrDeadlineExceeded is
// returned and the published version is untouched. A batch that has
// started is always run to completion (partial batches would lose acked
// writes).
func (s *Server[K]) UpdateCtx(ctx context.Context, ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	if s.locked {
		s.mu.Lock()
		stats, err := s.tree.Update(ops, method)
		err = s.ackStaleSync(s.tree, err)
		s.mu.Unlock()
		s.noteUpdate(len(ops), stats, err)
		return stats, err
	}
	if err := s.acquireWriter(ctx); err != nil {
		return core.UpdateStats{}, err
	}
	defer s.releaseWriter()
	clone, err := s.cur.Load().tree.Clone()
	if err != nil {
		return core.UpdateStats{}, err
	}
	stats, err := clone.Update(ops, method)
	err = s.ackStaleSync(clone, err)
	if err != nil {
		clone.Close()
		return stats, err
	}
	s.publish(clone)
	s.noteUpdate(len(ops), stats, err)
	return stats, nil
}

// Rebuild replaces the implicit variant's contents. In snapshot mode
// the replacement tree is built aside and atomically published; in
// locked mode the rebuild runs in place under the writer lock.
func (s *Server[K]) Rebuild(pairs []keys.Pair[K]) (core.UpdateStats, error) {
	return s.RebuildCtx(context.Background(), pairs)
}

// RebuildCtx is Rebuild with a caller deadline on the writer wait, with
// the same started-batches-complete semantics as UpdateCtx.
func (s *Server[K]) RebuildCtx(ctx context.Context, pairs []keys.Pair[K]) (core.UpdateStats, error) {
	if s.locked {
		s.mu.Lock()
		stats, err := s.tree.Rebuild(pairs)
		err = s.ackStaleSync(s.tree, err)
		s.mu.Unlock()
		s.noteUpdate(len(pairs), stats, err)
		return stats, err
	}
	if err := s.acquireWriter(ctx); err != nil {
		return core.UpdateStats{}, err
	}
	defer s.releaseWriter()
	nt, stats, err := s.cur.Load().tree.Rebuilt(pairs)
	if err != nil {
		return stats, err
	}
	err = s.ackStaleSync(nt, err)
	if err != nil {
		nt.Close()
		return stats, err
	}
	s.publish(nt)
	s.noteUpdate(len(pairs), stats, err)
	return stats, nil
}

// ackStaleSync classifies a batch-update error: an injected fault that
// left the tree replica-stale means the host mutation itself succeeded —
// the batch is acknowledged (nil) and only the device image lags. Any
// other error is returned unchanged.
func (s *Server[K]) ackStaleSync(t *core.Tree[K], err error) error {
	if err == nil {
		return nil
	}
	if fault.Is(err) && t.ReplicaStale() {
		s.gpuFaults.Add(1)
		s.brk.Failure()
		return nil
	}
	return err
}

// acquireWriter takes the writer slot, abandoning the wait when ctx
// expires first.
func (s *Server[K]) acquireWriter(ctx context.Context) error {
	select {
	case s.wsem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.wsem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.deadlines.Add(1)
		return ErrDeadlineExceeded
	}
}

func (s *Server[K]) releaseWriter() { <-s.wsem }

func (s *Server[K]) noteUpdate(ops int, stats core.UpdateStats, err error) {
	if err == nil {
		s.updates.Add(int64(ops))
		s.addVirtual(stats.Total())
	}
}

// Stats reports the tree geometry of the current version.
func (s *Server[K]) Stats() cpubtree.Stats {
	tree, sn := s.acquire()
	defer s.releaseRead(sn)
	return tree.Stats()
}

// Describe returns the current version's human-readable report.
func (s *Server[K]) Describe() string {
	tree, sn := s.acquire()
	defer s.releaseRead(sn)
	return tree.Describe()
}

// NumPairs returns the stored pair count of the current version.
func (s *Server[K]) NumPairs() int {
	tree, sn := s.acquire()
	defer s.releaseRead(sn)
	return tree.NumPairs()
}

// DeviceCounters snapshots the simulated GPU's hardware counters. The
// device is shared by every snapshot, so the counters span versions.
func (s *Server[K]) DeviceCounters() gpusim.Counters {
	tree, sn := s.acquire()
	defer s.releaseRead(sn)
	return tree.Device().Counters()
}

// Options returns the wrapped tree's configuration (fixed across
// snapshot versions).
func (s *Server[K]) Options() core.Options { return s.opt }

// Tree exposes the current version's tree. Callers bypass the
// reader/writer contract when touching it directly; do so only while
// nothing else uses the server.
func (s *Server[K]) Tree() *core.Tree[K] {
	if s.locked {
		return s.tree
	}
	return s.cur.Load().tree
}

// Close releases the current version's device buffers. In snapshot
// mode, readers still pinning the version finish first — the buffers
// are released when the last reference drains. Close is idempotent.
func (s *Server[K]) Close() {
	if s.locked {
		s.mu.Lock()
		s.tree.Close()
		s.mu.Unlock()
		return
	}
	s.wsem <- struct{}{}
	defer s.releaseWriter()
	cur := s.cur.Load()
	if cur.retired.CompareAndSwap(false, true) {
		cur.release() // drop the publication reference
	}
}
