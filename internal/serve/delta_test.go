package serve

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// Serving-layer coverage of the in-place gapped-leaf update path
// (DESIGN §10): A/B equality against the clone-and-swap baseline, the
// write-path metrics plumbing, and the epoch contract under -race —
// readers pinned to an older epoch must keep seeing their exact
// pre-batch values while the pump applies batches in place.

func newDeltaServer(t testing.TB, n int, deltaOn bool) (*Server[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 77)
	tree, err := core.Build(pairs, core.Options{Variant: core.Regular, LeafFill: 0.8, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tree)
	srv.SetDeltaLeaves(deltaOn)
	t.Cleanup(srv.Close)
	return srv, pairs
}

// deltaBatches generates a deterministic sequence of update batches:
// overwrites, inserts of near-miss keys and deletes of earlier inserts.
func deltaBatches(pairs []keys.Pair[uint64], rounds, size int) [][]cpubtree.Op[uint64] {
	rng := rand.New(rand.NewSource(9))
	out := make([][]cpubtree.Op[uint64], rounds)
	for r := range out {
		ops := make([]cpubtree.Op[uint64], size)
		for i := range ops {
			p := pairs[rng.Intn(len(pairs))]
			switch rng.Intn(4) {
			case 0: // insert a near-miss key
				ops[i] = cpubtree.Op[uint64]{Key: p.Key + 1 + uint64(rng.Intn(5)), Value: uint64(r*1000 + i)}
			case 1: // delete (hit or miss)
				ops[i] = cpubtree.Op[uint64]{Key: p.Key + uint64(rng.Intn(2)), Delete: true}
			default: // overwrite
				ops[i] = cpubtree.Op[uint64]{Key: p.Key, Value: uint64(r*1000 + i)}
			}
		}
		out[r] = ops
	}
	return out
}

// TestDeltaVsCloneServingEquality drives the same batch sequence
// through a delta-enabled server and the -no-delta-leaves baseline and
// requires byte-identical read results, while the metrics prove the
// two actually took different apply paths.
func TestDeltaVsCloneServingEquality(t *testing.T) {
	fast, pairs := newDeltaServer(t, 6000, true)
	base, _ := newDeltaServer(t, 6000, false)

	for r, ops := range deltaBatches(pairs, 12, 96) {
		if _, err := fast.Update(ops, core.AsyncParallel); err != nil {
			t.Fatalf("round %d fast: %v", r, err)
		}
		if _, err := base.Update(ops, core.AsyncParallel); err != nil {
			t.Fatalf("round %d base: %v", r, err)
		}
	}

	mf, mb := fast.Metrics(), base.Metrics()
	if mf.InPlaceApplied == 0 {
		t.Fatalf("delta server applied nothing in place: %+v", mf)
	}
	if mb.InPlaceApplied != 0 || mb.CloneFallbacks != 0 {
		t.Fatalf("baseline took the delta path: %+v", mb)
	}
	if mb.ClonedNodes == 0 || mb.ClonedBytes == 0 {
		t.Fatalf("baseline recorded no clone footprint: %+v", mb)
	}
	if mf.ClonedBytes >= mb.ClonedBytes {
		t.Fatalf("delta server cloned as much as the baseline: %d vs %d bytes",
			mf.ClonedBytes, mb.ClonedBytes)
	}

	// Full-scan equality.
	nf, nb := fast.NumPairs(), base.NumPairs()
	if nf != nb {
		t.Fatalf("NumPairs diverged: %d vs %d", nf, nb)
	}
	sf := fast.Scan(0, nf+10)
	sb := base.Scan(0, nb+10)
	if len(sf) != len(sb) {
		t.Fatalf("scan lengths diverged: %d vs %d", len(sf), len(sb))
	}
	for i := range sf {
		if sf[i] != sb[i] {
			t.Fatalf("scan[%d]: %v vs %v", i, sf[i], sb[i])
		}
	}

	// Point and batch lookups across both servers.
	qs := make([]uint64, 0, 2*len(pairs))
	for _, p := range pairs[:1000] {
		qs = append(qs, p.Key, p.Key+1)
	}
	vf, ff, _, err := fast.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	vb, fb, _, err := base.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if ff[i] != fb[i] || (ff[i] && vf[i] != vb[i]) {
			t.Fatalf("lookup %d: (%d,%v) vs (%d,%v)", qs[i], vf[i], ff[i], vb[i], fb[i])
		}
	}
}

// TestShardedDeltaMetrics checks the sharded layer: in-place applies on
// shard members surface in the aggregate metrics, and SetDeltaLeaves
// propagates so the baseline arm records clone footprint instead.
func TestShardedDeltaMetrics(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 8000, 5)
	opt := core.Options{Variant: core.Regular, LeafFill: 0.8, BucketSize: 64}
	for _, deltaOn := range []bool{true, false} {
		s, err := BuildSharded(pairs, opt, 4)
		if err != nil {
			t.Fatal(err)
		}
		s.SetDeltaLeaves(deltaOn)
		for r, ops := range deltaBatches(pairs, 6, 128) {
			if _, err := s.Update(ops, core.AsyncParallel); err != nil {
				t.Fatalf("deltaOn=%v round %d: %v", deltaOn, r, err)
			}
		}
		m := s.Metrics()
		if deltaOn && m.InPlaceApplied == 0 {
			t.Fatalf("sharded delta run applied nothing in place: %+v", m)
		}
		if !deltaOn && (m.InPlaceApplied != 0 || m.ClonedBytes == 0) {
			t.Fatalf("sharded baseline metrics wrong: %+v", m)
		}
		s.Close()
	}
}

// TestRaceEpochPinnedReadersDuringInPlaceApplies is the -race oracle of
// the epoch contract: readers pin an epoch, snapshot values, yield to
// the writer (which publishes in-place forks of newer epochs), and
// re-read the SAME pinned tree — every value must be bit-identical to
// the snapshot, proving in-place applies never touch a slot an older
// pinned epoch reads.
func TestRaceEpochPinnedReadersDuringInPlaceApplies(t *testing.T) {
	srv, pairs := newDeltaServer(t, 1<<12, true)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ks := make([]uint64, 24)
			vs := make([]uint64, 24)
			fs := make([]bool, 24)
			for {
				select {
				case <-done:
					return
				default:
				}
				tree, p := srv.acquire()
				for i := range ks {
					ks[i] = pairs[rng.Intn(len(pairs))].Key + uint64(rng.Intn(2))
					vs[i], fs[i] = tree.Lookup(ks[i])
				}
				runtime.Gosched() // let in-place forks publish meanwhile
				for i := range ks {
					v, ok := tree.Lookup(ks[i])
					if ok != fs[i] || v != vs[i] {
						t.Errorf("pinned epoch moved: key %d was (%d,%v), now (%d,%v)",
							ks[i], vs[i], fs[i], v, ok)
						srv.releaseRead(p)
						return
					}
				}
				// An ordered scan on the pinned epoch must stay sorted.
				start := pairs[rng.Intn(len(pairs))].Key
				out := scanTree(tree, start, 16, nil)
				for i := 1; i < len(out); i++ {
					if out[i].Key <= out[i-1].Key {
						t.Errorf("pinned scan unsorted at %d", i)
						srv.releaseRead(p)
						return
					}
				}
				srv.releaseRead(p)
			}
		}(int64(r))
	}

	rng := rand.New(rand.NewSource(123))
	for gen := 1; gen <= 120; gen++ {
		ops := make([]cpubtree.Op[uint64], 64)
		for i := range ops {
			p := pairs[rng.Intn(len(pairs))]
			if i%5 == 0 {
				ops[i] = cpubtree.Op[uint64]{Key: p.Key + 1, Delete: true}
			} else {
				ops[i] = cpubtree.Op[uint64]{Key: p.Key, Value: uint64(gen)}
			}
		}
		if _, err := srv.Update(ops, core.AsyncParallel); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	m := srv.Metrics()
	if m.InPlaceApplied == 0 {
		t.Fatalf("writer never took the in-place path: %+v", m)
	}
	t.Logf("in-place %d, clone fallbacks %d, cloned %d bytes",
		m.InPlaceApplied, m.CloneFallbacks, m.ClonedBytes)
}
