package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hbtree/internal/breaker"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// Key-space sharded serving (DESIGN §6). The snapshot Server turns
// every batch update into a whole-tree clone and serialises all writers
// behind one mutex, so write cost is O(data) and rebuilds cannot
// overlap — the scaling wall the ROADMAP's "sharded trees" item names.
// ShardedServer partitions the key space across T independent trees,
// each behind its own snapshot Server with its own refcounted snapshot
// pointer and a dedicated update-pump goroutine (the per-shard worker
// pool standing in for NUMA placement until real NUMA is observable).
// Writers clone 1/T of the data and shards rebuild concurrently, so
// clone cost drops to O(data/T) and update throughput scales with
// cores; point lookups route by key and stay allocation-free; range
// reads stitch ordered results across shard boundaries.

// shardJob is one unit of write work handed to a shard's update pump:
// either a batch of routed ops or a rebuild of the shard's key range.
// ctx carries the dispatcher's deadline into the pump's writer wait.
type shardJob[K keys.Key] struct {
	ctx     context.Context
	ops     []cpubtree.Op[K]
	pairs   []keys.Pair[K]
	rebuild bool
	method  core.UpdateMethod
	done    chan<- shardDone
}

// shardDone reports one pump's job outcome back to the dispatcher.
type shardDone struct {
	stats core.UpdateStats
	err   error
}

// ShardedServer partitions the key space across T independent snapshot
// Servers. Shard i (i > 0) serves keys in [bounds[i-1], bounds[i]);
// shard 0 serves everything below bounds[0] and the last shard
// everything from its lower bound up. The bounds are fixed at
// construction from the initial key distribution.
//
// Contract (DESIGN §6): point and batch lookups observe the snapshot of
// the one shard that owns each key; a cross-shard RangeQuery or Scan
// pins each shard's snapshot independently as the stitch walks the
// boundary, so it is per-shard consistent — ordered, and never a torn
// view *within* a shard — but not a single atomic cut across shards.
// Update splits its ops by shard and applies the per-shard sub-batches
// concurrently (each one a clone-aside-and-swap on 1/T of the data);
// ops for the same key keep their submission order because routing
// preserves relative order within a shard. Rebuild partitions the
// replacement pairs by the fixed bounds and rebuilds all shards
// concurrently.
type ShardedServer[K keys.Key] struct {
	bounds []K          // lower bounds of shards 1..T-1
	subs   []*Server[K] // one snapshot server per shard

	// Per-shard update pumps: one goroutine per shard applies that
	// shard's write jobs serially, so writers on different shards never
	// contend while a single shard's writes stay ordered. pumpMu
	// excludes Close (which closes the job channels) from in-flight
	// dispatches.
	pumps  []chan shardJob[K]
	pumpWG sync.WaitGroup
	pumpMu sync.RWMutex
	closed bool

	// deadlines counts writes abandoned at the dispatch layer (pump send
	// or outcome wait); per-shard waits are counted by the sub-servers.
	deadlines atomic.Int64

	closeOnce sync.Once
}

// BuildSharded builds a ShardedServer over T trees from sorted,
// distinct pairs: the pairs are cut into T equal contiguous runs, the
// run boundaries become the fixed shard bounds, and every shard tree is
// built with opt on one shared simulated device (opt.Device, or the
// first shard's device when nil). shards <= 0 selects GOMAXPROCS.
func BuildSharded[K keys.Key](pairs []keys.Pair[K], opt core.Options, shards int) (*ShardedServer[K], error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if len(pairs) < shards {
		return nil, fmt.Errorf("serve: %d pairs cannot populate %d shards", len(pairs), shards)
	}
	s := &ShardedServer[K]{
		bounds: make([]K, 0, shards-1),
		subs:   make([]*Server[K], 0, shards),
		pumps:  make([]chan shardJob[K], shards),
	}
	for i := 0; i < shards; i++ {
		lo, hi := i*len(pairs)/shards, (i+1)*len(pairs)/shards
		if i > 0 {
			s.bounds = append(s.bounds, pairs[lo].Key)
		}
		tree, err := core.Build(pairs[lo:hi], opt)
		if err != nil {
			for _, sub := range s.subs {
				sub.Close()
			}
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if opt.Device == nil {
			// All shards share one simulated card, the deployment the
			// paper envisions for a database with many indexes.
			opt.Device = tree.Device()
		}
		s.subs = append(s.subs, NewServer(tree))
	}
	for i := range s.pumps {
		s.pumps[i] = make(chan shardJob[K])
		s.pumpWG.Add(1)
		go s.pump(i)
	}
	return s, nil
}

// NewShardedServer shards an existing tree: its pairs are materialised
// in key order and rebuilt as T shard trees on the same simulated
// device. t itself is left untouched (and no longer needed for
// serving); the caller may Close it to release its device replica.
func NewShardedServer[K keys.Key](t *core.Tree[K], shards int) (*ShardedServer[K], error) {
	pairs := make([]keys.Pair[K], 0, t.NumPairs())
	var zero K
	cur := t.Seek(zero)
	for {
		p, ok := cur.Next()
		if !ok {
			break
		}
		pairs = append(pairs, p)
	}
	opt := t.Options()
	opt.Device = t.Device()
	return BuildSharded(pairs, opt, shards)
}

// route returns the shard owning key k: the number of shard lower
// bounds at or below k. Manual binary search keeps the hot lookup path
// free of closures and allocations.
func (s *ShardedServer[K]) route(k K) int {
	lo, hi := 0, len(s.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if k < s.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Shards returns the shard count T.
func (s *ShardedServer[K]) Shards() int { return len(s.subs) }

// Bounds returns the shard lower bounds (len T-1), fixed at
// construction.
func (s *ShardedServer[K]) Bounds() []K { return s.bounds }

// pump is shard i's dedicated update worker: it applies the shard's
// write jobs serially — each a clone-aside-and-swap on 1/T of the data
// — while pumps of other shards run concurrently.
func (s *ShardedServer[K]) pump(i int) {
	defer s.pumpWG.Done()
	for job := range s.pumps[i] {
		var d shardDone
		if job.rebuild {
			d.stats, d.err = s.subs[i].RebuildCtx(job.ctx, job.pairs)
		} else {
			d.stats, d.err = s.subs[i].UpdateCtx(job.ctx, job.ops, job.method)
		}
		job.done <- d
	}
}

// dispatch hands one job per selected shard to the pumps and merges the
// outcomes: counters sum across shards, while each virtual-time
// component reports the slowest shard — the makespan of the concurrent
// execution. build must return false for shards with no work.
//
// ctx bounds both the pump hand-off (a stalled pump no longer parks the
// dispatcher) and the outcome wait. The done channel is buffered to the
// shard count, so an abandoned dispatch never blocks a pump delivering
// a late outcome — the job still completes on its shard, the caller
// just stops waiting (per-shard atomicity: a deadline reply means
// "outcome unknown on some shards", exactly like any distributed write
// timeout).
func (s *ShardedServer[K]) dispatch(ctx context.Context, build func(i int) (shardJob[K], bool)) (core.UpdateStats, error) {
	s.pumpMu.RLock()
	if s.closed {
		s.pumpMu.RUnlock()
		return core.UpdateStats{}, ErrClosed
	}
	done := make(chan shardDone, len(s.subs))
	n := 0
	expired := false
	for i := range s.subs {
		job, ok := build(i)
		if !ok {
			continue
		}
		job.ctx = ctx
		job.done = done
		select {
		case s.pumps[i] <- job:
			n++
		case <-ctx.Done():
			expired = true
		}
		if expired {
			break
		}
	}
	s.pumpMu.RUnlock()
	var agg core.UpdateStats
	var firstErr error
	maxDur := func(a, b vclock.Duration) vclock.Duration {
		if b > a {
			return b
		}
		return a
	}
	for ; n > 0; n-- {
		var d shardDone
		select {
		case d = <-done:
		case <-ctx.Done():
			expired = true
		}
		if expired {
			break
		}
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
			}
			continue
		}
		agg.Ops += d.stats.Ops
		agg.Applied += d.stats.Applied
		agg.NotFound += d.stats.NotFound
		agg.Structural += d.stats.Structural
		agg.DirtyNodes += d.stats.DirtyNodes
		agg.HostTime = maxDur(agg.HostTime, d.stats.HostTime)
		agg.SyncTime = maxDur(agg.SyncTime, d.stats.SyncTime)
		agg.LSegBuild = maxDur(agg.LSegBuild, d.stats.LSegBuild)
		agg.ISegBuild = maxDur(agg.ISegBuild, d.stats.ISegBuild)
	}
	if expired {
		s.deadlines.Add(1)
		if firstErr == nil {
			firstErr = ErrDeadlineExceeded
		}
	}
	return agg, firstErr
}

// Update splits ops by shard and applies the sub-batches concurrently,
// one clone-aside-and-swap per touched shard. Per-shard sub-batches
// keep their submission order, so same-key ops retain last-write-wins
// semantics; shards that fail leave their published version untouched
// while other shards may have applied (per-shard, not cross-shard,
// atomicity — see the type contract).
func (s *ShardedServer[K]) Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	return s.UpdateCtx(context.Background(), ops, method)
}

// UpdateCtx is Update with a caller deadline over the whole dispatch:
// pump hand-off, per-shard writer waits, and outcome collection.
func (s *ShardedServer[K]) UpdateCtx(ctx context.Context, ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	groups := make([][]cpubtree.Op[K], len(s.subs))
	for _, op := range ops {
		i := s.route(op.Key)
		groups[i] = append(groups[i], op)
	}
	return s.dispatch(ctx, func(i int) (shardJob[K], bool) {
		if len(groups[i]) == 0 {
			return shardJob[K]{}, false
		}
		return shardJob[K]{ops: groups[i], method: method}, true
	})
}

// Rebuild partitions the sorted replacement pairs by the fixed shard
// bounds and rebuilds every shard concurrently (implicit variant). The
// replacement must leave no shard empty: bounds do not move, and an
// empty shard tree cannot be built.
func (s *ShardedServer[K]) Rebuild(pairs []keys.Pair[K]) (core.UpdateStats, error) {
	return s.RebuildCtx(context.Background(), pairs)
}

// RebuildCtx is Rebuild with a caller deadline over the whole dispatch.
func (s *ShardedServer[K]) RebuildCtx(ctx context.Context, pairs []keys.Pair[K]) (core.UpdateStats, error) {
	parts := make([][]keys.Pair[K], len(s.subs))
	lo := 0
	for i := range s.subs {
		hi := len(pairs)
		if i < len(s.bounds) {
			b := s.bounds[i]
			hi = lo + sort.Search(len(pairs)-lo, func(j int) bool { return pairs[lo+j].Key >= b })
		}
		parts[i] = pairs[lo:hi]
		lo = hi
	}
	for i, part := range parts {
		if len(part) == 0 {
			return core.UpdateStats{}, fmt.Errorf("serve: rebuild leaves shard %d empty (shard bounds are fixed at construction)", i)
		}
	}
	return s.dispatch(ctx, func(i int) (shardJob[K], bool) {
		return shardJob[K]{pairs: parts[i], rebuild: true}, true
	})
}

// Lookup routes one point lookup to the shard owning q; the path is
// allocation-free (binary-search route plus the shard Server's
// snapshot-pinned lookup).
func (s *ShardedServer[K]) Lookup(q K) (K, bool) {
	return s.subs[s.route(q)].Lookup(q)
}

// LookupBatch splits the queries by shard, runs the per-shard
// heterogeneous batch searches concurrently, and scatters the results
// back into query order. The merged stats sum queries and buckets;
// SimTime is the slowest shard's makespan.
func (s *ShardedServer[K]) LookupBatch(queries []K) ([]K, []bool, core.SearchStats, error) {
	values := make([]K, len(queries))
	found := make([]bool, len(queries))
	stats, err := s.LookupBatchInto(queries, values, found)
	return values, found, stats, err
}

// LookupBatchInto is LookupBatch into caller-owned result slices (at
// least len(queries) long each). Unlike the single-tree path it is not
// allocation-free: the split and scatter buffers are per-call.
func (s *ShardedServer[K]) LookupBatchInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	qs := make([][]K, len(s.subs))
	idx := make([][]int, len(s.subs))
	for p, q := range queries {
		i := s.route(q)
		qs[i] = append(qs[i], q)
		idx[i] = append(idx[i], p)
	}
	subVals := make([][]K, len(s.subs))
	subFound := make([][]bool, len(s.subs))
	subStats := make([]core.SearchStats, len(s.subs))
	errs := make([]error, len(s.subs))
	var wg sync.WaitGroup
	for i := range s.subs {
		if len(qs[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subVals[i], subFound[i], subStats[i], errs[i] = s.subs[i].LookupBatch(qs[i])
		}(i)
	}
	wg.Wait()
	var agg core.SearchStats
	agg.BucketSize = s.subs[0].Options().BucketSize
	for i := range s.subs {
		if len(qs[i]) == 0 {
			continue
		}
		if errs[i] != nil {
			return agg, errs[i]
		}
		for j, p := range idx[i] {
			values[p] = subVals[i][j]
			found[p] = subFound[i][j]
		}
		agg.Queries += subStats[i].Queries
		agg.Buckets += subStats[i].Buckets
		if subStats[i].SimTime > agg.SimTime {
			agg.SimTime = subStats[i].SimTime
		}
	}
	if agg.SimTime > 0 {
		agg.ThroughputQPS = float64(agg.Queries) / agg.SimTime.Seconds()
	}
	return agg, nil
}

// RangeQuery returns up to count pairs with key >= start, stitched in
// key order across shard boundaries: the owning shard is read first,
// and each following shard continues from its own lower bound until
// count pairs are collected or the key space is exhausted. Shard
// ranges are disjoint and ascending, so concatenation preserves order.
func (s *ShardedServer[K]) RangeQuery(start K, count int) []keys.Pair[K] {
	out := make([]keys.Pair[K], 0, count)
	for i := s.route(start); i < len(s.subs) && len(out) < count; i++ {
		from := start
		if i > 0 && s.bounds[i-1] > start {
			from = s.bounds[i-1]
		}
		out = append(out, s.subs[i].RangeQuery(from, count-len(out))...)
	}
	return out
}

// Scan is the cursor-walk counterpart of RangeQuery with the same
// cross-shard stitching.
func (s *ShardedServer[K]) Scan(start K, count int) []keys.Pair[K] {
	out := make([]keys.Pair[K], 0, count)
	for i := s.route(start); i < len(s.subs) && len(out) < count; i++ {
		from := start
		if i > 0 && s.bounds[i-1] > start {
			from = s.bounds[i-1]
		}
		out = append(out, s.subs[i].Scan(from, count-len(out))...)
	}
	return out
}

// Metrics returns the serving counters summed across shards. The
// aggregate BreakerState reports the worst shard (open > half-open >
// closed), so one degraded shard is visible at the top level.
func (s *ShardedServer[K]) Metrics() Metrics {
	var agg Metrics
	for _, sub := range s.subs {
		m := sub.Metrics()
		agg.Lookups += m.Lookups
		agg.BatchedQueries += m.BatchedQueries
		agg.Batches += m.Batches
		agg.Updates += m.Updates
		agg.Swaps += m.Swaps
		agg.GPUFaults += m.GPUFaults
		agg.Retries += m.Retries
		agg.FallbackBatches += m.FallbackBatches
		agg.FallbackQueries += m.FallbackQueries
		agg.Deadlines += m.Deadlines
		agg.BreakerTrips += m.BreakerTrips
		agg.BreakerState = worseState(agg.BreakerState, m.BreakerState)
		agg.VirtualTime += m.VirtualTime
	}
	agg.Deadlines += s.deadlines.Load()
	return agg
}

// SetResilience applies one breaker/retry policy to every shard server
// (each shard keeps its own independent breaker instance).
func (s *ShardedServer[K]) SetResilience(b breaker.Options, r RetryOptions) {
	for _, sub := range s.subs {
		sub.SetResilience(b, r)
	}
}

// ForceBreakerOpen pins (or releases) every shard's breaker open — the
// bench harness's lever for measuring pure CPU-fallback throughput.
func (s *ShardedServer[K]) ForceBreakerOpen(on bool) {
	for _, sub := range s.subs {
		sub.Breaker().ForceOpen(on)
	}
}

// ShardMetrics returns each shard's own serving counters, index-aligned
// with the shard order (ascending key ranges).
func (s *ShardedServer[K]) ShardMetrics() []Metrics {
	out := make([]Metrics, len(s.subs))
	for i, sub := range s.subs {
		out[i] = sub.Metrics()
	}
	return out
}

// ShardStats returns each shard tree's geometry, index-aligned with the
// shard order.
func (s *ShardedServer[K]) ShardStats() []cpubtree.Stats {
	out := make([]cpubtree.Stats, len(s.subs))
	for i, sub := range s.subs {
		out[i] = sub.Stats()
	}
	return out
}

// ResetMetrics zeroes every shard's serving counters.
func (s *ShardedServer[K]) ResetMetrics() {
	for _, sub := range s.subs {
		sub.ResetMetrics()
	}
}

// Swaps returns the total snapshot publications across all shards.
func (s *ShardedServer[K]) Swaps() int64 {
	var n int64
	for _, sub := range s.subs {
		n += sub.Swaps()
	}
	return n
}

// Stats aggregates the shard trees' geometry: pair counts and segment
// bytes sum; height and per-lookup line touches report the deepest
// shard.
func (s *ShardedServer[K]) Stats() cpubtree.Stats {
	var agg cpubtree.Stats
	for _, sub := range s.subs {
		st := sub.Stats()
		agg.NumPairs += st.NumPairs
		agg.InnerBytes += st.InnerBytes
		agg.LeafBytes += st.LeafBytes
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
		if st.LinesPerQuery > agg.LinesPerQuery {
			agg.LinesPerQuery = st.LinesPerQuery
		}
	}
	return agg
}

// NumPairs returns the stored pair count across all shards.
func (s *ShardedServer[K]) NumPairs() int {
	n := 0
	for _, sub := range s.subs {
		n += sub.NumPairs()
	}
	return n
}

// Describe concatenates each shard's report under a shard header.
func (s *ShardedServer[K]) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded serving: %d shards by key range\n", len(s.subs))
	for i, sub := range s.subs {
		fmt.Fprintf(&b, "--- shard %d ---\n", i)
		b.WriteString(sub.Describe())
	}
	return b.String()
}

// DeviceCounters snapshots the shared simulated GPU's hardware
// counters (all shards live on one card).
func (s *ShardedServer[K]) DeviceCounters() gpusim.Counters {
	return s.subs[0].DeviceCounters()
}

// Options returns the shard trees' common configuration.
func (s *ShardedServer[K]) Options() core.Options { return s.subs[0].Options() }

// PointLookupCost returns the modelled per-request lookup cost of the
// first shard (shards share one configuration and key distribution).
func (s *ShardedServer[K]) PointLookupCost() vclock.Duration {
	return s.subs[0].PointLookupCost()
}

// Close drains the per-shard update pumps — jobs already dispatched
// complete and deliver their results — then releases every shard's
// snapshot and device buffers. Writes arriving after Close fail with
// ErrClosed. Close is idempotent.
func (s *ShardedServer[K]) Close() {
	s.closeOnce.Do(func() {
		s.pumpMu.Lock()
		s.closed = true
		for _, p := range s.pumps {
			close(p)
		}
		s.pumpMu.Unlock()
		s.pumpWG.Wait()
		for _, sub := range s.subs {
			sub.Close()
		}
	})
}

// ShardedCoalescer routes coalesced point lookups to a per-shard
// coalescer group: each shard Server gets its own Coalescer (the
// "coalescer shard group" of the NUMA stand-in — batches form and
// flush against the tree they will search), and submissions route by
// key exactly like direct lookups. The coalesced route stays
// allocation-free in steady state.
type ShardedCoalescer[K keys.Key] struct {
	s   *ShardedServer[K]
	cos []*Coalescer[K]
}

// Coalesce starts one coalescer per shard over the shard's Server.
// When opt.Shards is zero, each per-shard coalescer gets
// GOMAXPROCS/T pending queues (at least one) so the total queue count
// stays at GOMAXPROCS across the server. Admission control
// (opt.MaxPending, opt.Shed) applies per pending queue, exactly as on
// a single-tree Coalescer.
func (s *ShardedServer[K]) Coalesce(opt Options) *ShardedCoalescer[K] {
	if opt.Shards <= 0 {
		opt.Shards = max(1, runtime.GOMAXPROCS(0)/len(s.subs))
	}
	cos := make([]*Coalescer[K], len(s.subs))
	for i := range cos {
		cos[i] = NewCoalescer(s.subs[i], opt)
	}
	return &ShardedCoalescer[K]{s: s, cos: cos}
}

// Lookup routes one coalesced lookup to the owning shard's coalescer
// and blocks for the batched result.
func (c *ShardedCoalescer[K]) Lookup(key K) (K, bool, error) {
	return c.cos[c.s.route(key)].Lookup(key)
}

// LookupCtx is Lookup with a caller deadline (see Coalescer.LookupCtx).
func (c *ShardedCoalescer[K]) LookupCtx(ctx context.Context, key K) (K, bool, error) {
	return c.cos[c.s.route(key)].LookupCtx(ctx, key)
}

// Submit routes one lookup to the owning shard's coalescer and returns
// its result channel.
func (c *ShardedCoalescer[K]) Submit(key K) <-chan Result[K] {
	return c.cos[c.s.route(key)].Submit(key)
}

// Batches returns the number of flushed batches across all shards.
func (c *ShardedCoalescer[K]) Batches() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Batches()
	}
	return n
}

// Queries returns the requests served through batches across all
// shards.
func (c *ShardedCoalescer[K]) Queries() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Queries()
	}
	return n
}

// Shed returns the requests refused with ErrOverloaded across all
// shards.
func (c *ShardedCoalescer[K]) Shed() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Shed()
	}
	return n
}

// Deadlines returns the requests abandoned with ErrDeadlineExceeded
// across all shards.
func (c *ShardedCoalescer[K]) Deadlines() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Deadlines()
	}
	return n
}

// Close closes every shard's coalescer, failing their pending requests
// with ErrClosed.
func (c *ShardedCoalescer[K]) Close() {
	for _, co := range c.cos {
		co.Close()
	}
}
