package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hbtree/internal/breaker"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/epoch"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// Key-space sharded serving (DESIGN §6). The snapshot Server turns
// every batch update into a whole-tree clone and serialises all writers
// behind one mutex, so write cost is O(data) and rebuilds cannot
// overlap — the scaling wall the ROADMAP's "sharded trees" item names.
// ShardedServer partitions the key space across T independent trees,
// each behind its own shard Server with a dedicated update-pump
// goroutine (the per-shard worker pool standing in for NUMA placement
// until real NUMA is observable). Writers clone 1/T of the data and
// shards rebuild concurrently, so clone cost drops to O(data/T) and
// update throughput scales with cores; point lookups route by key and
// stay allocation-free; range reads stitch ordered results across shard
// boundaries.
//
// All T shard versions live in ONE epoch.Registry: the registry's
// vector holds every shard's current tree and its metadata carries the
// split-key table. A per-shard update publishes only its own slot
// (sharing the other T-1 by reference), while a rebalance installs a
// new table and a new tree set as one whole-vector transition — which
// is what makes ScanConsistent/RangeQueryConsistent an atomic
// cross-shard cut at the cost of a single pin, and lets the shard
// layout change online without ever blocking readers.

// shardMeta is the registry metadata published atomically with the
// shard tree vector: the split-key table, the shard servers serving
// each slot, and a table generation bumped by every rebalance.
type shardMeta[K keys.Key] struct {
	bounds []K          // lower bounds of shards 1..T-1
	subs   []*Server[K] // shard servers, index-aligned with the vector
	gen    uint64       // split-key table generation
}

// route returns the shard owning key k under this table: the number of
// shard lower bounds at or below k. Manual binary search keeps the hot
// lookup path free of closures and allocations.
func (m *shardMeta[K]) route(k K) int {
	lo, hi := 0, len(m.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if k < m.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// shardJob is one unit of write work handed to an update pump: a batch
// of routed ops, a rebuild of one shard's key range, or a rebalance
// barrier. ctx carries the dispatcher's deadline into the pump's writer
// wait; sub binds the job to the shard server it was routed to at
// dispatch time.
type shardJob[K keys.Key] struct {
	ctx     context.Context
	sub     *Server[K]
	pump    int
	ops     []cpubtree.Op[K]
	pairs   []keys.Pair[K]
	rebuild bool
	barrier bool
	method  core.UpdateMethod
	done    chan<- shardDone
}

// shardDone reports one pump's job outcome back to the dispatcher.
type shardDone struct {
	stats core.UpdateStats
	err   error
}

// ShardedServer partitions the key space across T shard Servers behind
// one epoch registry. Shard i (i > 0) serves keys in
// [bounds[i-1], bounds[i]); shard 0 serves everything below bounds[0]
// and the last shard everything from its lower bound up. The bounds are
// set at construction from the initial key distribution and move only
// through rebalancing (SplitShard/MergeShards/CheckRebalance), each
// move one atomic epoch transition.
//
// Contract (DESIGN §6): point and batch lookups observe the epoch
// current at their pin; a cross-shard RangeQuery or Scan re-pins as the
// stitch walks the key space, so it is per-segment consistent —
// ordered, never torn within a segment, gap- and duplicate-free across
// concurrent rebalances — but not a single atomic cut.
// ScanConsistent/RangeQueryConsistent pin ONE epoch for the whole
// stitch and are the atomic cross-shard cut. Update splits its ops by
// shard and applies the per-shard sub-batches concurrently (each one a
// clone-aside-and-publish on 1/T of the data); ops for the same key
// keep their submission order because routing preserves relative order
// within a shard. Rebuild partitions the replacement pairs by the
// current bounds and rebuilds all shards concurrently.
type ShardedServer[K keys.Key] struct {
	reg *epoch.Registry[*core.Tree[K], shardMeta[K]]
	opt core.Options // shard build options; Device is the shared card

	// Per-shard update pumps: one goroutine per shard applies that
	// shard's write jobs serially, so writers on different shards never
	// contend while a single shard's writes stay ordered. pumpMu
	// excludes Close and rebalancing (which replace the channel set)
	// from in-flight dispatches.
	pumps  []chan shardJob[K]
	pumpWG sync.WaitGroup
	pumpMu sync.RWMutex
	closed bool

	// deadlines counts writes abandoned at the dispatch layer (pump send
	// or outcome wait); per-shard waits are counted by the sub-servers.
	deadlines atomic.Int64

	// spanSink, when armed, receives the wall time of every pump-applied
	// write job — the write-path latency feed for adaptive admission
	// (Coalesce wires it to the coalescer controller when TargetP99 is
	// set). nil costs the pump nothing.
	spanSink atomic.Pointer[func(time.Duration)]

	// Recorded resilience policy, inherited by shard servers created
	// during a rebalance (fresh breaker instances — shared ones would
	// double-count trips in the aggregate).
	polMu      sync.Mutex
	polSet     bool
	polBrk     breaker.Options
	polRetry   RetryOptions
	polDelta   bool // delta-leaves fast path disabled (polMu)
	forcedOpen atomic.Bool

	// updScratch pools UpdateCtx's per-flush routing scratch (the
	// per-shard op groups and the job list), so the steady-state update
	// pump allocates nothing at the dispatch layer. Scratch is returned
	// to the pool only after every outcome was collected — an abandoned
	// dispatch leaves its jobs (which alias the scratch's op groups)
	// running on the pumps.
	updScratch sync.Pool

	// Rebalancing state (rebalance.go). rbMu serialises the detector
	// and the manual split/merge entry points.
	rbMu       sync.Mutex
	rbLastGen  uint64
	rbLast     []int64
	rebalances atomic.Int64
	splits     atomic.Int64
	merges     atomic.Int64
	lastRb     atomic.Pointer[string]
	rbStop     chan struct{}
	rbWG       sync.WaitGroup

	// Counters of shard servers replaced by rebalances, folded into the
	// aggregates so metrics stay continuous across layout changes.
	retMu   sync.Mutex
	retired Metrics

	// layoutHook, when set, runs after every committed rebalance
	// transition with the new table generation and shard count — the
	// durability layer's barrier writer (DESIGN §8).
	hookMu     sync.Mutex
	layoutHook func(gen uint64, shards int)

	closeOnce sync.Once
}

// SetLayoutHook registers fn to run after every committed rebalance
// transition, with the new split-key table generation and shard count.
// The hook runs on the rebalancing goroutine while the layout change is
// still excluding dispatches, so it must not write through the server.
// A nil fn clears the hook.
func (s *ShardedServer[K]) SetLayoutHook(fn func(gen uint64, shards int)) {
	s.hookMu.Lock()
	s.layoutHook = fn
	s.hookMu.Unlock()
}

// notifyLayout invokes the registered layout hook, if any.
func (s *ShardedServer[K]) notifyLayout(gen uint64, shards int) {
	s.hookMu.Lock()
	fn := s.layoutHook
	s.hookMu.Unlock()
	if fn != nil {
		fn(gen, shards)
	}
}

// BuildSharded builds a ShardedServer over T trees from sorted,
// distinct pairs: the pairs are cut into T equal contiguous runs, the
// run boundaries become the initial shard bounds, and every shard tree
// is built with opt on one shared simulated device (opt.Device, or the
// first shard's device when nil). shards <= 0 selects GOMAXPROCS.
func BuildSharded[K keys.Key](pairs []keys.Pair[K], opt core.Options, shards int) (*ShardedServer[K], error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if len(pairs) < shards {
		return nil, fmt.Errorf("serve: %d pairs cannot populate %d shards", len(pairs), shards)
	}
	bounds := make([]K, 0, shards-1)
	trees := make([]*core.Tree[K], 0, shards)
	for i := 0; i < shards; i++ {
		lo, hi := i*len(pairs)/shards, (i+1)*len(pairs)/shards
		if i > 0 {
			bounds = append(bounds, pairs[lo].Key)
		}
		tree, err := core.Build(pairs[lo:hi], opt)
		if err != nil {
			for _, t := range trees {
				t.Close()
			}
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		if opt.Device == nil {
			// All shards share one simulated card, the deployment the
			// paper envisions for a database with many indexes.
			opt.Device = tree.Device()
		}
		trees = append(trees, tree)
	}
	return newShardedFromTrees(trees, bounds, opt, 1), nil
}

// newShardedFromTrees assembles a ShardedServer over already-built
// shard trees: trees[i] serves [bounds[i-1], bounds[i]) (open-ended at
// the edges) and gen seeds the split-key table generation — 1 for a
// fresh build, the recovered manifest's generation when the durability
// layer restores a layout. Ownership of the trees passes to the server.
func newShardedFromTrees[K keys.Key](trees []*core.Tree[K], bounds []K, opt core.Options, gen uint64) *ShardedServer[K] {
	if opt.Device == nil {
		opt.Device = trees[0].Device()
	}
	s := &ShardedServer[K]{opt: opt}
	subs := make([]*Server[K], len(trees))
	for i, t := range trees {
		subs[i] = newShardMember(t, nil, i)
	}
	s.reg = epoch.New(trees, shardMeta[K]{bounds: bounds, subs: subs, gen: gen},
		func(t *core.Tree[K]) { t.Close() })
	for _, sub := range subs {
		sub.reg = s.reg
	}
	s.pumps = make([]chan shardJob[K], len(trees))
	for i := range s.pumps {
		s.pumps[i] = make(chan shardJob[K])
		s.pumpWG.Add(1)
		go s.pumpLoop(s.pumps[i])
	}
	return s
}

// NewShardedServer shards an existing tree: its pairs are materialised
// in key order and rebuilt as T shard trees on the same simulated
// device. t itself is left untouched (and no longer needed for
// serving); the caller may Close it to release its device replica.
func NewShardedServer[K keys.Key](t *core.Tree[K], shards int) (*ShardedServer[K], error) {
	opt := t.Options()
	opt.Device = t.Device()
	return BuildSharded(materialisePairs(t), opt, shards)
}

// materialisePairs walks a tree's cursor from the bottom of the key
// space and collects every stored pair in key order.
func materialisePairs[K keys.Key](t *core.Tree[K]) []keys.Pair[K] {
	out := make([]keys.Pair[K], 0, t.NumPairs())
	var zero K
	cur := t.Seek(zero)
	for {
		p, ok := cur.Next()
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

// members returns the current shard servers. The slice is immutable
// once published; rebalances install a fresh one.
func (s *ShardedServer[K]) members() []*Server[K] { return s.reg.Meta().subs }

// route returns the shard owning key k under the current split-key
// table (advisory across a concurrent rebalance; read paths re-resolve
// under their pin).
func (s *ShardedServer[K]) route(k K) int {
	m := s.reg.Meta()
	return m.route(k)
}

// Shards returns the current shard count T.
func (s *ShardedServer[K]) Shards() int { return s.reg.Len() }

// LevelWidths returns the first shard tree's per-level key-slot widths
// (all shards are built from one Options policy, so their layouts agree
// up to height differences from uneven shard sizes).
func (s *ShardedServer[K]) LevelWidths() []int { return s.members()[0].LevelWidths() }

// LayoutAdvice recommends per-level root widths from the first shard's
// probe histogram (see Server.LayoutAdvice).
func (s *ShardedServer[K]) LayoutAdvice() []int { return s.members()[0].LayoutAdvice() }

// Bounds returns the current shard lower bounds (len T-1).
func (s *ShardedServer[K]) Bounds() []K { return s.reg.Meta().bounds }

// Epoch returns the registry's current generation stamp: it advances on
// every per-shard publication and every rebalance transition.
func (s *ShardedServer[K]) Epoch() uint64 { return s.reg.Epoch() }

// pumpLoop is an update worker: it applies routed write jobs serially
// against whatever shard server each job carries, and echoes barrier
// jobs back (the rebalancer's drain handshake). Workers are anonymous —
// shard identity lives in the job, so the worker set survives layout
// changes unchanged.
func (s *ShardedServer[K]) pumpLoop(ch chan shardJob[K]) {
	defer s.pumpWG.Done()
	for job := range ch {
		if job.barrier {
			job.done <- shardDone{}
			continue
		}
		var d shardDone
		if sink := s.spanSink.Load(); sink != nil {
			t0 := time.Now()
			if job.rebuild {
				d.stats, d.err = job.sub.RebuildCtx(job.ctx, job.pairs)
			} else {
				d.stats, d.err = job.sub.UpdateCtx(job.ctx, job.ops, job.method)
			}
			(*sink)(time.Since(t0))
		} else if job.rebuild {
			d.stats, d.err = job.sub.RebuildCtx(job.ctx, job.pairs)
		} else {
			d.stats, d.err = job.sub.UpdateCtx(job.ctx, job.ops, job.method)
		}
		job.done <- d
	}
}

// SetSpanSink arms (or, with nil, disarms) the pump span feed: fn
// receives the wall time of every subsequent pump-applied write job.
// Used by adaptive admission so write-path cost shifts (delta vs clone
// lanes, rebuilds) move the read-side window.
func (s *ShardedServer[K]) SetSpanSink(fn func(time.Duration)) {
	if fn == nil {
		s.spanSink.Store(nil)
		return
	}
	s.spanSink.Store(&fn)
}

// dispatch routes one write batch: build receives the pinned shard
// table and returns the per-shard jobs, which are handed to the pumps
// and their outcomes merged — counters sum across shards, while each
// virtual-time component reports the slowest shard (the makespan of the
// concurrent execution).
//
// The jobs are built and sent under one registry pin and the pump read
// lock, so a rebalance cannot slide between routing and hand-off: every
// job reaches the pump targeting a shard server that is current at send
// time, and the rebalancer's barrier drains it before any layout
// change.
//
// ctx bounds both the pump hand-off (a stalled pump no longer parks the
// dispatcher) and the outcome wait. The done channel is buffered to the
// job count, so an abandoned dispatch never blocks a pump delivering a
// late outcome — the job still completes on its shard, the caller just
// stops waiting (per-shard atomicity: a deadline reply means "outcome
// unknown on some shards", exactly like any distributed write timeout).
func (s *ShardedServer[K]) dispatch(ctx context.Context, build func(m *shardMeta[K]) ([]shardJob[K], error)) (core.UpdateStats, error) {
	s.pumpMu.RLock()
	if s.closed {
		s.pumpMu.RUnlock()
		return core.UpdateStats{}, ErrClosed
	}
	p := s.reg.Pin()
	m := p.Meta()
	jobs, err := build(&m)
	p.Unpin()
	if err != nil {
		s.pumpMu.RUnlock()
		return core.UpdateStats{}, err
	}
	done := make(chan shardDone, len(jobs))
	n := 0
	expired := false
	for _, job := range jobs {
		job.ctx = ctx
		job.done = done
		select {
		case s.pumps[job.pump] <- job:
			n++
		case <-ctx.Done():
			expired = true
		}
		if expired {
			break
		}
	}
	s.pumpMu.RUnlock()
	var agg core.UpdateStats
	var firstErr error
	okJobs, inplaceJobs := 0, 0
	maxDur := func(a, b vclock.Duration) vclock.Duration {
		if b > a {
			return b
		}
		return a
	}
	for ; n > 0; n-- {
		var d shardDone
		select {
		case d = <-done:
		case <-ctx.Done():
			expired = true
		}
		if expired {
			break
		}
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
			}
			continue
		}
		agg.Ops += d.stats.Ops
		agg.Applied += d.stats.Applied
		agg.NotFound += d.stats.NotFound
		agg.Structural += d.stats.Structural
		agg.DirtyNodes += d.stats.DirtyNodes
		agg.ClonedNodes += d.stats.ClonedNodes
		agg.ClonedBytes += d.stats.ClonedBytes
		agg.HostTime = maxDur(agg.HostTime, d.stats.HostTime)
		agg.SyncTime = maxDur(agg.SyncTime, d.stats.SyncTime)
		agg.LSegBuild = maxDur(agg.LSegBuild, d.stats.LSegBuild)
		agg.ISegBuild = maxDur(agg.ISegBuild, d.stats.ISegBuild)
		okJobs++
		if d.stats.InPlace {
			inplaceJobs++
		}
	}
	// The aggregate is in-place only when every touched shard was.
	agg.InPlace = okJobs > 0 && inplaceJobs == okJobs
	if expired {
		s.deadlines.Add(1)
		if firstErr == nil {
			firstErr = ErrDeadlineExceeded
		}
	}
	return agg, firstErr
}

// Update splits ops by shard and applies the sub-batches concurrently,
// one clone-aside-and-publish per touched shard. Per-shard sub-batches
// keep their submission order, so same-key ops retain last-write-wins
// semantics; shards that fail leave their published version untouched
// while other shards may have applied (per-shard, not cross-shard,
// atomicity — see the type contract).
func (s *ShardedServer[K]) Update(ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	return s.UpdateCtx(context.Background(), ops, method)
}

// updateScratch is the pooled routing scratch of one UpdateCtx flush.
type updateScratch[K keys.Key] struct {
	groups [][]cpubtree.Op[K]
	jobs   []shardJob[K]
}

// UpdateCtx is Update with a caller deadline over the whole dispatch:
// pump hand-off, per-shard writer waits, and outcome collection.
func (s *ShardedServer[K]) UpdateCtx(ctx context.Context, ops []cpubtree.Op[K], method core.UpdateMethod) (core.UpdateStats, error) {
	sc, _ := s.updScratch.Get().(*updateScratch[K])
	if sc == nil {
		sc = &updateScratch[K]{}
	}
	stats, err := s.dispatch(ctx, func(m *shardMeta[K]) ([]shardJob[K], error) {
		if cap(sc.groups) < len(m.subs) {
			sc.groups = make([][]cpubtree.Op[K], len(m.subs))
		}
		groups := sc.groups[:len(m.subs)]
		for i := range groups {
			groups[i] = groups[i][:0]
		}
		for _, op := range ops {
			i := m.route(op.Key)
			groups[i] = append(groups[i], op)
		}
		sc.groups = groups
		jobs := sc.jobs[:0]
		for i, g := range groups {
			if len(g) == 0 {
				continue
			}
			jobs = append(jobs, shardJob[K]{sub: m.subs[i], pump: i, ops: g, method: method})
		}
		sc.jobs = jobs
		return jobs, nil
	})
	if err == nil {
		// Error-free means every pump delivered its outcome, so nothing
		// aliases the scratch any more; abandoned dispatches drop theirs.
		s.updScratch.Put(sc)
	}
	return stats, err
}

// Rebuild partitions the sorted replacement pairs by the current shard
// bounds and rebuilds every shard concurrently (implicit variant). The
// replacement must leave no shard empty: an empty shard tree cannot be
// built (a later merge can retire a shard, a rebuild cannot).
func (s *ShardedServer[K]) Rebuild(pairs []keys.Pair[K]) (core.UpdateStats, error) {
	return s.RebuildCtx(context.Background(), pairs)
}

// RebuildCtx is Rebuild with a caller deadline over the whole dispatch.
func (s *ShardedServer[K]) RebuildCtx(ctx context.Context, pairs []keys.Pair[K]) (core.UpdateStats, error) {
	return s.dispatch(ctx, func(m *shardMeta[K]) ([]shardJob[K], error) {
		parts := make([][]keys.Pair[K], len(m.subs))
		lo := 0
		for i := range m.subs {
			hi := len(pairs)
			if i < len(m.bounds) {
				b := m.bounds[i]
				hi = lo + sort.Search(len(pairs)-lo, func(j int) bool { return pairs[lo+j].Key >= b })
			}
			parts[i] = pairs[lo:hi]
			lo = hi
		}
		for i, part := range parts {
			if len(part) == 0 {
				return nil, fmt.Errorf("serve: rebuild leaves shard %d empty", i)
			}
		}
		jobs := make([]shardJob[K], 0, len(m.subs))
		for i, part := range parts {
			jobs = append(jobs, shardJob[K]{sub: m.subs[i], pump: i, pairs: part, rebuild: true})
		}
		return jobs, nil
	})
}

// Lookup routes one point lookup to the shard owning q under a single
// registry pin; the path is allocation-free (binary-search route plus
// the shard's pinned lookup).
func (s *ShardedServer[K]) Lookup(q K) (K, bool) {
	p := s.reg.Pin()
	m := p.Meta()
	i := m.route(q)
	v, ok := m.subs[i].lookupPinned(p.Get(i), q)
	p.Unpin()
	return v, ok
}

// LookupBatch splits the queries by shard, runs the per-shard
// heterogeneous batch searches concurrently, and scatters the results
// back into query order. The merged stats sum queries and buckets;
// SimTime is the slowest shard's makespan.
func (s *ShardedServer[K]) LookupBatch(queries []K) ([]K, []bool, core.SearchStats, error) {
	values := make([]K, len(queries))
	found := make([]bool, len(queries))
	stats, err := s.LookupBatchInto(queries, values, found)
	return values, found, stats, err
}

// LookupBatchInto is LookupBatch into caller-owned result slices (at
// least len(queries) long each). The whole batch runs under one
// registry pin — an atomic cross-shard cut. Unlike the single-tree path
// it is not allocation-free: the split and scatter buffers are
// per-call.
func (s *ShardedServer[K]) LookupBatchInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	p := s.reg.Pin()
	defer p.Unpin()
	m := p.Meta()
	T := len(m.subs)
	qs := make([][]K, T)
	idx := make([][]int, T)
	for pos, q := range queries {
		i := m.route(q)
		qs[i] = append(qs[i], q)
		idx[i] = append(idx[i], pos)
	}
	subVals := make([][]K, T)
	subFound := make([][]bool, T)
	subStats := make([]core.SearchStats, T)
	errs := make([]error, T)
	var wg sync.WaitGroup
	for i := 0; i < T; i++ {
		if len(qs[i]) == 0 {
			continue
		}
		subVals[i] = make([]K, len(qs[i]))
		subFound[i] = make([]bool, len(qs[i]))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subStats[i], errs[i] = m.subs[i].lookupBatchPinned(p.Get(i), qs[i], subVals[i], subFound[i])
		}(i)
	}
	wg.Wait()
	var agg core.SearchStats
	agg.BucketSize = s.opt.BucketSize
	for i := 0; i < T; i++ {
		if len(qs[i]) == 0 {
			continue
		}
		if errs[i] != nil {
			return agg, errs[i]
		}
		for j, pos := range idx[i] {
			values[pos] = subVals[i][j]
			found[pos] = subFound[i][j]
		}
		agg.Queries += subStats[i].Queries
		agg.Buckets += subStats[i].Buckets
		if subStats[i].SimTime > agg.SimTime {
			agg.SimTime = subStats[i].SimTime
		}
	}
	if agg.SimTime > 0 {
		agg.ThroughputQPS = float64(agg.Queries) / agg.SimTime.Seconds()
	}
	return agg, nil
}

// RangeQuery returns up to count pairs with key >= start, stitched in
// key order across shard boundaries. Each segment re-pins the registry
// and routes its continuation key under the fresh table, so the stitch
// is gap- and duplicate-free even across a concurrent rebalance: the
// continuation token is the next key, never a shard index. Each segment
// is a consistent snapshot; the whole stitch is not one atomic cut —
// use RangeQueryConsistent for that.
func (s *ShardedServer[K]) RangeQuery(start K, count int) []keys.Pair[K] {
	out := make([]keys.Pair[K], 0, count)
	from := start
	for len(out) < count {
		p := s.reg.Pin()
		m := p.Meta()
		i := m.route(from)
		out = append(out, p.Get(i).RangeQuery(from, count-len(out), nil)...)
		last := i == len(m.subs)-1
		if !last {
			from = m.bounds[i]
		}
		p.Unpin()
		if last {
			break
		}
	}
	return out
}

// Scan is the cursor-walk counterpart of RangeQuery with the same
// per-segment stitching.
func (s *ShardedServer[K]) Scan(start K, count int) []keys.Pair[K] {
	out := make([]keys.Pair[K], 0, count)
	from := start
	for len(out) < count {
		p := s.reg.Pin()
		m := p.Meta()
		i := m.route(from)
		out = scanTree(p.Get(i), from, count, out)
		last := i == len(m.subs)-1
		if !last {
			from = m.bounds[i]
		}
		p.Unpin()
		if last {
			break
		}
	}
	return out
}

// ScanConsistent is Scan against ONE pinned epoch: every shard segment
// reads the same generation, so the result is an atomic cross-shard cut
// — no interleaved update or rebalance is ever partially visible, at
// exactly the cost of a single-slot pin. The pin holds all T shard
// versions alive for the duration, so a slow consistent scan delays
// device-replica reclamation of concurrently superseded versions.
func (s *ShardedServer[K]) ScanConsistent(start K, count int) []keys.Pair[K] {
	p := s.reg.Pin()
	defer p.Unpin()
	m := p.Meta()
	out := make([]keys.Pair[K], 0, count)
	from := start
	for i := m.route(from); i < len(m.subs) && len(out) < count; i++ {
		if i > 0 && m.bounds[i-1] > from {
			from = m.bounds[i-1]
		}
		out = scanTree(p.Get(i), from, count, out)
	}
	return out
}

// RangeQueryConsistent is RangeQuery against one pinned epoch — the
// same atomic cross-shard cut as ScanConsistent.
func (s *ShardedServer[K]) RangeQueryConsistent(start K, count int) []keys.Pair[K] {
	p := s.reg.Pin()
	defer p.Unpin()
	m := p.Meta()
	out := make([]keys.Pair[K], 0, count)
	from := start
	for i := m.route(from); i < len(m.subs) && len(out) < count; i++ {
		if i > 0 && m.bounds[i-1] > from {
			from = m.bounds[i-1]
		}
		out = append(out, p.Get(i).RangeQuery(from, count-len(out), nil)...)
	}
	return out
}

// addMetrics folds o into m (BreakerState is aggregated separately).
func addMetrics(m *Metrics, o Metrics) {
	m.Lookups += o.Lookups
	m.BatchedQueries += o.BatchedQueries
	m.Batches += o.Batches
	m.Updates += o.Updates
	m.Swaps += o.Swaps
	m.NodeProbes += o.NodeProbes
	m.ProbesSaved += o.ProbesSaved
	for i := range o.LevelProbes {
		m.LevelProbes[i] += o.LevelProbes[i]
	}
	m.GPUFaults += o.GPUFaults
	m.Retries += o.Retries
	m.FallbackBatches += o.FallbackBatches
	m.FallbackQueries += o.FallbackQueries
	m.Deadlines += o.Deadlines
	m.Repairs += o.Repairs
	m.InPlaceApplied += o.InPlaceApplied
	m.CloneFallbacks += o.CloneFallbacks
	m.ClonedNodes += o.ClonedNodes
	m.ClonedBytes += o.ClonedBytes
	m.BreakerTrips += o.BreakerTrips
	m.VirtualTime += o.VirtualTime
}

// absorbRetired folds a replaced shard server's counters into the
// retired accumulator so aggregates stay continuous across rebalances.
// Callers hold pumpMu exclusively (the member is quiesced).
func (s *ShardedServer[K]) absorbRetired(sub *Server[K]) {
	m := sub.Metrics()
	s.retMu.Lock()
	addMetrics(&s.retired, m)
	s.retMu.Unlock()
}

// Metrics returns the serving counters summed across current shards
// plus every shard retired by a rebalance. The aggregate BreakerState
// reports the worst current shard (open > half-open > closed), so one
// degraded shard is visible at the top level.
func (s *ShardedServer[K]) Metrics() Metrics {
	s.retMu.Lock()
	agg := s.retired
	s.retMu.Unlock()
	for _, sub := range s.members() {
		m := sub.Metrics()
		addMetrics(&agg, m)
		agg.BreakerState = worseState(agg.BreakerState, m.BreakerState)
	}
	agg.Deadlines += s.deadlines.Load()
	return agg
}

// SetResilience applies one breaker/retry policy to every shard server
// (each shard keeps its own independent breaker instance) and records
// it for shards created by later rebalances.
func (s *ShardedServer[K]) SetResilience(b breaker.Options, r RetryOptions) {
	s.polMu.Lock()
	s.polBrk, s.polRetry, s.polSet = b, r, true
	s.polMu.Unlock()
	for _, sub := range s.members() {
		sub.SetResilience(b, r)
	}
}

// ForceBreakerOpen pins (or releases) every shard's breaker open — the
// bench harness's lever for measuring pure CPU-fallback throughput. The
// setting carries over to shards created by later rebalances.
func (s *ShardedServer[K]) ForceBreakerOpen(on bool) {
	s.forcedOpen.Store(on)
	for _, sub := range s.members() {
		sub.Breaker().ForceOpen(on)
	}
}

// SetDeltaLeaves toggles the in-place gapped-leaf fast path on every
// shard server, and records the setting for shards created by later
// rebalances. Not concurrency-safe with in-flight updates.
func (s *ShardedServer[K]) SetDeltaLeaves(on bool) {
	s.polMu.Lock()
	s.polDelta = !on
	s.polMu.Unlock()
	for _, sub := range s.members() {
		sub.SetDeltaLeaves(on)
	}
}

// applyPolicy stamps the recorded resilience policy, delta-leaves
// setting and forced-open state onto a shard server created during a
// rebalance.
func (s *ShardedServer[K]) applyPolicy(sub *Server[K]) {
	s.polMu.Lock()
	if s.polSet {
		sub.SetResilience(s.polBrk, s.polRetry)
	}
	if s.polDelta {
		sub.SetDeltaLeaves(false)
	}
	s.polMu.Unlock()
	if s.forcedOpen.Load() {
		sub.Breaker().ForceOpen(true)
	}
}

// ShardMetrics returns each current shard's own serving counters,
// index-aligned with the shard order (ascending key ranges).
func (s *ShardedServer[K]) ShardMetrics() []Metrics {
	subs := s.members()
	out := make([]Metrics, len(subs))
	for i, sub := range subs {
		out[i] = sub.Metrics()
	}
	return out
}

// ShardStats returns each shard tree's geometry, index-aligned with the
// shard order.
func (s *ShardedServer[K]) ShardStats() []cpubtree.Stats {
	subs := s.members()
	out := make([]cpubtree.Stats, len(subs))
	for i, sub := range subs {
		out[i] = sub.Stats()
	}
	return out
}

// ResetMetrics zeroes every shard's serving counters and the retired
// accumulator.
func (s *ShardedServer[K]) ResetMetrics() {
	s.retMu.Lock()
	s.retired = Metrics{}
	s.retMu.Unlock()
	s.deadlines.Store(0)
	for _, sub := range s.members() {
		sub.ResetMetrics()
	}
}

// Swaps returns the total snapshot publications across all shards,
// including shards since retired by rebalances.
func (s *ShardedServer[K]) Swaps() int64 {
	s.retMu.Lock()
	n := s.retired.Swaps
	s.retMu.Unlock()
	for _, sub := range s.members() {
		n += sub.Swaps()
	}
	return n
}

// Stats aggregates the shard trees' geometry: pair counts and segment
// bytes sum; height and per-lookup line touches report the deepest
// shard.
func (s *ShardedServer[K]) Stats() cpubtree.Stats {
	var agg cpubtree.Stats
	for _, sub := range s.members() {
		st := sub.Stats()
		agg.NumPairs += st.NumPairs
		agg.InnerBytes += st.InnerBytes
		agg.LeafBytes += st.LeafBytes
		if st.Height > agg.Height {
			agg.Height = st.Height
		}
		if st.LinesPerQuery > agg.LinesPerQuery {
			agg.LinesPerQuery = st.LinesPerQuery
		}
	}
	return agg
}

// NumPairs returns the stored pair count across all shards, under one
// pin so a concurrent rebalance never double-counts moving keys.
func (s *ShardedServer[K]) NumPairs() int {
	p := s.reg.Pin()
	defer p.Unpin()
	n := 0
	for i := 0; i < p.Len(); i++ {
		n += p.Get(i).NumPairs()
	}
	return n
}

// Describe concatenates each shard's report under a shard header.
func (s *ShardedServer[K]) Describe() string {
	subs := s.members()
	var b strings.Builder
	fmt.Fprintf(&b, "sharded serving: %d shards by key range\n", len(subs))
	for i, sub := range subs {
		fmt.Fprintf(&b, "--- shard %d ---\n", i)
		b.WriteString(sub.Describe())
	}
	return b.String()
}

// DeviceCounters snapshots the shared simulated GPU's hardware
// counters (all shards live on one card).
func (s *ShardedServer[K]) DeviceCounters() gpusim.Counters {
	return s.opt.Device.Counters()
}

// Options returns the shard trees' common configuration.
func (s *ShardedServer[K]) Options() core.Options { return s.opt }

// PointLookupCost returns the modelled per-request lookup cost of the
// first shard (shards share one configuration and key distribution).
func (s *ShardedServer[K]) PointLookupCost() vclock.Duration {
	return s.members()[0].PointLookupCost()
}

// Close stops the rebalancer, drains the update pumps — jobs already
// dispatched complete and deliver their results — then retires the
// registry's current epoch: every shard's device buffers are released
// once the last reader pin drains. Writes arriving after Close fail
// with ErrClosed. Close is idempotent.
func (s *ShardedServer[K]) Close() {
	s.closeOnce.Do(func() {
		s.rbMu.Lock()
		stop := s.rbStop
		s.rbMu.Unlock()
		if stop != nil {
			close(stop)
			s.rbWG.Wait()
		}
		s.pumpMu.Lock()
		s.closed = true
		for _, p := range s.pumps {
			close(p)
		}
		s.pumpMu.Unlock()
		s.pumpWG.Wait()
		s.reg.Close()
	})
}

// Backend is what a Coalescer flushes against: the single-tree Server
// and the sharded backend both satisfy it.
type Backend[K keys.Key] interface {
	// LookupBatchInto serves one coalesced batch into the caller's
	// slices (see Server.LookupBatchInto).
	LookupBatchInto(queries []K, values []K, found []bool) (core.SearchStats, error)
	// LookupBatchSortedInto serves one coalesced batch through the
	// shared-descent path (see Server.LookupBatchSortedInto); the
	// coalescer presorts and deduplicates its batches to land on the
	// sorted fast path.
	LookupBatchSortedInto(queries []K, values []K, found []bool) (core.SearchStats, error)
	// Options exposes the tree configuration (MaxBatch defaults to its
	// BucketSize).
	Options() core.Options
	// Degraded reports whether the backend is serving in degraded mode
	// (breaker open, CPU fallback); the coalescer sheds earlier while it
	// holds.
	Degraded() bool
}

// shardBackend adapts a ShardedServer to the Coalescer Backend: one
// flush pins the registry once, then serves each contiguous same-shard
// run of the batch against the pinned trees. With per-shard submission
// routing a batch is a single run (no splitting at all); a mixed batch
// — possible right after a rebalance moved a boundary — degrades to a
// few sub-batches, still correct because the runs are routed under the
// pin. SimTime sums the serial runs.
type shardBackend[K keys.Key] struct {
	s *ShardedServer[K]
}

func (b shardBackend[K]) Options() core.Options { return b.s.Options() }

// Degraded reports whether ANY shard's breaker is open: a mixed batch
// may touch any shard, so admission tightens as soon as one is
// degraded.
func (b shardBackend[K]) Degraded() bool {
	for _, sub := range b.s.members() {
		if sub.Degraded() {
			return true
		}
	}
	return false
}

func (b shardBackend[K]) LookupBatchInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	return b.lookupBatchInto(queries, values, found, false)
}

// LookupBatchSortedInto is the sorted-path flush: the split-key table
// is range-partitioned, so a globally sorted batch decomposes into
// exactly one contiguous run per touched shard — the run walk below
// finds them with no extra work, and each run reaches its shard still
// sorted and duplicate-free (the coalescer's contract).
func (b shardBackend[K]) LookupBatchSortedInto(queries []K, values []K, found []bool) (core.SearchStats, error) {
	return b.lookupBatchInto(queries, values, found, true)
}

func (b shardBackend[K]) lookupBatchInto(queries []K, values []K, found []bool, sorted bool) (core.SearchStats, error) {
	p := b.s.reg.Pin()
	defer p.Unpin()
	m := p.Meta()
	var agg core.SearchStats
	agg.BucketSize = b.s.opt.BucketSize
	agg.Sorted = sorted
	start := 0
	for start < len(queries) {
		i := m.route(queries[start])
		end := start + 1
		for end < len(queries) && m.route(queries[end]) == i {
			end++
		}
		var stats core.SearchStats
		var err error
		if sorted {
			stats, err = m.subs[i].lookupBatchSortedPinned(p.Get(i),
				queries[start:end], values[start:end], found[start:end])
		} else {
			stats, err = m.subs[i].lookupBatchPinned(p.Get(i),
				queries[start:end], values[start:end], found[start:end])
		}
		if err != nil {
			return agg, err
		}
		agg.Queries += stats.Queries
		agg.Buckets += stats.Buckets
		agg.SimTime += stats.SimTime
		agg.NodeProbes += stats.NodeProbes
		agg.ProbesSaved += stats.ProbesSaved
		agg.DedupFolded += stats.DedupFolded
		start = end
	}
	if agg.SimTime > 0 {
		agg.ThroughputQPS = float64(agg.Queries) / agg.SimTime.Seconds()
	}
	return agg, nil
}

// ShardedCoalescer routes coalesced point lookups to a per-shard
// coalescer group over one shared sharded backend: batches form against
// the shard a key routes to at submission (an affinity hint, so a
// steady-state batch flushes as one contiguous run), while flushes
// re-route under a registry pin — which keeps results correct across a
// rebalance that moved the boundary after submission. The coalesced
// route stays allocation-free in steady state.
type ShardedCoalescer[K keys.Key] struct {
	s   *ShardedServer[K]
	cos []*Coalescer[K]
}

// Coalesce starts one coalescer per current shard over the shared
// sharded backend. When opt.Shards is zero, each per-shard coalescer
// gets GOMAXPROCS/T pending queues (at least one) so the total queue
// count stays at GOMAXPROCS across the server. Admission control
// (opt.MaxPending, opt.Shed, opt.DegradedPending) applies per pending
// queue, exactly as on a single-tree Coalescer.
func (s *ShardedServer[K]) Coalesce(opt Options) *ShardedCoalescer[K] {
	T := s.Shards()
	if opt.Shards <= 0 {
		opt.Shards = max(1, runtime.GOMAXPROCS(0)/T)
	}
	be := shardBackend[K]{s: s}
	cos := make([]*Coalescer[K], T)
	for i := range cos {
		cos[i] = NewCoalescer[K](be, opt)
	}
	c := &ShardedCoalescer[K]{s: s, cos: cos}
	if opt.TargetP99 > 0 {
		// Wire the update pumps' spans into every group's controller:
		// the device is shared, so a write-path slowdown anywhere is a
		// latency signal for every shard's read window.
		s.SetSpanSink(c.NoteSpan)
	}
	return c
}

// group picks the coalescer group for a key: the owning shard under the
// current table, clamped for layouts that grew past the group count
// after a split (the group is only an affinity hint — the flush
// re-routes under its own pin).
func (c *ShardedCoalescer[K]) group(key K) *Coalescer[K] {
	i := c.s.route(key)
	if i >= len(c.cos) {
		i = len(c.cos) - 1
	}
	return c.cos[i]
}

// Lookup routes one coalesced lookup to the owning shard's coalescer
// and blocks for the batched result.
func (c *ShardedCoalescer[K]) Lookup(key K) (K, bool, error) {
	return c.group(key).Lookup(key)
}

// LookupCtx is Lookup with a caller deadline (see Coalescer.LookupCtx).
func (c *ShardedCoalescer[K]) LookupCtx(ctx context.Context, key K) (K, bool, error) {
	return c.group(key).LookupCtx(ctx, key)
}

// Submit routes one lookup to the owning shard's coalescer and returns
// its result channel.
func (c *ShardedCoalescer[K]) Submit(key K) <-chan Result[K] {
	return c.group(key).Submit(key)
}

// Batches returns the number of flushed batches across all shards.
func (c *ShardedCoalescer[K]) Batches() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Batches()
	}
	return n
}

// Queries returns the requests served through batches across all
// shards.
func (c *ShardedCoalescer[K]) Queries() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Queries()
	}
	return n
}

// Folded returns the duplicate keys folded by sorted flushes across all
// shards.
func (c *ShardedCoalescer[K]) Folded() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Folded()
	}
	return n
}

// Shed returns the requests refused with ErrOverloaded across all
// shards.
func (c *ShardedCoalescer[K]) Shed() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Shed()
	}
	return n
}

// DegradedShed returns the requests refused by fault-aware admission
// (the shrunken degraded-mode window) across all shards.
func (c *ShardedCoalescer[K]) DegradedShed() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.DegradedShed()
	}
	return n
}

// Deadlines returns the requests abandoned with ErrDeadlineExceeded
// across all shards.
func (c *ShardedCoalescer[K]) Deadlines() int64 {
	var n int64
	for _, co := range c.cos {
		n += co.Deadlines()
	}
	return n
}

// ShedRate returns the sheds/sec over the last second across all
// shards.
func (c *ShardedCoalescer[K]) ShedRate() float64 {
	var r float64
	for _, co := range c.cos {
		r += co.ShedRate()
	}
	return r
}

// AdmitWindow returns the summed per-queue admission windows across all
// shard groups — the server-wide live admission budget.
func (c *ShardedCoalescer[K]) AdmitWindow() int {
	var n int
	for _, co := range c.cos {
		n += co.AdmitWindow()
	}
	return n
}

// TargetP99 returns the configured latency target (0 = static
// admission).
func (c *ShardedCoalescer[K]) TargetP99() time.Duration {
	if len(c.cos) == 0 {
		return 0
	}
	return c.cos[0].TargetP99()
}

// RetryAfter returns the worst (longest) retry hint across the shard
// groups — the conservative advice for a client that cannot tell which
// shard shed it.
func (c *ShardedCoalescer[K]) RetryAfter() time.Duration {
	var ra time.Duration
	for _, co := range c.cos {
		if r := co.RetryAfter(); r > ra {
			ra = r
		}
	}
	return ra
}

// NoteSpan feeds an externally measured span into every shard group's
// admission controller (no-op on static groups).
func (c *ShardedCoalescer[K]) NoteSpan(d time.Duration) {
	for _, co := range c.cos {
		co.NoteSpan(d)
	}
}

// OverloadMetrics returns the aggregate admission-control snapshot:
// counters and rates summed, the window summed, and the worst retry
// hint.
func (c *ShardedCoalescer[K]) OverloadMetrics() OverloadMetrics {
	return OverloadMetrics{
		Shed:         c.Shed(),
		DegradedShed: c.DegradedShed(),
		ShedRate:     c.ShedRate(),
		AdmitWindow:  c.AdmitWindow(),
		TargetP99:    c.TargetP99(),
		RetryAfter:   c.RetryAfter(),
	}
}

// GroupOverload returns the admission-control snapshot of one shard's
// coalescer group (clamped for layouts that grew past the group count
// after a split). The per-shard view behind SHARDSTATS.
func (c *ShardedCoalescer[K]) GroupOverload(i int) OverloadMetrics {
	if i < 0 {
		i = 0
	}
	if i >= len(c.cos) {
		i = len(c.cos) - 1
	}
	return c.cos[i].OverloadMetrics()
}

// Close unhooks the pump span feed and closes every shard's coalescer,
// failing their pending requests with ErrClosed.
func (c *ShardedCoalescer[K]) Close() {
	c.s.SetSpanSink(nil)
	for _, co := range c.cos {
		co.Close()
	}
}
