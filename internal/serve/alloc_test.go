package serve

import (
	"testing"

	"hbtree/internal/core"
)

// Allocation regression tests for the steady-state serving pipeline.
// The bucket size is kept small (64, the minimum) so the simulated
// kernel fan-out and the CPU leaf stage run inline — goroutine spawning
// is a per-call allocation the small-batch path legitimately avoids.

// TestLookupBatchIntoAllocFree pins zero allocations per call on the
// scratch-pooled heterogeneous batch search, for both tree variants.
func TestLookupBatchIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	for _, variant := range []core.Variant{core.Implicit, core.Regular} {
		t.Run(variant.String(), func(t *testing.T) {
			srv, pairs := newTestServer(t, variant, 1<<10)
			const n = 64
			queries := make([]uint64, n)
			values := make([]uint64, n)
			found := make([]bool, n)
			for i := range queries {
				queries[i] = pairs[(i*31)%len(pairs)].Key
			}
			// Warm the scratch pool.
			if _, err := srv.LookupBatchInto(queries, values, found); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := srv.LookupBatchInto(queries, values, found); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("LookupBatchInto allocates %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestCoalescedLookupPathAllocFree pins zero allocations per request on
// the full coalesced path: pooled reply cell, shard append, inline
// flush through LookupBatchInto, result delivery. MaxBatch is 1 so
// every call deterministically exercises the whole pipeline.
func TestCoalescedLookupPathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	co := NewCoalescer(srv, Options{MaxBatch: 1, Shards: 1})
	defer co.Close()

	// Warm the reply, batch and scratch pools.
	for i := 0; i < 32; i++ {
		if _, _, err := co.Lookup(pairs[i].Key); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		i++
		if _, _, err := co.Lookup(pairs[i%len(pairs)].Key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("coalesced lookup allocates %.1f times per request, want 0", allocs)
	}
}

// TestShardedLookupAllocFree pins zero allocations per request on the
// sharded point-lookup route: the key-to-shard binary search plus the
// shard Server's snapshot-pinned lookup.
func TestShardedLookupAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	s, pairs := newShardedServer(t, core.Implicit, 1<<10, 4)
	keys := [4]uint64{pairs[1].Key, pairs[400].Key, pairs[700].Key, pairs[1000].Key}
	// Warm the per-shard lookup scratch.
	for _, k := range keys {
		s.Lookup(k)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			if _, ok := s.Lookup(k); !ok {
				t.Fatal("lookup missed")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("sharded Lookup allocates %.2f times per run, want 0", allocs)
	}
}

// TestShardedCoalescedLookupAllocFree pins zero allocations per request
// on the full sharded coalesced route — key routing, pooled reply cell,
// per-shard batch append, inline flush — including with an admission
// window engaged (token acquire/release must not allocate).
func TestShardedCoalescedLookupAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	for _, cfg := range []struct {
		name string
		opt  Options
	}{
		{"unbounded", Options{MaxBatch: 1, Shards: 1}},
		{"bounded", Options{MaxBatch: 1, Shards: 1, MaxPending: 64}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			s, pairs := newShardedServer(t, core.Implicit, 1<<10, 4)
			co := s.Coalesce(cfg.opt)
			defer co.Close()
			keys := [4]uint64{pairs[1].Key, pairs[400].Key, pairs[700].Key, pairs[1000].Key}
			// Warm the reply, batch and scratch pools of every shard.
			for i := 0; i < 32; i++ {
				for _, k := range keys {
					if _, _, err := co.Lookup(k); err != nil {
						t.Fatal(err)
					}
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				for _, k := range keys {
					if _, _, err := co.Lookup(k); err != nil {
						t.Fatal(err)
					}
				}
			})
			if allocs != 0 {
				t.Fatalf("sharded coalesced Lookup allocates %.2f times per run, want 0", allocs)
			}
		})
	}
}
