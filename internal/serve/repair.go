package serve

import (
	"context"
	"runtime"
	"time"
)

// Background replica repair (DESIGN §7). When a batch update's device
// re-sync faults, the write is acknowledged on the host version and the
// tree is marked replica-stale: reads on it degrade to the CPU path
// until the NEXT write's mirror heals it. Under a read-mostly workload
// that next write may be a long time coming, so an acknowledged fault
// used to mean an open-ended degraded window.
//
// maybeRepair closes that window: the first stale acknowledgement kicks
// off a single-flight background task that re-mirrors the published
// version's I-segment to the device. Heal-on-next-mirror remains the
// fallback — if the repair itself keeps faulting, the bounded attempts
// run out and the next successful write restores the replica exactly as
// before.
//
// Safety: replicaStale is atomic and has been true for the published
// tree's whole life (the mark precedes publication), so no GPU-path
// reader can be mid-flight against the stale buffers when the repair
// swaps them — every reader that observed stale went to the CPU, and a
// reader that observes fresh is ordered after the new buffers were
// installed.

const (
	// repairAttempts bounds the re-mirror tries per repair task;
	// exhausted attempts fall back to heal-on-next-mirror.
	repairAttempts = 3
	// repairDelay spaces the attempts out. Repair is deliberately lazy —
	// it must not compete with foreground traffic for the device, and
	// under a fault storm the breaker should settle first.
	repairDelay = time.Millisecond
)

// maybeRepair starts the background repair task unless one is already
// in flight. Called from ackStaleSync with the writer slot held; the
// task itself runs without it.
func (s *Server[K]) maybeRepair() {
	if s.repairing.CompareAndSwap(false, true) {
		go s.repairLoop()
	}
}

func (s *Server[K]) repairLoop() {
	defer s.repairing.Store(false)
	for attempt := 0; attempt < repairAttempts; attempt++ {
		time.Sleep(repairDelay)
		runtime.Gosched() // stay low-priority: yield before touching the device
		done, ok := s.tryRepair()
		if done || !ok {
			return
		}
	}
}

// tryRepair re-mirrors the current version if it is still stale.
// done reports that no further attempts are needed (healed, or repaired
// by someone else); ok=false aborts the loop because the server can no
// longer repair (retired by a rebalance, or a writer deadline raced the
// close). A fault during the re-mirror leaves the tree stale for the
// next attempt.
func (s *Server[K]) tryRepair() (done, ok bool) {
	if s.locked {
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.tree.ReplicaStale() {
			return true, true
		}
		if err := s.tree.Resync(); err != nil {
			s.gpuFaults.Add(1)
			s.brk.Failure()
			return false, true
		}
		s.repairs.Add(1)
		return true, true
	}
	// Snapshot mode: hold the writer slot so the repair never races a
	// clone/rebuild of the same version, and resolve the tree through a
	// pin so a concurrent rebalance retiring this member aborts the task
	// instead of repairing an unreachable tree.
	if err := s.acquireWriter(context.Background()); err != nil {
		return false, false
	}
	defer s.releaseWriter()
	tree, p, live := s.pinCurrent()
	if !live {
		return false, false
	}
	defer p.Unpin()
	if !tree.ReplicaStale() {
		return true, true
	}
	if err := tree.Resync(); err != nil {
		s.gpuFaults.Add(1)
		s.brk.Failure()
		return false, true
	}
	s.repairs.Add(1)
	return true, true
}
