package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/workload"
)

// slowBackend is a deterministic-capacity fake: every flush holds a
// shared mutex for per — one "device" serving batches serially — so the
// backend's capacity is exactly MaxBatch/per regardless of host speed.
// Lookups echo the key as the value.
type slowBackend struct {
	mu  sync.Mutex
	per time.Duration
	deg atomic.Bool
}

func (b *slowBackend) serve(q, v []uint64, f []bool) (core.SearchStats, error) {
	if b.per > 0 {
		b.mu.Lock()
		time.Sleep(b.per)
		b.mu.Unlock()
	}
	for i := range q {
		v[i], f[i] = q[i], true
	}
	return core.SearchStats{Queries: len(q)}, nil
}

func (b *slowBackend) LookupBatchInto(q, v []uint64, f []bool) (core.SearchStats, error) {
	return b.serve(q, v, f)
}

func (b *slowBackend) LookupBatchSortedInto(q, v []uint64, f []bool) (core.SearchStats, error) {
	return b.serve(q, v, f)
}

func (b *slowBackend) Options() core.Options { return core.Options{BucketSize: 64} }
func (b *slowBackend) Degraded() bool        { return b.deg.Load() }

// TestOverloadErrorTyped: sheds carry the typed OverloadError — still
// matching errors.Is(err, ErrOverloaded) for existing callers — with a
// positive retry-after hint, on both the static and the adaptive path.
func TestOverloadErrorTyped(t *testing.T) {
	for _, target := range []time.Duration{0, 50 * time.Millisecond} {
		co := NewCoalescer[uint64](&slowBackend{}, Options{
			Shards: 1, MaxBatch: 100, Window: time.Hour,
			MaxPending: 2, Shed: true, TargetP99: target,
		})
		if target > 0 {
			co.setWindowForTest(2)
		}
		a, b := co.Submit(1), co.Submit(2) // fill the window
		res := <-co.Submit(3)
		if !errors.Is(res.Err, ErrOverloaded) {
			t.Fatalf("target %v: shed error = %v, want ErrOverloaded", target, res.Err)
		}
		var oe *OverloadError
		if !errors.As(res.Err, &oe) {
			t.Fatalf("target %v: shed error %T does not unwrap to *OverloadError", target, res.Err)
		}
		if oe.RetryAfter <= 0 {
			t.Fatalf("target %v: RetryAfter = %v, want > 0", target, oe.RetryAfter)
		}
		if got := co.Shed(); got != 1 {
			t.Fatalf("target %v: Shed = %d, want 1", target, got)
		}
		if co.ShedRate() <= 0 {
			t.Fatalf("target %v: ShedRate = 0 right after a shed", target)
		}
		co.Close()
		for _, ch := range []<-chan Result[uint64]{a, b} {
			if r := <-ch; !errors.Is(r.Err, ErrClosed) {
				t.Fatalf("pending request after Close = %v, want ErrClosed", r.Err)
			}
		}
	}
}

// TestStaticPathUnchangedWithoutTarget: with TargetP99 unset the new
// option fields are inert — an identical submission schedule produces
// identical admission decisions whether or not MinPending/FlushStall
// are set, and the window stays the fixed MaxPending.
func TestStaticPathUnchangedWithoutTarget(t *testing.T) {
	run := func(opt Options) (shed int64, errs []error) {
		co := NewCoalescer[uint64](&slowBackend{}, opt)
		defer co.Close()
		var parked []<-chan Result[uint64]
		for i := uint64(0); i < 6; i++ {
			ch := co.Submit(i)
			select {
			case res := <-ch:
				errs = append(errs, res.Err)
			default:
				parked = append(parked, ch)
				errs = append(errs, nil)
			}
		}
		if got, want := co.AdmitWindow(), opt.MaxPending; got != want {
			t.Fatalf("static AdmitWindow = %d, want MaxPending %d", got, want)
		}
		if got := co.TargetP99(); got != 0 {
			t.Fatalf("static TargetP99 = %v, want 0", got)
		}
		return co.Shed(), errs
	}
	base := Options{Shards: 1, MaxBatch: 100, Window: time.Hour, MaxPending: 3, Shed: true}
	withInert := base
	withInert.MinPending = 7
	withInert.FlushStall = 0

	shedA, errsA := run(base)
	shedB, errsB := run(withInert)
	if shedA != shedB || shedA != 3 {
		t.Fatalf("shed counts differ: base %d, with inert fields %d (want 3)", shedA, shedB)
	}
	for i := range errsA {
		if (errsA[i] == nil) != (errsB[i] == nil) {
			t.Fatalf("submission %d: admission differs (%v vs %v)", i, errsA[i], errsB[i])
		}
		if errsA[i] != nil && !errors.Is(errsA[i], ErrOverloaded) {
			t.Fatalf("submission %d: err = %v, want ErrOverloaded", i, errsA[i])
		}
	}
}

// TestAdaptiveDefaults: TargetP99 without MaxPending resolves the 4096
// ceiling and a MaxPending/64 floor, and the controller starts at the
// ceiling.
func TestAdaptiveDefaults(t *testing.T) {
	co := NewCoalescer[uint64](&slowBackend{}, Options{Shards: 1, TargetP99: 10 * time.Millisecond})
	defer co.Close()
	if got := co.AdmitWindow(); got != 4096 {
		t.Fatalf("AdmitWindow = %d, want 4096", got)
	}
	if got := co.ctl.minW; got != 64 {
		t.Fatalf("resolved floor = %d, want 64", got)
	}
	if got := co.TargetP99(); got != 10*time.Millisecond {
		t.Fatalf("TargetP99 = %v", got)
	}
	m := co.OverloadMetrics()
	if m.AdmitWindow != 4096 || m.TargetP99 != 10*time.Millisecond || m.RetryAfter <= 0 {
		t.Fatalf("OverloadMetrics = %+v", m)
	}
}

// TestShedRateWindowed: the tracker reports events/sec over the
// trailing second and forgets them afterwards.
func TestShedRateWindowed(t *testing.T) {
	var r rateTracker
	t0 := int64(10 * time.Second)
	for i := 0; i < 10; i++ {
		r.note(t0 + int64(i)*int64(50*time.Millisecond))
	}
	if got := r.perSecond(t0 + int64(500*time.Millisecond)); got != 10 {
		t.Fatalf("perSecond inside window = %v, want 10", got)
	}
	if got := r.perSecond(t0 + int64(3*time.Second)); got != 0 {
		t.Fatalf("perSecond after decay = %v, want 0", got)
	}
}

// TestAdaptiveConvergenceHalfCapacity: under steady load well below
// capacity the controller grows the window from the floor back to
// MaxPending — and nothing is shed on the way (ISSUE 9 satellite).
func TestAdaptiveConvergenceHalfCapacity(t *testing.T) {
	be := &slowBackend{per: 200 * time.Microsecond}
	co := NewCoalescer[uint64](be, Options{
		Shards: 1, MaxBatch: 64, Window: time.Millisecond,
		MaxPending: 1024, MinPending: 16, TargetP99: 40 * time.Millisecond,
	})
	defer co.Close()
	co.setWindowForTest(16)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			k := uint64(c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := co.Lookup(k); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
				k += 8
			}
		}(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for co.AdmitWindow() < 1024 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := co.AdmitWindow(); got != 1024 {
		t.Fatalf("window did not grow back to MaxPending: %d (steps %d, ewma %v)",
			got, co.ctl.steps.Load(), time.Duration(co.ctl.ewma.Load()))
	}
	if got := co.Shed(); got != 0 {
		t.Fatalf("shed %d requests at half capacity, want 0", got)
	}
}

// TestAdaptiveOverloadHoldsTarget: under sustained 640-client overload
// of a 16k req/s backend the controller must settle the window near
// target×capacity — admitted p99 within 2× the target, window samples
// inside a 4× band (no oscillation), and the excess shed with hints.
func TestAdaptiveOverloadHoldsTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second closed-loop run")
	}
	const target = 20 * time.Millisecond
	be := &slowBackend{per: 2 * time.Millisecond} // 32/2ms = 16k req/s
	co := NewCoalescer[uint64](be, Options{
		Shards: 1, MaxBatch: 32, Window: 500 * time.Microsecond,
		MaxPending: 2048, MinPending: 16, TargetP99: target,
	})
	defer co.Close()

	const (
		clients = 640
		run     = 3 * time.Second
		warmup  = 1200 * time.Millisecond
	)
	start := time.Now()
	var stop atomic.Bool
	var mu sync.Mutex
	var lateLats []time.Duration
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var lats []time.Duration
			k := uint64(c)
			for !stop.Load() {
				t0 := time.Now()
				_, _, err := co.Lookup(k)
				k += clients
				if err != nil {
					var oe *OverloadError
					if errors.As(err, &oe) {
						time.Sleep(min(oe.RetryAfter, 5*time.Millisecond))
						continue
					}
					t.Errorf("lookup: %v", err)
					return
				}
				if time.Since(start) > warmup && len(lats) < maxPhaseSamples {
					lats = append(lats, time.Since(t0))
				}
			}
			mu.Lock()
			lateLats = append(lateLats, lats...)
			mu.Unlock()
		}(c)
	}
	// Sample the window over the settled tail of the run.
	var wmin, wmax int
	var wsamples []int
	for time.Since(start) < run {
		time.Sleep(5 * time.Millisecond)
		if time.Since(start) <= warmup {
			continue
		}
		w := co.AdmitWindow()
		wsamples = append(wsamples, w)
		if wmin == 0 || w < wmin {
			wmin = w
		}
		if w > wmax {
			wmax = w
		}
	}
	stop.Store(true)
	wg.Wait()

	if co.Shed() == 0 {
		t.Fatal("overload run shed nothing — offered load never exceeded the window")
	}
	if len(lateLats) < 1000 {
		t.Skipf("host too slow for a meaningful sample: %d admitted lookups after warmup", len(lateLats))
	}
	_, _, p99 := percentiles(lateLats)
	if p99 > 2*target {
		t.Errorf("admitted p99 %v above 2× target %v (window %d..%d)", p99, 2*target, wmin, wmax)
	}
	// The variance bound: settled window samples stay within a 4× band
	// — AIMD with a [target/2, target] deadband holds, it does not saw.
	if wmin > 0 && wmax > 4*wmin {
		t.Errorf("window oscillates: samples span %d..%d (> 4x band) over %d samples", wmin, wmax, len(wsamples))
	}
	// And it actually regulated: the settled window must sit well below
	// the 2048 ceiling (capacity × target ≈ 320).
	if wmax > 1024 {
		t.Errorf("window %d never came down toward target x capacity (~320)", wmax)
	}
	t.Logf("admitted p99 %v (target %v), window %d..%d, shed %d, rate %.0f/s, retry hint %v",
		p99, target, wmin, wmax, co.Shed(), co.ShedRate(), co.RetryAfter())
}

// TestAdaptiveDegradedClamp: while the backend is degraded the
// controller's window is clamped to DegradedPending — one mechanism,
// the breaker only pulls the same knob — and the clamp's sheds count as
// degraded.
func TestAdaptiveDegradedClamp(t *testing.T) {
	be := &slowBackend{}
	be.deg.Store(true)
	co := NewCoalescer[uint64](be, Options{
		Shards: 1, MaxBatch: 100, Window: time.Hour,
		MaxPending: 64, DegradedPending: 2, MinPending: 4,
		TargetP99: 50 * time.Millisecond,
	})
	a, b := co.Submit(1), co.Submit(2) // occupy the clamped window
	res := <-co.Submit(3)
	if !errors.Is(res.Err, ErrOverloaded) {
		t.Fatalf("clamped submit = %v, want ErrOverloaded", res.Err)
	}
	if co.Shed() != 1 || co.DegradedShed() != 1 {
		t.Fatalf("Shed/DegradedShed = %d/%d, want 1/1", co.Shed(), co.DegradedShed())
	}
	// Recovery: the moment the backend heals, the full adaptive window
	// is back — the next submission is admitted.
	be.deg.Store(false)
	cch := co.Submit(4)
	select {
	case res := <-cch:
		t.Fatalf("healthy submit failed: %v", res.Err)
	default:
	}
	co.Close()
	for _, ch := range []<-chan Result[uint64]{a, b, cch} {
		if r := <-ch; !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("pending request after Close = %v, want ErrClosed", r.Err)
		}
	}
}

// TestAdaptiveDrainShutdownMidLoad: closing the coalescer while clients
// are mid-overload must not deadlock — every in-flight request resolves
// (result or ErrClosed) and Close returns. The unit-level half of the
// CI overload-smoke drill.
func TestAdaptiveDrainShutdownMidLoad(t *testing.T) {
	be := &slowBackend{per: 5 * time.Millisecond}
	co := NewCoalescer[uint64](be, Options{
		Shards: 1, MaxBatch: 8, Window: 200 * time.Microsecond,
		MaxPending: 256, TargetP99: 10 * time.Millisecond,
	})
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			k := uint64(c)
			for {
				_, _, err := co.Lookup(k)
				k += 32
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}(c)
	}
	time.Sleep(150 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		co.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked under load")
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("clients did not unwind after Close")
	}
}

// TestScenarioPhasesAndCancel: the scenario driver reports three named
// phases with per-phase latency rows, and a CancelAt hard stop unwinds
// cleanly mid-run.
func TestScenarioPhasesAndCancel(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<12, 42)
	base := ScenarioOptions{
		Kind: ScenarioFlash, BaseClients: 1, PeakFactor: 2, Depth: 16,
		Duration: 450 * time.Millisecond, MaxBatch: 64, MaxPending: 256,
		TargetP99: 20 * time.Millisecond, Seed: 7,
	}
	res, err := RunWallScenario(pairs, core.Options{BucketSize: 64}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(res.Phases))
	}
	want := [3]string{"pre-spike", "spike", "recovery"}
	for i, ph := range res.Phases {
		if ph.Name != want[i] {
			t.Errorf("phase %d named %q, want %q", i, ph.Name, want[i])
		}
		if ph.Lookups == 0 {
			t.Errorf("phase %q served no lookups", ph.Name)
		}
		if ph.Lookups > 0 && ph.P99 <= 0 {
			t.Errorf("phase %q has lookups but no p99", ph.Name)
		}
	}
	if res.Lookups == 0 || res.AdmitMax == 0 {
		t.Fatalf("empty result: %+v", res)
	}

	cancel := base
	cancel.CancelAt = 200 * time.Millisecond
	done := make(chan struct{})
	var cres ScenarioResult
	go func() {
		defer close(done)
		cres, err = RunWallScenario(pairs, core.Options{BucketSize: 64}, cancel)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("cancelled scenario did not unwind (drain-path deadlock)")
	}
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Cancelled {
		t.Fatal("result not marked Cancelled")
	}
	if cres.Elapsed >= base.Duration {
		t.Fatalf("cancelled run took the full duration: %v", cres.Elapsed)
	}
}

// TestScenarioUnknownKind: a bad kind is an error, not a silent flash
// run.
func TestScenarioUnknownKind(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<8, 42)
	if _, err := RunWallScenario(pairs, core.Options{BucketSize: 64}, ScenarioOptions{Kind: "tsunami"}); err == nil {
		t.Fatal("unknown scenario kind accepted")
	}
}
