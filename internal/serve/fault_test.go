package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hbtree/internal/breaker"
	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/fault"
	"hbtree/internal/workload"
)

// attachInjector arms in on the server's device. The device is shared
// by every snapshot clone, so attaching once up front covers the whole
// test even across Update-driven swaps.
func attachInjector(s *Server[uint64], in *fault.Injector) {
	s.Tree().Device().SetInjector(in)
}

// TestBreakerTransitionsUnderScriptedFaults walks the breaker through
// its full state machine with scripted kernel faults: three consecutive
// failures trip it open (each batch still answered correctly from the
// CPU fallback), open-state batches bypass the device entirely, and
// after OpenTimeout a successful half-open probe closes it again.
func TestBreakerTransitionsUnderScriptedFaults(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	const openTimeout = 25 * time.Millisecond
	srv.SetResilience(breaker.Options{
		ConsecutiveTrip: 3,
		MinSamples:      1 << 20, // disable the rate trip; this test drives the consecutive path
		OpenTimeout:     openTimeout,
	}, RetryOptions{MaxAttempts: 1})
	in := fault.New(fault.Options{})
	attachInjector(srv, in)

	qs := make([]uint64, 8)
	for i := range qs {
		qs[i] = pairs[i*29%len(pairs)].Key
	}
	check := func(stage string) {
		t.Helper()
		vals, found, _, err := srv.LookupBatch(qs)
		if err != nil {
			t.Fatalf("%s: LookupBatch: %v", stage, err)
		}
		for i, q := range qs {
			if !found[i] || vals[i] != workload.ValueFor(q) {
				t.Fatalf("%s: query %d = (%d,%v)", stage, i, vals[i], found[i])
			}
		}
	}

	// Closed -> Open: three scripted faults, each answered by fallback.
	in.ScriptNext(fault.OpKernel, fault.ErrKernel, fault.ErrKernel, fault.ErrKernel)
	for i := 0; i < 3; i++ {
		check("tripping")
	}
	m := srv.Metrics()
	if m.BreakerState != breaker.Open {
		t.Fatalf("state after 3 consecutive faults = %v", m.BreakerState)
	}
	if m.GPUFaults != 3 || m.FallbackBatches != 3 || m.BreakerTrips != 1 {
		t.Fatalf("metrics after trip = %+v", m)
	}

	// Open: the device is not consulted at all.
	kBefore := srv.DeviceCounters().Kernels
	check("open")
	if got := srv.DeviceCounters().Kernels; got != kBefore {
		t.Fatalf("open-state batch launched kernels (%d -> %d)", kBefore, got)
	}
	m = srv.Metrics()
	if m.GPUFaults != 3 || m.FallbackBatches != 4 {
		t.Fatalf("metrics while open = %+v", m)
	}
	if srv.Breaker().Counters().Rejected == 0 {
		t.Fatal("open breaker rejected nothing")
	}

	// Open -> HalfOpen -> Closed: after the timeout one probe succeeds.
	time.Sleep(2 * openTimeout)
	check("probe")
	m = srv.Metrics()
	if m.BreakerState != breaker.Closed {
		t.Fatalf("state after successful probe = %v", m.BreakerState)
	}
	if c := srv.Breaker().Counters(); c.Probes == 0 || c.Closes != 1 {
		t.Fatalf("breaker counters after recovery = %+v", c)
	}
	if m.FallbackBatches != 4 {
		t.Fatalf("probe batch fell back: %+v", m)
	}
}

// TestDeadlineExceededParkedCoalescedGET: a lone GET admitted to a
// coalescing window that will not fire for an hour must fail with
// ErrDeadlineExceeded when its context expires — within twice the
// deadline, not at the window.
func TestDeadlineExceededParkedCoalescedGET(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<10)
	c := NewCoalescer(srv, Options{MaxBatch: 64, Window: time.Hour, Shards: 1})
	defer c.Close()

	const deadline = 250 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, _, err := c.LookupCtx(ctx, pairs[0].Key)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("parked GET error = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("parked GET failed after %v, deadline was %v", elapsed, deadline)
	}
	if c.Deadlines() != 1 {
		t.Fatalf("coalescer Deadlines = %d, want 1", c.Deadlines())
	}
	// The abandoned request still sits in the forming batch; the
	// deferred Close must fail it without blocking — cap-1 reply
	// channels make the late delivery non-blocking by construction.
}

// TestUpdateCtxDeadlineOnBusyWriter: an update abandoned while waiting
// for the writer slot fails with ErrDeadlineExceeded instead of parking
// forever, and the slot's owner is unaffected.
func TestUpdateCtxDeadlineOnBusyWriter(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<10)
	srv.wsem <- struct{}{} // wedge the writer slot, as a stalled writer would

	const deadline = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := srv.UpdateCtx(ctx, []cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 1}}, core.Synchronized)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("UpdateCtx on busy writer = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("UpdateCtx failed after %v, deadline was %v", elapsed, deadline)
	}
	if srv.Metrics().Deadlines != 1 {
		t.Fatalf("Deadlines = %d, want 1", srv.Metrics().Deadlines)
	}

	<-srv.wsem // release; the write path must be healthy again
	if _, err := srv.Update([]cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 2}}, core.Synchronized); err != nil {
		t.Fatalf("update after release: %v", err)
	}
	if v, ok := srv.Lookup(pairs[0].Key); !ok || v != 2 {
		t.Fatalf("post-release lookup = (%d,%v)", v, ok)
	}
}

// TestShardedUpdateCtxDeadlineOnStalledPump: with every shard's writer
// slot wedged, a sharded update expires with ErrDeadlineExceeded rather
// than parking the dispatcher; once released the pumps drain and the
// server keeps serving.
func TestShardedUpdateCtxDeadlineOnStalledPump(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<12, 42)
	tree, err := core.Build(pairs, core.Options{Variant: core.Regular, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShardedServer(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	tree.Close()
	defer sh.Close()

	for _, sub := range sh.members() {
		sub.wsem <- struct{}{}
	}
	const deadline = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	start := time.Now()
	_, err = sh.UpdateCtx(ctx, []cpubtree.Op[uint64]{{Key: pairs[0].Key, Value: 7}}, core.Synchronized)
	elapsed := time.Since(start)
	cancel()
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("sharded UpdateCtx = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("sharded UpdateCtx failed after %v, deadline was %v", elapsed, deadline)
	}
	if sh.Metrics().Deadlines == 0 {
		t.Fatal("sharded Deadlines counter not incremented")
	}
	for _, sub := range sh.members() {
		<-sub.wsem
	}
	// The abandoned job may still complete in the background — that is
	// the documented at-most-once-visible semantics — but a fresh update
	// must succeed and be visible.
	if _, err := sh.Update([]cpubtree.Op[uint64]{{Key: pairs[1].Key, Value: 8}}, core.Synchronized); err != nil {
		t.Fatalf("update after release: %v", err)
	}
	if v, ok := sh.Lookup(pairs[1].Key); !ok || v != 8 {
		t.Fatalf("post-release lookup = (%d,%v)", v, ok)
	}
}

// TestFallbackOracleUnderFaultsAndSwaps is the -race oracle: concurrent
// readers under a 50% kernel fault rate — so batches constantly retry,
// trip the breaker and degrade to the CPU fallback — race a writer that
// flips values through snapshot swaps. Every read must err nil and
// observe either the old or the new value, never garbage, whichever
// path served it.
func TestFallbackOracleUnderFaultsAndSwaps(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	srv.SetResilience(breaker.Options{OpenTimeout: 5 * time.Millisecond}, RetryOptions{MaxAttempts: 2})
	attachInjector(srv, fault.New(fault.Options{Seed: 99, Kernel: 0.5}))

	const delta = uint64(1) << 40
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := pairs[(i*13)%len(pairs)].Key
			op := []cpubtree.Op[uint64]{{Key: k, Value: workload.ValueFor(k) + delta}}
			if _, err := srv.Update(op, core.Synchronized); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qs := make([]uint64, 64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range qs {
					qs[j] = pairs[(r*31+i*7+j*17)%len(pairs)].Key
				}
				vals, found, _, err := srv.LookupBatch(qs)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				for j, q := range qs {
					base := workload.ValueFor(q)
					if !found[j] || (vals[j] != base && vals[j] != base+delta) {
						t.Errorf("reader %d: key %d = (%d,%v), want %d or %d",
							r, q, vals[j], found[j], base, base+delta)
						return
					}
				}
			}
		}(r)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	m := srv.Metrics()
	if m.GPUFaults == 0 || m.FallbackBatches == 0 {
		t.Fatalf("fault path not exercised: %+v", m)
	}
}

// TestFallbackThroughputSmoke is the degraded-mode capacity floor: with
// the breaker forced open every batch is answered host-only, the device
// sees zero kernel launches, and throughput stays measurably above
// zero — the property the ops runbook in DESIGN §7 leans on.
func TestFallbackThroughputSmoke(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<12)
	srv.Breaker().ForceOpen(true)
	kBefore := srv.DeviceCounters().Kernels

	qs := make([]uint64, 1024)
	for i := range qs {
		qs[i] = pairs[(i*37)%len(pairs)].Key
	}
	const rounds = 20
	start := time.Now()
	for i := 0; i < rounds; i++ {
		vals, found, _, err := srv.LookupBatch(qs)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !found[0] || vals[0] != workload.ValueFor(qs[0]) {
			t.Fatalf("round %d: spot check = (%d,%v)", i, vals[0], found[0])
		}
	}
	elapsed := time.Since(start)

	if got := srv.DeviceCounters().Kernels; got != kBefore {
		t.Fatalf("forced-open serving launched kernels (%d -> %d)", kBefore, got)
	}
	m := srv.Metrics()
	if m.FallbackBatches != rounds || m.FallbackQueries != rounds*int64(len(qs)) {
		t.Fatalf("fallback accounting = %+v", m)
	}
	mqps := float64(rounds*len(qs)) / elapsed.Seconds() / 1e6
	if mqps <= 0 {
		t.Fatalf("fallback throughput = %f MQPS", mqps)
	}
	t.Logf("CPU-only fallback: %.2f MQPS over %d queries", mqps, rounds*len(qs))
}

// TestServeFaultAcceptance is the issue's acceptance scenario: a
// 100k-op mixed read/write workload against a 10% kernel fault rate
// plus a scripted device-reset burst. It must complete with zero
// hangs (the test finishing is the proof), zero lost acked writes,
// every read matching the single-threaded oracle, and the breaker
// tripping during the burst and recovering after it.
func TestServeFaultAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance workload skipped in -short mode")
	}
	srv, pairs := newTestServer(t, core.Regular, 1<<13)
	srv.SetResilience(breaker.Options{OpenTimeout: 10 * time.Millisecond}, RetryOptions{})
	in := fault.New(fault.Options{Seed: 42, Kernel: 0.10})
	attachInjector(srv, in)

	oracle := make(map[uint64]uint64, len(pairs))
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	acked := make(map[uint64]uint64)

	const (
		totalOps  = 100_000
		batchSize = 100 // queries per lookup batch
		writeOps  = 20  // ops per update batch
	)
	qs := make([]uint64, batchSize)
	ops := make([]cpubtree.Op[uint64], writeOps)
	done, action, seq := 0, 0, uint64(0)
	for done < totalOps {
		// Halfway in, script a sustained reset burst: every kernel
		// launch fails for the next 64 attempts, the outage that must
		// trip the breaker open.
		if done >= totalOps/2 && in.ScriptLen(fault.OpKernel) == 0 && srv.Metrics().BreakerTrips == 0 {
			burst := make([]error, 64)
			for i := range burst {
				burst[i] = fault.ErrReset
			}
			in.ScriptNext(fault.OpKernel, burst...)
		}
		if action%10 == 9 {
			for i := range ops {
				k := pairs[(done+i*7)%len(pairs)].Key
				seq++
				ops[i] = cpubtree.Op[uint64]{Key: k, Value: 1_000_000 + seq}
			}
			if _, err := srv.Update(ops, core.Synchronized); err != nil {
				t.Fatalf("op %d: update: %v", done, err)
			}
			// The server acked: from here on these writes must never be
			// lost, faults or not.
			for _, op := range ops {
				oracle[op.Key] = op.Value
				acked[op.Key] = op.Value
			}
			done += writeOps
		} else {
			for i := range qs {
				qs[i] = pairs[(done*3+i*11)%len(pairs)].Key
			}
			vals, found, _, err := srv.LookupBatch(qs)
			if err != nil {
				t.Fatalf("op %d: lookup batch: %v", done, err)
			}
			for i, q := range qs {
				if !found[i] || vals[i] != oracle[q] {
					t.Fatalf("op %d: key %d = (%d,%v), oracle %d", done, q, vals[i], found[i], oracle[q])
				}
			}
			done += batchSize
		}
		action++
	}

	m := srv.Metrics()
	if m.GPUFaults == 0 || m.Retries == 0 || m.FallbackBatches == 0 {
		t.Fatalf("fault machinery idle through the workload: %+v", m)
	}
	if m.BreakerTrips == 0 {
		t.Fatalf("reset burst never tripped the breaker: %+v", m)
	}

	// Recovery: drain any remaining scripted faults through half-open
	// probes until the breaker closes again.
	deadline := time.Now().Add(15 * time.Second)
	for srv.Metrics().BreakerState != breaker.Closed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %+v, script left %d", srv.Metrics(), in.ScriptLen(fault.OpKernel))
		}
		if _, _, _, err := srv.LookupBatch(qs[:8]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Breaker().Counters().Closes == 0 {
		t.Fatal("breaker closed without a recorded recovery")
	}

	// Zero lost acked writes: every acked value is the one served.
	for k, v := range acked {
		if got, ok := srv.Lookup(k); !ok || got != v {
			t.Fatalf("acked write lost: key %d = (%d,%v), want %d", k, got, ok, v)
		}
	}
	t.Logf("acceptance: %+v, injector %+v", m, in.Counters())
}
