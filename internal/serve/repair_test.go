package serve

import (
	"errors"
	"testing"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/fault"
	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

// TestBackgroundRepairHealsStaleReplica: a synchronized update whose
// device sync faults is acknowledged with the tree marked
// replica-stale, and the background repair re-mirrors the replica
// without waiting for the next write.
//
// Script shape: the clone's construction mirror makes two H2D copies
// (upper + last pool) that must succeed, then the update's first
// per-node region copy faults, and the degraded full-mirror retry
// faults too — the exact sequence that leaves a published version
// stale. The script is then exhausted, so the repair's own re-mirror
// runs clean.
func TestBackgroundRepairHealsStaleReplica(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	in := fault.New(fault.Options{})
	attachInjector(srv, in)
	in.ScriptNext(fault.OpH2D, nil, nil, fault.ErrH2D, fault.ErrH2D)

	if _, err := srv.Update([]cpubtree.Op[uint64]{{Key: pairs[3].Key, Value: 99}}, core.Synchronized); err != nil {
		t.Fatalf("faulted sync not acknowledged: %v", err)
	}
	if srv.Metrics().GPUFaults == 0 {
		t.Fatal("scripted transfer fault not observed")
	}
	// The write is acked and visible even while the replica lags.
	if v, ok := srv.Lookup(pairs[3].Key); !ok || v != 99 {
		t.Fatalf("acked write invisible during staleness: (%d,%v)", v, ok)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Repairs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background repair never completed: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}
	if srv.Tree().ReplicaStale() {
		t.Fatal("replica still stale after a completed repair")
	}
	// The healed replica serves the GPU path again.
	queries := []uint64{pairs[3].Key, pairs[7].Key}
	values, found, _, err := srv.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || values[0] != 99 || !found[1] || values[1] != pairs[7].Value {
		t.Fatalf("post-repair batch: %v %v", values, found)
	}
}

// TestRepairExhaustsAndHealsOnNextMirror: when the repair's own
// re-mirrors keep faulting, the bounded attempts run out and
// heal-on-next-mirror remains the fallback — the next clean write
// restores the replica.
func TestRepairExhaustsAndHealsOnNextMirror(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)
	in := fault.New(fault.Options{})
	attachInjector(srv, in)
	// Clone mirror clean, sync + degraded mirror fault, then every
	// repair attempt faults on its first H2D copy.
	in.ScriptNext(fault.OpH2D, nil, nil, fault.ErrH2D, fault.ErrH2D,
		fault.ErrH2D, fault.ErrH2D, fault.ErrH2D)

	if _, err := srv.Update([]cpubtree.Op[uint64]{{Key: pairs[5].Key, Value: 123}}, core.Synchronized); err != nil {
		t.Fatalf("faulted sync not acknowledged: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for in.ScriptLen(fault.OpH2D) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair attempts stalled with %d scripted faults left", in.ScriptLen(fault.OpH2D))
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Metrics().Repairs; got != 0 {
		t.Fatalf("exhausted repair reported %d successes", got)
	}
	if !srv.Tree().ReplicaStale() {
		t.Fatal("replica unexpectedly healed with every repair faulted")
	}
	// Heal-on-next-mirror: a clean write re-mirrors and clears the flag.
	if _, err := srv.Update([]cpubtree.Op[uint64]{{Key: pairs[6].Key, Value: 124}}, core.Synchronized); err != nil {
		t.Fatal(err)
	}
	if srv.Tree().ReplicaStale() {
		t.Fatal("clean write did not heal the replica")
	}
}

// TestDegradedAdmissionSheds: while the backend's breaker is open, the
// coalescer's effective admission window shrinks to DegradedPending and
// the excess is refused fast with ErrOverloaded — even though Shed is
// false — and the full window is restored on recovery.
func TestDegradedAdmissionSheds(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<10)
	co := NewCoalescer[uint64](srv, Options{
		MaxBatch: 64, Window: time.Hour, Shards: 1,
		MaxPending: 8, DegradedPending: 4,
	})
	defer co.Close()

	// Healthy: six requests sit in the forming batch, past the degraded
	// bound but inside MaxPending — all admitted.
	for i := 0; i < 6; i++ {
		co.Submit(pairs[i].Key)
	}
	if co.Shed() != 0 {
		t.Fatalf("healthy admission shed %d", co.Shed())
	}

	srv.Breaker().ForceOpen(true)
	if _, _, err := co.Lookup(pairs[6].Key); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("degraded submission past the shrunken window = %v, want ErrOverloaded", err)
	}
	if co.DegradedShed() != 1 || co.Shed() != 1 {
		t.Fatalf("degraded shed counters: degraded %d, shed %d", co.DegradedShed(), co.Shed())
	}

	// Recovery: the same submission is admitted again (7th of 8).
	srv.Breaker().ForceOpen(false)
	reply := co.Submit(pairs[6].Key)
	select {
	case res := <-reply:
		t.Fatalf("post-recovery submission failed immediately: %+v", res)
	default:
	}
	if co.DegradedShed() != 1 {
		t.Fatalf("recovery still shedding: %d", co.DegradedShed())
	}
}

// TestLoadBalancedFallbackUsesPartialDescent: with the breaker forced
// open on a load-balanced server, batches are served by the host-side
// partial-descent fallback — correct results, no kernel launches, and
// the fallback counters advancing.
func TestLoadBalancedFallbackUsesPartialDescent(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<12, 42)
	tree, err := core.Build(pairs, core.Options{
		Variant: core.Implicit, BucketSize: 64,
		Machine: platform.M2(), LoadBalance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tree)
	defer srv.Close()
	srv.Breaker().ForceOpen(true)
	if !srv.Degraded() {
		t.Fatal("forced-open server not degraded")
	}

	queries := make([]uint64, 192)
	for i := range queries {
		queries[i] = pairs[(i*29)%len(pairs)].Key
	}
	queries[190] = pairs[0].Key + 1 // miss
	kBefore := srv.DeviceCounters().Kernels
	values, found, stats, err := srv.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.DeviceCounters().Kernels; got != kBefore {
		t.Fatalf("fallback launched %d kernels", got-kBefore)
	}
	for i, q := range queries {
		if i == 190 {
			continue
		}
		if !found[i] || values[i] != workload.ValueFor(q) {
			t.Fatalf("fallback[%d] = (%d,%v)", i, values[i], found[i])
		}
	}
	if stats.SimTime <= 0 {
		t.Fatalf("fallback carries no virtual cost: %+v", stats)
	}
	m := srv.Metrics()
	if m.FallbackBatches != 1 || m.FallbackQueries != int64(len(queries)) {
		t.Fatalf("fallback counters: %+v", m)
	}
}
