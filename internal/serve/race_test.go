package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/workload"
)

// This file is the reader/writer stress suite DESIGN.md §5 promises:
// N reader goroutines issue point, range and batch lookups through the
// Server (and a Coalescer) while a writer applies batch updates, all
// cross-checked against a mutex-guarded map oracle. Run it under
// `go test -race`.
//
// Value encoding: every stored value is base(k) + gen, where base is
// the canonical workload value and gen counts the update generations
// applied to the key (0 = never updated). Readers can therefore verify
// any observed value without knowing exactly which updates have landed:
// the offset must lie in [0, maxGen], and — because updates run under
// the writer lock — the offset a single reader observes for a given key
// must never decrease.

const raceMaxGen = 6

// oracle is the mutex-guarded reference map the stress suite checks
// against.
type oracle struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func (o *oracle) apply(ops []cpubtree.Op[uint64]) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, op := range ops {
		if op.Delete {
			delete(o.m, op.Key)
		} else {
			o.m[op.Key] = op.Value
		}
	}
}

func (o *oracle) snapshot() map[uint64]uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[uint64]uint64, len(o.m))
	for k, v := range o.m {
		out[k] = v
	}
	return out
}

// raceWorld is the shared fixture of one stress run.
type raceWorld struct {
	srv    *Server[uint64]
	stable []uint64 // keys never deleted; values move base+0 .. base+maxGen
	extra  []uint64 // keys inserted and deleted across generations
	oracle *oracle
	done   chan struct{}
}

// checkStable validates one observed (value, found) for a stable key
// and enforces per-reader monotonicity of the generation offset.
func (w *raceWorld) checkStable(t *testing.T, seen map[uint64]uint64, k, v uint64, found bool) {
	t.Helper()
	if !found {
		t.Errorf("stable key %d disappeared", k)
		return
	}
	base := workload.ValueFor(k)
	off := v - base
	if off > raceMaxGen {
		t.Errorf("stable key %d: value %d is no generation of base %d", k, v, base)
		return
	}
	if prev, ok := seen[k]; ok && off < prev {
		t.Errorf("stable key %d: generation went backwards %d -> %d", k, prev, off)
	}
	seen[k] = off
}

// newRaceWorld builds a regular-variant tree small enough for -race.
func newRaceWorld(t *testing.T, nPairs int) *raceWorld {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, nPairs, 99)
	tree, err := core.Build(pairs, core.Options{Variant: core.Regular, BucketSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	w := &raceWorld{
		srv:    NewServer(tree),
		oracle: &oracle{m: make(map[uint64]uint64, nPairs)},
		done:   make(chan struct{}),
	}
	for _, p := range pairs {
		w.oracle.m[p.Key] = p.Value
		w.stable = append(w.stable, p.Key)
	}
	// Volatile keys: odd values interleaved between dataset keys (the
	// dataset generator spaces keys out, so collisions are improbable;
	// skip any that do collide).
	for i := 0; len(w.extra) < nPairs/8 && i < len(pairs); i += 8 {
		k := pairs[i].Key + 1
		if _, ok := w.oracle.m[k]; !ok {
			w.extra = append(w.extra, k)
		}
	}
	return w
}

// writerLoop applies raceMaxGen update generations: every stable key in
// a deterministic subset moves to base+gen, and the volatile keys are
// alternately inserted and deleted.
func (w *raceWorld) writerLoop(t *testing.T, method core.UpdateMethod) {
	defer close(w.done)
	for gen := uint64(1); gen <= raceMaxGen; gen++ {
		var ops []cpubtree.Op[uint64]
		for i, k := range w.stable {
			if i%3 == int(gen)%3 { // a third of the keys per generation
				ops = append(ops, cpubtree.Op[uint64]{Key: k, Value: workload.ValueFor(k) + gen})
			}
		}
		for _, k := range w.extra {
			if gen%2 == 1 {
				ops = append(ops, cpubtree.Op[uint64]{Key: k, Value: workload.ValueFor(k) + gen})
			} else {
				ops = append(ops, cpubtree.Op[uint64]{Key: k, Delete: true})
			}
		}
		if _, err := w.srv.Update(ops, method); err != nil {
			t.Errorf("writer gen %d: %v", gen, err)
			return
		}
		// The oracle is updated after the tree: readers racing in
		// between see the new tree state, whose generation offsets the
		// oracle-independent value encoding still validates.
		w.oracle.apply(ops)
		time.Sleep(time.Millisecond) // let readers in between generations
	}
}

// readerLoop hammers the read paths until the writer is done.
func (w *raceWorld) readerLoop(t *testing.T, seed int64, co *Coalescer[uint64]) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]uint64)
	for {
		select {
		case <-w.done:
			return
		default:
		}
		switch rng.Intn(5) {
		case 0: // point lookup
			k := w.stable[rng.Intn(len(w.stable))]
			v, found := w.srv.Lookup(k)
			w.checkStable(t, seen, k, v, found)
		case 1: // batch lookup
			qs := make([]uint64, 8)
			for i := range qs {
				qs[i] = w.stable[rng.Intn(len(w.stable))]
			}
			values, found, _, err := w.srv.LookupBatch(qs)
			if err != nil {
				t.Errorf("LookupBatch: %v", err)
				return
			}
			for i, k := range qs {
				w.checkStable(t, seen, k, values[i], found[i])
			}
		case 2: // range query: sorted, bounded, valid generations
			start := w.stable[rng.Intn(len(w.stable))]
			out := w.srv.RangeQuery(start, 16)
			if len(out) > 16 {
				t.Errorf("RangeQuery overflow: %d pairs", len(out))
				return
			}
			for i, p := range out {
				if p.Key < start || (i > 0 && p.Key <= out[i-1].Key) {
					t.Errorf("RangeQuery unsorted at %d", i)
					return
				}
				if off := p.Value - workload.ValueFor(p.Key); off > raceMaxGen {
					t.Errorf("RangeQuery: key %d value %d outside generations", p.Key, p.Value)
					return
				}
			}
		case 3: // cursor scan under the lock
			start := w.stable[rng.Intn(len(w.stable))]
			out := w.srv.Scan(start, 16)
			for i := 1; i < len(out); i++ {
				if out[i].Key <= out[i-1].Key {
					t.Errorf("Scan unsorted at %d", i)
					return
				}
			}
		case 4: // volatile key: may or may not exist, value must be valid
			k := w.extra[rng.Intn(len(w.extra))]
			var v uint64
			var found bool
			var err error
			if co != nil {
				v, found, err = co.Lookup(k)
				if err != nil {
					t.Errorf("coalesced lookup: %v", err)
					return
				}
			} else {
				v, found = w.srv.Lookup(k)
			}
			if found {
				if off := v - workload.ValueFor(k); off == 0 || off > raceMaxGen {
					t.Errorf("volatile key %d: impossible value %d", k, v)
					return
				}
			}
		}
	}
}

// finalCheck compares the tree against the oracle exactly once all
// goroutines have stopped, and audits the device replica.
func (w *raceWorld) finalCheck(t *testing.T) {
	t.Helper()
	snap := w.oracle.snapshot()
	qs := make([]uint64, 0, len(snap))
	for k := range snap {
		qs = append(qs, k)
	}
	values, found, _, err := w.srv.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range qs {
		if !found[i] || values[i] != snap[k] {
			t.Fatalf("final state: key %d = (%d, %v), oracle %d", k, values[i], found[i], snap[k])
		}
	}
	if w.srv.NumPairs() != len(snap) {
		t.Fatalf("final NumPairs %d, oracle %d", w.srv.NumPairs(), len(snap))
	}
	if err := w.srv.Tree().VerifyReplica(); err != nil {
		t.Fatal(err)
	}
}

// TestRaceReadersVsBatchUpdates is the core stress test: direct readers
// against a writer using the asynchronous parallel update method.
func TestRaceReadersVsBatchUpdates(t *testing.T) {
	nPairs, readers := 1<<12, 6
	if testing.Short() {
		nPairs, readers = 1<<10, 3
	}
	w := newRaceWorld(t, nPairs)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w.readerLoop(t, int64(r), nil)
		}(r)
	}
	w.writerLoop(t, core.AsyncParallel)
	wg.Wait()
	w.finalCheck(t)
}

// TestRaceCoalescedReadersVsSynchronizedUpdates routes the point
// lookups through a Coalescer while the writer uses the synchronized
// per-node replica maintenance — the pairing with the most read/write
// interleaving surface.
func TestRaceCoalescedReadersVsSynchronizedUpdates(t *testing.T) {
	nPairs, readers := 1<<11, 4
	if testing.Short() {
		nPairs, readers = 1<<10, 2
	}
	w := newRaceWorld(t, nPairs)
	co := NewCoalescer(w.srv, Options{MaxBatch: 32, Window: 100 * time.Microsecond})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w.readerLoop(t, int64(100+r), co)
		}(r)
	}
	w.writerLoop(t, core.Synchronized)
	wg.Wait()
	co.Close()
	w.finalCheck(t)
}

// TestRaceConcurrentBatchLookups runs many concurrent LookupBatch
// calls with tracing enabled on a shared tree: the isolated-timeline
// guarantee of the core audit (each call composes its own timeline;
// publication of the trace is serialised).
func TestRaceConcurrentBatchLookups(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<12)
	srv.Tree().SetTrace(true)
	qs := make([]uint64, 256)
	for i := range qs {
		qs[i] = pairs[(i*17)%len(pairs)].Key
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				values, found, _, err := srv.LookupBatch(qs)
				if err != nil {
					t.Error(err)
					return
				}
				for j, q := range qs {
					if !found[j] || values[j] != workload.ValueFor(q) {
						t.Errorf("batch[%d] wrong under concurrency", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if srv.Tree().LastTrace() == nil {
		t.Fatal("no trace published")
	}
}
