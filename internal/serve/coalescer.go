package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hbtree/internal/keys"
)

// ErrClosed is returned for requests that a closed Coalescer can no
// longer serve: submissions after Close, and requests still pending
// when Close ran.
var ErrClosed = errors.New("serve: coalescer closed")

// ErrOverloaded is returned for requests shed by admission control: the
// shard's in-flight window is at Options.MaxPending and Options.Shed
// selected fail-fast over backpressure. The request was never queued;
// the caller may retry or degrade.
var ErrOverloaded = errors.New("serve: coalescer overloaded")

// DefaultWindow is the default coalescing deadline: a lone request
// waits at most this long for companions before its batch is flushed.
const DefaultWindow = 100 * time.Microsecond

// Options configures a Coalescer.
type Options struct {
	// MaxBatch flushes a shard's batch as soon as it holds this many
	// requests; zero selects the tree's bucket size, so a full batch is
	// exactly one bucket of the heterogeneous search.
	MaxBatch int

	// Window is the deadline: the first request of a batch waits at
	// most this long before the batch is flushed regardless of size.
	// Zero selects DefaultWindow.
	Window time.Duration

	// Shards is the number of independent pending queues; submissions
	// are spread across them so concurrent producers do not serialise
	// on one lock, and each shard flushes on its own size-or-deadline
	// window. Zero selects GOMAXPROCS. Use 1 to reproduce the single-
	// queue discipline (deterministic batch formation).
	Shards int

	// Queue is retained for compatibility with the channel-based
	// coalescer; the sharded implementation has no submission queue and
	// ignores it.
	Queue int

	// MaxPending bounds each shard's in-flight window: the number of
	// accepted requests whose result has not yet been delivered,
	// whether still in the forming batch or inside a flush. Zero leaves
	// the window unbounded — the prior behaviour, where a deep client
	// pipeline makes tail latency a function of queue depth (the
	// ROADMAP's 52-110ms p99 at depth 512). With a bound, latency is
	// capped at roughly (MaxPending/MaxBatch + 1) flush spans.
	MaxPending int

	// Shed selects the response at the MaxPending bound: false (the
	// default) blocks the submitter until the window drains —
	// backpressure, the right mode for cooperating in-process clients;
	// true fails the excess request immediately with ErrOverloaded so
	// an external caller can retry against another replica or degrade.
	Shed bool

	// Unsorted makes flushes take the plain LookupBatchInto path instead
	// of the default sorted one: no key sort, no duplicate folding, one
	// full descent per query. It exists as the A/B baseline for the
	// shared-descent serving path (hbbench -unsorted) and for backends
	// whose batches are known hostile to sorting.
	Unsorted bool

	// DegradedPending is the fault-aware admission window: while the
	// backend reports Degraded (breaker open, batches answered by the
	// slower CPU fallback), each shard admits only this many undelivered
	// requests and fails the excess fast with ErrOverloaded — regardless
	// of Shed, since backpressure against a degraded backend just builds
	// the queue the bound exists to prevent. Zero selects MaxPending/2
	// (minimum 1); ignored when MaxPending is zero (an unbounded
	// coalescer has no window to shrink). The full MaxPending window is
	// restored the moment the backend recovers. Under adaptive admission
	// (TargetP99 set) the degraded bound is a clamp on the controller's
	// window, not a second mechanism: the effective window is
	// min(adaptive, DegradedPending) while the backend is degraded.
	DegradedPending int

	// TargetP99, when positive, turns on adaptive admission (DESIGN
	// §11): a closed-loop controller measures per-flush spans (first
	// enqueue to result delivery) and resizes each queue's admission
	// window online — AIMD, clamped to [MinPending, MaxPending] — to
	// hold this latency target. Adaptive admission always sheds at the
	// window (fail-fast with a typed OverloadError carrying a
	// retry-after hint) regardless of Shed: backpressure would hide the
	// very signal the controller regulates. Zero (the default) keeps
	// the static MaxPending/Shed behaviour exactly as before. When set
	// with MaxPending zero, MaxPending defaults to 4096.
	TargetP99 time.Duration

	// MinPending is the adaptive window's floor: the controller never
	// shrinks below it, so a transient latency spike cannot collapse
	// admission entirely. Zero selects MaxPending/64 (minimum 1).
	// Ignored without TargetP99.
	MinPending int

	// FlushStall, when positive, sleeps this long under a
	// coalescer-wide mutex before every flush's backend call — a
	// serialized stall modelling device occupancy, which gives the
	// coalescer a deterministic capacity of MaxBatch/FlushStall
	// requests per second regardless of host speed. Benchmark and test
	// hook only; zero (the default) is a no-op.
	FlushStall time.Duration
}

// Result is the outcome of one coalesced lookup.
type Result[K keys.Key] struct {
	Value K
	Found bool
	Err   error
}

// pending is one shard's forming batch plus the result staging its
// flush writes into. Instances are pooled: a flusher returns its batch
// to the pool once every caller's result has been delivered.
type pending[K keys.Key] struct {
	keys    []K
	replies []chan Result[K]
	values  []K
	found   []bool

	// Sorted-flush staging: each sorted slot's submission position and
	// the sorted-slot-to-unique-slot map after duplicate folding. Both
	// pooled with the batch, so the sorted flush allocates nothing. The
	// keys themselves are sorted in place — the batch is detached from
	// its shard before flushing and the submission order is recoverable
	// through perm, so no second key array is needed.
	perm []int32
	uref []int32

	// t0 is the batch's first-enqueue time, armed only under adaptive
	// admission: the flush span time.Since(t0) is the latency the
	// batch's oldest request observed, the controller's input signal.
	t0 time.Time
}

// shard is one independent pending queue with its own deadline timer.
// The timer is created once and re-armed on each batch's first request
// (Go 1.23 timer semantics make Reset/Stop race-free without channel
// draining); a per-shard goroutine waits on it and flushes
// deadline-expired batches.
type shard[K keys.Key] struct {
	mu     sync.Mutex
	cur    *pending[K] // nil after close
	timer  *time.Timer
	closed bool

	// slots is the admission window: capacity MaxPending, one token
	// held per accepted-but-undelivered request. nil when unbounded.
	// Tokens are acquired before the shard lock (a blocked submitter
	// must not hold it) and released after result delivery.
	slots chan struct{}
}

// Coalescer collects point lookups arriving from many goroutines into
// batches and serves each batch with one Server.LookupBatchInto call —
// the request-coalescing discipline that recovers the paper's batched
// throughput from a point-request workload. Submissions are spread
// round-robin over independent shards; a shard's batch is flushed when
// it reaches MaxBatch requests (inline, by the submitter that filled
// it) or when its oldest request has waited for the Window deadline
// (by the shard's flusher goroutine), whichever comes first, so a lone
// request is never starved.
//
// With Options.MaxPending set, each shard admits at most that many
// undelivered requests; excess submissions block for backpressure or,
// with Options.Shed, fail fast with ErrOverloaded — the admission
// control that keeps tail latency bounded under deep client pipelines.
//
// Close stops intake: later submissions fail fast with ErrClosed, and
// requests still pending when Close runs are failed with ErrClosed
// rather than left hanging. A batch already being flushed completes
// normally.
type Coalescer[K keys.Key] struct {
	be  Backend[K]
	opt Options

	// degPending is the resolved degraded-mode admission bound (0 when
	// MaxPending is unbounded).
	degPending int

	shards []shard[K]
	next   atomic.Uint64 // round-robin shard cursor

	batchPool sync.Pool // *pending[K]
	replyPool sync.Pool // chan Result[K], capacity 1

	done      chan struct{} // closed when Close runs; stops the flushers
	closeOnce sync.Once
	wg        sync.WaitGroup

	batches   atomic.Int64 // batches flushed
	queries   atomic.Int64 // requests served through batches
	folded    atomic.Int64 // duplicate keys folded out of sorted flushes
	shed      atomic.Int64 // requests refused with ErrOverloaded
	degShed   atomic.Int64 // of those, refused by fault-aware admission
	deadlines atomic.Int64 // requests abandoned with ErrDeadlineExceeded

	// Adaptive admission state (DESIGN §11). ctl is nil when TargetP99
	// is unset, which keeps the static admission path untouched.
	// overload caches the current typed shed error so the shed path
	// hands out an immutable value instead of allocating per request;
	// shedRate is the windowed sheds/sec tracker behind ShedRate().
	ctl      *controller
	overload atomic.Pointer[OverloadError]
	shedRate rateTracker

	// stallMu serializes Options.FlushStall sleeps across all shards so
	// the stall models one shared device, not one per queue.
	stallMu sync.Mutex
}

// NewCoalescer starts a coalescer over a backend — a Server or a
// ShardedServer's coalescing adapter. The caller must Close it to stop
// the per-shard flusher goroutines.
func NewCoalescer[K keys.Key](be Backend[K], opt Options) *Coalescer[K] {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = be.Options().BucketSize
	}
	if opt.Window <= 0 {
		opt.Window = DefaultWindow
	}
	if opt.Shards <= 0 {
		opt.Shards = runtime.GOMAXPROCS(0)
	}
	if opt.TargetP99 > 0 {
		// Adaptive admission needs a bounded window to resize.
		if opt.MaxPending <= 0 {
			opt.MaxPending = 4096
		}
		if opt.MinPending <= 0 {
			opt.MinPending = opt.MaxPending / 64
		}
		if opt.MinPending < 1 {
			opt.MinPending = 1
		}
		if opt.MinPending > opt.MaxPending {
			opt.MinPending = opt.MaxPending
		}
	}
	if opt.MaxPending > 0 {
		if opt.DegradedPending <= 0 {
			opt.DegradedPending = opt.MaxPending / 2
		}
		if opt.DegradedPending < 1 {
			opt.DegradedPending = 1
		}
	}
	c := &Coalescer[K]{
		be:         be,
		opt:        opt,
		degPending: opt.DegradedPending,
		shards:     make([]shard[K], opt.Shards),
		done:       make(chan struct{}),
	}
	if opt.TargetP99 > 0 {
		c.ctl = newController(opt)
	}
	// The cached shed error: static coalescers hint one coalescing
	// window (the pre-adaptive retry advice); adaptive steps refresh it
	// with the live drain estimate.
	ra := opt.Window
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	c.overload.Store(&OverloadError{RetryAfter: ra})
	c.batchPool.New = func() any {
		p := &pending[K]{
			keys:    make([]K, 0, opt.MaxBatch),
			replies: make([]chan Result[K], 0, opt.MaxBatch),
			values:  make([]K, opt.MaxBatch),
			found:   make([]bool, opt.MaxBatch),
		}
		if !opt.Unsorted {
			p.perm = make([]int32, opt.MaxBatch)
			p.uref = make([]int32, opt.MaxBatch)
		}
		return p
	}
	c.replyPool.New = func() any { return make(chan Result[K], 1) }
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cur = c.getBatch()
		sh.timer = time.NewTimer(time.Hour)
		sh.timer.Stop()
		if opt.MaxPending > 0 {
			sh.slots = make(chan struct{}, opt.MaxPending)
		}
		c.wg.Add(1)
		go c.flusher(sh)
	}
	return c
}

func (c *Coalescer[K]) getBatch() *pending[K] {
	p := c.batchPool.Get().(*pending[K])
	p.keys = p.keys[:0]
	p.replies = p.replies[:0]
	p.t0 = time.Time{}
	return p
}

// Submit enqueues one lookup and returns the channel its Result will be
// delivered on. The channel receives exactly one Result; after Close it
// receives ErrClosed, and past the admission bound in shed mode it
// receives ErrOverloaded.
func (c *Coalescer[K]) Submit(key K) <-chan Result[K] {
	reply := make(chan Result[K], 1)
	if err := c.submit(key, reply); err != nil {
		reply <- Result[K]{Err: err}
	}
	return reply
}

// Lookup submits one query and blocks for its coalesced result. The
// reply cell is pooled, so the steady-state path allocates nothing.
func (c *Coalescer[K]) Lookup(key K) (K, bool, error) {
	reply := c.replyPool.Get().(chan Result[K])
	if err := c.submit(key, reply); err != nil {
		c.replyPool.Put(reply)
		var zero K
		return zero, false, err
	}
	res := <-reply
	c.replyPool.Put(reply)
	return res.Value, res.Found, res.Err
}

// LookupCtx is Lookup with a caller deadline covering both admission
// (a backpressure wait at the MaxPending bound) and the parked wait for
// the coalesced result. An expired request returns ErrDeadlineExceeded
// and is abandoned: its slot in the forming batch still flushes, but
// nobody waits on the reply. Abandoned reply cells are not pooled (the
// late flush still writes into them, cap 1 makes that non-blocking), so
// this path allocates — use plain Lookup when no deadline is needed.
func (c *Coalescer[K]) LookupCtx(ctx context.Context, key K) (K, bool, error) {
	if ctx.Done() == nil {
		return c.Lookup(key)
	}
	var zero K
	reply := make(chan Result[K], 1)
	if err := c.submitCtx(ctx, key, reply); err != nil {
		return zero, false, err
	}
	select {
	case res := <-reply:
		return res.Value, res.Found, res.Err
	case <-ctx.Done():
		c.deadlines.Add(1)
		return zero, false, ErrDeadlineExceeded
	}
}

// submit appends the request to a shard's forming batch, arming the
// shard's deadline timer on the batch's first request and flushing
// inline when the batch fills. A non-nil error (ErrClosed,
// ErrOverloaded) means the request was not queued and nothing will be
// delivered on reply.
func (c *Coalescer[K]) submit(key K, reply chan Result[K]) error {
	return c.submitCtx(context.Background(), key, reply)
}

// submitCtx is submit with a deadline on the backpressure wait: a
// submitter blocked at the MaxPending bound gives up with
// ErrDeadlineExceeded when ctx expires (context.Background's nil Done
// channel makes the extra select case free for undeadlined callers).
func (c *Coalescer[K]) submitCtx(ctx context.Context, key K, reply chan Result[K]) error {
	sh := &c.shards[c.next.Add(1)%uint64(len(c.shards))]
	if sh.slots != nil && c.ctl != nil {
		// Adaptive admission: the effective window is the controller's
		// live value, clamped to DegradedPending while the backend is
		// degraded (the breaker path composes as a clamp on the same
		// window, not a second mechanism). Past the window the request
		// always fails fast with the cached typed error — backpressure
		// would hide the latency signal the controller regulates. The
		// length check is soft (a racing submitter can land one past
		// it), but the token channel's MaxPending capacity stays the
		// hard cap.
		w := int(c.ctl.window.Load())
		eff := w
		clamped := false
		if eff > c.degPending && len(sh.slots) >= c.degPending && c.be.Degraded() {
			eff = c.degPending
			clamped = true
		}
		if n := len(sh.slots); n >= eff {
			c.shed.Add(1)
			if clamped && n < w {
				c.degShed.Add(1)
			}
			c.noteShed()
			return c.overloadErr()
		}
		select {
		case sh.slots <- struct{}{}:
		default:
			c.shed.Add(1)
			c.noteShed()
			return c.overloadErr()
		}
	} else if sh.slots != nil {
		// Fault-aware admission: while the backend is degraded, the
		// effective window shrinks to DegradedPending and the excess
		// fails fast — even in backpressure mode, since queueing against
		// the slower fallback path only builds the backlog the bound
		// exists to prevent. The cheap length check runs first so the
		// healthy path never pays for the breaker-state load.
		if len(sh.slots) >= c.degPending && c.be.Degraded() {
			c.shed.Add(1)
			c.degShed.Add(1)
			c.noteShed()
			return c.overloadErr()
		}
		// Admission: take a window token before the shard lock so a
		// blocked submitter never holds the lock the flusher needs.
		if c.opt.Shed {
			select {
			case sh.slots <- struct{}{}:
			default:
				c.shed.Add(1)
				c.noteShed()
				return c.overloadErr()
			}
		} else {
			select {
			case sh.slots <- struct{}{}:
			case <-c.done:
				return ErrClosed
			case <-ctx.Done():
				c.deadlines.Add(1)
				return ErrDeadlineExceeded
			}
		}
	}
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		if sh.slots != nil {
			<-sh.slots
		}
		return ErrClosed
	}
	p := sh.cur
	p.keys = append(p.keys, key)
	p.replies = append(p.replies, reply)
	if len(p.keys) >= c.opt.MaxBatch {
		// The submitter that filled the batch flushes it inline: the
		// shard gets a fresh batch and the lock is dropped before the
		// heterogeneous search runs.
		sh.cur = c.getBatch()
		sh.timer.Stop()
		sh.mu.Unlock()
		c.flush(sh, p)
		return nil
	}
	if len(p.keys) == 1 {
		if c.ctl != nil {
			p.t0 = time.Now()
		}
		sh.timer.Reset(c.opt.Window)
	}
	sh.mu.Unlock()
	return nil
}

// flusher is a shard's deadline goroutine: it waits for the shard's
// reused timer to fire and flushes whatever has accumulated. An empty
// or already-stolen batch is a benign wakeup.
func (c *Coalescer[K]) flusher(sh *shard[K]) {
	defer c.wg.Done()
	for {
		select {
		case <-sh.timer.C:
			sh.mu.Lock()
			p := sh.cur
			if sh.closed || len(p.keys) == 0 {
				sh.mu.Unlock()
				continue
			}
			sh.cur = c.getBatch()
			sh.mu.Unlock()
			c.flush(sh, p)
		case <-c.done:
			return
		}
	}
}

// flush serves one batch with the allocation-free batch search and
// distributes each caller's result, then recycles the batch and
// releases the shard's admission window tokens.
//
// The default sorted flush presorts the keys (tracking each key's
// submission position), folds exact duplicates into one batch slot, and
// hands the backend a sorted duplicate-free batch — which the
// shared-descent search resolves at one node probe per distinct node
// per level, and which decomposes into one contiguous run per shard on
// a sharded backend. Each unique result fans back out to every waiter
// that submitted that key.
func (c *Coalescer[K]) flush(sh *shard[K], p *pending[K]) {
	n := len(p.keys)
	t0 := p.t0
	if c.opt.FlushStall > 0 {
		// The serialized stall models device occupancy: one flush at a
		// time holds the "device" for FlushStall, so the coalescer's
		// capacity is exactly MaxBatch/FlushStall regardless of host.
		c.stallMu.Lock()
		time.Sleep(c.opt.FlushStall)
		c.stallMu.Unlock()
	}
	values, found := p.values[:n], p.found[:n]
	if c.opt.Unsorted {
		_, err := c.be.LookupBatchInto(p.keys, values, found)
		if err != nil {
			c.fail(sh, p, err)
			return
		}
		for i, reply := range p.replies {
			reply <- Result[K]{Value: values[i], Found: found[i]}
		}
		c.batches.Add(1)
		c.queries.Add(int64(n))
		c.releaseSlots(sh, n)
		c.batchPool.Put(p)
		c.noteFlushSpan(t0)
		return
	}

	skeys, perm, uref := p.keys, p.perm[:n], p.uref[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	keys.SortWithPerm(skeys, perm)
	u := 0
	var last K
	for i := 0; i < n; i++ {
		k := skeys[i]
		if u > 0 && k == last {
			uref[i] = int32(u - 1)
			continue
		}
		skeys[u] = k
		uref[i] = int32(u)
		last = k
		u++
	}

	_, err := c.be.LookupBatchSortedInto(skeys[:u], values[:u], found[:u])
	if err != nil {
		c.fail(sh, p, err)
		return
	}
	for i := 0; i < n; i++ {
		j := uref[i]
		p.replies[perm[i]] <- Result[K]{Value: values[j], Found: found[j]}
	}
	c.batches.Add(1)
	c.queries.Add(int64(n))
	c.folded.Add(int64(n - u))
	c.releaseSlots(sh, n)
	c.batchPool.Put(p)
	c.noteFlushSpan(t0)
}

// fail delivers err to every caller in the batch and recycles it. The
// span still feeds the controller: a failed flush occupied the pipeline
// just the same.
func (c *Coalescer[K]) fail(sh *shard[K], p *pending[K], err error) {
	t0 := p.t0
	for _, reply := range p.replies {
		reply <- Result[K]{Err: err}
	}
	c.releaseSlots(sh, len(p.replies))
	c.batchPool.Put(p)
	c.noteFlushSpan(t0)
}

// releaseSlots returns n admission tokens to the shard's window once
// their requests' results have been delivered.
func (c *Coalescer[K]) releaseSlots(sh *shard[K], n int) {
	if sh.slots == nil {
		return
	}
	for i := 0; i < n; i++ {
		<-sh.slots
	}
}

// Close stops intake, fails all pending requests with ErrClosed and
// waits for the flushers to exit. A batch already being flushed
// completes normally. Close is idempotent.
func (c *Coalescer[K]) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			sh.closed = true
			p := sh.cur
			sh.cur = nil
			sh.timer.Stop()
			sh.mu.Unlock()
			if p != nil && len(p.keys) > 0 {
				c.fail(sh, p, ErrClosed)
			}
		}
	})
	c.wg.Wait()
}

// Batches returns the number of flushed batches.
func (c *Coalescer[K]) Batches() int64 { return c.batches.Load() }

// Queries returns the number of requests served through batches.
func (c *Coalescer[K]) Queries() int64 { return c.queries.Load() }

// Folded returns how many duplicate keys were folded into an already-
// occupied batch slot by sorted flushes: identical keys in one window
// cost one descent, and the single result fans out to every waiter.
func (c *Coalescer[K]) Folded() int64 { return c.folded.Load() }

// Shed returns how many requests were refused with ErrOverloaded,
// including those refused by fault-aware admission.
func (c *Coalescer[K]) Shed() int64 { return c.shed.Load() }

// DegradedShed returns how many requests were refused because the
// backend was degraded and the shrunken admission window was full.
func (c *Coalescer[K]) DegradedShed() int64 { return c.degShed.Load() }

// Deadlines returns how many requests were abandoned with
// ErrDeadlineExceeded.
func (c *Coalescer[K]) Deadlines() int64 { return c.deadlines.Load() }
