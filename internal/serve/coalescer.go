package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"hbtree/internal/keys"
)

// ErrClosed is returned for requests that a closed Coalescer can no
// longer serve: submissions after Close, and requests still pending
// when Close ran.
var ErrClosed = errors.New("serve: coalescer closed")

// DefaultWindow is the default coalescing deadline: a lone request
// waits at most this long for companions before its batch is flushed.
const DefaultWindow = 100 * time.Microsecond

// Options configures a Coalescer.
type Options struct {
	// MaxBatch flushes a batch as soon as it holds this many requests;
	// zero selects the tree's bucket size, so a full batch is exactly
	// one bucket of the heterogeneous search.
	MaxBatch int

	// Window is the deadline: the first request of a batch waits at
	// most this long before the batch is flushed regardless of size.
	// Zero selects DefaultWindow.
	Window time.Duration

	// Queue is the submission queue capacity; zero selects 2*MaxBatch.
	Queue int
}

// Result is the outcome of one coalesced lookup.
type Result[K keys.Key] struct {
	Value K
	Found bool
	Err   error
}

// request is one caller's pending lookup; reply has capacity 1 so the
// flusher never blocks delivering it.
type request[K keys.Key] struct {
	key   K
	reply chan Result[K]
}

// Coalescer collects point lookups arriving from many goroutines into
// batches and serves each batch with one Server.LookupBatch call — the
// request-coalescing discipline that recovers the paper's batched
// throughput from a point-request workload. A batch is flushed when it
// reaches MaxBatch requests or when its oldest request has waited for
// the Window deadline, whichever comes first, so a lone request is
// never starved.
//
// Close stops intake: later submissions fail fast with ErrClosed, and
// requests still queued when Close runs are failed with ErrClosed
// rather than left hanging.
type Coalescer[K keys.Key] struct {
	srv *Server[K]
	opt Options

	// sendMu makes Close mutually exclusive with in-flight
	// submissions: Submit sends while holding the read side, Close
	// flips closed and closes reqs while holding the write side, so
	// nothing ever sends on the closed channel.
	sendMu sync.RWMutex
	closed bool

	reqs chan request[K]
	done chan struct{} // closed when the flusher has exited

	batches atomic.Int64 // batches flushed
	queries atomic.Int64 // requests served through batches
}

// NewCoalescer starts a coalescer over srv. The caller must Close it to
// stop the flusher goroutine.
func NewCoalescer[K keys.Key](srv *Server[K], opt Options) *Coalescer[K] {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = srv.Options().BucketSize
	}
	if opt.Window <= 0 {
		opt.Window = DefaultWindow
	}
	if opt.Queue <= 0 {
		opt.Queue = 2 * opt.MaxBatch
	}
	c := &Coalescer[K]{
		srv:  srv,
		opt:  opt,
		reqs: make(chan request[K], opt.Queue),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

// Submit enqueues one lookup and returns the channel its Result will be
// delivered on. The channel receives exactly one Result; after Close it
// receives ErrClosed.
func (c *Coalescer[K]) Submit(key K) <-chan Result[K] {
	reply := make(chan Result[K], 1)
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		reply <- Result[K]{Err: ErrClosed}
		return reply
	}
	c.reqs <- request[K]{key: key, reply: reply}
	c.sendMu.RUnlock()
	return reply
}

// Lookup submits one query and blocks for its coalesced result.
func (c *Coalescer[K]) Lookup(key K) (K, bool, error) {
	res := <-c.Submit(key)
	return res.Value, res.Found, res.Err
}

// Close stops intake, fails all pending requests with ErrClosed and
// waits for the flusher to exit. A batch already being flushed
// completes normally. Close is idempotent.
func (c *Coalescer[K]) Close() {
	c.sendMu.Lock()
	already := c.closed
	c.closed = true
	c.sendMu.Unlock()
	if !already {
		close(c.reqs)
	}
	<-c.done
}

// Batches returns the number of flushed batches.
func (c *Coalescer[K]) Batches() int64 { return c.batches.Load() }

// Queries returns the number of requests served through batches.
func (c *Coalescer[K]) Queries() int64 { return c.queries.Load() }

// run is the flusher: it blocks for a batch's first request, collects
// companions until the batch is full or the deadline fires, and serves
// the batch with one LookupBatch call under the server's read lock.
func (c *Coalescer[K]) run() {
	defer close(c.done)
	batchKeys := make([]K, 0, c.opt.MaxBatch)
	replies := make([]chan Result[K], 0, c.opt.MaxBatch)
	for {
		first, ok := <-c.reqs
		if !ok {
			return
		}
		batchKeys = append(batchKeys[:0], first.key)
		replies = append(replies[:0], first.reply)

		if len(batchKeys) < c.opt.MaxBatch {
			timer := time.NewTimer(c.opt.Window)
		collect:
			for len(batchKeys) < c.opt.MaxBatch {
				select {
				case r, ok := <-c.reqs:
					if !ok {
						// Closed with requests pending: fail them
						// rather than hang their callers.
						timer.Stop()
						c.fail(replies, ErrClosed)
						return
					}
					batchKeys = append(batchKeys, r.key)
					replies = append(replies, r.reply)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		c.flush(batchKeys, replies)
	}
}

// flush serves one batch and distributes each caller's result.
func (c *Coalescer[K]) flush(batchKeys []K, replies []chan Result[K]) {
	values, found, _, err := c.srv.LookupBatch(batchKeys)
	if err != nil {
		c.fail(replies, err)
		return
	}
	for i, reply := range replies {
		reply <- Result[K]{Value: values[i], Found: found[i]}
	}
	c.batches.Add(1)
	c.queries.Add(int64(len(batchKeys)))
}

// fail delivers err to every pending caller.
func (c *Coalescer[K]) fail(replies []chan Result[K], err error) {
	for _, reply := range replies {
		reply <- Result[K]{Err: err}
	}
}
