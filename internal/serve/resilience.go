package serve

import (
	"errors"
	"math/rand/v2"
	"time"

	"hbtree/internal/breaker"
	"hbtree/internal/core"
	"hbtree/internal/fault"
	"hbtree/internal/keys"
	"hbtree/internal/vclock"
)

// ErrDeadlineExceeded is returned when a request's context expires
// before the serving layer could complete it: a parked coalesced GET
// whose flush never came, or an update abandoned while waiting for the
// writer slot. It is distinct from ErrOverloaded (admission refused
// immediately — retry later) and ErrClosed (the server is shutting
// down — do not retry here).
var ErrDeadlineExceeded = errors.New("serve: request deadline exceeded")

// RetryOptions bounds the GPU-path retry loop that runs before a batch
// degrades to the CPU-only fallback.
type RetryOptions struct {
	// MaxAttempts is the total number of GPU-path attempts per batch
	// (first try included). Default 3.
	MaxAttempts int
	// BackoffBase is the pre-jitter delay before the first retry; each
	// further retry doubles it up to BackoffMax. The defaults are small
	// (100µs base, 2ms cap) — the injected faults the loop rides out are
	// transient by construction, and batch flushes sit on the request
	// path.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (r *RetryOptions) fill() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 100 * time.Microsecond
	}
	if r.BackoffMax <= 0 {
		r.BackoffMax = 2 * time.Millisecond
	}
}

// SetResilience replaces the server's breaker and retry policy. Call
// before serving traffic; the breaker swap is not synchronised with
// in-flight batches.
func (s *Server[K]) SetResilience(b breaker.Options, r RetryOptions) {
	r.fill()
	s.brk = breaker.New(b)
	s.retry = r
}

// Breaker exposes the server's circuit breaker (tests and the bench
// harness force it open to measure pure-fallback throughput).
func (s *Server[K]) Breaker() *breaker.Breaker { return s.brk }

// backoff sleeps the jittered exponential delay before retry `attempt`
// (1-based): base<<(attempt-1) capped at BackoffMax, jittered uniformly
// over [d/2, 3d/2) so synchronised clients decorrelate.
func (s *Server[K]) backoff(attempt int) {
	d := s.retry.BackoffBase << (attempt - 1)
	if d > s.retry.BackoffMax || d <= 0 {
		d = s.retry.BackoffMax
	}
	time.Sleep(d/2 + time.Duration(rand.Int64N(int64(d))))
}

// lookupBatchResilient answers one batch with the degraded-mode
// discipline: try the heterogeneous GPU path while the breaker admits
// it, retrying injected faults with jittered backoff; past the retry
// budget — or with the breaker open — answer from the host-resident
// tree instead. Structural (non-injected) errors surface unchanged.
// The caller still holds its snapshot pin, so the fallback reads the
// same version the GPU attempt did. With sorted set, the GPU attempts
// take the shared-descent path (the host fallback is order-agnostic, so
// degraded-mode results are identical either way).
func (s *Server[K]) lookupBatchResilient(tree *core.Tree[K], queries []K, values []K, found []bool, sorted bool) (core.SearchStats, error) {
	for attempt := 1; attempt <= s.retry.MaxAttempts && s.brk.Allow(); attempt++ {
		if attempt > 1 {
			s.retries.Add(1)
			s.backoff(attempt - 1)
		}
		var stats core.SearchStats
		var err error
		if sorted {
			stats, err = tree.LookupBatchSortedInto(queries, values, found)
		} else {
			stats, err = tree.LookupBatchInto(queries, values, found)
		}
		if err == nil {
			s.brk.Success()
			return stats, nil
		}
		if !fault.Is(err) {
			return stats, err
		}
		s.brk.Failure()
		s.gpuFaults.Add(1)
	}
	// Host-only fallback. A load-balanced server keeps the balanced
	// plan's partial-descent shape — pre-walk to the discovered depth,
	// then resume the remaining levels on the host instead of the device
	// — so degraded-mode serving exercises the same bucket structure and
	// cache-resident top levels as the healthy path. Plain servers take
	// the flat host batch search.
	var stats core.SearchStats
	if s.opt.LoadBalance {
		stats = tree.LookupBatchPartialCPUInto(queries, values, found)
	} else {
		stats = tree.LookupBatchCPUInto(queries, values, found)
	}
	s.fbBatches.Add(1)
	s.fbQueries.Add(int64(len(queries)))
	return stats, nil
}

// rangeBatchResilient is lookupBatchResilient for batched range
// queries. The fallback resolves each start key with a host-side range
// scan; its virtual cost approximates one serial descent per query plus
// the leaf walk already included in the descent model — an upper bound
// the during-fault p99 assertions lean on.
func (s *Server[K]) rangeBatchResilient(tree *core.Tree[K], starts []K, count int) ([][]keys.Pair[K], core.RangeStats, error) {
	for attempt := 1; attempt <= s.retry.MaxAttempts && s.brk.Allow(); attempt++ {
		if attempt > 1 {
			s.retries.Add(1)
			s.backoff(attempt - 1)
		}
		out, stats, err := tree.RangeQueryBatch(starts, count)
		if err == nil {
			s.brk.Success()
			return out, stats, nil
		}
		if !fault.Is(err) {
			return nil, stats, err
		}
		s.brk.Failure()
		s.gpuFaults.Add(1)
	}
	out := make([][]keys.Pair[K], len(starts))
	var stats core.RangeStats
	stats.Queries = len(starts)
	for i, st := range starts {
		out[i] = tree.RangeQuery(st, count, nil)
		stats.Matches += len(out[i])
	}
	stats.SimTime = s.pointCost * vclock.Duration(len(starts))
	if stats.SimTime > 0 {
		stats.ThroughputQPS = float64(len(starts)) / stats.SimTime.Seconds()
	}
	s.fbBatches.Add(1)
	s.fbQueries.Add(int64(len(starts)))
	return out, stats, nil
}

// worseState orders breaker states by degradation for the sharded
// aggregate: open > half-open > closed.
func worseState(a, b breaker.State) breaker.State {
	rank := func(st breaker.State) int {
		switch st {
		case breaker.Open:
			return 2
		case breaker.HalfOpen:
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}
