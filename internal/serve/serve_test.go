package serve

import (
	"testing"

	"hbtree/internal/core"
	"hbtree/internal/cpubtree"
	"hbtree/internal/workload"
)

// TestServerReadPaths verifies every read operation through the lock.
func TestServerReadPaths(t *testing.T) {
	srv, pairs := newTestServer(t, core.Implicit, 1<<12)

	if v, ok := srv.Lookup(pairs[7].Key); !ok || v != pairs[7].Value {
		t.Fatalf("Lookup = (%d, %v)", v, ok)
	}
	qs := []uint64{pairs[0].Key, pairs[100].Key, pairs[200].Key}
	values, found, stats, err := srv.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !found[i] || values[i] != workload.ValueFor(q) {
			t.Fatalf("batch[%d] = (%d, %v)", i, values[i], found[i])
		}
	}
	if stats.Queries != len(qs) {
		t.Fatalf("stats.Queries = %d", stats.Queries)
	}

	rq := srv.RangeQuery(pairs[10].Key, 5)
	if len(rq) != 5 || rq[0].Key != pairs[10].Key {
		t.Fatalf("RangeQuery = %v", rq)
	}
	sc := srv.Scan(pairs[10].Key, 5)
	if len(sc) != 5 || sc[0] != rq[0] || sc[4] != rq[4] {
		t.Fatalf("Scan disagrees with RangeQuery: %v vs %v", sc, rq)
	}

	if srv.NumPairs() != len(pairs) {
		t.Fatalf("NumPairs = %d", srv.NumPairs())
	}
	if srv.Stats().NumPairs != len(pairs) {
		t.Fatalf("Stats.NumPairs = %d", srv.Stats().NumPairs)
	}
	if srv.Describe() == "" {
		t.Fatal("empty Describe")
	}
	if srv.DeviceCounters().BytesH2D == 0 {
		t.Fatal("no H2D traffic recorded after build+batch")
	}
}

// TestServerWritePath drives Update through the writer lock and checks
// visibility plus replica consistency.
func TestServerWritePath(t *testing.T) {
	srv, pairs := newTestServer(t, core.Regular, 1<<12)

	ops := []cpubtree.Op[uint64]{
		{Key: pairs[3].Key, Value: 999},
		{Key: pairs[4].Key, Delete: true},
	}
	stats, err := srv.Update(ops, core.Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 2 {
		t.Fatalf("Applied = %d", stats.Applied)
	}
	if v, ok := srv.Lookup(pairs[3].Key); !ok || v != 999 {
		t.Fatalf("updated key = (%d, %v)", v, ok)
	}
	if _, ok := srv.Lookup(pairs[4].Key); ok {
		t.Fatal("deleted key still found")
	}
	if err := srv.Tree().VerifyReplica(); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.Updates != int64(len(ops)) || m.Lookups == 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestVirtualTimeAccounting: per-request lookups charge the serial
// descent, batches charge their makespan, and a batch is far cheaper
// per query than the same queries served individually.
func TestVirtualTimeAccounting(t *testing.T) {
	// Default options: the paper's 16K bucket, so the batch below is a
	// single bucket and pays the transfer/launch overheads once.
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<14, 42)
	tree, err := core.Build(pairs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	srv := NewServer(tree)

	const q = 512
	queries := make([]uint64, q)
	for i := range queries {
		queries[i] = pairs[(i*37)%len(pairs)].Key
	}

	srv.ResetMetrics()
	for _, k := range queries {
		srv.Lookup(k)
	}
	perRequest := srv.VirtualTime()
	if want := float64(srv.PointLookupCost()) * q; float64(perRequest) < 0.99*want {
		t.Fatalf("per-request virtual time %v below %v", perRequest, want)
	}

	srv.ResetMetrics()
	if _, _, _, err := srv.LookupBatch(queries); err != nil {
		t.Fatal(err)
	}
	batched := srv.VirtualTime()
	if batched <= 0 {
		t.Fatal("batch charged no virtual time")
	}
	// The batch amortises transfer and launch overheads across the
	// bucket; serial per-request serving must cost more in total.
	if perRequest <= batched {
		t.Fatalf("expected batching to win: per-request %v vs batch %v", perRequest, batched)
	}
}
