// Package mem simulates the host virtual-memory and cache subsystem that
// the paper manipulates through huge pages and observes through PAPI
// hardware counters (Sections 4.1 and 6.2).
//
// The trees in this repository store their data in ordinary Go slices;
// what this package adds is an address model on top of them. A Allocator
// hands out virtual address ranges backed by either 4 KiB or 1 GiB pages
// (the paper's two configurations), a TLB simulates the translation
// caches — including the Intel restriction of only four 1 GiB-page
// entries — and a Cache simulates the set-associative last-level cache.
// Instrumented tree searches report every cache-line touch to a
// Hierarchy, whose counters substitute for PAPI and feed the virtual-time
// cost model.
package mem

import (
	"fmt"
	"hbtree/internal/keys"
)

// PageKind selects the page size backing a segment.
type PageKind int

// The two page sizes evaluated in the paper.
const (
	Page4K PageKind = iota // regular 4 KiB pages
	Page1G                 // 1 GiB huge pages
)

// Bytes returns the page size in bytes.
func (p PageKind) Bytes() int64 {
	if p == Page1G {
		return 1 << 30
	}
	return 4 << 10
}

// String names the page kind.
func (p PageKind) String() string {
	if p == Page1G {
		return "1G"
	}
	return "4K"
}

// Segment is a contiguous virtual address range returned by Alloc.
type Segment struct {
	Base int64
	Size int64
	Kind PageKind
}

// Contains reports whether the address falls inside the segment.
func (s Segment) Contains(addr int64) bool {
	return addr >= s.Base && addr < s.Base+s.Size
}

// Addr returns the virtual address of byte offset off within the segment.
func (s Segment) Addr(off int64) int64 { return s.Base + off }

// Allocator is a bump allocator over a simulated virtual address space.
// It mirrors the paper's custom memory allocator, "which allows
// determining whether a node resides on a huge page or not" (Section
// 4.1): every returned segment knows its page kind, and segments never
// share a page.
type Allocator struct {
	next int64
}

// NewAllocator returns an allocator whose address space starts above the
// null page.
func NewAllocator() *Allocator { return &Allocator{next: 1 << 21} }

// Alloc reserves size bytes on pages of the given kind. The segment is
// page-aligned so that page-number arithmetic in the TLB model is exact.
func (a *Allocator) Alloc(size int64, kind PageKind) Segment {
	if size < 0 {
		panic(fmt.Sprintf("mem: negative allocation %d", size))
	}
	ps := kind.Bytes()
	base := (a.next + ps - 1) / ps * ps
	a.next = base + size
	return Segment{Base: base, Size: size, Kind: kind}
}

// Counters aggregates the simulated hardware events of an instrumented
// run. It is the reproduction's stand-in for the PAPI counters used in
// Section 6.2.
type Counters struct {
	Lines     int64 // cache-line touches issued
	LLCHits   int64 // touches that hit the simulated LLC
	LLCMisses int64 // touches that went to memory
	TLBHits   int64 // address translations served by the TLB
	TLBMiss4K int64 // misses on 4 KiB-page translations
	TLBMiss1G int64 // misses on 1 GiB-page translations
}

// TLBMisses returns the total translation misses.
func (c Counters) TLBMisses() int64 { return c.TLBMiss4K + c.TLBMiss1G }

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Lines += other.Lines
	c.LLCHits += other.LLCHits
	c.LLCMisses += other.LLCMisses
	c.TLBHits += other.TLBHits
	c.TLBMiss4K += other.TLBMiss4K
	c.TLBMiss1G += other.TLBMiss1G
}

// lruSet is a small fully-associative LRU array used for TLB ways and
// cache sets. Entries are kept in recency order, most recent first.
type lruSet struct {
	tags []int64
	ways int
}

func newLRUSet(ways int) lruSet { return lruSet{tags: make([]int64, 0, ways), ways: ways} }

// touch looks up the tag, promoting it on hit and inserting with LRU
// eviction on miss. It reports whether the access hit.
func (s *lruSet) touch(tag int64) bool {
	for i, t := range s.tags {
		if t == tag {
			copy(s.tags[1:i+1], s.tags[:i])
			s.tags[0] = tag
			return true
		}
	}
	if len(s.tags) < s.ways {
		s.tags = append(s.tags, 0)
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = tag
	return false
}

// TLB models the translation caches of one hardware thread: a
// fully-associative LRU array for 4 KiB-page entries and the four-entry
// array Intel provides for 1 GiB pages (Section 4.1).
type TLB struct {
	small lruSet
	huge  lruSet
}

// NewTLB builds a TLB with the given entry counts.
func NewTLB(entries4K, entries1G int) *TLB {
	return &TLB{small: newLRUSet(entries4K), huge: newLRUSet(entries1G)}
}

// Translate simulates the translation of addr on a page of the given
// kind and reports whether it hit the TLB.
func (t *TLB) Translate(addr int64, kind PageKind) bool {
	page := addr / kind.Bytes()
	if kind == Page1G {
		return t.huge.touch(page)
	}
	return t.small.touch(page)
}

// Cache is a set-associative cache of 64-byte lines with LRU replacement,
// used to model the last-level cache for the skew experiment (Figure 12)
// and for the hit-rate input of the CPU cost model.
type Cache struct {
	sets     []lruSet
	setShift uint
	setMask  int64
}

// NewCache builds a cache of the given capacity and associativity.
// Capacity is rounded down to a power-of-two set count.
func NewCache(capacityBytes int64, ways int) *Cache {
	if ways < 1 {
		ways = 1
	}
	nsets := capacityBytes / keys.LineBytes / int64(ways)
	// Round down to a power of two for masked indexing.
	p := int64(1)
	for p*2 <= nsets {
		p *= 2
	}
	if p < 1 {
		p = 1
	}
	c := &Cache{sets: make([]lruSet, p), setMask: p - 1, setShift: 6}
	for i := range c.sets {
		c.sets[i] = newLRUSet(ways)
	}
	return c
}

// Touch accesses the line containing addr and reports whether it hit.
func (c *Cache) Touch(addr int64) bool {
	line := addr >> c.setShift
	set := line & c.setMask
	return c.sets[set].touch(line)
}

// Hierarchy bundles the TLB and LLC models with counters. A Hierarchy is
// not safe for concurrent use; instrumented measurement runs are
// single-threaded, exactly as the paper excluded multi-threading "to
// obtain more accurate measurement" for the TLB experiment (Section 6.2).
type Hierarchy struct {
	TLB   *TLB
	LLC   *Cache
	Count Counters
}

// NewHierarchy builds a hierarchy from entry counts and cache geometry.
func NewHierarchy(entries4K, entries1G int, llcBytes int64, llcWays int) *Hierarchy {
	return &Hierarchy{
		TLB: NewTLB(entries4K, entries1G),
		LLC: NewCache(llcBytes, llcWays),
	}
}

// Touch records one cache-line access at addr on a page of the given
// kind, updating the TLB, LLC and counters.
func (h *Hierarchy) Touch(addr int64, kind PageKind) {
	h.Count.Lines++
	if h.TLB.Translate(addr, kind) {
		h.Count.TLBHits++
	} else if kind == Page1G {
		h.Count.TLBMiss1G++
	} else {
		h.Count.TLBMiss4K++
	}
	if h.LLC.Touch(addr) {
		h.Count.LLCHits++
	} else {
		h.Count.LLCMisses++
	}
}

// ResetCounters zeroes the counters without disturbing TLB/LLC state,
// allowing a warm-up phase before measurement.
func (h *Hierarchy) ResetCounters() { h.Count = Counters{} }

// Toucher is the hook interface trees call on every simulated cache-line
// access. A nil Toucher disables instrumentation at negligible cost.
type Toucher interface {
	Touch(addr int64, kind PageKind)
}

var _ Toucher = (*Hierarchy)(nil)
