package mem

import (
	"testing"
	"testing/quick"
)

func TestPageKind(t *testing.T) {
	if Page4K.Bytes() != 4096 || Page1G.Bytes() != 1<<30 {
		t.Fatal("page sizes wrong")
	}
	if Page4K.String() != "4K" || Page1G.String() != "1G" {
		t.Fatal("page names wrong")
	}
}

func TestAllocatorAlignmentAndDisjointness(t *testing.T) {
	a := NewAllocator()
	s1 := a.Alloc(1000, Page4K)
	s2 := a.Alloc(5000, Page1G)
	s3 := a.Alloc(64, Page4K)
	for _, s := range []Segment{s1, s2, s3} {
		if s.Base%s.Kind.Bytes() != 0 {
			t.Fatalf("segment base %d not aligned to %v page", s.Base, s.Kind)
		}
	}
	if s1.Base+s1.Size > s2.Base || s2.Base+s2.Size > s3.Base {
		t.Fatal("segments overlap")
	}
	if !s1.Contains(s1.Base) || s1.Contains(s1.Base+s1.Size) {
		t.Fatal("Contains wrong")
	}
	if s1.Addr(10) != s1.Base+10 {
		t.Fatal("Addr wrong")
	}
}

func TestAllocatorPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative alloc")
		}
	}()
	NewAllocator().Alloc(-1, Page4K)
}

func TestTLBHitsAndMisses(t *testing.T) {
	tlb := NewTLB(4, 2)
	// First touches miss; repeats hit.
	if tlb.Translate(0, Page4K) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Translate(100, Page4K) { // same 4K page
		t.Fatal("same-page miss")
	}
	if tlb.Translate(4096, Page4K) {
		t.Fatal("new page hit")
	}
	// Fill beyond capacity: LRU evicts page 0.
	for p := int64(1); p <= 4; p++ {
		tlb.Translate(p*4096, Page4K)
	}
	if tlb.Translate(0, Page4K) {
		t.Fatal("evicted page still hit")
	}
}

func TestTLB1GSeparateArray(t *testing.T) {
	tlb := NewTLB(64, 4)
	// Five distinct 1G pages overflow the 4-entry array.
	for p := int64(0); p < 5; p++ {
		if tlb.Translate(p<<30, Page1G) {
			t.Fatalf("cold 1G page %d hit", p)
		}
	}
	if tlb.Translate(0, Page1G) {
		t.Fatal("LRU-evicted 1G page hit")
	}
	// 4 pages fit exactly.
	tlb2 := NewTLB(64, 4)
	for round := 0; round < 3; round++ {
		for p := int64(0); p < 4; p++ {
			hit := tlb2.Translate(p<<30, Page1G)
			if round > 0 && !hit {
				t.Fatalf("resident 1G page %d missed", p)
			}
		}
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// Tiny cache: 2 sets x 2 ways of 64B lines = 256 B.
	c := NewCache(256, 2)
	if c.Touch(0) {
		t.Fatal("cold hit")
	}
	if !c.Touch(0) {
		t.Fatal("warm miss")
	}
	// Lines 0, 128, 256 map to set 0 (2 sets: line>>6 & 1).
	c.Touch(128)
	if !c.Touch(0) {
		t.Fatal("0 evicted too early")
	}
	c.Touch(256) // evicts 128 (LRU)
	if c.Touch(128) {
		t.Fatal("128 should have been evicted")
	}
}

func TestHierarchyCounters(t *testing.T) {
	h := NewHierarchy(16, 4, 1<<20, 4)
	for i := 0; i < 10; i++ {
		h.Touch(int64(i*64), Page4K)
	}
	c := h.Count
	if c.Lines != 10 {
		t.Fatalf("Lines = %d", c.Lines)
	}
	if c.LLCMisses != 10 || c.LLCHits != 0 {
		t.Fatalf("cold LLC: %d/%d", c.LLCHits, c.LLCMisses)
	}
	// All ten lines share one 4K page: 1 miss, 9 hits.
	if c.TLBMiss4K != 1 || c.TLBHits != 9 {
		t.Fatalf("TLB: miss=%d hit=%d", c.TLBMiss4K, c.TLBHits)
	}
	h.ResetCounters()
	if h.Count.Lines != 0 {
		t.Fatal("reset failed")
	}
	// Warm re-touch hits everywhere.
	for i := 0; i < 10; i++ {
		h.Touch(int64(i*64), Page4K)
	}
	if h.Count.LLCHits != 10 || h.Count.TLBMisses() != 0 {
		t.Fatalf("warm: %+v", h.Count)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{Lines: 1, LLCHits: 2, LLCMisses: 3, TLBHits: 4, TLBMiss4K: 5, TLBMiss1G: 6}
	b := a
	a.Add(b)
	if a.Lines != 2 || a.TLBMisses() != 22 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

// TestCacheQuickNoPhantomHits: a cache never reports a hit for a line it
// has not seen since its last eviction-free window; more simply, the
// first touch of any distinct line is always a miss.
func TestCacheQuickNoPhantomHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := NewCache(4096, 2)
		seen := make(map[int64]bool)
		for _, a := range addrs {
			line := int64(a) &^ 63
			hit := c.Touch(line)
			if hit && !seen[line>>6] {
				return false
			}
			seen[line>>6] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
