package vclock

import (
	"strings"
	"sync"
	"testing"
)

func TestDurationUnitsAndString(t *testing.T) {
	if Microsecond != 1000*Nanosecond || Second != 1e9*Nanosecond {
		t.Fatal("unit arithmetic wrong")
	}
	cases := map[Duration]string{
		500 * Nanosecond:       "500.0ns",
		2500 * Nanosecond:      "2.500us",
		3 * Millisecond:        "3.000ms",
		1500 * Millisecond:     "1.500s",
		1250 * Microsecond / 1: "1.250ms",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Fatalf("String(%v ns) = %q, want %q", float64(d), got, want)
		}
	}
	if (2 * Second).Seconds() != 2 {
		t.Fatal("Seconds wrong")
	}
	if (3 * Microsecond).Micros() != 3 {
		t.Fatal("Micros wrong")
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Min(1, 2) != 1 {
		t.Fatal("Max/Min wrong")
	}
}

func TestTimelineSequentialStream(t *testing.T) {
	tl := NewTimeline()
	_, e1 := tl.Schedule(0, ResPCIeH2D, "a", 10)
	s2, e2 := tl.Schedule(0, ResGPU, "b", 20)
	if e1 != 10 || s2 != 10 || e2 != 30 {
		t.Fatalf("stream ordering broken: %v %v %v", e1, s2, e2)
	}
	if tl.Now() != 30 {
		t.Fatalf("Now = %v", tl.Now())
	}
}

func TestTimelineResourceExclusion(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule(0, ResGPU, "k0", 100)
	s, e := tl.Schedule(1, ResGPU, "k1", 50)
	if s != 100 || e != 150 {
		t.Fatalf("resource not exclusive: start %v end %v", s, e)
	}
	// A different resource is free immediately.
	s2, _ := tl.Schedule(2, ResCPU, "c", 10)
	if s2 != 0 {
		t.Fatalf("independent resource delayed: %v", s2)
	}
}

func TestTimelinePipelineOverlap(t *testing.T) {
	// Two streams through H2D(10) -> GPU(30) -> D2H(10): the second
	// stream's kernel starts when the first finishes, giving makespan
	// 10 + 30 + 30 + 10 = 80 instead of 2*50 = 100.
	tl := NewTimeline()
	for s := 0; s < 2; s++ {
		tl.Schedule(s, ResPCIeH2D, "h2d", 10)
		tl.Schedule(s, ResGPU, "k", 30)
		tl.Schedule(s, ResPCIeD2H, "d2h", 10)
	}
	if tl.Now() != 80 {
		t.Fatalf("pipelined makespan = %v, want 80", tl.Now())
	}
}

func TestAdvanceStream(t *testing.T) {
	tl := NewTimeline()
	tl.AdvanceStream(5, 100)
	s, _ := tl.Schedule(5, ResCPU, "x", 1)
	if s != 100 {
		t.Fatalf("AdvanceStream ignored: start %v", s)
	}
	tl.AdvanceStream(5, 50) // never moves backwards
	if tl.StreamTime(5) != 101 {
		t.Fatalf("stream time %v", tl.StreamTime(5))
	}
}

func TestTraceAndBusyTime(t *testing.T) {
	tl := NewTimeline()
	tl.SetTrace(true)
	tl.Schedule(0, ResGPU, "k1", 30)
	tl.Schedule(1, ResGPU, "k2", 20)
	ops := tl.Ops()
	if len(ops) != 2 || ops[0].Label != "k1" || ops[1].Start != 30 {
		t.Fatalf("trace wrong: %+v", ops)
	}
	if tl.BusyTime(ResGPU) != 50 {
		t.Fatalf("busy = %v", tl.BusyTime(ResGPU))
	}
	tl.Reset()
	if tl.Now() != 0 || len(tl.Ops()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestTimelineConcurrentSchedule(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl.Schedule(i, ResCPU, "w", 10)
		}(i)
	}
	wg.Wait()
	if tl.Now() != 320 {
		t.Fatalf("concurrent schedule lost work: %v", tl.Now())
	}
}

func TestNegativeDurationClamped(t *testing.T) {
	tl := NewTimeline()
	_, e := tl.Schedule(0, ResCPU, "neg", -5)
	if e != 0 {
		t.Fatalf("negative duration not clamped: %v", e)
	}
}

func TestResourceString(t *testing.T) {
	for _, r := range []Resource{ResPCIeH2D, ResPCIeD2H, ResGPU, ResCPU} {
		if strings.Contains(r.String(), "Resource(") {
			t.Fatalf("missing name for %d", int(r))
		}
	}
	if Resource(99).String() != "Resource(99)" {
		t.Fatal("fallback name wrong")
	}
}
