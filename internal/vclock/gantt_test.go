package vclock

import (
	"strings"
	"testing"
)

func TestGanttRender(t *testing.T) {
	tl := NewTimeline()
	tl.SetTrace(true)
	tl.Schedule(0, ResPCIeH2D, "h2d", 10)
	tl.Schedule(0, ResGPU, "k", 30)
	tl.Schedule(0, ResPCIeD2H, "d2h", 10)
	tl.Schedule(0, ResCPU, "leaf", 20)
	tl.Schedule(1, ResPCIeH2D, "h2d", 10)

	out := Gantt{Width: 70}.RenderString(tl)
	for _, lane := range []string{"CPU", "PCIeH2D", "GPU", "PCIeD2H"} {
		if !strings.Contains(out, lane) {
			t.Fatalf("missing lane %s in:\n%s", lane, out)
		}
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no boxes drawn:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("stream labels missing:\n%s", out)
	}
	// Lane width is constant.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		open := strings.Index(line, "|")
		end := strings.LastIndex(line, "|")
		if end-open-1 != 70 {
			t.Fatalf("lane width %d != 70: %q", end-open-1, line)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	tl := NewTimeline()
	out := Gantt{}.RenderString(tl)
	if !strings.Contains(out, "no operations recorded") {
		t.Fatalf("empty timeline message missing: %q", out)
	}
}

func TestGanttNoTraceMode(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule(0, ResGPU, "k", 10) // trace off: nothing recorded
	out := Gantt{}.RenderString(tl)
	if !strings.Contains(out, "no operations recorded") {
		t.Fatalf("expected no-ops message, got %q", out)
	}
}

func TestGanttTinyOpStillVisible(t *testing.T) {
	tl := NewTimeline()
	tl.SetTrace(true)
	tl.Schedule(0, ResGPU, "big", 10000)
	tl.Schedule(1, ResCPU, "tiny", 1) // far below one column
	out := Gantt{Width: 50}.RenderString(tl)
	cpuLine := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "CPU") {
			cpuLine = line
		}
	}
	if !strings.Contains(cpuLine, "1") {
		t.Fatalf("tiny op invisible: %q", cpuLine)
	}
}
