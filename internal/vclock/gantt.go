package vclock

import (
	"fmt"
	"io"
	"strings"
)

// Gantt renders a recorded timeline as an ASCII Gantt chart, one row per
// resource — the format of the paper's pipelining diagrams (Figures 5
// and 6), where the overlap of bucket stages across the PCIe engines,
// the GPU and the CPU is the whole argument. Each operation is drawn as
// a box of '#' labelled with its stream (bucket) number; time flows
// left to right.
//
// Recording must have been enabled with SetTrace(true) before the
// operations ran.
type Gantt struct {
	Width int // total character columns for the time axis (default 100)
}

// Render writes the chart for the timeline's recorded operations.
func (g Gantt) Render(w io.Writer, t *Timeline) error {
	ops := t.Ops()
	if len(ops) == 0 {
		_, err := fmt.Fprintln(w, "(no operations recorded; call SetTrace(true) before scheduling)")
		return err
	}
	width := g.Width
	if width <= 0 {
		width = 100
	}
	var end Duration
	for _, op := range ops {
		if op.End > end {
			end = op.End
		}
	}
	if end <= 0 {
		end = 1
	}
	scale := float64(width) / float64(end)

	// Group by resource, preserving the canonical order.
	order := []Resource{ResCPU, ResPCIeH2D, ResGPU, ResPCIeD2H}
	rows := map[Resource][]Op{}
	for _, op := range ops {
		rows[op.Resource] = append(rows[op.Resource], op)
	}

	if _, err := fmt.Fprintf(w, "time -> (full span %v)\n", end); err != nil {
		return err
	}
	for _, r := range order {
		line := []byte(strings.Repeat(".", width))
		for _, op := range rows[r] {
			lo := int(float64(op.Start) * scale)
			hi := int(float64(op.End) * scale)
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			label := fmt.Sprintf("%d", op.Stream%10)
			for i := lo; i < hi && i < width; i++ {
				line[i] = '#'
			}
			// Stamp the stream id at the box start.
			if lo < width {
				line[lo] = label[0]
			}
		}
		if _, err := fmt.Fprintf(w, "%-8s |%s|\n", r, string(line)); err != nil {
			return err
		}
	}
	return nil
}

// RenderString renders the chart into a string.
func (g Gantt) RenderString(t *Timeline) string {
	var b strings.Builder
	if err := g.Render(&b, t); err != nil {
		return err.Error()
	}
	return b.String()
}
