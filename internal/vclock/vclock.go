// Package vclock provides the virtual-time primitives used by the
// HB+-tree performance model.
//
// The reproduction executes every algorithm functionally (real data, real
// results) while performance is accounted on a virtual clock: hardware
// components (CPU memory system, PCIe bus, GPU compute) charge durations
// derived from the calibrated platform model rather than from wall time.
// This package holds the duration type, unit helpers, and the small
// resource-timeline scheduler that reproduces the CPU-GPU pipelining
// algebra of Section 5.4 of the paper (Figures 5 and 6).
package vclock

import (
	"fmt"
	"sort"
	"sync"
)

// Duration is a span of virtual time in nanoseconds. A float64 is used so
// that sub-nanosecond per-item costs accumulate without truncation.
type Duration float64

// Common units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds returns d as a float64 count of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) }

// Seconds returns d as a float64 count of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns d as a float64 count of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Micros())
	default:
		return fmt.Sprintf("%.1fns", float64(d))
	}
}

// Max returns the larger of a and b.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Resource identifies a hardware unit that executes at most one operation
// at a time on the virtual timeline. The set below matches the units that
// matter for the paper's bucket pipeline: the two PCIe copy directions,
// GPU kernel execution, and the CPU worker pool treated as one station.
type Resource int

// Timeline resources.
const (
	ResPCIeH2D Resource = iota // host-to-device copy engine
	ResPCIeD2H                 // device-to-host copy engine
	ResGPU                     // GPU compute (kernel execution)
	ResCPU                     // CPU batch-processing station
	numResources
)

// String returns the resource name.
func (r Resource) String() string {
	switch r {
	case ResPCIeH2D:
		return "PCIeH2D"
	case ResPCIeD2H:
		return "PCIeD2H"
	case ResGPU:
		return "GPU"
	case ResCPU:
		return "CPU"
	}
	return fmt.Sprintf("Resource(%d)", int(r))
}

// Op records one scheduled operation on the timeline, for inspection by
// tests and by the harness when it prints pipeline traces.
type Op struct {
	Stream   int
	Resource Resource
	Label    string
	Start    Duration
	End      Duration
}

// Timeline is a discrete-event scheduler over exclusive resources. Each
// stream is an ordered sequence of operations (like a CUDA stream): an
// operation starts when both its stream's previous operation has finished
// and its resource is free. This reproduces the overlap structure of the
// paper's sequential, pipelined and double-buffered bucket handling.
//
// Timeline is safe for concurrent use; the functional executors schedule
// from multiple goroutines.
type Timeline struct {
	mu       sync.Mutex
	resource [numResources]Duration // next free time per resource
	stream   map[int]Duration       // next free time per stream
	ops      []Op
	trace    bool
}

// NewTimeline returns an empty timeline at virtual time zero.
func NewTimeline() *Timeline {
	return &Timeline{stream: make(map[int]Duration)}
}

// SetTrace enables recording of every operation for later inspection.
func (t *Timeline) SetTrace(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.trace = on
}

// Schedule places an operation of length d on resource r within stream s
// and returns its start and end virtual times.
func (t *Timeline) Schedule(streamID int, r Resource, label string, d Duration) (start, end Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	start = Max(t.resource[r], t.stream[streamID])
	end = start + d
	t.resource[r] = end
	t.stream[streamID] = end
	if t.trace {
		t.ops = append(t.ops, Op{Stream: streamID, Resource: r, Label: label, Start: start, End: end})
	}
	return start, end
}

// AdvanceStream moves a stream's ready time forward to at least ts,
// modelling an external dependency (e.g. waiting on another stream's
// event) without occupying any resource.
func (t *Timeline) AdvanceStream(streamID int, ts Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts > t.stream[streamID] {
		t.stream[streamID] = ts
	}
}

// StreamTime reports when the stream's last scheduled operation completes.
func (t *Timeline) StreamTime(streamID int) Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stream[streamID]
}

// Now reports the completion time of the latest operation over all
// resources: the makespan of the schedule so far.
func (t *Timeline) Now() Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var m Duration
	for _, v := range t.resource {
		if v > m {
			m = v
		}
	}
	return m
}

// BusyTime reports the total busy time of one resource.
func (t *Timeline) BusyTime(r Resource) Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var busy Duration
	for _, op := range t.ops {
		if op.Resource == r {
			busy += op.End - op.Start
		}
	}
	return busy
}

// Ops returns a copy of the recorded operations sorted by start time.
// Recording requires SetTrace(true).
func (t *Timeline) Ops() []Op {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Op, len(t.ops))
	copy(out, t.ops)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// Reset returns the timeline to virtual time zero, discarding history.
// The stream table and trace storage are retained (cleared, not
// reallocated) so a pooled timeline can be reused without allocating.
func (t *Timeline) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.resource {
		t.resource[i] = 0
	}
	clear(t.stream)
	t.ops = t.ops[:0]
}
