package vclock

import (
	"testing"
	"testing/quick"
)

// TestScheduleQuickProperties property-tests the timeline scheduler on
// random operation sequences:
//
//  1. the makespan is at least the busy time of every resource
//     (resources are exclusive);
//  2. the makespan is at least every stream's serial duration (streams
//     are ordered);
//  3. operations on one resource never overlap.
func TestScheduleQuickProperties(t *testing.T) {
	type opSpec struct {
		Stream uint8
		Res    uint8
		Dur    uint16
	}
	f := func(specs []opSpec) bool {
		tl := NewTimeline()
		tl.SetTrace(true)
		streamSerial := map[int]Duration{}
		resBusy := map[Resource]Duration{}
		for _, sp := range specs {
			stream := int(sp.Stream % 8)
			res := Resource(sp.Res % uint8(numResources))
			d := Duration(sp.Dur)
			tl.Schedule(stream, res, "op", d)
			streamSerial[stream] += d
			resBusy[res] += d
		}
		mk := tl.Now()
		for _, v := range streamSerial {
			if mk < v {
				return false
			}
		}
		for r, v := range resBusy {
			if mk < v || tl.BusyTime(r) != v {
				return false
			}
		}
		// Per-resource non-overlap.
		ops := tl.Ops()
		last := map[Resource]Duration{}
		for _, op := range ops {
			if op.Start < last[op.Resource] {
				return false
			}
			last[op.Resource] = op.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
