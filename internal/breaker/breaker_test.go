package breaker

import (
	"sync"
	"testing"
	"time"
)

// fakeClock lets the tests drive OpenTimeout without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(opt Options) (*Breaker, *fakeClock) {
	b := New(opt)
	c := &fakeClock{t: time.Unix(0, 0)}
	b.now = c.now
	return b, c
}

// TestFullCycle drives closed -> open -> half-open -> closed under a
// scripted outcome schedule.
func TestFullCycle(t *testing.T) {
	b, clk := newTestBreaker(Options{ConsecutiveTrip: 3, OpenTimeout: time.Second})
	if b.State() != Closed {
		t.Fatalf("initial state = %v", b.State())
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
	}
	if b.State() != Open {
		t.Fatalf("after 3 consecutive failures: %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted an attempt before OpenTimeout")
	}
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after OpenTimeout")
	}
	if b.State() != HalfOpen {
		t.Fatalf("probe admitted but state = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("after probe success: %v, want closed", b.State())
	}
	c := b.Counters()
	if c.Trips != 1 || c.Probes != 1 || c.Closes != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestHalfOpenProbeFailureReopens: a failed probe goes straight back to
// Open and restarts the timeout.
func TestHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(Options{ConsecutiveTrip: 1, OpenTimeout: time.Second})
	b.Allow()
	b.Failure()
	clk.advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatalf("after probe failure: %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted an attempt immediately")
	}
	if c := b.Counters(); c.Trips != 2 {
		t.Fatalf("trips = %d, want 2", c.Trips)
	}
}

// TestRateTrip: the windowed error rate trips without a consecutive
// run.
func TestRateTrip(t *testing.T) {
	b, _ := newTestBreaker(Options{
		Window: 8, RateThreshold: 0.5, MinSamples: 8, ConsecutiveTrip: 100,
	})
	// Alternate failure/success: rate stays near 0.5 with no long
	// consecutive run; the 9th sample (a failure) evaluates the rate
	// past the MinSamples gate.
	for i := 0; i < 9; i++ {
		if i%2 == 0 {
			b.Failure()
		} else {
			b.Success()
		}
	}
	if b.State() != Open {
		t.Fatalf(">=50%% rate over a full window left state %v", b.State())
	}
}

// TestMinSamplesGate: early failures below MinSamples do not trip.
func TestMinSamplesGate(t *testing.T) {
	b, _ := newTestBreaker(Options{
		Window: 32, RateThreshold: 0.5, MinSamples: 8, ConsecutiveTrip: 100,
	})
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("3 samples tripped the rate threshold: %v", b.State())
	}
}

// TestSuccessResetsConsecutive: a success in between failures prevents
// the consecutive trip.
func TestSuccessResetsConsecutive(t *testing.T) {
	b, _ := newTestBreaker(Options{ConsecutiveTrip: 3, Window: 1024, MinSamples: 1024})
	for i := 0; i < 20; i++ {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != Closed {
		t.Fatalf("interleaved successes still tripped: %v", b.State())
	}
}

// TestForceOpen pins the breaker open across the timeout and releases
// cleanly.
func TestForceOpen(t *testing.T) {
	b, clk := newTestBreaker(Options{OpenTimeout: time.Second})
	b.ForceOpen(true)
	if b.State() != Open {
		t.Fatalf("forced state = %v", b.State())
	}
	clk.advance(time.Hour)
	if b.Allow() {
		t.Fatal("forced-open breaker admitted a probe after the timeout")
	}
	b.ForceOpen(false)
	if b.State() != Closed || !b.Allow() {
		t.Fatal("releasing ForceOpen did not close the breaker")
	}
}

// TestConcurrentOutcomes exercises the breaker under racing reporters
// (meaningful under -race).
func TestConcurrentOutcomes(t *testing.T) {
	b, _ := newTestBreaker(Options{Window: 64, ConsecutiveTrip: 8, OpenTimeout: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if b.Allow() {
					if (i+g)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				b.State()
				b.Counters()
			}
		}(g)
	}
	wg.Wait()
}
