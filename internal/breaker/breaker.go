// Package breaker is a small circuit breaker for the hybrid search
// path: it watches the outcome of GPU-sim attempts and, once the error
// rate (or a run of consecutive failures) crosses its threshold, trips
// open so the serving layer stops burning retries against a sick
// device and serves from the CPU-only fallback instead. After
// OpenTimeout a single half-open probe is admitted; its success closes
// the breaker, its failure re-opens it. The state machine is the
// classic Closed -> Open -> HalfOpen -> Closed loop.
//
// The breaker lives in the serving layer (serve.Server), not in the
// tree: snapshot-mode servers replace their tree on every batch update,
// and breaker memory must survive those swaps to be useful.
package breaker

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is the breaker position.
type State int32

// The three breaker states.
const (
	// Closed: attempts flow to the GPU path; outcomes are recorded.
	Closed State = iota
	// Open: attempts are refused until OpenTimeout elapses.
	Open
	// HalfOpen: exactly one probe attempt is in flight; its outcome
	// decides between Closed and Open.
	HalfOpen
)

// String names the state (exposed through STATS).
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Options tunes the trip and recovery thresholds; zero fields take the
// defaults noted on each.
type Options struct {
	// Window is the sliding sample window for the error-rate trip
	// (default 32 outcomes).
	Window int
	// RateThreshold trips the breaker when the windowed error rate
	// reaches it, once MinSamples outcomes are recorded (default 0.5).
	RateThreshold float64
	// MinSamples gates the rate trip so a single early failure cannot
	// open a cold breaker (default 8).
	MinSamples int
	// ConsecutiveTrip opens the breaker after this many back-to-back
	// failures regardless of the windowed rate — the fast path for a
	// hard device outage (default 5).
	ConsecutiveTrip int
	// OpenTimeout is how long the breaker stays open before admitting a
	// half-open probe (default 250ms).
	OpenTimeout time.Duration
}

func (o *Options) fill() {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.RateThreshold <= 0 {
		o.RateThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	if o.ConsecutiveTrip <= 0 {
		o.ConsecutiveTrip = 5
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 250 * time.Millisecond
	}
}

// Counters is a snapshot of the breaker's transition bookkeeping.
type Counters struct {
	Trips    int64 // transitions to Open (including half-open probe failures)
	Probes   int64 // half-open probes admitted
	Closes   int64 // recoveries (HalfOpen -> Closed)
	Rejected int64 // attempts refused while Open
}

// Breaker is the circuit breaker. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Breaker struct {
	opt Options
	now func() time.Time // test seam

	state atomic.Int32 // mirrors st for the lock-free Closed fast path

	mu        sync.Mutex
	st        State
	ring      []bool // true = failure
	ringN     int    // samples recorded (<= len(ring))
	ringPos   int
	ringFails int
	consec    int
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	forced    bool // ForceOpen holds the breaker open

	trips    atomic.Int64
	probes   atomic.Int64
	closes   atomic.Int64
	rejected atomic.Int64
}

// New builds a breaker in the Closed state.
func New(opt Options) *Breaker {
	opt.fill()
	return &Breaker{
		opt:  opt,
		now:  time.Now,
		ring: make([]bool, opt.Window),
	}
}

// Allow reports whether an attempt may proceed on the GPU path. While
// Closed it is a single atomic load — the hot serving path pays no
// lock. While Open it starts the half-open probe once OpenTimeout has
// elapsed; while HalfOpen only the single probe is admitted.
func (b *Breaker) Allow() bool {
	if State(b.state.Load()) == Closed {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case Closed:
		return true
	case Open:
		if !b.forced && b.now().Sub(b.openedAt) >= b.opt.OpenTimeout {
			b.setState(HalfOpen)
			b.probing = true
			b.probes.Add(1)
			return true
		}
		b.rejected.Add(1)
		return false
	default: // HalfOpen
		if b.probing {
			b.rejected.Add(1)
			return false
		}
		b.probing = true
		b.probes.Add(1)
		return true
	}
}

// Success records a successful GPU attempt. A half-open probe's
// success closes the breaker and resets its memory.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case HalfOpen:
		b.resetWindow()
		b.setState(Closed)
		b.probing = false
		b.closes.Add(1)
	case Open:
		// A straggler from before the trip; the open timer governs.
	default:
		b.record(false)
		b.consec = 0
	}
}

// Failure records a faulted GPU attempt, tripping the breaker when the
// consecutive-failure or windowed-rate threshold is crossed. A
// half-open probe's failure re-opens immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case HalfOpen:
		b.probing = false
		b.trip()
	case Open:
		// Straggler; already open.
	default:
		b.record(true)
		b.consec++
		if b.consec >= b.opt.ConsecutiveTrip ||
			(b.ringN >= b.opt.MinSamples &&
				float64(b.ringFails)/float64(b.ringN) >= b.opt.RateThreshold) {
			b.trip()
		}
	}
}

// ForceOpen pins the breaker open (on=true) or releases the pin and
// closes it (on=false) — the bench-smoke switch that proves the
// CPU-only fallback serves on its own.
func (b *Breaker) ForceOpen(on bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.forced = on
	if on {
		b.setState(Open)
		b.openedAt = b.now()
		b.probing = false
	} else {
		b.resetWindow()
		b.setState(Closed)
	}
}

// State returns the current breaker position.
func (b *Breaker) State() State { return State(b.state.Load()) }

// Counters returns the transition bookkeeping.
func (b *Breaker) Counters() Counters {
	return Counters{
		Trips:    b.trips.Load(),
		Probes:   b.probes.Load(),
		Closes:   b.closes.Load(),
		Rejected: b.rejected.Load(),
	}
}

// trip transitions to Open; callers hold mu.
func (b *Breaker) trip() {
	b.setState(Open)
	b.openedAt = b.now()
	b.trips.Add(1)
	b.resetWindow()
}

// resetWindow clears the sample memory; callers hold mu.
func (b *Breaker) resetWindow() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringN, b.ringPos, b.ringFails, b.consec = 0, 0, 0, 0
}

// record pushes one outcome into the sliding window; callers hold mu.
func (b *Breaker) record(failed bool) {
	if b.ringN == len(b.ring) {
		if b.ring[b.ringPos] {
			b.ringFails--
		}
	} else {
		b.ringN++
	}
	b.ring[b.ringPos] = failed
	if failed {
		b.ringFails++
	}
	b.ringPos = (b.ringPos + 1) % len(b.ring)
}

// setState updates both the locked state and its atomic mirror; callers
// hold mu.
func (b *Breaker) setState(s State) {
	b.st = s
	b.state.Store(int32(s))
}
