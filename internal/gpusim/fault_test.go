package gpusim

import (
	"errors"
	"testing"

	"hbtree/internal/fault"
	"hbtree/internal/platform"
)

// TestInjectorSurfacesTypedFaults drives every injection point of the
// device with scripted outcomes and checks that the typed error comes
// back unchanged in class, that no bytes move on a faulted transfer,
// and that the device's Faults counter tallies each surfaced fault.
func TestInjectorSurfacesTypedFaults(t *testing.T) {
	d := dev()
	in := fault.New(fault.Options{})
	d.SetInjector(in)
	if d.Injector() != in {
		t.Fatal("injector not attached")
	}

	// Malloc: scripted OOM, then success.
	in.ScriptNext(fault.OpMalloc, fault.ErrOOM)
	if _, err := Malloc[uint64](d, 8); !errors.Is(err, fault.ErrOOM) {
		t.Fatalf("scripted malloc fault = %v", err)
	}
	if d.MemUsed() != 0 {
		t.Fatal("faulted malloc consumed device memory")
	}
	b, err := Malloc[uint64](d, 8)
	if err != nil {
		t.Fatal(err)
	}

	// H2D: scripted timeout, no bytes move.
	h2dBefore := d.Counters().BytesH2D
	in.ScriptNext(fault.OpH2D, fault.ErrH2D)
	if _, err := b.CopyFromHost([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); !errors.Is(err, fault.ErrH2D) {
		t.Fatalf("scripted H2D fault = %v", err)
	}
	if d.Counters().BytesH2D != h2dBefore {
		t.Fatal("faulted H2D still moved bytes")
	}
	if _, err := b.CopyFromHost([]uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}

	// D2H: scripted corruption; the payload is dropped, not delivered.
	dst := make([]uint64, 8)
	in.ScriptNext(fault.OpD2H, fault.ErrCorrupt)
	if _, err := b.CopyToHost(dst); !errors.Is(err, fault.ErrCorrupt) {
		t.Fatalf("scripted D2H fault = %v", err)
	}
	if dst[0] != 0 {
		t.Fatal("corrupt transfer delivered data")
	}

	// Kernel: scripted launch failure, then success; a failed launch
	// does not count as an executed kernel.
	kBefore := d.Counters().Kernels
	in.ScriptNext(fault.OpKernel, fault.ErrKernel)
	if _, err := ImplicitSearchKernel[uint64](d, nil, ImplicitDesc{}, nil, nil, 0, nil); !errors.Is(err, fault.ErrKernel) {
		t.Fatalf("scripted kernel fault = %v", err)
	}
	if got := d.Counters().Kernels; got != kBefore {
		t.Fatalf("faulted launch counted as executed kernel (%d -> %d)", kBefore, got)
	}

	// Every surfaced fault is tallied, and fault.Is classifies them all.
	if got := d.Counters().Faults; got != 4 {
		t.Fatalf("Faults counter = %d, want 4", got)
	}
	if c := in.Counters(); c.Injected != 4 || c.Checks < 4 {
		t.Fatalf("injector counters = %+v", c)
	}
}

// TestInjectorProbabilisticRates: a 100%-rate injector fails every
// operation of its class while leaving the others untouched, and a
// fresh device without an injector is fault-free — SetInjector is the
// only switch.
func TestInjectorProbabilisticRates(t *testing.T) {
	d := New(platform.M1().GPU)
	in := fault.New(fault.Options{Seed: 7, Kernel: 1.0})
	d.SetInjector(in)
	b, err := Malloc[uint64](d, 4) // malloc rate 0: must succeed
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CopyFromHost([]uint64{1, 2, 3, 4}); err != nil {
		t.Fatal(err) // h2d rate 0: must succeed
	}
	for i := 0; i < 10; i++ {
		if _, err := ImplicitSearchKernel[uint64](d, nil, ImplicitDesc{}, nil, nil, 0, nil); !fault.Is(err) {
			t.Fatalf("kernel launch %d with rate 1.0 succeeded", i)
		}
	}
	if got := d.Counters().Faults; got != 10 {
		t.Fatalf("Faults = %d, want 10", got)
	}
}
