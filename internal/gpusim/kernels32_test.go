package gpusim

import (
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/workload"
)

// Tests of the 32-bit kernel paths: 16 threads per query team
// (Section 5.3's T for 32-bit keys) against the 16-key node lines.

func TestImplicitKernel32(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 60000, 42)
	tr, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 16})
	if err != nil {
		t.Fatal(err)
	}
	inner, levelOff, kpn, fanout := tr.InnerArray()
	if kpn != 16 || fanout != 16 {
		t.Fatalf("geometry %d/%d", kpn, fanout)
	}
	off32 := make([]int32, len(levelOff))
	for i, o := range levelOff {
		off32[i] = int32(o)
	}
	desc := ImplicitDesc{LevelOff: off32, Kpn: kpn, Fanout: fanout, Height: tr.Height(), NumLeaves: tr.NumLeafLines()}
	d := dev()
	qs := workload.SearchInput(pairs, 5000, 3)
	out := make([]int32, len(qs))
	if _, err := ImplicitSearchKernel(d, inner, desc, qs, out, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if int(out[i]) != tr.SearchInner(q) {
			t.Fatalf("32-bit kernel diverges for key %d: %d vs %d", q, out[i], tr.SearchInner(q))
		}
	}
}

func TestRegularKernel32(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 80000, 7)
	tr, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	upper, last, root, height, nodeSlots, kpl := tr.InnerArrays()
	desc := RegularDesc{Root: root, RootInUpper: height >= 2, Height: height, NodeSlots: nodeSlots, Kpl: kpl}
	d := dev()
	qs := workload.SearchInput(pairs, 5000, 9)
	outLeaf := make([]int32, len(qs))
	outLine := make([]int32, len(qs))
	if _, err := RegularSearchKernel(d, upper, last, desc, qs, outLeaf, outLine, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		wl, wc := tr.SearchToLeaf(q)
		if outLeaf[i] != wl || int(outLine[i]) != wc {
			t.Fatalf("32-bit regular kernel diverges for key %d", q)
		}
	}
}

func TestRegularKernelResume(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 400000, 5)
	tr, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	upper, last, root, height, nodeSlots, kpl := tr.InnerArrays()
	if height < 3 {
		t.Skip("tree too shallow for resume test")
	}
	desc := RegularDesc{Root: root, RootInUpper: height >= 2, Height: height, NodeSlots: nodeSlots, Kpl: kpl}
	d := dev()
	qs := workload.SearchInput(pairs, 2000, 11)
	for stop := height; stop >= 1; stop-- {
		starts := make([]int32, len(qs))
		for i, q := range qs {
			starts[i] = tr.WalkToHeight(q, stop)
		}
		outLeaf := make([]int32, len(qs))
		outLine := make([]int32, len(qs))
		if _, err := RegularSearchKernel(d, upper, last, desc, qs, outLeaf, outLine, stop, starts); err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			wl, wc := tr.SearchToLeaf(q)
			if outLeaf[i] != wl || int(outLine[i]) != wc {
				t.Fatalf("resume at height %d diverges for key %d", stop, q)
			}
		}
	}
}
