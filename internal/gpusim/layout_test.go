package gpusim

import (
	"sort"
	"strings"
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// TestWarpSearchWideNodes is the regression for the historical overflow
// hazard: warpSearch's flag array was hard-coded to 16+1 slots, so a
// 32-slot node silently read garbage flags. The layout engine's wide
// root nodes make every width up to MaxNodeWidth a first-class input.
func TestWarpSearchWideNodes(t *testing.T) {
	r := workload.NewRNG(13)
	for _, width := range []int{8, 16, 32, 64} {
		for iter := 0; iter < 500; iter++ {
			line := make([]uint64, width)
			for i := range line {
				line[i] = r.Uint64() % 1000
			}
			sort.Slice(line, func(i, j int) bool { return line[i] < line[j] })
			line[width-1] = keys.Max[uint64]() // HB+ invariant: last slot is MAX
			q := r.Uint64() % 1100
			want := sort.Search(width, func(i int) bool { return q <= line[i] })
			if got := warpSearch(line, q); got != want {
				t.Fatalf("width %d: warpSearch(%v, %d) = %d, want %d", width, line, q, got, want)
			}
		}
	}
}

// TestWarpSearchRejectsOverwideNode pins the explicit failure mode: a
// node wider than MaxNodeWidth must panic with a message naming the
// limit, not silently mis-search as the pre-descriptor code did.
func TestWarpSearchRejectsOverwideNode(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("warpSearch accepted a node wider than MaxNodeWidth")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "MaxNodeWidth") {
			t.Fatalf("panic message does not name the limit: %v", r)
		}
	}()
	node := make([]uint64, MaxNodeWidth+1)
	node[MaxNodeWidth] = keys.Max[uint64]()
	warpSearch(node, uint64(1))
}

// TestUniformDescriptorOracle is the refactor's compatibility
// invariant: a descriptor whose Levels table is the materialised
// uniform geometry must behave byte- and count-identically to the
// historical nil-Levels descriptor — same leaf outputs, same
// transaction totals (n × Height), same per-level counts — on both the
// per-query and the sorted shared-descent kernels.
func TestUniformDescriptorOracle(t *testing.T) {
	tr, desc, pairs := buildImplicitHB(t, 30000)
	inner, _, _, _ := tr.InnerArray()
	qs := workload.SearchInput(pairs, 6000, 17)

	explicit := desc
	explicit.Levels = desc.Geom()
	if explicit.TransPerQuery(0) != int64(desc.Height) {
		t.Fatalf("uniform Levels table costs %d trans/query, want Height %d",
			explicit.TransPerQuery(0), desc.Height)
	}

	// Per-query kernel: identical outputs and transaction counts.
	outNil := make([]int32, len(qs))
	outExp := make([]int32, len(qs))
	transNil, err := ImplicitSearchKernel(dev(), inner, desc, qs, outNil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	transExp, err := ImplicitSearchKernel(dev(), inner, explicit, qs, outExp, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if transNil != transExp || transNil != int64(len(qs))*int64(desc.Height) {
		t.Fatalf("transaction counts diverge: nil %d, explicit %d, want %d",
			transNil, transExp, int64(len(qs))*int64(desc.Height))
	}
	for i := range qs {
		if outNil[i] != outExp[i] {
			t.Fatalf("query %d: nil-Levels leaf %d != explicit-Levels leaf %d", i, outNil[i], outExp[i])
		}
	}

	// Sorted shared-descent kernel: same invariant, plus identical
	// per-level transaction histograms.
	sq := append([]uint64(nil), qs...)
	sort.Slice(sq, func(i, j int) bool { return sq[i] < sq[j] })
	lvlNil := make([]int64, desc.Height)
	lvlExp := make([]int64, desc.Height)
	sNil := make([]int32, len(sq))
	sExp := make([]int32, len(sq))
	stNil, err := ImplicitSearchKernelSorted(dev(), inner, desc, sq, sNil, lvlNil)
	if err != nil {
		t.Fatal(err)
	}
	stExp, err := ImplicitSearchKernelSorted(dev(), inner, explicit, sq, sExp, lvlExp)
	if err != nil {
		t.Fatal(err)
	}
	if stNil != stExp {
		t.Fatalf("sorted transaction counts diverge: nil %d, explicit %d", stNil, stExp)
	}
	for l := range lvlNil {
		if lvlNil[l] != lvlExp[l] {
			t.Fatalf("level %d transaction count diverges: nil %d, explicit %d", l, lvlNil[l], lvlExp[l])
		}
	}
	for i := range sq {
		if sNil[i] != sExp[i] {
			t.Fatalf("sorted query %d: nil-Levels leaf %d != explicit-Levels leaf %d", i, sNil[i], sExp[i])
		}
	}
}

// buildTunedHB builds an implicit tree with widened root levels and the
// matching non-uniform descriptor, the way internal/hybrid derives it
// from cpubtree.LevelGeometry.
func buildTunedHB(t *testing.T, n int, rootWidths []int) (*cpubtree.ImplicitTree[uint64], ImplicitDesc, []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tr, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 8, RootWidths: rootWidths})
	if err != nil {
		t.Fatal(err)
	}
	if tr.UniformLayout() {
		t.Fatalf("RootWidths %v produced a uniform tree", rootWidths)
	}
	geom := tr.LevelGeometry()
	kpn := keys.PerLine[uint64]()
	levels := make([]LevelGeom, len(geom))
	for i, g := range geom {
		levels[i] = LevelGeom{Off: int32(g.Slot), Kpn: int32(g.Kpn), Fanout: int32(g.Fanout), Lines: int32(g.Kpn / kpn)}
	}
	desc := ImplicitDesc{Kpn: kpn, Fanout: 8, Height: tr.Height(), NumLeaves: tr.NumLeafLines(), Levels: levels}
	return tr, desc, pairs
}

// TestTunedDescriptorKernelMatchesHost drives both kernels with a
// genuinely non-uniform descriptor (32-slot root, packed below): leaf
// outputs must match the host traversal of the same tree, the
// per-query kernel must charge TransPerQuery (root = 4 lines, packed
// levels = 1), and the sorted kernel must agree with the unsorted one
// byte for byte while issuing fewer transactions on sorted input.
func TestTunedDescriptorKernelMatchesHost(t *testing.T) {
	tr, desc, pairs := buildTunedHB(t, 30000, []int{32})
	inner, _, _, _ := tr.InnerArray()
	if desc.Levels[0].Kpn != 32 || desc.Levels[0].Lines != 4 {
		t.Fatalf("root geometry not widened: %+v", desc.Levels[0])
	}
	perQuery := desc.TransPerQuery(0)
	if want := int64(4 + desc.Height - 1); perQuery != want {
		t.Fatalf("TransPerQuery = %d, want %d", perQuery, want)
	}

	qs := workload.SearchInput(pairs, 6000, 23)
	out := make([]int32, len(qs))
	trans, err := ImplicitSearchKernel(dev(), inner, desc, qs, out, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trans != int64(len(qs))*perQuery {
		t.Fatalf("transaction count %d, want %d", trans, int64(len(qs))*perQuery)
	}
	for i, q := range qs {
		if int(out[i]) != tr.SearchInner(q) {
			t.Fatalf("tuned kernel leaf %d != host %d for key %d", out[i], tr.SearchInner(q), q)
		}
	}

	// Keep the sorted batch under the kernel's fan-out threshold so it
	// descends as one contiguous run — the root-probed-exactly-once
	// assertion below only holds when chunking doesn't split the batch.
	sq := append([]uint64(nil), qs[:512]...)
	sort.Slice(sq, func(i, j int) bool { return sq[i] < sq[j] })
	want := make([]int32, len(sq))
	if _, err := ImplicitSearchKernel(dev(), inner, desc, sq, want, 0, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]int32, len(sq))
	lvl := make([]int64, desc.Height)
	strans, err := ImplicitSearchKernelSorted(dev(), inner, desc, sq, got, lvl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sq {
		if got[i] != want[i] {
			t.Fatalf("sorted tuned kernel diverges at %d: %d != %d", i, got[i], want[i])
		}
	}
	if strans >= int64(len(sq))*perQuery {
		t.Fatalf("sorted descent shared nothing: %d trans for %d queries × %d", strans, len(sq), perQuery)
	}
	// The root is one node: a sorted batch probes it exactly once, for
	// its full line count, however many queries descend through it.
	if lvl[0] != int64(desc.Levels[0].Lines) {
		t.Fatalf("root level charged %d transactions, want %d (one probe of a %d-line node)",
			lvl[0], desc.Levels[0].Lines, desc.Levels[0].Lines)
	}
	var sum int64
	for _, v := range lvl {
		sum += v
	}
	if sum != strans {
		t.Fatalf("per-level counts sum to %d, kernel reported %d", sum, strans)
	}
}
