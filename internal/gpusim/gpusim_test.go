package gpusim

import (
	"errors"
	"sort"
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

func dev() *Device { return New(platform.M1().GPU) }

func TestMallocCapacity(t *testing.T) {
	d := dev()
	total := d.Config().MemBytes
	b1, err := Malloc[uint64](d, int(total/16))
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != total/2 {
		t.Fatalf("used = %d", d.MemUsed())
	}
	if _, err := Malloc[uint64](d, int(total/8)); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-allocation error = %v", err)
	}
	b1.Free()
	if d.MemUsed() != 0 {
		t.Fatal("free did not release")
	}
	b1.Free() // double free is a no-op
	if d.MemFree() != total {
		t.Fatal("MemFree wrong")
	}
}

func TestCopySemantics(t *testing.T) {
	d := dev()
	b, err := Malloc[uint64](d, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	dur, err := b.CopyFromHost(src)
	if err != nil || dur <= d.Config().TInit {
		t.Fatalf("H2D: %v %v", dur, err)
	}
	src[0] = 99 // device copy must be independent of host memory
	dst := make([]uint64, 8)
	if _, err := b.CopyToHost(dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 1 || dst[7] != 8 {
		t.Fatalf("D2H data wrong: %v", dst)
	}
	if _, err := b.CopyFromHost(make([]uint64, 9)); err == nil {
		t.Fatal("oversized H2D accepted")
	}
	if _, err := b.CopyToHost(make([]uint64, 9)); err == nil {
		t.Fatal("oversized D2H accepted")
	}
	c := d.Counters()
	if c.BytesH2D != 64 || c.BytesD2H != 64 {
		t.Fatalf("byte counters: %+v", c)
	}
}

func TestCopyRegion(t *testing.T) {
	d := dev()
	b, _ := Malloc[uint64](d, 16)
	if _, err := b.CopyRegionFromHost(8, []uint64{7, 7}); err != nil {
		t.Fatal(err)
	}
	if b.Data()[8] != 7 || b.Data()[9] != 7 || b.Data()[0] != 0 {
		t.Fatal("region copy wrong")
	}
	if _, err := b.CopyRegionFromHost(15, []uint64{1, 2}); err == nil {
		t.Fatal("out-of-range region accepted")
	}
	if _, err := b.CopyRegionFromHost(-1, []uint64{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestCopyDurationModel(t *testing.T) {
	d := dev()
	// T = T_init + bytes/BW; doubling the bytes doubles only the linear
	// part.
	d1 := d.CopyDuration(1 << 20)
	d2 := d.CopyDuration(2 << 20)
	lin1 := d1 - d.Config().TInit
	lin2 := d2 - d.Config().TInit
	if r := float64(lin2) / float64(lin1); r < 1.99 || r > 2.01 {
		t.Fatalf("copy cost not linear: %v", r)
	}
}

func TestKernelDurationRegimes(t *testing.T) {
	d := dev()
	// Large grids are bandwidth-bound: time scales ~linearly with work.
	t1 := d.KernelDuration(1<<14, 8, 1, 8, 1)
	t2 := d.KernelDuration(1<<15, 8, 1, 8, 1)
	r := (t2 - d.Config().KInit).Seconds() / (t1 - d.Config().KInit).Seconds()
	if r < 1.9 || r > 2.1 {
		t.Fatalf("bandwidth regime not linear: %v", r)
	}
	// Divergence derating slows the kernel down.
	if d.KernelDuration(1<<14, 8, 3, 8, 0.6) <= d.KernelDuration(1<<14, 8, 3, 8, 1) {
		t.Fatal("divergence penalty missing")
	}
	// Zero queries cost nothing.
	if d.KernelDuration(0, 8, 1, 8, 1) != 0 {
		t.Fatal("empty kernel has cost")
	}
	// Tiny grids are latency-bound: far above the pure bandwidth term.
	small := d.KernelDuration(1, 8, 1, 8, 1)
	if small < d.Config().KInit+8*d.Config().MemLatency {
		t.Fatalf("latency floor missing: %v", small)
	}
}

// buildImplicitHB builds an HB+-layout implicit tree (fanout 8) and
// returns the pieces a kernel needs.
func buildImplicitHB(t *testing.T, n int) (*cpubtree.ImplicitTree[uint64], ImplicitDesc, []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tr, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, levelOff, kpn, fanout := tr.InnerArray()
	off32 := make([]int32, len(levelOff))
	for i, o := range levelOff {
		off32[i] = int32(o)
	}
	desc := ImplicitDesc{LevelOff: off32, Kpn: kpn, Fanout: fanout, Height: tr.Height(), NumLeaves: tr.NumLeafLines()}
	return tr, desc, pairs
}

func TestImplicitKernelMatchesHostTraversal(t *testing.T) {
	tr, desc, pairs := buildImplicitHB(t, 30000)
	inner, _, _, _ := tr.InnerArray()
	d := dev()
	qs := workload.SearchInput(pairs, 8000, 3)
	out := make([]int32, len(qs))
	trans, err := ImplicitSearchKernel(d, inner, desc, qs, out, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if trans != int64(len(qs))*int64(desc.Height) {
		t.Fatalf("transaction count %d", trans)
	}
	for i, q := range qs {
		if int(out[i]) != tr.SearchInner(q) {
			t.Fatalf("kernel leaf %d != host %d for key %d", out[i], tr.SearchInner(q), q)
		}
	}
}

func TestImplicitKernelResume(t *testing.T) {
	tr, desc, pairs := buildImplicitHB(t, 50000)
	inner, _, _, _ := tr.InnerArray()
	d := dev()
	qs := workload.SearchInput(pairs, 4000, 5)
	for D := 0; D < tr.Height(); D++ {
		starts := make([]int32, len(qs))
		for i, q := range qs {
			starts[i] = int32(tr.WalkToLevel(q, D))
		}
		out := make([]int32, len(qs))
		if _, err := ImplicitSearchKernel(d, inner, desc, qs, out, D, starts); err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			if int(out[i]) != tr.SearchInner(q) {
				t.Fatalf("D=%d: resumed kernel diverges for key %d", D, q)
			}
		}
	}
}

func TestRegularKernelMatchesHostTraversal(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 120000, 7)
	tr, err := cpubtree.BuildRegular(pairs, cpubtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	upper, last, root, height, nodeSlots, kpl := tr.InnerArrays()
	desc := RegularDesc{Root: root, RootInUpper: height >= 2, Height: height, NodeSlots: nodeSlots, Kpl: kpl}
	d := dev()
	qs := workload.SearchInput(pairs, 6000, 9)
	outLeaf := make([]int32, len(qs))
	outLine := make([]int32, len(qs))
	if _, err := RegularSearchKernel(d, upper, last, desc, qs, outLeaf, outLine, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		wl, wc := tr.SearchToLeaf(q)
		if outLeaf[i] != wl || int(outLine[i]) != wc {
			t.Fatalf("kernel (%d,%d) != host (%d,%d) for key %d", outLeaf[i], outLine[i], wl, wc, q)
		}
	}
}

func TestWarpSearchIsLowerBound(t *testing.T) {
	r := workload.NewRNG(11)
	for iter := 0; iter < 2000; iter++ {
		line := make([]uint64, 8)
		for i := range line {
			line[i] = r.Uint64() % 100
		}
		sort.Slice(line, func(i, j int) bool { return line[i] < line[j] })
		line[7] = keys.Max[uint64]() // HB+ invariant: last slot is MAX
		q := r.Uint64() % 110
		want := sort.Search(8, func(i int) bool { return q <= line[i] })
		if got := warpSearch(line, q); got != want {
			t.Fatalf("warpSearch(%v, %d) = %d, want %d", line, q, got, want)
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	tr, desc, pairs := buildImplicitHB(t, 10000)
	inner, _, _, _ := tr.InnerArray()
	d := dev()
	qs := workload.SearchInput(pairs, 2000, 1)
	out := make([]int32, len(qs))
	if _, err := ImplicitSearchKernel(d, inner, desc, qs, out, 0, nil); err != nil {
		t.Fatal(err)
	}
	d.KernelDuration(len(qs), float64(desc.Height), 1, 8, 1)
	c := d.Counters()
	if c.Kernels != 1 || c.Transactions != int64(len(qs))*int64(desc.Height) {
		t.Fatalf("counters: %+v", c)
	}
}
