package gpusim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hbtree/internal/fault"
	"hbtree/internal/keys"
)

// This file implements the GPU search kernels functionally. Each query
// is resolved by a "warp team" of T threads (8 for 64-bit keys, 16 for
// 32-bit keys; Section 5.3) executing the parallel node-search algorithm
// of Snippet 3: every team thread compares its assigned key, publishes a
// flag, and the thread whose flag differs from its predecessor's owns
// the answer. The emulation preserves that structure literally — flags,
// predecessor test, shared result — and fans warps out across host
// goroutines standing in for the SM array.

// MaxNodeWidth is the widest node (in key slots) any layout descriptor
// may declare. It bounds warpSearch's flag array; the historical
// implementation hard-coded 16 and would silently mis-search wider
// nodes, so the limit is now explicit and enforced.
const MaxNodeWidth = 64

// warpSearch executes the parallel node search of Snippet 3 on one node
// line. It requires the node's last slot to be reachable (the HB+-tree
// pins trailing separators to MAX), guaranteeing a valid result for any
// query.
func warpSearch[K keys.Key](node []K, q K) int {
	if len(node) > MaxNodeWidth {
		panic(fmt.Sprintf("gpusim: node width %d exceeds MaxNodeWidth %d", len(node), MaxNodeWidth))
	}
	var flag [MaxNodeWidth + 1]bool // flag[0] is the implicit predecessor of thread 0
	for j, k := range node {
		flag[j+1] = q <= k // each team thread's comparison
	}
	res := len(node) - 1
	for j := range node {
		// Thread j owns the result iff its flag is set and thread j-1's
		// is not ("if r_t = 1 and r_{t-1} = 0").
		if flag[j+1] && !flag[j] {
			res = j
			break
		}
	}
	return res
}

// LevelGeom is one level's node geometry in the layout descriptor: the
// kernels read it instead of assuming a uniform key-per-node count, so a
// tree may use wide multi-line nodes near the root and packed one-line
// nodes near the leaves.
type LevelGeom struct {
	Off    int32 // first key slot of the level within the I-segment
	Kpn    int32 // key slots per node at this level
	Fanout int32 // children per node at this level
	Lines  int32 // coalesced 64-byte transactions per node probe
}

// ImplicitDesc describes the implicit HB+-tree I-segment resident in
// device memory. The scalar Kpn/Fanout fields describe the base
// (uniform) geometry; a non-nil Levels table overrides them per level.
type ImplicitDesc struct {
	LevelOff  []int32 // offset of each level in nodes of the base width, root first
	Kpn       int     // base key slots per node (threads per query, T)
	Fanout    int     // base children per node (8 / 16 for the HB+ layout)
	Height    int     // inner levels
	NumLeaves int     // leaf lines (for final clamping)

	// Levels, when non-nil, is the per-level layout table the kernels
	// traverse by. nil means uniform geometry derived from the scalar
	// fields; callers on the allocation-free serving path should
	// populate it once via Geom so kernels never materialise it.
	Levels []LevelGeom
}

// Geom returns the descriptor's per-level layout table, materialising
// the uniform table from the scalar fields when Levels is nil. For a
// uniform descriptor the returned geometry is exactly the historical
// arithmetic: level l starts at slot LevelOff[l]*Kpn, every node holds
// Kpn slots, fans out Fanout ways, and costs one transaction per probe.
func (d ImplicitDesc) Geom() []LevelGeom {
	if d.Levels != nil {
		return d.Levels
	}
	g := make([]LevelGeom, d.Height)
	for l := range g {
		g[l] = LevelGeom{
			Off:    d.LevelOff[l] * int32(d.Kpn),
			Kpn:    int32(d.Kpn),
			Fanout: int32(d.Fanout),
			Lines:  1,
		}
	}
	return g
}

// TransPerQuery returns the device transactions one query descending
// from startLevel issues: the per-level line counts summed over the
// remaining levels. Uniform descriptors reduce to Height-startLevel,
// the historical per-query cost.
func (d ImplicitDesc) TransPerQuery(startLevel int) int64 {
	if d.Levels == nil {
		return int64(d.Height - startLevel)
	}
	var t int64
	for l := startLevel; l < d.Height; l++ {
		t += int64(d.Levels[l].Lines)
	}
	return t
}

// ImplicitSearchKernel traverses the device-resident implicit I-segment
// for each query, writing the target leaf line index. startLevel and
// startIdx support the load-balanced mode where the CPU pre-walks the
// top D levels (Section 5.5); pass startLevel 0 and nil startIdx for the
// full traversal. It returns the number of device-memory transactions
// issued (one coalesced 64-byte access per node per query), or a typed
// fault when an attached injector fails the launch — in which case out
// is untouched.
func ImplicitSearchKernel[K keys.Key](d *Device, iseg []K, desc ImplicitDesc, queries []K, out []int32, startLevel int, startIdx []int32) (int64, error) {
	if err := d.check(fault.OpKernel); err != nil {
		return 0, err
	}
	// The small-batch path runs inline without constructing the fan-out
	// closure, keeping the steady-state serving pipeline allocation-free.
	geom := desc.Geom()
	if d.runsInline(len(queries)) {
		implicitSearchRange(iseg, geom, desc.Height, desc.NumLeaves, queries, out, startLevel, startIdx, 0, len(queries))
	} else {
		d.fanOut(len(queries), func(lo, hi int) {
			implicitSearchRange(iseg, geom, desc.Height, desc.NumLeaves, queries, out, startLevel, startIdx, lo, hi)
		})
	}
	return int64(len(queries)) * desc.TransPerQuery(startLevel), nil
}

// implicitSearchRange resolves queries[lo:hi] against the implicit
// I-segment; the kernel body shared by the inline and fanned-out paths.
// All geometry comes from the per-level layout table.
func implicitSearchRange[K keys.Key](iseg []K, geom []LevelGeom, height, numLeaves int, queries []K, out []int32, startLevel int, startIdx []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		q := queries[i]
		idx := int32(0)
		if startIdx != nil {
			idx = startIdx[i]
		}
		for lvl := startLevel; lvl < height; lvl++ {
			g := geom[lvl]
			off := int(g.Off) + int(idx)*int(g.Kpn)
			node := iseg[off : off+int(g.Kpn)]
			res := warpSearch(node, q)
			idx = idx*g.Fanout + int32(res)
		}
		if int(idx) >= numLeaves {
			idx = int32(numLeaves - 1)
		}
		out[i] = idx
	}
}

// RegularDesc describes the regular HB+-tree inner segments resident in
// device memory.
type RegularDesc struct {
	Root        int32
	RootInUpper bool // height >= 2
	Height      int  // inner levels (last-level nodes at height 1)
	NodeSlots   int  // K slots per inner node
	Kpl         int  // keys per line (threads per query)
}

// RegularSearchKernel traverses the device-resident regular I-segment
// (upper and last-level pools) for each query, writing the target big
// leaf and leaf line. Each node costs three dependent accesses: index
// line, key line, reference slot (Section 5.3). startHeight/startIdx
// support the load-balanced mode. It returns the number of device-memory
// transactions issued, or a typed fault when an attached injector fails
// the launch — in which case outLeaf/outLine are untouched.
func RegularSearchKernel[K keys.Key](d *Device, upper, last []K, desc RegularDesc, queries []K, outLeaf, outLine []int32, startHeight int, startIdx []int32) (int64, error) {
	if err := d.check(fault.OpKernel); err != nil {
		return 0, err
	}
	// As with the implicit kernel, the small-batch path avoids the
	// fan-out closure so steady-state serving stays allocation-free.
	if d.runsInline(len(queries)) {
		regularSearchRange(upper, last, desc, queries, outLeaf, outLine, startHeight, startIdx, 0, len(queries))
	} else {
		d.fanOut(len(queries), func(lo, hi int) {
			regularSearchRange(upper, last, desc, queries, outLeaf, outLine, startHeight, startIdx, lo, hi)
		})
	}
	h := desc.Height
	if startIdx != nil {
		h = startHeight
	}
	return int64(len(queries)) * int64(h) * 3, nil
}

// regularSearchNode runs the two dependent warp searches of one regular
// inner node (index line, then key line), returning the child slot.
func regularSearchNode[K keys.Key](pool []K, desc RegularDesc, idx int32, q K) int {
	kpl := desc.Kpl
	base := int(idx) * desc.NodeSlots
	s := warpSearch(pool[base:base+kpl], q)                     // index line
	u := warpSearch(pool[base+kpl+s*kpl:base+kpl+(s+1)*kpl], q) // key line
	return s*kpl + u
}

// regularSearchRange resolves queries[lo:hi] against the regular
// I-segment pools; the kernel body shared by the inline and fanned-out
// paths.
func regularSearchRange[K keys.Key](upper, last []K, desc RegularDesc, queries []K, outLeaf, outLine []int32, startHeight int, startIdx []int32, lo, hi int) {
	kpl := desc.Kpl
	for i := lo; i < hi; i++ {
		q := queries[i]
		idx := desc.Root
		h := desc.Height
		if startIdx != nil {
			idx = startIdx[i]
			h = startHeight
		}
		for ; h >= 2; h-- {
			c := regularSearchNode(upper, desc, idx, q)
			base := int(idx)*desc.NodeSlots + kpl + kpl*kpl
			idx = int32(upper[base+c]) // reference fetch: third access
		}
		c := regularSearchNode(last, desc, idx, q)
		outLeaf[i] = idx
		outLine[i] = int32(c)
	}
}

// ImplicitSearchKernelSorted is the level-wise shared-descent variant of
// ImplicitSearchKernel for batches sorted ascending (duplicates
// allowed). Sorted queries keep the per-level frontier non-decreasing,
// so all queries resolving to the same node form a contiguous run: the
// run's first query loads the node line and runs the full warp search,
// and every follower either reuses the leader's child slot outright
// (q <= the matched separator) or advances the lower bound forward
// through the already-resident line — one coalesced memory transaction
// per distinct node per level instead of one per query per level. It
// returns the number of transactions actually issued and, when lvl is
// non-nil, accumulates the per-level transaction counts into
// lvl[0..Height-1] (root level first); results are byte-identical to
// the unsorted kernel's for the same queries.
func ImplicitSearchKernelSorted[K keys.Key](d *Device, iseg []K, desc ImplicitDesc, queries []K, out []int32, lvl []int64) (int64, error) {
	if err := d.check(fault.OpKernel); err != nil {
		return 0, err
	}
	geom := desc.Geom()
	if d.runsInline(len(queries)) {
		return implicitSortedRange(iseg, geom, desc.Height, desc.NumLeaves, queries, out, lvl, 0, len(queries)), nil
	}
	// Each chunk is itself a sorted contiguous range, so sharing still
	// applies within it; only the chunk-boundary nodes are re-probed.
	var trans atomic.Int64
	d.fanOut(len(queries), func(lo, hi int) {
		trans.Add(implicitSortedRange(iseg, geom, desc.Height, desc.NumLeaves, queries, out, lvl, lo, hi))
	})
	return trans.Load(), nil
}

// implicitSortedRange descends queries[lo:hi] level by level, using out
// as the frontier (the node index each query sits at), and returns the
// distinct-node transaction count. A fresh node probe at level l costs
// geom[l].Lines transactions (a wide node spans several coalesced
// lines); followers inside the resident node cost none.
func implicitSortedRange[K keys.Key](iseg []K, geom []LevelGeom, height, numLeaves int, queries []K, out []int32, lvl []int64, lo, hi int) int64 {
	var trans int64
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	for l := 0; l < height; l++ {
		g := geom[l]
		prevIdx := int32(-1)
		var node []K
		res := 0
		var lt int64
		for i := lo; i < hi; i++ {
			idx := out[i]
			q := queries[i]
			if idx != prevIdx {
				off := int(g.Off) + int(idx)*int(g.Kpn)
				node = iseg[off : off+int(g.Kpn)]
				prevIdx = idx
				res = warpSearch(node, q)
				lt += int64(g.Lines)
			} else if q > node[res] {
				// Monotone advance: a later sorted query's lower bound
				// never moves backwards within the resident node.
				for res < len(node)-1 && q > node[res] {
					res++
				}
			}
			out[i] = idx*g.Fanout + int32(res)
		}
		trans += lt
		if l < len(lvl) {
			// The fanned-out path shares lvl across chunk goroutines.
			atomic.AddInt64(&lvl[l], lt)
		}
	}
	for i := lo; i < hi; i++ {
		if int(out[i]) >= numLeaves {
			out[i] = int32(numLeaves - 1)
		}
	}
	return trans
}

// RegularSearchKernelSorted is the shared-descent variant of
// RegularSearchKernel for sorted batches. A run of queries bounded by
// the matched separator key reuses the leader's (index line, key line,
// reference) resolution wholesale; a query past the separator but still
// inside the same node re-searches the resident index line and pays one
// extra transaction only when it lands on a different key line. It
// returns the transactions issued (3 per fresh node on reference-carrying
// levels, 2 on the last inner level, +1 per key-line switch) and fills
// the optional per-level counts like the implicit variant; results are
// byte-identical to the unsorted kernel's.
func RegularSearchKernelSorted[K keys.Key](d *Device, upper, last []K, desc RegularDesc, queries []K, outLeaf, outLine []int32, lvl []int64) (int64, error) {
	if err := d.check(fault.OpKernel); err != nil {
		return 0, err
	}
	if d.runsInline(len(queries)) {
		return regularSortedRange(upper, last, desc, queries, outLeaf, outLine, lvl, 0, len(queries)), nil
	}
	var trans atomic.Int64
	d.fanOut(len(queries), func(lo, hi int) {
		trans.Add(regularSortedRange(upper, last, desc, queries, outLeaf, outLine, lvl, lo, hi))
	})
	return trans.Load(), nil
}

// regularSortedRange descends queries[lo:hi] through the regular pools
// level by level (outLeaf is the frontier), returning the transaction
// count.
func regularSortedRange[K keys.Key](upper, last []K, desc RegularDesc, queries []K, outLeaf, outLine []int32, lvl []int64, lo, hi int) int64 {
	kpl := desc.Kpl
	var trans int64
	for i := lo; i < hi; i++ {
		outLeaf[i] = desc.Root
	}
	for h := desc.Height; h >= 2; h-- {
		prevIdx := int32(-1)
		prevS := -1
		var sep K
		var next int32
		var lt int64
		for i := lo; i < hi; i++ {
			idx := outLeaf[i]
			q := queries[i]
			if idx == prevIdx && q <= sep {
				outLeaf[i] = next
				continue
			}
			newNode := idx != prevIdx
			base := int(idx) * desc.NodeSlots
			s := warpSearch(upper[base:base+kpl], q)
			u := warpSearch(upper[base+kpl+s*kpl:base+kpl+(s+1)*kpl], q)
			sep = upper[base+kpl+s*kpl+u]
			next = int32(upper[base+kpl+kpl*kpl+s*kpl+u])
			switch {
			case newNode:
				lt += 3 // index line, key line, reference line
			case s != prevS:
				lt++ // new key line within the resident node
			}
			prevIdx, prevS = idx, s
			outLeaf[i] = next
		}
		trans += lt
		if l := desc.Height - h; l < len(lvl) {
			atomic.AddInt64(&lvl[l], lt)
		}
	}
	prevIdx := int32(-1)
	prevS := -1
	var sep K
	var line int32
	var lt int64
	for i := lo; i < hi; i++ {
		idx := outLeaf[i]
		q := queries[i]
		if idx == prevIdx && q <= sep {
			outLine[i] = line
			continue
		}
		newNode := idx != prevIdx
		base := int(idx) * desc.NodeSlots
		s := warpSearch(last[base:base+kpl], q)
		u := warpSearch(last[base+kpl+s*kpl:base+kpl+(s+1)*kpl], q)
		sep = last[base+kpl+s*kpl+u]
		line = int32(s*kpl + u)
		switch {
		case newNode:
			lt += 2 // index line + key line; the last level has no references
		case s != prevS:
			lt++
		}
		prevIdx, prevS = idx, s
		outLine[i] = line
	}
	trans += lt
	if l := desc.Height - 1; l >= 0 && l < len(lvl) {
		atomic.AddInt64(&lvl[l], lt)
	}
	return trans
}

// runsInline reports whether a kernel over n queries executes on the
// calling goroutine (too small to be worth fanning out).
func (d *Device) runsInline(n int) bool {
	return d.workers <= 1 || n < 1024
}

// fanOut spreads the query range across the device's worker goroutines
// (the SM array stand-in).
func (d *Device) fanOut(n int, run func(lo, hi int)) {
	if d.runsInline(n) {
		run(0, n)
		return
	}
	w := d.workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
