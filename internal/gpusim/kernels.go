package gpusim

import (
	"sync"

	"hbtree/internal/fault"
	"hbtree/internal/keys"
)

// This file implements the GPU search kernels functionally. Each query
// is resolved by a "warp team" of T threads (8 for 64-bit keys, 16 for
// 32-bit keys; Section 5.3) executing the parallel node-search algorithm
// of Snippet 3: every team thread compares its assigned key, publishes a
// flag, and the thread whose flag differs from its predecessor's owns
// the answer. The emulation preserves that structure literally — flags,
// predecessor test, shared result — and fans warps out across host
// goroutines standing in for the SM array.

// warpSearch executes the parallel node search of Snippet 3 on one node
// line. It requires the node's last slot to be reachable (the HB+-tree
// pins trailing separators to MAX), guaranteeing a valid result for any
// query.
func warpSearch[K keys.Key](node []K, q K) int {
	var flag [17]bool // flag[0] is the implicit predecessor of thread 0
	for j, k := range node {
		flag[j+1] = q <= k // each team thread's comparison
	}
	res := len(node) - 1
	for j := range node {
		// Thread j owns the result iff its flag is set and thread j-1's
		// is not ("if r_t = 1 and r_{t-1} = 0").
		if flag[j+1] && !flag[j] {
			res = j
			break
		}
	}
	return res
}

// ImplicitDesc describes the implicit HB+-tree I-segment resident in
// device memory.
type ImplicitDesc struct {
	LevelOff  []int32 // offset of each level in nodes, root first
	Kpn       int     // key slots per node (threads per query, T)
	Fanout    int     // children per node (8 / 16 for the HB+ layout)
	Height    int     // inner levels
	NumLeaves int     // leaf lines (for final clamping)
}

// ImplicitSearchKernel traverses the device-resident implicit I-segment
// for each query, writing the target leaf line index. startLevel and
// startIdx support the load-balanced mode where the CPU pre-walks the
// top D levels (Section 5.5); pass startLevel 0 and nil startIdx for the
// full traversal. It returns the number of device-memory transactions
// issued (one coalesced 64-byte access per node per query), or a typed
// fault when an attached injector fails the launch — in which case out
// is untouched.
func ImplicitSearchKernel[K keys.Key](d *Device, iseg []K, desc ImplicitDesc, queries []K, out []int32, startLevel int, startIdx []int32) (int64, error) {
	if err := d.check(fault.OpKernel); err != nil {
		return 0, err
	}
	// The small-batch path runs inline without constructing the fan-out
	// closure, keeping the steady-state serving pipeline allocation-free.
	if d.runsInline(len(queries)) {
		implicitSearchRange(iseg, desc, queries, out, startLevel, startIdx, 0, len(queries))
	} else {
		d.fanOut(len(queries), func(lo, hi int) {
			implicitSearchRange(iseg, desc, queries, out, startLevel, startIdx, lo, hi)
		})
	}
	levels := desc.Height - startLevel
	return int64(len(queries)) * int64(levels), nil
}

// implicitSearchRange resolves queries[lo:hi] against the implicit
// I-segment; the kernel body shared by the inline and fanned-out paths.
func implicitSearchRange[K keys.Key](iseg []K, desc ImplicitDesc, queries []K, out []int32, startLevel int, startIdx []int32, lo, hi int) {
	for i := lo; i < hi; i++ {
		q := queries[i]
		idx := int32(0)
		if startIdx != nil {
			idx = startIdx[i]
		}
		for lvl := startLevel; lvl < desc.Height; lvl++ {
			off := (int(desc.LevelOff[lvl]) + int(idx)) * desc.Kpn
			node := iseg[off : off+desc.Kpn]
			res := warpSearch(node, q)
			idx = idx*int32(desc.Fanout) + int32(res)
		}
		if int(idx) >= desc.NumLeaves {
			idx = int32(desc.NumLeaves - 1)
		}
		out[i] = idx
	}
}

// RegularDesc describes the regular HB+-tree inner segments resident in
// device memory.
type RegularDesc struct {
	Root        int32
	RootInUpper bool // height >= 2
	Height      int  // inner levels (last-level nodes at height 1)
	NodeSlots   int  // K slots per inner node
	Kpl         int  // keys per line (threads per query)
}

// RegularSearchKernel traverses the device-resident regular I-segment
// (upper and last-level pools) for each query, writing the target big
// leaf and leaf line. Each node costs three dependent accesses: index
// line, key line, reference slot (Section 5.3). startHeight/startIdx
// support the load-balanced mode. It returns the number of device-memory
// transactions issued, or a typed fault when an attached injector fails
// the launch — in which case outLeaf/outLine are untouched.
func RegularSearchKernel[K keys.Key](d *Device, upper, last []K, desc RegularDesc, queries []K, outLeaf, outLine []int32, startHeight int, startIdx []int32) (int64, error) {
	if err := d.check(fault.OpKernel); err != nil {
		return 0, err
	}
	// As with the implicit kernel, the small-batch path avoids the
	// fan-out closure so steady-state serving stays allocation-free.
	if d.runsInline(len(queries)) {
		regularSearchRange(upper, last, desc, queries, outLeaf, outLine, startHeight, startIdx, 0, len(queries))
	} else {
		d.fanOut(len(queries), func(lo, hi int) {
			regularSearchRange(upper, last, desc, queries, outLeaf, outLine, startHeight, startIdx, lo, hi)
		})
	}
	h := desc.Height
	if startIdx != nil {
		h = startHeight
	}
	return int64(len(queries)) * int64(h) * 3, nil
}

// regularSearchNode runs the two dependent warp searches of one regular
// inner node (index line, then key line), returning the child slot.
func regularSearchNode[K keys.Key](pool []K, desc RegularDesc, idx int32, q K) int {
	kpl := desc.Kpl
	base := int(idx) * desc.NodeSlots
	s := warpSearch(pool[base:base+kpl], q)                     // index line
	u := warpSearch(pool[base+kpl+s*kpl:base+kpl+(s+1)*kpl], q) // key line
	return s*kpl + u
}

// regularSearchRange resolves queries[lo:hi] against the regular
// I-segment pools; the kernel body shared by the inline and fanned-out
// paths.
func regularSearchRange[K keys.Key](upper, last []K, desc RegularDesc, queries []K, outLeaf, outLine []int32, startHeight int, startIdx []int32, lo, hi int) {
	kpl := desc.Kpl
	for i := lo; i < hi; i++ {
		q := queries[i]
		idx := desc.Root
		h := desc.Height
		if startIdx != nil {
			idx = startIdx[i]
			h = startHeight
		}
		for ; h >= 2; h-- {
			c := regularSearchNode(upper, desc, idx, q)
			base := int(idx)*desc.NodeSlots + kpl + kpl*kpl
			idx = int32(upper[base+c]) // reference fetch: third access
		}
		c := regularSearchNode(last, desc, idx, q)
		outLeaf[i] = idx
		outLine[i] = int32(c)
	}
}

// runsInline reports whether a kernel over n queries executes on the
// calling goroutine (too small to be worth fanning out).
func (d *Device) runsInline(n int) bool {
	return d.workers <= 1 || n < 1024
}

// fanOut spreads the query range across the device's worker goroutines
// (the SM array stand-in).
func (d *Device) fanOut(n int, run func(lo, hi int)) {
	if d.runsInline(n) {
		run(0, n)
		return
	}
	w := d.workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
