// Package gpusim simulates the discrete CUDA GPU of the paper's
// evaluation platforms (GeForce GTX 780 / 770M) closely enough to
// reproduce the HB+-tree's behaviour without GPU hardware.
//
// The simulation has two halves:
//
//   - Functional: device memory is real storage (capacity-checked
//     against the card's 3 GiB), host<->device copies move real bytes,
//     and kernels execute the paper's warp-parallel node-search
//     algorithm (Snippet 3) on the device-resident replica, computing
//     real results that tests verify against the host tree.
//
//   - Temporal: every operation returns a virtual duration from the
//     paper's own cost model (Section 5.4): copies cost
//     T_init + bytes/Bandwidth; kernels cost K_init plus the larger of
//     the memory-bandwidth bound (coalesced 64-byte transactions, the
//     transfer size the paper found optimal in Section 5.2) and the
//     latency bound (dependent accesses per level, hidden across the
//     resident-warp concurrency). The caller composes these durations
//     on a vclock.Timeline to reproduce bucket pipelining and double
//     buffering.
package gpusim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hbtree/internal/fault"
	"hbtree/internal/keys"
	"hbtree/internal/platform"
	"hbtree/internal/vclock"
)

// ErrOutOfMemory is returned when an allocation exceeds the device
// memory capacity — the fundamental limitation that motivates the
// HB+-tree's hybrid layout (Section 1).
var ErrOutOfMemory = fmt.Errorf("gpusim: device memory exhausted")

// Device is one simulated GPU.
type Device struct {
	cfg platform.GPU

	mu   sync.Mutex
	used int64

	// Simulated hardware event counters.
	bytesH2D     atomic.Int64
	bytesD2H     atomic.Int64
	transactions atomic.Int64 // coalesced 64 B device-memory transactions
	kernels      atomic.Int64
	faults       atomic.Int64 // injected faults surfaced by this device

	// inj, when set, is consulted before every kernel launch, transfer
	// and allocation; a non-nil Check result fails the operation with
	// that typed error and no functional effect.
	inj atomic.Pointer[fault.Injector]

	workers int // host goroutines emulating the SM array
}

// SetInjector attaches (or, with nil, detaches) a fault injector. Safe
// to call while the device is serving.
func (d *Device) SetInjector(in *fault.Injector) { d.inj.Store(in) }

// Injector returns the attached fault injector, or nil.
func (d *Device) Injector() *fault.Injector { return d.inj.Load() }

// check consults the attached injector for one operation class.
func (d *Device) check(op fault.Op) error {
	in := d.inj.Load()
	if in == nil {
		return nil
	}
	if err := in.Check(op); err != nil {
		d.faults.Add(1)
		return err
	}
	return nil
}

// New creates a device from the platform model.
func New(cfg platform.GPU) *Device {
	return &Device{cfg: cfg, workers: cfg.SMs}
}

// Config returns the device's platform model.
func (d *Device) Config() platform.GPU { return d.cfg }

// MemUsed reports allocated device memory in bytes.
func (d *Device) MemUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// MemFree reports remaining device memory in bytes.
func (d *Device) MemFree() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg.MemBytes - d.used
}

// Counters is a snapshot of the device's simulated hardware counters.
type Counters struct {
	BytesH2D     int64
	BytesD2H     int64
	Transactions int64
	Kernels      int64
	Faults       int64 // injected faults surfaced by this device
}

// Counters returns the current counter snapshot.
func (d *Device) Counters() Counters {
	return Counters{
		BytesH2D:     d.bytesH2D.Load(),
		BytesD2H:     d.bytesD2H.Load(),
		Transactions: d.transactions.Load(),
		Kernels:      d.kernels.Load(),
		Faults:       d.faults.Load(),
	}
}

// Buffer is a typed device-memory allocation.
type Buffer[K any] struct {
	dev  *Device
	data []K
	size int64
}

// Malloc allocates a device buffer of n elements, failing when the
// card's memory capacity would be exceeded.
func Malloc[K any](d *Device, n int) (*Buffer[K], error) {
	var z K
	size := int64(n) * int64(sizeofAny(z))
	if err := d.check(fault.OpMalloc); err != nil {
		return nil, fmt.Errorf("gpusim: malloc of %d bytes: %w", size, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used+size > d.cfg.MemBytes {
		return nil, fmt.Errorf("%w: need %d bytes, %d free", ErrOutOfMemory, size, d.cfg.MemBytes-d.used)
	}
	d.used += size
	return &Buffer[K]{dev: d, data: make([]K, n), size: size}, nil
}

// sizeofAny returns the byte size of supported element types.
func sizeofAny(v any) int {
	switch v.(type) {
	case uint32, int32, float32:
		return 4
	case uint64, int64, float64:
		return 8
	case uint8, int8, bool:
		return 1
	default:
		return 8
	}
}

// Free releases the buffer's device memory. Double frees are no-ops.
func (b *Buffer[K]) Free() {
	if b.data == nil {
		return
	}
	b.dev.mu.Lock()
	b.dev.used -= b.size
	b.dev.mu.Unlock()
	b.data = nil
}

// Data exposes the device-resident storage; kernels read and write it.
func (b *Buffer[K]) Data() []K { return b.data }

// Len returns the element count.
func (b *Buffer[K]) Len() int { return len(b.data) }

// CopyFromHost copies src into the buffer (cudaMemcpyHostToDevice) and
// returns the transfer's virtual duration T_init + bytes/Bandwidth.
func (b *Buffer[K]) CopyFromHost(src []K) (vclock.Duration, error) {
	if len(src) > len(b.data) {
		return 0, fmt.Errorf("gpusim: H2D copy of %d elements into buffer of %d", len(src), len(b.data))
	}
	if err := b.dev.check(fault.OpH2D); err != nil {
		return 0, err // no bytes moved: the device image is unchanged
	}
	copy(b.data, src)
	var z K
	bytes := int64(len(src)) * int64(sizeofAny(z))
	b.dev.bytesH2D.Add(bytes)
	return b.dev.CopyDuration(bytes), nil
}

// CopyRegionFromHost copies src into the buffer at element offset off —
// the per-node synchronisation primitive of the synchronized update
// method (Section 5.6). Each call pays the full T_init, which is exactly
// why that method is "bounded by the communication initialization
// latency".
func (b *Buffer[K]) CopyRegionFromHost(off int, src []K) (vclock.Duration, error) {
	if off < 0 || off+len(src) > len(b.data) {
		return 0, fmt.Errorf("gpusim: H2D region copy out of range [%d, %d) of %d", off, off+len(src), len(b.data))
	}
	if err := b.dev.check(fault.OpH2D); err != nil {
		return 0, err // no bytes moved: the device image is unchanged
	}
	copy(b.data[off:], src)
	var z K
	bytes := int64(len(src)) * int64(sizeofAny(z))
	b.dev.bytesH2D.Add(bytes)
	return b.dev.CopyDuration(bytes), nil
}

// CopyToHost copies the first len(dst) elements back to the host
// (cudaMemcpyDeviceToHost) and returns the virtual duration.
func (b *Buffer[K]) CopyToHost(dst []K) (vclock.Duration, error) {
	if len(dst) > len(b.data) {
		return 0, fmt.Errorf("gpusim: D2H copy of %d elements from buffer of %d", len(dst), len(b.data))
	}
	if err := b.dev.check(fault.OpD2H); err != nil {
		return 0, err // no bytes moved: dst is untouched
	}
	copy(dst, b.data)
	var z K
	bytes := int64(len(dst)) * int64(sizeofAny(z))
	b.dev.bytesD2H.Add(bytes)
	return b.dev.CopyDuration(bytes), nil
}

// CopyDuration is the paper's transfer cost model:
// T = T_init + bytes / Bandwidth.
func (d *Device) CopyDuration(bytes int64) vclock.Duration {
	return d.cfg.TInit + vclock.Duration(float64(bytes)/d.cfg.PCIeBWBytes*1e9)
}

// KernelDuration models the execution time of a tree-search kernel over
// nQueries queries, each traversing `levels` node levels with
// transPerLevel dependent 64-byte transactions per level, using
// threadsPerQuery GPU threads (T in Section 5.3: 8 for 64-bit, 16 for
// 32-bit keys). divergence in (0, 1] derates the sustained bandwidth for
// kernels with extra warp divergence, such as the three-phase regular
// node search; pass 1 for the implicit kernel.
//
// The model is K_init + max(bandwidth bound, latency bound, compute):
// with enough resident warps the latency of dependent accesses is hidden
// and the kernel runs at the memory-bandwidth roofline — the regime the
// paper identifies as the GPU's advantage; small grids fall back to the
// latency bound.
func (d *Device) KernelDuration(nQueries int, levels float64, transPerLevel, threadsPerQuery int, divergence float64) vclock.Duration {
	if nQueries == 0 {
		return 0
	}
	trans := int64(float64(nQueries) * levels * float64(transPerLevel))
	d.transactions.Add(trans)
	d.kernels.Add(1)

	eff := d.cfg.KernelBWEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	if divergence > 0 && divergence <= 1 {
		eff *= divergence
	}
	bw := vclock.Duration(float64(trans*keys.LineBytes) / (d.cfg.MemBWBytes * eff) * 1e9)

	conc := d.cfg.ConcurrentQueries(threadsPerQuery)
	waves := math.Ceil(float64(nQueries) / float64(conc))
	lat := vclock.Duration(waves * levels * float64(transPerLevel) * float64(d.cfg.MemLatency))

	compute := vclock.Duration(float64(trans)/float64(d.cfg.SMs)) * d.cfg.CostWarpStep / 32

	t := bw
	if lat > t {
		t = lat
	}
	if compute > t {
		t = compute
	}
	return d.cfg.KInit + t
}

// KernelDurationShared models the execution time of a shared-descent
// kernel over a sorted batch: nQueries queries descending `levels`
// levels, but issuing only `trans` distinct memory transactions (as
// returned by the sorted kernels) instead of the unsorted kernel's
// nQueries*levels*transPerLevel. The bandwidth bound is charged on the
// actual transactions at the device's un-derated efficiency — sorted
// runs walk each level's node array in address order, so there is no
// divergence penalty to apply. The latency bound scales the wave count
// by the share of queries that lead a run (followers receive their
// child slot from the leader's resident line, off the dependent-miss
// chain). Compute is NOT scaled down: every query still resolves its
// own child slot, so the term keeps the unsorted kernel's shape and
// acts as the floor for heavily shared batches.
func (d *Device) KernelDurationShared(nQueries int, levels float64, trans int64, transPerLevel, threadsPerQuery int) vclock.Duration {
	if nQueries == 0 || levels <= 0 {
		return 0
	}
	d.transactions.Add(trans)
	d.kernels.Add(1)

	eff := d.cfg.KernelBWEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	bw := vclock.Duration(float64(trans*keys.LineBytes) / (d.cfg.MemBWBytes * eff) * 1e9)

	// Equivalent full-paying queries: the leaders. trans/(levels*tpl)
	// is how many per-query descents' worth of transactions were issued.
	leaders := float64(trans) / (levels * float64(transPerLevel))
	if leaders > float64(nQueries) {
		leaders = float64(nQueries)
	}
	conc := d.cfg.ConcurrentQueries(threadsPerQuery)
	waves := math.Ceil(leaders / float64(conc))
	lat := vclock.Duration(waves * levels * float64(transPerLevel) * float64(d.cfg.MemLatency))

	fullTrans := float64(nQueries) * levels * float64(transPerLevel)
	compute := vclock.Duration(fullTrans/float64(d.cfg.SMs)) * d.cfg.CostWarpStep / 32

	t := bw
	if lat > t {
		t = lat
	}
	if compute > t {
		t = compute
	}
	return d.cfg.KInit + t
}

// Workers returns the host-goroutine parallelism used to execute kernels
// functionally.
func (d *Device) Workers() int { return d.workers }
