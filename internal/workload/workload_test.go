package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hbtree/internal/keys"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	if NewRNG(7).Uint64() == c.Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestIntnAndFloat(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestDistinctKeysSortedUnique(t *testing.T) {
	for _, d := range []Distribution{Uniform, Normal, Gamma, Zipf} {
		ks := DistinctKeys[uint64](d, 5000, 42)
		if len(ks) != 5000 {
			t.Fatalf("%v: got %d keys", d, len(ks))
		}
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				t.Fatalf("%v: not sorted/unique at %d", d, i)
			}
		}
		if ks[len(ks)-1] == keys.Max[uint64]() {
			t.Fatalf("%v: sentinel generated", d)
		}
	}
}

func TestDistinctKeys32(t *testing.T) {
	ks := DistinctKeys[uint32](Uniform, 100000, 9)
	if len(ks) != 100000 {
		t.Fatalf("got %d", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatal("not sorted/unique")
		}
	}
}

func TestDatasetValues(t *testing.T) {
	pairs := Dataset[uint64](Uniform, 1000, 5)
	for _, p := range pairs {
		if p.Value != ValueFor(p.Key) {
			t.Fatalf("value mismatch for key %d", p.Key)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := make([]int, 1000)
	for i := range s {
		s[i] = i
	}
	Shuffle(s, 11)
	sorted := append([]int(nil), s...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatal("shuffle lost elements")
		}
	}
	moved := 0
	for i, v := range s {
		if v != i {
			moved++
		}
	}
	if moved < 900 {
		t.Fatalf("shuffle barely moved anything: %d", moved)
	}
}

func TestSearchInputCoversDataset(t *testing.T) {
	pairs := Dataset[uint64](Uniform, 500, 3)
	qs := SearchInput(pairs, 500, 7)
	seen := make(map[uint64]bool)
	for _, q := range qs {
		seen[q] = true
	}
	for _, p := range pairs {
		if !seen[p.Key] {
			t.Fatalf("key %d missing from search input", p.Key)
		}
	}
	// Longer inputs wrap around.
	qs2 := SearchInput(pairs, 1200, 7)
	if len(qs2) != 1200 {
		t.Fatalf("len = %d", len(qs2))
	}
}

func TestSkewedDistributionsShape(t *testing.T) {
	const n = 200000
	maxK := float64(keys.Max[uint64]())
	mean := func(d Distribution) float64 {
		qs := SkewedQueries[uint64](d, n, 13)
		var s float64
		for _, q := range qs {
			s += float64(q) / maxK
		}
		return s / n
	}
	if m := mean(Uniform); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean %v", m)
	}
	if m := mean(Normal); math.Abs(m-0.5) > 0.02 {
		t.Fatalf("normal mean %v", m)
	}
	// Zipf(2) concentrates near zero.
	if m := mean(Zipf); m > 0.05 {
		t.Fatalf("zipf mean %v not concentrated", m)
	}
	// Gamma is right-skewed with mode below the mean, both well under 1.
	if m := mean(Gamma); m < 0.1 || m > 0.5 {
		t.Fatalf("gamma mean %v implausible", m)
	}
}

func TestZipfConcentration(t *testing.T) {
	qs := SkewedQueries[uint64](Zipf, 100000, 21)
	counts := make(map[uint64]int)
	for _, q := range qs {
		counts[q]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	// Rank 1 should absorb a large share under alpha=2.
	if top < 100000/4 {
		t.Fatalf("zipf top value only %d occurrences", top)
	}
}

func TestRangeQueriesWithinBounds(t *testing.T) {
	pairs := Dataset[uint64](Uniform, 10000, 4)
	rqs := RangeQueries(pairs, 500, 32, 9)
	if len(rqs) != 500 {
		t.Fatalf("got %d", len(rqs))
	}
	keySet := make(map[uint64]bool, len(pairs))
	for _, p := range pairs {
		keySet[p.Key] = true
	}
	for _, rq := range rqs {
		if rq.Count != 32 {
			t.Fatalf("count %d", rq.Count)
		}
		if !keySet[rq.Start] {
			t.Fatalf("range start %d not a dataset key", rq.Start)
		}
	}
}

func TestUpdateBatchComposition(t *testing.T) {
	pairs := Dataset[uint64](Uniform, 5000, 6)
	present := make(map[uint64]bool)
	for _, p := range pairs {
		present[p.Key] = true
	}
	ops := UpdateBatch(pairs, 2000, 0.4, 17)
	if len(ops) != 2000 {
		t.Fatalf("got %d ops", len(ops))
	}
	dels, ins := 0, 0
	seen := make(map[uint64]bool)
	for _, op := range ops {
		if seen[op.Pair.Key] {
			t.Fatalf("duplicate op key %d", op.Pair.Key)
		}
		seen[op.Pair.Key] = true
		if op.Delete {
			dels++
			if !present[op.Pair.Key] {
				t.Fatal("delete of absent key")
			}
		} else {
			ins++
			if present[op.Pair.Key] {
				t.Fatal("insert of present key")
			}
			if op.Pair.Value != ValueFor(op.Pair.Key) {
				t.Fatal("insert value wrong")
			}
		}
	}
	if dels < 600 || dels > 1000 {
		t.Fatalf("delete fraction off: %d/%d", dels, len(ops))
	}
	_ = ins
}

// TestQuickDistinct property-tests that DistinctKeys always returns the
// requested count of strictly increasing keys.
func TestQuickDistinct(t *testing.T) {
	f := func(seed uint64, n uint16, dRaw uint8) bool {
		d := Distribution(dRaw % 4)
		count := int(n)%2000 + 1
		ks := DistinctKeys[uint64](d, count, seed)
		if len(ks) != count {
			return false
		}
		for i := 1; i < len(ks); i++ {
			if ks[i-1] >= ks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionString(t *testing.T) {
	names := map[Distribution]string{Uniform: "Uniform", Normal: "Normal", Gamma: "Gamma", Zipf: "Zipf", Distribution(9): "unknown"}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("String(%d) = %q", int(d), d.String())
		}
	}
}
