// Package workload generates the datasets and query streams of the
// paper's evaluation (Section 6.1): uniformly distributed key-value
// tuples whose keys are then Knuth-shuffled to form the search input,
// plus the four distributions of the skew experiment (Figure 12) and the
// range-query workload (Figure 17).
//
// All generation is deterministic given a seed, so experiments and tests
// are reproducible run to run.
package workload

import (
	"math"
	"sort"

	"hbtree/internal/keys"
)

// RNG is a splitmix64 pseudo-random generator. Its output sequence for a
// fixed seed is mix(seed + i*golden) where mix is a bijection, a property
// the distinct-key generator exploits.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

const golden = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finalizer, a bijection on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Uint32 returns the next pseudo-random 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Distribution selects the query/key distribution of Figure 12.
type Distribution int

// The distributions evaluated in the skew experiment (Section 6.3):
// Uniform is the baseline; Normal(mu=0.5, sigma^2=0.125), Gamma(k=3,
// theta=3) and Zipf(alpha=2) generate values in [0,1] that are linearly
// mapped onto the key domain [0, MAX].
const (
	Uniform Distribution = iota
	Normal
	Gamma
	Zipf
)

// String names the distribution as in Figure 12.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "Uniform"
	case Normal:
		return "Normal"
	case Gamma:
		return "Gamma"
	case Zipf:
		return "Zipf"
	}
	return "unknown"
}

// unit draws one sample in [0, 1] from the distribution.
func (d Distribution) unit(r *RNG) float64 {
	switch d {
	case Normal:
		// Box-Muller; mu = 0.5, sigma^2 = 0.125, clamped to [0, 1].
		u1 := r.Float64()
		for u1 == 0 {
			u1 = r.Float64()
		}
		u2 := r.Float64()
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
		v := 0.5 + z*math.Sqrt(0.125)
		return clamp01(v)
	case Gamma:
		// Gamma(k=3, theta=3) is Erlang(3): sum of three exponentials.
		// Samples are rescaled into [0, 1] by the distribution's
		// ~99.9th percentile (k*theta + 8*theta) and clamped, matching
		// the paper's "generated random values are in the range [0,1]".
		prod := 1.0
		for i := 0; i < 3; i++ {
			u := r.Float64()
			for u == 0 {
				u = r.Float64()
			}
			prod *= u
		}
		v := -3.0 * math.Log(prod) // Erlang(3, theta=3)
		return clamp01(v / 33.0)
	case Zipf:
		// Zipf(alpha=2) over integer ranks by inverse transform: for
		// alpha=2 the rank CDF is ~ 1 - 1/rank (the zeta(2)
		// normalisation is folded into the clamp), so
		// rank = floor(1/(1-u)). Ranks map onto [0,1] over a 2^20 rank
		// universe; the first ranks dominate, concentrating queries on
		// few distinct keys exactly as the paper's "highly skewed" case
		// requires.
		u := r.Float64()
		rank := math.Floor(1.0 / (1.0 - u*0.9999990))
		const universe = 1 << 20
		if rank > universe {
			rank = universe
		}
		return (rank - 1) / universe
	default:
		return r.Float64()
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// maxUsable is the largest legal key: keys.Max is the reserved sentinel.
func maxUsable[K keys.Key]() K { return keys.Max[K]() - 1 }

// Draw samples one key from the distribution, linearly mapped onto
// [0, MAX-1] (MAX itself is the tree's sentinel and never generated).
func Draw[K keys.Key](d Distribution, r *RNG) K {
	if d == Uniform {
		var k K
		switch any(k).(type) {
		case uint32:
			v := r.Uint32()
			if v == uint32(keys.Max[uint32]()) {
				v--
			}
			return K(v)
		default:
			v := r.Uint64()
			if v == math.MaxUint64 {
				v--
			}
			return K(v)
		}
	}
	return fromUnit[K](d.unit(r))
}

// fromUnit maps u in [0,1] onto the key domain. The value is quantised
// to a 2^53 grid first: multiplying u directly by 2^64 would overflow
// the float64-to-uint64 conversion for u near 1 (amd64 clamps such
// conversions to 2^63, silently folding the distribution's upper tail
// onto the middle of the domain).
func fromUnit[K keys.Key](u float64) K {
	if u >= 1 {
		return maxUsable[K]()
	}
	if u < 0 {
		u = 0
	}
	g := uint64(u * (1 << 53)) // exact integer in [0, 2^53)
	var k K
	switch any(k).(type) {
	case uint32:
		v := uint32(g >> 21)
		if v == uint32(keys.Max[uint32]()) {
			v--
		}
		return K(v)
	default:
		return K(g << 11) // tops out at 2^64 - 2048, below the sentinel
	}
}

// ValueFor derives the canonical value stored with a key; tests use it to
// verify that lookups return the value belonging to the key they asked
// for.
func ValueFor[K keys.Key](k K) K {
	var z K
	switch any(z).(type) {
	case uint32:
		return K(mix64(uint64(k)) >> 32)
	default:
		return K(mix64(uint64(k)))
	}
}

// DistinctKeys returns n distinct keys drawn from the distribution,
// sorted ascending. For Uniform the splitmix bijection makes collisions
// impossible in 64-bit mode and rare in 32-bit mode; any duplicates from
// skewed distributions are discarded and regenerated.
func DistinctKeys[K keys.Key](d Distribution, n int, seed uint64) []K {
	r := NewRNG(seed)
	out := make([]K, 0, n+n/64+16)
	for len(out) < n {
		want := n - len(out)
		batch := want + want/32 + 16
		for i := 0; i < batch; i++ {
			out = append(out, Draw[K](d, r))
		}
		out = dedupSorted(out)
	}
	return out[:n]
}

func dedupSorted[K keys.Key](s []K) []K {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

// Dataset returns n sorted, distinct key-value pairs for bulk-loading a
// tree. Values are ValueFor(key).
func Dataset[K keys.Key](d Distribution, n int, seed uint64) []keys.Pair[K] {
	ks := DistinctKeys[K](d, n, seed)
	pairs := make([]keys.Pair[K], n)
	for i, k := range ks {
		pairs[i] = keys.Pair[K]{Key: k, Value: ValueFor(k)}
	}
	return pairs
}

// Shuffle performs the Knuth shuffle the paper applies to the tuple set
// before using it as search input (Section 6.1).
func Shuffle[T any](s []T, seed uint64) {
	r := NewRNG(seed)
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// SearchInput returns the dataset's keys in Knuth-shuffled order — the
// paper's search workload: every query hits.
func SearchInput[K keys.Key](pairs []keys.Pair[K], nQueries int, seed uint64) []K {
	qs := make([]K, len(pairs))
	for i, p := range pairs {
		qs[i] = p.Key
	}
	Shuffle(qs, seed)
	for len(qs) < nQueries {
		qs = append(qs, qs[:min(len(pairs), nQueries-len(qs))]...)
	}
	return qs[:nQueries]
}

// SkewedQueries draws nQueries keys directly from the distribution (the
// Figure 12 workload); queries may or may not hit the tree.
func SkewedQueries[K keys.Key](d Distribution, nQueries int, seed uint64) []K {
	r := NewRNG(seed)
	qs := make([]K, nQueries)
	for i := range qs {
		qs[i] = Draw[K](d, r)
	}
	return qs
}

// RangeQuery describes one range lookup: scan forward from the first key
// >= Start until Count matches are returned.
type RangeQuery[K keys.Key] struct {
	Start K
	Count int
}

// RangeQueries builds nQueries range queries of the given selectivity
// (matches per query) whose start keys are existing dataset keys, so each
// query returns exactly Count matches except near the end of the domain
// (Figure 17's 1..32 matching keys per query).
func RangeQueries[K keys.Key](pairs []keys.Pair[K], nQueries, count int, seed uint64) []RangeQuery[K] {
	r := NewRNG(seed)
	out := make([]RangeQuery[K], nQueries)
	limit := len(pairs) - count
	if limit < 1 {
		limit = 1
	}
	for i := range out {
		out[i] = RangeQuery[K]{Start: pairs[r.Intn(limit)].Key, Count: count}
	}
	return out
}

// UpdateOp is one entry of a batch-update workload.
type UpdateOp[K keys.Key] struct {
	Pair   keys.Pair[K]
	Delete bool
}

// UpdateBatch builds a batch of n update operations against the dataset:
// deleteFrac of them delete existing keys, the rest insert fresh keys not
// present in the dataset.
func UpdateBatch[K keys.Key](pairs []keys.Pair[K], n int, deleteFrac float64, seed uint64) []UpdateOp[K] {
	r := NewRNG(seed)
	present := make(map[K]struct{}, len(pairs))
	for _, p := range pairs {
		present[p.Key] = struct{}{}
	}
	out := make([]UpdateOp[K], 0, n)
	used := make(map[K]struct{}, n)
	for len(out) < n {
		if r.Float64() < deleteFrac && len(pairs) > 0 {
			k := pairs[r.Intn(len(pairs))].Key
			if _, dup := used[k]; dup {
				continue
			}
			used[k] = struct{}{}
			out = append(out, UpdateOp[K]{Pair: keys.Pair[K]{Key: k}, Delete: true})
			continue
		}
		k := Draw[K](Uniform, r)
		if _, ok := present[k]; ok {
			continue
		}
		if _, dup := used[k]; dup {
			continue
		}
		used[k] = struct{}{}
		out = append(out, UpdateOp[K]{Pair: keys.Pair[K]{Key: k, Value: ValueFor(k)}})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
