// Package fast implements FAST (Fast Architecture Sensitive Tree, Kim
// et al., SIGMOD 2010), the comparison baseline of Figure 9 — "the
// fastest reported indexing performance of a comparable solution running
// on a single CPU" at the time of the paper.
//
// FAST is a read-only complete binary search tree over the sorted key
// array whose nodes are rearranged by hierarchical blocking so that each
// descent step stays within one cache line for several levels:
//
//   - SIMD blocking groups depth-2 subtrees (3 keys) so one vector
//     compare resolves two levels;
//   - cache-line blocking groups depth-d_L subtrees into one 64-byte
//     line (d_L = 3 for 64-bit keys: 7 keys + 1 pad; d_L = 4 for 32-bit
//     keys: 15 keys + 1 pad);
//   - blocks are laid out in depth-first pre-order, keeping whole
//     subtrees contiguous — the role page blocking plays in the
//     original (locality across the paging granularity).
//
// The tree depth is padded up to a multiple of d_L (absent slots carry
// MAX), making every cache-line block full and the block arithmetic
// uniform. A lookup descends depth/d_L blocks, each one line, then
// probes the sorted key/value arrays — the line-touch counts the
// harness's cost model charges for Figure 9.
package fast

import (
	"fmt"
	"runtime"
	"sync"

	"hbtree/internal/keys"
)

// Tree is a FAST index over K.
type Tree[K keys.Key] struct {
	blocked []K // hierarchically blocked key tree, one block per line-padded group
	skeys   []K // sorted keys
	vals    []K // values aligned with skeys

	n          int   // stored pairs
	depth      int   // conceptual BST depth, a multiple of dl
	dl         int   // cache-line block depth
	bf         int   // block fanout: 2^dl
	blockSlots int   // padded slots per block (keys.PerLine)
	subBlocks  []int // blocks in a subtree rooted at block-level l (suffix sums)
	threads    int
}

// Build constructs a FAST tree from sorted, distinct pairs.
func Build[K keys.Key](pairs []keys.Pair[K], threads int) (*Tree[K], error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("fast: empty dataset")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			return nil, fmt.Errorf("fast: pairs not sorted/distinct at %d", i)
		}
	}
	if pairs[len(pairs)-1].Key == keys.Max[K]() {
		return nil, fmt.Errorf("fast: key MAX is reserved as sentinel")
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}

	t := &Tree[K]{n: len(pairs), threads: threads}
	t.blockSlots = keys.PerLine[K]()
	switch t.blockSlots {
	case 8:
		t.dl = 3 // 7 keys per line
	default:
		t.dl = 4 // 15 keys per line
	}
	t.bf = 1 << t.dl

	// Depth: smallest multiple of dl such that 2^depth - 1 >= n.
	d := 1
	for (1<<d)-1 < len(pairs) {
		d++
	}
	t.depth = (d + t.dl - 1) / t.dl * t.dl

	t.skeys = make([]K, len(pairs))
	t.vals = make([]K, len(pairs))
	for i, p := range pairs {
		t.skeys[i] = p.Key
		t.vals[i] = p.Value
	}

	// Blocks per subtree at each block level (there are depth/dl block
	// levels; a subtree spanning L block levels holds
	// (bf^L - 1)/(bf - 1) blocks).
	blockLevels := t.depth / t.dl
	t.subBlocks = make([]int, blockLevels+1)
	for l := 1; l <= blockLevels; l++ {
		t.subBlocks[l] = t.subBlocks[l-1]*t.bf + 1
	}
	totalBlocks := t.subBlocks[blockLevels]
	t.blocked = make([]K, totalBlocks*t.blockSlots)
	maxK := keys.Max[K]()
	for i := range t.blocked {
		t.blocked[i] = maxK
	}
	t.fill(0, blockLevels, 0, (1<<t.depth)-1)
	return t, nil
}

// keyAt returns the conceptual sorted-array value at pos, MAX beyond the
// stored keys (the padding of the complete BST).
func (t *Tree[K]) keyAt(pos int) K {
	if pos >= t.n {
		return keys.Max[K]()
	}
	return t.skeys[pos]
}

// fill writes the block rooted at blockIdx, covering the conceptual BST
// range [lo, lo+sz) with sz = 2^(levels*dl) - 1 remaining slots, then
// recurses into its bf^? child blocks in depth-first pre-order.
func (t *Tree[K]) fill(blockIdx, blockLevels, lo, sz int) {
	base := blockIdx * t.blockSlots
	// The block stores its depth-dl subtree in breadth-first (heap)
	// order: node j's range midpoint, children 2j+1 and 2j+2.
	type st struct{ lo, sz int }
	nodes := make([]st, (1<<t.dl)-1)
	nodes[0] = st{lo, sz}
	for j := 0; j < len(nodes); j++ {
		half := nodes[j].sz / 2
		t.blocked[base+j] = t.keyAt(nodes[j].lo + half)
		if 2*j+2 < len(nodes) {
			nodes[2*j+1] = st{nodes[j].lo, half}
			nodes[2*j+2] = st{nodes[j].lo + half + 1, half}
		}
	}
	if blockLevels == 1 {
		return
	}
	// Child blocks: the bf subtrees below this block, each of size
	// (sz - (bf-1)) / bf = 2^((blockLevels-1)*dl) - 1.
	childSz := sz / t.bf // sz = bf*childSz + bf - 1
	per := t.subBlocks[blockLevels-1]
	for c := 0; c < t.bf; c++ {
		childLo := lo + c*(childSz+1)
		t.fill(blockIdx+1+c*per, blockLevels-1, childLo, childSz)
	}
}

// Lookup returns the value stored under q.
func (t *Tree[K]) Lookup(q K) (K, bool) {
	pos := t.LowerBound(q)
	if pos < t.n && t.skeys[pos] == q {
		return t.vals[pos], true
	}
	return 0, false
}

// LowerBound returns the index of the first sorted key >= q, descending
// the blocked tree: one cache-line block per dl levels, with the in-line
// SIMD comparisons of the original resolved lane-group-wise.
func (t *Tree[K]) LowerBound(q K) int {
	blockIdx := 0
	blockLevels := t.depth / t.dl
	lo, sz := 0, (1<<t.depth)-1
	for l := blockLevels; l >= 1; l-- {
		base := blockIdx * t.blockSlots
		// Descend dl levels inside the block (heap order), tracking the
		// in-block child index; this is the SIMD-block compare cascade.
		j := 0
		for step := 0; step < t.dl; step++ {
			half := sz / 2
			if t.blocked[base+j] < q {
				lo += half + 1
				j = 2*j + 2
			} else {
				j = 2*j + 1
			}
			sz = half
		}
		if l == 1 {
			break
		}
		child := j - (t.bf - 1) // in-block leaf rank after dl steps
		blockIdx = blockIdx + 1 + child*t.subBlocks[l-1]
	}
	return lo
}

// LookupBatch resolves queries across the tree's worker threads.
func (t *Tree[K]) LookupBatch(queries []K, values []K, found []bool) {
	w := t.threads
	if w <= 1 || len(queries) < 2048 {
		for i, q := range queries {
			values[i], found[i] = t.Lookup(q)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(queries) + w - 1) / w
	for i := 0; i < w; i++ {
		s := i * chunk
		if s >= len(queries) {
			break
		}
		e := s + chunk
		if e > len(queries) {
			e = len(queries)
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			for i := s; i < e; i++ {
				values[i], found[i] = t.Lookup(queries[i])
			}
		}(s, e)
	}
	wg.Wait()
}

// Stats describes the tree geometry for the cost model.
type Stats struct {
	NumPairs    int
	Depth       int     // conceptual BST depth (padded)
	BlockLevels int     // cache-line blocks per descent
	TreeBytes   int64   // blocked key tree footprint
	LevelBytes  []int64 // footprint of each block level, root first
}

// Stats returns the tree geometry. Each descent touches BlockLevels
// lines in the key tree plus one line in the sorted key/value arrays.
func (t *Tree[K]) Stats() Stats {
	blockLevels := t.depth / t.dl
	lb := make([]int64, blockLevels)
	at := int64(1)
	for l := 0; l < blockLevels; l++ {
		lb[l] = at * keys.LineBytes
		at *= int64(t.bf)
	}
	return Stats{
		NumPairs:    t.n,
		Depth:       t.depth,
		BlockLevels: blockLevels,
		TreeBytes:   int64(len(t.blocked)) * int64(keys.Size[K]()),
		LevelBytes:  lb,
	}
}

// PairBytes returns the sorted key+value array footprint (the rid table
// probed after the tree descent).
func (t *Tree[K]) PairBytes() int64 {
	return int64(t.n) * 2 * int64(keys.Size[K]())
}
