package fast

import (
	"sort"
	"testing"
	"testing/quick"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

func TestFASTLookupAllKeys(t *testing.T) {
	for _, n := range []int{1, 2, 7, 8, 100, 5000, 100000} {
		pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
		tr, err := Build(pairs, 2)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, p := range pairs {
			v, ok := tr.Lookup(p.Key)
			if !ok || v != p.Value {
				t.Fatalf("n=%d: Lookup(%d) = (%d,%v)", n, p.Key, v, ok)
			}
		}
	}
}

func TestFASTLowerBound(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 10000, 7)
	tr, err := Build(pairs, 1)
	if err != nil {
		t.Fatal(err)
	}
	sorted := make([]uint64, len(pairs))
	for i, p := range pairs {
		sorted[i] = p.Key
	}
	r := workload.NewRNG(3)
	for i := 0; i < 20000; i++ {
		q := r.Uint64()
		want := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= q })
		if got := tr.LowerBound(q); got != want {
			t.Fatalf("LowerBound(%d) = %d, want %d", q, got, want)
		}
	}
	// Boundaries.
	if got := tr.LowerBound(0); got != 0 {
		t.Fatalf("LowerBound(0) = %d", got)
	}
	if got := tr.LowerBound(sorted[len(sorted)-1] + 1); got != len(sorted) {
		t.Fatalf("LowerBound(max+1) = %d, want %d", got, len(sorted))
	}
}

func TestFAST32Bit(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 30000, 9)
	tr, err := Build(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Depth%4 != 0 {
		t.Fatalf("32-bit depth %d not a multiple of d_L=4", st.Depth)
	}
	for i := 0; i < len(pairs); i += 5 {
		if v, ok := tr.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
			t.Fatalf("Lookup(%d) failed", pairs[i].Key)
		}
	}
}

func TestFASTMisses(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 5000, 11)
	tr, _ := Build(pairs, 1)
	present := make(map[uint64]bool)
	for _, p := range pairs {
		present[p.Key] = true
	}
	r := workload.NewRNG(5)
	for i := 0; i < 5000; i++ {
		q := r.Uint64()
		if q == keys.Max[uint64]() || present[q] {
			continue
		}
		if _, ok := tr.Lookup(q); ok {
			t.Fatalf("found nonexistent key %d", q)
		}
	}
}

func TestFASTBatch(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 40000, 13)
	tr, _ := Build(pairs, 4)
	qs := workload.SearchInput(pairs, len(pairs), 1)
	vals := make([]uint64, len(qs))
	fnd := make([]bool, len(qs))
	tr.LookupBatch(qs, vals, fnd)
	for i, q := range qs {
		if !fnd[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("batch lookup %d wrong", i)
		}
	}
}

func TestFASTStats(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 100000, 2)
	tr, _ := Build(pairs, 1)
	st := tr.Stats()
	if st.Depth%3 != 0 {
		t.Fatalf("64-bit depth %d not a multiple of d_L=3", st.Depth)
	}
	if st.BlockLevels != st.Depth/3 {
		t.Fatalf("block levels %d", st.BlockLevels)
	}
	if len(st.LevelBytes) != st.BlockLevels {
		t.Fatalf("LevelBytes len %d", len(st.LevelBytes))
	}
	if st.LevelBytes[0] != 64 {
		t.Fatalf("root block bytes %d", st.LevelBytes[0])
	}
	if st.TreeBytes <= 0 || tr.PairBytes() != int64(2*8*len(pairs)) {
		t.Fatal("bad byte accounting")
	}
}

func TestFASTBuildErrors(t *testing.T) {
	if _, err := Build[uint64](nil, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := Build([]keys.Pair[uint64]{{Key: 2}, {Key: 1}}, 1); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := Build([]keys.Pair[uint64]{{Key: keys.Max[uint64]()}}, 1); err == nil {
		t.Fatal("sentinel accepted")
	}
}

// TestFASTQuick property-tests LowerBound against sort.Search.
func TestFASTQuick(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n)%3000 + 1
		pairs := workload.Dataset[uint64](workload.Uniform, size, seed)
		tr, err := Build(pairs, 1)
		if err != nil {
			return false
		}
		sorted := make([]uint64, size)
		for i, p := range pairs {
			sorted[i] = p.Key
		}
		r := workload.NewRNG(seed + 1)
		for i := 0; i < 100; i++ {
			q := r.Uint64()
			want := sort.Search(size, func(i int) bool { return sorted[i] >= q })
			if tr.LowerBound(q) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
