package fault

import (
	"errors"
	"testing"
)

// TestDeterminism: equal seeds produce identical fault sequences;
// different seeds diverge.
func TestDeterminism(t *testing.T) {
	opt := Options{Seed: 7, Kernel: 0.3, H2D: 0.1, D2H: 0.1, OOM: 0.05}
	a, b := New(opt), New(opt)
	same := 0
	for i := 0; i < 4096; i++ {
		op := Op(i % int(numOps))
		ea, eb := a.Check(op), b.Check(op)
		if !errors.Is(ea, eb) && !errors.Is(eb, ea) {
			t.Fatalf("check %d: seeds diverge: %v vs %v", i, ea, eb)
		}
		if ea != nil {
			same++
		}
	}
	if same == 0 {
		t.Fatal("no faults injected at 30%/10% rates over 4096 checks")
	}
	optB := opt
	optB.Seed = 8
	c := New(optB)
	diverged := false
	for i := 0; i < 4096; i++ {
		op := Op(i % int(numOps))
		if (a.Check(op) == nil) != (c.Check(op) == nil) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestTypedErrors: every injected error classifies as a fault and maps
// to its op's kind.
func TestTypedErrors(t *testing.T) {
	in := New(Options{Seed: 1, Kernel: 1, H2D: 1, D2H: 1, OOM: 1})
	cases := []struct {
		op   Op
		want error
	}{
		{OpKernel, ErrKernel},
		{OpH2D, ErrH2D},
		{OpD2H, ErrD2H},
		{OpMalloc, ErrOOM},
	}
	for _, c := range cases {
		err := in.Check(c.op)
		if !errors.Is(err, c.want) {
			t.Fatalf("%v: got %v, want %v", c.op, err, c.want)
		}
		if !Is(err) {
			t.Fatalf("%v: %v does not classify as a fault", c.op, err)
		}
	}
	if Is(errors.New("capacity exceeded")) {
		t.Fatal("a structural error classified as an injected fault")
	}
	if !Is(ErrReplicaStale) {
		t.Fatal("ErrReplicaStale must classify as a fault (CPU fallback is the cure)")
	}
}

// TestScriptedOutcomes: scripts override probabilities and drain in
// order.
func TestScriptedOutcomes(t *testing.T) {
	in := New(Options{Seed: 1}) // zero rates: only scripts fire
	in.ScriptNext(OpKernel, ErrKernel, nil, ErrReset)
	if err := in.Check(OpKernel); !errors.Is(err, ErrKernel) {
		t.Fatalf("scripted #1 = %v", err)
	}
	if err := in.Check(OpKernel); err != nil {
		t.Fatalf("scripted #2 = %v, want success", err)
	}
	if err := in.Check(OpKernel); !errors.Is(err, ErrReset) {
		t.Fatalf("scripted #3 = %v", err)
	}
	if err := in.Check(OpKernel); err != nil {
		t.Fatalf("after script drained: %v, want success (zero rates)", err)
	}
	if n := in.ScriptLen(OpKernel); n != 0 {
		t.Fatalf("ScriptLen = %d after drain", n)
	}
}

// TestResetBurst: one reset draw fails the next ResetOps checks across
// all op classes.
func TestResetBurst(t *testing.T) {
	in := New(Options{Seed: 3, Reset: 1, ResetOps: 4})
	for i := 0; i < 4; i++ {
		op := Op(i % int(numOps))
		if err := in.Check(op); !errors.Is(err, ErrReset) {
			t.Fatalf("burst check %d (%v) = %v, want ErrReset", i, op, err)
		}
	}
	c := in.Counters()
	if c.Bursts < 1 || c.Reset < 4 {
		t.Fatalf("counters = %+v, want >=1 burst and >=4 resets", c)
	}
}

// TestParse round-trips a full spec and rejects malformed ones.
func TestParse(t *testing.T) {
	opt, err := Parse("kernel=0.1, h2d=0.02,d2h=0.03,oom=0.004,corrupt=0.5,reset=0.001,resetops=16,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if opt.Kernel != 0.1 || opt.H2D != 0.02 || opt.D2H != 0.03 || opt.OOM != 0.004 ||
		opt.Corrupt != 0.5 || opt.Reset != 0.001 || opt.ResetOps != 16 || opt.Seed != 9 {
		t.Fatalf("parsed %+v", opt)
	}
	if opt, err := Parse(""); err != nil || opt != (Options{}) {
		t.Fatalf("empty spec: %+v, %v", opt, err)
	}
	for _, bad := range []string{"kernel", "kernel=2", "bogus=0.1", "seed=x", "resetops=-1"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// TestCounters: checks and injections are tallied.
func TestCounters(t *testing.T) {
	in := New(Options{Seed: 1, Kernel: 1})
	for i := 0; i < 10; i++ {
		in.Check(OpKernel)
	}
	c := in.Counters()
	if c.Checks != 10 || c.Injected != 10 || c.Kernel != 10 {
		t.Fatalf("counters = %+v", c)
	}
}
