// Package fault is the deterministic fault-injection harness for the
// simulated GPU. The paper's premise is that the upper tree is
// searchable on either device; a production deployment of that idea
// must therefore keep serving when the GPU path misbehaves. This
// package supplies the misbehaviour: a seedable Injector that
// gpusim.Device consults before every kernel launch, host<->device
// transfer and device allocation, returning typed errors — kernel
// launch failures, transfer timeouts, corrupted payloads, device OOM,
// reset bursts — instead of the simulator's usual silent success.
//
// Injection is either probability-driven (per-operation rates from a
// seeded PRNG, reproducible across runs) or schedule-driven
// (ScriptNext queues exact outcomes per operation class, the mode the
// breaker state-machine tests use). The whole error taxonomy wraps
// ErrFault, so callers classify with fault.Is and never confuse an
// injected device fault with a structural error such as a capacity
// overflow.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"
	"sync"
)

// ErrFault is the sentinel every injected (or fault-derived) device
// error wraps: errors.Is(err, ErrFault) — or the fault.Is shorthand —
// identifies "the GPU path failed and a CPU fallback is legitimate",
// as opposed to a structural error the caller must surface.
var ErrFault = errors.New("device fault")

// The typed fault taxonomy. Each error wraps ErrFault.
var (
	// ErrKernel is a failed kernel launch (the CUDA "unspecified launch
	// failure" class): no results were produced.
	ErrKernel = fmt.Errorf("kernel launch failed: %w", ErrFault)
	// ErrH2D is a host-to-device transfer that timed out; no bytes
	// reached the device.
	ErrH2D = fmt.Errorf("host-to-device transfer timed out: %w", ErrFault)
	// ErrD2H is a device-to-host transfer that timed out; no bytes
	// reached the host.
	ErrD2H = fmt.Errorf("device-to-host transfer timed out: %w", ErrFault)
	// ErrCorrupt is a transfer whose payload failed verification; the
	// simulator drops the payload rather than deliver corrupt data, so
	// the effect on the caller is a failed transfer.
	ErrCorrupt = fmt.Errorf("transfer payload corrupted (dropped): %w", ErrFault)
	// ErrOOM is an injected allocation failure, distinct from the
	// simulator's genuine capacity check.
	ErrOOM = fmt.Errorf("device allocation failed: %w", ErrFault)
	// ErrReset is a device reset in progress: every operation fails for
	// the duration of the burst.
	ErrReset = fmt.Errorf("device reset in progress: %w", ErrFault)
	// ErrReplicaStale marks a tree whose device-resident I-segment
	// replica could not be re-synchronised after a faulted update: GPU
	// lookups would read stale nodes, so the search path refuses them
	// until a re-mirror succeeds. It wraps ErrFault because the correct
	// reaction is the same — serve from the CPU.
	ErrReplicaStale = fmt.Errorf("device replica stale after faulted synchronisation: %w", ErrFault)
)

// Is reports whether err is (or wraps) an injected device fault.
func Is(err error) bool { return errors.Is(err, ErrFault) }

// Op is an injection point class.
type Op int

// The injection points gpusim.Device consults.
const (
	OpKernel Op = iota // kernel launch
	OpH2D              // host-to-device transfer
	OpD2H              // device-to-host transfer
	OpMalloc           // device allocation
	numOps
)

// String names the injection point.
func (o Op) String() string {
	switch o {
	case OpKernel:
		return "kernel"
	case OpH2D:
		return "h2d"
	case OpD2H:
		return "d2h"
	case OpMalloc:
		return "oom"
	}
	return "unknown"
}

// Options configures an Injector. All probabilities are per-check in
// [0, 1]; the zero value injects nothing.
type Options struct {
	Seed uint64 // PRNG seed; equal seeds give equal fault sequences

	Kernel float64 // kernel launch failure rate
	H2D    float64 // host-to-device timeout rate
	D2H    float64 // device-to-host timeout rate
	OOM    float64 // injected allocation failure rate

	// Corrupt is the fraction of injected transfer faults reported as
	// payload corruption (ErrCorrupt) rather than a timeout.
	Corrupt float64

	// Reset is the per-check probability of starting a device reset
	// burst: the triggering check and the next ResetOps-1 checks all
	// fail with ErrReset, whatever their class — the sustained outage
	// that trips a circuit breaker open.
	Reset    float64
	ResetOps int // burst length; 0 selects DefaultResetOps
}

// DefaultResetOps is the reset burst length when Options.ResetOps is 0.
const DefaultResetOps = 32

// Counters is a snapshot of an Injector's bookkeeping.
type Counters struct {
	Checks   int64 // injection points consulted
	Injected int64 // faults injected (all kinds)

	Kernel, H2D, D2H, OOM, Corrupt, Reset int64 // per-kind injections
	Bursts                                int64 // reset bursts started
}

// Injector decides, per device operation, whether to inject a fault.
// It is safe for concurrent use; determinism holds for a fixed seed
// and a fixed sequence of checks (single-threaded drivers reproduce
// exactly; concurrent drivers reproduce statistically).
type Injector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	opt       Options
	resetLeft int
	scripts   [numOps][]error
	c         Counters
}

// New builds an injector from opt.
func New(opt Options) *Injector {
	if opt.ResetOps <= 0 {
		opt.ResetOps = DefaultResetOps
	}
	return &Injector{
		rng: rand.New(rand.NewPCG(opt.Seed, opt.Seed^0x9e3779b97f4a7c15)),
		opt: opt,
	}
}

// Options returns the injector's configuration.
func (in *Injector) Options() Options {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.opt
}

// ScriptNext queues exact outcomes for op: each subsequent Check(op)
// pops one queued outcome (nil means "succeed") before any
// probability-driven decision applies. Scripts make breaker
// state-machine tests deterministic without touching probabilities.
func (in *Injector) ScriptNext(op Op, outcomes ...error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.scripts[op] = append(in.scripts[op], outcomes...)
}

// ScriptLen returns how many scripted outcomes remain queued for op.
func (in *Injector) ScriptLen(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.scripts[op])
}

// Check is the injection point: it returns nil for success or a typed
// fault for the device to surface. The decision order is scripted
// outcome, then an in-progress reset burst, then a fresh reset draw,
// then the op's own probability.
func (in *Injector) Check(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.c.Checks++

	if q := in.scripts[op]; len(q) > 0 {
		err := q[0]
		in.scripts[op] = q[1:]
		in.record(err)
		return err
	}
	if in.resetLeft > 0 {
		in.resetLeft--
		in.record(ErrReset)
		return ErrReset
	}
	if in.opt.Reset > 0 && in.rng.Float64() < in.opt.Reset {
		in.resetLeft = in.opt.ResetOps - 1
		in.c.Bursts++
		in.record(ErrReset)
		return ErrReset
	}
	var p float64
	switch op {
	case OpKernel:
		p = in.opt.Kernel
	case OpH2D:
		p = in.opt.H2D
	case OpD2H:
		p = in.opt.D2H
	case OpMalloc:
		p = in.opt.OOM
	}
	if p <= 0 || in.rng.Float64() >= p {
		return nil
	}
	var err error
	switch op {
	case OpKernel:
		err = ErrKernel
	case OpH2D, OpD2H:
		err = ErrH2D
		if op == OpD2H {
			err = ErrD2H
		}
		if in.opt.Corrupt > 0 && in.rng.Float64() < in.opt.Corrupt {
			err = ErrCorrupt
		}
	case OpMalloc:
		err = ErrOOM
	}
	in.record(err)
	return err
}

// record tallies one injected outcome; callers hold mu.
func (in *Injector) record(err error) {
	if err == nil {
		return
	}
	in.c.Injected++
	switch {
	case errors.Is(err, ErrKernel):
		in.c.Kernel++
	case errors.Is(err, ErrCorrupt):
		in.c.Corrupt++
	case errors.Is(err, ErrH2D):
		in.c.H2D++
	case errors.Is(err, ErrD2H):
		in.c.D2H++
	case errors.Is(err, ErrOOM):
		in.c.OOM++
	case errors.Is(err, ErrReset):
		in.c.Reset++
	}
}

// Counters returns the current bookkeeping snapshot.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.c
}

// Parse builds Options from a comma-separated spec such as
// "kernel=0.1,h2d=0.01,d2h=0.01,oom=0.001,corrupt=0.5,reset=0.0001,resetops=32,seed=7".
// Unknown keys and malformed values are errors; an empty spec is the
// zero Options.
func Parse(spec string) (Options, error) {
	var opt Options
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return opt, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return opt, fmt.Errorf("fault: bad spec element %q (want key=value)", part)
		}
		k = strings.ToLower(strings.TrimSpace(k))
		v = strings.TrimSpace(v)
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return opt, fmt.Errorf("fault: bad seed %q", v)
			}
			opt.Seed = n
		case "resetops":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return opt, fmt.Errorf("fault: bad resetops %q", v)
			}
			opt.ResetOps = n
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return opt, fmt.Errorf("fault: bad rate %s=%q (want [0,1])", k, v)
			}
			switch k {
			case "kernel":
				opt.Kernel = f
			case "h2d":
				opt.H2D = f
			case "d2h":
				opt.D2H = f
			case "oom":
				opt.OOM = f
			case "corrupt":
				opt.Corrupt = f
			case "reset":
				opt.Reset = f
			default:
				return opt, fmt.Errorf("fault: unknown spec key %q", k)
			}
		}
	}
	return opt, nil
}

// EnvVar is the environment variable FromEnv reads — the switch the CI
// fault-injection lane flips to run the whole test suite against a
// faulty device.
const EnvVar = "HBTREE_FAULT"

var (
	envOnce sync.Once
	envInj  *Injector
)

// FromEnv returns the process-wide injector configured by the
// HBTREE_FAULT environment variable ("kernel=0.1,seed=7", see Parse),
// or nil when the variable is unset or empty. The injector is built
// once and shared, so every device in the process sees one fault
// stream. A malformed spec is reported once on stderr and ignored —
// a broken CI matrix entry must not silently disable the suite.
func FromEnv() *Injector {
	envOnce.Do(func() {
		spec := os.Getenv(EnvVar)
		if spec == "" {
			return
		}
		opt, err := Parse(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring %s=%q: %v\n", EnvVar, spec, err)
			return
		}
		envInj = New(opt)
	})
	return envInj
}
