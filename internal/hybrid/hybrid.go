// Package hybrid is the paper's second future-work direction
// (Section 7): "a general framework which enables the use of a CPU-GPU
// hybrid platform for any arbitrary leaf-stored tree structure, such
// that using the node structure and search/update function as input, the
// framework would determine the parameters for an approach that best
// utilizes the resources of both CPU and GPU".
//
// Any index satisfying Index — an inner directory laid out as a
// breadth-first implicit array plus a leaf-completion function — plugs
// into Engine, which mirrors the directory into simulated GPU memory and
// runs the HB+-tree's double-buffered bucket pipeline over it: H2D copy,
// warp-parallel directory traversal on the GPU, D2H copy of leaf
// references, CPU leaf completion. The engine derives the cost-model
// parameters (bucket bound, CPU stage time) from the index's own
// geometry, the "determine the parameters" part of the future work.
//
// Two adapters ship with the framework: the HB+-tree's implicit B+-tree
// and the CSS-tree of Rao & Ross — a structure the original system never
// supported, searched hybrid here without modification.
package hybrid

import (
	"fmt"
	"sync/atomic"

	"hbtree/internal/breaker"
	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/model"
	"hbtree/internal/platform"
	"hbtree/internal/simd"
	"hbtree/internal/vclock"
)

// Index is the contract a leaf-stored tree must satisfy to be searched
// by the hybrid engine.
type Index[K keys.Key] interface {
	// DeviceImage returns the inner directory to mirror into GPU
	// memory: a breadth-first implicit array of fixed-width nodes
	// (kpn key slots each, one cache line), per-level node offsets
	// (root first), the fanout, and the number of leaf units the bottom
	// level addresses. Trailing node slots must hold the MAX sentinel
	// so the warp-parallel node search always lands on a valid child —
	// the same constraint that made the paper cap the HB+ fanout at the
	// warp width (Section 5.2); fanout must therefore not exceed kpn.
	DeviceImage() (image []K, levelOff []int, kpn, fanout, numLeaves int)

	// SearchLeaf completes a lookup within leaf unit ref.
	SearchLeaf(ref int32, q K) (K, bool)

	// LeafBytes is the L-segment footprint, input to the CPU-stage cost
	// model.
	LeafBytes() int64

	// LeafSearches is the number of in-node searches the leaf
	// completion performs per query.
	LeafSearches() float64
}

// LayoutIndex is an optional extension of Index for directories with
// per-level node geometry: an index whose root-side levels use wide
// multi-line nodes implements it to describe each level (slot offset,
// key slots, fanout, lines per node, root first). The engine then builds
// a per-level device descriptor instead of assuming the uniform scalar
// geometry; indexes that only ever emit uniform directories need not
// implement it.
type LayoutIndex[K keys.Key] interface {
	Index[K]
	LevelLayout() []gpusim.LevelGeom
}

// Options configures an engine.
type Options struct {
	Machine    platform.Machine
	BucketSize int
	NodeSearch simd.Algorithm
	Threads    int
}

func (o *Options) fill() {
	if o.Machine.Name == "" {
		o.Machine = platform.M1()
	}
	if o.BucketSize <= 0 {
		o.BucketSize = 16 * 1024
	}
	if o.Threads <= 0 {
		o.Threads = o.Machine.CPU.Threads
	}
}

// Stats reports one batch's simulated performance.
type Stats struct {
	Queries       int
	Buckets       int
	SimTime       vclock.Duration
	ThroughputQPS float64
	AvgLatency    vclock.Duration

	// Fallback marks a batch answered entirely on the host because the
	// engine's circuit breaker was open or the GPU-sim faulted mid-batch.
	Fallback bool
}

// Engine runs hybrid CPU-GPU lookups over any Index.
type Engine[K keys.Key] struct {
	idx  Index[K]
	opt  Options
	dev  *gpusim.Device
	iseg *gpusim.Buffer[K]
	desc gpusim.ImplicitDesc

	// image is the host copy of the device-resident directory, retained
	// so lookups can complete without the device when the breaker over
	// injected GPU faults is open — the framework's degraded mode.
	image []K
	// geom is the materialised per-level layout table (uniform when the
	// index does not implement LayoutIndex), shared by the host walk and
	// the profile so they stay in lockstep with the device kernel.
	geom []gpusim.LevelGeom
	brk  *breaker.Breaker

	gpuFaults atomic.Int64
	fallbacks atomic.Int64
}

// NewEngine validates the index geometry, mirrors its directory into
// device memory, and returns a ready engine.
func NewEngine[K keys.Key](idx Index[K], opt Options) (*Engine[K], error) {
	opt.fill()
	image, levelOff, kpn, fanout, numLeaves := idx.DeviceImage()
	if kpn != keys.PerLine[K]() {
		return nil, fmt.Errorf("hybrid: node width %d does not fill a cache line (%d slots)", kpn, keys.PerLine[K]())
	}
	if fanout < 2 || fanout > kpn {
		return nil, fmt.Errorf("hybrid: fanout %d outside [2, %d]; the warp-parallel node search requires fanout <= warp team size (Section 5.2)", fanout, kpn)
	}
	if len(image)%kpn != 0 || len(levelOff) == 0 {
		return nil, fmt.Errorf("hybrid: malformed directory image")
	}
	e := &Engine[K]{idx: idx, opt: opt, dev: gpusim.New(opt.Machine.GPU),
		image: image, brk: breaker.New(breaker.Options{})}
	buf, err := gpusim.Malloc[K](e.dev, len(image))
	if err != nil {
		return nil, fmt.Errorf("hybrid: directory does not fit in GPU memory: %w", err)
	}
	if _, err := buf.CopyFromHost(image); err != nil {
		buf.Free()
		return nil, err
	}
	e.iseg = buf
	off32 := make([]int32, len(levelOff))
	for i, o := range levelOff {
		off32[i] = int32(o)
	}
	e.desc = gpusim.ImplicitDesc{
		LevelOff:  off32,
		Kpn:       kpn,
		Fanout:    fanout,
		Height:    len(levelOff),
		NumLeaves: numLeaves,
	}
	if li, ok := idx.(LayoutIndex[K]); ok {
		levels := li.LevelLayout()
		if len(levels) != e.desc.Height {
			return nil, fmt.Errorf("hybrid: layout table has %d levels, directory has %d", len(levels), e.desc.Height)
		}
		for l, g := range levels {
			if g.Kpn < int32(kpn) || int(g.Kpn)%kpn != 0 || g.Kpn > gpusim.MaxNodeWidth {
				return nil, fmt.Errorf("hybrid: level %d width %d is not a line multiple within [%d, %d]", l, g.Kpn, kpn, gpusim.MaxNodeWidth)
			}
			if g.Fanout < 2 || g.Fanout > g.Kpn+1 {
				return nil, fmt.Errorf("hybrid: level %d fanout %d outside [2, %d]", l, g.Fanout, g.Kpn+1)
			}
		}
		e.desc.Levels = levels
	}
	e.geom = e.desc.Geom()
	return e, nil
}

// Close releases the device-resident directory.
func (e *Engine[K]) Close() {
	if e.iseg != nil {
		e.iseg.Free()
	}
}

// Device exposes the engine's simulated GPU.
func (e *Engine[K]) Device() *gpusim.Device { return e.dev }

// Breaker exposes the engine's circuit breaker over GPU-sim faults.
func (e *Engine[K]) Breaker() *breaker.Breaker { return e.brk }

// GPUFaults reports how many batches hit an injected device fault.
func (e *Engine[K]) GPUFaults() int64 { return e.gpuFaults.Load() }

// Fallbacks reports how many batches were answered host-only.
func (e *Engine[K]) Fallbacks() int64 { return e.fallbacks.Load() }

// cpuStage models the CPU leaf-completion time for one bucket, from the
// index's own geometry (the parameter derivation of the future work).
func (e *Engine[K]) cpuStage(n int) vclock.Duration {
	cpu := e.opt.Machine.CPU
	p := model.ProfileLevels([]int64{e.idx.LeafBytes()}, []float64{1}, cpu.LLCBytes)
	mem := (vclock.Duration(p.Miss)*cpu.LatMem + vclock.Duration(p.Hit)*cpu.LatLLC) / 2
	pq := cpu.CostHybridSched +
		vclock.Duration(e.idx.LeafSearches()*float64(model.AlgoCost(cpu, e.opt.NodeSearch))) + mem
	return model.BatchDuration(cpu, n, pq, p.MissBytes(), e.opt.Threads)
}

// LookupBatch resolves the queries with the double-buffered hybrid
// pipeline, functionally traversing the device-resident directory and
// completing lookups through the index's leaf function. When the
// device faults (an attached injector) the batch degrades to the
// host-only directory walk; repeated faults trip the engine's breaker
// and subsequent batches skip the device entirely until a half-open
// probe succeeds.
func (e *Engine[K]) LookupBatch(queries []K) (values []K, found []bool, stats Stats, err error) {
	n := len(queries)
	values = make([]K, n)
	found = make([]bool, n)
	stats.Queries = n
	if n == 0 {
		return values, found, stats, nil
	}
	if !e.brk.Allow() {
		e.lookupBatchHost(queries, values, found, &stats)
		return values, found, stats, nil
	}
	stats, err = e.lookupBatchGPU(queries, values, found)
	if err != nil {
		if !fault.Is(err) {
			return nil, nil, stats, err
		}
		e.brk.Failure()
		e.gpuFaults.Add(1)
		e.lookupBatchHost(queries, values, found, &stats)
		return values, found, stats, nil
	}
	e.brk.Success()
	return values, found, stats, nil
}

// lookupBatchGPU is the device pipeline; on an injected fault it
// returns the typed error with the result slices in an undefined
// partial state (the caller re-answers them host-side).
func (e *Engine[K]) lookupBatchGPU(queries []K, values []K, found []bool) (stats Stats, err error) {
	n := len(queries)
	stats.Queries = n
	m := e.opt.BucketSize
	qbuf, err := gpusim.Malloc[K](e.dev, m)
	if err != nil {
		return stats, fmt.Errorf("hybrid: query buffer: %w", err)
	}
	defer qbuf.Free()
	rbuf, err := gpusim.Malloc[int32](e.dev, m)
	if err != nil {
		return stats, fmt.Errorf("hybrid: result buffer: %w", err)
	}
	defer rbuf.Free()

	tl := vclock.NewTimeline()
	d2hEnd := make(map[int]vclock.Duration)
	var sumLat vclock.Duration
	buckets := 0
	sz := int64(keys.Size[K]())
	for start := 0; start < n; start += m {
		end := start + m
		if end > n {
			end = n
		}
		bq := queries[start:end]
		bn := len(bq)
		stream := buckets
		if prev, ok := d2hEnd[buckets-2]; ok { // double buffering
			tl.AdvanceStream(stream, prev)
		}
		d1, cErr := qbuf.CopyFromHost(bq)
		if cErr != nil {
			return stats, cErr
		}
		h2dStart, _ := tl.Schedule(stream, vclock.ResPCIeH2D, "H2D", d1)

		if _, kErr := gpusim.ImplicitSearchKernel(e.dev, e.iseg.Data(), e.desc, qbuf.Data()[:bn], rbuf.Data()[:bn], 0, nil); kErr != nil {
			return stats, kErr
		}
		d2 := e.dev.KernelDuration(bn, float64(e.desc.TransPerQuery(0)), 1, e.desc.Kpn, 1)
		tl.Schedule(stream, vclock.ResGPU, "kernel", d2)

		d3 := e.dev.CopyDuration(int64(bn) * 4)
		_, dEnd := tl.Schedule(stream, vclock.ResPCIeD2H, "D2H", d3)
		d2hEnd[buckets] = dEnd

		refs := make([]int32, bn)
		if _, err := rbuf.CopyToHost(refs); err != nil {
			return stats, err
		}
		for i := 0; i < bn; i++ {
			values[start+i], found[start+i] = e.idx.SearchLeaf(refs[i], bq[i])
		}
		d4 := e.cpuStage(bn)
		_, cEnd := tl.Schedule(stream, vclock.ResCPU, "leaf", d4)
		sumLat += cEnd - h2dStart
		buckets++
	}
	_ = sz
	stats.Buckets = buckets
	stats.SimTime = tl.Now()
	stats.AvgLatency = sumLat / vclock.Duration(buckets)
	if stats.SimTime > 0 {
		stats.ThroughputQPS = float64(n) / stats.SimTime.Seconds()
	}
	return stats, nil
}

// lookupBatchHost answers the batch without the device: the CPU walks
// the retained directory image level by level, then completes each
// lookup through the index's leaf function. The cost model charges one
// node search per level with the directory's own cache-residency
// profile, plus the usual leaf stage.
func (e *Engine[K]) lookupBatchHost(queries []K, values []K, found []bool, stats *Stats) {
	n := len(queries)
	for i, q := range queries {
		values[i], found[i] = e.idx.SearchLeaf(e.searchInnerHost(q), q)
	}
	cpu := e.opt.Machine.CPU
	levelBytes, accesses := e.directoryProfile()
	p := model.ProfileLevels(levelBytes, accesses, cpu.LLCBytes)
	mem := (vclock.Duration(p.Miss)*cpu.LatMem + vclock.Duration(p.Hit)*cpu.LatLLC) / 2
	pq := vclock.Duration(float64(e.desc.Height)*float64(model.AlgoCost(cpu, e.opt.NodeSearch))) + mem
	inner := model.BatchDuration(cpu, n, pq, p.MissBytes(), e.opt.Threads)
	stats.Buckets = 1
	stats.SimTime = inner + e.cpuStage(n)
	stats.AvgLatency = stats.SimTime
	if stats.SimTime > 0 {
		stats.ThroughputQPS = float64(n) / stats.SimTime.Seconds()
	}
	stats.Fallback = true
	e.fallbacks.Add(1)
}

// directoryProfile returns the byte footprint of each directory level
// (root first) and its line touches per query, for the host-walk cost
// model; a wide tuned level costs every line of its node per probe.
func (e *Engine[K]) directoryProfile() ([]int64, []float64) {
	sz := int64(keys.Size[K]())
	bytes := make([]int64, e.desc.Height)
	accesses := make([]float64, e.desc.Height)
	for lvl := 0; lvl < e.desc.Height; lvl++ {
		g := e.geom[lvl]
		endSlot := len(e.image)
		if lvl+1 < len(e.geom) {
			endSlot = int(e.geom[lvl+1].Off)
		}
		bytes[lvl] = int64(endSlot-int(g.Off)) * sz
		accesses[lvl] = float64(g.Lines)
	}
	return bytes, accesses
}

// searchInnerHost walks the directory image on the host, mirroring the
// device kernel's traversal exactly (same flags-and-predecessor result
// for every node line), so fallback answers match GPU answers.
func (e *Engine[K]) searchInnerHost(q K) int32 {
	idx := int32(0)
	for lvl := 0; lvl < e.desc.Height; lvl++ {
		g := e.geom[lvl]
		off := int(g.Off) + int(idx)*int(g.Kpn)
		node := e.image[off : off+int(g.Kpn)]
		res := len(node) - 1
		for j, k := range node {
			if q <= k {
				res = j
				break
			}
		}
		idx = idx*g.Fanout + int32(res)
	}
	if int(idx) >= e.desc.NumLeaves {
		idx = int32(e.desc.NumLeaves - 1)
	}
	return idx
}
