package hybrid

import (
	"math"

	"hbtree/internal/cpubtree"
	"hbtree/internal/csstree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
)

// BPlus adapts the HB+-layout implicit B+-tree (fanout = warp width) to
// the generic engine; searching it through the framework is equivalent
// to the tuned implementation in internal/core.
type BPlus[K keys.Key] struct {
	t *cpubtree.ImplicitTree[K]
}

// WrapBPlus wraps an implicit B+-tree. The tree must have been built
// with the GPU-safe fanout (keys-per-line, i.e. cpubtree.Config{Fanout:
// 8} for 64-bit keys); NewEngine rejects wider fanouts.
func WrapBPlus[K keys.Key](t *cpubtree.ImplicitTree[K]) *BPlus[K] {
	return &BPlus[K]{t: t}
}

// DeviceImage implements Index.
func (b *BPlus[K]) DeviceImage() (image []K, levelOff []int, kpn, fanout, numLeaves int) {
	inner, off, kpn, fanout := b.t.InnerArray()
	return inner, off, kpn, fanout, b.t.NumLeafLines()
}

// LevelLayout implements LayoutIndex: trees built with tuned RootWidths
// hand the engine their per-level geometry so the device descriptor
// addresses the wide root levels correctly.
func (b *BPlus[K]) LevelLayout() []gpusim.LevelGeom {
	geom := b.t.LevelGeometry()
	kpn := keys.PerLine[K]()
	levels := make([]gpusim.LevelGeom, len(geom))
	for i, g := range geom {
		levels[i] = gpusim.LevelGeom{
			Off:    int32(g.Slot),
			Kpn:    int32(g.Kpn),
			Fanout: int32(g.Fanout),
			Lines:  int32(g.Kpn / kpn),
		}
	}
	return levels
}

// SearchLeaf implements Index.
func (b *BPlus[K]) SearchLeaf(ref int32, q K) (K, bool) {
	return b.t.SearchLeafLine(int(ref), q)
}

// LeafBytes implements Index.
func (b *BPlus[K]) LeafBytes() int64 { return b.t.Stats().LeafBytes }

// LeafSearches implements Index: one leaf-line search per query.
func (b *BPlus[K]) LeafSearches() float64 { return 1 }

// CSS adapts the Rao & Ross Cache Sensitive Search Tree — a structure
// the original HB+-tree system never supported — to the hybrid engine,
// demonstrating the framework generality the paper lists as future work.
type CSS[K keys.Key] struct {
	t *csstree.Tree[K]
}

// WrapCSS wraps a CSS-tree.
func WrapCSS[K keys.Key](t *csstree.Tree[K]) *CSS[K] { return &CSS[K]{t: t} }

// DeviceImage implements Index: the CSS directory is the I-segment.
func (c *CSS[K]) DeviceImage() (image []K, levelOff []int, kpn, fanout, numLeaves int) {
	dir, off, kpn, fanout, _ := c.t.Directory()
	return dir, off, kpn, fanout, c.t.NumBlocks()
}

// SearchLeaf implements Index: binary search within the leaf block.
func (c *CSS[K]) SearchLeaf(ref int32, q K) (K, bool) {
	return c.t.SearchBlock(int(ref), q)
}

// LeafBytes implements Index.
func (c *CSS[K]) LeafBytes() int64 { return c.t.Stats().LeafBytes }

// LeafSearches implements Index: a binary search over the leaf block
// costs about one node search per cache line it spans.
func (c *CSS[K]) LeafSearches() float64 {
	lb := c.t.Stats().LeafBlock
	lines := float64(lb) * 2 * float64(keys.Size[K]()) / keys.LineBytes
	if lines < 1 {
		return 1
	}
	return math.Ceil(math.Log2(lines + 1))
}
