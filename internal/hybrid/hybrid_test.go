package hybrid

import (
	"strings"
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/csstree"
	"hbtree/internal/keys"
	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

func checkEngine[K keys.Key](t *testing.T, idx Index[K], pairs []keys.Pair[K]) Stats {
	t.Helper()
	e, err := NewEngine(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	qs := workload.SearchInput(pairs, 40000, 7)
	vals, found, stats, err := e.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !found[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("query %d of key %v returned (%v,%v)", i, q, vals[i], found[i])
		}
	}
	if stats.ThroughputQPS <= 0 || stats.Buckets == 0 {
		t.Fatalf("bad stats %+v", stats)
	}
	return stats
}

func TestEngineWithBPlus(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 60000, 42)
	tr, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkEngine[uint64](t, WrapBPlus(tr), pairs)
}

func TestEngineWithCSS(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 60000, 42)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkEngine[uint64](t, WrapCSS(tr), pairs)
}

func TestEngineWithCSS32(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 40000, 5)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkEngine[uint32](t, WrapCSS(tr), pairs)
}

func TestEngineMisses(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 20000, 3)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine[uint64](WrapCSS(tr), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	present := make(map[uint64]bool)
	for _, p := range pairs {
		present[p.Key] = true
	}
	r := workload.NewRNG(11)
	qs := make([]uint64, 10000)
	for i := range qs {
		qs[i] = r.Uint64()
		if qs[i] == keys.Max[uint64]() {
			qs[i]--
		}
	}
	_, found, _, err := e.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if found[i] != present[q] {
			t.Fatalf("query %d: found=%v want %v", i, found[i], present[q])
		}
	}
}

func TestEngineRejectsWideFanout(t *testing.T) {
	// The CPU-optimized implicit tree (fanout 9) exceeds the warp team
	// width and must be rejected, mirroring the paper's Section 5.2
	// design constraint.
	pairs := workload.Dataset[uint64](workload.Uniform, 5000, 1)
	tr, err := cpubtree.BuildImplicit(pairs, cpubtree.Config{}) // default fanout 9
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEngine[uint64](WrapBPlus(tr), Options{})
	if err == nil || !strings.Contains(err.Error(), "fanout") {
		t.Fatalf("wide fanout accepted: %v", err)
	}
}

func TestEngineDeviceOOM(t *testing.T) {
	m := platform.M1()
	m.GPU.MemBytes = 1 << 10
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 2)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine[uint64](WrapCSS(tr), Options{Machine: m}); err == nil {
		t.Fatal("directory fit in 1 KiB of device memory")
	}
}

func TestEngineReadsReplica(t *testing.T) {
	// Corrupting the host directory after engine construction must not
	// affect results: the kernel reads the device replica.
	pairs := workload.Dataset[uint64](workload.Uniform, 30000, 9)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine[uint64](WrapCSS(tr), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	dir, _, _, _, _ := tr.Directory()
	saved := append([]uint64(nil), dir...)
	for i := range dir {
		dir[i] = 0xBAD
	}
	qs := workload.SearchInput(pairs, 16384, 4)
	vals, found, _, err := e.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !found[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("replica not used: query %d failed", i)
		}
	}
	copy(dir, saved)
}

func TestEngineEmptyBatch(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1000, 6)
	tr, _ := csstree.Build(pairs, 0)
	e, err := NewEngine[uint64](WrapCSS(tr), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	vals, found, stats, err := e.LookupBatch(nil)
	if err != nil || len(vals) != 0 || len(found) != 0 || stats.Queries != 0 {
		t.Fatal("empty batch mishandled")
	}
}
