package hybrid

import (
	"testing"

	"hbtree/internal/csstree"
	"hbtree/internal/fault"
	"hbtree/internal/workload"
)

// TestEngineFallbackOnForcedOpenBreaker: with the breaker forced open
// the engine must answer every query correctly from the host-resident
// directory image without launching a single kernel.
func TestEngineFallbackOnForcedOpenBreaker(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 20000, 42)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine[uint64](WrapCSS(tr), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Breaker().ForceOpen(true)

	kBefore := e.Device().Counters().Kernels
	qs := workload.SearchInput(pairs, 4000, 7)
	vals, found, stats, err := e.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !found[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("fallback query %d of key %d returned (%d,%v)", i, q, vals[i], found[i])
		}
	}
	if !stats.Fallback {
		t.Fatal("stats.Fallback not set on a forced-open batch")
	}
	if stats.SimTime <= 0 || stats.ThroughputQPS <= 0 {
		t.Fatalf("fallback batch has no modelled cost: %+v", stats)
	}
	if got := e.Device().Counters().Kernels; got != kBefore {
		t.Fatalf("forced-open batch launched kernels (%d -> %d)", kBefore, got)
	}
	if e.Fallbacks() == 0 {
		t.Fatal("fallback counter not incremented")
	}
}

// TestEngineFallbackOnInjectedFault: a scripted kernel-launch failure
// degrades the batch to the host path — same results, fault counted,
// breaker informed — instead of surfacing the error to the caller.
func TestEngineFallbackOnInjectedFault(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 20000, 3)
	tr, err := csstree.Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine[uint64](WrapCSS(tr), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	in := fault.New(fault.Options{})
	e.Device().SetInjector(in)
	in.ScriptNext(fault.OpKernel, fault.ErrKernel)

	qs := workload.SearchInput(pairs, 1000, 11)
	vals, found, stats, err := e.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if !found[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("degraded query %d of key %d returned (%d,%v)", i, q, vals[i], found[i])
		}
	}
	if !stats.Fallback {
		t.Fatal("stats.Fallback not set after an injected kernel fault")
	}
	if e.GPUFaults() != 1 {
		t.Fatalf("GPUFaults = %d, want 1", e.GPUFaults())
	}

	// With the script drained the next batch takes the GPU path again.
	kBefore := e.Device().Counters().Kernels
	if _, _, stats, err = e.LookupBatch(qs); err != nil {
		t.Fatal(err)
	}
	if stats.Fallback {
		t.Fatal("healthy batch still marked Fallback")
	}
	if got := e.Device().Counters().Kernels; got == kBefore {
		t.Fatal("healthy batch did not launch kernels")
	}
}
