package csstree

import (
	"testing"
	"testing/quick"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

func TestCSSLookupAllKeys(t *testing.T) {
	for _, n := range []int{1, 4, 5, 100, 10000, 100000} {
		pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
		tr, err := Build(pairs, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, p := range pairs {
			v, ok := tr.Lookup(p.Key)
			if !ok || v != p.Value {
				t.Fatalf("n=%d: Lookup(%d) = (%d,%v)", n, p.Key, v, ok)
			}
		}
	}
}

func TestCSSMisses(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 5000, 3)
	tr, _ := Build(pairs, 0)
	present := make(map[uint64]bool)
	for _, p := range pairs {
		present[p.Key] = true
	}
	r := workload.NewRNG(5)
	for i := 0; i < 5000; i++ {
		q := r.Uint64()
		if q == keys.Max[uint64]() || present[q] {
			continue
		}
		if _, ok := tr.Lookup(q); ok {
			t.Fatalf("found nonexistent key %d", q)
		}
	}
}

func TestCSS32Bit(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 20000, 7)
	tr, err := Build(pairs, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, kpn, fanout, _ := tr.Directory()
	if kpn != 16 || fanout != 16 {
		t.Fatalf("32-bit geometry %d/%d", kpn, fanout)
	}
	for i := 0; i < len(pairs); i += 7 {
		if v, ok := tr.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
			t.Fatalf("Lookup(%d) failed", pairs[i].Key)
		}
	}
}

func TestCSSLeafBlockSizes(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 10000, 9)
	for _, lb := range []int{1, 4, 16, 64} {
		tr, err := Build(pairs, lb)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Stats().LeafBlock != lb {
			t.Fatalf("leaf block %d", tr.Stats().LeafBlock)
		}
		for i := 0; i < len(pairs); i += 11 {
			if v, ok := tr.Lookup(pairs[i].Key); !ok || v != pairs[i].Value {
				t.Fatalf("lb=%d: Lookup(%d) failed", lb, pairs[i].Key)
			}
		}
	}
}

func TestCSSDirectoryRouting(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 11)
	tr, _ := Build(pairs, 4)
	// Every key's directory result must be the block that contains it.
	for i, p := range pairs {
		b := tr.SearchDirectory(p.Key)
		if want := i / 4; b != want {
			t.Fatalf("SearchDirectory(%d) = %d, want block %d", p.Key, b, want)
		}
	}
}

func TestCSSBuildErrors(t *testing.T) {
	if _, err := Build[uint64](nil, 0); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Build([]keys.Pair[uint64]{{Key: 2}, {Key: 1}}, 0); err == nil {
		t.Fatal("unsorted accepted")
	}
	if _, err := Build([]keys.Pair[uint64]{{Key: keys.Max[uint64]()}}, 0); err == nil {
		t.Fatal("sentinel accepted")
	}
}

func TestCSSStats(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 65536, 2)
	tr, _ := Build(pairs, 4)
	st := tr.Stats()
	if st.NumPairs != 65536 || st.Height < 1 || st.DirBytes <= 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.LeafBytes != int64(2*8*65536) {
		t.Fatalf("leaf bytes %d", st.LeafBytes)
	}
	if tr.NumBlocks() != 65536/4 {
		t.Fatalf("blocks %d", tr.NumBlocks())
	}
}

func TestCSSQuickOracle(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		size := int(n)%3000 + 1
		pairs := workload.Dataset[uint64](workload.Uniform, size, seed)
		tr, err := Build(pairs, 0)
		if err != nil {
			return false
		}
		oracle := make(map[uint64]uint64)
		for _, p := range pairs {
			oracle[p.Key] = p.Value
		}
		r := workload.NewRNG(seed + 9)
		for i := 0; i < 200; i++ {
			var q uint64
			if i%2 == 0 {
				q = pairs[r.Intn(size)].Key
			} else {
				q = r.Uint64()
				if q == keys.Max[uint64]() {
					q--
				}
			}
			v, ok := tr.Lookup(q)
			wv, wok := oracle[q]
			if ok != wok || (ok && v != wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
