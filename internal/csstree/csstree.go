// Package csstree implements the Cache Sensitive Search Tree of Rao and
// Ross (VLDB 1999), one of the in-memory index structures the paper
// surveys (Section 2) and a textbook example of a *leaf-stored* tree: a
// pointer-free n-ary directory built over a sorted array of key-value
// pairs, with child positions computed arithmetically.
//
// The package exists to exercise the paper's future-work direction of a
// "general leaf-stored tree processing framework using a CPU-GPU hybrid
// platform" (Section 7): internal/hybrid plugs this tree — unchanged —
// into the same bucket-pipelined CPU-GPU search engine the HB+-tree
// uses, with the directory as the GPU-mirrored I-segment and the sorted
// array as the host-resident L-segment.
package csstree

import (
	"fmt"
	"sort"

	"hbtree/internal/keys"
	"hbtree/internal/simd"
)

// Tree is a CSS-tree over K: an implicit directory of m-key nodes above
// a sorted pair array. Nodes occupy one cache line each (m = 8 for
// 64-bit keys, 16 for 32-bit), matching the node geometry of the other
// trees in this repository so the hybrid engine's cost model applies
// unchanged.
type Tree[K keys.Key] struct {
	kpn    int // keys per directory node (one line)
	fanout int // children per node = kpn
	height int
	levNod []int // nodes per level, root first
	levOff []int // node offset of each level, root first

	dir   []K // directory, breadth first
	skeys []K // sorted keys (the leaf array)
	vals  []K // values aligned with skeys

	// leafBlock is the number of pairs per leaf block; the directory's
	// bottom level separates leaf blocks.
	leafBlock int
}

// Build constructs a CSS-tree from sorted, distinct pairs.
func Build[K keys.Key](pairs []keys.Pair[K], leafBlock int) (*Tree[K], error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("csstree: empty dataset")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Key >= pairs[i].Key {
			return nil, fmt.Errorf("csstree: pairs not sorted/distinct at %d", i)
		}
	}
	if pairs[len(pairs)-1].Key == keys.Max[K]() {
		return nil, fmt.Errorf("csstree: key MAX is reserved as sentinel")
	}
	t := &Tree[K]{kpn: keys.PerLine[K]()}
	t.fanout = t.kpn
	if leafBlock <= 0 {
		leafBlock = t.kpn / 2 // one cache line of pairs
	}
	t.leafBlock = leafBlock

	t.skeys = make([]K, len(pairs))
	t.vals = make([]K, len(pairs))
	for i, p := range pairs {
		t.skeys[i] = p.Key
		t.vals[i] = p.Value
	}

	// Directory bottom-up: the lowest level has one separator slot per
	// leaf block; each upper node covers `fanout` children.
	maxK := keys.Max[K]()
	nBlocks := (len(pairs) + leafBlock - 1) / leafBlock
	childMax := make([]K, nBlocks)
	for b := 0; b < nBlocks; b++ {
		end := (b+1)*leafBlock - 1
		if end >= len(pairs) {
			end = len(pairs) - 1
		}
		childMax[b] = pairs[end].Key
	}
	type level struct {
		nodes []K
		maxes []K
	}
	var levels []level
	for {
		n := (len(childMax) + t.fanout - 1) / t.fanout
		if n < 1 {
			n = 1
		}
		lv := level{nodes: make([]K, n*t.kpn), maxes: make([]K, n)}
		for i := range lv.nodes {
			lv.nodes[i] = maxK
		}
		for i := 0; i < n; i++ {
			first := i * t.fanout
			nch := len(childMax) - first
			if nch > t.fanout {
				nch = t.fanout
			}
			for j := 0; j < nch-1; j++ {
				lv.nodes[i*t.kpn+j] = childMax[first+j]
			}
			lv.maxes[i] = childMax[first+nch-1]
		}
		levels = append(levels, lv)
		childMax = lv.maxes
		if n == 1 {
			break
		}
	}
	t.height = len(levels)
	t.levNod = make([]int, t.height)
	t.levOff = make([]int, t.height)
	total := 0
	for d := 0; d < t.height; d++ {
		lv := levels[t.height-1-d]
		t.levOff[d] = total
		t.levNod[d] = len(lv.nodes) / t.kpn
		total += t.levNod[d]
	}
	t.dir = make([]K, total*t.kpn)
	for d := 0; d < t.height; d++ {
		copy(t.dir[t.levOff[d]*t.kpn:], levels[t.height-1-d].nodes)
	}
	return t, nil
}

// node returns the key line of node i at level d.
func (t *Tree[K]) node(d, i int) []K {
	off := (t.levOff[d] + i) * t.kpn
	return t.dir[off : off+t.kpn]
}

// SearchDirectory walks the directory and returns the leaf block index
// that bounds q — the inner traversal the hybrid engine offloads.
func (t *Tree[K]) SearchDirectory(q K) int {
	idx := 0
	for d := 0; d < t.height; d++ {
		j := simd.SearchHierarchical(t.node(d, idx), q)
		if j >= t.kpn {
			j = t.kpn - 1
		}
		idx = idx*t.fanout + j
	}
	nBlocks := (len(t.skeys) + t.leafBlock - 1) / t.leafBlock
	if idx >= nBlocks {
		idx = nBlocks - 1
	}
	return idx
}

// SearchBlock finishes a lookup inside leaf block b.
func (t *Tree[K]) SearchBlock(b int, q K) (K, bool) {
	lo := b * t.leafBlock
	hi := lo + t.leafBlock
	if hi > len(t.skeys) {
		hi = len(t.skeys)
	}
	seg := t.skeys[lo:hi]
	i := sort.Search(len(seg), func(i int) bool { return seg[i] >= q })
	if i < len(seg) && seg[i] == q {
		return t.vals[lo+i], true
	}
	return 0, false
}

// Lookup finds the value stored under q.
func (t *Tree[K]) Lookup(q K) (K, bool) {
	return t.SearchBlock(t.SearchDirectory(q), q)
}

// Directory exposes the breadth-first directory array and geometry; the
// hybrid engine mirrors exactly these elements into GPU memory.
func (t *Tree[K]) Directory() (dir []K, levelOff []int, kpn, fanout, height int) {
	return t.dir, t.levOff, t.kpn, t.fanout, t.height
}

// Stats describes the tree for the cost model.
type Stats struct {
	NumPairs  int
	Height    int
	DirBytes  int64
	LeafBytes int64
	LeafBlock int
}

// Stats returns the tree geometry.
func (t *Tree[K]) Stats() Stats {
	sz := int64(keys.Size[K]())
	return Stats{
		NumPairs:  len(t.skeys),
		Height:    t.height,
		DirBytes:  int64(len(t.dir)) * sz,
		LeafBytes: int64(len(t.skeys)+len(t.vals)) * sz,
		LeafBlock: t.leafBlock,
	}
}

// LevelNodes returns the node count at directory level d (root first).
func (t *Tree[K]) LevelNodes(d int) int { return t.levNod[d] }

// NumBlocks returns the number of leaf blocks.
func (t *Tree[K]) NumBlocks() int {
	return (len(t.skeys) + t.leafBlock - 1) / t.leafBlock
}
