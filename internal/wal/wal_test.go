package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hbtree/internal/cpubtree"
)

func payload(i int) []byte {
	return AppendOps[uint32](nil, []cpubtree.Op[uint32]{{Key: uint32(i), Value: uint32(i * 10)}}, 0)
}

func mustOpen(t *testing.T, dir string, part int, opt Options) *Log {
	t.Helper()
	l, err := Open(dir, part, 32, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	const n = 50
	for i := 1; i <= n; i++ {
		seq, err := l.Append(payload(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res, err := Scan(dir, 0, 32, 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if res.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	if len(res.Records) != n {
		t.Fatalf("scanned %d records, want %d", len(res.Records), n)
	}
	if res.NextSeq != n+1 {
		t.Fatalf("NextSeq = %d, want %d", res.NextSeq, n+1)
	}
	for i, rec := range res.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if !bytes.Equal(rec.Payload, payload(i+1)) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	// Floors skip the covered prefix.
	res, err = Scan(dir, 0, 32, 30)
	if err != nil {
		t.Fatalf("Scan floor: %v", err)
	}
	if len(res.Records) != n-30 || res.Records[0].Seq != 31 {
		t.Fatalf("floor scan: %d records starting at %d", len(res.Records), res.Records[0].Seq)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{FsyncInterval: time.Millisecond})
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(payload(w*each + i + 1)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*each {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res, err := Scan(dir, 0, 32, 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(res.Records) != writers*each {
		t.Fatalf("scanned %d records, want %d", len(res.Records), writers*each)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	for i := 1; i <= 10; i++ {
		l.Append(payload(i))
	}
	l.Close()
	l = mustOpen(t, dir, 0, Options{})
	if got := l.NextSeq(); got != 11 {
		t.Fatalf("reopened NextSeq = %d, want 11", got)
	}
	seq, err := l.Append(payload(11))
	if err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
	l.Close()
	res, err := Scan(dir, 0, 32, 0)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(res.Records) != 11 {
		t.Fatalf("scanned %d records, want 11", len(res.Records))
	}
}

// activeSegment returns the single partition-0 segment file with the
// highest first seq.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir, 0)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	for i := 1; i <= 5; i++ {
		l.Append(payload(i))
	}
	l.Close()

	// Simulate a crash mid-append: a frame whose payload was cut short.
	torn := appendFrame(nil, payload(6))
	seg := activeSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn[:len(torn)-3])
	f.Close()

	res, err := Scan(dir, 0, 32, 0)
	if err != nil {
		t.Fatalf("Scan over torn tail: %v", err)
	}
	if !res.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(res.Records) != 5 || res.NextSeq != 6 {
		t.Fatalf("torn scan: %d records, NextSeq %d", len(res.Records), res.NextSeq)
	}

	l = mustOpen(t, dir, 0, Options{})
	if got := l.NextSeq(); got != 6 {
		t.Fatalf("NextSeq after torn reopen = %d, want 6", got)
	}
	if seq, err := l.Append(payload(6)); err != nil || seq != 6 {
		t.Fatalf("append after torn reopen: seq %d err %v", seq, err)
	}
	l.Close()
	res, err = Scan(dir, 0, 32, 0)
	if err != nil || res.TornTail || len(res.Records) != 6 {
		t.Fatalf("post-repair scan: err %v torn %v records %d", err, res.TornTail, len(res.Records))
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	for i := 1; i <= 4; i++ {
		l.Append(payload(i))
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	for i := 5; i <= 8; i++ {
		l.Append(payload(i))
	}
	if got := l.Stats().Segments; got != 2 {
		t.Fatalf("segments after rotate = %d, want 2", got)
	}
	// Records 1..4 are covered; the sealed segment is reclaimable.
	if err := l.TruncateBelow(5); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	st := l.Stats()
	if st.Segments != 1 || st.Truncated != 1 {
		t.Fatalf("after truncate: %d segments, %d truncated", st.Segments, st.Truncated)
	}
	l.Close()
	res, err := Scan(dir, 0, 32, 4)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(res.Records) != 4 || res.Records[0].Seq != 5 {
		t.Fatalf("post-truncate scan: %d records from %d", len(res.Records), res.Records[0].Seq)
	}
}

func TestInteriorCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	for i := 1; i <= 3; i++ {
		l.Append(payload(i))
	}
	l.Rotate()
	for i := 4; i <= 6; i++ {
		l.Append(payload(i))
	}
	l.Close()
	segs, _ := listSegments(dir, 0)
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %d", len(segs))
	}
	// Flip a payload byte in the INTERIOR segment: not a torn tail, a
	// real corruption.
	data, _ := os.ReadFile(segs[0].path)
	data[headerLen+9] ^= 0xff
	os.WriteFile(segs[0].path, data, 0o644)

	if _, err := Scan(dir, 0, 32, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption: err %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, 0, 32, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over interior corruption: err %v, want ErrCorrupt", err)
	}
}

func TestPartitionAndWidthMismatch(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	l.Append(payload(1))
	l.Close()
	if _, err := Scan(dir, 0, 64, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("width mismatch: err %v, want ErrCorrupt", err)
	}
	// Copy partition 0's segment into partition 1's directory.
	seg := activeSegment(t, dir)
	data, _ := os.ReadFile(seg)
	os.MkdirAll(partDir(dir, 1), 0o755)
	os.WriteFile(filepath.Join(partDir(dir, 1), filepath.Base(seg)), data, 0o644)
	if _, err := Scan(dir, 1, 32, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("partition mismatch: err %v, want ErrCorrupt", err)
	}
}

func TestOpsCodecRoundTrip(t *testing.T) {
	ops32 := []cpubtree.Op[uint32]{
		{Key: 1, Value: 100},
		{Key: 0xffffffff, Value: 0},
		{Key: 7, Delete: true},
	}
	p := AppendOps[uint32](nil, ops32, 3)
	got, method, err := DecodeOps[uint32](p)
	if err != nil {
		t.Fatalf("DecodeOps: %v", err)
	}
	if method != 3 || len(got) != len(ops32) {
		t.Fatalf("method %d len %d", method, len(got))
	}
	for i := range got {
		if got[i] != ops32[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops32[i])
		}
	}

	ops64 := []cpubtree.Op[uint64]{
		{Key: 1 << 40, Value: 99},
		{Key: 2, Delete: true},
	}
	p = AppendOps[uint64](nil, ops64, 0)
	got64, _, err := DecodeOps[uint64](p)
	if err != nil {
		t.Fatalf("DecodeOps 64: %v", err)
	}
	for i := range got64 {
		if got64[i] != ops64[i] {
			t.Fatalf("op64 %d: %+v != %+v", i, got64[i], ops64[i])
		}
	}

	// Truncated and mistyped payloads are ErrCorrupt, not panics.
	if _, _, err := DecodeOps[uint32](p[:len(p)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short ops payload: %v", err)
	}
	if _, _, err := DecodeOps[uint32]([]byte{RecBarrier, 0}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mistyped ops payload: %v", err)
	}
}

func TestBarrierCodecRoundTrip(t *testing.T) {
	b := Barrier{Gen: 42, Shards: 7}
	p := AppendBarrier(nil, b)
	got, err := DecodeBarrier(p)
	if err != nil || got != b {
		t.Fatalf("barrier round trip: %+v err %v", got, err)
	}
	if _, err := DecodeBarrier(p[:5]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short barrier: %v", err)
	}
}

func testManifest() *Manifest {
	return &Manifest{
		Epoch:      17,
		TableGen:   3,
		KeyBits:    32,
		Bounds:     []uint64{1000, 2000},
		Trees:      []string{"snap-0000000000000011/shard-000.tree", "snap-0000000000000011/shard-001.tree", "snap-0000000000000011/shard-002.tree"},
		Pairs:      4096,
		Partitions: 4,
		Floors:     []uint64{10, 20, 30, 40},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testManifest()
	img, err := EncodeManifest(m)
	if err != nil {
		t.Fatalf("EncodeManifest: %v", err)
	}
	got, err := DecodeManifest(img)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Epoch != m.Epoch || got.Pairs != m.Pairs || len(got.Floors) != 4 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// A flipped body byte fails the checksum.
	img[10] ^= 1
	if _, err := DecodeManifest(img); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt manifest: %v", err)
	}
	img[10] ^= 1
	if _, err := DecodeManifest(img[:8]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short manifest: %v", err)
	}
	// Shape violations are corruption even when the JSON parses.
	bad := testManifest()
	bad.Floors = bad.Floors[:2]
	img2, _ := EncodeManifest(bad)
	if _, err := DecodeManifest(img2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad shape: %v", err)
	}
}

func TestManifestCommitAndFallback(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCurrentManifest(dir); ok || err != nil {
		t.Fatalf("empty dir: ok %v err %v", ok, err)
	}
	m1 := testManifest()
	m1.Epoch = 5
	if err := WriteManifest(dir, m1); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	m2 := testManifest()
	m2.Epoch = 9
	if err := WriteManifest(dir, m2); err != nil {
		t.Fatalf("WriteManifest 2: %v", err)
	}
	got, ok, err := ReadCurrentManifest(dir)
	if err != nil || !ok || got.Epoch != 9 {
		t.Fatalf("current: epoch %d ok %v err %v", got.Epoch, ok, err)
	}
	// A trashed CURRENT falls back to the newest manifest on disk.
	os.WriteFile(filepath.Join(dir, currentFile), []byte("garbage\n"), 0o644)
	got, ok, err = ReadCurrentManifest(dir)
	if err != nil || !ok || got.Epoch != 9 {
		t.Fatalf("fallback: epoch %d ok %v err %v", got.Epoch, ok, err)
	}
	// A half-written (corrupt) newest manifest falls back to the older
	// committed one — the mid-snapshot crash case.
	m3img := []byte("HBMF1 this is not a manifest")
	os.WriteFile(filepath.Join(dir, ManifestPath(12)), m3img, 0o644)
	os.Remove(filepath.Join(dir, currentFile))
	got, ok, err = ReadCurrentManifest(dir)
	if err != nil || !ok || got.Epoch != 9 {
		t.Fatalf("skip-corrupt fallback: epoch %d ok %v err %v", got.Epoch, ok, err)
	}
}

func TestSweepSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, ep := range []uint64{3, 7} {
		m := testManifest()
		m.Epoch = ep
		WriteManifest(dir, m)
		os.MkdirAll(filepath.Join(dir, SnapDir(ep)), 0o755)
	}
	removed := SweepSnapshots(dir, 7)
	if removed != 2 { // MANIFEST-3 and snap-3
		t.Fatalf("removed %d entries, want 2", removed)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestPath(7))); err != nil {
		t.Fatalf("kept manifest gone: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapDir(3))); !os.IsNotExist(err) {
		t.Fatalf("swept snap dir survives: %v", err)
	}
}

// TestLongestValidPrefix is the deterministic core of the fuzz property:
// a valid segment image cut at EVERY byte offset yields exactly the
// records fully contained before the cut, never an error past the
// header and never a panic.
func TestLongestValidPrefix(t *testing.T) {
	img := appendHeader(nil, 32, 0, 1)
	var ends []int // offset just past each record
	for i := 1; i <= 6; i++ {
		img = appendFrame(img, payload(i))
		ends = append(ends, len(img))
	}
	for cut := headerLen; cut <= len(img); cut++ {
		recs, torn, err := ScanBytes(img[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, e := range ends {
			if e <= cut {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), want)
		}
		// Torn iff bytes remain past the last complete record.
		lastEnd := headerLen
		if want > 0 {
			lastEnd = ends[want-1]
		}
		wantTorn := cut > lastEnd
		if torn != wantTorn {
			t.Fatalf("cut %d: torn %v, want %v", cut, torn, wantTorn)
		}
	}
}

func TestScanBytesBitFlips(t *testing.T) {
	img := appendHeader(nil, 32, 0, 1)
	for i := 1; i <= 4; i++ {
		img = appendFrame(img, payload(i))
	}
	full, _, err := ScanBytes(img)
	if err != nil || len(full) != 4 {
		t.Fatalf("baseline: %d records err %v", len(full), err)
	}
	// Flipping any single body bit never panics and never yields MORE
	// than the untouched prefix plus whatever happens to stay valid —
	// in practice the scan stops at the flipped record.
	for off := headerLen; off < len(img); off++ {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x01
		recs, _, err := ScanBytes(mut)
		if err != nil {
			t.Fatalf("offset %d: unexpected error %v", off, err)
		}
		if len(recs) > 4 {
			t.Fatalf("offset %d: %d records from a 4-record image", off, len(recs))
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	l.Close()
	if _, err := l.Append(payload(1)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestOversizedAppendRejected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, 0, Options{})
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty append succeeded")
	}
	if _, err := l.Append(make([]byte, maxRecordLen+1)); err == nil {
		t.Fatal("oversized append succeeded")
	}
}

func TestManyPartitionsIndependent(t *testing.T) {
	dir := t.TempDir()
	const parts = 3
	logs := make([]*Log, parts)
	for i := range logs {
		logs[i] = mustOpen(t, dir, i, Options{})
	}
	for i, l := range logs {
		for j := 0; j <= i; j++ {
			l.Append(payload(j))
		}
		l.Close()
	}
	for i := 0; i < parts; i++ {
		res, err := Scan(dir, i, 32, 0)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if len(res.Records) != i+1 {
			t.Fatalf("partition %d: %d records, want %d", i, len(res.Records), i+1)
		}
	}
}

func BenchmarkAppendGroupCommit(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, 0, 32, Options{FsyncInterval: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	p := payload(1)
	b.SetBytes(int64(len(p) + 8))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(l.Stats().Syncs), "syncs")
}
