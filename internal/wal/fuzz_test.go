package wal

import (
	"bytes"
	"testing"

	"hbtree/internal/cpubtree"
)

// fuzzImage builds a valid segment image with n ops records for seeding
// the corpus.
func fuzzImage(n int) []byte {
	img := appendHeader(nil, 32, 0, 1)
	for i := 1; i <= n; i++ {
		ops := []cpubtree.Op[uint32]{
			{Key: uint32(i), Value: uint32(i * 3)},
			{Key: uint32(i + 1000), Delete: true},
		}
		img = appendFrame(img, AppendOps[uint32](nil, ops, byte(i%3)))
	}
	return img
}

// FuzzWALDecode feeds arbitrary bytes to the segment decoder and pins
// the recovery contract (ISSUE satellite): decoding never panics, and
// whatever records come back are exactly a valid prefix — every payload
// re-frames to the bytes at its position, so "longest valid prefix" is
// checkable against the input itself.
func FuzzWALDecode(f *testing.F) {
	// Seeds: a healthy multi-record image, a torn final record at
	// several cut points (the real crash artifact), a bit-flipped CRC,
	// a corrupt header, barrier records, and pathological lengths.
	whole := fuzzImage(5)
	f.Add(whole)
	f.Add(fuzzImage(0))
	f.Add(whole[:len(whole)-1])
	f.Add(whole[:len(whole)-9])
	f.Add(whole[:headerLen+3])
	flipped := append([]byte(nil), whole...)
	flipped[headerLen+5] ^= 0x40
	f.Add(flipped)
	badHdr := append([]byte(nil), whole...)
	badHdr[2] ^= 0xff
	f.Add(badHdr)
	barr := appendHeader(nil, 32, 0, 99)
	barr = appendFrame(barr, AppendBarrier(nil, Barrier{Gen: 2, Shards: 4}))
	f.Add(barr)
	huge := appendHeader(nil, 32, 0, 1)
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // absurd length prefix
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("HBWAL1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn, err := ScanBytes(data) // must never panic
		if err != nil {
			return // malformed header: rejected outright, nothing decoded
		}
		if len(data) < headerLen {
			t.Fatalf("accepted a %d-byte image (header is %d)", len(data), headerLen)
		}
		_, _, firstSeq, herr := parseHeader(data)
		if herr != nil {
			t.Fatalf("ScanBytes accepted what parseHeader rejects: %v", herr)
		}
		// The records must be a contiguous re-encodable prefix of the
		// body: walking the input frame-by-frame reproduces each payload
		// at its offset, and the walk ends exactly where ScanBytes
		// stopped (longest valid prefix).
		off := headerLen
		for i, rec := range recs {
			if rec.Seq != firstSeq+uint64(i) {
				t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, firstSeq+uint64(i))
			}
			frame := appendFrame(nil, rec.Payload)
			if off+len(frame) > len(data) || !bytes.Equal(data[off:off+len(frame)], frame) {
				t.Fatalf("record %d does not re-frame to input at offset %d", i, off)
			}
			off += len(frame)
		}
		if torn {
			if off >= len(data) {
				t.Fatalf("torn tail reported at clean end (off %d, len %d)", off, len(data))
			}
			// The stop must be genuine: the remaining bytes do not start
			// with a valid frame.
			if _, _, ok := nextFrame(data[off:]); ok {
				t.Fatalf("scan stopped early: valid frame remains at offset %d", off)
			}
		} else if off != len(data) {
			t.Fatalf("clean scan ended at %d of %d bytes", off, len(data))
		}
		// Typed payload decoding is equally panic-free.
		for _, rec := range recs {
			switch {
			case len(rec.Payload) > 0 && rec.Payload[0] == RecOps:
				DecodeOps[uint32](rec.Payload)
				DecodeOps[uint64](rec.Payload)
			case len(rec.Payload) > 0 && rec.Payload[0] == RecBarrier:
				DecodeBarrier(rec.Payload)
			}
		}
	})
}

// FuzzManifestDecode pins the same contract for manifests: arbitrary
// bytes never panic and never decode into an invalid shape.
func FuzzManifestDecode(f *testing.F) {
	img, _ := EncodeManifest(&Manifest{
		Epoch: 3, KeyBits: 32, Bounds: []uint64{10}, Trees: []string{"a", "b"},
		Pairs: 7, Partitions: 2, Floors: []uint64{1, 2},
	})
	f.Add(img)
	f.Add(img[:len(img)-2])
	f.Add([]byte("HBMF1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Partitions <= 0 || len(m.Floors) != m.Partitions || len(m.Trees) != len(m.Bounds)+1 {
			t.Fatalf("decoded manifest with invalid shape: %+v", m)
		}
	})
}
