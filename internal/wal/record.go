// Package wal implements the durability substrate of the serving layer:
// per-shard append-only write-ahead logs and the snapshot manifest that
// anchors them.
//
// A log is a sequence of segment files, each a fixed header followed by
// length-prefixed, CRC32C-checksummed records. Records carry opaque
// typed payloads — the serving layer encodes update batches and
// rebalance barriers with the codecs in this file — and every record
// has a dense per-partition sequence number, so a snapshot can name the
// exact log position it covers ("everything at or below seq S is in the
// image") and recovery replays only the tail past it.
//
// The reader never trusts the bytes: a short tail, a bit-flipped CRC or
// a nonsense length terminates the scan at the longest valid prefix
// instead of panicking — the property FuzzWALDecode pins. Torn final
// records are the EXPECTED crash artifact (a record was being appended
// when the process died past the last group commit) and are
// distinguished from mid-log corruption so recovery can report them.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
)

// Record payload types.
const (
	// RecOps is a batch of key-value update operations (the WAL image
	// of one acked write batch routed to this partition).
	RecOps = byte(1)
	// RecBarrier marks a shard-layout change (rebalance split/merge):
	// the manifest barrier record of DESIGN §8. It carries the new
	// split-key table generation and shard count and is a replay no-op —
	// partition routing is layout-independent — but recovery counts the
	// barriers it crosses so tests can assert log/layout alignment.
	RecBarrier = byte(2)
)

// castagnoli is the CRC32C polynomial table used for every checksum in
// the package (record payloads, segment headers, the manifest).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// ErrCorrupt reports bytes that cannot be a record stream produced by
// this package: a bad magic, an impossible length, a checksum mismatch
// on a non-final record, or a malformed payload. Torn tails are NOT
// corruption — see Scan.
var ErrCorrupt = errors.New("wal: corrupt log")

// maxRecordLen bounds a single record's payload so a corrupt length
// prefix cannot drive a giant allocation before the CRC is checked.
const maxRecordLen = 1 << 26 // 64 MiB

// Barrier is the decoded form of a RecBarrier payload.
type Barrier struct {
	Gen    uint64 // split-key table generation after the rebalance
	Shards uint32 // shard count after the rebalance
}

// AppendBarrier encodes a rebalance barrier payload into dst.
func AppendBarrier(dst []byte, b Barrier) []byte {
	dst = append(dst, RecBarrier)
	dst = binary.LittleEndian.AppendUint64(dst, b.Gen)
	dst = binary.LittleEndian.AppendUint32(dst, b.Shards)
	return dst
}

// DecodeBarrier decodes a RecBarrier payload (including the type byte).
func DecodeBarrier(p []byte) (Barrier, error) {
	if len(p) != 13 || p[0] != RecBarrier {
		return Barrier{}, fmt.Errorf("%w: barrier payload %d bytes", ErrCorrupt, len(p))
	}
	return Barrier{
		Gen:    binary.LittleEndian.Uint64(p[1:9]),
		Shards: binary.LittleEndian.Uint32(p[9:13]),
	}, nil
}

// Op flag bits.
const opDelete = byte(1)

// AppendOps encodes an update batch payload into dst: the type byte,
// the update method, the op count, then each op as key, value (K-width
// little-endian) and a flag byte. method is the core.UpdateMethod the
// batch was applied with, carried as an opaque byte so replay reuses it.
func AppendOps[K keys.Key](dst []byte, ops []cpubtree.Op[K], method byte) []byte {
	dst = append(dst, RecOps, method)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops)))
	wide := keys.Size[K]() == 8
	for _, op := range ops {
		if wide {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(op.Key))
			dst = binary.LittleEndian.AppendUint64(dst, uint64(op.Value))
		} else {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(op.Key))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(op.Value))
		}
		var f byte
		if op.Delete {
			f |= opDelete
		}
		dst = append(dst, f)
	}
	return dst
}

// DecodeOps decodes a RecOps payload (including the type byte) into an
// op batch and the update method byte it was applied with.
func DecodeOps[K keys.Key](p []byte) ([]cpubtree.Op[K], byte, error) {
	if len(p) < 6 || p[0] != RecOps {
		return nil, 0, fmt.Errorf("%w: ops payload %d bytes", ErrCorrupt, len(p))
	}
	method := p[1]
	n := binary.LittleEndian.Uint32(p[2:6])
	sz := keys.Size[K]()
	opLen := 2*sz + 1
	body := p[6:]
	if uint64(len(body)) != uint64(n)*uint64(opLen) {
		return nil, 0, fmt.Errorf("%w: ops payload %d bytes for %d ops", ErrCorrupt, len(p), n)
	}
	ops := make([]cpubtree.Op[K], n)
	for i := range ops {
		rec := body[i*opLen:]
		if sz == 8 {
			ops[i].Key = K(binary.LittleEndian.Uint64(rec[0:8]))
			ops[i].Value = K(binary.LittleEndian.Uint64(rec[8:16]))
		} else {
			ops[i].Key = K(binary.LittleEndian.Uint32(rec[0:4]))
			ops[i].Value = K(binary.LittleEndian.Uint32(rec[4:8]))
		}
		ops[i].Delete = rec[2*sz]&opDelete != 0
	}
	return ops, method, nil
}

// appendFrame frames one payload: [len uint32][crc32c uint32][payload].
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, Checksum(payload))
	return append(dst, payload...)
}
