package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Segment file layout: a 24-byte header followed by framed records.
//
//	[0:6]   magic "HBWAL1"
//	[6]     format version (1)
//	[7]     key width in bits (32 or 64)
//	[8:12]  partition index, little-endian
//	[12:20] sequence number of the first record, little-endian
//	[20:24] CRC32C of bytes [0:20]
//
// Records within a partition are densely numbered: the i-th record of a
// segment with first-seq F has sequence F+i. Segment files are named
// seg-<firstseq:016x>.wal so a lexical sort is a seq sort.
const (
	segMagic   = "HBWAL1"
	segVersion = byte(1)
	headerLen  = 24
)

// Options tunes a Log.
type Options struct {
	// FsyncInterval is the group-commit window: appends are batched and
	// fsynced together at most this far apart, and every Append blocks
	// until the sync covering its record completes. Zero syncs every
	// append inline (strictest, slowest).
	FsyncInterval time.Duration
}

// Stats is a snapshot of a Log's counters.
type Stats struct {
	Appends   int64  // records appended
	Syncs     int64  // fsync calls
	Bytes     int64  // record bytes appended (frames included)
	LastSeq   uint64 // last assigned sequence number (0 = none)
	Segments  int    // live segment files
	Truncated int64  // segment files deleted by TruncateBelow
}

// Log is one partition's append-only write-ahead log. Appends are
// durable when they return: the record has been written and covered by
// an fsync (its own, or the group commit it joined). A Log is safe for
// concurrent appends.
type Log struct {
	dir     string
	part    int
	keyBits byte

	mu      sync.Mutex
	cond    *sync.Cond
	f       *os.File // active segment
	pending []byte   // framed records awaiting flush
	nextSeq uint64   // seq the next append receives
	durable uint64   // highest seq covered by an fsync
	flushed uint64   // highest seq handed to a flush in progress
	err     error    // sticky I/O error; fails all later appends
	closed  bool

	segs []segInfo // live segments, ascending firstSeq (last = active)

	interval time.Duration
	stop     chan struct{}
	loopDone chan struct{}

	appends, syncs, bytes, truncated int64
}

type segInfo struct {
	path     string
	firstSeq uint64
}

// partDir returns the on-disk directory of one partition's log.
func partDir(dir string, part int) string {
	return filepath.Join(dir, fmt.Sprintf("p%03d", part))
}

func segPath(dir string, part int, firstSeq uint64) string {
	return filepath.Join(partDir(dir, part), fmt.Sprintf("seg-%016x.wal", firstSeq))
}

// appendHeader encodes a segment header.
func appendHeader(dst []byte, keyBits byte, part int, firstSeq uint64) []byte {
	dst = append(dst, segMagic...)
	dst = append(dst, segVersion, keyBits)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(part))
	dst = binary.LittleEndian.AppendUint64(dst, firstSeq)
	return binary.LittleEndian.AppendUint32(dst, Checksum(dst[len(dst)-20:]))
}

// parseHeader validates a segment header and returns its fields.
func parseHeader(h []byte) (keyBits byte, part int, firstSeq uint64, err error) {
	if len(h) < headerLen {
		return 0, 0, 0, fmt.Errorf("%w: segment header %d bytes", ErrCorrupt, len(h))
	}
	if string(h[:6]) != segMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, h[:6])
	}
	if h[6] != segVersion {
		return 0, 0, 0, fmt.Errorf("%w: segment version %d", ErrCorrupt, h[6])
	}
	if Checksum(h[:20]) != binary.LittleEndian.Uint32(h[20:24]) {
		return 0, 0, 0, fmt.Errorf("%w: segment header checksum", ErrCorrupt)
	}
	return h[7], int(binary.LittleEndian.Uint32(h[8:12])), binary.LittleEndian.Uint64(h[12:20]), nil
}

// Open opens (or creates) partition part of the log rooted at dir for
// appending. keyBits is the serving key width (32 or 64); it is stamped
// into new segment headers and validated against existing ones.
// Existing segments are scanned so appends continue the dense sequence
// past the last valid record; a torn final record is truncated away
// (its append was never acked — the sync covering it never completed).
func Open(dir string, part int, keyBits byte, opt Options) (*Log, error) {
	pd := partDir(dir, part)
	if err := os.MkdirAll(pd, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:      dir,
		part:     part,
		keyBits:  keyBits,
		interval: opt.FsyncInterval,
		nextSeq:  1,
	}
	l.cond = sync.NewCond(&l.mu)

	segs, err := listSegments(dir, part)
	if err != nil {
		return nil, err
	}
	for i, si := range segs {
		res, err := scanSegment(si.path, keyBits, part)
		if err != nil {
			return nil, err
		}
		if res.firstSeq != si.firstSeq {
			return nil, fmt.Errorf("%w: segment %s header seq %d", ErrCorrupt, si.path, res.firstSeq)
		}
		if i > 0 && res.firstSeq != l.nextSeq {
			return nil, fmt.Errorf("%w: segment %s starts at seq %d, want %d", ErrCorrupt, si.path, res.firstSeq, l.nextSeq)
		}
		if res.tornAt >= 0 {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("%w: segment %s: invalid record inside interior segment", ErrCorrupt, si.path)
			}
			// Drop the torn tail so the resumed log stays dense and a
			// future reader never sees the half-record. The torn record's
			// append was never acked: the sync covering it never ran.
			if err := os.Truncate(si.path, res.tornAt); err != nil {
				return nil, err
			}
		}
		l.segs = append(l.segs, si)
		l.nextSeq = res.firstSeq + uint64(res.records)
	}
	l.durable = l.nextSeq - 1
	l.flushed = l.durable

	if len(l.segs) == 0 {
		if err := l.newSegmentLocked(l.nextSeq); err != nil {
			return nil, err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
	}

	if l.interval > 0 {
		l.stop = make(chan struct{})
		l.loopDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// listSegments returns partition part's segment files in ascending
// first-seq order.
func listSegments(dir string, part int) ([]segInfo, error) {
	entries, err := os.ReadDir(partDir(dir, part))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{path: filepath.Join(partDir(dir, part), name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// newSegmentLocked creates and activates a fresh segment starting at
// firstSeq. Callers hold l.mu (or are the constructor).
func (l *Log) newSegmentLocked(firstSeq uint64) error {
	path := segPath(l.dir, l.part, firstSeq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := appendHeader(nil, l.keyBits, l.part, firstSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.segs = append(l.segs, segInfo{path: path, firstSeq: firstSeq})
	return syncDir(filepath.Dir(path))
}

// Append frames payload as the next record and blocks until it is
// durable (covered by an fsync). It returns the record's sequence
// number. Concurrent appends share group commits: all records buffered
// when a flush runs are covered by its single fsync.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 || len(payload) > maxRecordLen {
		return 0, fmt.Errorf("wal: append payload %d bytes", len(payload))
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, os.ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.pending = appendFrame(l.pending, payload)
	l.appends++
	l.bytes += int64(8 + len(payload))
	if l.interval == 0 {
		err := l.flushLocked()
		l.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return seq, nil
	}
	// Group commit: wait until a flush covers this record.
	for l.durable < seq && l.err == nil {
		l.cond.Wait()
	}
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// flushLocked writes and fsyncs everything pending. Callers hold l.mu;
// the lock is held across the write+sync (simple and correct — the
// background flushLoop is what gives concurrent appends their overlap).
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.pending) == 0 {
		return nil
	}
	buf := l.pending
	top := l.nextSeq - 1
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.fail(err)
		return err
	}
	l.pending = l.pending[:0]
	l.durable = top
	l.flushed = top
	l.syncs++
	l.cond.Broadcast()
	return nil
}

// fail records a sticky I/O error and wakes every waiter.
func (l *Log) fail(err error) {
	l.err = err
	l.cond.Broadcast()
}

// flushLoop is the group-commit ticker.
func (l *Log) flushLoop() {
	defer close(l.loopDone)
	tick := time.NewTicker(l.interval)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-tick.C:
			l.mu.Lock()
			l.flushLocked()
			l.mu.Unlock()
		}
	}
}

// Sync forces an immediate flush of everything pending.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// Rotate seals the active segment and starts a new one whose first
// record will carry the next sequence number — the snapshot writer's
// hook, so truncation operates on whole sealed segments.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	return l.newSegmentLocked(l.nextSeq)
}

// TruncateBelow deletes sealed segments every record of which has
// sequence number < seq — the log-reclaim step after a snapshot that
// covers everything below seq. The active segment is never deleted.
func (l *Log) TruncateBelow(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	for i, si := range l.segs {
		last := i == len(l.segs)-1
		// A sealed segment's records end where the next one starts.
		if !last && l.segs[i+1].firstSeq <= seq {
			if err := os.Remove(si.path); err != nil && !os.IsNotExist(err) {
				l.segs = append(kept, l.segs[i:]...)
				return err
			}
			l.truncated++
			continue
		}
		kept = append(kept, si)
	}
	l.segs = kept
	return nil
}

// NextSeq returns the sequence number the next append will receive.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:   l.appends,
		Syncs:     l.syncs,
		Bytes:     l.bytes,
		LastSeq:   l.nextSeq - 1,
		Segments:  len(l.segs),
		Truncated: l.truncated,
	}
}

// Close flushes pending records and closes the active segment. Appends
// after Close fail with os.ErrClosed. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	ferr := l.flushLocked()
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.loopDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Close(); err != nil && ferr == nil {
			ferr = err
		}
		l.f = nil
	}
	return ferr
}

// syncDir fsyncs a directory so entry creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
