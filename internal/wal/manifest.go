package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Manifest anchors one durable snapshot: which per-shard tree images
// form a consistent cut, at what registry epoch the cut was pinned, and
// the per-partition WAL floor below which every record is already
// reflected in the images. Recovery = bulk-load the images + replay
// each partition's tail past its floor.
//
// On disk a manifest is "HBMF1" + length-prefixed JSON + CRC32C, named
// MANIFEST-<epoch:016x>; the file CURRENT names the committed one. The
// commit protocol is: write tree images (fsync each), write the
// manifest (fsync), then rename a temp CURRENT over the real one
// (fsync dir) — so a crash at any earlier point leaves CURRENT pointing
// at the previous snapshot and the half-written one is garbage to be
// swept, never loaded.
type Manifest struct {
	// Epoch is the registry generation the snapshot cut was pinned at.
	Epoch uint64 `json:"epoch"`
	// TableGen is the split-key table generation at the cut (sharded
	// servers; 0 for a single tree).
	TableGen uint64 `json:"tableGen"`
	// KeyBits is the serving key width (32 or 64).
	KeyBits byte `json:"keyBits"`
	// Bounds are the shard lower bounds at the cut (len = shards-1),
	// as uint64 regardless of key width.
	Bounds []uint64 `json:"bounds"`
	// Trees are the per-shard image files, relative to the data dir,
	// index-aligned with the shard order.
	Trees []string `json:"trees"`
	// Pairs is the total pair count across the images (recovery sanity
	// check and the bulk-load stat).
	Pairs int `json:"pairs"`
	// Partitions is the WAL partition count — fixed at first boot,
	// independent of the (dynamic) shard layout.
	Partitions int `json:"partitions"`
	// Floors[i] is partition i's WAL floor: every record with
	// seq <= Floors[i] is reflected in the images; replay starts past
	// it.
	Floors []uint64 `json:"floors"`
}

const (
	manifestMagic = "HBMF1"
	currentFile   = "CURRENT"
)

// maxManifestLen bounds the JSON body against corrupt length prefixes.
const maxManifestLen = 1 << 24

// ManifestPath returns the manifest filename for a snapshot epoch,
// relative to the data dir.
func ManifestPath(epoch uint64) string {
	return fmt.Sprintf("MANIFEST-%016x", epoch)
}

// EncodeManifest renders m to its on-disk form.
func EncodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(manifestMagic)+8+len(body))
	out = append(out, manifestMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, Checksum(body)), nil
}

// DecodeManifest parses and validates an on-disk manifest image.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < len(manifestMagic)+8 || string(data[:5]) != manifestMagic {
		return nil, fmt.Errorf("%w: manifest magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data[5:9])
	if n > maxManifestLen || uint64(len(data)) < 9+uint64(n)+4 {
		return nil, fmt.Errorf("%w: manifest length %d", ErrCorrupt, n)
	}
	body := data[9 : 9+n]
	if Checksum(body) != binary.LittleEndian.Uint32(data[9+n:9+n+4]) {
		return nil, fmt.Errorf("%w: manifest checksum", ErrCorrupt)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest body: %v", ErrCorrupt, err)
	}
	if m.Partitions <= 0 || len(m.Floors) != m.Partitions || len(m.Trees) != len(m.Bounds)+1 {
		return nil, fmt.Errorf("%w: manifest shape (partitions %d, floors %d, trees %d, bounds %d)",
			ErrCorrupt, m.Partitions, len(m.Floors), len(m.Trees), len(m.Bounds))
	}
	return &m, nil
}

// WriteManifest durably writes m as MANIFEST-<epoch> and commits it by
// atomically updating CURRENT.
func WriteManifest(dir string, m *Manifest) error {
	img, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	name := ManifestPath(m.Epoch)
	if err := writeFileSync(filepath.Join(dir, name), img); err != nil {
		return err
	}
	// CURRENT commit: temp file + rename is atomic on POSIX; the dir
	// fsync makes the rename durable.
	tmp := filepath.Join(dir, currentFile+".tmp")
	if err := writeFileSync(tmp, []byte(name+"\n")); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadCurrentManifest loads the committed manifest: the one CURRENT
// names when it is valid, else the highest-epoch manifest on disk that
// decodes (a crash can tear CURRENT's temp file but never CURRENT
// itself; the fallback scan also heals a manually damaged pointer).
// ok is false when the directory holds no committed snapshot at all.
func ReadCurrentManifest(dir string) (*Manifest, bool, error) {
	if b, err := os.ReadFile(filepath.Join(dir, currentFile)); err == nil {
		name := strings.TrimSpace(string(b))
		if ok := strings.HasPrefix(name, "MANIFEST-"); ok {
			if img, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
				if m, err := DecodeManifest(img); err == nil {
					return m, true, nil
				}
			}
		}
	}
	// Fallback: newest valid manifest by epoch.
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	var epochs []uint64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "MANIFEST-") {
			continue
		}
		if ep, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), "MANIFEST-"), 16, 64); err == nil {
			epochs = append(epochs, ep)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	for _, ep := range epochs {
		img, err := os.ReadFile(filepath.Join(dir, ManifestPath(ep)))
		if err != nil {
			continue
		}
		if m, err := DecodeManifest(img); err == nil {
			return m, true, nil
		}
	}
	return nil, false, nil
}

// SweepSnapshots removes manifests and snapshot image directories from
// epochs other than keep — the garbage left behind by superseded
// snapshots and by crashes mid-snapshot. Returns how many entries were
// removed.
func SweepSnapshots(dir string, keep uint64) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	keepManifest := ManifestPath(keep)
	keepDir := SnapDir(keep)
	removed := 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "MANIFEST-") && name != keepManifest:
			if os.Remove(filepath.Join(dir, name)) == nil {
				removed++
			}
		case strings.HasPrefix(name, "snap-") && name != keepDir:
			if os.RemoveAll(filepath.Join(dir, name)) == nil {
				removed++
			}
		}
	}
	return removed
}

// SnapDir returns the snapshot image directory name for an epoch,
// relative to the data dir.
func SnapDir(epoch uint64) string {
	return fmt.Sprintf("snap-%016x", epoch)
}

// writeFileSync writes data to path and fsyncs the file.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
