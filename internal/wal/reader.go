package wal

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Record is one decoded log record: its dense per-partition sequence
// number and the raw typed payload (see RecOps/RecBarrier).
type Record struct {
	Seq     uint64
	Payload []byte
}

// ScanResult reports one partition scan: the records of the longest
// valid prefix with Seq > the requested floor, and how the scan ended.
type ScanResult struct {
	Records []Record
	// NextSeq is the sequence number following the last valid record
	// (i.e. 1 + the highest seq scanned, or floor+1 when nothing was).
	NextSeq uint64
	// TornTail reports that the final segment ended inside a record —
	// the expected artifact of a crash between a write and its group
	// commit. The torn bytes are not part of Records.
	TornTail bool
}

// segScan is the low-level result of scanning one segment file.
type segScan struct {
	firstSeq uint64
	records  int
	tornAt   int64 // file offset of the first invalid byte, or -1 if clean
	payloads [][]byte
}

// scanSegment reads one segment file, validating the header against the
// expected key width and partition, and decodes records until the bytes
// stop being valid: a clean EOF leaves tornAt == -1; anything else —
// short frame, short payload, CRC mismatch, oversized length — sets
// tornAt to the offset where the valid prefix ends. It never panics on
// arbitrary bytes (FuzzWALDecode pins this through ScanBytes).
func scanSegment(path string, keyBits byte, part int) (segScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, err
	}
	kb, p, firstSeq, err := parseHeader(data)
	if err != nil {
		return segScan{}, fmt.Errorf("%s: %w", path, err)
	}
	if kb != keyBits {
		return segScan{}, fmt.Errorf("%w: %s: key width %d bits, want %d", ErrCorrupt, path, kb, keyBits)
	}
	if p != part {
		return segScan{}, fmt.Errorf("%w: %s: partition %d, want %d", ErrCorrupt, path, p, part)
	}
	res := segScan{firstSeq: firstSeq, tornAt: -1}
	off := int64(headerLen)
	body := data[headerLen:]
	for len(body) > 0 {
		n, payload, ok := nextFrame(body)
		if !ok {
			res.tornAt = off
			break
		}
		res.payloads = append(res.payloads, payload)
		res.records++
		body = body[n:]
		off += int64(n)
	}
	return res, nil
}

// nextFrame decodes one framed record from the front of b. ok is false
// when b does not start with a complete, checksum-valid frame.
func nextFrame(b []byte) (consumed int, payload []byte, ok bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n == 0 || n > maxRecordLen || uint64(len(b)) < 8+uint64(n) {
		return 0, nil, false
	}
	payload = b[8 : 8+n]
	if Checksum(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return 0, nil, false
	}
	return int(8 + n), payload, true
}

// ScanBytes decodes the record stream of a single segment image held in
// memory (header included) — the fuzz target's entry point. It returns
// the longest valid prefix of records and whether the image ended
// inside a record; a malformed header is an error.
func ScanBytes(data []byte) ([]Record, bool, error) {
	_, _, firstSeq, err := parseHeader(data)
	if err != nil {
		return nil, false, err
	}
	var recs []Record
	body := data[headerLen:]
	torn := false
	seq := firstSeq
	for len(body) > 0 {
		n, payload, ok := nextFrame(body)
		if !ok {
			torn = true
			break
		}
		recs = append(recs, Record{Seq: seq, Payload: payload})
		seq++
		body = body[n:]
	}
	return recs, torn, nil
}

// Scan reads partition part's records with sequence number > floor, in
// order, across all live segments. Segments must chain densely (each
// one's first seq following the previous one's last); a torn final
// record in the LAST segment is tolerated and reported, while a torn or
// corrupt interior segment is an error — with a crash-only fault model
// only the tail of the log can be mid-write.
func Scan(dir string, part int, keyBits byte, floor uint64) (ScanResult, error) {
	segs, err := listSegments(dir, part)
	if err != nil {
		return ScanResult{}, err
	}
	res := ScanResult{NextSeq: floor + 1}
	next := uint64(0)
	for i, si := range segs {
		ss, err := scanSegment(si.path, keyBits, part)
		if err != nil {
			return ScanResult{}, err
		}
		if ss.firstSeq != si.firstSeq {
			return ScanResult{}, fmt.Errorf("%w: %s: header seq %d, filename says %d", ErrCorrupt, si.path, ss.firstSeq, si.firstSeq)
		}
		if next != 0 && ss.firstSeq != next {
			return ScanResult{}, fmt.Errorf("%w: %s: segment starts at seq %d, want %d", ErrCorrupt, si.path, ss.firstSeq, next)
		}
		if ss.tornAt >= 0 {
			if i != len(segs)-1 {
				return ScanResult{}, fmt.Errorf("%w: %s: invalid record inside interior segment", ErrCorrupt, si.path)
			}
			res.TornTail = true
		}
		for j, payload := range ss.payloads {
			seq := ss.firstSeq + uint64(j)
			if seq > floor {
				res.Records = append(res.Records, Record{Seq: seq, Payload: payload})
			}
		}
		next = ss.firstSeq + uint64(ss.records)
	}
	if next > floor {
		res.NextSeq = next
	}
	return res, nil
}
