package core

import (
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/workload"
)

// TestApplyDeltaForkSharesDeviceReplica checks the in-place fast path
// end to end at the core layer: the fork answers post-batch values via
// the GPU-backed batch path with zero transfer (the device buffers are
// shared, not re-uploaded), the parent keeps its pre-batch epoch, and
// the refcounted buffers survive the parent's Close while the fork is
// still serving.
func TestApplyDeltaForkSharesDeviceReplica(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 60000, 11)
	tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}

	ops := make([]cpubtree.Op[uint64], 0, 128)
	for i := 0; i < 96; i++ {
		ops = append(ops, cpubtree.Op[uint64]{Key: pairs[i*37].Key, Value: uint64(1e9 + i)})
	}
	for i := 0; i < 32; i++ {
		ops = append(ops, cpubtree.Op[uint64]{Key: pairs[i*53+7].Key, Delete: true})
	}

	var plan cpubtree.DeltaPlan[uint64]
	fork, stats, ok := tr.ApplyDelta(ops, &plan)
	if !ok {
		t.Fatalf("ApplyDelta rejected a small batch on a gapped tree")
	}
	if !stats.InPlace || stats.SyncTime != 0 || stats.Structural != 0 {
		t.Fatalf("in-place stats wrong: %+v", stats)
	}
	if stats.Applied != len(ops) {
		t.Fatalf("Applied = %d, want %d", stats.Applied, len(ops))
	}
	if fork.DeltaLeaves() == 0 {
		t.Fatalf("fork carries no delta leaves")
	}

	if tr.bufShare == nil || tr.bufShare != fork.bufShare || tr.bufShare.refs.Load() != 2 {
		t.Fatalf("fork does not share the parent's device buffers")
	}

	// Parent epoch unchanged; Close it while the fork still serves.
	qs := make([]uint64, len(ops))
	for i, op := range ops {
		qs[i] = op.Key
	}
	vals, fnd, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !fnd[i] || vals[i] != workload.ValueFor(qs[i]) {
			t.Fatalf("parent epoch moved: key %d -> (%d,%v)", qs[i], vals[i], fnd[i])
		}
	}
	tr.Close()

	// GPU-path batch lookup on the fork traverses the shared (still
	// live) replica and must see the batch's writes and deletes.
	vals, fnd, _, err = fork.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	// Later ops win on duplicate keys: replay the batch into a map.
	final := make(map[uint64]cpubtree.Op[uint64], len(ops))
	for _, op := range ops {
		final[op.Key] = op
	}
	for i, q := range qs {
		op := final[q]
		switch {
		case op.Delete && fnd[i]:
			t.Fatalf("deleted key %d still found on fork", q)
		case !op.Delete && (!fnd[i] || vals[i] != op.Value):
			t.Fatalf("fork key %d: got (%d,%v), want (%d,true)", q, vals[i], fnd[i], op.Value)
		}
	}
	fork.Close()
}

// TestApplyDeltaChainAndCloneCompacts checks that forks chain (each new
// epoch forks the previous one) and that Clone() of a delta-bearing
// fork compacts back to a private tree that accepts structural updates.
func TestApplyDeltaChainAndCloneCompacts(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 40000, 13)
	tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	cur := tr
	var plan cpubtree.DeltaPlan[uint64]
	for round := 0; round < 4; round++ {
		ops := make([]cpubtree.Op[uint64], 32)
		for i := range ops {
			ops[i] = cpubtree.Op[uint64]{Key: pairs[(round*997+i*61)%len(pairs)].Key, Value: uint64(round*1000 + i)}
		}
		fork, stats, ok := cur.ApplyDelta(ops, &plan)
		if !ok {
			t.Fatalf("round %d: ApplyDelta rejected", round)
		}
		if !stats.InPlace {
			t.Fatalf("round %d: not in-place", round)
		}
		if cur != tr {
			cur.Close()
		}
		cur = fork
	}

	nodes, bytes := cur.CloneFootprint()
	if nodes <= 0 || bytes <= 0 {
		t.Fatalf("CloneFootprint = (%d, %d)", nodes, bytes)
	}

	clone, err := cur.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.DeltaLeaves() != 0 {
		t.Fatalf("clone still carries %d delta leaves", clone.DeltaLeaves())
	}
	// Structural update on the compacted clone must work (would panic on
	// the shared-pool fork).
	if _, err := clone.Update([]cpubtree.Op[uint64]{{Key: 1, Value: 2}}, AsyncSingle); err != nil {
		t.Fatalf("Update on compacted clone: %v", err)
	}
	clone.Close()
	if cur != tr {
		cur.Close()
	}
}
