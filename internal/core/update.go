package core

import (
	"fmt"
	"sort"

	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/model"
	"hbtree/internal/vclock"
)

// This file implements the batch-update machinery of Section 5.6.
//
// Implicit variant: individual updates are impossible; the whole tree is
// rebuilt in host memory (L-segment, then I-segment) and the fresh
// I-segment is transferred to GPU memory. UpdateStats breaks the cost
// into those three phases (Figure 15).
//
// Regular variant: two methods keep the GPU replica of the I-segment in
// sync.
//
//   - Asynchronous: updates execute in host memory first — in parallel,
//     groups of 16K, per-node locks, structural leftovers on one thread —
//     then the entire I-segment is re-transferred. Efficient for big
//     batches, where one large transfer beats many small ones.
//   - Synchronized: a modifying thread executes updates one by one and
//     enqueues each modified inner node; a synchronizing thread replays
//     the node images to GPU memory concurrently. Bounded by per-copy
//     initiation latency, it wins for small batches (Figure 14's
//     crossover near 64K-128K).

// UpdateMethod selects the regular HB+-tree synchronisation method.
type UpdateMethod int

// The update methods evaluated in Figures 13 and 14.
const (
	// AsyncParallel: multi-threaded host update, then full I-segment
	// transfer.
	AsyncParallel UpdateMethod = iota
	// AsyncSingle: single-threaded host update, then full I-segment
	// transfer (the paper's single-threaded asynchronous baseline).
	AsyncSingle
	// Synchronized: modifying thread + synchronizing thread with
	// per-node transfers.
	Synchronized
	// SynchronizedMT: synchronized with multiple modifying threads; the
	// paper found parallelism barely helps ("bounded by the
	// communication initialization latency"), modelled as a 1.3x gain.
	SynchronizedMT
)

// String names the update method.
func (m UpdateMethod) String() string {
	switch m {
	case AsyncParallel:
		return "async-multi"
	case AsyncSingle:
		return "async-single"
	case Synchronized:
		return "sync"
	case SynchronizedMT:
		return "sync-multi"
	}
	return "unknown"
}

// UpdateStats reports one batch update's outcome and virtual cost.
type UpdateStats struct {
	Ops        int
	Applied    int
	NotFound   int
	Structural int

	HostTime vclock.Duration // in-memory update execution
	SyncTime vclock.Duration // I-segment (or per-node) transfer to GPU
	// For implicit rebuilds, the Figure 15 phases:
	LSegBuild vclock.Duration
	ISegBuild vclock.Duration

	DirtyNodes int // last-level nodes re-synchronised (regular, sync method)

	// In-place delta accounting (ApplyDelta vs clone-and-swap).
	InPlace     bool  // batch landed in leaf gaps on a shared-pool fork
	ClonedNodes int   // inner nodes copied when the clone path ran
	ClonedBytes int64 // host bytes copied when the clone path ran
}

// Total returns the end-to-end batch cost.
func (u UpdateStats) Total() vclock.Duration {
	return u.HostTime + u.SyncTime + u.LSegBuild + u.ISegBuild
}

// ThroughputUPS is the update throughput (excluding the I-segment
// transfer, as Figure 13(a) does for the asynchronous methods).
func (u UpdateStats) ThroughputUPS() float64 {
	if u.HostTime <= 0 {
		return 0
	}
	return float64(u.Ops) / u.HostTime.Seconds()
}

// updateMaxSpeedup caps the effective parallelism of the asynchronous
// multi-threaded method: lock contention, shared leaf shifting and the
// serial structural phase limit the gain to about 3x (Figure 13a).
const updateMaxSpeedup = 3.0

// syncMTSpeedup is the modest gain of adding modifying threads to the
// synchronized method, which stays transfer-bound (Section 6.3).
const syncMTSpeedup = 1.3

// Rebuild replaces the implicit HB+-tree's contents with a new sorted
// dataset: both segments are rebuilt in main memory and the I-segment is
// transferred to GPU memory (Section 5.6). The returned stats carry the
// three phase costs of Figure 15.
func (t *Tree[K]) Rebuild(pairs []keys.Pair[K]) (UpdateStats, error) {
	if t.opt.Variant != Implicit {
		return UpdateStats{}, fmt.Errorf("core: Rebuild applies to the implicit variant; use Update")
	}
	if err := t.impl.Rebuild(pairs); err != nil {
		return UpdateStats{}, err
	}
	lseg, iseg := t.modelBuildCost()
	t.buildStats.LSegBuild, t.buildStats.ISegBuild = lseg, iseg
	// The host segments are already rebuilt; a faulted mirror marks the
	// replica stale rather than losing the rebuild.
	if err := t.remirror(); err != nil {
		return UpdateStats{}, err
	}
	return UpdateStats{
		Ops:       len(pairs),
		Applied:   len(pairs),
		LSegBuild: lseg,
		ISegBuild: iseg,
		SyncTime:  t.buildStats.ISegXfer,
	}, nil
}

// Update executes a batch of updates on the regular HB+-tree with the
// chosen method, keeping the device-resident I-segment replica exact.
func (t *Tree[K]) Update(ops []cpubtree.Op[K], method UpdateMethod) (UpdateStats, error) {
	if t.opt.Variant != Regular {
		return UpdateStats{}, fmt.Errorf("core: Update applies to the regular variant; use Rebuild")
	}
	var stats UpdateStats
	stats.Ops = len(ops)
	if len(ops) == 0 {
		return stats, nil
	}

	perOp := t.updatePerOpCost()
	switch method {
	case AsyncParallel, AsyncSingle:
		var res cpubtree.BatchResult
		if method == AsyncParallel {
			res = t.reg.ApplyBatchParallel(ops, 0)
			speedup := float64(t.opt.Threads)
			if speedup > updateMaxSpeedup {
				speedup = updateMaxSpeedup
			}
			stats.HostTime = vclock.Duration(float64(len(ops)) * float64(perOp) / speedup)
		} else {
			res = t.reg.ApplyBatchSequential(ops)
			stats.HostTime = vclock.Duration(len(ops)) * perOp
		}
		stats.Applied = res.Applied
		stats.NotFound = res.NotFound
		stats.Structural = res.Structural
		// "It is more beneficial to transfer the entire I-segment once":
		// re-mirror both pools wholesale. The host batch is already
		// applied, so a faulted transfer marks the replica stale.
		if err := t.remirror(); err != nil {
			return stats, err
		}
		stats.SyncTime = t.buildStats.ISegXfer
		stats.DirtyNodes = len(res.DirtyLast)
	case Synchronized, SynchronizedMT:
		res := t.reg.ApplyBatchSequential(ops)
		stats.Applied = res.Applied
		stats.NotFound = res.NotFound
		stats.Structural = res.Structural
		modify := vclock.Duration(len(ops)) * perOp
		if method == SynchronizedMT {
			modify = vclock.Duration(float64(modify) / syncMTSpeedup)
		}
		sync, dirty, err := t.syncDirtyNodes(res)
		if err != nil {
			return stats, err
		}
		// Modification and synchronisation proceed concurrently on two
		// threads; the slower one bounds the batch (Section 5.6).
		stats.HostTime = vclock.Max(modify, sync)
		stats.SyncTime = 0
		stats.DirtyNodes = dirty
	default:
		return stats, fmt.Errorf("core: unknown update method %d", method)
	}
	return stats, nil
}

// updatePerOpCost models one in-memory update: a full lookup (serial,
// not software-pipelined — updates are dependent operations) plus the
// packed-leaf shift and the node-lock handshake.
func (t *Tree[K]) updatePerOpCost() vclock.Duration {
	cpu := t.opt.Machine.CPU
	p, searches := t.lookupProfile()
	lookup := cpuPerQuery(cpu, t.opt.NodeSearch, searches, p, 0, 1, lockOverhead)
	// Shifting half a big leaf on average (leafCap/2 pairs), at the
	// single-thread copy bandwidth (~1/4 of the socket's).
	shiftBytes := float64(t.reg.LeafCapacity()) / 2 * float64(2*keys.Size[K]())
	shift := vclock.Duration(shiftBytes / (cpu.MemBWBytes / 4) * 1e9)
	return lookup + shift
}

// syncDirtyNodes replays every modified last-level node image (and, on
// structural changes, the whole upper pool) to the device replica,
// returning the synchronizing thread's busy time.
func (t *Tree[K]) syncDirtyNodes(res cpubtree.BatchResult) (vclock.Duration, int, error) {
	upper, last, root, height, nodeSlots, kpl := t.reg.InnerArrays()
	var total vclock.Duration
	dirty := len(res.DirtyLast)

	// Pool growth (splits) forces re-allocation of the device buffers.
	if res.UpperChanged || t.lastBuf.Len() != len(last) || t.upperBuf.Len() != len(upper) {
		if err := t.remirror(); err != nil {
			return 0, dirty, err
		}
		total += t.buildStats.ISegXfer
		return total, dirty, nil
	}

	nodeBytes := int64(nodeSlots) * int64(keys.Size[K]())
	for _, b := range res.DirtyLast {
		off := int(b) * nodeSlots
		if _, err := t.lastBuf.CopyRegionFromHost(off, last[off:off+nodeSlots]); err != nil {
			// A faulted per-node copy leaves the replica partially
			// synchronised; degrade to one full mirror — the async
			// method's transfer — before giving up and going stale.
			if merr := t.remirror(); merr != nil {
				return 0, dirty, err
			}
			total += t.buildStats.ISegXfer
			return total, dirty, nil
		}
		// Each enqueued node copy pays the asynchronous initiation cost
		// plus its bytes (Section 5.6: bounded by initiation latency).
		total += t.dev.Config().TInitAsync +
			vclock.Duration(float64(nodeBytes)/t.dev.Config().PCIeBWBytes*1e9)
	}
	t.regDesc.Root = root
	t.regDesc.RootInUpper = height >= 2
	t.regDesc.Height = height
	_ = kpl
	return total, dirty, nil
}

// MixedBatch executes a concurrent search/update batch on the regular
// HB+-tree using only the CPU, as in the Appendix B.3 evaluation
// (Figure 21), and keeps the GPU replica synchronised with the chosen
// method. Search results are returned alongside the stats.
func (t *Tree[K]) MixedBatch(ops []cpubtree.MixedOp[K], method UpdateMethod) (cpubtree.MixedResult[K], UpdateStats, error) {
	var stats UpdateStats
	if t.opt.Variant != Regular {
		return cpubtree.MixedResult[K]{}, stats, fmt.Errorf("core: MixedBatch applies to the regular variant")
	}
	res := t.reg.MixedBatch(ops, 0)
	stats.Ops = len(ops)
	stats.Structural = res.Structural
	stats.DirtyNodes = len(res.DirtyLast)

	// Cost model: searches pay a locked lookup; updates pay the full
	// update cost. Both run across the worker threads with the update
	// parallelism cap.
	cpu := t.opt.Machine.CPU
	p, searches := t.lookupProfile()
	searchCost := cpuPerQuery(cpu, t.opt.NodeSearch, searches, p, 0, 1, lockOverhead)
	updateCost := t.updatePerOpCost()
	nUpd := 0
	for _, op := range ops {
		if op.Kind != cpubtree.MixedSearch {
			nUpd++
		}
	}
	nSearch := len(ops) - nUpd
	speedup := float64(t.opt.Threads)
	if speedup > 2*updateMaxSpeedup {
		speedup = 2 * updateMaxSpeedup
	}
	host := vclock.Duration((float64(nSearch)*float64(searchCost) + float64(nUpd)*float64(updateCost)) / speedup)

	switch method {
	case Synchronized, SynchronizedMT:
		sync, _, err := t.syncDirtyNodes(cpubtree.BatchResult{DirtyLast: res.DirtyLast, UpperChanged: res.Structural > 0})
		if err != nil {
			return res, stats, err
		}
		stats.HostTime = vclock.Max(host, sync)
	default:
		if err := t.remirror(); err != nil {
			return res, stats, err
		}
		stats.HostTime = host
		stats.SyncTime = t.buildStats.ISegXfer
	}
	return res, stats, nil
}

// VerifyReplica cross-checks the device-resident I-segment replica
// against the host tree, returning an error describing the first
// divergence. Tests and the examples use it as a consistency audit after
// updates.
func (t *Tree[K]) VerifyReplica() error {
	switch t.opt.Variant {
	case Implicit:
		inner, _, _, _ := t.impl.InnerArray()
		dev := t.isegBuf.Data()
		if len(dev) != len(inner) {
			return fmt.Errorf("core: replica length %d != host %d", len(dev), len(inner))
		}
		for i := range inner {
			if dev[i] != inner[i] {
				return fmt.Errorf("core: replica diverges at element %d: %v != %v", i, dev[i], inner[i])
			}
		}
	case Regular:
		upper, last, _, _, _, _ := t.reg.InnerArrays()
		if t.upperBuf.Len() != len(upper) || t.lastBuf.Len() != len(last) {
			return fmt.Errorf("core: replica pool sizes diverge: %d/%d vs %d/%d",
				t.upperBuf.Len(), t.lastBuf.Len(), len(upper), len(last))
		}
		du, dl := t.upperBuf.Data(), t.lastBuf.Data()
		for i := range upper {
			if du[i] != upper[i] {
				return fmt.Errorf("core: upper replica diverges at element %d", i)
			}
		}
		for i := range last {
			if dl[i] != last[i] {
				return fmt.Errorf("core: last replica diverges at element %d", i)
			}
		}
	}
	return nil
}

// sortOps orders update operations by key; the paper's batch updates
// benefit from key-ordered application (fewer random node touches).
// Exposed for examples and the harness.
func SortOps[K keys.Key](ops []cpubtree.Op[K]) {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Key < ops[j].Key })
}

// UpdateGPUAssisted executes a batch of updates on the regular HB+-tree
// with GPU-side target resolution — the paper's first future-work
// direction (Section 7: "employing GPU cycles in support of parallel
// update query execution"). The update keys are shipped to the GPU,
// whose search kernel resolves every operation's target big leaf against
// the device-resident I-segment; the CPU then applies each leaf's
// operations as a group without re-descending the inner levels, and the
// I-segment is re-mirrored asynchronously.
//
// Operations are applied in key order (groups are contiguous because the
// big leaves partition the key space); splits triggered inside a group
// are resolved locally, so the pre-update leaf resolution stays valid.
func (t *Tree[K]) UpdateGPUAssisted(ops []cpubtree.Op[K]) (UpdateStats, error) {
	if t.opt.Variant != Regular {
		return UpdateStats{}, fmt.Errorf("core: UpdateGPUAssisted applies to the regular variant")
	}
	var stats UpdateStats
	stats.Ops = len(ops)
	if len(ops) == 0 {
		return stats, nil
	}
	sorted := append([]cpubtree.Op[K]{}, ops...)
	SortOps(sorted)

	// Step 1-3 of the hybrid search, applied to the update keys: H2D,
	// GPU traversal, D2H of the target leaves.
	n := len(sorted)
	qbuf, err := gpusim.Malloc[K](t.dev, n)
	if err != nil {
		return stats, fmt.Errorf("core: update key buffer: %w", err)
	}
	defer qbuf.Free()
	rbuf, err := gpusim.Malloc[int32](t.dev, 2*n)
	if err != nil {
		return stats, fmt.Errorf("core: update result buffer: %w", err)
	}
	defer rbuf.Free()
	keysOnly := make([]K, n)
	for i, op := range sorted {
		keysOnly[i] = op.Key
	}
	d1, err := qbuf.CopyFromHost(keysOnly)
	if err != nil {
		return stats, err
	}
	out := rbuf.Data()
	// A kernel fault here precedes any host mutation: the batch simply
	// fails and may be retried (or applied via the CPU-only methods).
	if _, err := gpusim.RegularSearchKernel(t.dev, t.upperBuf.Data(), t.lastBuf.Data(), t.regDesc,
		qbuf.Data()[:n], out[:n], out[n:2*n], 0, nil); err != nil {
		return stats, err
	}
	d2 := t.gpuStageDuration(n, t.regDesc.Height)
	leaves := make([]int32, n)
	if _, err := rbuf.CopyToHost(leaves); err != nil {
		return stats, err
	}
	d3 := t.dev.CopyDuration(int64(n) * 4)
	gpuPhase := d1 + d2 + d3

	// Apply per leaf group; sorted keys make same-leaf runs contiguous.
	for start := 0; start < n; {
		end := start + 1
		for end < n && leaves[end] == leaves[start] {
			end++
		}
		res := t.reg.ApplyOpsToLeaf(leaves[start], sorted[start:end])
		stats.Applied += res.Applied
		stats.NotFound += res.NotFound
		stats.Structural += res.Structural
		stats.DirtyNodes += len(res.DirtyLast)
		start = end
	}

	// Cost model: the CPU phase skips the per-op tree descent — only the
	// leaf shift, lock handshake and group bookkeeping remain.
	cpu := t.opt.Machine.CPU
	shiftBytes := float64(t.reg.LeafCapacity()) / 2 * float64(2*keys.Size[K]())
	perOp := lockOverhead + vclock.Duration(shiftBytes/(cpu.MemBWBytes/4)*1e9) +
		vclock.Duration(float64(model.AlgoCost(cpu, t.opt.NodeSearch)))
	speedup := float64(t.opt.Threads)
	if speedup > updateMaxSpeedup {
		speedup = updateMaxSpeedup
	}
	stats.HostTime = gpuPhase + vclock.Duration(float64(n)*float64(perOp)/speedup)

	if err := t.remirror(); err != nil {
		return stats, err
	}
	stats.SyncTime = t.buildStats.ISegXfer
	return stats, nil
}
