package core

import (
	"testing"

	"hbtree/internal/workload"
)

func TestRangeQueryBatchMatchesSingle(t *testing.T) {
	for _, v := range []Variant{Implicit, Regular} {
		pairs := workload.Dataset[uint64](workload.Uniform, 60000, 42)
		tr, err := Build(pairs, Options{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		for _, count := range []int{1, 8, 32} {
			rqs := workload.RangeQueries(pairs, 3000, count, uint64(count))
			starts := make([]uint64, len(rqs))
			for i, rq := range rqs {
				starts[i] = rq.Start
			}
			out, stats, err := tr.RangeQueryBatch(starts, count)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ThroughputQPS <= 0 || stats.Matches == 0 {
				t.Fatalf("%v: bad stats %+v", v, stats)
			}
			for i, rq := range rqs {
				want := tr.RangeQuery(rq.Start, count, nil)
				if len(out[i]) != len(want) {
					t.Fatalf("%v count %d: query %d returned %d, want %d", v, count, i, len(out[i]), len(want))
				}
				for j := range want {
					if out[i][j] != want[j] {
						t.Fatalf("%v count %d: query %d diverges at %d", v, count, i, j)
					}
				}
			}
		}
		tr.Close()
	}
}

// TestRangeQueryBatchUsesReplica corrupts the host I-segment: the hybrid
// range path must still resolve correctly from the device replica.
func TestRangeQueryBatchUsesReplica(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 30000, 7)
	tr, err := Build(pairs, Options{Variant: Implicit})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := tr.RangeQuery(pairs[100].Key, 8, nil)

	inner, _, _, _ := tr.impl.InnerArray()
	saved := append([]uint64(nil), inner...)
	for i := range inner {
		inner[i] = 0xBAD
	}
	out, _, err := tr.RangeQueryBatch([]uint64{pairs[100].Key}, 8)
	if err != nil {
		t.Fatal(err)
	}
	copy(inner, saved)
	if len(out[0]) != len(want) {
		t.Fatalf("replica range returned %d, want %d", len(out[0]), len(want))
	}
	for i := range want {
		if out[0][i] != want[i] {
			t.Fatalf("replica range diverges at %d", i)
		}
	}
}

func TestRangeQueryBatchEmpty(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1000, 1)
	tr, err := Build(pairs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	out, stats, err := tr.RangeQueryBatch(nil, 8)
	if err != nil || len(out) != 0 || stats.Queries != 0 {
		t.Fatal("empty batch mishandled")
	}
	// Past-the-end starts return empty results, not errors.
	out, _, err = tr.RangeQueryBatch([]uint64{pairs[len(pairs)-1].Key + 1}, 4)
	if err != nil || len(out[0]) != 0 {
		t.Fatalf("past-end range: %v %v", out, err)
	}
}
