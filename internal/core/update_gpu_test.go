package core

import (
	"sort"
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

func makeUpdateOps(pairs []keys.Pair[uint64], n int, deleteFrac float64, seed uint64) []cpubtree.Op[uint64] {
	wl := workload.UpdateBatch(pairs, n, deleteFrac, seed)
	ops := make([]cpubtree.Op[uint64], len(wl))
	for i, op := range wl {
		ops[i] = cpubtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
	}
	return ops
}

// TestUpdateGPUAssistedMatchesOracle verifies the GPU-assisted update
// path against a map oracle and against the conventional parallel path.
func TestUpdateGPUAssistedMatchesOracle(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 60000, 21)
	ops := makeUpdateOps(pairs, 12000, 0.3, 31)

	gpuT, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer gpuT.Close()
	refT, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer refT.Close()

	gst, err := gpuT.UpdateGPUAssisted(ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refT.Update(ops, AsyncParallel); err != nil {
		t.Fatal(err)
	}
	if gst.Applied == 0 || gst.HostTime <= 0 {
		t.Fatalf("bad stats: %+v", gst)
	}
	if err := gpuT.VerifyReplica(); err != nil {
		t.Fatalf("replica diverged: %v", err)
	}

	// Both trees must hold identical content.
	if gpuT.NumPairs() != refT.NumPairs() {
		t.Fatalf("pair counts diverge: %d vs %d", gpuT.NumPairs(), refT.NumPairs())
	}
	a := gpuT.RangeQuery(0, gpuT.NumPairs()+1, nil)
	b := refT.RangeQuery(0, refT.NumPairs()+1, nil)
	if len(a) != len(b) {
		t.Fatalf("content sizes diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("content diverges at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestUpdateGPUAssistedHeavySplits drives enough inserts through single
// leaves to force repeated local splits inside groups.
func TestUpdateGPUAssistedHeavySplits(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 2048, 5)
	tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 1.0}) // full leaves: every insert splits
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ops := makeUpdateOps(pairs, 8192, 0.0, 77)
	st, err := tr.UpdateGPUAssisted(ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.Structural == 0 {
		t.Fatal("no splits triggered")
	}
	oracle := make(map[uint64]uint64)
	for _, p := range pairs {
		oracle[p.Key] = p.Value
	}
	for _, op := range ops {
		oracle[op.Key] = op.Value
	}
	for k, v := range oracle {
		if got, ok := tr.Lookup(k); !ok || got != v {
			t.Fatalf("Lookup(%d) = (%d,%v), want %d", k, got, ok, v)
		}
	}
	if err := tr.VerifyReplica(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateGPUAssistedDeleteAll empties leaves through grouped deletes.
func TestUpdateGPUAssistedDeleteAll(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 4096, 9)
	tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ops := make([]cpubtree.Op[uint64], len(pairs))
	for i, p := range pairs {
		ops[i] = cpubtree.Op[uint64]{Key: p.Key, Delete: true}
	}
	st, err := tr.UpdateGPUAssisted(ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != len(pairs) || st.NotFound != 0 {
		t.Fatalf("stats %+v", st)
	}
	if tr.NumPairs() != 0 {
		t.Fatalf("%d pairs remain", tr.NumPairs())
	}
	for _, p := range pairs[:256] {
		if _, ok := tr.Lookup(p.Key); ok {
			t.Fatalf("deleted key %d still found", p.Key)
		}
	}
	if err := tr.VerifyReplica(); err != nil {
		t.Fatal(err)
	}
	// The tree must remain usable after total deletion.
	if _, err := tr.Update([]cpubtree.Op[uint64]{{Key: 42, Value: 43}}, AsyncSingle); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Lookup(42); !ok || v != 43 {
		t.Fatal("post-delete insert failed")
	}
}

// TestUpdateGPUAssistedFasterHostPhase: skipping the descent must make
// the modelled CPU phase cheaper than the conventional parallel path.
func TestUpdateGPUAssistedFasterHostPhase(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 300000, 13)
	ops := makeUpdateOps(pairs, 65536, 0.2, 17)

	a, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	gst, err := a.UpdateGPUAssisted(ops)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := b.Update(ops, AsyncParallel)
	if err != nil {
		t.Fatal(err)
	}
	if gst.HostTime >= cst.HostTime {
		t.Fatalf("GPU-assisted host phase %v not faster than conventional %v", gst.HostTime, cst.HostTime)
	}
}

// TestUpdateGPUAssistedQuick property-tests random batches against the
// sequential reference.
func TestUpdateGPUAssistedQuick(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		pairs := workload.Dataset[uint64](workload.Uniform, 3000, seed)
		ops := makeUpdateOps(pairs, 2000, 0.4, seed+100)
		a, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		bt, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.UpdateGPUAssisted(ops); err != nil {
			t.Fatal(err)
		}
		sorted := append([]cpubtree.Op[uint64]{}, ops...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		if _, err := bt.Update(sorted, AsyncSingle); err != nil {
			t.Fatal(err)
		}
		x := a.RangeQuery(0, a.NumPairs()+1, nil)
		y := bt.RangeQuery(0, bt.NumPairs()+1, nil)
		if len(x) != len(y) {
			t.Fatalf("seed %d: sizes diverge %d vs %d", seed, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("seed %d: diverges at %d", seed, i)
			}
		}
		a.Close()
		bt.Close()
	}
}
