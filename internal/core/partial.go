package core

import "hbtree/internal/vclock"

// LookupBatchPartialCPUInto resolves the queries entirely on the host
// while preserving the load-balanced plan's bucket structure: per
// bucket, the first R*M queries pre-walk D levels and the rest D+1 —
// exactly the split lookupBatchBalanced hands to the GPU — but the
// descent is *resumed on the CPU* instead of on the device. It never
// touches the simulated device (valid on a stale replica), which makes
// it the degraded-mode fallback for load-balanced servers: when the
// breaker over the GPU-sim opens, the serving layer keeps the balanced
// partial-descent shape so the cache-resident top levels are still
// walked in the pre-walk pass, and only the handed-off remainder moves
// from the GPU to the host.
//
// The result slices must hold at least len(queries) elements. The
// virtual cost per bucket is the pre-walk share plus a full-host
// traversal of the remaining levels; with no device in the loop the
// stages serialise, so SimTime is their sum rather than a pipelined
// makespan.
func (t *Tree[K]) LookupBatchPartialCPUInto(queries []K, values []K, found []bool) (stats SearchStats) {
	t.ensureBalanced()
	n := len(queries)
	stats.Queries = n
	m := t.opt.BucketSize
	stats.BucketSize = m
	if n == 0 {
		return stats
	}
	cpuDepth := Balance{D: t.lbD, R: t.lbR}.depth()
	h := t.Height()
	remaining := float64(h) - cpuDepth
	if remaining < 0 {
		remaining = 0
	}
	// The resumed inner levels run at the full-lookup per-level rate:
	// scale the full host traversal by the share of levels resumed.
	resumeFrac := 0.0
	if h > 0 {
		resumeFrac = remaining / float64(h)
	}

	buckets := 0
	for start := 0; start < n; start += m {
		end := start + m
		if end > n {
			end = n
		}
		bq := queries[start:end]
		bn := len(bq)
		rm := int(t.lbR * float64(bn))
		t.partialDescend(bq, rm, values[start:end], found[start:end])

		dPre := t.cpuPreStageDuration(bn, cpuDepth)
		dResume := vclock.Duration(float64(t.cpuFullLookupBatch(bn, 0)) * resumeFrac)
		dLeaf := t.cpuLeafStageDuration(bn)
		stats.SimTime += dPre + dResume + dLeaf
		buckets++
	}
	stats.Buckets = buckets
	if stats.SimTime > 0 {
		stats.ThroughputQPS = float64(n) / stats.SimTime.Seconds()
	}
	return stats
}

// partialDescend runs the balanced plan's three stages on the host for
// one bucket: pre-walk to depth D (first rm queries) or D+1 (the rest),
// resume the inner descent from the intermediate node, finish in the
// leaf line.
func (t *Tree[K]) partialDescend(bq []K, rm int, values []K, found []bool) {
	if t.impl != nil {
		for i, q := range bq {
			d := t.lbD
			if i >= rm {
				d++
			}
			idx := t.impl.WalkToLevel(q, d)
			l := t.impl.SearchInnerFrom(q, d, idx)
			values[i], found[i] = t.impl.SearchLeafLine(l, q)
		}
		return
	}
	h := t.reg.Height()
	for i, q := range bq {
		d := t.lbD
		if i >= rm {
			d++
		}
		stop := h - d
		if stop < 1 {
			stop = 1
		}
		idx := t.reg.WalkToHeight(q, stop)
		leaf, line := t.reg.SearchToLeafFrom(q, stop, idx)
		values[i], found[i] = t.reg.SearchLeafLine(leaf, line, q)
	}
}
