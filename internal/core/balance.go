package core

import (
	"fmt"

	"hbtree/internal/fault"
	"hbtree/internal/gpusim"
	"hbtree/internal/vclock"
)

// This file implements the load-balancing scheme of Section 5.5. On
// machines whose GPU-to-CPU power ratio is low (the paper's M2), sending
// every inner level to the GPU makes the GPU the bottleneck; instead the
// CPU pre-walks the top D levels — cheap, because the top of the tree is
// cache-resident — and hands (query, intermediate node) pairs to the
// GPU. For finer granularity a fraction R of each bucket stops at depth
// D while the rest stops at D+1, giving the effective CPU share
// depth = D + (1 - R). D and R are found by the discovery algorithm
// (Algorithm 1): a linear scan over D followed by a five-step binary
// refinement of R.

// Balance holds the load-balance parameters.
type Balance struct {
	D int     // inner levels pre-walked by the CPU
	R float64 // fraction of each bucket stopping at depth D (rest at D+1)
}

// depth returns the effective average CPU depth D + (1-R).
func (b Balance) depth() float64 { return float64(b.D) + (1 - b.R) }

// SetBalance fixes the load-balance parameters explicitly, bypassing
// discovery.
func (t *Tree[K]) SetBalance(b Balance) error {
	if b.D < 0 || b.D > t.maxD() || b.R < 0 || b.R > 1 {
		return fmt.Errorf("core: balance D=%d R=%.3f out of range (max D %d)", b.D, b.R, t.maxD())
	}
	t.lbD, t.lbR = b.D, b.R
	t.balanced = true
	return nil
}

// Balance returns the current parameters and whether they are set.
func (t *Tree[K]) Balance() (Balance, bool) {
	return Balance{D: t.lbD, R: t.lbR}, t.balanced
}

// maxD is the largest CPU pre-walk depth that still leaves the GPU at
// least one inner level for every query.
func (t *Tree[K]) maxD() int {
	h := t.Height()
	if h <= 1 {
		return 0
	}
	return h - 2
}

// sample models one bucket at the given parameters and returns the GPU
// and CPU busy times — the getSample probe of Algorithm 1 (which "runs
// the program for given D and R").
func (t *Tree[K]) sample(b Balance) (gpuTime, cpuTime vclock.Duration) {
	m := t.opt.BucketSize
	h := t.Height()
	cpuDepth := b.depth()
	gpuLevels := float64(h) - cpuDepth
	gpuTime = t.gpuStageDurationF(m, gpuLevels)
	cpuTime = t.cpuTopStageDuration(m, cpuDepth)
	return gpuTime, cpuTime
}

// gpuStageDurationF is gpuStageDuration with a fractional level count,
// as produced by the R split.
func (t *Tree[K]) gpuStageDurationF(n int, levels float64) vclock.Duration {
	if levels <= 0 {
		return 0
	}
	if t.opt.Variant == Regular {
		return t.dev.KernelDuration(n, levels, 3, t.warpThreads(), regularKernelDivergence)
	}
	return t.dev.KernelDuration(n, levels, 1, t.warpThreads(), 1)
}

// ensureBalanced resolves the load-balance parameters exactly once
// under balanceMu, so concurrent balanced lookups never race on the
// first-use discovery: the winner runs Algorithm 1, everyone else
// blocks until the parameters are published and then reads them through
// the mutex's happens-before edge.
func (t *Tree[K]) ensureBalanced() {
	t.balanceMu.Lock()
	if !t.balanced {
		t.Discover()
	}
	t.balanceMu.Unlock()
}

// Discover runs Algorithm 1: starting from D=0, R=1 (maximum GPU load),
// it increases D — the coarse parameter — while the GPU remains the
// bottleneck, then refines the fine parameter R by binary search for
// steps 2..5, moving work towards whichever processor is idle. When the
// D scan overshoots (the CPU becomes the bottleneck at depth D),
// refinement brackets the crossover inside [D-1, D], since R
// interpolates the effective depth between D and D+1. The found
// parameters are stored on the tree and returned.
func (t *Tree[K]) Discover() Balance {
	b := Balance{D: 0, R: 1}
	gpuT, cpuT := t.sample(b)
	if gpuT <= cpuT {
		// The CPU is the bottleneck even with the whole inner traversal
		// on the GPU: keep the maximum GPU share.
		t.lbD, t.lbR = b.D, b.R
		t.balanced = true
		return b
	}
	for gpuT > cpuT && b.D < t.maxD() {
		b.D++
		gpuT, cpuT = t.sample(b)
	}
	if gpuT <= cpuT && b.D > 0 {
		// Overshot: the optimum lies between depth D-1 and D.
		b.D--
	}
	b.R = 0.5
	for step := 2; step <= 5; step++ {
		gpuT, cpuT = t.sample(b)
		if gpuT > cpuT {
			// GPU still the bottleneck: shift work to the CPU (deeper
			// effective depth D + (1-R), i.e. smaller R).
			b.R -= 1 / float64(int(1)<<step)
		} else {
			b.R += 1 / float64(int(1)<<step)
		}
	}
	t.lbD, t.lbR = b.D, b.R
	t.balanced = true
	return b
}

// lookupBatchBalanced is the load-balanced heterogeneous search: per
// bucket, the CPU pre-walks D levels for the first R*M queries and D+1
// levels for the rest, the GPU resumes from the intermediate nodes, and
// the CPU finishes in the leaves. Three buckets run concurrently so the
// GPU can schedule the next kernel while the current one executes
// (Section 5.5).
func (t *Tree[K]) lookupBatchBalanced(queries []K) (values []K, found []bool, stats SearchStats, err error) {
	t.ensureBalanced()
	n := len(queries)
	values = make([]K, n)
	found = make([]bool, n)
	if n == 0 {
		return values, found, stats, nil
	}
	if t.replicaStale.Load() {
		return nil, nil, stats, fault.ErrReplicaStale
	}
	m := t.opt.BucketSize
	stats.BucketSize = m
	stats.Queries = n

	qbuf, err := gpusim.Malloc[K](t.dev, m)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("core: allocating query buffer: %w", err)
	}
	defer qbuf.Free()
	sbuf, err := gpusim.Malloc[int32](t.dev, m) // intermediate start nodes
	if err != nil {
		return nil, nil, stats, fmt.Errorf("core: allocating start buffer: %w", err)
	}
	defer sbuf.Free()
	rbuf, err := gpusim.Malloc[int32](t.dev, 2*m)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("core: allocating result buffer: %w", err)
	}
	defer rbuf.Free()

	nbuf := t.numBuffers()
	tl := vclock.NewTimeline()
	if t.traceOn.Load() {
		tl.SetTrace(true)
		t.setLastTrace(tl)
	}
	d2hEnd := make(map[int]vclock.Duration)
	preStart := make(map[int]vclock.Duration)
	var lats []vclock.Duration
	buckets := 0
	cpuDepth := Balance{D: t.lbD, R: t.lbR}.depth()

	// The leaf stage of bucket i is scheduled after the pre-walk of
	// bucket i+1: while the GPU traverses bucket i's inner levels the
	// CPU is already pre-walking the next bucket (the overlap structure
	// of Section 5.5). pendingLeaf carries the deferred stage.
	type leafStage struct {
		stream int
		dur    vclock.Duration
	}
	var pending *leafStage
	scheduleLeaf := func(ls leafStage) {
		_, cEnd := tl.Schedule(ls.stream, vclock.ResCPU, "leaf", ls.dur)
		lats = append(lats, cEnd-preStart[ls.stream])
	}

	for start := 0; start < n; start += m {
		end := start + m
		if end > n {
			end = n
		}
		bq := queries[start:end]
		bn := len(bq)
		rm := int(t.lbR * float64(bn))
		stream := buckets
		if prev, ok := d2hEnd[buckets-nbuf]; ok {
			tl.AdvanceStream(stream, prev)
		}

		// CPU pre-walk of the top levels (step 0 of the balanced plan).
		starts := make([]int32, bn)
		t.preWalk(bq, starts, rm)
		dPre := t.cpuPreStageDuration(bn, cpuDepth)
		ps, _ := tl.Schedule(stream, vclock.ResCPU, "pre-walk", dPre)
		preStart[stream] = ps

		// H2D: queries plus intermediate node indices.
		d1a, err := t.copyQueriesToDevice(qbuf, bq)
		if err != nil {
			return nil, nil, stats, err
		}
		if _, err := sbuf.CopyFromHost(starts); err != nil {
			return nil, nil, stats, err
		}
		d1 := d1a + t.dev.CopyDuration(int64(bn)*4) - t.dev.Config().TInit // one batched transfer, one T_init
		tl.Schedule(stream, vclock.ResPCIeH2D, "H2D", d1)

		// GPU resumes the traversal from the intermediate nodes. With
		// three buckets in flight the successor kernel is pre-submitted
		// while the current one runs, so the launch overhead K_init is
		// scheduled concurrently with execution and leaves the GPU
		// station (Section 5.5's bucket-handling change).
		d2, err := t.runKernelFrom(qbuf, sbuf, rbuf, bn, rm)
		if err != nil {
			return nil, nil, stats, err
		}
		if d2 > t.dev.Config().KInit {
			d2 -= t.dev.Config().KInit
		}
		tl.Schedule(stream, vclock.ResGPU, "kernel", d2)

		// D2H of the leaf references.
		d3 := t.dev.CopyDuration(int64(bn) * t.resultSize())
		_, dEnd := tl.Schedule(stream, vclock.ResPCIeD2H, "D2H", d3)
		d2hEnd[buckets] = dEnd

		// CPU leaf search: functionally completed now (the staging
		// buffer is reused next bucket), temporally deferred behind the
		// next bucket's pre-walk.
		d4 := t.cpuLeafStageDuration(bn)
		if err := t.finishOnCPU(rbuf, bq, values[start:end], found[start:end]); err != nil {
			return nil, nil, stats, err
		}
		if pending != nil {
			scheduleLeaf(*pending)
		}
		pending = &leafStage{stream: stream, dur: d4}
		buckets++
	}
	if pending != nil {
		scheduleLeaf(*pending)
	}
	stats.Buckets = buckets
	stats.setLatencies(lats)
	stats.finalize(tl)
	return values, found, stats, nil
}

// preWalk computes the intermediate node per query: depth D for the
// first rm queries, depth D+1 for the rest.
func (t *Tree[K]) preWalk(bq []K, starts []int32, rm int) {
	if t.impl != nil {
		for i, q := range bq {
			d := t.lbD
			if i >= rm {
				d++
			}
			starts[i] = int32(t.impl.WalkToLevel(q, d))
		}
		return
	}
	h := t.reg.Height()
	for i, q := range bq {
		d := t.lbD
		if i >= rm {
			d++
		}
		stop := h - d
		if stop < 1 {
			stop = 1
		}
		starts[i] = t.reg.WalkToHeight(q, stop)
	}
}

// runKernelFrom launches the resumed traversal: one kernel invocation
// per depth class, matching the two-part bucket of Section 5.5. An
// injected kernel fault on either invocation fails the whole bucket.
func (t *Tree[K]) runKernelFrom(qbuf *gpusim.Buffer[K], sbuf, rbuf *gpusim.Buffer[int32], bn, rm int) (vclock.Duration, error) {
	qs := qbuf.Data()[:bn]
	ss := sbuf.Data()[:bn]
	h := t.Height()
	levelsA := float64(h - t.lbD)
	levelsB := float64(h - t.lbD - 1)
	frac := float64(rm) / float64(bn)
	avgLevels := frac*levelsA + (1-frac)*levelsB

	if t.opt.Variant == Implicit {
		out := rbuf.Data()
		if rm > 0 {
			if _, err := gpusim.ImplicitSearchKernel(t.dev, t.isegBuf.Data(), t.implDesc, qs[:rm], out[:rm], t.lbD, ss[:rm]); err != nil {
				return 0, err
			}
		}
		if bn > rm {
			if _, err := gpusim.ImplicitSearchKernel(t.dev, t.isegBuf.Data(), t.implDesc, qs[rm:bn], out[rm:bn], t.lbD+1, ss[rm:bn]); err != nil {
				return 0, err
			}
		}
		return t.gpuStageDurationF(bn, avgLevels), nil
	}
	out := rbuf.Data()
	hA := h - t.lbD
	hB := h - t.lbD - 1
	if hB < 1 {
		hB = 1
	}
	if rm > 0 {
		if _, err := gpusim.RegularSearchKernel(t.dev, t.upperBuf.Data(), t.lastBuf.Data(), t.regDesc,
			qs[:rm], out[:rm], out[bn:bn+rm], hA, ss[:rm]); err != nil {
			return 0, err
		}
	}
	if bn > rm {
		if _, err := gpusim.RegularSearchKernel(t.dev, t.upperBuf.Data(), t.lastBuf.Data(), t.regDesc,
			qs[rm:bn], out[rm:bn], out[bn+rm:2*bn], hB, ss[rm:bn]); err != nil {
			return 0, err
		}
	}
	return t.gpuStageDurationF(bn, avgLevels), nil
}

// cpuPreStageDuration models the CPU pre-walk of the top levels alone
// (the leaf stage is charged separately).
func (t *Tree[K]) cpuPreStageDuration(n int, depth float64) vclock.Duration {
	cpu := t.opt.Machine.CPU
	top, searches := t.topLevelsProfile(depth)
	pq := cpuPerQuery(cpu, t.opt.NodeSearch, searches, top, 0, t.opt.PipelineDepth, 0)
	// The common dispatch overhead is charged once, in the leaf stage.
	pq -= cpu.CostQuerycommon
	if pq < 0 {
		pq = 0
	}
	return cpuBatchDuration(cpu, n, pq, top.Miss*float64(64), t.opt.Threads)
}

// SampleBalance exposes the discovery probe (the GPU and CPU bucket
// times at the given parameters) for benchmarks and tests.
func (t *Tree[K]) SampleBalance(b Balance) (gpuTime, cpuTime vclock.Duration) {
	return t.sample(b)
}
