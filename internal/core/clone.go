package core

import (
	"fmt"

	"hbtree/internal/keys"
)

// Snapshot support for the serving layer's RCU-style reader/writer
// split (DESIGN §5): a batch update clones the published tree, mutates
// the clone, and atomically swaps it in, so in-flight readers keep
// traversing the old version untouched. Clones share the simulated GPU
// device — the deployment reality the paper envisions, where one card
// hosts every index — but carry their own device-resident I-segment
// replica, so the clone's re-mirroring shows up in the device H2D
// counters exactly like the asynchronous I-segment shipping of §5.6.

// Clone returns an independent deep copy of the tree on the same
// simulated device. The copy has its own host segments (see
// cpubtree.Clone) and its own device-resident I-segment replica;
// updates applied to one tree are invisible to the other. Clone counts
// as a read of t: it may run concurrently with lookups but not with
// mutations of t.
func (t *Tree[K]) Clone() (*Tree[K], error) {
	c := &Tree[K]{
		opt:              t.opt,
		dev:              t.dev,
		balanced:         t.balanced,
		lbD:              t.lbD,
		lbR:              t.lbR,
		leafMissOverride: t.leafMissOverride,
		buildStats:       t.buildStats,
		scratch:          make(chan *searchScratch[K], scratchPoolCap),
	}
	if t.impl != nil {
		c.impl = t.impl.Clone()
	}
	if t.reg != nil {
		c.reg = t.reg.Clone()
	}
	if err := c.mirrorISegment(); err != nil {
		return nil, err
	}
	return c, nil
}

// Rebuilt builds a fresh implicit tree from the sorted pairs on t's
// device, carrying over t's configuration (including discovered
// load-balance parameters), and returns it with rebuild-shaped stats.
// It is the snapshot counterpart of Rebuild: t itself is not modified,
// so readers of t proceed undisturbed while the replacement is
// constructed.
func (t *Tree[K]) Rebuilt(pairs []keys.Pair[K]) (*Tree[K], UpdateStats, error) {
	if t.opt.Variant != Implicit {
		return nil, UpdateStats{}, fmt.Errorf("core: Rebuilt applies to the implicit variant; use Clone+Update")
	}
	opt := t.opt
	opt.Device = t.dev
	nt, err := Build(pairs, opt)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	nt.balanced, nt.lbD, nt.lbR = t.balanced, t.lbD, t.lbR
	nt.leafMissOverride = t.leafMissOverride
	stats := UpdateStats{
		Ops:       len(pairs),
		Applied:   len(pairs),
		LSegBuild: nt.buildStats.LSegBuild,
		ISegBuild: nt.buildStats.ISegBuild,
		SyncTime:  nt.buildStats.ISegXfer,
	}
	return nt, stats, nil
}
