package core

import (
	"testing"
	"testing/quick"

	"hbtree/internal/cpubtree"
	"hbtree/internal/workload"
)

// TestHybridQuickOracle property-tests the whole hybrid search stack on
// arbitrary seeds, variants and bucket sizes against a map oracle.
func TestHybridQuickOracle(t *testing.T) {
	f := func(seed uint64, variantRaw, bucketRaw uint8, nRaw uint16) bool {
		variant := Variant(int(variantRaw) % 2)
		bucket := 64 << (bucketRaw % 6) // 64..2048
		n := int(nRaw)%20000 + 64
		pairs := workload.Dataset[uint64](workload.Uniform, n, seed)
		tr, err := Build(pairs, Options{Variant: variant, BucketSize: bucket})
		if err != nil {
			return false
		}
		defer tr.Close()
		oracle := make(map[uint64]uint64, n)
		for _, p := range pairs {
			oracle[p.Key] = p.Value
		}
		r := workload.NewRNG(seed ^ 0xBEEF)
		qs := make([]uint64, 512)
		for i := range qs {
			if i%2 == 0 {
				qs[i] = pairs[r.Intn(n)].Key
			} else {
				qs[i] = r.Uint64()
				if qs[i] == ^uint64(0) {
					qs[i]--
				}
			}
		}
		vals, fnd, _, err := tr.LookupBatch(qs)
		if err != nil {
			return false
		}
		for i, q := range qs {
			wv, wok := oracle[q]
			if fnd[i] != wok || (wok && vals[i] != wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateQuickOracle property-tests random update batches across all
// methods against a map oracle, with the replica audited each round.
func TestUpdateQuickOracle(t *testing.T) {
	f := func(seed uint64, methodRaw uint8) bool {
		method := UpdateMethod(int(methodRaw) % 4)
		pairs := workload.Dataset[uint64](workload.Uniform, 4000, seed)
		tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.7})
		if err != nil {
			return false
		}
		defer tr.Close()
		oracle := make(map[uint64]uint64)
		for _, p := range pairs {
			oracle[p.Key] = p.Value
		}
		wl := workload.UpdateBatch(pairs, 1500, 0.35, seed+1)
		ops := make([]cpubtree.Op[uint64], len(wl))
		for i, op := range wl {
			ops[i] = cpubtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
			if op.Delete {
				delete(oracle, op.Pair.Key)
			} else {
				oracle[op.Pair.Key] = op.Pair.Value
			}
		}
		if _, err := tr.Update(ops, method); err != nil {
			return false
		}
		if err := tr.VerifyReplica(); err != nil {
			return false
		}
		if tr.NumPairs() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got, ok := tr.Lookup(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
