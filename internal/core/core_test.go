package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hbtree/internal/cpubtree"
	"hbtree/internal/gpusim"
	"hbtree/internal/keys"
	"hbtree/internal/platform"
	"hbtree/internal/vclock"
	"hbtree/internal/workload"
)

func build64(t testing.TB, n int, opt Options) (*Tree[uint64], []keys.Pair[uint64]) {
	t.Helper()
	pairs := workload.Dataset[uint64](workload.Uniform, n, 42)
	tr, err := Build(pairs, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(tr.Close)
	return tr, pairs
}

func checkBatch(t *testing.T, tr *Tree[uint64], qs []uint64, vals []uint64, fnd []bool) {
	t.Helper()
	for i, q := range qs {
		if !fnd[i] || vals[i] != workload.ValueFor(q) {
			t.Fatalf("query %d (key %d): got (%d,%v), want (%d,true)", i, q, vals[i], fnd[i], workload.ValueFor(q))
		}
	}
}

func TestHybridLookupImplicit(t *testing.T) {
	tr, pairs := build64(t, 50000, Options{Variant: Implicit})
	qs := workload.SearchInput(pairs, 40000, 3)
	vals, fnd, stats, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, tr, qs, vals, fnd)
	if stats.Buckets != (len(qs)+stats.BucketSize-1)/stats.BucketSize {
		t.Fatalf("buckets = %d", stats.Buckets)
	}
	if stats.ThroughputQPS <= 0 || stats.SimTime <= 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
}

func TestHybridLookupRegular(t *testing.T) {
	tr, pairs := build64(t, 80000, Options{Variant: Regular})
	qs := workload.SearchInput(pairs, 50000, 5)
	vals, fnd, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, tr, qs, vals, fnd)
}

func TestHybridLookup32(t *testing.T) {
	pairs := workload.Dataset[uint32](workload.Uniform, 40000, 7)
	for _, v := range []Variant{Implicit, Regular} {
		tr, err := Build(pairs, Options{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		qs := workload.SearchInput(pairs, 20000, 9)
		vals, fnd, _, err := tr.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			if !fnd[i] || vals[i] != workload.ValueFor(q) {
				t.Fatalf("%v: query %d wrong", v, i)
			}
		}
		tr.Close()
	}
}

func TestHybridMissingKeys(t *testing.T) {
	tr, pairs := build64(t, 20000, Options{Variant: Implicit})
	present := make(map[uint64]bool)
	for _, p := range pairs {
		present[p.Key] = true
	}
	r := workload.NewRNG(77)
	qs := make([]uint64, 10000)
	for i := range qs {
		qs[i] = r.Uint64()
		if qs[i] == keys.Max[uint64]() {
			qs[i]--
		}
	}
	_, fnd, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if fnd[i] != present[q] {
			t.Fatalf("query %d (key %d): found=%v, want %v", i, q, fnd[i], present[q])
		}
	}
}

// TestGPUReadsReplica corrupts the host I-segment after Build and checks
// that hybrid lookups still succeed — proving the kernel traverses the
// device-resident replica, not host memory.
func TestGPUReadsReplica(t *testing.T) {
	tr, pairs := build64(t, 30000, Options{Variant: Implicit})
	inner, _, _, _ := tr.impl.InnerArray()
	saved := append([]uint64(nil), inner...)
	for i := range inner {
		inner[i] = 0xDEAD
	}
	qs := workload.SearchInput(pairs, DefaultBucketSize, 1)
	vals, fnd, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, tr, qs, vals, fnd)
	copy(inner, saved)
}

func TestStrategyOrdering(t *testing.T) {
	// Double-buffered >= pipelined >= sequential throughput (Figure 10);
	// sequential latency is the lowest.
	pairs := workload.Dataset[uint64](workload.Uniform, 200000, 4)
	qs := workload.SearchInput(pairs, 20*DefaultBucketSize, 2)
	var thr [3]float64
	var lat [3]vclock.Duration
	for i, s := range []Strategy{Sequential, Pipelined, DoubleBuffered} {
		tr, err := Build(pairs, Options{Variant: Implicit, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		vals, fnd, stats, err := tr.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		checkBatch(t, tr, qs, vals, fnd)
		thr[i] = stats.ThroughputQPS
		lat[i] = stats.AvgLatency
		tr.Close()
	}
	if !(thr[2] >= thr[1] && thr[1] >= thr[0]) {
		t.Fatalf("strategy throughput not monotone: %v", thr)
	}
	if thr[2] < 1.5*thr[0] {
		t.Fatalf("double buffering gain too small: %v vs %v", thr[2], thr[0])
	}
	if lat[0] > lat[2] {
		t.Fatalf("sequential latency %v should not exceed double-buffered %v", lat[0], lat[2])
	}
}

func TestPipelineAlgebra(t *testing.T) {
	// The double-buffered steady-state bucket period must approach
	// max(T2, T4) and the sequential period T1+T2+T3+T4 (Section 5.4).
	pairs := workload.Dataset[uint64](workload.Uniform, 300000, 9)
	qs := workload.SearchInput(pairs, 40*DefaultBucketSize, 3)

	seqTr, err := Build(pairs, Options{Variant: Implicit, Strategy: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	defer seqTr.Close()
	_, _, seqStats, err := seqTr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := seqStats.T1 + seqStats.T2 + seqStats.T3 + seqStats.T4
	gotSeq := seqStats.SimTime / vclock.Duration(seqStats.Buckets)
	if ratio := float64(gotSeq) / float64(wantSeq); ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("sequential period %v, want %v", gotSeq, wantSeq)
	}

	dbTr, err := Build(pairs, Options{Variant: Implicit, Strategy: DoubleBuffered})
	if err != nil {
		t.Fatal(err)
	}
	defer dbTr.Close()
	_, _, dbStats, err := dbTr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	want := vclock.Max(dbStats.T2, dbStats.T4)
	got := dbStats.SimTime / vclock.Duration(dbStats.Buckets)
	if ratio := float64(got) / float64(want); ratio < 0.95 || ratio > 1.15 {
		t.Fatalf("double-buffered period %v, want ~max(T2,T4)=%v", got, want)
	}
}

func TestLoadBalancedLookup(t *testing.T) {
	for _, v := range []Variant{Implicit, Regular} {
		pairs := workload.Dataset[uint64](workload.Uniform, 150000, 8)
		tr, err := Build(pairs, Options{Variant: v, Machine: platform.M2(), LoadBalance: true})
		if err != nil {
			t.Fatal(err)
		}
		b := tr.Discover()
		if b.R < 0 || b.R > 1 || b.D < 0 || b.D > tr.maxD() {
			t.Fatalf("%v: discovery out of range: %+v", v, b)
		}
		qs := workload.SearchInput(pairs, 5*DefaultBucketSize, 6)
		vals, fnd, stats, err := tr.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			if !fnd[i] || vals[i] != workload.ValueFor(q) {
				t.Fatalf("%v: LB query %d (key %d) wrong: (%d,%v)", v, i, q, vals[i], fnd[i])
			}
		}
		if stats.ThroughputQPS <= 0 {
			t.Fatalf("%v: no throughput", v)
		}
		tr.Close()
	}
}

func TestLoadBalanceExplicitParams(t *testing.T) {
	tr, pairs := build64(t, 150000, Options{Variant: Implicit, LoadBalance: true})
	for _, b := range []Balance{{D: 0, R: 1}, {D: 1, R: 0.5}, {D: tr.maxD(), R: 0.25}} {
		if err := tr.SetBalance(b); err != nil {
			t.Fatal(err)
		}
		qs := workload.SearchInput(pairs, DefaultBucketSize, 11)
		vals, fnd, _, err := tr.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		checkBatch(t, tr, qs, vals, fnd)
	}
	if err := tr.SetBalance(Balance{D: 99, R: 0.5}); err == nil {
		t.Fatal("out-of-range balance accepted")
	}
}

func TestDiscoveryNearOptimal(t *testing.T) {
	// Algorithm 1's result must be within 15% of the best (D, R) found
	// by exhaustive sweep of the cost model.
	pairs := workload.Dataset[uint64](workload.Uniform, 400000, 10)
	tr, err := Build(pairs, Options{Variant: Implicit, Machine: platform.M2(), LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	b := tr.Discover()
	cost := func(b Balance) vclock.Duration {
		g, c := tr.sample(b)
		return vclock.Max(g, c)
	}
	found := cost(b)
	best := found
	for d := 0; d <= tr.maxD(); d++ {
		for r := 0.0; r <= 1.0; r += 0.05 {
			if c := cost(Balance{D: d, R: r}); c < best {
				best = c
			}
		}
	}
	if float64(found) > 1.15*float64(best) {
		t.Fatalf("discovery cost %v more than 15%% above optimal %v (params %+v)", found, best, b)
	}
}

func TestCPUOnlyLookup(t *testing.T) {
	tr, pairs := build64(t, 60000, Options{Variant: Implicit})
	qs := workload.SearchInput(pairs, 30000, 13)
	vals, fnd, stats := tr.LookupBatchCPU(qs)
	checkBatch(t, tr, qs, vals, fnd)
	if stats.ThroughputQPS <= 0 {
		t.Fatal("no CPU-only throughput")
	}
}

func TestImplicitRebuildUpdatesReplica(t *testing.T) {
	tr, _ := build64(t, 30000, Options{Variant: Implicit})
	pairs2 := workload.Dataset[uint64](workload.Uniform, 45000, 99)
	st, err := tr.Rebuild(pairs2)
	if err != nil {
		t.Fatal(err)
	}
	if st.LSegBuild <= 0 || st.ISegBuild <= 0 || st.SyncTime <= 0 {
		t.Fatalf("rebuild phases missing: %+v", st)
	}
	if err := tr.VerifyReplica(); err != nil {
		t.Fatal(err)
	}
	qs := workload.SearchInput(pairs2, DefaultBucketSize, 15)
	vals, fnd, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, tr, qs, vals, fnd)
}

func TestRegularUpdateMethodsKeepReplicaExact(t *testing.T) {
	for _, method := range []UpdateMethod{AsyncParallel, AsyncSingle, Synchronized, SynchronizedMT} {
		pairs := workload.Dataset[uint64](workload.Uniform, 60000, 21)
		tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		wl := workload.UpdateBatch(pairs, 8000, 0.3, 31)
		ops := make([]cpubtree.Op[uint64], len(wl))
		for i, op := range wl {
			ops[i] = cpubtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value, Delete: op.Delete}
		}
		st, err := tr.Update(ops, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if st.Applied == 0 {
			t.Fatalf("%v: nothing applied", method)
		}
		if err := tr.VerifyReplica(); err != nil {
			t.Fatalf("%v: replica diverged: %v", method, err)
		}
		// Post-update hybrid lookups must see the new state.
		var hit, missed int
		qs := make([]uint64, 0, len(ops))
		for _, op := range ops {
			qs = append(qs, op.Key)
		}
		vals, fnd, _, err := tr.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range ops {
			if op.Delete {
				if fnd[i] {
					missed++
				}
				continue
			}
			if !fnd[i] || vals[i] != op.Value {
				t.Fatalf("%v: inserted key %d not visible after update", method, op.Key)
			}
			hit++
		}
		if missed > 0 {
			t.Fatalf("%v: %d deleted keys still visible", method, missed)
		}
		if hit == 0 {
			t.Fatalf("%v: no inserts verified", method)
		}
		tr.Close()
	}
}

func TestUpdateCrossoverDirection(t *testing.T) {
	// Synchronized must beat asynchronous for small batches and lose for
	// large ones (Figure 14).
	pairs := workload.Dataset[uint64](workload.Uniform, 500000, 5)
	mkops := func(n int, seed uint64) []cpubtree.Op[uint64] {
		wl := workload.UpdateBatch(pairs, n, 0.0, seed)
		ops := make([]cpubtree.Op[uint64], len(wl))
		for i, op := range wl {
			ops[i] = cpubtree.Op[uint64]{Key: op.Pair.Key, Value: op.Pair.Value}
		}
		return ops
	}
	timeFor := func(method UpdateMethod, n int, seed uint64) vclock.Duration {
		tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		st, err := tr.Update(mkops(n, seed), method)
		if err != nil {
			t.Fatal(err)
		}
		return st.Total()
	}
	// Thresholds scale with the tree's I-segment size; at this tree size
	// (500K pairs, ~3 MiB I-segment) the crossover sits well between
	// these two batch sizes.
	small := 512
	large := 262144
	if s, a := timeFor(Synchronized, small, 1), timeFor(AsyncParallel, small, 1); s >= a {
		t.Fatalf("small batch: sync %v should beat async %v", s, a)
	}
	if s, a := timeFor(Synchronized, large, 2), timeFor(AsyncParallel, large, 2); s <= a {
		t.Fatalf("large batch: async %v should beat sync %v", a, s)
	}
}

func TestMixedBatchHybrid(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 3)
	tr, err := Build(pairs, Options{Variant: Regular, LeafFill: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	r := workload.NewRNG(17)
	ops := make([]cpubtree.MixedOp[uint64], 6000)
	for i := range ops {
		if r.Intn(2) == 0 {
			ops[i] = cpubtree.MixedOp[uint64]{Kind: cpubtree.MixedSearch, Key: pairs[r.Intn(len(pairs))].Key}
		} else {
			k := r.Uint64()
			if k == keys.Max[uint64]() {
				k--
			}
			ops[i] = cpubtree.MixedOp[uint64]{Kind: cpubtree.MixedInsert, Key: k, Value: workload.ValueFor(k)}
		}
	}
	res, st, err := tr.MixedBatch(ops, Synchronized)
	if err != nil {
		t.Fatal(err)
	}
	if st.HostTime <= 0 {
		t.Fatal("no host time")
	}
	for i, op := range ops {
		if op.Kind == cpubtree.MixedSearch && (!res.Found[i] || res.Values[i] != workload.ValueFor(op.Key)) {
			t.Fatalf("mixed search %d failed", i)
		}
	}
	if err := tr.VerifyReplica(); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceOOM(t *testing.T) {
	// Shrink the device memory so the I-segment cannot fit.
	m := platform.M1()
	m.GPU.MemBytes = 1 << 10
	pairs := workload.Dataset[uint64](workload.Uniform, 100000, 1)
	_, err := Build(pairs, Options{Variant: Implicit, Machine: m})
	if err == nil {
		t.Fatal("build succeeded with 1 KiB of device memory")
	}
	if !errors.Is(err, gpusim.ErrOutOfMemory) {
		t.Fatalf("error %v does not wrap ErrOutOfMemory", err)
	}
}

func TestBucketBufferOOM(t *testing.T) {
	// Device fits the I-segment but not the staging buffers.
	m := platform.M1()
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 2)
	tr0, err := Build(pairs, Options{Variant: Implicit, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	iseg := tr0.BuildStats().ISegBytes
	tr0.Close()
	m.GPU.MemBytes = iseg + 1024 // room for the I-segment, not the buffers
	tr, err := Build(pairs, Options{Variant: Implicit, Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	qs := workload.SearchInput(pairs, DefaultBucketSize, 1)
	if _, _, _, err := tr.LookupBatch(qs); err == nil {
		t.Fatal("LookupBatch succeeded without buffer memory")
	}
}

func TestHybridVsCPUConsistency(t *testing.T) {
	// The hybrid path and the pure-CPU path must agree bit-for-bit.
	tr, pairs := build64(t, 70000, Options{Variant: Regular})
	qs := workload.SearchInput(pairs, 2*DefaultBucketSize, 19)
	hv, hf, _, err := tr.LookupBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	cv, cf, _ := tr.LookupBatchCPU(qs)
	for i := range qs {
		if hv[i] != cv[i] || hf[i] != cf[i] {
			t.Fatalf("hybrid and CPU paths diverge at %d", i)
		}
	}
}

func TestRangeQueryHybrid(t *testing.T) {
	tr, pairs := build64(t, 30000, Options{Variant: Regular})
	out := tr.RangeQuery(pairs[100].Key, 20, nil)
	if len(out) != 20 {
		t.Fatalf("range returned %d", len(out))
	}
	for j, p := range out {
		if p != pairs[100+j] {
			t.Fatalf("range[%d] = %+v, want %+v", j, p, pairs[100+j])
		}
	}
}

func TestBuildStatsAndSpace(t *testing.T) {
	tr, _ := build64(t, 100000, Options{Variant: Implicit})
	bs := tr.BuildStats()
	if bs.ISegBytes <= 0 || bs.LSegBytes <= 0 {
		t.Fatalf("missing segment sizes: %+v", bs)
	}
	if bs.Total() <= 0 {
		t.Fatal("zero build time")
	}
	// I-segment transfer must be a small fraction of the rebuild (the
	// paper reports 3-7%).
	frac := float64(bs.ISegXfer) / float64(bs.Total())
	if frac <= 0 || frac > 0.25 {
		t.Fatalf("I-segment transfer fraction %.3f out of plausible range", frac)
	}
}

func TestVariantErrors(t *testing.T) {
	trImpl, _ := build64(t, 1000, Options{Variant: Implicit})
	if _, err := trImpl.Update(nil, AsyncParallel); err == nil {
		t.Fatal("Update on implicit variant accepted")
	}
	trReg, pairs := build64(t, 1000, Options{Variant: Regular})
	if _, err := trReg.Rebuild(pairs); err == nil {
		t.Fatal("Rebuild on regular variant accepted")
	}
}

func TestEmptyBatch(t *testing.T) {
	tr, _ := build64(t, 1000, Options{Variant: Implicit})
	vals, fnd, stats, err := tr.LookupBatch(nil)
	if err != nil || len(vals) != 0 || len(fnd) != 0 || stats.Queries != 0 {
		t.Fatalf("empty batch mishandled: %v %v %v %v", vals, fnd, stats, err)
	}
}

func TestSharedDevice(t *testing.T) {
	// Several indexes on one card share (and exhaust) its memory.
	dev := gpusim.New(platform.M1().GPU)
	pairs := workload.Dataset[uint64](workload.Uniform, 50000, 1)
	t1, err := Build(pairs, Options{Variant: Implicit, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	t2, err := Build(pairs, Options{Variant: Regular, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer t2.Close()
	if t1.Device() != dev || t2.Device() != dev {
		t.Fatal("trees not sharing the device")
	}
	used := dev.MemUsed()
	if used < t1.BuildStats().ISegBytes+t2.BuildStats().ISegBytes {
		t.Fatalf("device usage %d below combined I-segments", used)
	}
	// Both serve lookups concurrently against the same card.
	qs := workload.SearchInput(pairs, DefaultBucketSize, 2)
	for _, tr := range []*Tree[uint64]{t1, t2} {
		vals, fnd, _, err := tr.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		checkBatch(t, tr, qs, vals, fnd)
	}
	// A card sized to barely fit one I-segment rejects the second tree.
	small := platform.M1()
	small.GPU.MemBytes = t1.BuildStats().ISegBytes + 4096
	sdev := gpusim.New(small.GPU)
	if _, err := Build(pairs, Options{Variant: Implicit, Machine: small, Device: sdev}); err != nil {
		t.Fatalf("first tree should fit: %v", err)
	}
	if _, err := Build(pairs, Options{Variant: Implicit, Machine: small, Device: sdev}); err == nil {
		t.Fatal("second tree fit impossibly")
	}
}

func TestOptionsValidation(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 100, 1)
	bad := []Options{
		{Variant: Variant(7)},
		{Strategy: Strategy(9)},
		{BucketSize: 8},
		{LeafFill: 1.5},
		{LeafFill: -0.1},
	}
	for i, opt := range bad {
		if _, err := Build(pairs, opt); err == nil {
			t.Fatalf("bad options %d accepted: %+v", i, opt)
		}
	}
}

func TestConcurrentLookupBatches(t *testing.T) {
	// Several goroutines may run LookupBatch on one tree concurrently:
	// kernels read the immutable replica, and device allocations are
	// synchronised. (Tracing is the documented exception.)
	tr, pairs := build64(t, 60000, Options{Variant: Implicit})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := workload.SearchInput(pairs, 20000, uint64(g))
			vals, fnd, _, err := tr.LookupBatch(qs)
			if err != nil {
				errs <- err
				return
			}
			for i, q := range qs {
				if !fnd[i] || vals[i] != workload.ValueFor(q) {
					errs <- fmt.Errorf("goroutine %d: query %d wrong", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
