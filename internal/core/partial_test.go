package core

import (
	"testing"

	"hbtree/internal/platform"
	"hbtree/internal/workload"
)

// TestPartialCPUFallbackMatchesFull: the load-balanced host-only
// fallback — pre-walk to the discovered depth, resume the rest on the
// CPU — returns exactly what the flat host batch search returns, for
// both variants, hits and misses alike.
func TestPartialCPUFallbackMatchesFull(t *testing.T) {
	for _, v := range []Variant{Implicit, Regular} {
		t.Run(v.String(), func(t *testing.T) {
			pairs := workload.Dataset[uint64](workload.Uniform, 1<<14, 7)
			tr, err := Build(pairs, Options{Variant: v, BucketSize: 64, Machine: platform.M2(), LoadBalance: true})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()

			queries := make([]uint64, 0, 300)
			for i := 0; i < 256; i++ {
				queries = append(queries, pairs[(i*53)%len(pairs)].Key)
			}
			for i := 0; i < 44; i++ {
				queries = append(queries, pairs[i].Key+1) // overwhelmingly misses
			}
			n := len(queries)
			pv, pf := make([]uint64, n), make([]bool, n)
			fv, ff := make([]uint64, n), make([]bool, n)
			pStats := tr.LookupBatchPartialCPUInto(queries, pv, pf)
			fStats := tr.LookupBatchCPUInto(queries, fv, ff)
			for i := range queries {
				if pf[i] != ff[i] || (pf[i] && pv[i] != fv[i]) {
					t.Fatalf("query %d (%d): partial = (%d,%v), full = (%d,%v)",
						i, queries[i], pv[i], pf[i], fv[i], ff[i])
				}
			}
			if pStats.Queries != n || pStats.Buckets != (n+63)/64 {
				t.Fatalf("partial stats: %+v", pStats)
			}
			if pStats.SimTime <= 0 || pStats.ThroughputQPS <= 0 {
				t.Fatalf("partial stats missing virtual cost: %+v", pStats)
			}
			if fStats.Queries != n {
				t.Fatalf("full stats: %+v", fStats)
			}
		})
	}
}

// TestPartialCPUFallbackOnStaleReplica: the partial fallback never
// touches the device, so it stays valid on a replica-stale tree — the
// degraded state it exists to serve.
func TestPartialCPUFallbackOnStaleReplica(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<12, 11)
	tr, err := Build(pairs, Options{Variant: Regular, BucketSize: 64, Machine: platform.M2(), LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Discover() // parameter probing launches kernels; settle it first
	tr.replicaStale.Store(true)
	defer tr.replicaStale.Store(false)

	queries := make([]uint64, 128)
	for i := range queries {
		queries[i] = pairs[(i*31)%len(pairs)].Key
	}
	values, found := make([]uint64, len(queries)), make([]bool, len(queries))
	kBefore := tr.Device().Counters().Kernels
	tr.LookupBatchPartialCPUInto(queries, values, found)
	if got := tr.Device().Counters().Kernels; got != kBefore {
		t.Fatalf("partial fallback launched %d kernels", got-kBefore)
	}
	for i, q := range queries {
		if !found[i] || values[i] != workload.ValueFor(q) {
			t.Fatalf("stale-replica partial[%d] = (%d,%v)", i, values[i], found[i])
		}
	}
}
