package core

import (
	"bytes"
	"testing"

	"hbtree/internal/keys"
	"hbtree/internal/workload"
)

// layoutPropQueries mixes present keys, misses and duplicates in random
// order — the input space every lookup path must resolve identically on
// a tuned tree and a uniform one.
func layoutPropQueries[K keys.Key](pairs []keys.Pair[K], n int, seed uint64) []K {
	r := workload.NewRNG(seed)
	qs := make([]K, n)
	for i := range qs {
		switch r.Intn(4) {
		case 0: // absent (with overwhelming probability)
			k := K(r.Uint64())
			if k == keys.Max[K]() {
				k--
			}
			qs[i] = k
		case 1: // duplicate an earlier query
			if i > 0 {
				qs[i] = qs[r.Intn(i)]
			} else {
				qs[i] = pairs[r.Intn(len(pairs))].Key
			}
		default: // present
			qs[i] = pairs[r.Intn(len(pairs))].Key
		}
	}
	return qs
}

// layoutPropRun compares every lookup path of a tuned-layout tree
// against its uniform twin over one dataset size and key width. The
// tuned tree may or may not actually widen (the tuner declines when
// uniform is optimal); the caller tallies how often it did so the sweep
// can assert the property was exercised on genuinely non-uniform trees.
func layoutPropRun[K keys.Key](t *testing.T, n int, seed uint64) (widened bool) {
	t.Helper()
	pairs := workload.Dataset[K](workload.Uniform, n, seed)
	uni, err := Build(pairs, Options{Variant: Implicit})
	if err != nil {
		t.Fatal(err)
	}
	defer uni.Close()
	tun, err := Build(pairs, Options{Variant: Implicit, Layout: LayoutTuned, LayoutBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer tun.Close()
	for _, w := range tun.LevelWidths() {
		if w > keys.PerLine[K]() {
			widened = true
		}
	}

	// Point lookups.
	for i := 0; i < 500; i++ {
		q := pairs[(i*131)%len(pairs)].Key
		uv, uf := uni.Lookup(q)
		tv, tf := tun.Lookup(q)
		if uv != tv || uf != tf {
			t.Fatalf("n=%d: point lookup diverges for key %v: uniform (%v,%v), tuned (%v,%v)", n, q, uv, uf, tv, tf)
		}
		uv, uf = uni.Lookup(q + 1) // overwhelmingly a miss
		tv, tf = tun.Lookup(q + 1)
		if uv != tv || uf != tf {
			t.Fatalf("n=%d: point miss diverges for key %v", n, q+1)
		}
	}

	// Batch shapes spanning partial, exact and multi-bucket sizes, each
	// through the plain pipeline, the sorted shared descent, and the
	// partial-CPU fallback.
	for bi, bn := range []int{1, 7, DefaultBucketSize, 3*DefaultBucketSize + 13} {
		qs := layoutPropQueries(pairs, bn, seed+uint64(bi)+100)
		uv, uf, _, err := uni.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		tv, tf, _, err := tun.LookupBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if uv[i] != tv[i] || uf[i] != tf[i] {
				t.Fatalf("n=%d bn=%d: batch diverges at %d (key %v): uniform (%v,%v), tuned (%v,%v)",
					n, bn, i, qs[i], uv[i], uf[i], tv[i], tf[i])
			}
		}
		sv, sf, _, err := tun.LookupBatchSorted(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if uv[i] != sv[i] || uf[i] != sf[i] {
				t.Fatalf("n=%d bn=%d: sorted descent diverges at %d (key %v): uniform (%v,%v), tuned sorted (%v,%v)",
					n, bn, i, qs[i], uv[i], uf[i], sv[i], sf[i])
			}
		}
		pv, pf := make([]K, bn), make([]bool, bn)
		tun.LookupBatchPartialCPUInto(qs, pv, pf)
		for i := range qs {
			if uv[i] != pv[i] || uf[i] != pf[i] {
				t.Fatalf("n=%d bn=%d: partial-CPU fallback diverges at %d (key %v): uniform (%v,%v), tuned partial (%v,%v)",
					n, bn, i, qs[i], uv[i], uf[i], pv[i], pf[i])
			}
		}
	}
	return widened
}

// TestTunedLayoutMatchesUniformProperty is the layout engine's
// correctness contract: for random trees across both key widths and
// batch shapes, a tuned-layout tree returns byte-identical results to
// the uniform tree on every lookup path — point, plain batch, sorted
// shared descent, and the load-balanced partial-CPU fallback. The sweep
// also requires that at least one tree per key width genuinely widened,
// so the property is never vacuously green.
func TestTunedLayoutMatchesUniformProperty(t *testing.T) {
	sizes := []int{3000, 30000, 1 << 16}
	widened64 := false
	for i, n := range sizes {
		if layoutPropRun[uint64](t, n, uint64(i+1)) {
			widened64 = true
		}
	}
	if !widened64 {
		t.Error("no uint64 sweep size produced a widened tree; the property ran only on uniform layouts")
	}
	widened32 := false
	for i, n := range sizes {
		if layoutPropRun[uint32](t, n, uint64(i+7)) {
			widened32 = true
		}
	}
	if !widened32 {
		t.Error("no uint32 sweep size produced a widened tree; the property ran only on uniform layouts")
	}
}

// TestTunedLayoutSurvivesSerialization: the core-level WriteTo/Load
// round trip preserves the tuned geometry (the image carries the
// per-level table; Load rebuilds the device replica against it) and
// serves identical results afterwards.
func TestTunedLayoutSurvivesSerialization(t *testing.T) {
	pairs := workload.Dataset[uint64](workload.Uniform, 1<<16, 5)
	tr, err := Build(pairs, Options{Variant: Implicit, Layout: LayoutTuned, LayoutBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	wide := false
	for _, w := range tr.LevelWidths() {
		if w > keys.PerLine[uint64]() {
			wide = true
		}
	}
	if !wide {
		t.Skip("tuner stayed uniform at this size; nothing to round-trip")
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := Load[uint64](&buf, Options{Variant: Implicit, Layout: LayoutTuned, LayoutBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	got, want := rt.LevelWidths(), tr.LevelWidths()
	if len(got) != len(want) {
		t.Fatalf("loaded widths %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("loaded widths %v, want %v", got, want)
		}
	}
	qs := layoutPropQueries(pairs, 3*DefaultBucketSize, 99)
	ov, of, _, err := tr.LookupBatchSorted(qs)
	if err != nil {
		t.Fatal(err)
	}
	lv, lf, _, err := rt.LookupBatchSorted(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if ov[i] != lv[i] || of[i] != lf[i] {
			t.Fatalf("loaded tuned tree diverges at %d (key %d)", i, qs[i])
		}
	}
}
